// Clusterscale: the paper's cluster experiments in miniature (§5.4). Runs
// Q1 on growing modeled clusters, showing speed-up (fixed dataset) and
// scale-up (fixed per-node dataset) with the virtual-time scheduler that
// stands in for the paper's 9-node testbed (see DESIGN.md §4).
package main

import (
	"fmt"
	"log"

	"vxq/internal/cluster"
	"vxq/internal/core"
	"vxq/internal/gen"
	"vxq/internal/runtime"
)

const q1 = `
for $r in collection("/sensors")("root")()("results")()
where $r("dataType") eq "TMIN"
group by $date := $r("date")
return count($r("station"))`

func source(files int) runtime.Source {
	cfg := gen.Default()
	cfg.Files = files
	docs, _, err := cfg.InMemory()
	if err != nil {
		log.Fatal(err)
	}
	return &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}
}

func main() {
	fmt.Println("speed-up: fixed dataset (36 files), growing cluster")
	fixed := source(36)
	var base float64
	for _, nodes := range []int{1, 2, 3, 5, 9} {
		ex, err := cluster.Run(q1, core.AllRules(), cluster.DefaultConfig(nodes), fixed)
		if err != nil {
			log.Fatal(err)
		}
		wall := float64(ex.SimulatedWall.Microseconds()) / 1000
		if base == 0 {
			base = wall
		}
		fmt.Printf("  %d nodes: %8.2f ms  (speed-up %.1fx, %d groups)\n",
			nodes, wall, base/wall, len(ex.Result.Rows))
	}

	fmt.Println("\nscale-up: 8 files per node, growing cluster and data together")
	for _, nodes := range []int{1, 2, 3, 5, 9} {
		ex, err := cluster.Run(q1, core.AllRules(), cluster.DefaultConfig(nodes), source(8*nodes))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d nodes: %8.2f ms  (%d groups)\n",
			nodes, float64(ex.SimulatedWall.Microseconds())/1000, len(ex.Result.Rows))
	}
}
