// Quickstart: generate a small sensor collection on disk, mount it, and run
// a selection query over the raw JSON — no load phase, no pre-processing.
package main

import (
	"fmt"
	"log"
	"os"

	"vxq"
	"vxq/internal/gen"
)

func main() {
	dir, err := os.MkdirTemp("", "vxq-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Generate a NOAA-like collection of raw JSON files (§5.1 structure).
	cfg := gen.Default()
	cfg.Files = 4
	total, err := cfg.WriteDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d files (%.1f KB) in %s\n", cfg.Files, float64(total)/1024, dir)

	// Query the raw files directly.
	eng := vxq.New(vxq.Options{Partitions: 2})
	eng.Mount("/sensors", dir)

	res, err := eng.Query(`
		for $r in collection("/sensors")("root")()("results")()
		let $datetime := dateTime(data($r("date")))
		where year-from-dateTime($datetime) ge 2003
		  and month-from-dateTime($datetime) eq 12
		  and day-from-dateTime($datetime) eq 25
		return $r`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Dec-25 measurements since 2003: %d\n", len(res.Items))
	for i, it := range res.Items {
		if i == 5 {
			fmt.Println("...")
			break
		}
		fmt.Println(vxq.JSON(it))
	}
	fmt.Printf("bytes read: %d, tuples produced: %d, peak memory: %d bytes\n",
		res.Stats.BytesRead, res.Stats.TuplesProduced, res.PeakMemory)
}
