// Bookstore: the paper's running example (§4, Listings 1-5). Shows the
// navigation expressions, the group-by queries, and how the rewrite rules
// transform the plans — print the plans before and after optimization to
// see Figs. 3-12 come to life.
package main

import (
	"fmt"
	"log"

	"vxq"
)

var books = map[string][]byte{
	"shelf1.json": []byte(`{"bookstore":{"book":[
		{"-category":"COOKING","title":"Everyday Italian","author":"Giada De Laurentiis","year":"2005","price":"30.00"},
		{"-category":"CHILDREN","title":"Harry Potter","author":"J K. Rowling","year":"2005","price":"29.99"}]}}`),
	"shelf2.json": []byte(`{"bookstore":{"book":[
		{"-category":"WEB","title":"XQuery Kick Start","author":"James McGovern","year":"2003","price":"49.99"},
		{"-category":"WEB","title":"Learning XML","author":"James McGovern","year":"2003","price":"39.95"}]}}`),
}

func main() {
	eng := vxq.New(vxq.Options{Partitions: 2})
	eng.MountDocs("/books", books)

	// Listing 3: all books of the collection.
	all := `collection("/books")("bookstore")("book")()`
	res, err := eng.Query(all)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== all books ==")
	for _, it := range res.Items {
		fmt.Println(vxq.JSON(it))
	}

	// Listing 4: books per author (the group-by rules at work).
	counts := `
		for $x in collection("/books")("bookstore")("book")()
		group by $author := $x("author")
		return count($x("title"))`
	res, err = eng.Query(counts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== books per author (counts) ==")
	for _, it := range res.Items {
		fmt.Println(vxq.JSON(it))
	}

	// Show what the rewrite rules did to the plan (compare with Figs. 9-12).
	orig, opt, _, err := eng.Explain(counts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== original plan (Fig. 9 shape) ==")
	fmt.Print(orig)
	fmt.Println("\n== optimized plan (Fig. 12 shape: count pushed into GROUP-BY, DATASCAN carries the path) ==")
	fmt.Print(opt)
}
