// Sensors: the paper's evaluation workload (§5) end to end — all five
// queries (selection, aggregation, self-join) over a generated NOAA-like
// collection, with and without the rewrite rules, timing both.
package main

import (
	"fmt"
	"log"
	"time"

	"vxq"
	"vxq/internal/gen"
)

var queries = []struct{ name, text string }{
	{"Q0 (selection)", `
		for $r in collection("/sensors")("root")()("results")()
		let $datetime := dateTime(data($r("date")))
		where year-from-dateTime($datetime) ge 2003
		  and month-from-dateTime($datetime) eq 12
		  and day-from-dateTime($datetime) eq 25
		return $r`},
	{"Q0b (selection, projected path)", `
		for $r in collection("/sensors")("root")()("results")()("date")
		let $datetime := dateTime(data($r))
		where year-from-dateTime($datetime) ge 2003
		  and month-from-dateTime($datetime) eq 12
		  and day-from-dateTime($datetime) eq 25
		return $r`},
	{"Q1 (aggregation)", `
		for $r in collection("/sensors")("root")()("results")()
		where $r("dataType") eq "TMIN"
		group by $date := $r("date")
		return count($r("station"))`},
	{"Q2 (self-join)", `
		avg(
		  for $r_min in collection("/sensors")("root")()("results")()
		  for $r_max in collection("/sensors")("root")()("results")()
		  where $r_min("station") eq $r_max("station")
		    and $r_min("date") eq $r_max("date")
		    and $r_min("dataType") eq "TMIN"
		    and $r_max("dataType") eq "TMAX"
		  return $r_max("value") - $r_min("value")
		) div 10`},
}

func main() {
	cfg := gen.Default()
	cfg.Files = 8
	docs, total, err := cfg.InMemory()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d files, %.1f KB, %d measurements\n\n",
		cfg.Files, float64(total)/1024, cfg.Measurements())

	optimized := vxq.New(vxq.Options{Partitions: 2})
	optimized.MountDocs("/sensors", docs)
	unoptimized := vxq.New(vxq.Options{
		DisablePathRules:       true,
		DisablePipeliningRules: true,
		DisableGroupByRules:    true,
	})
	unoptimized.MountDocs("/sensors", docs)

	for _, q := range queries {
		start := time.Now()
		slow, err := unoptimized.Query(q.text)
		if err != nil {
			log.Fatalf("%s (no rules): %v", q.name, err)
		}
		tSlow := time.Since(start)

		start = time.Now()
		fast, err := optimized.Query(q.text)
		if err != nil {
			log.Fatalf("%s: %v", q.name, err)
		}
		tFast := time.Since(start)

		if len(slow.Items) != len(fast.Items) {
			log.Fatalf("%s: rule configurations disagree (%d vs %d items)",
				q.name, len(slow.Items), len(fast.Items))
		}
		fmt.Printf("%-34s %5d items   no rules: %8v   all rules: %8v   speedup: %.1fx\n",
			q.name, len(fast.Items), tSlow.Round(time.Microsecond),
			tFast.Round(time.Microsecond), float64(tSlow)/float64(tFast))
		fmt.Printf("%-34s peak memory   no rules: %8d   all rules: %8d bytes\n",
			"", slow.PeakMemory, fast.PeakMemory)
	}
}
