// Indexing: the paper's §6 future-work direction, implemented as per-file
// zone maps. Build a min/max index over the date path of a year-partitioned
// collection and watch a year-bounded selection skip almost every file.
package main

import (
	"fmt"
	"log"
	"time"

	"vxq"
	"vxq/internal/gen"
)

func main() {
	cfg := gen.Default()
	cfg.Files = 30 // two files per year, 2000-2014
	cfg.RecordsPerFile = 16
	cfg.PartitionByYear = true
	docs, total, err := cfg.InMemory()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d year-partitioned files, %.1f KB\n\n", cfg.Files, float64(total)/1024)

	query := `
		for $d in collection("/sensors")("root")()("results")()("date")
		where $d ge "2007-01-01" and $d lt "2008-01-01"
		return $d`

	run := func(name string, eng *vxq.Engine) {
		start := time.Now()
		res, err := eng.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %5d dates in %8v   files read: %2d  skipped: %2d  bytes: %d\n",
			name, len(res.Items), time.Since(start).Round(time.Microsecond),
			res.Stats.FilesRead, res.Stats.FilesSkipped, res.Stats.BytesRead)
	}

	plain := vxq.New(vxq.Options{Partitions: 2})
	plain.MountDocs("/sensors", docs)
	run("full scan", plain)

	indexed := vxq.New(vxq.Options{Partitions: 2})
	indexed.MountDocs("/sensors", docs)
	if err := indexed.BuildIndex("/sensors", `("root")()("results")()("date")`); err != nil {
		log.Fatal(err)
	}
	run("zone-map index", indexed)

	_, opt, _, err := indexed.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimized plan (note the filter on the DATASCAN):\n%s", opt)
}
