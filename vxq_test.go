package vxq

import (
	"strings"
	"testing"

	"vxq/internal/gen"
	"vxq/internal/item"
)

func sensorEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	cfg := gen.Default()
	cfg.Files = 4
	cfg.RecordsPerFile = 4
	cfg.MeasurementsPerArray = 10
	docs, _, err := cfg.InMemory()
	if err != nil {
		t.Fatal(err)
	}
	eng := New(opts)
	eng.MountDocs("/sensors", docs)
	return eng
}

const apiQ1 = `
for $r in collection("/sensors")("root")()("results")()
where $r("dataType") eq "TMIN"
group by $date := $r("date")
return count($r("station"))`

func TestQueryBasic(t *testing.T) {
	eng := sensorEngine(t, Options{Partitions: 2})
	res, err := eng.Query(apiQ1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) == 0 {
		t.Fatal("no results")
	}
	var total float64
	for _, it := range res.Items {
		n, ok := it.(item.Number)
		if !ok {
			t.Fatalf("expected number, got %s", JSON(it))
		}
		total += float64(n)
	}
	// 16 records x 10 measurements, 5 cycling types -> 2 TMIN each = 32.
	if total != 32 {
		t.Errorf("total TMIN count = %v, want 32", total)
	}
	if res.Stats.FilesRead != 4 {
		t.Errorf("files read = %d", res.Stats.FilesRead)
	}
}

func TestStagedAndPipelinedAgree(t *testing.T) {
	a, err := sensorEngine(t, Options{Partitions: 3}).Query(apiQ1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sensorEngine(t, Options{Partitions: 3, Staged: true}).Query(apiQ1)
	if err != nil {
		t.Fatal(err)
	}
	if !item.EqualSeq(item.Sequence(a.Items), item.Sequence(b.Items)) {
		t.Error("executors disagree")
	}
}

func TestRuleTogglesPreserveResults(t *testing.T) {
	variants := []Options{
		{},
		{DisablePathRules: true, DisablePipeliningRules: true, DisableGroupByRules: true},
		{DisableGroupByRules: true},
		{DisablePipeliningRules: true},
	}
	var want []Item
	for i, o := range variants {
		res, err := sensorEngine(t, o).Query(apiQ1)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if want == nil {
			want = res.Items
			continue
		}
		if !item.EqualSeq(item.Sequence(res.Items), item.Sequence(want)) {
			t.Errorf("variant %d results differ", i)
		}
	}
}

func TestExplain(t *testing.T) {
	eng := sensorEngine(t, Options{Partitions: 2})
	orig, opt, phys, err := eng.Explain(apiQ1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(orig, "collection(") {
		t.Errorf("original plan:\n%s", orig)
	}
	if !strings.Contains(opt, "DATASCAN") {
		t.Errorf("optimized plan:\n%s", opt)
	}
	if !strings.Contains(phys, "fragment") {
		t.Errorf("physical plan:\n%s", phys)
	}
}

func TestQueryError(t *testing.T) {
	eng := sensorEngine(t, Options{})
	if _, err := eng.Query("for $x return"); err == nil {
		t.Error("syntax error must surface")
	}
	if _, err := eng.Query(`collection("/missing")()`); err == nil {
		t.Error("unknown collection must surface")
	}
}

func TestMountDirectory(t *testing.T) {
	dir := t.TempDir()
	cfg := gen.Default()
	cfg.Files = 2
	cfg.RecordsPerFile = 2
	cfg.MeasurementsPerArray = 5
	if _, err := cfg.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Partitions: 2})
	eng.Mount("/disk", dir)
	res, err := eng.Query(`collection("/disk")("root")()("results")()`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 2*2*5 {
		t.Errorf("items = %d, want 20", len(res.Items))
	}
}

func TestResultPlansPopulated(t *testing.T) {
	res, err := sensorEngine(t, Options{}).Query(apiQ1)
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginalPlan == "" || res.OptimizedPlan == "" || res.PhysicalPlan == "" {
		t.Error("plans missing from result")
	}
	if res.PeakMemory <= 0 {
		t.Error("peak memory not tracked")
	}
}

func TestJSONHelper(t *testing.T) {
	if JSON(item.Number(42)) != "42" {
		t.Error("JSON helper")
	}
}

func TestZoneMapIndexPrunesFiles(t *testing.T) {
	cfg := gen.Default()
	cfg.Files = 15 // one file per year, 2000..2014
	cfg.RecordsPerFile = 4
	cfg.MeasurementsPerArray = 10
	cfg.PartitionByYear = true
	docs, _, err := cfg.InMemory()
	if err != nil {
		t.Fatal(err)
	}
	// A selection bounded on the raw date string: only 2010 qualifies.
	q := `
		for $r in collection("/sensors")("root")()("results")()("date")
		where $r ge "2010-01-01" and $r lt "2011-01-01"
		return $r`

	without := New(Options{Partitions: 2})
	without.MountDocs("/sensors", docs)
	resNo, err := without.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if resNo.Stats.FilesSkipped != 0 {
		t.Fatalf("no index, yet %d files skipped", resNo.Stats.FilesSkipped)
	}

	with := New(Options{Partitions: 2})
	with.MountDocs("/sensors", docs)
	if err := with.BuildIndex("/sensors", `("root")()("results")()("date")`); err != nil {
		t.Fatal(err)
	}
	resIdx, err := with.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// Same answer...
	if !item.EqualSeq(item.Sequence(resIdx.Items), item.Sequence(resNo.Items)) {
		t.Fatalf("index changed the result: %d vs %d items", len(resIdx.Items), len(resNo.Items))
	}
	if len(resIdx.Items) == 0 {
		t.Fatal("query returned nothing; bad test setup")
	}
	// ...but most files skipped (14 of 15 are other years).
	if resIdx.Stats.FilesSkipped != 14 {
		t.Errorf("files skipped = %d, want 14", resIdx.Stats.FilesSkipped)
	}
	if resIdx.Stats.FilesRead != 1 {
		t.Errorf("files read = %d, want 1", resIdx.Stats.FilesRead)
	}
	if resIdx.Stats.BytesRead >= resNo.Stats.BytesRead {
		t.Errorf("index did not reduce bytes read: %d vs %d",
			resIdx.Stats.BytesRead, resNo.Stats.BytesRead)
	}
}

func TestIndexFilterShownInPlan(t *testing.T) {
	eng := sensorEngine(t, Options{})
	_, opt, _, err := eng.Explain(`
		for $r in collection("/sensors")("root")()("results")()
		where $r("dataType") eq "TMIN" and $r("value") ge 100
		return $r`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(opt, "filter{") {
		t.Errorf("plan missing scan filter:\n%s", opt)
	}
}

func TestBuildIndexErrors(t *testing.T) {
	eng := sensorEngine(t, Options{})
	if err := eng.BuildIndex("/sensors", "not a path"); err == nil {
		t.Error("bad path must fail")
	}
	if err := eng.BuildIndex("/missing", `("a")`); err == nil {
		t.Error("missing collection must fail")
	}
	// Non-scalar path.
	if err := eng.BuildIndex("/sensors", `("root")()`); err == nil {
		t.Error("object path must fail")
	}
	if err := eng.BuildIndexes("/sensors"); err == nil {
		t.Error("empty path list must fail")
	}
}

// TestBuildIndexesMultiPath: one BuildIndexes call over two paths registers
// a zone map for each, and queries bounded on either path prune files.
func TestBuildIndexesMultiPath(t *testing.T) {
	cfg := gen.Default()
	cfg.Files = 10
	cfg.RecordsPerFile = 4
	cfg.MeasurementsPerArray = 10
	cfg.PartitionByYear = true
	docs, _, err := cfg.InMemory()
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Partitions: 2})
	eng.MountDocs("/sensors", docs)
	err = eng.BuildIndexes("/sensors",
		`("root")()("results")()("date")`,
		`("root")()("results")()("value")`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(`
		for $r in collection("/sensors")("root")()("results")()("date")
		where $r ge "2005-01-01" and $r lt "2006-01-01"
		return $r`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FilesSkipped != 9 {
		t.Errorf("date-bounded query: files skipped = %d, want 9", res.Stats.FilesSkipped)
	}
	if len(res.Items) == 0 {
		t.Fatal("date-bounded query returned nothing; bad test setup")
	}
	res, err = eng.Query(`
		for $v in collection("/sensors")("root")()("results")()("value")
		where $v gt 10000000
		return $v`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FilesSkipped == 0 {
		t.Error("value-bounded impossible predicate skipped no files; second map not registered")
	}
}
