module vxq

go 1.22
