// Package vxq is a parallel and scalable processor for JSON data: a Go
// reproduction of "A Parallel and Scalable Processor for JSON Data"
// (Pavlopoulou et al., EDBT 2018), which extended Apache VXQuery with the
// JSONiq extension to XQuery and three categories of rewrite rules so that
// raw JSON files can be queried on the fly — no load phase, no
// pre-processing — with pipelined, partitioned-parallel execution and a
// small memory footprint.
//
// The engine stack mirrors the paper's (Fig. 1): a Hyracks-like dataflow
// engine at the bottom (frames of serialized tuples, push-based operators,
// exchange connectors), an Algebricks-like algebra layer in the middle
// (logical plans, rewrite rules to fixpoint, physical compilation), and the
// JSONiq front end with the paper's rule categories on top:
//
//   - path expression rules (§4.1): unnesting is merged with
//     keys-or-members so items stream one at a time;
//   - pipelining rules (§4.2): collection access becomes a DATASCAN whose
//     second argument — a projection path — is applied *while parsing*, so
//     only matching objects are ever materialized, and execution becomes
//     partitioned-parallel;
//   - group-by rules (§4.3): scalar aggregates over grouped sequences are
//     converted to incremental aggregates and pushed into the GROUP-BY,
//     enabling two-step (local/global) parallel aggregation.
//
// # Quick start
//
//	eng := vxq.New(vxq.Options{Partitions: 4})
//	eng.Mount("/sensors", "/data/sensors")  // a directory of JSON files
//	res, err := eng.Query(`
//	    for $r in collection("/sensors")("root")()("results")()
//	    where $r("dataType") eq "TMIN"
//	    group by $date := $r("date")
//	    return count($r("station"))`)
//	if err != nil { ... }
//	for _, it := range res.Items { fmt.Println(vxq.JSON(it)) }
package vxq

import (
	"fmt"
	"io"
	"sync/atomic"

	"vxq/internal/core"
	"vxq/internal/frame"
	"vxq/internal/hyracks"
	"vxq/internal/index"
	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// Item is a value of the JSONiq data model (object, array, string, number,
// boolean, null, or dateTime).
type Item = item.Item

// Sequence is an ordered sequence of items, the value domain of JSONiq
// expressions.
type Sequence = item.Sequence

// JSON renders an item as canonical JSON text.
func JSON(it Item) string { return item.JSON(it) }

// Options configures an Engine.
type Options struct {
	// Partitions is the degree of partitioned parallelism for collection
	// scans (the paper uses one partition per core). Default 1.
	Partitions int
	// DisablePathRules turns off the path expression rules (§4.1).
	DisablePathRules bool
	// DisablePipeliningRules turns off the pipelining rules (§4.2).
	DisablePipeliningRules bool
	// DisableGroupByRules turns off the group-by rules (§4.3).
	DisableGroupByRules bool
	// FrameSize is the dataflow frame capacity in bytes (default 32 KiB).
	FrameSize int
	// ScanChunkSize is the refill-buffer size, in bytes, of streaming
	// collection scans (default 64 KiB). Raw JSON files are never
	// materialized whole: the scan reads each file through a buffer of
	// this size, so per-scan peak memory is O(chunk), not O(file).
	ScanChunkSize int
	// MemoryLimit bounds the engine's accounted memory in bytes
	// (0 = unlimited). Exceeding it does not abort execution; it is
	// reported through Result.PeakMemory versus the limit.
	MemoryLimit int64
	// MorselSize is the byte-range granularity of morsel-driven scans
	// (default 4 MiB). Raw JSON files larger than this are split into
	// independently schedulable byte ranges, so a handful of oversized files
	// no longer serializes onto a single partition.
	MorselSize int64
	// ColdIndexMinBytes gates the cold-scan boundary pass: a raw JSON file at
	// least this large with no recorded record-boundary index gets one from
	// the speculative parallel indexer at scan setup, so even the first scan
	// of a huge file cuts morsels exactly on record starts (default 32 MiB;
	// negative disables the pass). The computed index is recorded in the
	// engine's registry, so only the first scan of a file pays.
	ColdIndexMinBytes int64
	// IndexWorkers is the worker count of parallel index passes — the
	// cold-scan boundary pass and large-file zone-map builds (default
	// GOMAXPROCS).
	IndexWorkers int
	// IndexZoneGrain is the byte width of the per-zone min/max stats a
	// BuildIndex/BuildIndexes pass records alongside its per-file ranges
	// (index.DefaultZoneGrain when 0; negative disables zone stats). Zones
	// finer than MorselSize let warm scans skip individual morsels whose
	// value range excludes a query's predicate, not just whole files.
	IndexZoneGrain int64
	// Staged selects the staged executor (sequential, per-task timing)
	// instead of the default pipelined (goroutine) executor. Results are
	// identical.
	Staged bool
	// Profile collects per-operator metrics during execution and attaches
	// the merged profile to Result.Profile. Collection wraps every operator
	// boundary; overhead is a few percent at most, and exactly zero when off.
	Profile bool
	// CacheDir is where persistent structural-index sidecars are written
	// ("" = next to each data file). Useful when data directories are
	// read-only.
	CacheDir string
	// DisableSidecars turns off sidecar persistence entirely: indexes and
	// record-boundary splits stay in-memory, nothing is written next to the
	// data, and nothing is loaded from prior runs.
	DisableSidecars bool
	// PlanCacheSize bounds the compiled-plan cache (entries): repeated
	// queries — same text modulo whitespace, same rule options — skip
	// parse, rewrite and physical planning. 0 means DefaultPlanCacheSize;
	// negative disables the cache.
	PlanCacheSize int
	// ResultCacheBytes bounds the result cache (bytes): a repeated
	// deterministic query whose scanned files are unchanged — validated by
	// each file's (size, mtime) identity and the engine's mount generation —
	// returns its cached result without executing. 0 disables the cache.
	ResultCacheBytes int64
	// OpMemoryBudget bounds the bytes any one blocking operator instance
	// (group-by, join build, sort) may hold before it goes out of core:
	// group-by and join grace-hash-partition their state to disk and recurse,
	// sort switches to external merge. Results are identical to in-memory
	// execution. 0 (the default) never spills.
	OpMemoryBudget int64
	// SpillDir is where out-of-core operators place their temporary partition
	// and run files ("" = the OS temp dir). Spill files are always removed
	// when the query finishes — success or failure.
	SpillDir string
}

func (o Options) ruleConfig() core.RuleConfig {
	return core.RuleConfig{
		PathRules:       !o.DisablePathRules,
		PipeliningRules: !o.DisablePipeliningRules,
		GroupByRules:    !o.DisableGroupByRules,
	}
}

// Engine compiles and executes JSONiq queries over mounted collections of
// raw JSON files.
type Engine struct {
	opts    Options
	mounts  map[string]string
	docs    map[string]map[string][]byte
	indexes *index.Registry
	plans   *planCache
	results *resultCache
	// mountGen counts mount-set changes; result-cache entries remember the
	// generation they were computed under and die when it moves, which
	// covers the in-memory documents no file identity can validate.
	mountGen atomic.Uint64
}

// New creates an engine.
func New(opts Options) *Engine {
	if opts.Partitions <= 0 {
		opts.Partitions = 1
	}
	e := &Engine{
		opts:    opts,
		mounts:  map[string]string{},
		docs:    map[string]map[string][]byte{},
		indexes: index.NewRegistry(),
	}
	if opts.PlanCacheSize >= 0 {
		size := opts.PlanCacheSize
		if size == 0 {
			size = DefaultPlanCacheSize
		}
		e.plans = newPlanCache(size)
	}
	if opts.ResultCacheBytes > 0 {
		e.results = newResultCache(opts.ResultCacheBytes)
	}
	if !opts.DisableSidecars {
		e.indexes.SetPersistence(&index.Persistence{
			Dir:   opts.CacheDir,
			Ident: func(file string) (runtime.FileIdent, bool) { return e.source().Ident(file) },
		})
	}
	return e
}

// Mount registers a directory of JSON files as a collection, addressable
// from queries as collection(name).
func (e *Engine) Mount(name, dir string) {
	e.mounts[name] = dir
	e.mountGen.Add(1)
}

// MountDocs registers an in-memory set of documents as a collection.
func (e *Engine) MountDocs(name string, docs map[string][]byte) {
	e.docs[name] = docs
	e.mountGen.Add(1)
}

// BuildIndex builds a zone-map (per-file min/max) index over a scalar path
// of a collection, written in JSONiq postfix syntax, e.g.
//
//	eng.BuildIndex("/sensors", `("root")()("results")()("date")`)
//
// Queries whose selections bound that path with constant comparisons then
// skip files whose value range cannot match — the paper's §6 future-work
// direction. The index reflects the collection at build time; rebuild it
// after the underlying files change.
func (e *Engine) BuildIndex(collection, path string) error {
	return e.BuildIndexes(collection, path)
}

// BuildIndexes builds zone maps over several scalar paths of one collection
// with a single scan of its files: each file is read once, every path's
// min/max feeds off the same parsed records, and one boundary pass — the
// speculative parallel indexer for large files — serves all of the maps.
func (e *Engine) BuildIndexes(collection string, paths ...string) error {
	if len(paths) == 0 {
		return fmt.Errorf("vxq: no index paths")
	}
	pp := make([]jsonparse.Path, len(paths))
	for i, s := range paths {
		p, err := jsonparse.ParsePath(s)
		if err != nil {
			return err
		}
		pp[i] = p
	}
	zms, err := index.BuildWith(e.source(), collection, pp,
		index.BuildOptions{Workers: e.opts.IndexWorkers, ZoneGrain: e.opts.IndexZoneGrain})
	if err != nil {
		return err
	}
	for _, zm := range zms {
		e.indexes.Add(zm)
	}
	return nil
}

// source builds the engine's data source view.
func (e *Engine) source() *compositeSource {
	return &compositeSource{
		dirs: &runtime.DirSource{Mounts: e.mounts},
		mem:  &runtime.MemSource{Collections: e.docs},
	}
}

type compositeSource struct {
	dirs *runtime.DirSource
	mem  *runtime.MemSource
}

func (s *compositeSource) Files(collection string) ([]string, error) {
	if _, ok := s.dirs.Mounts[collection]; ok {
		return s.dirs.Files(collection)
	}
	return s.mem.Files(collection)
}

// Open is the streaming read path: in-memory documents win, directory
// mounts are the fallback.
func (s *compositeSource) Open(path string) (io.ReadCloser, error) {
	if rc, err := s.mem.Open(path); err == nil {
		return rc, nil
	}
	return s.dirs.Open(path)
}

// ReadFile is the whole-file compatibility shim over Open.
func (s *compositeSource) ReadFile(path string) ([]byte, error) {
	return runtime.ReadAll(s, path)
}

// OpenRange opens a file at a byte offset, enabling morsel-split scans over
// both in-memory documents and directory mounts.
func (s *compositeSource) OpenRange(path string, offset int64) (io.ReadCloser, error) {
	if rc, err := s.mem.OpenRange(path, offset); err == nil {
		return rc, nil
	}
	return s.dirs.OpenRange(path, offset)
}

// Size reports a file's size without reading it.
func (s *compositeSource) Size(path string) (int64, error) {
	if n, err := s.mem.Size(path); err == nil {
		return n, nil
	}
	return s.dirs.Size(path)
}

// Ident reports a file's durable identity. In-memory documents have none
// (ok=false), so persistent caches never cover them; directory files get
// their (size, mtime) from the filesystem.
func (s *compositeSource) Ident(path string) (runtime.FileIdent, bool) {
	if _, err := s.mem.Size(path); err == nil {
		return s.mem.Ident(path)
	}
	return s.dirs.Ident(path)
}

// CacheInfo reports how the engine's caches served one query.
type CacheInfo struct {
	// PlanHit is true when compilation was skipped (plan cache).
	PlanHit bool
	// ResultHit is true when execution was skipped entirely (result cache);
	// Stats and PeakMemory then describe the original run that produced the
	// cached result.
	ResultHit bool
}

// Result is a query's outcome.
type Result struct {
	// Items is the result sequence, one item per result tuple, in a
	// deterministic (sorted) order.
	Items []Item
	// Stats are the execution statistics (bytes read, tuples produced,
	// bytes shuffled between partitions, ...).
	Stats runtime.Stats
	// PeakMemory is the engine's accounted memory high-water mark.
	PeakMemory int64
	// OriginalPlan and OptimizedPlan are the logical plans before and
	// after the rewrite rules.
	OriginalPlan, OptimizedPlan string
	// PhysicalPlan is the compiled Hyracks job.
	PhysicalPlan string
	// Profile is the per-operator execution profile (nil unless
	// Options.Profile was set).
	Profile *hyracks.Profile
	// Cache reports which cache layers served this query.
	Cache CacheInfo
}

// Query compiles and executes a JSONiq query. With the caches enabled (see
// Options.PlanCacheSize and Options.ResultCacheBytes), a repeated query skips
// compilation, and — when its scanned files are verifiably unchanged —
// execution altogether; Result.Cache reports which layers served it.
func (e *Engine) Query(query string) (*Result, error) {
	key := normalizeQuery(query) + "\x00" + e.optionFingerprint()
	if e.results != nil && resultCacheable(key) {
		if res, ok := e.results.lookup(key, e.resultStillValid); ok {
			return res, nil
		}
	}
	compiled, planHit, err := e.compileCached(query, key)
	if err != nil {
		return nil, err
	}
	// Snapshot the scanned files before executing: if one changes mid-run,
	// the stored snapshot no longer matches the file's post-change identity,
	// so the very next lookup invalidates the (possibly torn) entry.
	var snapshot []collSnap
	if e.results != nil && resultCacheable(key) {
		snapshot = e.snapshotCollections(compiled.Job.ScanCollections())
	}
	gen := e.mountGen.Load()
	env := &hyracks.Env{
		Source:            e.source(),
		FrameSize:         e.opts.FrameSize,
		ChunkSize:         e.opts.ScanChunkSize,
		Accountant:        frame.NewAccountant(e.opts.MemoryLimit),
		Indexes:           e.indexes,
		MorselSize:        e.opts.MorselSize,
		ColdIndexMinBytes: e.opts.ColdIndexMinBytes,
		ColdIndexWorkers:  e.opts.IndexWorkers,
		Profile:           e.opts.Profile,
		OpMemoryBudget:    e.opts.OpMemoryBudget,
		SpillDir:          e.opts.SpillDir,
	}
	var res *hyracks.Result
	if e.opts.Staged {
		res, err = hyracks.RunStaged(compiled.Job, env)
	} else {
		res, err = hyracks.RunPipelined(compiled.Job, env)
	}
	if err != nil {
		return nil, err
	}
	// Canonical order for determinism — unless the query itself orders its
	// result, in which case that order is preserved.
	if !compiled.Ordered {
		res.SortRows()
	}
	out := &Result{
		Stats:         res.Stats,
		PeakMemory:    res.PeakMemory,
		OriginalPlan:  compiled.OriginalPlan,
		OptimizedPlan: compiled.OptimizedPlan,
		PhysicalPlan:  compiled.Job.String(),
		Profile:       res.Profile,
		Cache:         CacheInfo{PlanHit: planHit},
	}
	for _, row := range res.Rows {
		if len(row) != 1 {
			return nil, fmt.Errorf("vxq: internal error: result tuple with %d fields", len(row))
		}
		out.Items = append(out.Items, row[0]...)
	}
	if snapshot != nil {
		cached := *out
		cached.Profile = nil // profiles are per-execution, not part of the answer
		cached.Cache = CacheInfo{}
		e.results.store(&resultEntry{key: key, res: &cached, gen: gen, colls: snapshot})
	}
	return out, nil
}

// optionFingerprint encodes the compile-relevant options into the cache key:
// two engines (or one reconfigured engine) disagree on plans exactly when
// their fingerprints differ.
func (e *Engine) optionFingerprint() string {
	rc := e.opts.ruleConfig()
	return fmt.Sprintf("p%d:%t%t%t", e.opts.Partitions, rc.PathRules, rc.PipeliningRules, rc.GroupByRules)
}

// compileCached compiles through the plan cache. planHit reports whether
// compilation was skipped.
func (e *Engine) compileCached(query, key string) (c *core.Compiled, planHit bool, err error) {
	if e.plans == nil {
		c, err = e.compile(query)
		return c, false, err
	}
	if c, ok := e.plans.get(key); ok {
		return c, true, nil
	}
	c, err = e.compile(query)
	if err != nil {
		return nil, false, err
	}
	e.plans.put(key, c)
	return c, false, nil
}

// snapshotCollections records the file set and identities of the scanned
// collections. A nil return (any listing error) disables caching for this
// query rather than caching something unverifiable.
func (e *Engine) snapshotCollections(collections []string) []collSnap {
	src := e.source()
	out := make([]collSnap, 0, len(collections))
	for _, coll := range collections {
		files, err := src.Files(coll)
		if err != nil {
			return nil
		}
		cs := collSnap{name: coll, files: make([]fileSnap, len(files))}
		for i, f := range files {
			ident, ok := src.Ident(f)
			cs.files[i] = fileSnap{path: f, ident: ident, durable: ok}
		}
		out = append(out, cs)
	}
	return out
}

// resultStillValid revalidates one cached entry: the mount set must be the
// same generation, every scanned collection must list the same files, and
// every file with a durable identity must still carry the identity the
// snapshot saw.
func (e *Engine) resultStillValid(entry *resultEntry) bool {
	if entry.gen != e.mountGen.Load() {
		return false
	}
	src := e.source()
	for _, cs := range entry.colls {
		files, err := src.Files(cs.name)
		if err != nil || len(files) != len(cs.files) {
			return false
		}
		for i, f := range files {
			snap := cs.files[i]
			if f != snap.path {
				return false
			}
			ident, ok := src.Ident(f)
			if ok != snap.durable || ident != snap.ident {
				return false
			}
			if ok && !identReliable(ident) {
				// A coarse mtime cannot distinguish a same-size rewrite made
				// within its granularity from no change at all; miss
				// conservatively rather than serve a possibly stale result.
				return false
			}
		}
	}
	return true
}

// identReliable reports whether a file identity can actually witness change:
// an mtime of zero, or one truncated to whole seconds (a filesystem without
// sub-second timestamps), leaves same-size rewrites within one second
// invisible to the (size, mtime) comparison.
func identReliable(id runtime.FileIdent) bool {
	return id.ModTimeNanos != 0 && id.ModTimeNanos%1e9 != 0
}

// CacheStats is a snapshot of the engine's cache counters.
type CacheStats struct {
	// PlanHits / PlanMisses count compiled-plan cache outcomes.
	PlanHits, PlanMisses int64
	// ResultHits / ResultMisses count result cache outcomes.
	ResultHits, ResultMisses int64
	// ResultCacheBytes is the result cache's current accounted charge.
	ResultCacheBytes int64
	// SidecarLoads / SidecarMisses / SidecarWrites count persistent
	// structural-index sidecar traffic.
	SidecarLoads, SidecarMisses, SidecarWrites int64
}

// CacheStats reports the engine's cache counters.
func (e *Engine) CacheStats() CacheStats {
	var cs CacheStats
	if e.plans != nil {
		e.plans.mu.Lock()
		cs.PlanHits, cs.PlanMisses = e.plans.hits, e.plans.misses
		e.plans.mu.Unlock()
	}
	if e.results != nil {
		e.results.mu.Lock()
		cs.ResultHits, cs.ResultMisses = e.results.hits, e.results.misses
		e.results.mu.Unlock()
		cs.ResultCacheBytes = e.results.bytesUsed()
	}
	rs := e.indexes.Stats()
	cs.SidecarLoads, cs.SidecarMisses, cs.SidecarWrites = rs.SidecarLoads, rs.SidecarMisses, rs.SidecarWrites
	return cs
}

// Explain compiles a query and returns its plans without executing it.
func (e *Engine) Explain(query string) (original, optimized, physical string, err error) {
	compiled, err := e.compile(query)
	if err != nil {
		return "", "", "", err
	}
	return compiled.OriginalPlan, compiled.OptimizedPlan, compiled.Job.String(), nil
}

func (e *Engine) compile(query string) (*core.Compiled, error) {
	return core.CompileQuery(query, core.Options{
		Rules:      e.opts.ruleConfig(),
		Partitions: e.opts.Partitions,
	})
}
