package vxq

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"vxq/internal/gen"
)

func TestNormalizeQuery(t *testing.T) {
	cases := []struct{ in, want string }{
		{"  for $r in x  \n\t return $r ", `for $r in x return $r`},
		{`a  eq  "two  spaces"`, `a eq "two  spaces"`},
		{`a eq 'single  quoted'`, `a eq 'single  quoted'`},
		{`"esc\" still  in"  b`, `"esc\" still  in" b`},
		{"", ""},
		{"   ", ""},
		{`"unterminated   string`, `"unterminated   string`},
	}
	for _, c := range cases {
		if got := normalizeQuery(c.in); got != c.want {
			t.Errorf("normalizeQuery(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPlanCacheHit(t *testing.T) {
	eng := sensorEngine(t, Options{Partitions: 2})
	r1, err := eng.Query(apiQ1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cache.PlanHit {
		t.Fatal("first query cannot be a plan hit")
	}
	// Same query, different whitespace: must hit.
	r2, err := eng.Query("  " + apiQ1 + "\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cache.PlanHit {
		t.Fatal("repeated query missed the plan cache")
	}
	if len(r1.Items) != len(r2.Items) {
		t.Fatalf("cached plan changed the result: %d vs %d items", len(r1.Items), len(r2.Items))
	}
	cs := eng.CacheStats()
	if cs.PlanHits != 1 || cs.PlanMisses != 1 {
		t.Errorf("plan cache stats = %+v, want 1 hit / 1 miss", cs)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	eng := sensorEngine(t, Options{Partitions: 1, PlanCacheSize: -1})
	for i := 0; i < 2; i++ {
		res, err := eng.Query(apiQ1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cache.PlanHit {
			t.Fatal("plan cache disabled but hit reported")
		}
	}
	if cs := eng.CacheStats(); cs.PlanHits != 0 || cs.PlanMisses != 0 {
		t.Errorf("disabled plan cache counted traffic: %+v", cs)
	}
}

func TestPlanCacheLRUBound(t *testing.T) {
	eng := sensorEngine(t, Options{Partitions: 1, PlanCacheSize: 2})
	queries := []string{
		`collection("/sensors")("root")()("results")()("value")`,
		`collection("/sensors")("root")()("results")()("date")`,
		`collection("/sensors")("root")()("results")()("station")`,
	}
	// Fill with q0, q1; q2 evicts q0 (LRU); q0 must then recompile.
	for _, q := range queries {
		if _, err := eng.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Query(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.PlanHit {
		t.Fatal("evicted plan served from a bounded cache")
	}
	// q2 is still resident.
	res, err = eng.Query(queries[2])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cache.PlanHit {
		t.Fatal("most recent plan evicted from a cache with room")
	}
}

// diskSensorEngine writes a small generated collection to a temp dir and
// mounts it — result-cache validation needs real file identities.
func diskSensorEngine(t *testing.T, opts Options) (*Engine, string) {
	t.Helper()
	dir := t.TempDir()
	cfg := gen.Default()
	cfg.Files = 2
	cfg.RecordsPerFile = 2
	cfg.MeasurementsPerArray = 5
	if _, err := cfg.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	eng := New(opts)
	eng.Mount("/sensors", dir)
	return eng, dir
}

func TestResultCacheHit(t *testing.T) {
	eng, _ := diskSensorEngine(t, Options{Partitions: 2, ResultCacheBytes: 1 << 20})
	r1, err := eng.Query(apiQ1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cache.ResultHit {
		t.Fatal("first query cannot be a result hit")
	}
	r2, err := eng.Query(apiQ1)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cache.ResultHit {
		t.Fatal("repeated query over unchanged files missed the result cache")
	}
	if len(r1.Items) != len(r2.Items) {
		t.Fatalf("cached result differs: %d vs %d items", len(r1.Items), len(r2.Items))
	}
	for i := range r1.Items {
		if JSON(r1.Items[i]) != JSON(r2.Items[i]) {
			t.Fatalf("cached item %d differs: %s vs %s", i, JSON(r1.Items[i]), JSON(r2.Items[i]))
		}
	}
	cs := eng.CacheStats()
	if cs.ResultHits != 1 || cs.ResultCacheBytes == 0 {
		t.Errorf("result cache stats = %+v", cs)
	}
	// A hit returns a copy: mutating it must not poison the cache.
	r2.Items[0] = nil
	r3, err := eng.Query(apiQ1)
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Cache.ResultHit || r3.Items[0] == nil {
		t.Fatal("cache entry shares the caller's Items slice")
	}
}

func TestResultCacheInvalidation(t *testing.T) {
	eng, dir := diskSensorEngine(t, Options{Partitions: 1, ResultCacheBytes: 1 << 20})
	if _, err := eng.Query(apiQ1); err != nil {
		t.Fatal(err)
	}

	t.Run("mtime change", func(t *testing.T) {
		files, err := filepath.Glob(filepath.Join(dir, "*.json"))
		if err != nil || len(files) == 0 {
			t.Fatalf("glob: %v %v", files, err)
		}
		if err := os.Chtimes(files[0], time.Now(), time.Now().Add(5*time.Second)); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Query(apiQ1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cache.ResultHit {
			t.Fatal("stale result served after a file changed")
		}
		// Re-cached under the new identity: next run hits again.
		res, err = eng.Query(apiQ1)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cache.ResultHit {
			t.Fatal("result not re-cached after invalidation")
		}
	})

	t.Run("file added", func(t *testing.T) {
		if err := os.WriteFile(filepath.Join(dir, "zz-extra.json"), []byte(`{"root":[]}`), 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Query(apiQ1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cache.ResultHit {
			t.Fatal("stale result served after a file was added to the collection")
		}
	})

	t.Run("mount change", func(t *testing.T) {
		if _, err := eng.Query(apiQ1); err != nil {
			t.Fatal(err)
		}
		eng.MountDocs("/other", map[string][]byte{"d.json": []byte(`{"root":[]}`)})
		res, err := eng.Query(apiQ1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cache.ResultHit {
			t.Fatal("stale result served after the mount set changed")
		}
	})
}

func TestResultCacheMemDocsNotValidatable(t *testing.T) {
	// In-memory documents have no durable identity, but the mount generation
	// covers wholesale replacement via MountDocs.
	eng := sensorEngine(t, Options{Partitions: 1, ResultCacheBytes: 1 << 20})
	if _, err := eng.Query(apiQ1); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(apiQ1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cache.ResultHit {
		t.Fatal("unchanged in-memory collection missed the result cache")
	}
	cfg := gen.Default()
	cfg.Files = 4
	cfg.RecordsPerFile = 4
	cfg.MeasurementsPerArray = 10
	docs, _, err := cfg.InMemory()
	if err != nil {
		t.Fatal(err)
	}
	eng.MountDocs("/sensors", docs)
	res, err = eng.Query(apiQ1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.ResultHit {
		t.Fatal("stale result served after MountDocs replaced the collection")
	}
}

func TestResultCacheBounded(t *testing.T) {
	// A tiny budget: entries larger than the whole cache are simply not
	// stored, so repeats keep executing (and keep being correct).
	eng := sensorEngine(t, Options{Partitions: 1, ResultCacheBytes: 16})
	for i := 0; i < 2; i++ {
		res, err := eng.Query(apiQ1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cache.ResultHit {
			t.Fatal("oversized entry served from a 16-byte cache")
		}
	}
	if cs := eng.CacheStats(); cs.ResultCacheBytes != 0 {
		t.Errorf("cache charged %d bytes for entries it refused", cs.ResultCacheBytes)
	}

	// LRU eviction: with room for roughly one entry, alternating queries
	// evict each other.
	eng2 := sensorEngine(t, Options{Partitions: 1, ResultCacheBytes: 4 << 10})
	qa := `collection("/sensors")("root")()("results")()("value")`
	qb := `collection("/sensors")("root")()("results")()("date")`
	if _, err := eng2.Query(qa); err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Query(qb); err != nil {
		t.Fatal(err)
	}
	cs := eng2.CacheStats()
	if cs.ResultCacheBytes > 4<<10 {
		t.Errorf("cache over budget: %d bytes", cs.ResultCacheBytes)
	}
}

func TestResultCacheExcludesJSONDoc(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "doc.json")
	if err := os.WriteFile(doc, []byte(`{"a": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	eng := New(Options{ResultCacheBytes: 1 << 20})
	q := fmt.Sprintf(`json-doc(%q)("a")`, doc)
	for i := 0; i < 2; i++ {
		res, err := eng.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cache.ResultHit {
			t.Fatal("json-doc query served from the result cache")
		}
	}
}

// TestCachedQueriesConcurrent hammers one engine from several goroutines with
// both caches on — run under -race; results must stay correct throughout.
func TestCachedQueriesConcurrent(t *testing.T) {
	eng, _ := diskSensorEngine(t, Options{Partitions: 2, ResultCacheBytes: 1 << 20})
	want, err := eng.Query(apiQ1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				res, err := eng.Query(apiQ1)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Items) != len(want.Items) {
					errs <- fmt.Errorf("concurrent query returned %d items, want %d", len(res.Items), len(want.Items))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSidecarsWrittenByEngineIndexBuild: an engine with default options
// persists what BuildIndexes computes; a second engine over the same mount
// prunes files warm — zero index builds — from sidecars alone.
func TestSidecarsWrittenByEngineIndexBuild(t *testing.T) {
	dir := t.TempDir()
	cfg := gen.Default()
	cfg.Files = 3
	cfg.RecordsPerFile = 2
	cfg.MeasurementsPerArray = 5
	cfg.PartitionByYear = true
	if _, err := cfg.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Partitions: 1})
	eng.Mount("/sensors", dir)
	if err := eng.BuildIndex("/sensors", `("root")()("results")()("date")`); err != nil {
		t.Fatal(err)
	}
	if cs := eng.CacheStats(); cs.SidecarWrites == 0 {
		t.Fatalf("BuildIndex persisted nothing: %+v", cs)
	}

	q := `for $r in collection("/sensors")("root")()("results")()
	      where $r("date") lt "1900-01-01T00:00" return $r("value")`
	eng2 := New(Options{Partitions: 1})
	eng2.Mount("/sensors", dir)
	res, err := eng2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 0 {
		t.Fatalf("impossible predicate returned %d items", len(res.Items))
	}
	if res.Stats.FilesSkipped != 3 {
		t.Fatalf("fresh engine skipped %d files, want 3 (warm from sidecars)", res.Stats.FilesSkipped)
	}
	if cs := eng2.CacheStats(); cs.SidecarLoads == 0 {
		t.Fatalf("fresh engine loaded no sidecars: %+v", cs)
	}

	// DisableSidecars: a third engine must see nothing.
	eng3 := New(Options{Partitions: 1, DisableSidecars: true})
	eng3.Mount("/sensors", dir)
	res, err = eng3.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FilesSkipped != 0 {
		t.Fatalf("sidecar-blind engine skipped %d files", res.Stats.FilesSkipped)
	}
}

// TestResultCacheTruncatedMtimeConservativeMiss: a file whose mtime carries
// no sub-second precision (a filesystem with second-granularity timestamps)
// cannot witness a same-size rewrite made within the same second, so the
// cache must treat its identity as unverifiable and miss rather than risk
// serving a stale result.
func TestResultCacheTruncatedMtimeConservativeMiss(t *testing.T) {
	eng, dir := diskSensorEngine(t, Options{Partitions: 1, ResultCacheBytes: 1 << 20})
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("glob: %v %v", files, err)
	}
	// Truncate every file's mtime to a whole second, as a coarse filesystem
	// would report it.
	trunc := time.Now().Truncate(time.Second)
	for _, f := range files {
		if err := os.Chtimes(f, trunc, trunc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Query(apiQ1); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(apiQ1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.ResultHit {
		t.Fatal("result served from cache though the file identities cannot witness a same-second rewrite")
	}
	// Restoring sub-second mtimes makes identities reliable again: the entry
	// re-caches and the next run hits.
	for _, f := range files {
		now := time.Now()
		if now.Nanosecond()%1e9 == 0 {
			now = now.Add(time.Microsecond)
		}
		if err := os.Chtimes(f, now, now); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Query(apiQ1); err != nil {
		t.Fatal(err)
	}
	res, err = eng.Query(apiQ1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cache.ResultHit {
		t.Fatal("result not cached once file identities became reliable")
	}
}
