# Build, test, and benchmark entry points.

GO ?= go

.PHONY: all build test race bench bench-query bench-cache bench-spill bench-smoke fuzz-smoke profile-smoke spill-smoke fmt vet

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/hyracks ./internal/frame ./internal/cluster ./internal/jsonparse ./internal/index

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# bench runs the scan skew benchmark at the quick scale and writes the
# BENCH_scan.json artifact, the parse-kernel benchmark writing
# BENCH_parse.json, then the Go microbenchmarks with allocation reporting.
# Add VXQ_SCAN_FULL=1 and `go run ./cmd/benchscan -full` for the acceptance
# scale (1x64 MiB + 31x2 MiB).
bench:
	$(GO) run ./cmd/benchscan -out BENCH_scan.json
	$(GO) run ./cmd/benchscan -parse -out BENCH_parse.json
	$(GO) run ./cmd/benchscan -query -out BENCH_query.json
	$(GO) test -run='^$$' -bench='Scan|FramePath|Project|Skip|Lexer|GroupBy|HashShuffle|HashJoin' -benchmem ./internal/bench

# bench-query measures the binary tuple kernel (encoded-key group-by, hash
# shuffle and hash join against the eager reference), writing
# BENCH_query.json. TestQueryKernelBounds pins the committed bounds.
bench-query:
	$(GO) run ./cmd/benchscan -query -out BENCH_query.json

# bench-cache measures cold vs warm repeated queries across the persistence
# layers — structural-index sidecars, the compiled-plan cache, the result
# cache — writing BENCH_cache.json. The run itself enforces the acceptance
# gates (warm >= 3x cold, zero index rebuilds on sidecar-warm scans, morsel
# skips on the selective case) and fails if any regresses;
# TestCacheBenchSmoke runs the same gates in-process at a reduced scale.
bench-cache:
	$(GO) run ./cmd/benchscan -cache -out BENCH_cache.json

# bench-spill measures the out-of-core operators — grace-hash group-by and
# join, external merge sort — against their in-memory runs on an input ~4x
# over the per-operator budget, writing BENCH_spill.json. The harness enforces
# the acceptance gates (byte-identical results, real spilling, accountant
# balance zero, high-water no worse than in-memory, empty spill directory);
# TestSpillBenchSmoke runs the same gates in-process at a reduced scale.
bench-spill:
	$(GO) run ./cmd/benchscan -spill -out BENCH_spill.json

# spill-smoke is the CI guard for the out-of-core layer: the bigger-than-
# budget differential tests (group-by/join/sort spilled vs in-memory,
# byte-identical, temp-file hygiene, accountant balance) plus the in-process
# benchmark gates.
spill-smoke:
	$(GO) test -run 'TestSpill' -v ./internal/hyracks ./internal/bench
	$(GO) test ./internal/spill

# bench-smoke is the CI guard: every benchmark must still run (one
# iteration), catching bit-rot in the harness without burning CI minutes.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# profile-smoke is the CI guard for the observability layer: the smoke test
# profiles Q0-Q2 through both executors and validates the trace span schema,
# then the CLI leg generates a small collection and runs Q1 with
# -profile -trace end to end, checking a trace file comes out.
profile-smoke:
	$(GO) test -run TestProfileSmoke -v ./internal/bench
	rm -rf /tmp/vxq-profile-smoke && mkdir -p /tmp/vxq-profile-smoke
	$(GO) run ./cmd/gendata -out /tmp/vxq-profile-smoke/sensors -files 4 -records 24 -split
	$(GO) run ./cmd/vxq -mount /sensors=/tmp/vxq-profile-smoke/sensors -partitions 2 \
		-profile -trace /tmp/vxq-profile-smoke/trace.json \
		'for $$r in collection("/sensors")("root")()("results")() where $$r("dataType") eq "TMIN" group by $$date := $$r("date") return count($$r("station"))' \
		>/dev/null
	test -s /tmp/vxq-profile-smoke/trace.json

# fuzz-smoke runs the structural-kernel fuzzers briefly: the three-way skip
# differential (structural-index skip, byte-class skip, token-level reference,
# cross-checked against encoding/json), the record-boundary scanner against
# its scalar reference over the chunk-size sweep, and the speculative parallel
# indexer against the sequential builder across worker/chunk/grain sweeps.
# Seeds under testdata/fuzz are always replayed.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzRawSkipDifferential -fuzztime=10s ./internal/jsonparse
	$(GO) test -run='^$$' -fuzz=FuzzBoundaryScanner -fuzztime=10s ./internal/jsonparse
	$(GO) test -run='^$$' -fuzz=FuzzSpeculativeIndex -fuzztime=10s ./internal/jsonparse
