# Build, test, and benchmark entry points.

GO ?= go

.PHONY: all build test race bench bench-smoke fmt vet

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/hyracks ./internal/frame ./internal/cluster

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# bench runs the scan skew benchmark at the quick scale and writes the
# BENCH_scan.json artifact, then runs the Go microbenchmarks with allocation
# reporting. Add VXQ_SCAN_FULL=1 and `go run ./cmd/benchscan -full` for the
# acceptance scale (1x64 MiB + 31x2 MiB).
bench:
	$(GO) run ./cmd/benchscan -out BENCH_scan.json
	$(GO) test -run='^$$' -bench='Scan|FramePath' -benchmem ./internal/bench

# bench-smoke is the CI guard: every benchmark must still run (one
# iteration), catching bit-rot in the harness without burning CI minutes.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
