package vxq

import (
	"container/list"
	"strings"
	"sync"

	"vxq/internal/core"
	"vxq/internal/frame"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

// The engine's warm path is a three-layer cache stack:
//
//  1. Sidecar-backed structural indexes (internal/index): per-file record
//     splits and zone stats persisted next to the data, validated by
//     (size, mtime), so even a fresh process scans warm.
//  2. A compiled-plan cache: normalized query text + option fingerprint →
//     compiled job, bounded LRU, so a repeated query skips parse, rewrite
//     and physical planning.
//  3. A result cache: the same key → the full result sequence, bounded by
//     an accountant-charged byte budget and invalidated when any scanned
//     file's (size, mtime) identity — or the engine's mount set — changes.
//
// Layers 2 and 3 live in this file; layer 1 is wired up in New.

// normalizeQuery canonicalizes query text for cache keying: runs of
// whitespace outside string literals collapse to a single space and leading/
// trailing whitespace is dropped. String literals (single- or double-quoted,
// with backslash escapes — the jsoniq lexer's rules) are preserved verbatim,
// so normalization never changes what a query means; two queries normalizing
// to the same key tokenize identically.
func normalizeQuery(q string) string {
	var b strings.Builder
	b.Grow(len(q))
	pendingSpace := false
	i := 0
	for i < len(q) {
		c := q[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			pendingSpace = b.Len() > 0
			i++
		case c == '"' || c == '\'':
			if pendingSpace {
				b.WriteByte(' ')
				pendingSpace = false
			}
			j := i + 1
			for j < len(q) && q[j] != c {
				if q[j] == '\\' && j+1 < len(q) {
					j++
				}
				j++
			}
			if j < len(q) {
				j++ // include the closing quote
			}
			b.WriteString(q[i:j])
			i = j
		default:
			if pendingSpace {
				b.WriteByte(' ')
				pendingSpace = false
			}
			b.WriteByte(c)
			i++
		}
	}
	return b.String()
}

// DefaultPlanCacheSize is the compiled-plan cache capacity when
// Options.PlanCacheSize is 0.
const DefaultPlanCacheSize = 64

// planCache is a bounded LRU of compiled plans. Compiled jobs are shared by
// concurrent executions of the same query — operator specs are read-only at
// run time (the pipelined executor already shares them across partitions) —
// so a hit hands out the cached pointer directly.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	hits    int64
	misses  int64
}

type planEntry struct {
	key string
	c   *core.Compiled
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		order:   list.New(),
	}
}

func (pc *planCache) get(key string) (*core.Compiled, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.entries[key]
	if !ok {
		pc.misses++
		return nil, false
	}
	pc.order.MoveToFront(el)
	pc.hits++
	return el.Value.(*planEntry).c, true
}

func (pc *planCache) put(key string, c *core.Compiled) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.entries[key]; ok {
		el.Value.(*planEntry).c = c
		pc.order.MoveToFront(el)
		return
	}
	pc.entries[key] = pc.order.PushFront(&planEntry{key: key, c: c})
	for pc.order.Len() > pc.cap {
		oldest := pc.order.Back()
		pc.order.Remove(oldest)
		delete(pc.entries, oldest.Value.(*planEntry).key)
	}
}

// fileSnap is one scanned file's identity at snapshot time. durable=false
// files (in-memory documents) cannot be revalidated against the filesystem;
// the engine's mount generation covers them instead.
type fileSnap struct {
	path    string
	ident   runtime.FileIdent
	durable bool
}

// collSnap is the file set of one scanned collection at snapshot time. A
// hit revalidates the whole set: a file added to or removed from the
// directory changes the list and invalidates the entry even when every
// surviving file is untouched.
type collSnap struct {
	name  string
	files []fileSnap
}

// resultEntry is one cached query result plus everything needed to decide
// it is still valid.
type resultEntry struct {
	key   string
	res   *Result // Profile is never cached; Items are shared, copied out per hit
	cost  int64
	gen   uint64 // engine mount generation at snapshot time
	colls []collSnap
}

// resultCache is a bounded LRU of fully-computed query results. Entry sizes
// are charged to a dedicated accountant; storing evicts least-recently-used
// entries until the new entry fits (an entry larger than the whole budget is
// simply not cached).
type resultCache struct {
	mu      sync.Mutex
	limit   int64
	acct    *frame.Accountant
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	hits    int64
	misses  int64
}

func newResultCache(limit int64) *resultCache {
	return &resultCache{
		limit:   limit,
		acct:    frame.NewAccountant(limit),
		entries: map[string]*list.Element{},
		order:   list.New(),
	}
}

// resultCost estimates the bytes an entry pins: the items themselves plus
// the plan strings and snapshot bookkeeping.
func resultCost(res *Result, colls []collSnap) int64 {
	cost := int64(len(res.OriginalPlan) + len(res.OptimizedPlan) + len(res.PhysicalPlan))
	for _, it := range res.Items {
		cost += item.SizeBytes(it)
	}
	for _, c := range colls {
		cost += int64(len(c.name))
		for _, f := range c.files {
			cost += int64(len(f.path)) + 16
		}
	}
	return cost
}

// lookup returns a copy of the cached result for key when the entry is
// still valid per validate. An invalid entry is evicted on the spot.
func (rc *resultCache) lookup(key string, validate func(*resultEntry) bool) (*Result, bool) {
	rc.mu.Lock()
	el, ok := rc.entries[key]
	var e *resultEntry
	if ok {
		e = el.Value.(*resultEntry)
	}
	rc.mu.Unlock()
	if !ok {
		rc.mu.Lock()
		rc.misses++
		rc.mu.Unlock()
		return nil, false
	}
	// Validation stats the filesystem: do it outside the lock.
	valid := validate(e)
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if el2, still := rc.entries[key]; !still || el2.Value.(*resultEntry) != e {
		// Concurrently replaced or evicted; treat as a miss.
		rc.misses++
		return nil, false
	}
	if !valid {
		rc.removeLocked(el)
		rc.misses++
		return nil, false
	}
	rc.order.MoveToFront(el)
	rc.hits++
	out := *e.res
	out.Items = append([]Item(nil), e.res.Items...)
	out.Cache.ResultHit = true
	return &out, true
}

// store inserts (or replaces) an entry, evicting from the LRU tail until
// the accountant accepts the charge.
func (rc *resultCache) store(e *resultEntry) {
	e.cost = resultCost(e.res, e.colls)
	if e.cost > rc.limit {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if el, ok := rc.entries[e.key]; ok {
		rc.removeLocked(el)
	}
	for rc.acct.Current()+e.cost > rc.limit && rc.order.Len() > 0 {
		rc.removeLocked(rc.order.Back())
	}
	if !rc.acct.Allocate(e.cost) {
		rc.acct.Release(e.cost)
		return
	}
	rc.entries[e.key] = rc.order.PushFront(e)
}

func (rc *resultCache) removeLocked(el *list.Element) {
	e := el.Value.(*resultEntry)
	rc.order.Remove(el)
	delete(rc.entries, e.key)
	rc.acct.Release(e.cost)
}

// bytesUsed reports the accountant's current charge.
func (rc *resultCache) bytesUsed() int64 { return rc.acct.Current() }

// resultCacheable reports whether a query's result may be cached. Every
// built-in function is deterministic, so the only disqualifier is json-doc:
// it reads files at evaluation time, outside the scanned collections the
// snapshot covers.
func resultCacheable(normalized string) bool {
	return !strings.Contains(normalized, "json-doc")
}
