// Package index implements the paper's future-work direction (§6: "We are
// currently working on supporting indexing ... indexing will further
// improve the system's performance since the searched data volume will be
// significantly reduced").
//
// The index is a per-file zone map: for a collection and a projection path
// it records the minimum and maximum scalar value each file contains at
// that path. When a query's selection bounds the indexed path, the DATASCAN
// skips files whose [min,max] range cannot overlap the predicate — the
// searched data volume shrinks without touching query semantics (the
// SELECT operator still verifies every surviving tuple).
//
// Zone maps are built with one streaming pass over the collection and must
// be rebuilt when the underlying files change.
package index

import (
	"fmt"
	"io"
	"sync"

	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// DefaultSplitGrain is the record-boundary sampling granularity of a zone-map
// build: one record-start offset is kept per this many bytes of file, which
// bounds split-index memory at size/grain offsets per file while still
// letting morsel splitting (whose granularity is megabytes) cut exactly on
// record starts.
const DefaultSplitGrain int64 = 4 << 10

// DefaultParallelMinBytes is the file size at which a zone-map build hands
// the boundary pass to the speculative parallel indexer instead of teeing
// the stats scan through a sequential BoundaryScanner. Below it the extra
// range opens cost more than the parallelism returns.
const DefaultParallelMinBytes int64 = 8 << 20

// FileStats is the zone-map entry of one file.
type FileStats struct {
	// Min and Max bound the values found at the indexed path (nil when the
	// file has none).
	Min, Max item.Item
	// Count is the number of values found.
	Count int64
}

// ZoneMap is a per-file min/max index of one (collection, path).
type ZoneMap struct {
	Collection string
	Path       jsonparse.Path
	Files      map[string]FileStats

	// Splits holds, per file, ascending record-start offsets sampled at
	// DefaultSplitGrain by the structural-index boundary scanner — a free
	// byproduct of the build's streaming pass (the scan bytes are teed
	// through the scanner). Morsel splitting aligns byte ranges to them.
	Splits map[string][]int64
}

// BuildOptions tunes a zone-map build. The zero value is the default build:
// sequential boundary pass teed under the stats scan for small files, the
// speculative parallel indexer for large range-readable ones.
type BuildOptions struct {
	// SplitGrain is the record-boundary sampling granularity
	// (DefaultSplitGrain when 0, every record start when negative — the
	// latter is meant for tests).
	SplitGrain int64
	// Workers is the worker count of the parallel boundary pass
	// (GOMAXPROCS when <= 0).
	Workers int
	// ParallelMinBytes is the file size at which the boundary pass goes
	// parallel, provided the source supports OpenRange and Size
	// (DefaultParallelMinBytes when 0; negative disables the parallel pass
	// entirely).
	ParallelMinBytes int64
}

func (o BuildOptions) splitGrain() int64 {
	if o.SplitGrain == 0 {
		return DefaultSplitGrain
	}
	if o.SplitGrain < 0 {
		return 0
	}
	return o.SplitGrain
}

// Build scans every file of the collection once and records the per-file
// min/max of the items the path yields. Files are read with the same record
// model DATASCAN uses — a concatenated stream of top-level values (NDJSON,
// newline-separated records, or one whole document) — so the map covers
// exactly the records a scan of the file would emit. Non-scalar items
// (objects, arrays) are rejected: zone maps index scalar paths.
func Build(src runtime.Source, collection string, path jsonparse.Path) (*ZoneMap, error) {
	zms, err := BuildWith(src, collection, []jsonparse.Path{path}, BuildOptions{})
	if err != nil {
		return nil, err
	}
	return zms[0], nil
}

// BuildWith builds one zone map per path over a single scan of the
// collection: every file is read once, its record items feed the min/max
// stats of every path, and one boundary pass — the speculative parallel
// indexer for large range-readable files, a sequential BoundaryScanner teed
// under the stats scan otherwise — serves all of them. The returned maps
// share one Splits table per collection (splits are a property of the file
// bytes, not of the indexed path). With a single path the stats pass is the
// streaming projected scan (nothing off the path is materialized); with
// several, each record is parsed once and every path is applied to it.
func BuildWith(src runtime.Source, collection string, paths []jsonparse.Path, opts BuildOptions) ([]*ZoneMap, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("index: no paths to build")
	}
	files, err := src.Files(collection)
	if err != nil {
		return nil, err
	}
	splits := make(map[string][]int64, len(files))
	zms := make([]*ZoneMap, len(paths))
	for i, p := range paths {
		zms[i] = &ZoneMap{
			Collection: collection,
			Path:       append(jsonparse.Path(nil), p...),
			Files:      make(map[string]FileStats, len(files)),
			Splits:     splits,
		}
	}
	for _, f := range files {
		stats := make([]FileStats, len(paths))
		observe := func(pathIdx int, it item.Item) error {
			switch it.Kind() {
			case item.KindObject, item.KindArray:
				return fmt.Errorf("path %s yields a %s; zone maps index scalar paths",
					paths[pathIdx], it.Kind())
			}
			st := &stats[pathIdx]
			if st.Count == 0 {
				st.Min, st.Max = it, it
			} else {
				if item.Compare(it, st.Min) < 0 {
					st.Min = it
				}
				if item.Compare(it, st.Max) > 0 {
					st.Max = it
				}
			}
			st.Count++
			return nil
		}

		// Boundary pass: parallel phase 1 up front when the file is large
		// and range-readable, otherwise a sequential scanner teed under the
		// stats scan below.
		fileSplits, parallel, err := parallelFileSplits(src, f, opts)
		if err != nil {
			return nil, fmt.Errorf("index: %s: %w", f, err)
		}

		rc, err := src.Open(f)
		if err != nil {
			return nil, fmt.Errorf("index: %s: %w", f, err)
		}
		var r io.Reader = rc
		var bs *jsonparse.BoundaryScanner
		if !parallel {
			bs = jsonparse.NewBoundaryScanner(opts.splitGrain())
			r = io.TeeReader(rc, bs)
		}
		lx := jsonparse.NewStreamLexerAt(r, jsonparse.DefaultChunkSize, 0)
		if len(paths) == 1 {
			_, err = jsonparse.ScanValues(lx, paths[0], -1, func(it item.Item) error {
				return observe(0, it)
			})
		} else {
			_, err = jsonparse.ScanValues(lx, nil, -1, func(record item.Item) error {
				for i, p := range paths {
					for _, it := range jsonparse.ApplyPath(record, p) {
						if err := observe(i, it); err != nil {
							return err
						}
					}
				}
				return nil
			})
		}
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("index: %s: %w", f, err)
		}
		if bs != nil {
			bs.Close()
			fileSplits = bs.Splits()
		}
		for i := range zms {
			zms[i].Files[f] = stats[i]
		}
		if len(fileSplits) > 0 {
			splits[f] = fileSplits
		}
	}
	return zms, nil
}

// parallelFileSplits builds the boundary index of one file with the
// speculative parallel indexer, when the build options and the source's
// capabilities allow it. ok reports whether the parallel pass ran (false
// means the caller should fall back to the sequential tee).
func parallelFileSplits(src runtime.Source, file string, opts BuildOptions) (splits []int64, ok bool, err error) {
	if opts.ParallelMinBytes < 0 {
		return nil, false, nil
	}
	min := opts.ParallelMinBytes
	if min == 0 {
		min = DefaultParallelMinBytes
	}
	ro, canRange := src.(runtime.RangeOpener)
	sz, canSize := src.(runtime.Sizer)
	if !canRange || !canSize {
		return nil, false, nil
	}
	size, err := sz.Size(file)
	if err != nil || size < min {
		return nil, false, nil
	}
	pi := jsonparse.ParallelIndexer{Workers: opts.Workers}
	splits, err = pi.SplitsRange(func(off int64) (io.ReadCloser, error) {
		return ro.OpenRange(file, off)
	}, size, opts.splitGrain(), 0)
	if err != nil {
		return nil, false, err
	}
	return splits, true, nil
}

// Registry holds the zone maps of an engine, keyed by collection and path,
// plus boundary indexes recorded outside any zone-map build (cold scans
// record the splits their parallel phase 1 computes, so later scans skip the
// work). It implements runtime.IndexLookup, runtime.SplitLookup and
// runtime.SplitRecorder. Safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	maps   map[string]*ZoneMap
	splits map[string]map[string][]int64 // collection -> file -> record starts
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		maps:   map[string]*ZoneMap{},
		splits: map[string]map[string][]int64{},
	}
}

func key(collection string, path jsonparse.Path) string {
	return collection + "\x00" + path.String()
}

// Add registers (or replaces) a zone map.
func (r *Registry) Add(zm *ZoneMap) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maps[key(zm.Collection, zm.Path)] = zm
}

// FileRange implements runtime.IndexLookup: it reports the indexed value
// range of one file, if a matching zone map exists.
func (r *Registry) FileRange(collection string, path jsonparse.Path, file string) (runtime.FileRange, bool) {
	r.mu.RLock()
	zm, ok := r.maps[key(collection, path)]
	r.mu.RUnlock()
	if !ok {
		return runtime.FileRange{}, false
	}
	st, ok := zm.Files[file]
	if !ok {
		return runtime.FileRange{}, false
	}
	return runtime.FileRange{Min: st.Min, Max: st.Max, Count: st.Count}, true
}

// FileSplits implements runtime.SplitLookup: it reports the sampled
// record-start offsets of one file if a recorded boundary index or any
// registered zone map of the collection carries them. Splits are a property
// of the file bytes, not of the indexed path, so any map of the collection
// serves.
func (r *Registry) FileSplits(collection, file string) ([]int64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if sp, ok := r.splits[collection][file]; ok && len(sp) > 0 {
		return sp, true
	}
	for _, zm := range r.maps {
		if zm.Collection != collection {
			continue
		}
		if sp, ok := zm.Splits[file]; ok && len(sp) > 0 {
			return sp, true
		}
	}
	return nil, false
}

// RecordFileSplits implements runtime.SplitRecorder: it stores a boundary
// index computed outside a zone-map build — the cold-scan parallel phase 1 —
// so subsequent scans of the same file get exact morsel splits for free.
func (r *Registry) RecordFileSplits(collection, file string, splits []int64) {
	if len(splits) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.splits[collection]
	if m == nil {
		m = map[string][]int64{}
		r.splits[collection] = m
	}
	m[file] = splits
}

// Len reports the number of registered zone maps.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.maps)
}
