// Package index implements the paper's future-work direction (§6: "We are
// currently working on supporting indexing ... indexing will further
// improve the system's performance since the searched data volume will be
// significantly reduced").
//
// The index is a per-file zone map: for a collection and a projection path
// it records the minimum and maximum scalar value each file contains at
// that path. When a query's selection bounds the indexed path, the DATASCAN
// skips files whose [min,max] range cannot overlap the predicate — the
// searched data volume shrinks without touching query semantics (the
// SELECT operator still verifies every surviving tuple). A build also
// records per-zone stats — min/max over fixed byte ranges of each file —
// which morsel splitting consults to skip whole byte ranges of files that
// survive the file-level check.
//
// Zone maps are built with one streaming pass over the collection. With
// persistence configured (see Persistence), what a build or a cold scan
// computes is written to per-file sidecars and revalidated against each
// file's (size, mtime) identity on lookup, so the index survives process
// restarts and stale entries fall back to a cold scan automatically.
package index

import (
	"fmt"
	"io"

	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// DefaultSplitGrain is the record-boundary sampling granularity of a zone-map
// build: one record-start offset is kept per this many bytes of file, which
// bounds split-index memory at size/grain offsets per file while still
// letting morsel splitting (whose granularity is megabytes) cut exactly on
// record starts.
const DefaultSplitGrain int64 = 4 << 10

// DefaultParallelMinBytes is the file size at which a zone-map build hands
// the boundary pass to the speculative parallel indexer instead of teeing
// the stats scan through a sequential BoundaryScanner. Below it the extra
// range opens cost more than the parallelism returns.
const DefaultParallelMinBytes int64 = 8 << 20

// DefaultZoneGrain is the byte width of per-zone min/max stats: fine enough
// that a default-sized morsel (4 MiB) spans several zones, coarse enough
// that zone metadata stays a rounding error next to the data.
const DefaultZoneGrain int64 = 512 << 10

// FileStats is the zone-map entry of one file (or one zone of a file).
type FileStats struct {
	// Min and Max bound the values found at the indexed path (nil when the
	// file has none).
	Min, Max item.Item
	// Count is the number of values found.
	Count int64
}

func (st *FileStats) observe(it item.Item) {
	if st.Count == 0 {
		st.Min, st.Max = it, it
	} else {
		if item.Compare(it, st.Min) < 0 {
			st.Min = it
		}
		if item.Compare(it, st.Max) > 0 {
			st.Max = it
		}
	}
	st.Count++
}

// PathZones is the dense per-zone stats of one file at one path: zone i
// summarizes the records whose line start lies in [i*Grain, (i+1)*Grain),
// and the zones together cover [0, Size).
type PathZones struct {
	Grain int64
	Size  int64
	Stats []FileStats
}

// runtimeZones converts to the runtime.Zone form consumed by morsel pruning.
func (pz PathZones) runtimeZones() []runtime.Zone {
	if pz.Grain <= 0 || len(pz.Stats) == 0 {
		return nil
	}
	out := make([]runtime.Zone, len(pz.Stats))
	for i, st := range pz.Stats {
		start := int64(i) * pz.Grain
		end := start + pz.Grain
		if end > pz.Size {
			end = pz.Size
		}
		out[i] = runtime.Zone{
			Start: start,
			End:   end,
			Range: runtime.FileRange{Min: st.Min, Max: st.Max, Count: st.Count},
		}
	}
	return out
}

// ZoneMap is a per-file min/max index of one (collection, path).
type ZoneMap struct {
	Collection string
	Path       jsonparse.Path
	Files      map[string]FileStats

	// Zones holds, per file, the dense per-zone stats the build computed —
	// the intra-file refinement of Files that lets morsel splitting skip
	// byte ranges, not just whole files.
	Zones map[string]PathZones

	// Splits holds, per file, ascending record-start offsets sampled at
	// DefaultSplitGrain by the structural-index boundary scanner — a free
	// byproduct of the build's streaming pass (the scan bytes are teed
	// through the scanner). Morsel splitting aligns byte ranges to them.
	Splits map[string][]int64
}

// BuildOptions tunes a zone-map build. The zero value is the default build:
// sequential boundary pass teed under the stats scan for small files, the
// speculative parallel indexer for large range-readable ones.
type BuildOptions struct {
	// SplitGrain is the record-boundary sampling granularity
	// (DefaultSplitGrain when 0, every record start when negative — the
	// latter is meant for tests).
	SplitGrain int64
	// Workers is the worker count of the parallel boundary pass
	// (GOMAXPROCS when <= 0).
	Workers int
	// ParallelMinBytes is the file size at which the boundary pass goes
	// parallel, provided the source supports OpenRange and Size
	// (DefaultParallelMinBytes when 0; negative disables the parallel pass
	// entirely).
	ParallelMinBytes int64
	// ZoneGrain is the byte width of per-zone min/max stats
	// (DefaultZoneGrain when 0; negative disables zone stats).
	ZoneGrain int64
}

func (o BuildOptions) splitGrain() int64 {
	if o.SplitGrain == 0 {
		return DefaultSplitGrain
	}
	if o.SplitGrain < 0 {
		return 0
	}
	return o.SplitGrain
}

func (o BuildOptions) zoneGrain() int64 {
	if o.ZoneGrain == 0 {
		return DefaultZoneGrain
	}
	if o.ZoneGrain < 0 {
		return 0
	}
	return o.ZoneGrain
}

// Build scans every file of the collection once and records the per-file
// min/max of the items the path yields. Files are read with the same record
// model DATASCAN uses — a concatenated stream of top-level values (NDJSON,
// newline-separated records, or one whole document) — so the map covers
// exactly the records a scan of the file would emit. Non-scalar items
// (objects, arrays) are rejected: zone maps index scalar paths.
func Build(src runtime.Source, collection string, path jsonparse.Path) (*ZoneMap, error) {
	zms, err := BuildWith(src, collection, []jsonparse.Path{path}, BuildOptions{})
	if err != nil {
		return nil, err
	}
	return zms[0], nil
}

// BuildWith builds one zone map per path over a single scan of the
// collection: every file is read once, its record items feed the min/max
// stats of every path — whole-file and per-zone — and one boundary pass —
// the speculative parallel indexer for large range-readable files, a
// sequential BoundaryScanner teed under the stats scan otherwise — serves
// all of them. The returned maps share one Splits table per collection
// (splits are a property of the file bytes, not of the indexed path). With
// a single path the stats pass is the streaming projected scan (nothing off
// the path is materialized); with several, each record is parsed once and
// every path is applied to it.
func BuildWith(src runtime.Source, collection string, paths []jsonparse.Path, opts BuildOptions) ([]*ZoneMap, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("index: no paths to build")
	}
	files, err := src.Files(collection)
	if err != nil {
		return nil, err
	}
	zoneGrain := opts.zoneGrain()
	splits := make(map[string][]int64, len(files))
	zms := make([]*ZoneMap, len(paths))
	for i, p := range paths {
		zms[i] = &ZoneMap{
			Collection: collection,
			Path:       append(jsonparse.Path(nil), p...),
			Files:      make(map[string]FileStats, len(files)),
			Zones:      make(map[string]PathZones, len(files)),
			Splits:     splits,
		}
	}
	for _, f := range files {
		stats := make([]FileStats, len(paths))
		zones := make([][]FileStats, len(paths))
		observe := func(pathIdx int, lineStart int64, it item.Item) error {
			switch it.Kind() {
			case item.KindObject, item.KindArray:
				return fmt.Errorf("path %s yields a %s; zone maps index scalar paths",
					paths[pathIdx], it.Kind())
			}
			stats[pathIdx].observe(it)
			if zoneGrain > 0 {
				zi := int(lineStart / zoneGrain)
				for len(zones[pathIdx]) <= zi {
					zones[pathIdx] = append(zones[pathIdx], FileStats{})
				}
				zones[pathIdx][zi].observe(it)
			}
			return nil
		}

		// Boundary pass: parallel phase 1 up front when the file is large
		// and range-readable, otherwise a sequential scanner teed under the
		// stats scan below.
		fileSplits, parallel, err := parallelFileSplits(src, f, opts)
		if err != nil {
			return nil, fmt.Errorf("index: %s: %w", f, err)
		}

		rc, err := src.Open(f)
		if err != nil {
			return nil, fmt.Errorf("index: %s: %w", f, err)
		}
		cr := &runtime.CountingReader{R: rc}
		var r io.Reader = cr
		var bs *jsonparse.BoundaryScanner
		if !parallel {
			bs = jsonparse.NewBoundaryScanner(opts.splitGrain())
			r = io.TeeReader(cr, bs)
		}
		lx := jsonparse.NewStreamLexerAt(r, jsonparse.DefaultChunkSize, 0)
		if len(paths) == 1 {
			_, err = jsonparse.ScanRecords(lx, paths[0], -1, func(ls int64, it item.Item) error {
				return observe(0, ls, it)
			})
		} else {
			_, err = jsonparse.ScanRecords(lx, nil, -1, func(ls int64, record item.Item) error {
				for i, p := range paths {
					for _, it := range jsonparse.ApplyPath(record, p) {
						if err := observe(i, ls, it); err != nil {
							return err
						}
					}
				}
				return nil
			})
		}
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("index: %s: %w", f, err)
		}
		if bs != nil {
			bs.Close()
			fileSplits = bs.Splits()
		}
		size := cr.N
		for i := range zms {
			zms[i].Files[f] = stats[i]
			if zoneGrain > 0 && size > 0 {
				// Pad to full coverage: records the path yields nothing for
				// still fall inside a (possibly empty) zone, so morsel
				// pruning never faces an uncovered byte range.
				z := zones[i]
				for int64(len(z))*zoneGrain < size {
					z = append(z, FileStats{})
				}
				zms[i].Zones[f] = PathZones{Grain: zoneGrain, Size: size, Stats: z}
			}
		}
		if len(fileSplits) > 0 {
			splits[f] = fileSplits
		}
	}
	return zms, nil
}

// parallelFileSplits builds the boundary index of one file with the
// speculative parallel indexer, when the build options and the source's
// capabilities allow it. ok reports whether the parallel pass ran (false
// means the caller should fall back to the sequential tee).
func parallelFileSplits(src runtime.Source, file string, opts BuildOptions) (splits []int64, ok bool, err error) {
	if opts.ParallelMinBytes < 0 {
		return nil, false, nil
	}
	min := opts.ParallelMinBytes
	if min == 0 {
		min = DefaultParallelMinBytes
	}
	ro, canRange := src.(runtime.RangeOpener)
	sz, canSize := src.(runtime.Sizer)
	if !canRange || !canSize {
		return nil, false, nil
	}
	size, err := sz.Size(file)
	if err != nil || size < min {
		return nil, false, nil
	}
	pi := jsonparse.ParallelIndexer{Workers: opts.Workers}
	splits, err = pi.SplitsRange(func(off int64) (io.ReadCloser, error) {
		return ro.OpenRange(file, off)
	}, size, opts.splitGrain(), 0)
	if err != nil {
		return nil, false, err
	}
	return splits, true, nil
}
