// Package index implements the paper's future-work direction (§6: "We are
// currently working on supporting indexing ... indexing will further
// improve the system's performance since the searched data volume will be
// significantly reduced").
//
// The index is a per-file zone map: for a collection and a projection path
// it records the minimum and maximum scalar value each file contains at
// that path. When a query's selection bounds the indexed path, the DATASCAN
// skips files whose [min,max] range cannot overlap the predicate — the
// searched data volume shrinks without touching query semantics (the
// SELECT operator still verifies every surviving tuple).
//
// Zone maps are built with one streaming pass over the collection and must
// be rebuilt when the underlying files change.
package index

import (
	"fmt"
	"io"
	"sync"

	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// DefaultSplitGrain is the record-boundary sampling granularity of a zone-map
// build: one record-start offset is kept per this many bytes of file, which
// bounds split-index memory at size/grain offsets per file while still
// letting morsel splitting (whose granularity is megabytes) cut exactly on
// record starts.
const DefaultSplitGrain int64 = 4 << 10

// FileStats is the zone-map entry of one file.
type FileStats struct {
	// Min and Max bound the values found at the indexed path (nil when the
	// file has none).
	Min, Max item.Item
	// Count is the number of values found.
	Count int64
}

// ZoneMap is a per-file min/max index of one (collection, path).
type ZoneMap struct {
	Collection string
	Path       jsonparse.Path
	Files      map[string]FileStats

	// Splits holds, per file, ascending record-start offsets sampled at
	// DefaultSplitGrain by the structural-index boundary scanner — a free
	// byproduct of the build's streaming pass (the scan bytes are teed
	// through the scanner). Morsel splitting aligns byte ranges to them.
	Splits map[string][]int64
}

// Build scans every file of the collection once and records the per-file
// min/max of the items the path yields. Files are read with the same record
// model DATASCAN uses — a concatenated stream of top-level values (NDJSON,
// newline-separated records, or one whole document) — so the map covers
// exactly the records a scan of the file would emit. Non-scalar items
// (objects, arrays) are rejected: zone maps index scalar paths.
func Build(src runtime.Source, collection string, path jsonparse.Path) (*ZoneMap, error) {
	files, err := src.Files(collection)
	if err != nil {
		return nil, err
	}
	zm := &ZoneMap{
		Collection: collection,
		Path:       append(jsonparse.Path(nil), path...),
		Files:      make(map[string]FileStats, len(files)),
		Splits:     make(map[string][]int64, len(files)),
	}
	for _, f := range files {
		rc, err := src.Open(f)
		if err != nil {
			return nil, fmt.Errorf("index: %s: %w", f, err)
		}
		var st FileStats
		bs := jsonparse.NewBoundaryScanner(DefaultSplitGrain)
		tee := io.TeeReader(rc, bs)
		lx := jsonparse.NewStreamLexerAt(tee, jsonparse.DefaultChunkSize, 0)
		_, err = jsonparse.ScanValues(lx, path, -1, func(it item.Item) error {
			switch it.Kind() {
			case item.KindObject, item.KindArray:
				return fmt.Errorf("path %s yields a %s; zone maps index scalar paths",
					path, it.Kind())
			}
			if st.Count == 0 {
				st.Min, st.Max = it, it
			} else {
				if item.Compare(it, st.Min) < 0 {
					st.Min = it
				}
				if item.Compare(it, st.Max) > 0 {
					st.Max = it
				}
			}
			st.Count++
			return nil
		})
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("index: %s: %w", f, err)
		}
		bs.Close()
		zm.Files[f] = st
		if sp := bs.Splits(); len(sp) > 0 {
			zm.Splits[f] = sp
		}
	}
	return zm, nil
}

// Registry holds the zone maps of an engine, keyed by collection and path.
// It implements runtime.IndexLookup. Safe for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	maps map[string]*ZoneMap
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{maps: map[string]*ZoneMap{}} }

func key(collection string, path jsonparse.Path) string {
	return collection + "\x00" + path.String()
}

// Add registers (or replaces) a zone map.
func (r *Registry) Add(zm *ZoneMap) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maps[key(zm.Collection, zm.Path)] = zm
}

// FileRange implements runtime.IndexLookup: it reports the indexed value
// range of one file, if a matching zone map exists.
func (r *Registry) FileRange(collection string, path jsonparse.Path, file string) (runtime.FileRange, bool) {
	r.mu.RLock()
	zm, ok := r.maps[key(collection, path)]
	r.mu.RUnlock()
	if !ok {
		return runtime.FileRange{}, false
	}
	st, ok := zm.Files[file]
	if !ok {
		return runtime.FileRange{}, false
	}
	return runtime.FileRange{Min: st.Min, Max: st.Max, Count: st.Count}, true
}

// FileSplits implements runtime.SplitLookup: it reports the sampled
// record-start offsets of one file if any registered zone map of the
// collection carries them. Splits are a property of the file bytes, not of
// the indexed path, so any map of the collection serves.
func (r *Registry) FileSplits(collection, file string) ([]int64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, zm := range r.maps {
		if zm.Collection != collection {
			continue
		}
		if sp, ok := zm.Splits[file]; ok && len(sp) > 0 {
			return sp, true
		}
	}
	return nil, false
}

// Len reports the number of registered zone maps.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.maps)
}
