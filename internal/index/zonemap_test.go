package index

import (
	"fmt"
	"io"
	"testing"

	"vxq/internal/gen"
	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

func datePath() jsonparse.Path {
	return jsonparse.Path{
		jsonparse.KeyStep("root"), jsonparse.MembersStep(),
		jsonparse.KeyStep("results"), jsonparse.MembersStep(),
		jsonparse.KeyStep("date"),
	}
}

func yearPartitionedSource(t *testing.T, files int) runtime.Source {
	t.Helper()
	cfg := gen.Default()
	cfg.Files = files
	cfg.RecordsPerFile = 4
	cfg.MeasurementsPerArray = 10
	cfg.PartitionByYear = true
	docs, _, err := cfg.InMemory()
	if err != nil {
		t.Fatal(err)
	}
	return &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}
}

func TestBuildZoneMap(t *testing.T) {
	src := yearPartitionedSource(t, 6)
	zm, err := Build(src, "/sensors", datePath())
	if err != nil {
		t.Fatal(err)
	}
	if len(zm.Files) != 6 {
		t.Fatalf("files = %d", len(zm.Files))
	}
	for f, st := range zm.Files {
		if st.Count != 4*10 {
			t.Errorf("%s: count = %d, want 40", f, st.Count)
		}
		if st.Min == nil || st.Max == nil {
			t.Fatalf("%s: missing bounds", f)
		}
		if item.Compare(st.Min, st.Max) > 0 {
			t.Errorf("%s: min > max", f)
		}
		// Year-partitioned: min and max share the file's year.
		minY := string(st.Min.(item.String))[:4]
		maxY := string(st.Max.(item.String))[:4]
		if minY != maxY {
			t.Errorf("%s: year range %s..%s, want single year", f, minY, maxY)
		}
	}
}

func TestBuildRejectsNonScalarPath(t *testing.T) {
	src := yearPartitionedSource(t, 1)
	objPath := jsonparse.Path{jsonparse.KeyStep("root"), jsonparse.MembersStep()}
	if _, err := Build(src, "/sensors", objPath); err == nil {
		t.Fatal("object path must be rejected")
	}
	if _, err := Build(src, "/missing", datePath()); err == nil {
		t.Fatal("missing collection must fail")
	}
}

func TestRegistryLookup(t *testing.T) {
	src := yearPartitionedSource(t, 3)
	zm, err := Build(src, "/sensors", datePath())
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.Add(zm)
	if reg.Len() != 1 {
		t.Fatalf("len = %d", reg.Len())
	}
	files, _ := src.Files("/sensors")
	r, ok := reg.FileRange("/sensors", datePath(), files[0])
	if !ok {
		t.Fatal("range not found")
	}
	if r.Count == 0 || r.Min == nil {
		t.Errorf("range = %+v", r)
	}
	// Misses: wrong path, wrong collection, wrong file.
	if _, ok := reg.FileRange("/sensors", datePath().Append(jsonparse.MembersStep()), files[0]); ok {
		t.Error("wrong path should miss")
	}
	if _, ok := reg.FileRange("/other", datePath(), files[0]); ok {
		t.Error("wrong collection should miss")
	}
	if _, ok := reg.FileRange("/sensors", datePath(), "nope.json"); ok {
		t.Error("wrong file should miss")
	}
}

func TestParsePath(t *testing.T) {
	p, err := jsonparse.ParsePath(`("root")()("results")()("date")`)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(datePath()) {
		t.Errorf("parsed = %s", p)
	}
	p, err = jsonparse.ParsePath(`("items")(3)`)
	if err != nil {
		t.Fatal(err)
	}
	want := jsonparse.Path{jsonparse.KeyStep("items"), jsonparse.IndexStep(3)}
	if !p.Equal(want) {
		t.Errorf("parsed = %s", p)
	}
	for _, bad := range []string{"", "root", "(", `("a"`, `("a")x`, "(0)", "(x)"} {
		if _, err := jsonparse.ParsePath(bad); err == nil {
			t.Errorf("ParsePath(%q) should fail", bad)
		}
	}
	// Round trip.
	if rt, err := jsonparse.ParsePath(datePath().String()); err != nil || !rt.Equal(datePath()) {
		t.Errorf("round trip failed: %v %v", rt, err)
	}
}

// TestBuildNDJSONWithSplits: zone maps share DATASCAN's record model — a
// file may be a stream of newline-delimited documents — and the build's
// structural-index pass records record-start offsets as a byproduct. Every
// recorded split must be the byte just past an out-of-string newline,
// ascending, one per DefaultSplitGrain window at most.
func TestBuildNDJSONWithSplits(t *testing.T) {
	var data []byte
	rec := `{"root":[{"metadata":{"count":1},"results":[{"date":"2013-12-01T00:00","dataType":"TMIN","value":%d,"note":"esc\\nape %s"}]}]}` + "\n"
	pad := make([]byte, 150)
	for i := range pad {
		pad[i] = 'x'
	}
	for i := 0; i < 200; i++ {
		data = append(data, []byte(fmt.Sprintf(rec, i%40, string(pad)))...)
	}
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{
		"/nd": {"recs.json": data},
	}}
	valuePath := jsonparse.Path{
		jsonparse.KeyStep("root"), jsonparse.MembersStep(),
		jsonparse.KeyStep("results"), jsonparse.MembersStep(),
		jsonparse.KeyStep("value"),
	}
	zm, err := Build(src, "/nd", valuePath)
	if err != nil {
		t.Fatal(err)
	}
	st := zm.Files["/nd/recs.json"]
	if st.Count != 200 {
		t.Fatalf("count = %d, want 200 (one value per NDJSON record)", st.Count)
	}
	splits := zm.Splits["/nd/recs.json"]
	if len(splits) == 0 {
		t.Fatal("no splits recorded for a newline-delimited file")
	}
	prev := int64(0)
	for _, s := range splits {
		if s <= prev {
			t.Fatalf("splits not strictly ascending at %d", s)
		}
		if s > int64(len(data)) || data[s-1] != '\n' {
			t.Fatalf("split %d is not the byte just past a newline", s)
		}
		prev = s
	}
	if int64(len(splits)) > int64(len(data))/DefaultSplitGrain+1 {
		t.Fatalf("%d splits for %d bytes: sampling grain not applied", len(splits), len(data))
	}
	reg := NewRegistry()
	reg.Add(zm)
	if sp, ok := reg.FileSplits("/nd", "/nd/recs.json"); !ok || len(sp) != len(splits) {
		t.Fatalf("FileSplits = %d, ok=%v", len(sp), ok)
	}
	if _, ok := reg.FileSplits("/other", "/nd/recs.json"); ok {
		t.Error("wrong collection should miss")
	}
	if _, ok := reg.FileSplits("/nd", "nope.json"); ok {
		t.Error("wrong file should miss")
	}
}

// ndjsonCorpus builds an in-memory NDJSON collection with strings that
// exercise the speculative indexer's hard cases: escaped quotes, backslash
// runs, and record lengths that put quotes and escapes at arbitrary offsets
// relative to chunk boundaries.
func ndjsonCorpus(files, records int) *runtime.MemSource {
	docs := map[string][]byte{}
	for f := 0; f < files; f++ {
		var data []byte
		for i := 0; i < records; i++ {
			pad := make([]byte, 37+(i*13)%211)
			for j := range pad {
				pad[j] = byte('a' + (i+j)%26)
			}
			rec := fmt.Sprintf(
				`{"root":[{"results":[{"date":"2013-12-%02dT00:00","value":%d,"note":"esc\\%s quote \" brace { %s"}]}]}`,
				1+i%28, (i*7)%100, string(pad[:1+i%3]), string(pad))
			data = append(data, rec...)
			data = append(data, '\n')
		}
		docs[fmt.Sprintf("part-%d.json", f)] = data
	}
	return &runtime.MemSource{Collections: map[string]map[string][]byte{"/nd": docs}}
}

// TestParallelBuildSplitsIdentical is the CI smoke gate for the speculative
// parallel boundary pass: on an NDJSON corpus, a Build forced through the
// parallel indexer must produce the same ZoneMap — stats and Splits,
// byte-for-byte — as a Build with the parallel pass disabled.
func TestParallelBuildSplitsIdentical(t *testing.T) {
	src := ndjsonCorpus(3, 400)
	valuePath := jsonparse.Path{
		jsonparse.KeyStep("root"), jsonparse.MembersStep(),
		jsonparse.KeyStep("results"), jsonparse.MembersStep(),
		jsonparse.KeyStep("value"),
	}
	for _, grain := range []int64{-1, 256, 4 << 10} {
		seq, err := BuildWith(src, "/nd", []jsonparse.Path{valuePath},
			BuildOptions{SplitGrain: grain, ParallelMinBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := BuildWith(src, "/nd", []jsonparse.Path{valuePath},
			BuildOptions{SplitGrain: grain, ParallelMinBytes: 1, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		files, _ := src.Files("/nd")
		for _, f := range files {
			ss, ps := seq[0].Splits[f], par[0].Splits[f]
			if len(ss) == 0 {
				t.Fatalf("grain %d: %s: sequential build recorded no splits", grain, f)
			}
			if len(ss) != len(ps) {
				t.Fatalf("grain %d: %s: splits %d (seq) vs %d (par)", grain, f, len(ss), len(ps))
			}
			for i := range ss {
				if ss[i] != ps[i] {
					t.Fatalf("grain %d: %s: split[%d] = %d (seq) vs %d (par)", grain, f, i, ss[i], ps[i])
				}
			}
			sst, pst := seq[0].Files[f], par[0].Files[f]
			if sst.Count != pst.Count || item.Compare(sst.Min, pst.Min) != 0 || item.Compare(sst.Max, pst.Max) != 0 {
				t.Fatalf("grain %d: %s: stats diverge: %+v vs %+v", grain, f, sst, pst)
			}
		}
	}
}

// countingSource wraps a Source and counts Open calls per file. Embedding
// hides the optional RangeOpener/Sizer capabilities, which also pins the
// build to the sequential tee path.
type countingSource struct {
	runtime.Source
	opens map[string]int
}

func (c *countingSource) Open(path string) (io.ReadCloser, error) {
	c.opens[path]++
	return c.Source.Open(path)
}

// TestBuildWithSharedScan: one BuildWith over several paths must read every
// file exactly once and produce, per path, the same zone map a dedicated
// Build would.
func TestBuildWithSharedScan(t *testing.T) {
	mem := ndjsonCorpus(2, 120)
	paths := []jsonparse.Path{
		{jsonparse.KeyStep("root"), jsonparse.MembersStep(),
			jsonparse.KeyStep("results"), jsonparse.MembersStep(), jsonparse.KeyStep("value")},
		{jsonparse.KeyStep("root"), jsonparse.MembersStep(),
			jsonparse.KeyStep("results"), jsonparse.MembersStep(), jsonparse.KeyStep("date")},
	}
	cs := &countingSource{Source: mem, opens: map[string]int{}}
	zms, err := BuildWith(cs, "/nd", paths, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(zms) != len(paths) {
		t.Fatalf("zone maps = %d, want %d", len(zms), len(paths))
	}
	files, _ := mem.Files("/nd")
	for _, f := range files {
		if cs.opens[f] != 1 {
			t.Errorf("%s opened %d times, want 1 (shared scan)", f, cs.opens[f])
		}
	}
	for i, p := range paths {
		solo, err := Build(mem, "/nd", p)
		if err != nil {
			t.Fatal(err)
		}
		if !zms[i].Path.Equal(p) {
			t.Errorf("zms[%d].Path = %s, want %s", i, zms[i].Path, p)
		}
		for _, f := range files {
			got, want := zms[i].Files[f], solo.Files[f]
			if got.Count != want.Count || item.Compare(got.Min, want.Min) != 0 ||
				item.Compare(got.Max, want.Max) != 0 {
				t.Errorf("path %s, %s: shared %+v vs solo %+v", p, f, got, want)
			}
			ss, ws := zms[i].Splits[f], solo.Splits[f]
			if len(ss) != len(ws) {
				t.Errorf("path %s, %s: splits %d vs %d", p, f, len(ss), len(ws))
			}
		}
	}
	// The returned maps share one Splits table: a write through one is
	// visible through the other.
	zms[0].Splits["sentinel"] = []int64{1}
	if _, ok := zms[1].Splits["sentinel"]; !ok {
		t.Error("zone maps of one BuildWith must share the Splits table")
	}
	// Multi-path builds inherit the scalar-path check.
	objPath := jsonparse.Path{jsonparse.KeyStep("root"), jsonparse.MembersStep()}
	if _, err := BuildWith(mem, "/nd", []jsonparse.Path{paths[0], objPath}, BuildOptions{}); err == nil {
		t.Error("object path must be rejected in a multi-path build")
	}
	if _, err := BuildWith(mem, "/nd", nil, BuildOptions{}); err == nil {
		t.Error("empty path list must be rejected")
	}
}

// TestRecordFileSplits: a recorded boundary index is served by FileSplits,
// takes precedence over zone-map splits for the same file, and an empty
// recording is a no-op.
func TestRecordFileSplits(t *testing.T) {
	reg := NewRegistry()
	if _, ok := reg.FileSplits("/c", "f.json"); ok {
		t.Fatal("empty registry should miss")
	}
	reg.RecordFileSplits("/c", "f.json", nil)
	if _, ok := reg.FileSplits("/c", "f.json"); ok {
		t.Fatal("empty recording must be a no-op")
	}
	reg.RecordFileSplits("/c", "f.json", []int64{128, 256})
	sp, ok := reg.FileSplits("/c", "f.json")
	if !ok || len(sp) != 2 || sp[0] != 128 || sp[1] != 256 {
		t.Fatalf("FileSplits = %v, ok=%v", sp, ok)
	}
	// A zone map for the same collection carries different splits for the
	// same file; the recorded index wins.
	reg.Add(&ZoneMap{
		Collection: "/c",
		Path:       jsonparse.Path{jsonparse.KeyStep("x")},
		Files:      map[string]FileStats{},
		Splits:     map[string][]int64{"f.json": {512}, "g.json": {64}},
	})
	if sp, _ := reg.FileSplits("/c", "f.json"); len(sp) != 2 || sp[0] != 128 {
		t.Errorf("recorded splits must take precedence, got %v", sp)
	}
	if sp, ok := reg.FileSplits("/c", "g.json"); !ok || len(sp) != 1 || sp[0] != 64 {
		t.Errorf("zone-map splits must still serve unrecorded files, got %v ok=%v", sp, ok)
	}
	if _, ok := reg.FileSplits("/other", "f.json"); ok {
		t.Error("wrong collection should miss")
	}
}
