package index

import (
	"fmt"
	"testing"

	"vxq/internal/gen"
	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

func datePath() jsonparse.Path {
	return jsonparse.Path{
		jsonparse.KeyStep("root"), jsonparse.MembersStep(),
		jsonparse.KeyStep("results"), jsonparse.MembersStep(),
		jsonparse.KeyStep("date"),
	}
}

func yearPartitionedSource(t *testing.T, files int) runtime.Source {
	t.Helper()
	cfg := gen.Default()
	cfg.Files = files
	cfg.RecordsPerFile = 4
	cfg.MeasurementsPerArray = 10
	cfg.PartitionByYear = true
	docs, _, err := cfg.InMemory()
	if err != nil {
		t.Fatal(err)
	}
	return &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}
}

func TestBuildZoneMap(t *testing.T) {
	src := yearPartitionedSource(t, 6)
	zm, err := Build(src, "/sensors", datePath())
	if err != nil {
		t.Fatal(err)
	}
	if len(zm.Files) != 6 {
		t.Fatalf("files = %d", len(zm.Files))
	}
	for f, st := range zm.Files {
		if st.Count != 4*10 {
			t.Errorf("%s: count = %d, want 40", f, st.Count)
		}
		if st.Min == nil || st.Max == nil {
			t.Fatalf("%s: missing bounds", f)
		}
		if item.Compare(st.Min, st.Max) > 0 {
			t.Errorf("%s: min > max", f)
		}
		// Year-partitioned: min and max share the file's year.
		minY := string(st.Min.(item.String))[:4]
		maxY := string(st.Max.(item.String))[:4]
		if minY != maxY {
			t.Errorf("%s: year range %s..%s, want single year", f, minY, maxY)
		}
	}
}

func TestBuildRejectsNonScalarPath(t *testing.T) {
	src := yearPartitionedSource(t, 1)
	objPath := jsonparse.Path{jsonparse.KeyStep("root"), jsonparse.MembersStep()}
	if _, err := Build(src, "/sensors", objPath); err == nil {
		t.Fatal("object path must be rejected")
	}
	if _, err := Build(src, "/missing", datePath()); err == nil {
		t.Fatal("missing collection must fail")
	}
}

func TestRegistryLookup(t *testing.T) {
	src := yearPartitionedSource(t, 3)
	zm, err := Build(src, "/sensors", datePath())
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.Add(zm)
	if reg.Len() != 1 {
		t.Fatalf("len = %d", reg.Len())
	}
	files, _ := src.Files("/sensors")
	r, ok := reg.FileRange("/sensors", datePath(), files[0])
	if !ok {
		t.Fatal("range not found")
	}
	if r.Count == 0 || r.Min == nil {
		t.Errorf("range = %+v", r)
	}
	// Misses: wrong path, wrong collection, wrong file.
	if _, ok := reg.FileRange("/sensors", datePath().Append(jsonparse.MembersStep()), files[0]); ok {
		t.Error("wrong path should miss")
	}
	if _, ok := reg.FileRange("/other", datePath(), files[0]); ok {
		t.Error("wrong collection should miss")
	}
	if _, ok := reg.FileRange("/sensors", datePath(), "nope.json"); ok {
		t.Error("wrong file should miss")
	}
}

func TestParsePath(t *testing.T) {
	p, err := jsonparse.ParsePath(`("root")()("results")()("date")`)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(datePath()) {
		t.Errorf("parsed = %s", p)
	}
	p, err = jsonparse.ParsePath(`("items")(3)`)
	if err != nil {
		t.Fatal(err)
	}
	want := jsonparse.Path{jsonparse.KeyStep("items"), jsonparse.IndexStep(3)}
	if !p.Equal(want) {
		t.Errorf("parsed = %s", p)
	}
	for _, bad := range []string{"", "root", "(", `("a"`, `("a")x`, "(0)", "(x)"} {
		if _, err := jsonparse.ParsePath(bad); err == nil {
			t.Errorf("ParsePath(%q) should fail", bad)
		}
	}
	// Round trip.
	if rt, err := jsonparse.ParsePath(datePath().String()); err != nil || !rt.Equal(datePath()) {
		t.Errorf("round trip failed: %v %v", rt, err)
	}
}

// TestBuildNDJSONWithSplits: zone maps share DATASCAN's record model — a
// file may be a stream of newline-delimited documents — and the build's
// structural-index pass records record-start offsets as a byproduct. Every
// recorded split must be the byte just past an out-of-string newline,
// ascending, one per DefaultSplitGrain window at most.
func TestBuildNDJSONWithSplits(t *testing.T) {
	var data []byte
	rec := `{"root":[{"metadata":{"count":1},"results":[{"date":"2013-12-01T00:00","dataType":"TMIN","value":%d,"note":"esc\\nape %s"}]}]}` + "\n"
	pad := make([]byte, 150)
	for i := range pad {
		pad[i] = 'x'
	}
	for i := 0; i < 200; i++ {
		data = append(data, []byte(fmt.Sprintf(rec, i%40, string(pad)))...)
	}
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{
		"/nd": {"recs.json": data},
	}}
	valuePath := jsonparse.Path{
		jsonparse.KeyStep("root"), jsonparse.MembersStep(),
		jsonparse.KeyStep("results"), jsonparse.MembersStep(),
		jsonparse.KeyStep("value"),
	}
	zm, err := Build(src, "/nd", valuePath)
	if err != nil {
		t.Fatal(err)
	}
	st := zm.Files["/nd/recs.json"]
	if st.Count != 200 {
		t.Fatalf("count = %d, want 200 (one value per NDJSON record)", st.Count)
	}
	splits := zm.Splits["/nd/recs.json"]
	if len(splits) == 0 {
		t.Fatal("no splits recorded for a newline-delimited file")
	}
	prev := int64(0)
	for _, s := range splits {
		if s <= prev {
			t.Fatalf("splits not strictly ascending at %d", s)
		}
		if s > int64(len(data)) || data[s-1] != '\n' {
			t.Fatalf("split %d is not the byte just past a newline", s)
		}
		prev = s
	}
	if int64(len(splits)) > int64(len(data))/DefaultSplitGrain+1 {
		t.Fatalf("%d splits for %d bytes: sampling grain not applied", len(splits), len(data))
	}
	reg := NewRegistry()
	reg.Add(zm)
	if sp, ok := reg.FileSplits("/nd", "/nd/recs.json"); !ok || len(sp) != len(splits) {
		t.Fatalf("FileSplits = %d, ok=%v", len(sp), ok)
	}
	if _, ok := reg.FileSplits("/other", "/nd/recs.json"); ok {
		t.Error("wrong collection should miss")
	}
	if _, ok := reg.FileSplits("/nd", "nope.json"); ok {
		t.Error("wrong file should miss")
	}
}
