package index

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

func testSidecar() *Sidecar {
	return &Sidecar{
		Ident:      runtime.FileIdent{Size: 4096, ModTimeNanos: 1234567890},
		SplitGrain: 4 << 10,
		Splits:     []int64{100, 350, 1200, 4000},
		Paths: []SidecarPathZones{
			{
				Path:      `("root")()("value")`,
				ZoneGrain: 1024,
				Zones: []FileStats{
					{Min: item.Number(1), Max: item.Number(9), Count: 3},
					{}, // empty zone: no values at the path in this byte range
					{Min: item.String("a"), Max: item.String("z"), Count: 7},
					{Min: item.Number(-4), Max: item.Number(-4), Count: 1},
				},
			},
			{Path: `("other")`, ZoneGrain: 2048, Zones: []FileStats{{}, {}}},
		},
	}
}

func TestSidecarRoundTrip(t *testing.T) {
	want := testSidecar()
	got, err := DecodeSidecar(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Ident != want.Ident || got.SplitGrain != want.SplitGrain {
		t.Fatalf("header round trip: %+v vs %+v", got, want)
	}
	if len(got.Splits) != len(want.Splits) {
		t.Fatalf("splits = %v, want %v", got.Splits, want.Splits)
	}
	for i := range want.Splits {
		if got.Splits[i] != want.Splits[i] {
			t.Fatalf("splits = %v, want %v", got.Splits, want.Splits)
		}
	}
	if len(got.Paths) != len(want.Paths) {
		t.Fatalf("paths = %d, want %d", len(got.Paths), len(want.Paths))
	}
	for i, wp := range want.Paths {
		gp := got.Paths[i]
		if gp.Path != wp.Path || gp.ZoneGrain != wp.ZoneGrain || len(gp.Zones) != len(wp.Zones) {
			t.Fatalf("path %d: %+v vs %+v", i, gp, wp)
		}
		for j, wz := range wp.Zones {
			gz := gp.Zones[j]
			if gz.Count != wz.Count {
				t.Fatalf("path %d zone %d: count %d vs %d", i, j, gz.Count, wz.Count)
			}
			if wz.Count > 0 && (item.Compare(gz.Min, wz.Min) != 0 || item.Compare(gz.Max, wz.Max) != 0) {
				t.Fatalf("path %d zone %d: %v..%v vs %v..%v", i, j, gz.Min, gz.Max, wz.Min, wz.Max)
			}
		}
	}
}

// TestSidecarDecodeRejectsCorruption: every malformation — bad magic, bad
// version, flipped bytes, truncation, trailing garbage — must fail decoding
// (the caller treats any error as a cache miss; it must never panic or
// silently succeed).
func TestSidecarDecodeRejectsCorruption(t *testing.T) {
	good := testSidecar().Encode()
	if _, err := DecodeSidecar(good); err != nil {
		t.Fatal(err)
	}

	reseal := func(b []byte) []byte {
		// Recompute the CRC so the corruption under test is reached.
		body := b[:len(b)-4]
		return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
	}

	t.Run("magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] = 'X'
		if _, err := DecodeSidecar(b); err == nil {
			t.Fatal("bad magic must fail")
		}
	})
	t.Run("version", func(t *testing.T) {
		b := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(b[4:], SidecarVersion+1)
		if _, err := DecodeSidecar(reseal(b)); err == nil {
			t.Fatal("future version must fail")
		}
	})
	t.Run("crc", func(t *testing.T) {
		for off := 0; off < len(good); off += 7 {
			b := append([]byte(nil), good...)
			b[off] ^= 0x40
			if _, err := DecodeSidecar(b); err == nil {
				t.Fatalf("flipped byte at %d must fail", off)
			}
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for n := 0; n < len(good); n += 3 {
			if _, err := DecodeSidecar(good[:n]); err == nil {
				t.Fatalf("truncation to %d bytes must fail", n)
			}
		}
	})
	t.Run("trailing", func(t *testing.T) {
		b := append(append([]byte(nil), good[:len(good)-4]...), 0, 0, 0)
		if _, err := DecodeSidecar(reseal(b)); err == nil {
			t.Fatal("trailing bytes must fail")
		}
	})
}

func TestLoadSidecarValidatesIdentity(t *testing.T) {
	dir := t.TempDir()
	sc := testSidecar()
	path := filepath.Join(dir, "data.json"+runtime.SidecarSuffix)
	if err := WriteSidecar(path, sc); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSidecar(path, sc.Ident); err != nil {
		t.Fatalf("matching identity: %v", err)
	}
	if _, err := LoadSidecar(path, runtime.FileIdent{Size: sc.Ident.Size + 1, ModTimeNanos: sc.Ident.ModTimeNanos}); err == nil {
		t.Fatal("size mismatch must fail")
	}
	if _, err := LoadSidecar(path, runtime.FileIdent{Size: sc.Ident.Size, ModTimeNanos: sc.Ident.ModTimeNanos + 1}); err == nil {
		t.Fatal("mtime mismatch must fail")
	}
	if _, err := LoadSidecar(filepath.Join(dir, "missing.vxqx"), sc.Ident); err == nil {
		t.Fatal("missing sidecar must fail")
	}
}

func TestSidecarPathFor(t *testing.T) {
	if got := SidecarPathFor("/data/a.json", ""); got != "/data/a.json"+runtime.SidecarSuffix {
		t.Errorf("default placement = %q", got)
	}
	a := SidecarPathFor("/data/a.json", "/cache")
	b := SidecarPathFor("/data/b.json", "/cache")
	if filepath.Dir(a) != "/cache" || a == b {
		t.Errorf("cache-dir placement: %q vs %q", a, b)
	}
	if filepath.Ext(a) != runtime.SidecarSuffix {
		t.Errorf("cache-dir sidecar %q lacks the suffix", a)
	}
}

// writeNDJSONDir writes a small NDJSON collection to dir and returns a
// DirSource over it.
func writeNDJSONDir(t *testing.T, dir string, files, records int) *runtime.DirSource {
	t.Helper()
	for f := 0; f < files; f++ {
		var data []byte
		for i := 0; i < records; i++ {
			data = append(data, fmt.Sprintf(`{"root":[{"results":[{"value":%d,"pad":"%0128d"}]}]}`, f*1000+i, i)...)
			data = append(data, '\n')
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("part-%d.json", f)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return &runtime.DirSource{Mounts: map[string]string{"/nd": dir}}
}

func valuePath() jsonparse.Path {
	return jsonparse.Path{
		jsonparse.KeyStep("root"), jsonparse.MembersStep(),
		jsonparse.KeyStep("results"), jsonparse.MembersStep(),
		jsonparse.KeyStep("value"),
	}
}

// TestRegistryWarmStartFromSidecars: what one registry builds and persists, a
// second (fresh, simulating a new process) must serve from sidecars alone —
// splits, per-zone stats, and the file-level range aggregated from zones.
func TestRegistryWarmStartFromSidecars(t *testing.T) {
	dir := t.TempDir()
	src := writeNDJSONDir(t, dir, 2, 50)
	pers := &Persistence{Ident: src.Ident}

	zms, err := BuildWith(src, "/nd", []jsonparse.Path{valuePath()},
		BuildOptions{SplitGrain: 512, ZoneGrain: 1024})
	if err != nil {
		t.Fatal(err)
	}
	reg1 := NewRegistry()
	reg1.SetPersistence(pers)
	reg1.Add(zms[0])
	if w := reg1.Stats().SidecarWrites; w != 2 {
		t.Fatalf("sidecar writes = %d, want 2", w)
	}
	files, _ := src.Files("/nd")
	for _, f := range files {
		if _, err := os.Stat(f + runtime.SidecarSuffix); err != nil {
			t.Fatalf("no sidecar next to %s: %v", f, err)
		}
	}

	// A fresh registry — no zone maps, persistence only — must go warm.
	reg2 := NewRegistry()
	reg2.SetPersistence(pers)
	for _, f := range files {
		sp, ok := reg2.FileSplits("/nd", f)
		if !ok || len(sp) == 0 {
			t.Fatalf("%s: no splits from sidecar", f)
		}
		want := zms[0].Splits[f]
		if len(sp) != len(want) {
			t.Fatalf("%s: %d splits from sidecar, %d from build", f, len(sp), len(want))
		}
		for i := range sp {
			if sp[i] != want[i] {
				t.Fatalf("%s: split[%d] = %d, want %d", f, i, sp[i], want[i])
			}
		}
		zones, ok := reg2.FileZones("/nd", valuePath(), f)
		if !ok || len(zones) == 0 {
			t.Fatalf("%s: no zones from sidecar", f)
		}
		if zones[len(zones)-1].End != zms[0].Zones[f].Size {
			t.Fatalf("%s: zones end at %d, file is %d bytes", f, zones[len(zones)-1].End, zms[0].Zones[f].Size)
		}
		r, ok := reg2.FileRange("/nd", valuePath(), f)
		if !ok {
			t.Fatalf("%s: no range from sidecar zones", f)
		}
		want2 := zms[0].Files[f]
		if r.Count != want2.Count || item.Compare(r.Min, want2.Min) != 0 || item.Compare(r.Max, want2.Max) != 0 {
			t.Fatalf("%s: range %v..%v (%d) from sidecar, want %v..%v (%d)",
				f, r.Min, r.Max, r.Count, want2.Min, want2.Max, want2.Count)
		}
	}
	st := reg2.Stats()
	if st.SidecarLoads != 2 || st.SidecarMisses != 0 {
		t.Fatalf("stats = %+v, want 2 loads, 0 misses", st)
	}
	// Negative caching: repeated lookups must not re-read the disk.
	for _, f := range files {
		reg2.FileSplits("/nd", f)
	}
	if st2 := reg2.Stats(); st2.SidecarLoads != st.SidecarLoads {
		t.Fatalf("repeated lookups re-loaded sidecars: %+v", st2)
	}
}

// TestRegistryInvalidation: a changed file (mtime or size) makes its sidecar
// stale — lookups miss, fall back cold, and the next recording rewrites the
// sidecar under the new identity. A corrupt sidecar is likewise a silent
// miss.
func TestRegistryInvalidation(t *testing.T) {
	dir := t.TempDir()
	src := writeNDJSONDir(t, dir, 1, 50)
	pers := &Persistence{Ident: src.Ident}
	files, _ := src.Files("/nd")
	file := files[0]

	reg := NewRegistry()
	reg.SetPersistence(pers)
	reg.RecordFileSplits("/nd", file, []int64{95, 190})
	if w := reg.Stats().SidecarWrites; w != 1 {
		t.Fatalf("writes = %d, want 1", w)
	}

	t.Run("mtime", func(t *testing.T) {
		if err := os.Chtimes(file, time.Now(), time.Now().Add(3*time.Second)); err != nil {
			t.Fatal(err)
		}
		fresh := NewRegistry()
		fresh.SetPersistence(pers)
		if _, ok := fresh.FileSplits("/nd", file); ok {
			t.Fatal("stale sidecar served after mtime change")
		}
		if st := fresh.Stats(); st.SidecarMisses != 1 || st.SidecarLoads != 0 {
			t.Fatalf("stats = %+v, want 1 miss", st)
		}
		// The cold scan records fresh splits; the sidecar is rewritten and a
		// fresh registry reads it warm again.
		fresh.RecordFileSplits("/nd", file, []int64{95, 190})
		warm := NewRegistry()
		warm.SetPersistence(pers)
		if sp, ok := warm.FileSplits("/nd", file); !ok || len(sp) != 2 {
			t.Fatalf("rewritten sidecar not served: %v ok=%v", sp, ok)
		}
	})

	t.Run("size", func(t *testing.T) {
		f, err := os.OpenFile(file, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("{\"root\":[]}\n")); err != nil {
			t.Fatal(err)
		}
		f.Close()
		fresh := NewRegistry()
		fresh.SetPersistence(pers)
		if _, ok := fresh.FileSplits("/nd", file); ok {
			t.Fatal("stale sidecar served after size change")
		}
	})

	t.Run("in-memory staleness", func(t *testing.T) {
		// The same registry that already served the file warm must notice
		// the identity change on the next lookup — memory entries revalidate
		// like sidecars do.
		reg2 := NewRegistry()
		reg2.SetPersistence(pers)
		reg2.RecordFileSplits("/nd", file, []int64{95})
		if _, ok := reg2.FileSplits("/nd", file); !ok {
			t.Fatal("recorded splits not served")
		}
		if err := os.Chtimes(file, time.Now(), time.Now().Add(7*time.Second)); err != nil {
			t.Fatal(err)
		}
		if _, ok := reg2.FileSplits("/nd", file); ok {
			t.Fatal("in-memory entry served after the file changed")
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		reg3 := NewRegistry()
		reg3.SetPersistence(pers)
		reg3.RecordFileSplits("/nd", file, []int64{95})
		scPath := file + runtime.SidecarSuffix
		b, err := os.ReadFile(scPath)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0xff
		if err := os.WriteFile(scPath, b, 0o644); err != nil {
			t.Fatal(err)
		}
		fresh := NewRegistry()
		fresh.SetPersistence(pers)
		if _, ok := fresh.FileSplits("/nd", file); ok {
			t.Fatal("corrupt sidecar served")
		}
		if st := fresh.Stats(); st.SidecarMisses != 1 {
			t.Fatalf("stats = %+v, want 1 miss", st)
		}
		// Truncated: same story.
		if err := os.WriteFile(scPath, b[:7], 0o644); err != nil {
			t.Fatal(err)
		}
		fresh2 := NewRegistry()
		fresh2.SetPersistence(pers)
		if _, ok := fresh2.FileSplits("/nd", file); ok {
			t.Fatal("truncated sidecar served")
		}
	})
}

// TestRegistryNoPersistence: without persistence (or for files without a
// durable identity) the registry is memory-only — nothing is written to disk.
func TestRegistryNoPersistence(t *testing.T) {
	dir := t.TempDir()
	src := writeNDJSONDir(t, dir, 1, 20)
	files, _ := src.Files("/nd")

	reg := NewRegistry()
	reg.RecordFileSplits("/nd", files[0], []int64{64})
	if _, err := os.Stat(files[0] + runtime.SidecarSuffix); !os.IsNotExist(err) {
		t.Fatalf("sidecar written without persistence: %v", err)
	}

	// MemSource files report no durable identity: persistence configured but
	// inert for them.
	mem := &runtime.MemSource{Collections: map[string]map[string][]byte{
		"/m": {"doc.json": []byte(`{"root":[]}` + "\n")},
	}}
	reg2 := NewRegistry()
	reg2.SetPersistence(&Persistence{Ident: mem.Ident})
	reg2.RecordFileSplits("/m", "doc.json", []int64{12})
	if sp, ok := reg2.FileSplits("/m", "doc.json"); !ok || len(sp) != 1 {
		t.Fatalf("memory-only splits lost: %v ok=%v", sp, ok)
	}
	if st := reg2.Stats(); st.SidecarWrites != 0 || st.SidecarLoads != 0 {
		t.Fatalf("stats = %+v, want no sidecar traffic", st)
	}
}

// TestRegistryCacheDir: with a cache directory configured, sidecars land
// there instead of next to the data (read-only data directories).
func TestRegistryCacheDir(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(t.TempDir(), "cache") // not yet created: registry must MkdirAll
	src := writeNDJSONDir(t, dir, 1, 20)
	pers := &Persistence{Ident: src.Ident, Dir: cache}
	files, _ := src.Files("/nd")

	reg := NewRegistry()
	reg.SetPersistence(pers)
	reg.RecordFileSplits("/nd", files[0], []int64{64, 128})
	if _, err := os.Stat(files[0] + runtime.SidecarSuffix); !os.IsNotExist(err) {
		t.Fatalf("sidecar written next to data despite cache dir: %v", err)
	}
	entries, err := os.ReadDir(cache)
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache dir entries = %v, err = %v", entries, err)
	}

	warm := NewRegistry()
	warm.SetPersistence(pers)
	if sp, ok := warm.FileSplits("/nd", files[0]); !ok || len(sp) != 2 {
		t.Fatalf("cache-dir sidecar not served: %v ok=%v", sp, ok)
	}
}

// TestRegistryConcurrentAccess runs warm lookups concurrently with split
// recording and zone-map adds over the same files — the scenario of one job
// scanning warm while another records what its cold scan computed. Run under
// -race (the Makefile race target covers this package).
func TestRegistryConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	src := writeNDJSONDir(t, dir, 2, 40)
	pers := &Persistence{Ident: src.Ident}
	files, _ := src.Files("/nd")

	zms, err := BuildWith(src, "/nd", []jsonparse.Path{valuePath()},
		BuildOptions{SplitGrain: 512, ZoneGrain: 1024})
	if err != nil {
		t.Fatal(err)
	}
	seed := NewRegistry()
	seed.SetPersistence(pers)
	seed.Add(zms[0])

	reg := NewRegistry()
	reg.SetPersistence(pers)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f := files[(g+i)%len(files)]
				switch i % 4 {
				case 0:
					reg.FileSplits("/nd", f)
				case 1:
					reg.FileZones("/nd", valuePath(), f)
				case 2:
					reg.FileRange("/nd", valuePath(), f)
				case 3:
					reg.RecordFileSplits("/nd", f, []int64{95, 190})
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			reg.Add(zms[0])
		}
	}()
	wg.Wait()
	for _, f := range files {
		if _, ok := reg.FileSplits("/nd", f); !ok {
			t.Errorf("%s: splits lost after concurrent access", f)
		}
	}
}

// TestWriteSidecarCleansUpOnFailure: a mid-way WriteSidecar failure (here a
// rename blocked by a directory squatting on the target path) must not leave
// the temp file behind — the atomic-write hygiene the spill and cache layers
// rely on.
func TestWriteSidecarCleansUpOnFailure(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "data.ndjson.vxqidx")
	// A directory at the target path makes os.Rename fail.
	if err := os.Mkdir(target, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteSidecar(target, testSidecar()); err == nil {
		t.Fatal("WriteSidecar over a directory: want error, got nil")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == filepath.Base(target) {
			continue // the blocking directory itself
		}
		t.Fatalf("stray file after failed WriteSidecar: %s", e.Name())
	}
	// And the success path leaves exactly the sidecar, no temp files.
	target2 := filepath.Join(dir, "ok.ndjson.vxqidx")
	if err := WriteSidecar(target2, testSidecar()); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("temp files left after successful WriteSidecar: %v", matches)
	}
}
