package index

import (
	"os"
	"sync"

	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// Persistence configures sidecar-backed persistence of a Registry: what a
// zone-map build or a cold scan computes for a file is written to that
// file's sidecar, and lookups missing in memory consult the sidecar before
// falling back cold.
type Persistence struct {
	// Ident resolves a file's durable (size, mtime) identity. Files it
	// reports ok=false for (e.g. in-memory documents) are never persisted
	// and never read from sidecars.
	Ident func(file string) (runtime.FileIdent, bool)
	// Dir is the sidecar directory ("" = next to each data file).
	Dir string
}

// RegistryStats counts sidecar traffic, for tests and the cache benchmark.
type RegistryStats struct {
	// SidecarLoads counts sidecars successfully loaded and validated.
	SidecarLoads int64
	// SidecarMisses counts lookups that had to go cold: no sidecar, a
	// corrupt or truncated one, or a (size, mtime) / version mismatch.
	SidecarMisses int64
	// SidecarWrites counts sidecars written (or rewritten).
	SidecarWrites int64
}

// fileEntry is everything the registry knows about one file: its identity
// at observation time, its record-boundary splits, and its per-path zone
// stats. probed marks that a sidecar load was already attempted under the
// current identity, so a missing sidecar costs one disk probe per file, not
// one per query.
type fileEntry struct {
	ident    runtime.FileIdent
	hasIdent bool
	probed   bool
	splits   []int64
	zones    map[string]PathZones // path postfix text -> zones
}

// Registry holds the zone maps of an engine, keyed by collection and path,
// plus boundary indexes recorded outside any zone-map build (cold scans
// record the splits their parallel phase 1 computes, so later scans skip the
// work). It implements runtime.IndexLookup, runtime.SplitLookup,
// runtime.SplitRecorder and runtime.ZoneLookup. Safe for concurrent use.
//
// With persistence configured, per-file state is written through to sidecar
// files and lookups revalidate against each file's current (size, mtime)
// identity: a stale or corrupt sidecar is dropped and the caller falls back
// to a cold scan, which records fresh state and rewrites the sidecar.
type Registry struct {
	mu    sync.RWMutex
	maps  map[string]*ZoneMap
	files map[string]map[string]*fileEntry // collection -> file -> entry
	pers  *Persistence
	stats RegistryStats
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		maps:  map[string]*ZoneMap{},
		files: map[string]map[string]*fileEntry{},
	}
}

func key(collection string, path jsonparse.Path) string {
	return collection + "\x00" + path.String()
}

// SetPersistence enables (or, with nil, disables) sidecar persistence.
func (r *Registry) SetPersistence(p *Persistence) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pers = p
}

// Stats returns a snapshot of the sidecar traffic counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.stats
}

// entryLocked returns the entry of one file, creating it if needed. Caller
// holds r.mu for writing.
func (r *Registry) entryLocked(collection, file string) *fileEntry {
	m := r.files[collection]
	if m == nil {
		m = map[string]*fileEntry{}
		r.files[collection] = m
	}
	e := m[file]
	if e == nil {
		e = &fileEntry{}
		m[file] = e
	}
	return e
}

// resolve returns the entry of one file, revalidating against the file's
// current identity and loading the sidecar on first touch. A stale entry
// (identity changed since it was observed) is dropped; a failed sidecar
// load leaves a probed negative entry so the disk is not re-read every
// query. Returns nil when nothing is known about the file. Callers must
// read the returned entry's fields under r.mu.
func (r *Registry) resolve(collection, file string) *fileEntry {
	r.mu.RLock()
	e := r.files[collection][file]
	pers := r.pers
	fresh := e != nil && e.probed && e.hasIdent
	var seen runtime.FileIdent
	if e != nil {
		seen = e.ident
	}
	r.mu.RUnlock()

	if pers == nil || pers.Ident == nil {
		return e
	}
	ident, ok := pers.Ident(file)
	if !ok {
		// No durable identity: serve whatever is in memory, never touch disk.
		return e
	}
	if fresh && seen == ident {
		return e
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	e = r.entryLocked(collection, file)
	if e.hasIdent && e.ident == ident && e.probed {
		return e
	}
	if e.hasIdent && e.ident != ident {
		// The file changed: everything recorded about it is stale.
		*e = fileEntry{}
	}
	e.ident, e.hasIdent = ident, true
	if !e.probed {
		e.probed = true
		sc, err := LoadSidecar(SidecarPathFor(file, pers.Dir), ident)
		if err != nil {
			r.stats.SidecarMisses++
		} else {
			r.stats.SidecarLoads++
			if len(e.splits) == 0 {
				e.splits = sc.Splits
			}
			for _, p := range sc.Paths {
				if e.zones == nil {
					e.zones = map[string]PathZones{}
				}
				if _, have := e.zones[p.Path]; !have {
					e.zones[p.Path] = PathZones{Grain: p.ZoneGrain, Size: ident.Size, Stats: p.Zones}
				}
			}
		}
	}
	return e
}

// persistLocked writes one file's entry through to its sidecar. Caller holds
// r.mu for writing. Failures are silent by design: persistence is an
// optimization, never a correctness dependency.
func (r *Registry) persistLocked(file string, e *fileEntry) {
	if r.pers == nil || r.pers.Ident == nil || !e.hasIdent {
		return
	}
	sc := &Sidecar{Ident: e.ident, SplitGrain: DefaultSplitGrain, Splits: e.splits}
	for p, pz := range e.zones {
		sc.Paths = append(sc.Paths, SidecarPathZones{Path: p, ZoneGrain: pz.Grain, Zones: pz.Stats})
	}
	if r.pers.Dir != "" {
		if err := os.MkdirAll(r.pers.Dir, 0o755); err != nil {
			return
		}
	}
	if WriteSidecar(SidecarPathFor(file, r.pers.Dir), sc) == nil {
		r.stats.SidecarWrites++
	}
}

// Add registers (or replaces) a zone map, merging its per-file splits and
// zone stats into the per-file entries (and through to sidecars, with
// persistence configured).
func (r *Registry) Add(zm *ZoneMap) {
	// Resolve identities outside the lock: Ident stats the filesystem.
	idents := map[string]runtime.FileIdent{}
	r.mu.RLock()
	pers := r.pers
	r.mu.RUnlock()
	if pers != nil && pers.Ident != nil {
		for f := range zm.Files {
			if id, ok := pers.Ident(f); ok {
				idents[f] = id
			}
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	r.maps[key(zm.Collection, zm.Path)] = zm
	pathText := zm.Path.String()
	for f := range zm.Files {
		e := r.entryLocked(zm.Collection, f)
		if id, ok := idents[f]; ok {
			if e.hasIdent && e.ident != id {
				*e = fileEntry{}
			}
			e.ident, e.hasIdent, e.probed = id, true, true
		}
		if sp := zm.Splits[f]; len(sp) > 0 {
			e.splits = sp
		}
		if pz, ok := zm.Zones[f]; ok {
			if e.zones == nil {
				e.zones = map[string]PathZones{}
			}
			e.zones[pathText] = pz
		}
		if _, ok := idents[f]; ok {
			r.persistLocked(f, e)
		}
	}
}

// FileRange implements runtime.IndexLookup: it reports the indexed value
// range of one file, if a matching zone map exists — or, warm from a
// sidecar, by aggregating the file's per-zone stats.
func (r *Registry) FileRange(collection string, path jsonparse.Path, file string) (runtime.FileRange, bool) {
	r.mu.RLock()
	zm, ok := r.maps[key(collection, path)]
	r.mu.RUnlock()
	if ok {
		if st, ok := zm.Files[file]; ok {
			return runtime.FileRange{Min: st.Min, Max: st.Max, Count: st.Count}, true
		}
	}
	// Cross-process warm path: a sidecar carries zones, whose aggregate is
	// exactly the file-level range.
	e := r.resolve(collection, file)
	if e == nil {
		return runtime.FileRange{}, false
	}
	r.mu.RLock()
	pz, ok := e.zones[path.String()]
	r.mu.RUnlock()
	if !ok {
		return runtime.FileRange{}, false
	}
	var agg FileStats
	for _, z := range pz.Stats {
		if z.Count == 0 {
			continue
		}
		if agg.Count == 0 {
			agg.Min, agg.Max = z.Min, z.Max
		} else {
			if item.Compare(z.Min, agg.Min) < 0 {
				agg.Min = z.Min
			}
			if item.Compare(z.Max, agg.Max) > 0 {
				agg.Max = z.Max
			}
		}
		agg.Count += z.Count
	}
	return runtime.FileRange{Min: agg.Min, Max: agg.Max, Count: agg.Count}, true
}

// FileZones implements runtime.ZoneLookup: it reports the per-zone min/max
// stats of one file at an indexed path, from a build in this process or a
// validated sidecar.
func (r *Registry) FileZones(collection string, path jsonparse.Path, file string) ([]runtime.Zone, bool) {
	e := r.resolve(collection, file)
	if e == nil {
		return nil, false
	}
	r.mu.RLock()
	pz, ok := e.zones[path.String()]
	r.mu.RUnlock()
	if !ok || pz.Grain <= 0 || len(pz.Stats) == 0 {
		return nil, false
	}
	return pz.runtimeZones(), true
}

// FileSplits implements runtime.SplitLookup: it reports the sampled
// record-start offsets of one file if a recorded boundary index, a
// validated sidecar, or any registered zone map of the collection carries
// them. Splits are a property of the file bytes, not of the indexed path,
// so any map of the collection serves.
func (r *Registry) FileSplits(collection, file string) ([]int64, bool) {
	if e := r.resolve(collection, file); e != nil {
		r.mu.RLock()
		sp := e.splits
		r.mu.RUnlock()
		if len(sp) > 0 {
			return sp, true
		}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, zm := range r.maps {
		if zm.Collection != collection {
			continue
		}
		if sp, ok := zm.Splits[file]; ok && len(sp) > 0 {
			return sp, true
		}
	}
	return nil, false
}

// RecordFileSplits implements runtime.SplitRecorder: it stores a boundary
// index computed outside a zone-map build — the cold-scan parallel phase 1 —
// so subsequent scans of the same file get exact morsel splits for free.
// With persistence configured the splits are written through to the file's
// sidecar: this is the lazy write-after-first-scan protocol.
func (r *Registry) RecordFileSplits(collection, file string, splits []int64) {
	if len(splits) == 0 {
		return
	}
	var (
		ident    runtime.FileIdent
		hasIdent bool
	)
	r.mu.RLock()
	pers := r.pers
	r.mu.RUnlock()
	if pers != nil && pers.Ident != nil {
		ident, hasIdent = pers.Ident(file)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entryLocked(collection, file)
	if hasIdent {
		if e.hasIdent && e.ident != ident {
			*e = fileEntry{}
		}
		e.ident, e.hasIdent, e.probed = ident, true, true
	}
	e.splits = splits
	if hasIdent {
		r.persistLocked(file, e)
	}
}

// Len reports the number of registered zone maps.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.maps)
}
