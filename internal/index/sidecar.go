package index

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"vxq/internal/item"
	"vxq/internal/runtime"
)

// Sidecar persistence: everything a scan of one file pays to compute —
// record-boundary splits plus per-zone min/max stats of indexed paths — is
// serialized into a small versioned binary file next to the data file (or
// under a configurable cache directory), so later processes start warm.
//
// Binary layout (all integers little-endian unless varint):
//
//	magic   "VXQS"               4 bytes
//	version uint32               format version; readers reject mismatches
//	size    int64                data-file size at write time
//	mtime   int64                data-file mtime (UnixNano) at write time
//	grain   int64                split sampling grain (0 = every record)
//	nsplits uvarint              record-start offsets, delta-uvarint encoded
//	splits  uvarint × nsplits    (each delta from the previous offset)
//	npaths  uvarint              per-path zone indexes
//	per path:
//	  plen  uvarint, path bytes  jsonparse postfix path text
//	  zgrain int64               zone byte granularity
//	  nzones uvarint             dense zones covering [0, size)
//	  per zone:
//	    count uvarint            values found at the path in this zone
//	    if count > 0: min, max   length-prefixed item encodings
//	crc     uint32               IEEE CRC-32 of everything above
//
// Validation rule: a sidecar is valid for a data file iff magic and version
// match, (size, mtime) equal the file's current identity, and the CRC checks
// out. Any mismatch, short read, or decode error is a cache miss — the scan
// falls back cold and rewrites the sidecar — never a query error.

// sidecarMagic identifies a vxq structural-index sidecar.
const sidecarMagic = "VXQS"

// SidecarVersion is the current sidecar format version. Bump it whenever the
// layout changes; readers treat any other version as a miss.
const SidecarVersion uint32 = 1

// Sidecar is the decoded form of one data file's persistent index.
type Sidecar struct {
	// Ident is the data file's identity at write time; loads validate it
	// against the file's current identity.
	Ident runtime.FileIdent
	// SplitGrain is the record-start sampling granularity of Splits.
	SplitGrain int64
	// Splits are ascending record-start offsets (the SplitLookup contract).
	Splits []int64
	// Paths carries one per-zone stats index per indexed path.
	Paths []SidecarPathZones
}

// SidecarPathZones is the per-zone min/max index of one path.
type SidecarPathZones struct {
	// Path is the jsonparse postfix rendering of the indexed path.
	Path string
	// ZoneGrain is the byte width of each zone (the last zone may be short).
	ZoneGrain int64
	// Zones are dense: zone i covers bytes [i*ZoneGrain, (i+1)*ZoneGrain)
	// of the file, and together they cover [0, fileSize).
	Zones []FileStats
}

// SidecarPathFor resolves where the sidecar of a data file lives: next to
// the file (dataFile + runtime.SidecarSuffix) by default, or under cacheDir
// with a content-addressed name when a cache directory is configured —
// useful when the data directory is read-only.
func SidecarPathFor(dataFile, cacheDir string) string {
	if cacheDir == "" {
		return dataFile + runtime.SidecarSuffix
	}
	abs, err := filepath.Abs(dataFile)
	if err != nil {
		abs = dataFile
	}
	sum := sha256.Sum256([]byte(abs))
	return filepath.Join(cacheDir, hex.EncodeToString(sum[:12])+runtime.SidecarSuffix)
}

// Encode serializes the sidecar.
func (s *Sidecar) Encode() []byte {
	b := make([]byte, 0, 256+16*len(s.Splits))
	b = append(b, sidecarMagic...)
	b = binary.LittleEndian.AppendUint32(b, SidecarVersion)
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Ident.Size))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Ident.ModTimeNanos))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.SplitGrain))
	b = binary.AppendUvarint(b, uint64(len(s.Splits)))
	prev := int64(0)
	for _, off := range s.Splits {
		b = binary.AppendUvarint(b, uint64(off-prev))
		prev = off
	}
	b = binary.AppendUvarint(b, uint64(len(s.Paths)))
	for _, p := range s.Paths {
		b = binary.AppendUvarint(b, uint64(len(p.Path)))
		b = append(b, p.Path...)
		b = binary.LittleEndian.AppendUint64(b, uint64(p.ZoneGrain))
		b = binary.AppendUvarint(b, uint64(len(p.Zones)))
		for _, z := range p.Zones {
			b = binary.AppendUvarint(b, uint64(z.Count))
			if z.Count > 0 {
				b = appendItem(b, z.Min)
				b = appendItem(b, z.Max)
			}
		}
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

func appendItem(b []byte, it item.Item) []byte {
	enc := item.Encode(nil, it)
	b = binary.AppendUvarint(b, uint64(len(enc)))
	return append(b, enc...)
}

// sidecarReader decodes the sidecar layout with bounds checking; any
// malformation surfaces as an error the caller treats as a cache miss.
type sidecarReader struct {
	b   []byte
	off int
	err error
}

func (r *sidecarReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *sidecarReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail("index: sidecar truncated at offset %d", r.off)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *sidecarReader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *sidecarReader) i64() int64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (r *sidecarReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("index: sidecar bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *sidecarReader) decItem() item.Item {
	n := int(r.uvarint())
	enc := r.bytes(n)
	if r.err != nil {
		return nil
	}
	it, used, err := item.Decode(enc)
	if err != nil || used != n {
		r.fail("index: sidecar bad item encoding at offset %d", r.off)
		return nil
	}
	return it
}

// maxSidecarElems bounds decoded element counts so a corrupt length prefix
// cannot drive a huge allocation before the CRC is even checked.
const maxSidecarElems = 1 << 26

func (r *sidecarReader) count(what string) int {
	n := r.uvarint()
	if n > maxSidecarElems {
		r.fail("index: sidecar %s count %d exceeds limit", what, n)
		return 0
	}
	return int(n)
}

// DecodeSidecar parses sidecar bytes, verifying magic, version, and CRC.
func DecodeSidecar(b []byte) (*Sidecar, error) {
	if len(b) < len(sidecarMagic)+4+4 {
		return nil, fmt.Errorf("index: sidecar too short (%d bytes)", len(b))
	}
	if string(b[:len(sidecarMagic)]) != sidecarMagic {
		return nil, fmt.Errorf("index: sidecar bad magic")
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("index: sidecar CRC mismatch")
	}
	r := &sidecarReader{b: body, off: len(sidecarMagic)}
	if v := r.u32(); r.err == nil && v != SidecarVersion {
		return nil, fmt.Errorf("index: sidecar version %d (want %d)", v, SidecarVersion)
	}
	s := &Sidecar{}
	s.Ident.Size = r.i64()
	s.Ident.ModTimeNanos = r.i64()
	s.SplitGrain = r.i64()
	nsplits := r.count("split")
	if r.err == nil && nsplits > 0 {
		s.Splits = make([]int64, nsplits)
		prev := int64(0)
		for i := range s.Splits {
			prev += int64(r.uvarint())
			s.Splits[i] = prev
		}
	}
	npaths := r.count("path")
	for i := 0; i < npaths && r.err == nil; i++ {
		var p SidecarPathZones
		p.Path = string(r.bytes(r.count("path name")))
		p.ZoneGrain = r.i64()
		nz := r.count("zone")
		if r.err != nil {
			break
		}
		p.Zones = make([]FileStats, nz)
		for j := range p.Zones {
			c := int64(r.uvarint())
			p.Zones[j].Count = c
			if c > 0 {
				p.Zones[j].Min = r.decItem()
				p.Zones[j].Max = r.decItem()
			}
			if r.err != nil {
				break
			}
		}
		s.Paths = append(s.Paths, p)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("index: sidecar has %d trailing bytes", len(body)-r.off)
	}
	return s, nil
}

// WriteSidecar atomically writes a sidecar: encode to a temp file in the
// destination directory, then rename over the final name, so concurrent
// readers only ever observe a complete sidecar or none.
func WriteSidecar(path string, s *Sidecar) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	// Deferred cleanup instead of per-branch removes: every exit that did not
	// commit the rename — present and future — removes the temp file.
	committed := false
	defer func() {
		if !committed {
			os.Remove(tmp.Name())
		}
	}()
	_, werr := tmp.Write(s.Encode())
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	committed = true
	return nil
}

// LoadSidecar reads and decodes a sidecar, validating it against the data
// file's current identity. Every failure mode — missing file, short file,
// corrupt bytes, version or identity mismatch — returns an error the caller
// treats as a cache miss.
func LoadSidecar(path string, ident runtime.FileIdent) (*Sidecar, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := DecodeSidecar(b)
	if err != nil {
		return nil, err
	}
	if s.Ident != ident {
		return nil, fmt.Errorf("index: sidecar identity mismatch (have size=%d mtime=%d, file size=%d mtime=%d)",
			s.Ident.Size, s.Ident.ModTimeNanos, ident.Size, ident.ModTimeNanos)
	}
	return s, nil
}
