// Package simsched implements the deterministic virtual-time cluster model
// used by the benchmark harness for the multi-core and multi-node
// experiments (Figs. 17 and 20-25 of the paper).
//
// The repository's execution engine is real — every partition pipeline
// runs and produces actual results — but this repository is typically
// exercised on machines with fewer cores than the paper's 9-node, 4-cores-
// per-node cluster. The harness therefore measures each fragment-partition
// task's single-core work with the staged executor and *schedules* those
// measured costs onto a modeled cluster: N nodes with C cores each, fair
// time-sharing when a node runs more partitions than cores (the
// hyperthreading plateau of Fig. 17), a per-byte network cost for
// exchanges, and a per-job startup cost per node. Who-wins and curve shapes
// come from the real measured work; only the parallel schedule is modeled.
// This substitution is documented in DESIGN.md §4.
package simsched

import (
	"fmt"
	"time"

	"vxq/internal/hyracks"
)

// Model is the cluster cost model.
type Model struct {
	// CoresPerNode is the number of physical cores per node (the paper's
	// nodes have two dual-core Opterons = 4 cores).
	CoresPerNode int
	// OversubscribePenalty is the fractional slowdown applied to a node's
	// stage time when it runs more partitions than cores — hyperthreaded
	// partitions "are effectively run in sequence" plus scheduling
	// overhead, so 8 partitions on 4 cores are slightly *worse* than 4
	// (§5.3). A value of 0.05 means 5% slower.
	OversubscribePenalty float64
	// NetworkBytesPerSec is the modeled exchange bandwidth between nodes.
	// Zero disables network costs.
	NetworkBytesPerSec float64
	// StartupPerJob is a fixed per-job scheduling cost.
	StartupPerJob time.Duration
}

// DefaultModel mirrors the paper's per-node hardware.
func DefaultModel() Model {
	return Model{
		CoresPerNode:         4,
		OversubscribePenalty: 0.06,
		NetworkBytesPerSec:   100 << 20, // ~1 GbE
		StartupPerJob:        5 * time.Millisecond,
	}
}

// NodeWall computes the wall-clock time for one node to complete a set of
// partition works with fair time-sharing over its cores:
//
//	wall = max(longest single partition, total work / cores)
//
// plus the oversubscription penalty when partitions exceed cores.
func (m Model) NodeWall(works []time.Duration) time.Duration {
	if len(works) == 0 {
		return 0
	}
	cores := m.CoresPerNode
	if cores <= 0 {
		cores = 1
	}
	var total, longest time.Duration
	for _, w := range works {
		total += w
		if w > longest {
			longest = w
		}
	}
	wall := total / time.Duration(cores)
	if longest > wall {
		wall = longest
	}
	if len(works) > cores {
		wall += time.Duration(float64(wall) * m.OversubscribePenalty)
	}
	return wall
}

// StageWall computes one stage's wall time: the slowest node bounds the
// stage (all nodes run their partitions concurrently).
func (m Model) StageWall(perNode [][]time.Duration) time.Duration {
	var wall time.Duration
	for _, works := range perNode {
		if w := m.NodeWall(works); w > wall {
			wall = w
		}
	}
	return wall
}

// Placement maps partitions of a stage onto nodes round-robin.
func Placement(partitions, nodes int) []int {
	if nodes <= 0 {
		nodes = 1
	}
	out := make([]int, partitions)
	for p := range out {
		out[p] = p % nodes
	}
	return out
}

// JobWall computes the virtual wall-clock time of a measured job execution
// on a cluster of the given node count. Fragments execute as consecutive
// stages (a conservative staging of the pipeline: the paper's pipelined
// execution overlaps stages, but stage shapes — who wins, scaling slopes —
// are preserved); the shuffled bytes cross the network once.
func (m Model) JobWall(job *hyracks.Job, res *hyracks.Result, nodes int) (time.Duration, error) {
	if nodes <= 0 {
		return 0, fmt.Errorf("simsched: nodes must be positive, got %d", nodes)
	}
	perFrag := make(map[int][]time.Duration)
	for _, t := range res.Tasks {
		works := perFrag[t.Fragment]
		for len(works) <= t.Partition {
			works = append(works, 0)
		}
		works[t.Partition] += t.Elapsed
		perFrag[t.Fragment] = works
	}
	var wall time.Duration
	for _, f := range job.Fragments {
		works, ok := perFrag[f.ID]
		if !ok {
			return 0, fmt.Errorf("simsched: no measurements for fragment %d", f.ID)
		}
		perNode := make([][]time.Duration, nodes)
		for p, node := range Placement(len(works), nodes) {
			perNode[node] = append(perNode[node], works[p])
		}
		wall += m.StageWall(perNode)
	}
	if m.NetworkBytesPerSec > 0 && nodes > 1 {
		// Only cross-node traffic pays the network: with round-robin
		// placement that is (nodes-1)/nodes of the shuffled bytes.
		crossFraction := float64(nodes-1) / float64(nodes)
		bytes := float64(res.Stats.BytesShuffled) * crossFraction
		// Each node ships its share in parallel.
		perNodeBytes := bytes / float64(nodes)
		wall += time.Duration(perNodeBytes / m.NetworkBytesPerSec * float64(time.Second))
	}
	return wall + m.StartupPerJob, nil
}
