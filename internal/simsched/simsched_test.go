package simsched

import (
	"testing"
	"time"

	"vxq/internal/hyracks"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestNodeWallSinglePartition(t *testing.T) {
	m := Model{CoresPerNode: 4}
	if got := m.NodeWall([]time.Duration{ms(100)}); got != ms(100) {
		t.Errorf("wall = %v, want 100ms", got)
	}
	if got := m.NodeWall(nil); got != 0 {
		t.Errorf("empty wall = %v", got)
	}
}

func TestNodeWallScalesWithCores(t *testing.T) {
	m := Model{CoresPerNode: 4}
	// 4 equal partitions on 4 cores: wall = one partition.
	works := []time.Duration{ms(100), ms(100), ms(100), ms(100)}
	if got := m.NodeWall(works); got != ms(100) {
		t.Errorf("4 partitions / 4 cores = %v, want 100ms", got)
	}
	// 2 partitions on 4 cores: wall = one partition (bounded by longest).
	if got := m.NodeWall(works[:2]); got != ms(100) {
		t.Errorf("2 partitions = %v, want 100ms", got)
	}
	// Straggler dominates.
	if got := m.NodeWall([]time.Duration{ms(400), ms(10), ms(10), ms(10)}); got != ms(400) {
		t.Errorf("straggler wall = %v, want 400ms", got)
	}
}

func TestHyperthreadingPlateau(t *testing.T) {
	// The Fig. 17 shape: speedup up to 4 partitions, none (slightly worse)
	// at 8.
	m := Model{CoresPerNode: 4, OversubscribePenalty: 0.06}
	total := ms(8000)
	wallOf := func(parts int) time.Duration {
		works := make([]time.Duration, parts)
		for i := range works {
			works[i] = total / time.Duration(parts)
		}
		return m.NodeWall(works)
	}
	w1, w2, w4, w8 := wallOf(1), wallOf(2), wallOf(4), wallOf(8)
	if !(w1 > w2 && w2 > w4) {
		t.Errorf("expected speedup 1->2->4: %v %v %v", w1, w2, w4)
	}
	if w8 <= w4 {
		t.Errorf("8 partitions must not beat 4 on 4 cores: w4=%v w8=%v", w4, w8)
	}
	if float64(w8) > float64(w4)*1.2 {
		t.Errorf("8 partitions should be only slightly worse: w4=%v w8=%v", w4, w8)
	}
	// Near-linear speedup 1 -> 4.
	if ratio := float64(w1) / float64(w4); ratio < 3.5 || ratio > 4.5 {
		t.Errorf("speedup 1->4 = %.2f, want ~4", ratio)
	}
}

func TestZeroCoresDefaultsToOne(t *testing.T) {
	m := Model{}
	if got := m.NodeWall([]time.Duration{ms(10), ms(10)}); got != ms(20) {
		t.Errorf("wall = %v, want 20ms (1 core)", got)
	}
}

func TestStageWallSlowestNode(t *testing.T) {
	m := Model{CoresPerNode: 2}
	perNode := [][]time.Duration{
		{ms(10), ms(10)},
		{ms(50)},
		{ms(5)},
	}
	if got := m.StageWall(perNode); got != ms(50) {
		t.Errorf("stage wall = %v, want 50ms", got)
	}
}

func TestPlacementRoundRobin(t *testing.T) {
	got := Placement(8, 3)
	want := []int{0, 1, 2, 0, 1, 2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("placement = %v", got)
		}
	}
	if p := Placement(2, 0); p[0] != 0 || p[1] != 0 {
		t.Errorf("zero nodes should place everything on node 0: %v", p)
	}
}

func fakeJobAndResult(fragments, partitions int, perTask time.Duration, shuffled int64) (*hyracks.Job, *hyracks.Result) {
	job := &hyracks.Job{}
	res := &hyracks.Result{}
	for f := 0; f < fragments; f++ {
		sink := -1
		if f < fragments-1 {
			sink = f
		}
		job.Fragments = append(job.Fragments, &hyracks.Fragment{
			ID: f, Source: hyracks.ETSSource{}, Partitions: partitions, SinkExchange: sink,
		})
		for p := 0; p < partitions; p++ {
			res.Tasks = append(res.Tasks, hyracks.TaskTime{Fragment: f, Partition: p, Elapsed: perTask})
		}
	}
	res.Stats.BytesShuffled = shuffled
	return job, res
}

func TestJobWallClusterSpeedup(t *testing.T) {
	// Fixed total work split over nodes*4 partitions: more nodes => faster.
	m := Model{CoresPerNode: 4}
	var prev time.Duration
	for _, nodes := range []int{1, 2, 4, 8} {
		parts := nodes * 4
		perTask := time.Duration(int64(ms(8000)) / int64(parts))
		job, res := fakeJobAndResult(1, parts, perTask, 0)
		wall, err := m.JobWall(job, res, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if prev != 0 && wall >= prev {
			t.Errorf("nodes=%d wall=%v not faster than %v", nodes, wall, prev)
		}
		prev = wall
	}
}

func TestJobWallScaleupFlat(t *testing.T) {
	// Per-node work constant: wall should stay flat as nodes grow.
	m := Model{CoresPerNode: 4}
	var base time.Duration
	for _, nodes := range []int{1, 3, 9} {
		parts := nodes * 4
		job, res := fakeJobAndResult(1, parts, ms(100), 0)
		wall, err := m.JobWall(job, res, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if base == 0 {
			base = wall
			continue
		}
		if wall != base {
			t.Errorf("scale-up not flat: nodes=%d wall=%v base=%v", nodes, wall, base)
		}
	}
}

func TestJobWallNetworkCost(t *testing.T) {
	m := Model{CoresPerNode: 4, NetworkBytesPerSec: 1 << 20}
	job, res := fakeJobAndResult(2, 4, ms(10), 8<<20)
	w1, err := m.JobWall(job, res, 1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := m.JobWall(job, res, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Single node pays no network; two nodes do.
	if w2 <= w1/2 {
		t.Errorf("network cost missing: w1=%v w2=%v", w1, w2)
	}
}

func TestJobWallErrors(t *testing.T) {
	m := DefaultModel()
	job, res := fakeJobAndResult(1, 2, ms(10), 0)
	if _, err := m.JobWall(job, res, 0); err == nil {
		t.Error("zero nodes must fail")
	}
	// Missing measurements.
	res.Tasks = nil
	if _, err := m.JobWall(job, res, 1); err == nil {
		t.Error("missing task measurements must fail")
	}
}

func TestDefaultModelSane(t *testing.T) {
	m := DefaultModel()
	if m.CoresPerNode != 4 || m.OversubscribePenalty <= 0 || m.NetworkBytesPerSec <= 0 {
		t.Errorf("default model = %+v", m)
	}
}
