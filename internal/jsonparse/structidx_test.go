package jsonparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// refState is the byte-at-a-time reference of StructState: the obviously
// correct scalar machine every SWAR layer is checked against, bit by bit.
type refState struct {
	inStr bool
	esc   bool // the next byte is escaped
}

// refIndexBlock computes BlockMasks for one 64-byte block one byte at a time.
func refIndexBlock(b []byte, st *refState) BlockMasks {
	var m BlockMasks
	for i := 0; i < 64; i++ {
		c := b[i]
		bit := uint64(1) << uint(i)
		if c == '"' {
			m.Quote |= bit
		}
		if c == '\\' {
			m.Backslash |= bit
		}
		escaped := st.esc
		if escaped {
			m.Escaped |= bit
			st.esc = false
		} else if c == '\\' {
			st.esc = true
		}
		if c == '"' && !escaped {
			st.inStr = !st.inStr
		}
		if st.inStr {
			m.InString |= bit
		}
		inside := st.inStr
		switch c {
		case '{', '[':
			if !inside {
				m.Open |= bit
				m.Structural |= bit
			}
		case '}', ']':
			if !inside {
				m.Close |= bit
				m.Structural |= bit
			}
		case ',', ':':
			if !inside {
				m.Structural |= bit
			}
		case '\n':
			if !inside {
				m.Newline |= bit
			}
		}
		if c < 0x20 && inside && !escaped {
			m.CtlInStr |= bit
		}
	}
	return m
}

// structidxInputs are byte streams that concentrate the hard cases: escape
// runs straddling word and block edges, quotes and brackets at every offset
// near 8- and 64-byte boundaries, newlines inside and outside strings
// (escaped — a raw newline inside a string is invalid JSON, but the scalar
// reference and the SWAR kernel must still agree byte-for-byte on such
// inputs), and control characters.
func structidxInputs() [][]byte {
	var inputs [][]byte
	for _, s := range []string{
		`{"a":1,"b":[true,null,"x"],"c":{"d":-2.5e3}}` + "\n",
		`{"note":"line\nline\\\"quoted\\\"","k":[1,2]}` + "\n",
		strings.Repeat(`\`, 129) + `"` + "\n[]{}",
		`"` + strings.Repeat(`\\`, 40) + `"` + "\n" + `"` + strings.Repeat(`\\`, 40) + `\"` + "\n",
		"\x01\x02\"\x03inside\x04\"\x05\n",
		strings.Repeat("{\"k\":\"v\"}\n", 30),
	} {
		inputs = append(inputs, []byte(s))
	}
	for _, at := range []int{6, 7, 8, 9, 62, 63, 64, 65, 70, 126, 127, 128, 129} {
		pad := strings.Repeat("a", at)
		inputs = append(inputs,
			[]byte(`{"s":"`+pad+`"}`+"\n"),
			[]byte(`{"s":"`+pad+`\n"}`+"\n"),
			[]byte(`{"s":"`+pad+`\\"}`+"\n{}"),
			[]byte(`["`+pad+`{\n}[]"]`+"\n"),
		)
	}
	r := rand.New(rand.NewSource(42))
	alphabet := []byte(`"\{}[],:` + "\n\x01 abc0")
	for n := 0; n < 8; n++ {
		b := make([]byte, 64*3+17)
		for i := range b {
			b[i] = alphabet[r.Intn(len(alphabet))]
		}
		inputs = append(inputs, b)
	}
	return inputs
}

// pad64 zero-pads data to a whole number of 64-byte blocks (zero bytes are
// treated identically by both machines).
func pad64(data []byte) []byte {
	n := (len(data) + 63) &^ 63
	out := make([]byte, n)
	copy(out, data)
	return out
}

// TestIndexBlockMatchesReference checks every bitmap layer of IndexBlock
// against the scalar reference, block after block, with state carried across
// block boundaries.
func TestIndexBlockMatchesReference(t *testing.T) {
	for _, data := range structidxInputs() {
		data = pad64(data)
		var st StructState
		var ref refState
		for off := 0; off < len(data); off += 64 {
			got := IndexBlock(data[off:off+64], &st)
			want := refIndexBlock(data[off:off+64], &ref)
			if got != want {
				t.Fatalf("block at %d of %q:\n got %+v\nwant %+v", off, data, got, want)
			}
			if st.inString() != ref.inStr || st.nextEscaped() != ref.esc {
				t.Fatalf("carry state diverges at %d of %q: swar(str=%v esc=%v) ref(str=%v esc=%v)",
					off, data, st.inString(), st.nextEscaped(), ref.inStr, ref.esc)
			}
		}
	}
}

// refStringSeek is the scalar twin of stringSeek.
func refStringSeek(buf []byte, p int) int {
	for p < len(buf) {
		if c := buf[p]; c == '"' || c == '\\' || c < 0x20 {
			return p
		}
		p++
	}
	return p
}

// refStructSeek returns the next true structural event (quote or bracket).
func refStructSeek(buf []byte, p int) int {
	for p < len(buf) {
		switch buf[p] {
		case '"', '{', '[', '}', ']':
			return p
		}
		p++
	}
	return p
}

// TestStringSeekExact: stringSeek must return exactly the next string event
// from every start position — its loose word probes guarantee the lowest set
// bit is a real event, so no re-check is needed by callers.
func TestStringSeekExact(t *testing.T) {
	for _, buf := range structidxInputs() {
		for p := 0; p <= len(buf); p++ {
			if got, want := stringSeek(buf, p), refStringSeek(buf, p); got != want {
				t.Fatalf("stringSeek(%q, %d) = %d, want %d", buf, p, got, want)
			}
		}
	}
}

// TestStructSeekVisitsAllEvents: structSeek may stop at fold-range false
// positives, but iterating it with the caller-side re-check must visit
// exactly the true event sequence — never skipping an event, never moving
// backward, always making progress.
func TestStructSeekVisitsAllEvents(t *testing.T) {
	for _, buf := range structidxInputs() {
		var want []int
		for p := refStructSeek(buf, 0); p < len(buf); p = refStructSeek(buf, p+1) {
			want = append(want, p)
		}
		var got []int
		for p := 0; p < len(buf); {
			q := structSeek(buf, p)
			if q < p || q > len(buf) {
				t.Fatalf("structSeek(%q, %d) = %d: out of range", buf, p, q)
			}
			if q == len(buf) {
				break
			}
			switch buf[q] {
			case '"', '{', '[', '}', ']':
				got = append(got, q)
			}
			p = q + 1
		}
		if len(got) != len(want) {
			t.Fatalf("structSeek over %q visited %d events, want %d", buf, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("structSeek over %q: event %d at %d, want %d", buf, i, got[i], want[i])
			}
		}
	}
}

// refBoundarySplits is the scalar reference for BoundaryScanner: track string
// state byte by byte, record the first post-newline offset at or after every
// grain point.
func refBoundarySplits(data []byte, grain int64) []int64 {
	var st refState
	var splits []int64
	next := grain
	if grain == 0 {
		next = 1
	}
	for i := 0; i < len(data); i++ {
		c := data[i]
		escaped := st.esc
		if escaped {
			st.esc = false
		} else if c == '\\' {
			st.esc = true
		}
		if c == '"' && !escaped {
			st.inStr = !st.inStr
		}
		if c == '\n' && !st.inStr {
			start := int64(i) + 1
			if start >= next {
				splits = append(splits, start)
				if grain == 0 {
					next = start + 1
				} else {
					next = (start/grain + 1) * grain
				}
			}
		}
	}
	return splits
}

// TestBoundaryScannerMatchesReference sweeps write-chunk sizes across the
// 64-byte block carry (1, 7, 63, 64, 65, whole) and several grains, including
// zero (every record start), against the scalar reference.
func TestBoundaryScannerMatchesReference(t *testing.T) {
	for _, data := range structidxInputs() {
		for _, grain := range []int64{0, 1, 5, 64, 4096} {
			want := refBoundarySplits(data, grain)
			for _, chunk := range []int{1, 7, 63, 64, 65, len(data)} {
				if chunk == 0 {
					continue
				}
				bs := NewBoundaryScanner(grain)
				for off := 0; off < len(data); off += chunk {
					end := off + chunk
					if end > len(data) {
						end = len(data)
					}
					bs.Write(data[off:end])
				}
				bs.Close()
				got := bs.Splits()
				if len(got) != len(want) {
					t.Fatalf("grain=%d chunk=%d on %q: %d splits %v, want %d %v",
						grain, chunk, data, len(got), got, len(want), want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("grain=%d chunk=%d on %q: split %d = %d, want %d",
							grain, chunk, data, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestBoundaryScannerRecordStarts: on a well-formed NDJSON buffer with zero
// grain, the splits are exactly the start offsets of records 2..n (offset 0
// is implicit) plus the offset just past the final newline.
func TestBoundaryScannerRecordStarts(t *testing.T) {
	recs := [][]byte{
		[]byte(`{"a":1,"note":"first\nrecord\\"}`),
		[]byte(`{"b":[1,2,{"c":"x\n\ny"}]}`),
		[]byte(`{"d":"` + strings.Repeat(`\\`, 33) + `"}`),
		[]byte(`{"e":null}`),
	}
	var data []byte
	var want []int64
	for _, r := range recs {
		data = append(data, r...)
		data = append(data, '\n')
		want = append(want, int64(len(data)))
	}
	bs := NewBoundaryScanner(0)
	bs.Write(data)
	bs.Close()
	got := bs.Splits()
	if len(got) != len(want) {
		t.Fatalf("splits = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("split %d = %d, want %d", i, got[i], want[i])
		}
	}
}

// FuzzBoundaryScanner fuzzes the split scanner against the scalar reference
// with fuzzer-chosen write chunking and grain. `make fuzz-smoke` runs it
// briefly; seeds under testdata/fuzz are always replayed by plain `go test`.
func FuzzBoundaryScanner(f *testing.F) {
	f.Add([]byte("{\"a\":\"x\\n\"}\n{\"b\":2}\n"), byte(7), byte(1))
	f.Add([]byte(strings.Repeat(`\`, 65)+"\"\n[]\n"), byte(64), byte(0))
	f.Add([]byte("\"open string\n\n\n"), byte(1), byte(3))
	f.Fuzz(func(t *testing.T, data []byte, chunkSel, grainSel byte) {
		chunks := []int{1, 3, 7, 63, 64, 65, 1024}
		grains := []int64{0, 1, 5, 64, 4096}
		chunk := chunks[int(chunkSel)%len(chunks)]
		grain := grains[int(grainSel)%len(grains)]
		want := refBoundarySplits(data, grain)
		bs := NewBoundaryScanner(grain)
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			bs.Write(data[off:end])
		}
		bs.Close()
		got := bs.Splits()
		if len(got) != len(want) {
			t.Fatalf("grain=%d chunk=%d: splits %v, want %v", grain, chunk, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("grain=%d chunk=%d: split %d = %d, want %d", grain, chunk, i, got[i], want[i])
			}
		}
	})
}

// TestIndexedSkipDefaultForLargeChunks pins the SkipAuto policy the bench
// harness relies on: in-memory lexers and streams with chunks >= 4 KiB use
// the structural-index kernel; smaller streaming windows fall back to the
// byte-class scan.
func TestIndexedSkipDefaultForLargeChunks(t *testing.T) {
	data := []byte(`{"a":1}`)
	if l := NewLexer(data); !l.indexedSkip() {
		t.Error("in-memory lexer must default to the indexed skip")
	}
	big := NewStreamLexer(bytes.NewReader(data), 4096)
	if err := big.Next(); err != nil {
		t.Fatal(err)
	}
	if !big.indexedSkip() {
		t.Error("4 KiB-chunk stream must default to the indexed skip")
	}
	small := NewStreamLexer(bytes.NewReader(data), 64)
	if err := small.Next(); err != nil {
		t.Fatal(err)
	}
	if small.indexedSkip() {
		t.Error("64 B-chunk stream must fall back to the byte-class skip")
	}
	small.SetSkipMode(SkipIndexed)
	if !small.indexedSkip() {
		t.Error("explicit SkipIndexed must override the chunk-size policy")
	}
	big.SetSkipMode(SkipRawBytes)
	if big.indexedSkip() {
		t.Error("explicit SkipRawBytes must override the chunk-size policy")
	}
}
