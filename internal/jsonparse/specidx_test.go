package jsonparse

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// specidxInputs extends the structural-index corpus with the shapes the
// speculative splitter must get right at chunk boundaries: long odd and even
// backslash runs, strings and escape sequences straddling every small chunk
// grain, and unbalanced quotes that leave a chunk inside a string.
func specidxInputs() [][]byte {
	inputs := structidxInputs()
	for _, s := range []string{
		// Odd backslash run ending exactly at a 64/128-byte boundary.
		`{"k":"` + strings.Repeat(`\`, 57) + `n"}` + "\n" + `{"z":1}` + "\n",
		`{"k":"` + strings.Repeat(`\`, 121) + `n"}` + "\n" + `{"z":1}` + "\n",
		// A string spanning several 64-byte blocks, with newlines inside.
		`{"s":"` + strings.Repeat(`line\n`, 60) + `"}` + "\n" + `{"t":2}` + "\n",
		// Unbalanced quote: everything after it is inside a string.
		`{"open":"` + strings.Repeat("a\n", 100),
		// Backslash wall: the entire prefix is backslashes.
		strings.Repeat(`\`, 200) + "\n" + `{"a":1}` + "\n",
		// Escaped quotes in a row around the record separator.
		strings.Repeat(`{"q":"\""}`+"\n", 40),
	} {
		inputs = append(inputs, []byte(s))
	}
	r := rand.New(rand.NewSource(7))
	alphabet := []byte(`"\{}[],:` + "\n abc")
	for n := 0; n < 6; n++ {
		b := make([]byte, 64*7+rand.New(rand.NewSource(int64(n))).Intn(130))
		for i := range b {
			b[i] = alphabet[r.Intn(len(alphabet))]
		}
		inputs = append(inputs, b)
	}
	return inputs
}

// sequentialSplits is the trusted sequential builder: a BoundaryScanner fed
// the whole buffer in one write.
func sequentialSplits(data []byte, grain int64) []int64 {
	bs := NewBoundaryScanner(grain)
	bs.Write(data)
	bs.Close()
	return bs.Splits()
}

// sequentialMasks is the trusted sequential bitmap stream: IndexBlock over
// every 64-byte block with carried state, final block zero-padded.
func sequentialMasks(data []byte) []BlockMasks {
	var st StructState
	var out []BlockMasks
	for off := 0; off < len(data); off += 64 {
		var b []byte
		if len(data)-off >= 64 {
			b = data[off : off+64]
		} else {
			var pad [64]byte
			copy(pad[:], data[off:])
			b = pad[:]
		}
		out = append(out, IndexBlock(b, &st))
	}
	return out
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEntryEscapedMatchesSequential: the local backward-scan resolution of
// the escape-pending bit must agree with the sequential scanner's carried
// state at every offset.
func TestEntryEscapedMatchesSequential(t *testing.T) {
	for _, data := range specidxInputs() {
		var ref refState
		for off := 0; off < len(data); off++ {
			if got := entryEscaped(data, int64(off)); got != ref.esc {
				t.Fatalf("entryEscaped(%q, %d) = %v, sequential carry says %v", data, off, got, ref.esc)
			}
			if ref.esc {
				ref.esc = false
			} else if data[off] == '\\' {
				ref.esc = true
			}
		}
	}
}

// TestParallelSplitsMatchSequential sweeps the speculative splitter across
// worker counts, chunk grains (forcing many chunk boundaries inside small
// inputs) and split grains, against the sequential BoundaryScanner.
func TestParallelSplitsMatchSequential(t *testing.T) {
	for _, data := range specidxInputs() {
		for _, grain := range []int64{0, 1, 5, 64, 4096} {
			want := sequentialSplits(data, grain)
			for _, workers := range []int{1, 2, 3, 8} {
				for _, chunk := range []int64{64, 128, 192, 1024} {
					pi := ParallelIndexer{Workers: workers, Grain: chunk}
					got := pi.Splits(data, grain)
					if !int64sEqual(got, want) {
						t.Fatalf("workers=%d chunk=%d grain=%d on %q:\n got %v\nwant %v",
							workers, chunk, grain, data, got, want)
					}
				}
			}
		}
	}
}

// TestParallelScanMatchesSequential: the stitched bitmap stream must be
// byte-identical to the sequential IndexBlock stream, for every layer of
// every block, across chunk boundaries of every alignment.
func TestParallelScanMatchesSequential(t *testing.T) {
	for _, data := range specidxInputs() {
		want := sequentialMasks(data)
		for _, workers := range []int{1, 2, 3, 8} {
			for _, chunk := range []int64{64, 128, 1024} {
				pi := ParallelIndexer{Workers: workers, Grain: chunk}
				i := 0
				err := pi.Scan(data, func(off int64, m BlockMasks) error {
					if off != int64(i)*64 {
						return fmt.Errorf("block %d reported at offset %d", i, off)
					}
					if i >= len(want) {
						return fmt.Errorf("extra block at offset %d", off)
					}
					if m != want[i] {
						return fmt.Errorf("block at %d:\n got %+v\nwant %+v", off, m, want[i])
					}
					i++
					return nil
				})
				if err != nil {
					t.Fatalf("workers=%d chunk=%d on %q: %v", workers, chunk, data, err)
				}
				if i != len(want) {
					t.Fatalf("workers=%d chunk=%d on %q: visited %d blocks, want %d",
						workers, chunk, data, i, len(want))
				}
			}
		}
	}
}

// TestParallelScanStopsOnVisitError: the error a visit callback returns
// comes back verbatim and stops the walk.
func TestParallelScanStopsOnVisitError(t *testing.T) {
	data := bytes.Repeat([]byte(`{"a":1}`+"\n"), 100)
	sentinel := errors.New("stop right there")
	calls := 0
	err := ParallelIndexer{Workers: 4, Grain: 64}.Scan(data, func(off int64, m BlockMasks) error {
		calls++
		if calls == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Scan error = %v, want the sentinel", err)
	}
	if calls != 3 {
		t.Fatalf("visit called %d times after error, want 3", calls)
	}
}

// bytesRangeOpener adapts an in-memory buffer to the RangeOpener shape, with
// optional error injection at a byte offset.
type bytesRangeOpener struct {
	data    []byte
	failAt  int64 // reads reaching this absolute offset fail (-1 = never)
	failMsg string
}

func (o *bytesRangeOpener) open(off int64) (io.ReadCloser, error) {
	if off < 0 || off > int64(len(o.data)) {
		return nil, fmt.Errorf("offset %d out of range", off)
	}
	return &rangeReader{o: o, off: off}, nil
}

type rangeReader struct {
	o   *bytesRangeOpener
	off int64
}

func (r *rangeReader) Read(p []byte) (int, error) {
	if r.o.failAt >= 0 && r.off >= r.o.failAt {
		return 0, errors.New(r.o.failMsg)
	}
	if r.off >= int64(len(r.o.data)) {
		return 0, io.EOF
	}
	n := copy(p, r.o.data[r.off:])
	if r.o.failAt >= 0 && r.off+int64(n) > r.o.failAt {
		n = int(r.o.failAt - r.off)
	}
	r.off += int64(n)
	return n, nil
}

func (r *rangeReader) Close() error { return nil }

// TestSplitsRangeMatchesSequential drives the streaming range-reader path —
// including the doubling lookback of entryEscapedRange — against the
// sequential scanner, with refill buffers small enough to split every block.
func TestSplitsRangeMatchesSequential(t *testing.T) {
	for _, data := range specidxInputs() {
		opener := &bytesRangeOpener{data: data, failAt: -1}
		for _, grain := range []int64{0, 64, 4096} {
			want := sequentialSplits(data, grain)
			for _, chunkBuf := range []int{7, 64, 4096} {
				pi := ParallelIndexer{Workers: 3, Grain: 128}
				got, err := pi.SplitsRange(opener.open, int64(len(data)), grain, chunkBuf)
				if err != nil {
					t.Fatalf("grain=%d buf=%d on %q: %v", grain, chunkBuf, data, err)
				}
				if !int64sEqual(got, want) {
					t.Fatalf("grain=%d buf=%d on %q:\n got %v\nwant %v", grain, chunkBuf, data, got, want)
				}
			}
		}
	}
}

// TestSplitsRangeErrorText: worker IO errors surface with the failing chunk's
// byte range in the text, exactly once.
func TestSplitsRangeErrorText(t *testing.T) {
	data := bytes.Repeat([]byte(`{"a":1}`+"\n"), 64) // 512 bytes
	opener := &bytesRangeOpener{data: data, failAt: 300, failMsg: "disk gone"}
	pi := ParallelIndexer{Workers: 4, Grain: 128}
	_, err := pi.SplitsRange(opener.open, int64(len(data)), 0, 64)
	if err == nil {
		t.Fatal("expected an error from the failing range reader")
	}
	if got := err.Error(); !strings.Contains(got, "parallel index: chunk [256:384)") || !strings.Contains(got, "disk gone") {
		t.Fatalf("error text = %q, want the failing chunk range and the cause", got)
	}
}

// TestParallelIndexerConcurrent: one shared indexer value must serve many
// goroutines at once (the cold-scan path builds splits from scan setup, which
// can run for several jobs concurrently). Run under -race.
func TestParallelIndexerConcurrent(t *testing.T) {
	data := bytes.Repeat([]byte(`{"k":"v\n","n":[1,2,3]}`+"\n"), 500)
	want := sequentialSplits(data, 64)
	pi := ParallelIndexer{Workers: 4, Grain: 256}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 5; i++ {
				if got := pi.Splits(data, 64); !int64sEqual(got, want) {
					done <- fmt.Errorf("diverging splits: %v vs %v", got, want)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzSpeculativeIndex is the differential fuzz target of the speculative
// parallel indexer: for fuzzer-chosen data, worker count, chunk grain and
// split grain, the parallel splitter must reproduce the sequential
// BoundaryScanner exactly, and the stitched bitmap stream must equal the
// sequential IndexBlock stream block for block (any divergence is reported
// with the offending block's masks in the failure text). The streaming
// range path is cross-checked too, with its error text asserted clean.
// Committed seeds cover odd-backslash runs and quotes straddling worker
// boundaries; `make fuzz-smoke` runs the target briefly.
func FuzzSpeculativeIndex(f *testing.F) {
	f.Add([]byte(`{"k":"`+strings.Repeat(`\`, 63)+`n"}`+"\n{}\n"), byte(2), byte(0), byte(1))
	f.Add([]byte(`{"open":"abc`+"\n\n"+`def"}`+"\n"), byte(3), byte(1), byte(0))
	f.Add([]byte(strings.Repeat(`{"q":"\""}`+"\n", 30)), byte(8), byte(0), byte(2))
	f.Add([]byte(strings.Repeat(`\`, 130)+"\"\n[]\n"), byte(2), byte(2), byte(0))
	f.Fuzz(func(t *testing.T, data []byte, wSel, cSel, gSel byte) {
		workersChoices := []int{1, 2, 3, 4, 8}
		chunkChoices := []int64{64, 128, 192, 1024}
		grainChoices := []int64{0, 1, 64, 4096}
		pi := ParallelIndexer{
			Workers: workersChoices[int(wSel)%len(workersChoices)],
			Grain:   chunkChoices[int(cSel)%len(chunkChoices)],
		}
		grain := grainChoices[int(gSel)%len(grainChoices)]

		want := sequentialSplits(data, grain)
		if got := pi.Splits(data, grain); !int64sEqual(got, want) {
			t.Fatalf("parallel splits diverge (workers=%d chunk=%d grain=%d):\n got %v\nwant %v",
				pi.Workers, pi.Grain, grain, got, want)
		}

		opener := &bytesRangeOpener{data: data, failAt: -1}
		got, err := pi.SplitsRange(opener.open, int64(len(data)), grain, 64)
		if err != nil {
			t.Fatalf("SplitsRange error: %v", err)
		}
		if !int64sEqual(got, want) {
			t.Fatalf("range splits diverge:\n got %v\nwant %v", got, want)
		}

		masks := sequentialMasks(data)
		i := 0
		err = pi.Scan(data, func(off int64, m BlockMasks) error {
			if i >= len(masks) || m != masks[i] {
				return fmt.Errorf("block %d (offset %d):\n got %+v\nwant masks[%d] of %d", i, off, m, i, len(masks))
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatalf("parallel bitmaps diverge (workers=%d chunk=%d): %v", pi.Workers, pi.Grain, err)
		}
		if i != len(masks) {
			t.Fatalf("parallel scan visited %d blocks, want %d", i, len(masks))
		}
	})
}
