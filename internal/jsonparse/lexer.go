// Package jsonparse implements raw-JSON processing for the engine: a
// low-level tokenizer, a tree parser producing item.Item values, and a
// streaming path projector that extracts only the items matching a
// projection path without materializing the rest of the document. The
// projector is the mechanism behind the DATASCAN operator's second argument
// (§4.2 of the paper): it is what lets the engine forward one small object
// at a time instead of whole files.
package jsonparse

import (
	"fmt"
	"math"
	"strconv"
	"unicode/utf8"
)

// TokenKind identifies a JSON token.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokColon
	TokComma
	TokString
	TokNumber
	TokTrue
	TokFalse
	TokNull
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokLBrace:
		return "{"
	case TokRBrace:
		return "}"
	case TokLBracket:
		return "["
	case TokRBracket:
		return "]"
	case TokColon:
		return ":"
	case TokComma:
		return ","
	case TokString:
		return "string"
	case TokNumber:
		return "number"
	case TokTrue:
		return "true"
	case TokFalse:
		return "false"
	case TokNull:
		return "null"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// Lexer tokenizes a JSON document held in memory. It is zero-allocation for
// structural tokens and unescaped strings.
type Lexer struct {
	data []byte
	pos  int

	// Current token state, valid after Next.
	Kind TokenKind
	// Str holds the decoded string value when Kind==TokString.
	Str string
	// Num holds the numeric value when Kind==TokNumber.
	Num float64
}

// NewLexer returns a lexer over data.
func NewLexer(data []byte) *Lexer { return &Lexer{data: data} }

// Offset reports the byte offset of the lexer cursor (start of the next
// token), useful for error messages.
func (l *Lexer) Offset() int { return l.pos }

func (l *Lexer) errf(format string, args ...any) error {
	return fmt.Errorf("json: offset %d: %s", l.pos, fmt.Sprintf(format, args...))
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.data) {
		switch l.data[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		default:
			return
		}
	}
}

// Next advances to the next token, setting Kind (and Str/Num as applicable).
func (l *Lexer) Next() error {
	l.skipSpace()
	if l.pos >= len(l.data) {
		l.Kind = TokEOF
		return nil
	}
	c := l.data[l.pos]
	switch c {
	case '{':
		l.Kind, l.pos = TokLBrace, l.pos+1
	case '}':
		l.Kind, l.pos = TokRBrace, l.pos+1
	case '[':
		l.Kind, l.pos = TokLBracket, l.pos+1
	case ']':
		l.Kind, l.pos = TokRBracket, l.pos+1
	case ':':
		l.Kind, l.pos = TokColon, l.pos+1
	case ',':
		l.Kind, l.pos = TokComma, l.pos+1
	case '"':
		s, err := l.scanString()
		if err != nil {
			return err
		}
		l.Kind, l.Str = TokString, s
	case 't':
		if err := l.scanWord("true"); err != nil {
			return err
		}
		l.Kind = TokTrue
	case 'f':
		if err := l.scanWord("false"); err != nil {
			return err
		}
		l.Kind = TokFalse
	case 'n':
		if err := l.scanWord("null"); err != nil {
			return err
		}
		l.Kind = TokNull
	default:
		if c == '-' || (c >= '0' && c <= '9') {
			n, err := l.scanNumber()
			if err != nil {
				return err
			}
			l.Kind, l.Num = TokNumber, n
			return nil
		}
		return l.errf("unexpected character %q", c)
	}
	return nil
}

func (l *Lexer) scanWord(w string) error {
	if l.pos+len(w) > len(l.data) || string(l.data[l.pos:l.pos+len(w)]) != w {
		return l.errf("invalid literal")
	}
	l.pos += len(w)
	return nil
}

func (l *Lexer) scanNumber() (float64, error) {
	start := l.pos
	p := l.pos
	if p < len(l.data) && l.data[p] == '-' {
		p++
	}
	digits := 0
	for p < len(l.data) && l.data[p] >= '0' && l.data[p] <= '9' {
		p++
		digits++
	}
	if digits == 0 {
		return 0, l.errf("malformed number")
	}
	isFloat := false
	if p < len(l.data) && l.data[p] == '.' {
		isFloat = true
		p++
		fd := 0
		for p < len(l.data) && l.data[p] >= '0' && l.data[p] <= '9' {
			p++
			fd++
		}
		if fd == 0 {
			return 0, l.errf("malformed number: no digits after point")
		}
	}
	if p < len(l.data) && (l.data[p] == 'e' || l.data[p] == 'E') {
		isFloat = true
		p++
		if p < len(l.data) && (l.data[p] == '+' || l.data[p] == '-') {
			p++
		}
		ed := 0
		for p < len(l.data) && l.data[p] >= '0' && l.data[p] <= '9' {
			p++
			ed++
		}
		if ed == 0 {
			return 0, l.errf("malformed number: no exponent digits")
		}
	}
	text := l.data[start:p]
	l.pos = p
	if !isFloat && len(text) <= 15 {
		// Fast integer path (fits float64 exactly).
		neg := false
		i := 0
		if text[0] == '-' {
			neg, i = true, 1
		}
		var v int64
		for ; i < len(text); i++ {
			v = v*10 + int64(text[i]-'0')
		}
		if neg {
			v = -v
		}
		return float64(v), nil
	}
	f, err := strconv.ParseFloat(string(text), 64)
	if err != nil || math.IsInf(f, 0) {
		return 0, l.errf("malformed number %q", text)
	}
	return f, nil
}

func (l *Lexer) scanString() (string, error) {
	// l.data[l.pos] == '"'
	p := l.pos + 1
	start := p
	for p < len(l.data) {
		c := l.data[p]
		if c == '"' {
			s := string(l.data[start:p])
			l.pos = p + 1
			return s, nil
		}
		if c == '\\' {
			return l.scanStringSlow(start)
		}
		if c < 0x20 {
			l.pos = p
			return "", l.errf("control character in string")
		}
		p++
	}
	l.pos = p
	return "", l.errf("unterminated string")
}

func (l *Lexer) scanStringSlow(start int) (string, error) {
	buf := make([]byte, 0, 32)
	buf = append(buf, l.data[start:]...)
	buf = buf[:0]
	p := start
	data := l.data
	for p < len(data) {
		c := data[p]
		switch {
		case c == '"':
			l.pos = p + 1
			return string(buf), nil
		case c == '\\':
			p++
			if p >= len(data) {
				l.pos = p
				return "", l.errf("unterminated escape")
			}
			switch data[p] {
			case '"':
				buf = append(buf, '"')
			case '\\':
				buf = append(buf, '\\')
			case '/':
				buf = append(buf, '/')
			case 'b':
				buf = append(buf, '\b')
			case 'f':
				buf = append(buf, '\f')
			case 'n':
				buf = append(buf, '\n')
			case 'r':
				buf = append(buf, '\r')
			case 't':
				buf = append(buf, '\t')
			case 'u':
				if p+4 >= len(data) {
					l.pos = p
					return "", l.errf("truncated \\u escape")
				}
				r, err := hex4(data[p+1 : p+5])
				if err != nil {
					l.pos = p
					return "", l.errf("bad \\u escape: %v", err)
				}
				p += 4
				if utf16IsHighSurrogate(r) && p+6 < len(data) &&
					data[p+1] == '\\' && data[p+2] == 'u' {
					r2, err := hex4(data[p+3 : p+7])
					if err == nil && utf16IsLowSurrogate(r2) {
						r = utf16Combine(r, r2)
						p += 6
					}
				}
				var tmp [4]byte
				n := utf8.EncodeRune(tmp[:], r)
				buf = append(buf, tmp[:n]...)
			default:
				l.pos = p
				return "", l.errf("invalid escape \\%c", data[p])
			}
			p++
		case c < 0x20:
			l.pos = p
			return "", l.errf("control character in string")
		default:
			buf = append(buf, c)
			p++
		}
	}
	l.pos = p
	return "", l.errf("unterminated string")
}

func hex4(b []byte) (rune, error) {
	var r rune
	for _, c := range b {
		r <<= 4
		switch {
		case c >= '0' && c <= '9':
			r |= rune(c - '0')
		case c >= 'a' && c <= 'f':
			r |= rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			r |= rune(c-'A') + 10
		default:
			return 0, fmt.Errorf("non-hex digit %q", c)
		}
	}
	return r, nil
}

func utf16IsHighSurrogate(r rune) bool { return r >= 0xD800 && r < 0xDC00 }
func utf16IsLowSurrogate(r rune) bool  { return r >= 0xDC00 && r < 0xE000 }
func utf16Combine(hi, lo rune) rune {
	return 0x10000 + (hi-0xD800)<<10 + (lo - 0xDC00)
}
