// Package jsonparse implements raw-JSON processing for the engine: a
// low-level tokenizer, a tree parser producing item.Item values, and a
// streaming path projector that extracts only the items matching a
// projection path without materializing the rest of the document. The
// projector is the mechanism behind the DATASCAN operator's second argument
// (§4.2 of the paper): it is what lets the engine forward one small object
// at a time instead of whole files.
//
// The tokenizer reads through a fixed-size refillable chunk buffer, so a
// document streamed from an io.Reader is never materialized: peak memory is
// O(chunk size), not O(file size). Token values (Str, Num) remain valid
// across buffer refills, and error offsets are absolute file offsets.
package jsonparse

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"unicode/utf8"
)

// TokenKind identifies a JSON token.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokColon
	TokComma
	TokString
	TokNumber
	TokTrue
	TokFalse
	TokNull
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokLBrace:
		return "{"
	case TokRBrace:
		return "}"
	case TokLBracket:
		return "["
	case TokRBracket:
		return "]"
	case TokColon:
		return ":"
	case TokComma:
		return ","
	case TokString:
		return "string"
	case TokNumber:
		return "number"
	case TokTrue:
		return "true"
	case TokFalse:
		return "false"
	case TokNull:
		return "null"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// DefaultChunkSize is the default capacity of a streaming lexer's refill
// buffer (and the read granularity of the reader-based Parse/Project entry
// points). It is the unit charged to the memory accountant by streaming
// scans.
const DefaultChunkSize = 64 << 10

// minChunkSize bounds the chunk buffer from below: the lexer needs a few
// bytes of contiguous lookahead (the "false" literal, \uXXXX escapes with a
// surrogate-pair peek), and compaction must always be able to retain them.
const minChunkSize = 64

// Lexer tokenizes a JSON document, either held fully in memory or streamed
// from an io.Reader through a fixed-size chunk buffer. It is
// zero-allocation for structural tokens and for unescaped strings that do
// not span a refill boundary.
type Lexer struct {
	r    io.Reader // nil when the whole input is in buf
	buf  []byte    // chunk buffer (the whole input for slice lexers)
	pos  int       // cursor into buf[:end]
	end  int       // number of valid bytes in buf
	base int64     // absolute file offset of buf[0]
	eof  bool      // no bytes exist beyond buf[:end]

	// scratch accumulates the bytes of a token that spans refills (or
	// contains escapes); it is reused across tokens.
	scratch []byte

	// Current token state, valid after Next.
	Kind TokenKind
	// Str holds the decoded string value when Kind==TokString.
	Str string
	// Num holds the numeric value when Kind==TokNumber.
	Num float64
}

// NewLexer returns a lexer over an in-memory document. The slice is never
// modified.
func NewLexer(data []byte) *Lexer {
	return &Lexer{buf: data, end: len(data), eof: true}
}

// NewStreamLexer returns a lexer that tokenizes the JSON document read from
// r through a refillable chunk buffer of chunkSize bytes (DefaultChunkSize
// when chunkSize <= 0; a small floor applies so the lexer always has enough
// contiguous lookahead).
func NewStreamLexer(r io.Reader, chunkSize int) *Lexer {
	return NewStreamLexerAt(r, chunkSize, 0)
}

// NewStreamLexerAt is NewStreamLexer for a reader that does not start at the
// beginning of the file: base is the absolute offset of r's first byte, so
// Offset and error positions remain absolute file offsets. Byte-range
// (morsel) scans use it.
func NewStreamLexerAt(r io.Reader, chunkSize int, base int64) *Lexer {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if chunkSize < minChunkSize {
		chunkSize = minChunkSize
	}
	return &Lexer{r: r, buf: make([]byte, chunkSize), base: base}
}

// ResetStream rebinds a streaming lexer to a new reader whose first byte
// sits at absolute offset base, reusing the chunk buffer and the token
// scratch buffer. It is how a scan task amortizes its lexer allocations
// across the many files and morsels it processes. Calling it on a lexer
// built over an in-memory slice allocates a fresh chunk buffer (the slice
// belongs to the caller and is never written).
func (l *Lexer) ResetStream(r io.Reader, base int64) {
	if l.r == nil || len(l.buf) < minChunkSize {
		l.buf = make([]byte, DefaultChunkSize)
	}
	l.r = r
	l.pos, l.end = 0, 0
	l.base = base
	l.eof = false
	l.Kind, l.Str, l.Num = TokEOF, "", 0
}

// SkipPastNewline advances the cursor just past the next '\n' byte,
// reporting false if the input ends first. Raw newlines cannot occur inside
// JSON strings (control characters must be escaped), so in well-formed
// newline-delimited input the byte after a '\n' is always between top-level
// values — the record-alignment rule of morsel scans.
func (l *Lexer) SkipPastNewline() (bool, error) {
	for {
		for l.pos < l.end {
			if l.buf[l.pos] == '\n' {
				l.pos++
				return true, nil
			}
			l.pos++
		}
		got, err := l.refill()
		if err != nil {
			return false, err
		}
		if !got {
			return false, nil
		}
	}
}

// AtEOF reports whether only whitespace remains in the input, consuming it.
func (l *Lexer) AtEOF() (bool, error) {
	if err := l.skipSpace(); err != nil {
		return false, err
	}
	return l.pos >= l.end, nil
}

// Offset reports the absolute byte offset of the lexer cursor in the input
// (file offset, not an index into the current chunk), useful for error
// messages.
func (l *Lexer) Offset() int { return int(l.base) + l.pos }

func (l *Lexer) errf(format string, args ...any) error {
	return l.errfAt(int64(l.Offset()), format, args...)
}

func (l *Lexer) errfAt(off int64, format string, args ...any) error {
	return fmt.Errorf("json: offset %d: %s", off, fmt.Sprintf(format, args...))
}

// refill discards the consumed prefix of the buffer and reads more input.
// It reports whether any new bytes arrived; false means end of input.
func (l *Lexer) refill() (bool, error) {
	if l.eof {
		return false, nil
	}
	if l.pos > 0 {
		l.base += int64(l.pos)
		copy(l.buf, l.buf[l.pos:l.end])
		l.end -= l.pos
		l.pos = 0
	}
	got := false
	for l.end < len(l.buf) {
		n, err := l.r.Read(l.buf[l.end:])
		l.end += n
		if n > 0 {
			got = true
		}
		if err == io.EOF {
			l.eof = true
			return got, nil
		}
		if err != nil {
			l.eof = true
			return got, l.errf("read: %v", err)
		}
		if n > 0 {
			return true, nil
		}
	}
	return got, nil
}

// ensure makes at least n contiguous bytes available at buf[pos:],
// refilling as needed; it reports false when the input ends first.
// n must not exceed minChunkSize.
func (l *Lexer) ensure(n int) (bool, error) {
	for l.end-l.pos < n {
		got, err := l.refill()
		if err != nil {
			return false, err
		}
		if !got {
			return false, nil
		}
	}
	return true, nil
}

func (l *Lexer) skipSpace() error {
	for {
		for l.pos < l.end {
			switch l.buf[l.pos] {
			case ' ', '\t', '\n', '\r':
				l.pos++
			default:
				return nil
			}
		}
		got, err := l.refill()
		if err != nil {
			return err
		}
		if !got {
			return nil
		}
	}
}

// Next advances to the next token, setting Kind (and Str/Num as applicable).
func (l *Lexer) Next() error {
	if err := l.skipSpace(); err != nil {
		return err
	}
	if l.pos >= l.end {
		l.Kind = TokEOF
		return nil
	}
	c := l.buf[l.pos]
	switch c {
	case '{':
		l.Kind, l.pos = TokLBrace, l.pos+1
	case '}':
		l.Kind, l.pos = TokRBrace, l.pos+1
	case '[':
		l.Kind, l.pos = TokLBracket, l.pos+1
	case ']':
		l.Kind, l.pos = TokRBracket, l.pos+1
	case ':':
		l.Kind, l.pos = TokColon, l.pos+1
	case ',':
		l.Kind, l.pos = TokComma, l.pos+1
	case '"':
		s, err := l.scanString()
		if err != nil {
			return err
		}
		l.Kind, l.Str = TokString, s
	case 't':
		if err := l.scanWord("true"); err != nil {
			return err
		}
		l.Kind = TokTrue
	case 'f':
		if err := l.scanWord("false"); err != nil {
			return err
		}
		l.Kind = TokFalse
	case 'n':
		if err := l.scanWord("null"); err != nil {
			return err
		}
		l.Kind = TokNull
	default:
		if c == '-' || (c >= '0' && c <= '9') {
			n, err := l.scanNumber()
			if err != nil {
				return err
			}
			l.Kind, l.Num = TokNumber, n
			return nil
		}
		return l.errf("unexpected character %q", c)
	}
	return nil
}

func (l *Lexer) scanWord(w string) error {
	ok, err := l.ensure(len(w))
	if err != nil {
		return err
	}
	if !ok || string(l.buf[l.pos:l.pos+len(w)]) != w {
		return l.errf("invalid literal")
	}
	l.pos += len(w)
	return nil
}

// isNumChar reports whether c can appear inside a JSON number token.
func isNumChar(c byte) bool {
	return (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E'
}

func (l *Lexer) scanNumber() (float64, error) {
	// Collect the maximal run of number-shaped characters, then validate
	// its shape. The run almost always sits inside one chunk (fast path:
	// the text aliases the buffer); when it crosses a refill boundary it is
	// accumulated in scratch so the value survives compaction.
	off := int64(l.Offset())
	l.scratch = l.scratch[:0]
	var text []byte
	start := l.pos
	for {
		p := l.pos
		for p < l.end && isNumChar(l.buf[p]) {
			p++
		}
		if p < l.end || l.eof {
			if len(l.scratch) == 0 {
				text = l.buf[start:p]
			} else {
				l.scratch = append(l.scratch, l.buf[l.pos:p]...)
				text = l.scratch
			}
			l.pos = p
			break
		}
		// The run reaches the end of the window: stash it and refill.
		l.scratch = append(l.scratch, l.buf[l.pos:p]...)
		l.pos = p
		if _, err := l.refill(); err != nil {
			return 0, err
		}
		start = l.pos
	}
	return l.parseNumber(off, text)
}

// parseNumber validates and converts one complete number token.
func (l *Lexer) parseNumber(off int64, text []byte) (float64, error) {
	p := 0
	if p < len(text) && text[p] == '-' {
		p++
	}
	digits := 0
	for p < len(text) && text[p] >= '0' && text[p] <= '9' {
		p++
		digits++
	}
	if digits == 0 {
		return 0, l.errfAt(off, "malformed number")
	}
	isFloat := false
	if p < len(text) && text[p] == '.' {
		isFloat = true
		p++
		fd := 0
		for p < len(text) && text[p] >= '0' && text[p] <= '9' {
			p++
			fd++
		}
		if fd == 0 {
			return 0, l.errfAt(off, "malformed number: no digits after point")
		}
	}
	if p < len(text) && (text[p] == 'e' || text[p] == 'E') {
		isFloat = true
		p++
		if p < len(text) && (text[p] == '+' || text[p] == '-') {
			p++
		}
		ed := 0
		for p < len(text) && text[p] >= '0' && text[p] <= '9' {
			p++
			ed++
		}
		if ed == 0 {
			return 0, l.errfAt(off, "malformed number: no exponent digits")
		}
	}
	if p != len(text) {
		return 0, l.errfAt(off, "malformed number %q", text)
	}
	if !isFloat && len(text) <= 15 {
		// Fast integer path (fits float64 exactly).
		neg := false
		i := 0
		if text[0] == '-' {
			neg, i = true, 1
		}
		var v int64
		for ; i < len(text); i++ {
			v = v*10 + int64(text[i]-'0')
		}
		if neg {
			v = -v
		}
		return float64(v), nil
	}
	f, err := strconv.ParseFloat(string(text), 64)
	if err != nil || math.IsInf(f, 0) {
		return 0, l.errfAt(off, "malformed number %q", text)
	}
	return f, nil
}

func (l *Lexer) scanString() (string, error) {
	// l.buf[l.pos] == '"'. Unescaped segments are scanned in place; as soon
	// as the string contains an escape or spans a refill boundary the
	// decoded bytes accumulate in scratch instead, so the value never
	// depends on buffer contents that compaction may discard.
	l.pos++
	l.scratch = l.scratch[:0]
	direct := true // the value is a single in-buffer segment, no copy yet
	segStart := l.pos
	for {
		p := l.pos
		for p < l.end {
			c := l.buf[p]
			if c == '"' {
				var s string
				if direct {
					s = string(l.buf[segStart:p])
				} else {
					l.scratch = append(l.scratch, l.buf[segStart:p]...)
					s = string(l.scratch)
				}
				l.pos = p + 1
				return s, nil
			}
			if c == '\\' {
				l.scratch = append(l.scratch, l.buf[segStart:p]...)
				direct = false
				l.pos = p
				if err := l.scanEscape(); err != nil {
					return "", err
				}
				segStart = l.pos
				p = l.pos
				continue
			}
			if c < 0x20 {
				l.pos = p
				return "", l.errf("control character in string")
			}
			p++
		}
		// End of window without a closing quote: stash the segment scanned
		// so far and refill.
		l.scratch = append(l.scratch, l.buf[segStart:p]...)
		direct = false
		l.pos = p
		got, err := l.refill()
		if err != nil {
			return "", err
		}
		if !got {
			return "", l.errf("unterminated string")
		}
		segStart = l.pos
	}
}

// scanEscape decodes one backslash escape (cursor on the backslash),
// appending the decoded bytes to scratch.
func (l *Lexer) scanEscape() error {
	ok, err := l.ensure(2)
	if err != nil {
		return err
	}
	if !ok {
		l.pos = l.end
		return l.errf("unterminated escape")
	}
	c := l.buf[l.pos+1]
	l.pos += 2
	switch c {
	case '"':
		l.scratch = append(l.scratch, '"')
	case '\\':
		l.scratch = append(l.scratch, '\\')
	case '/':
		l.scratch = append(l.scratch, '/')
	case 'b':
		l.scratch = append(l.scratch, '\b')
	case 'f':
		l.scratch = append(l.scratch, '\f')
	case 'n':
		l.scratch = append(l.scratch, '\n')
	case 'r':
		l.scratch = append(l.scratch, '\r')
	case 't':
		l.scratch = append(l.scratch, '\t')
	case 'u':
		ok, err := l.ensure(4)
		if err != nil {
			return err
		}
		if !ok {
			return l.errf("truncated \\u escape")
		}
		r, err := hex4(l.buf[l.pos : l.pos+4])
		if err != nil {
			return l.errf("bad \\u escape: %v", err)
		}
		l.pos += 4
		if utf16IsHighSurrogate(r) {
			// Peek for the low half of a surrogate pair; leave the cursor
			// untouched unless a valid pair follows.
			ok, err := l.ensure(6)
			if err != nil {
				return err
			}
			if ok && l.buf[l.pos] == '\\' && l.buf[l.pos+1] == 'u' {
				if r2, err2 := hex4(l.buf[l.pos+2 : l.pos+6]); err2 == nil && utf16IsLowSurrogate(r2) {
					r = utf16Combine(r, r2)
					l.pos += 6
				}
			}
		}
		var tmp [4]byte
		n := utf8.EncodeRune(tmp[:], r)
		l.scratch = append(l.scratch, tmp[:n]...)
	default:
		l.pos--
		return l.errf("invalid escape \\%c", c)
	}
	return nil
}

func hex4(b []byte) (rune, error) {
	var r rune
	for _, c := range b {
		r <<= 4
		switch {
		case c >= '0' && c <= '9':
			r |= rune(c - '0')
		case c >= 'a' && c <= 'f':
			r |= rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			r |= rune(c-'A') + 10
		default:
			return 0, fmt.Errorf("non-hex digit %q", c)
		}
	}
	return r, nil
}

func utf16IsHighSurrogate(r rune) bool { return r >= 0xD800 && r < 0xDC00 }
func utf16IsLowSurrogate(r rune) bool  { return r >= 0xDC00 && r < 0xE000 }
func utf16Combine(hi, lo rune) rune {
	return 0x10000 + (hi-0xD800)<<10 + (lo - 0xDC00)
}
