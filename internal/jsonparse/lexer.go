// Package jsonparse implements raw-JSON processing for the engine: a
// low-level tokenizer, a tree parser producing item.Item values, and a
// streaming path projector that extracts only the items matching a
// projection path without materializing the rest of the document. The
// projector is the mechanism behind the DATASCAN operator's second argument
// (§4.2 of the paper): it is what lets the engine forward one small object
// at a time instead of whole files.
//
// The tokenizer reads through a fixed-size refillable chunk buffer, so a
// document streamed from an io.Reader is never materialized: peak memory is
// O(chunk size), not O(file size). Error offsets are absolute file offsets.
//
// The tokenizer is on-demand: string tokens are exposed as byte-slice views
// (StrBytes) that stay valid until the lexer next advances, object keys that
// must be materialized share one string through an intern table (InternKey),
// and number tokens carry their raw text — shape-validated eagerly, but
// converted to float64 only when a consumer calls NumValue. Subtrees that a
// projection discards are skipped by SkipValueRaw, a structural scan over
// raw bytes that never materializes tokens at all.
package jsonparse

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
	"strconv"
	"unicode/utf8"

	"vxq/internal/item"
)

// TokenKind identifies a JSON token.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokColon
	TokComma
	TokString
	TokNumber
	TokTrue
	TokFalse
	TokNull
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokLBrace:
		return "{"
	case TokRBrace:
		return "}"
	case TokLBracket:
		return "["
	case TokRBracket:
		return "]"
	case TokColon:
		return ":"
	case TokComma:
		return ","
	case TokString:
		return "string"
	case TokNumber:
		return "number"
	case TokTrue:
		return "true"
	case TokFalse:
		return "false"
	case TokNull:
		return "null"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// DefaultChunkSize is the default capacity of a streaming lexer's refill
// buffer (and the read granularity of the reader-based Parse/Project entry
// points). It is the unit charged to the memory accountant by streaming
// scans.
const DefaultChunkSize = 64 << 10

// minChunkSize bounds the chunk buffer from below: the lexer needs a few
// bytes of contiguous lookahead (the "false" literal, \uXXXX escapes with a
// surrogate-pair peek), and compaction must always be able to retain them.
const minChunkSize = 64

// Lexer tokenizes a JSON document, either held fully in memory or streamed
// from an io.Reader through a fixed-size chunk buffer. It is
// zero-allocation for structural tokens and for unescaped strings that do
// not span a refill boundary.
type Lexer struct {
	r    io.Reader // nil when the whole input is in buf
	buf  []byte    // chunk buffer (the whole input for slice lexers)
	pos  int       // cursor into buf[:end]
	end  int       // number of valid bytes in buf
	base int64     // absolute file offset of buf[0]
	eof  bool      // no bytes exist beyond buf[:end]

	// lineStart is the absolute offset just past the most recent '\n' the
	// lexer consumed as inter-token whitespace (or the stream's starting
	// offset if none yet). For newline-delimited records — where newlines
	// only ever appear between top-level values — it is the starting offset
	// of the line the cursor is on, which is the anchor of the morsel
	// ownership rule (see ScanValues and LineStart).
	lineStart int64

	// scratch accumulates the bytes of a token that spans refills (or
	// contains escapes); it is reused across tokens.
	scratch []byte

	// keyScratch holds the key bytes objectMember returns when its tokenizer
	// fallback runs: the colon advance that follows can refill and compact
	// the chunk buffer, so a zero-copy view of the key would be shifted out
	// from under the caller. Reused across members.
	keyScratch []byte

	// intern maps object-key bytes to a shared string so a key that repeats
	// across millions of records is materialized once (see InternKey).
	intern map[string]string

	// strItems caches boxed item.String values the same way intern caches
	// key strings: projected low-cardinality string fields (enum-like codes
	// such as "TMIN") repeat across millions of records, and reusing the
	// boxed item removes both the string copy and the interface allocation
	// from the per-record path (see internStringItem).
	strItems map[string]item.Item

	// skipMode selects how discarded subtrees are consumed: the structural
	// index kernel, the byte-class scan, the token-level reference, or (the
	// default) an automatic choice by chunk size. See SkipMode.
	skipMode SkipMode

	// Current token state, valid after Next.
	Kind TokenKind
	// str is the decoded string value when Kind==TokString: a view into the
	// chunk buffer or the scratch buffer, valid only until the lexer next
	// advances (Next, AtEOF, SkipValueRaw, ...).
	str []byte
	// numRaw is the raw (shape-validated) text when Kind==TokNumber, a view
	// with the same lifetime as str; numOff is its absolute offset and
	// numFloat records whether it has a fraction or exponent part.
	numRaw   []byte
	numOff   int64
	numFloat bool
}

// NewLexer returns a lexer over an in-memory document. The slice is never
// modified.
func NewLexer(data []byte) *Lexer {
	return &Lexer{buf: data, end: len(data), eof: true}
}

// NewStreamLexer returns a lexer that tokenizes the JSON document read from
// r through a refillable chunk buffer of chunkSize bytes (DefaultChunkSize
// when chunkSize <= 0; a small floor applies so the lexer always has enough
// contiguous lookahead).
func NewStreamLexer(r io.Reader, chunkSize int) *Lexer {
	return NewStreamLexerAt(r, chunkSize, 0)
}

// NewStreamLexerAt is NewStreamLexer for a reader that does not start at the
// beginning of the file: base is the absolute offset of r's first byte, so
// Offset and error positions remain absolute file offsets. Byte-range
// (morsel) scans use it.
func NewStreamLexerAt(r io.Reader, chunkSize int, base int64) *Lexer {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if chunkSize < minChunkSize {
		chunkSize = minChunkSize
	}
	return &Lexer{r: r, buf: make([]byte, chunkSize), base: base, lineStart: base}
}

// ResetStream rebinds a streaming lexer to a new reader whose first byte
// sits at absolute offset base, reusing the chunk buffer, the token scratch
// buffer, and the object-key intern table. It is how a scan task amortizes
// its lexer allocations across the many files and morsels it processes (the
// intern table carrying over is the point: the same record schema repeats
// across morsels). Calling it on a lexer built over an in-memory slice
// allocates a fresh chunk buffer (the slice belongs to the caller and is
// never written).
func (l *Lexer) ResetStream(r io.Reader, base int64) {
	if l.r == nil || len(l.buf) < minChunkSize {
		l.buf = make([]byte, DefaultChunkSize)
	}
	l.r = r
	l.pos, l.end = 0, 0
	l.base = base
	l.lineStart = base
	l.eof = false
	l.Kind, l.str, l.numRaw = TokEOF, nil, nil
}

// SkipMode selects the implementation used to consume subtrees a projection
// discards. The three concrete modes exist for differential testing and
// before/after benchmarks; production code leaves the default.
type SkipMode uint8

const (
	// SkipAuto (the default) picks SkipIndexed when the chunk buffer is
	// large enough for the block kernel to pay off (in-memory inputs and
	// streams with chunks >= indexedSkipMinChunk) and SkipRawBytes for
	// small-chunk streams, preserving their bounded-peak-memory behavior.
	SkipAuto SkipMode = iota
	// SkipIndexed navigates the SWAR structural index (structidx.go),
	// consuming 64-byte blocks per step.
	SkipIndexed
	// SkipRawBytes runs the byte-class structural scan, one byte per step.
	SkipRawBytes
	// SkipTokens drives the tokenizer through every token of the skipped
	// value: the slow differential oracle.
	SkipTokens
)

// indexedSkipMinChunk is the smallest streaming chunk size for which
// SkipAuto selects the structural-index kernel: below it, windows rarely
// hold a full 64-byte block plus lookahead and the byte-class scan wins.
const indexedSkipMinChunk = 4096

// SetSkipMode selects the skip implementation (see SkipMode).
func (l *Lexer) SetSkipMode(m SkipMode) { l.skipMode = m }

// SetReferenceSkip switches the lexer's skip path to the token-level
// reference implementation (true) or back to the default automatic choice
// (false). It exists for differential tests and before/after benchmarks and
// predates SetSkipMode, which the three-way differential suite uses.
func (l *Lexer) SetReferenceSkip(on bool) {
	if on {
		l.skipMode = SkipTokens
	} else {
		l.skipMode = SkipAuto
	}
}

// indexedSkip reports whether raw skips should navigate the structural
// index: explicitly selected, or automatic with a window large enough for
// whole blocks.
func (l *Lexer) indexedSkip() bool {
	switch l.skipMode {
	case SkipIndexed:
		return true
	case SkipAuto:
		return l.r == nil || len(l.buf) >= indexedSkipMinChunk
	default:
		return false
	}
}

// StrBytes returns the decoded string value of the current TokString token
// as a byte-slice view. The view is only valid until the lexer next
// advances; callers that keep the value must copy it (StrValue, InternKey).
func (l *Lexer) StrBytes() []byte { return l.str }

// StrValue materializes the current TokString token as a Go string.
func (l *Lexer) StrValue() string { return string(l.str) }

// maxInternEntries caps the intern table: document keys number in the dozens
// in practice, but adversarial input (random keys) must not grow the table
// without bound. Beyond the cap, keys are materialized per occurrence.
const maxInternEntries = 1 << 12

// InternKey materializes the current TokString token through the lexer's
// intern table: every occurrence of the same key bytes returns the same
// string, so a key repeated across millions of records is allocated once.
func (l *Lexer) InternKey() string { return l.internBytes(l.str) }

// internBytes is InternKey for an explicit byte view (the raw key scan
// returns key bytes without touching token state).
func (l *Lexer) internBytes(b []byte) string {
	if s, ok := l.intern[string(b)]; ok { // no-alloc map probe
		return s
	}
	s := string(b)
	if l.intern == nil {
		l.intern = make(map[string]string, 16)
	}
	if len(l.intern) < maxInternEntries {
		l.intern[s] = s
	}
	return s
}

// SkipPastNewline advances the cursor just past the next '\n' byte,
// reporting false if the input ends first. Raw newlines cannot occur inside
// JSON strings (control characters must be escaped), so in well-formed
// newline-delimited input the byte after a '\n' is always between top-level
// values — the record-alignment rule of morsel scans.
func (l *Lexer) SkipPastNewline() (bool, error) {
	for {
		for l.pos < l.end {
			if l.buf[l.pos] == '\n' {
				l.pos++
				l.lineStart = l.base + int64(l.pos)
				return true, nil
			}
			l.pos++
		}
		got, err := l.refill()
		if err != nil {
			return false, err
		}
		if !got {
			return false, nil
		}
	}
}

// AtEOF reports whether only whitespace remains in the input, consuming it.
func (l *Lexer) AtEOF() (bool, error) {
	if err := l.skipSpace(); err != nil {
		return false, err
	}
	return l.pos >= l.end, nil
}

// Offset reports the absolute byte offset of the lexer cursor in the input
// (file offset, not an index into the current chunk), useful for error
// messages.
func (l *Lexer) Offset() int { return int(l.base) + l.pos }

// LineStart reports the absolute offset just past the most recent '\n' the
// lexer consumed as inter-token whitespace (SkipPastNewline counts too), or
// the stream's starting offset if it has consumed none. With the
// newline-delimited-records contract (newlines appear only between top-level
// values, never inside one), calling it when the cursor sits at the start of
// a record yields the offset where that record's line begins — the anchor of
// the morsel ownership rule. Newlines inside a value that SkipValueRaw scans
// over are not tracked; such input violates the contract and is rejected
// loudly by misaligned morsel scans rather than silently misattributed.
func (l *Lexer) LineStart() int64 { return l.lineStart }

func (l *Lexer) errf(format string, args ...any) error {
	return l.errfAt(int64(l.Offset()), format, args...)
}

func (l *Lexer) errfAt(off int64, format string, args ...any) error {
	return fmt.Errorf("json: offset %d: %s", off, fmt.Sprintf(format, args...))
}

// refill discards the consumed prefix of the buffer and reads more input.
// It reports whether any new bytes arrived; false means end of input.
func (l *Lexer) refill() (bool, error) {
	if l.eof {
		return false, nil
	}
	if l.pos > 0 {
		l.base += int64(l.pos)
		copy(l.buf, l.buf[l.pos:l.end])
		l.end -= l.pos
		l.pos = 0
	}
	got := false
	for l.end < len(l.buf) {
		n, err := l.r.Read(l.buf[l.end:])
		l.end += n
		if n > 0 {
			got = true
		}
		if err == io.EOF {
			l.eof = true
			return got, nil
		}
		if err != nil {
			l.eof = true
			return got, l.errf("read: %v", err)
		}
		if n > 0 {
			return true, nil
		}
	}
	return got, nil
}

// ensure makes at least n contiguous bytes available at buf[pos:],
// refilling as needed; it reports false when the input ends first.
// n must not exceed minChunkSize.
func (l *Lexer) ensure(n int) (bool, error) {
	for l.end-l.pos < n {
		got, err := l.refill()
		if err != nil {
			return false, err
		}
		if !got {
			return false, nil
		}
	}
	return true, nil
}

// skipSpace consumes inter-token whitespace. The body is a single compare so
// the call inlines everywhere: compact JSON has no whitespace between tokens
// at all, and every byte above 0x20 starts a token.
func (l *Lexer) skipSpace() error {
	if l.pos < l.end && l.buf[l.pos] > 0x20 {
		return nil
	}
	return l.skipSpaceSlow()
}

func (l *Lexer) skipSpaceSlow() error {
	for {
		for l.pos < l.end {
			switch l.buf[l.pos] {
			case '\n':
				l.pos++
				l.lineStart = l.base + int64(l.pos)
			case ' ', '\t', '\r':
				l.pos++
			default:
				return nil
			}
		}
		got, err := l.refill()
		if err != nil {
			return err
		}
		if !got {
			return nil
		}
	}
}

// Next advances to the next token, setting Kind (and Str/Num as applicable).
func (l *Lexer) Next() error {
	if err := l.skipSpace(); err != nil {
		return err
	}
	if l.pos >= l.end {
		l.Kind = TokEOF
		return nil
	}
	c := l.buf[l.pos]
	switch c {
	case '{':
		l.Kind, l.pos = TokLBrace, l.pos+1
	case '}':
		l.Kind, l.pos = TokRBrace, l.pos+1
	case '[':
		l.Kind, l.pos = TokLBracket, l.pos+1
	case ']':
		l.Kind, l.pos = TokRBracket, l.pos+1
	case ':':
		l.Kind, l.pos = TokColon, l.pos+1
	case ',':
		l.Kind, l.pos = TokComma, l.pos+1
	case '"':
		s, err := l.scanString()
		if err != nil {
			return err
		}
		l.Kind, l.str = TokString, s
	case 't':
		if err := l.scanWord("true"); err != nil {
			return err
		}
		l.Kind = TokTrue
	case 'f':
		if err := l.scanWord("false"); err != nil {
			return err
		}
		l.Kind = TokFalse
	case 'n':
		if err := l.scanWord("null"); err != nil {
			return err
		}
		l.Kind = TokNull
	default:
		if c == '-' || (c >= '0' && c <= '9') {
			if err := l.scanNumber(); err != nil {
				return err
			}
			l.Kind = TokNumber
			return nil
		}
		return l.errf("unexpected character %q", c)
	}
	return nil
}

func (l *Lexer) scanWord(w string) error {
	ok, err := l.ensure(len(w))
	if err != nil {
		return err
	}
	if !ok || string(l.buf[l.pos:l.pos+len(w)]) != w {
		return l.errf("invalid literal")
	}
	l.pos += len(w)
	return nil
}

// Number-scanner states. The scanner is grammar-driven: the token ends at
// the first byte that is not a valid continuation (matching encoding/json's
// token boundaries exactly, including the leading-zero rule), instead of
// swallowing a maximal run of number-shaped characters and validating after.
type numState uint8

const (
	numNeg     numState = iota // consumed '-', expect first integer digit
	numZero                    // consumed a leading '0' (accepting; no more integer digits)
	numInt                     // consuming 1-9... integer digits (accepting)
	numDot                     // consumed '.', expect first fraction digit
	numFrac                    // consuming fraction digits (accepting)
	numExpE                    // consumed e/E, expect exponent sign or digit
	numExpSign                 // consumed exponent sign, expect exponent digit
	numExp                     // consuming exponent digits (accepting)
)

// numStep advances the number grammar by one byte, reporting whether the
// byte belongs to the token (ok=false means the token ends before c).
func numStep(st numState, c byte) (numState, bool) {
	switch st {
	case numNeg:
		if c == '0' {
			return numZero, true
		}
		if c >= '1' && c <= '9' {
			return numInt, true
		}
	case numZero:
		if c == '.' {
			return numDot, true
		}
		if c == 'e' || c == 'E' {
			return numExpE, true
		}
	case numInt:
		if c >= '0' && c <= '9' {
			return numInt, true
		}
		if c == '.' {
			return numDot, true
		}
		if c == 'e' || c == 'E' {
			return numExpE, true
		}
	case numDot:
		if c >= '0' && c <= '9' {
			return numFrac, true
		}
	case numFrac:
		if c >= '0' && c <= '9' {
			return numFrac, true
		}
		if c == 'e' || c == 'E' {
			return numExpE, true
		}
	case numExpE:
		if c == '+' || c == '-' {
			return numExpSign, true
		}
		if c >= '0' && c <= '9' {
			return numExp, true
		}
	case numExpSign:
		if c >= '0' && c <= '9' {
			return numExp, true
		}
	case numExp:
		if c >= '0' && c <= '9' {
			return numExp, true
		}
	}
	return st, false
}

// scanNumber collects one number token into a view (numRaw), deferring the
// float64 conversion to NumValue. The token almost always sits inside one
// chunk (fast path: the view aliases the buffer); when it crosses a refill
// boundary it is accumulated in scratch so the view survives compaction.
func (l *Lexer) scanNumber() error {
	off := int64(l.Offset())
	l.scratch = l.scratch[:0]
	useScratch := false
	start := l.pos
	isFloat := false
	// The first byte is '-' or a digit (Next dispatched on it).
	var st numState
	switch c := l.buf[l.pos]; {
	case c == '-':
		st = numNeg
	case c == '0':
		st = numZero
	default:
		st = numInt
	}
	l.pos++
	for {
		if l.pos >= l.end {
			// Window exhausted mid-token: stash the segment and refill.
			l.scratch = append(l.scratch, l.buf[start:l.pos]...)
			useScratch = true
			got, err := l.refill()
			if err != nil {
				return err
			}
			start = l.pos
			if !got {
				break // end of input ends the token
			}
			continue
		}
		c := l.buf[l.pos]
		next, ok := numStep(st, c)
		if !ok {
			break // c belongs to the next token
		}
		if c == '.' || c == 'e' || c == 'E' {
			isFloat = true
		}
		st = next
		l.pos++
	}
	switch st {
	case numNeg:
		return l.errfAt(off, "malformed number")
	case numDot:
		return l.errfAt(off, "malformed number: no digits after point")
	case numExpE, numExpSign:
		return l.errfAt(off, "malformed number: no exponent digits")
	}
	var text []byte
	if !useScratch {
		text = l.buf[start:l.pos]
	} else {
		l.scratch = append(l.scratch, l.buf[start:l.pos]...)
		text = l.scratch
	}
	l.numRaw, l.numOff, l.numFloat = text, off, isFloat
	return nil
}

// pow10 holds the powers of ten that float64 represents exactly, the divisor
// range of the no-alloc decimal fast path.
var pow10 = [23]float64{
	1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// NumValue converts the current TokNumber token. The integer and
// simple-decimal forms that dominate sensor data convert without allocating:
// a mantissa of at most 15 digits and no exponent is exact in float64, and
// dividing it by an exactly-representable power of ten is a single correctly
// rounded operation, so the result is bit-identical to strconv's. Everything
// else falls back to strconv.ParseFloat. Out-of-range values (e.g. 1e999)
// report the same malformed-number error the eager lexer did, now at first
// use instead of at tokenization.
func (l *Lexer) NumValue() (float64, error) {
	text := l.numRaw
	if !l.numFloat && len(text) <= 15 {
		// Fast integer path (fits float64 exactly).
		neg := false
		i := 0
		if text[0] == '-' {
			neg, i = true, 1
		}
		var v int64
		for ; i < len(text); i++ {
			v = v*10 + int64(text[i]-'0')
		}
		// Negate in the float domain: int64 has no signed zero, so "-0"
		// negated as an integer would lose its sign bit (strconv yields -0.0).
		f := float64(v)
		if neg {
			f = -f
		}
		return f, nil
	}
	// Fast decimal path: [-]digits.digits with <= 15 significant digits and
	// a fraction short enough that its power-of-ten divisor is exact.
	if l.numFloat {
		neg := false
		i := 0
		if text[0] == '-' {
			neg, i = true, 1
		}
		var mant int64
		digits, frac := 0, -1
		ok := true
		for ; i < len(text); i++ {
			c := text[i]
			if c == '.' {
				frac = 0
				continue
			}
			if c < '0' || c > '9' {
				ok = false // exponent form: fall back
				break
			}
			mant = mant*10 + int64(c-'0')
			digits++
			if frac >= 0 {
				frac++
			}
		}
		if ok && digits <= 15 && frac >= 1 && frac < len(pow10) {
			f := float64(mant) / pow10[frac]
			if neg {
				f = -f
			}
			return f, nil
		}
	}
	f, err := strconv.ParseFloat(string(text), 64)
	if err != nil || math.IsInf(f, 0) {
		return 0, l.errfAt(l.numOff, "malformed number %q", text)
	}
	return f, nil
}

func (l *Lexer) scanString() ([]byte, error) {
	// l.buf[l.pos] == '"'. Unescaped segments are scanned in place; as soon
	// as the string contains an escape or spans a refill boundary the
	// decoded bytes accumulate in scratch instead, so the value never
	// depends on buffer contents that compaction may discard. The returned
	// slice is a view (into buf or scratch), not a copy: it stays valid only
	// until the lexer next advances.
	l.pos++
	l.scratch = l.scratch[:0]
	direct := true // the value is a single in-buffer segment, no copy yet
	segStart := l.pos
	for {
		p := l.pos
		for p < l.end {
			// Word-at-a-time fast path: jump straight to the next byte the
			// scanner must look at (quote, backslash or control byte). The
			// loose event mask can set false-positive bits, but only above
			// its lowest set bit, which is always a real event — and an
			// all-zero mask exactly means the word is plain text.
			if l.end-p >= 8 {
				m := stringEventMask(binary.LittleEndian.Uint64(l.buf[p:]))
				if m == 0 {
					p += 8
					continue
				}
				p += bits.TrailingZeros64(m) >> 3
			}
			c := l.buf[p]
			if c == '"' {
				var s []byte
				if direct {
					s = l.buf[segStart:p]
				} else {
					l.scratch = append(l.scratch, l.buf[segStart:p]...)
					s = l.scratch
				}
				l.pos = p + 1
				return s, nil
			}
			if c == '\\' {
				l.scratch = append(l.scratch, l.buf[segStart:p]...)
				direct = false
				l.pos = p
				if err := l.scanEscape(); err != nil {
					return nil, err
				}
				segStart = l.pos
				p = l.pos
				continue
			}
			if c < 0x20 {
				l.pos = p
				return nil, l.errf("control character in string")
			}
			p++
		}
		// End of window without a closing quote: stash the segment scanned
		// so far and refill.
		l.scratch = append(l.scratch, l.buf[segStart:p]...)
		direct = false
		l.pos = p
		got, err := l.refill()
		if err != nil {
			return nil, err
		}
		if !got {
			return nil, l.errf("unterminated string")
		}
		segStart = l.pos
	}
}

// SkipNextValue consumes the JSON value that begins at the cursor (after
// inter-token whitespace) without tokenizing its first token: the projector
// uses it for object members whose key did not match, so a discarded string
// is never escape-decoded into scratch and a discarded container goes
// straight to the structural skip. On return the lexer's token state is the
// value's closing token where that is cheap to report (containers, strings)
// and unspecified otherwise; callers always advance with Next before reading
// tokens again. In SkipTokens mode it runs the tokenizer over the whole
// value, making it the same three-way differential surface as SkipValueRaw.
func (l *Lexer) SkipNextValue() error {
	if l.skipMode == SkipTokens {
		if err := l.Next(); err != nil {
			return err
		}
		return skipValue(l)
	}
	if err := l.skipSpace(); err != nil {
		return err
	}
	if l.pos >= l.end {
		return l.errf("unexpected end of input")
	}
	switch c := l.buf[l.pos]; c {
	case '"':
		l.pos++
		// One inline word probe resolves short escape-free values ("TMIN",
		// enum-like codes) without the scan-loop call.
		if p := l.pos; l.end-p >= 8 {
			w := l.buf[p : p+8 : p+8]
			if m := stringEventMask(binary.LittleEndian.Uint64(w)); m != 0 {
				if q := p + bits.TrailingZeros64(m)>>3; l.buf[q] == '"' {
					l.pos = q + 1
					l.Kind, l.str = TokString, nil
					return nil
				}
			}
		}
		if err := l.skipStringRaw(l.indexedSkip()); err != nil {
			return err
		}
		l.Kind, l.str = TokString, nil
		return nil
	case '{':
		l.pos++
		return l.skipContainer(TokLBrace, 1)
	case '[':
		l.pos++
		return l.skipContainer(TokLBracket, 1)
	default:
		if c == '-' || (c >= '0' && c <= '9') {
			// Numbers are skipped as a raw run of number characters, with no
			// grammar check. On token-valid input the run ends exactly where
			// the tokenized number does (the next byte is always whitespace
			// or a structural), so the extents agree; on input the token
			// reference rejects, the run is merely more permissive — the
			// same one-directional contract the container skip has for
			// malformed escapes and misplaced separators.
			l.pos++
			for {
				buf, p := l.buf[:l.end], l.pos
				for p < len(buf) {
					c := buf[p]
					if ('0' <= c && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-' {
						p++
						continue
					}
					break
				}
				l.pos = p
				if p < len(buf) {
					l.Kind, l.numRaw = TokNumber, nil
					return nil
				}
				got, err := l.refill()
				if err != nil {
					return err
				}
				if !got {
					l.Kind, l.numRaw = TokNumber, nil
					return nil
				}
			}
		}
		// Literals keep full tokenization: the checks are cheap relative to
		// the dispatch, and reusing Next keeps the token-mode extents (and
		// errors) exactly aligned.
		if err := l.Next(); err != nil {
			return err
		}
		switch l.Kind {
		case TokNull, TokTrue, TokFalse, TokNumber, TokString:
			return nil
		default:
			return fmt.Errorf("json: offset %d: unexpected token %s", l.Offset(), l.Kind)
		}
	}
}

// skipStringRaw consumes a string body (cursor just past the opening quote)
// without decoding it: escapes are stepped over, not validated or expanded,
// and nothing is copied to scratch. indexed selects the word-at-a-time event
// jump (four words probed per iteration, so long string bodies cost one
// masked compare per eight bytes with the branches amortized); without it
// the loop is the byte-class scan's string arm, kept as the small-chunk
// fallback and the differential counterpart.
func (l *Lexer) skipStringRaw(indexed bool) error {
	esc := false // a backslash was the last byte before a window edge
	for {
		buf, p := l.buf[:l.end], l.pos
		if esc && p < len(buf) {
			esc = false
			p++
		}
		for p < len(buf) {
			if indexed {
				p = stringSeek(buf, p)
				if p >= len(buf) {
					break
				}
			}
			switch c := buf[p]; {
			case c == '"':
				l.pos = p + 1
				return nil
			case c == '\\':
				if len(buf)-p >= 2 {
					p += 2
					continue
				}
				esc = true
				p = len(buf)
				continue
			case c < 0x20:
				l.pos = p
				return l.errf("control character in string")
			default:
				p++
			}
		}
		l.pos = p
		got, err := l.refill()
		if err != nil {
			return err
		}
		if !got {
			return l.errf("unterminated string")
		}
	}
}

// objectMember steps the projector through one object-member boundary in a
// single pass: with first set it runs right after the '{' (where '}' closes
// the object), otherwise right after a member's value (where it consumes the
// separating ',' — or reports the close). It then scans `"key":` and returns
// a view of the raw key bytes. The fast path finds the closing quote by
// event mask and the colon bytewise inside the current window, touching no
// token state and copying nothing; keys with escapes, keys spanning a refill
// edge, and every malformed shape fall back to the tokenizer, which owns the
// error reporting. The view is valid until the lexer next advances.
func (l *Lexer) objectMember(first bool) (key []byte, closed bool, err error) {
	if l.skipMode == SkipTokens {
		return l.objectMemberTokens(first)
	}
	if err := l.skipSpace(); err != nil {
		return nil, false, err
	}
	if !first {
		if l.pos >= l.end {
			// Tokenizer path reports the EOF with its usual wording.
			if err := l.Next(); err != nil {
				return nil, false, err
			}
			return nil, false, fmt.Errorf("json: offset %d: expected ',' or '}', got %s", l.Offset(), l.Kind)
		}
		switch l.buf[l.pos] {
		case ',':
			l.pos++
			if err := l.skipSpace(); err != nil {
				return nil, false, err
			}
		case '}':
			l.pos++
			l.Kind = TokRBrace
			return nil, true, nil
		default:
			if err := l.Next(); err != nil {
				return nil, false, err
			}
			return nil, false, fmt.Errorf("json: offset %d: expected ',' or '}', got %s", l.Offset(), l.Kind)
		}
	}
	if l.pos < l.end {
		switch l.buf[l.pos] {
		case '}':
			l.pos++
			l.Kind = TokRBrace
			if !first {
				return nil, false, fmt.Errorf("json: offset %d: expected object key, got %s", l.Offset(), l.Kind)
			}
			return nil, true, nil
		case '"':
			buf := l.buf[:l.end]
			p := l.pos + 1
			// Short keys resolve with one inline word probe; longer or
			// escape-bearing ones take the seek call.
			if len(buf)-p >= 8 {
				w := buf[p : p+8 : p+8]
				if m := stringEventMask(binary.LittleEndian.Uint64(w)); m != 0 {
					p += bits.TrailingZeros64(m) >> 3
				} else {
					p = stringSeek(buf, p+8)
				}
			} else {
				p = stringSeek(buf, p)
			}
			if p < len(buf) && buf[p] == '"' {
				kb := buf[l.pos+1 : p]
				// The colon search stays inside the window so the key
				// view cannot be shifted by a refill. '\n' defers to
				// the tokenizer, which maintains LineStart.
				for q := p + 1; q < len(buf); q++ {
					switch buf[q] {
					case ':':
						l.pos = q + 1
						l.Kind = TokColon
						return kb, false, nil
					case ' ', '\t', '\r':
					default:
						q = len(buf)
					}
				}
			}
			// Escaped or window-spanning keys, and every malformed
			// shape, fall through to the tokenizer below.
		}
	}
	// Tokenizer path: decoded keys, window edges, and error reporting.
	if err := l.Next(); err != nil {
		return nil, false, err
	}
	if l.Kind == TokRBrace {
		if !first {
			return nil, false, fmt.Errorf("json: offset %d: expected object key, got %s", l.Offset(), l.Kind)
		}
		return nil, true, nil
	}
	if l.Kind != TokString {
		return nil, false, fmt.Errorf("json: offset %d: expected object key, got %s", l.Offset(), l.Kind)
	}
	// The colon advance below may refill and compact the chunk buffer, so
	// the key must be copied out of it first (l.str is a zero-copy view).
	l.keyScratch = append(l.keyScratch[:0], l.str...)
	if err := l.Next(); err != nil {
		return nil, false, err
	}
	if l.Kind != TokColon {
		return nil, false, fmt.Errorf("json: offset %d: expected ':', got %s", l.Offset(), l.Kind)
	}
	return l.keyScratch, false, nil
}

// objectMemberTokens is the token-mode twin of objectMember: every member
// boundary, key and colon is consumed through Next, so reference-mode runs
// pay full tokenization and the differential suite exercises a pure
// token-level surface.
func (l *Lexer) objectMemberTokens(first bool) (key []byte, closed bool, err error) {
	if !first {
		if err := l.Next(); err != nil {
			return nil, false, err
		}
		switch l.Kind {
		case TokComma:
		case TokRBrace:
			return nil, true, nil
		default:
			return nil, false, fmt.Errorf("json: offset %d: expected ',' or '}', got %s", l.Offset(), l.Kind)
		}
	}
	if err := l.Next(); err != nil {
		return nil, false, err
	}
	if l.Kind == TokRBrace {
		if !first {
			return nil, false, fmt.Errorf("json: offset %d: expected object key, got %s", l.Offset(), l.Kind)
		}
		return nil, true, nil
	}
	if l.Kind != TokString {
		return nil, false, fmt.Errorf("json: offset %d: expected object key, got %s", l.Offset(), l.Kind)
	}
	l.keyScratch = append(l.keyScratch[:0], l.str...)
	if err := l.Next(); err != nil {
		return nil, false, err
	}
	if l.Kind != TokColon {
		return nil, false, fmt.Errorf("json: offset %d: expected ':', got %s", l.Offset(), l.Kind)
	}
	return l.keyScratch, false, nil
}

// SkipValueRaw advances over the value whose first token is the current
// token without tokenizing its interior: a structural scan over raw bytes
// that tracks brace/bracket depth and string boundaries, never unescapes
// strings, never shape-checks numbers, and never materializes anything. On
// return the current token is the value's closing token, exactly as if the
// token-level reference skip had run — differential tests assert the two
// consume byte-for-byte the same extent on all valid input.
//
// Malformed input inside the skipped region is detected only at structural
// granularity: unbalanced braces/brackets/quotes, raw control characters in
// strings, and truncated input still error; bad escapes, malformed numbers,
// and misplaced colons/commas pass silently (see DESIGN.md, "On-demand scan
// kernel").
// Byte classes of the raw structural scan. Every byte that can change the
// scanner's state is nonzero in rawClass; everything else takes the
// single-lookup fast path. Control bytes are classed too: inside a string
// they are an error (matching the tokenizer), outside they are whitespace or
// junk the token-level reference would also never reject inside a skip.
const (
	clsPlain = iota
	clsQuote
	clsBackslash
	clsOpen
	clsClose
	clsCtl
)

var rawClass = func() (t [256]byte) {
	for c := 0; c < 0x20; c++ {
		t[c] = clsCtl
	}
	t['"'] = clsQuote
	t['\\'] = clsBackslash
	t['{'], t['['] = clsOpen, clsOpen
	t['}'], t[']'] = clsClose, clsClose
	return
}()

func (l *Lexer) SkipValueRaw() error {
	switch l.Kind {
	case TokNull, TokTrue, TokFalse, TokNumber, TokString:
		return nil // scalars are fully consumed by Next
	case TokLBrace, TokLBracket:
	default:
		return fmt.Errorf("json: offset %d: unexpected token %s", l.Offset(), l.Kind)
	}
	return l.skipContainer(l.Kind, 1)
}

// skipContainer consumes the rest of an already-opened container (the cursor
// sits just past the open bracket, depth brackets deep), dispatching between
// the structural-index kernel and the byte-class scan.
func (l *Lexer) skipContainer(open TokenKind, depth int) error {
	if l.indexedSkip() {
		return l.skipContainerIndexed(open, depth)
	}
	return l.skipContainerBytes(open, depth, false, false)
}

// skipContainerIndexed is the phase-2 navigator of the structural index: a
// two-arm word-jump machine that consults the per-word event bitmaps from
// structidx.go and only ever touches bytes that can change the scanner's
// state. The split into arms is what makes the probes cheap: outside a
// string only quotes and brackets matter (structEventMask, three byte
// classes — commas, colons and whitespace are never loaded), inside a string
// only quotes, backslashes and control bytes do (stringEventMask). Each arm
// jumps from one event to the next eight bytes at a time; a whole word of
// number digits, string text or separators costs one load and one masked
// compare. Escapes are consumed positionally (backslash plus one byte), so
// no escape flag survives inside a window — only across a refill edge.
func (l *Lexer) skipContainerIndexed(open TokenKind, depth int) error {
	inStr := false
	esc := false // a backslash was the last byte before a window edge
	for {
		// The window is re-sliced to its valid extent so the length checks
		// inside the word loads fall to the loop conditions (bounds-check
		// elimination keeps the hot loops branch-lean).
		buf, p := l.buf[:l.end], l.pos
		if esc && p < len(buf) {
			esc = false
			p++
		}
		for p < len(buf) {
			if inStr {
				if p = stringSeek(buf, p); p >= len(buf) {
					break
				}
				switch c := buf[p]; {
				case c == '"':
					inStr = false
				case c == '\\':
					if len(buf)-p >= 2 {
						p += 2
						continue
					}
					esc = true
					p = len(buf)
					continue
				default:
					l.pos = p
					return l.errf("control character in string")
				}
				p++
				continue
			}
			if p = structSeek(buf, p); p >= len(buf) {
				break
			}
			switch c := buf[p]; c {
			case '"':
				inStr = true
			case '{', '[':
				depth++
			case '}', ']':
				depth--
				if depth == 0 {
					l.pos = p + 1
					if c == '}' {
						l.Kind = TokRBrace
					} else {
						l.Kind = TokRBracket
					}
					return nil
				}
			}
			p++
		}
		l.pos = p
		got, err := l.refill()
		if err != nil {
			return err
		}
		if !got {
			if inStr {
				return l.errf("unterminated string")
			}
			if open == TokLBrace {
				return fmt.Errorf("json: unexpected end of input in object")
			}
			return fmt.Errorf("json: unexpected end of input in array")
		}
	}
}

// skipContainerBytes is the byte-class structural scan: the small-chunk
// fallback of skipContainer and the tail finisher of the indexed kernel,
// seeded with the depth and in-string/escape state carried to this point.
func (l *Lexer) skipContainerBytes(open TokenKind, depth int, inStr, esc bool) error {
	for {
		// Scan the current window with local copies of the hot fields; the
		// compiler keeps them in registers. esc survives the window edge, so
		// a backslash as the last byte before a refill straddles correctly.
		buf, p, end := l.buf, l.pos, l.end
		for p < end {
			c := buf[p]
			if esc {
				esc = false
				p++
				continue
			}
			k := rawClass[c]
			if k == clsPlain {
				p++
				continue
			}
			if inStr {
				switch k {
				case clsQuote:
					inStr = false
				case clsBackslash:
					esc = true
				case clsCtl:
					l.pos = p
					return l.errf("control character in string")
				}
				p++
				continue
			}
			switch k {
			case clsQuote:
				inStr = true
			case clsOpen:
				depth++
			case clsClose:
				// One shared depth counter for both bracket kinds, matching
				// the token-level reference (which also accepts mismatched
				// closers inside skipped regions).
				depth--
				if depth == 0 {
					l.pos = p + 1
					if c == '}' {
						l.Kind = TokRBrace
					} else {
						l.Kind = TokRBracket
					}
					return nil
				}
			}
			p++
		}
		l.pos = p
		got, err := l.refill()
		if err != nil {
			return err
		}
		if !got {
			if inStr {
				return l.errf("unterminated string")
			}
			if open == TokLBrace {
				return fmt.Errorf("json: unexpected end of input in object")
			}
			return fmt.Errorf("json: unexpected end of input in array")
		}
	}
}

// scanEscape decodes one backslash escape (cursor on the backslash),
// appending the decoded bytes to scratch.
func (l *Lexer) scanEscape() error {
	ok, err := l.ensure(2)
	if err != nil {
		return err
	}
	if !ok {
		l.pos = l.end
		return l.errf("unterminated escape")
	}
	c := l.buf[l.pos+1]
	l.pos += 2
	switch c {
	case '"':
		l.scratch = append(l.scratch, '"')
	case '\\':
		l.scratch = append(l.scratch, '\\')
	case '/':
		l.scratch = append(l.scratch, '/')
	case 'b':
		l.scratch = append(l.scratch, '\b')
	case 'f':
		l.scratch = append(l.scratch, '\f')
	case 'n':
		l.scratch = append(l.scratch, '\n')
	case 'r':
		l.scratch = append(l.scratch, '\r')
	case 't':
		l.scratch = append(l.scratch, '\t')
	case 'u':
		ok, err := l.ensure(4)
		if err != nil {
			return err
		}
		if !ok {
			return l.errf("truncated \\u escape")
		}
		r, err := hex4(l.buf[l.pos : l.pos+4])
		if err != nil {
			return l.errf("bad \\u escape: %v", err)
		}
		l.pos += 4
		if utf16IsHighSurrogate(r) {
			// Peek for the low half of a surrogate pair; leave the cursor
			// untouched unless a valid pair follows.
			ok, err := l.ensure(6)
			if err != nil {
				return err
			}
			if ok && l.buf[l.pos] == '\\' && l.buf[l.pos+1] == 'u' {
				if r2, err2 := hex4(l.buf[l.pos+2 : l.pos+6]); err2 == nil && utf16IsLowSurrogate(r2) {
					r = utf16Combine(r, r2)
					l.pos += 6
				}
			}
		}
		var tmp [4]byte
		n := utf8.EncodeRune(tmp[:], r)
		l.scratch = append(l.scratch, tmp[:n]...)
	default:
		l.pos--
		return l.errf("invalid escape \\%c", c)
	}
	return nil
}

func hex4(b []byte) (rune, error) {
	var r rune
	for _, c := range b {
		r <<= 4
		switch {
		case c >= '0' && c <= '9':
			r |= rune(c - '0')
		case c >= 'a' && c <= 'f':
			r |= rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			r |= rune(c-'A') + 10
		default:
			return 0, fmt.Errorf("non-hex digit %q", c)
		}
	}
	return r, nil
}

func utf16IsHighSurrogate(r rune) bool { return r >= 0xD800 && r < 0xDC00 }
func utf16IsLowSurrogate(r rune) bool  { return r >= 0xDC00 && r < 0xE000 }
func utf16Combine(hi, lo rune) rune {
	return 0x10000 + (hi-0xD800)<<10 + (lo - 0xDC00)
}
