// Package jsonparse implements raw-JSON processing for the engine: a
// low-level tokenizer, a tree parser producing item.Item values, and a
// streaming path projector that extracts only the items matching a
// projection path without materializing the rest of the document. The
// projector is the mechanism behind the DATASCAN operator's second argument
// (§4.2 of the paper): it is what lets the engine forward one small object
// at a time instead of whole files.
//
// The tokenizer reads through a fixed-size refillable chunk buffer, so a
// document streamed from an io.Reader is never materialized: peak memory is
// O(chunk size), not O(file size). Error offsets are absolute file offsets.
//
// The tokenizer is on-demand: string tokens are exposed as byte-slice views
// (StrBytes) that stay valid until the lexer next advances, object keys that
// must be materialized share one string through an intern table (InternKey),
// and number tokens carry their raw text — shape-validated eagerly, but
// converted to float64 only when a consumer calls NumValue. Subtrees that a
// projection discards are skipped by SkipValueRaw, a structural scan over
// raw bytes that never materializes tokens at all.
package jsonparse

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"unicode/utf8"
)

// TokenKind identifies a JSON token.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokColon
	TokComma
	TokString
	TokNumber
	TokTrue
	TokFalse
	TokNull
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokLBrace:
		return "{"
	case TokRBrace:
		return "}"
	case TokLBracket:
		return "["
	case TokRBracket:
		return "]"
	case TokColon:
		return ":"
	case TokComma:
		return ","
	case TokString:
		return "string"
	case TokNumber:
		return "number"
	case TokTrue:
		return "true"
	case TokFalse:
		return "false"
	case TokNull:
		return "null"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// DefaultChunkSize is the default capacity of a streaming lexer's refill
// buffer (and the read granularity of the reader-based Parse/Project entry
// points). It is the unit charged to the memory accountant by streaming
// scans.
const DefaultChunkSize = 64 << 10

// minChunkSize bounds the chunk buffer from below: the lexer needs a few
// bytes of contiguous lookahead (the "false" literal, \uXXXX escapes with a
// surrogate-pair peek), and compaction must always be able to retain them.
const minChunkSize = 64

// Lexer tokenizes a JSON document, either held fully in memory or streamed
// from an io.Reader through a fixed-size chunk buffer. It is
// zero-allocation for structural tokens and for unescaped strings that do
// not span a refill boundary.
type Lexer struct {
	r    io.Reader // nil when the whole input is in buf
	buf  []byte    // chunk buffer (the whole input for slice lexers)
	pos  int       // cursor into buf[:end]
	end  int       // number of valid bytes in buf
	base int64     // absolute file offset of buf[0]
	eof  bool      // no bytes exist beyond buf[:end]

	// lineStart is the absolute offset just past the most recent '\n' the
	// lexer consumed as inter-token whitespace (or the stream's starting
	// offset if none yet). For newline-delimited records — where newlines
	// only ever appear between top-level values — it is the starting offset
	// of the line the cursor is on, which is the anchor of the morsel
	// ownership rule (see ScanValues and LineStart).
	lineStart int64

	// scratch accumulates the bytes of a token that spans refills (or
	// contains escapes); it is reused across tokens.
	scratch []byte

	// intern maps object-key bytes to a shared string so a key that repeats
	// across millions of records is materialized once (see InternKey).
	intern map[string]string

	// refSkip selects the token-level reference skip instead of the raw
	// structural skip (differential tests and before/after benchmarks).
	refSkip bool

	// Current token state, valid after Next.
	Kind TokenKind
	// str is the decoded string value when Kind==TokString: a view into the
	// chunk buffer or the scratch buffer, valid only until the lexer next
	// advances (Next, AtEOF, SkipValueRaw, ...).
	str []byte
	// numRaw is the raw (shape-validated) text when Kind==TokNumber, a view
	// with the same lifetime as str; numOff is its absolute offset and
	// numFloat records whether it has a fraction or exponent part.
	numRaw   []byte
	numOff   int64
	numFloat bool
}

// NewLexer returns a lexer over an in-memory document. The slice is never
// modified.
func NewLexer(data []byte) *Lexer {
	return &Lexer{buf: data, end: len(data), eof: true}
}

// NewStreamLexer returns a lexer that tokenizes the JSON document read from
// r through a refillable chunk buffer of chunkSize bytes (DefaultChunkSize
// when chunkSize <= 0; a small floor applies so the lexer always has enough
// contiguous lookahead).
func NewStreamLexer(r io.Reader, chunkSize int) *Lexer {
	return NewStreamLexerAt(r, chunkSize, 0)
}

// NewStreamLexerAt is NewStreamLexer for a reader that does not start at the
// beginning of the file: base is the absolute offset of r's first byte, so
// Offset and error positions remain absolute file offsets. Byte-range
// (morsel) scans use it.
func NewStreamLexerAt(r io.Reader, chunkSize int, base int64) *Lexer {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if chunkSize < minChunkSize {
		chunkSize = minChunkSize
	}
	return &Lexer{r: r, buf: make([]byte, chunkSize), base: base, lineStart: base}
}

// ResetStream rebinds a streaming lexer to a new reader whose first byte
// sits at absolute offset base, reusing the chunk buffer, the token scratch
// buffer, and the object-key intern table. It is how a scan task amortizes
// its lexer allocations across the many files and morsels it processes (the
// intern table carrying over is the point: the same record schema repeats
// across morsels). Calling it on a lexer built over an in-memory slice
// allocates a fresh chunk buffer (the slice belongs to the caller and is
// never written).
func (l *Lexer) ResetStream(r io.Reader, base int64) {
	if l.r == nil || len(l.buf) < minChunkSize {
		l.buf = make([]byte, DefaultChunkSize)
	}
	l.r = r
	l.pos, l.end = 0, 0
	l.base = base
	l.lineStart = base
	l.eof = false
	l.Kind, l.str, l.numRaw = TokEOF, nil, nil
}

// SetReferenceSkip switches the lexer's skip path to the token-level
// reference implementation (true) or the default structural raw scan
// (false). It exists for differential tests and before/after benchmarks.
func (l *Lexer) SetReferenceSkip(on bool) { l.refSkip = on }

// StrBytes returns the decoded string value of the current TokString token
// as a byte-slice view. The view is only valid until the lexer next
// advances; callers that keep the value must copy it (StrValue, InternKey).
func (l *Lexer) StrBytes() []byte { return l.str }

// StrValue materializes the current TokString token as a Go string.
func (l *Lexer) StrValue() string { return string(l.str) }

// maxInternEntries caps the intern table: document keys number in the dozens
// in practice, but adversarial input (random keys) must not grow the table
// without bound. Beyond the cap, keys are materialized per occurrence.
const maxInternEntries = 1 << 12

// InternKey materializes the current TokString token through the lexer's
// intern table: every occurrence of the same key bytes returns the same
// string, so a key repeated across millions of records is allocated once.
func (l *Lexer) InternKey() string {
	if s, ok := l.intern[string(l.str)]; ok { // no-alloc map probe
		return s
	}
	s := string(l.str)
	if l.intern == nil {
		l.intern = make(map[string]string, 16)
	}
	if len(l.intern) < maxInternEntries {
		l.intern[s] = s
	}
	return s
}

// SkipPastNewline advances the cursor just past the next '\n' byte,
// reporting false if the input ends first. Raw newlines cannot occur inside
// JSON strings (control characters must be escaped), so in well-formed
// newline-delimited input the byte after a '\n' is always between top-level
// values — the record-alignment rule of morsel scans.
func (l *Lexer) SkipPastNewline() (bool, error) {
	for {
		for l.pos < l.end {
			if l.buf[l.pos] == '\n' {
				l.pos++
				l.lineStart = l.base + int64(l.pos)
				return true, nil
			}
			l.pos++
		}
		got, err := l.refill()
		if err != nil {
			return false, err
		}
		if !got {
			return false, nil
		}
	}
}

// AtEOF reports whether only whitespace remains in the input, consuming it.
func (l *Lexer) AtEOF() (bool, error) {
	if err := l.skipSpace(); err != nil {
		return false, err
	}
	return l.pos >= l.end, nil
}

// Offset reports the absolute byte offset of the lexer cursor in the input
// (file offset, not an index into the current chunk), useful for error
// messages.
func (l *Lexer) Offset() int { return int(l.base) + l.pos }

// LineStart reports the absolute offset just past the most recent '\n' the
// lexer consumed as inter-token whitespace (SkipPastNewline counts too), or
// the stream's starting offset if it has consumed none. With the
// newline-delimited-records contract (newlines appear only between top-level
// values, never inside one), calling it when the cursor sits at the start of
// a record yields the offset where that record's line begins — the anchor of
// the morsel ownership rule. Newlines inside a value that SkipValueRaw scans
// over are not tracked; such input violates the contract and is rejected
// loudly by misaligned morsel scans rather than silently misattributed.
func (l *Lexer) LineStart() int64 { return l.lineStart }

func (l *Lexer) errf(format string, args ...any) error {
	return l.errfAt(int64(l.Offset()), format, args...)
}

func (l *Lexer) errfAt(off int64, format string, args ...any) error {
	return fmt.Errorf("json: offset %d: %s", off, fmt.Sprintf(format, args...))
}

// refill discards the consumed prefix of the buffer and reads more input.
// It reports whether any new bytes arrived; false means end of input.
func (l *Lexer) refill() (bool, error) {
	if l.eof {
		return false, nil
	}
	if l.pos > 0 {
		l.base += int64(l.pos)
		copy(l.buf, l.buf[l.pos:l.end])
		l.end -= l.pos
		l.pos = 0
	}
	got := false
	for l.end < len(l.buf) {
		n, err := l.r.Read(l.buf[l.end:])
		l.end += n
		if n > 0 {
			got = true
		}
		if err == io.EOF {
			l.eof = true
			return got, nil
		}
		if err != nil {
			l.eof = true
			return got, l.errf("read: %v", err)
		}
		if n > 0 {
			return true, nil
		}
	}
	return got, nil
}

// ensure makes at least n contiguous bytes available at buf[pos:],
// refilling as needed; it reports false when the input ends first.
// n must not exceed minChunkSize.
func (l *Lexer) ensure(n int) (bool, error) {
	for l.end-l.pos < n {
		got, err := l.refill()
		if err != nil {
			return false, err
		}
		if !got {
			return false, nil
		}
	}
	return true, nil
}

func (l *Lexer) skipSpace() error {
	for {
		for l.pos < l.end {
			switch l.buf[l.pos] {
			case '\n':
				l.pos++
				l.lineStart = l.base + int64(l.pos)
			case ' ', '\t', '\r':
				l.pos++
			default:
				return nil
			}
		}
		got, err := l.refill()
		if err != nil {
			return err
		}
		if !got {
			return nil
		}
	}
}

// Next advances to the next token, setting Kind (and Str/Num as applicable).
func (l *Lexer) Next() error {
	if err := l.skipSpace(); err != nil {
		return err
	}
	if l.pos >= l.end {
		l.Kind = TokEOF
		return nil
	}
	c := l.buf[l.pos]
	switch c {
	case '{':
		l.Kind, l.pos = TokLBrace, l.pos+1
	case '}':
		l.Kind, l.pos = TokRBrace, l.pos+1
	case '[':
		l.Kind, l.pos = TokLBracket, l.pos+1
	case ']':
		l.Kind, l.pos = TokRBracket, l.pos+1
	case ':':
		l.Kind, l.pos = TokColon, l.pos+1
	case ',':
		l.Kind, l.pos = TokComma, l.pos+1
	case '"':
		s, err := l.scanString()
		if err != nil {
			return err
		}
		l.Kind, l.str = TokString, s
	case 't':
		if err := l.scanWord("true"); err != nil {
			return err
		}
		l.Kind = TokTrue
	case 'f':
		if err := l.scanWord("false"); err != nil {
			return err
		}
		l.Kind = TokFalse
	case 'n':
		if err := l.scanWord("null"); err != nil {
			return err
		}
		l.Kind = TokNull
	default:
		if c == '-' || (c >= '0' && c <= '9') {
			if err := l.scanNumber(); err != nil {
				return err
			}
			l.Kind = TokNumber
			return nil
		}
		return l.errf("unexpected character %q", c)
	}
	return nil
}

func (l *Lexer) scanWord(w string) error {
	ok, err := l.ensure(len(w))
	if err != nil {
		return err
	}
	if !ok || string(l.buf[l.pos:l.pos+len(w)]) != w {
		return l.errf("invalid literal")
	}
	l.pos += len(w)
	return nil
}

// Number-scanner states. The scanner is grammar-driven: the token ends at
// the first byte that is not a valid continuation (matching encoding/json's
// token boundaries exactly, including the leading-zero rule), instead of
// swallowing a maximal run of number-shaped characters and validating after.
type numState uint8

const (
	numNeg     numState = iota // consumed '-', expect first integer digit
	numZero                    // consumed a leading '0' (accepting; no more integer digits)
	numInt                     // consuming 1-9... integer digits (accepting)
	numDot                     // consumed '.', expect first fraction digit
	numFrac                    // consuming fraction digits (accepting)
	numExpE                    // consumed e/E, expect exponent sign or digit
	numExpSign                 // consumed exponent sign, expect exponent digit
	numExp                     // consuming exponent digits (accepting)
)

// numStep advances the number grammar by one byte, reporting whether the
// byte belongs to the token (ok=false means the token ends before c).
func numStep(st numState, c byte) (numState, bool) {
	switch st {
	case numNeg:
		if c == '0' {
			return numZero, true
		}
		if c >= '1' && c <= '9' {
			return numInt, true
		}
	case numZero:
		if c == '.' {
			return numDot, true
		}
		if c == 'e' || c == 'E' {
			return numExpE, true
		}
	case numInt:
		if c >= '0' && c <= '9' {
			return numInt, true
		}
		if c == '.' {
			return numDot, true
		}
		if c == 'e' || c == 'E' {
			return numExpE, true
		}
	case numDot:
		if c >= '0' && c <= '9' {
			return numFrac, true
		}
	case numFrac:
		if c >= '0' && c <= '9' {
			return numFrac, true
		}
		if c == 'e' || c == 'E' {
			return numExpE, true
		}
	case numExpE:
		if c == '+' || c == '-' {
			return numExpSign, true
		}
		if c >= '0' && c <= '9' {
			return numExp, true
		}
	case numExpSign:
		if c >= '0' && c <= '9' {
			return numExp, true
		}
	case numExp:
		if c >= '0' && c <= '9' {
			return numExp, true
		}
	}
	return st, false
}

// scanNumber collects one number token into a view (numRaw), deferring the
// float64 conversion to NumValue. The token almost always sits inside one
// chunk (fast path: the view aliases the buffer); when it crosses a refill
// boundary it is accumulated in scratch so the view survives compaction.
func (l *Lexer) scanNumber() error {
	off := int64(l.Offset())
	l.scratch = l.scratch[:0]
	useScratch := false
	start := l.pos
	isFloat := false
	// The first byte is '-' or a digit (Next dispatched on it).
	var st numState
	switch c := l.buf[l.pos]; {
	case c == '-':
		st = numNeg
	case c == '0':
		st = numZero
	default:
		st = numInt
	}
	l.pos++
	for {
		if l.pos >= l.end {
			// Window exhausted mid-token: stash the segment and refill.
			l.scratch = append(l.scratch, l.buf[start:l.pos]...)
			useScratch = true
			got, err := l.refill()
			if err != nil {
				return err
			}
			start = l.pos
			if !got {
				break // end of input ends the token
			}
			continue
		}
		c := l.buf[l.pos]
		next, ok := numStep(st, c)
		if !ok {
			break // c belongs to the next token
		}
		if c == '.' || c == 'e' || c == 'E' {
			isFloat = true
		}
		st = next
		l.pos++
	}
	switch st {
	case numNeg:
		return l.errfAt(off, "malformed number")
	case numDot:
		return l.errfAt(off, "malformed number: no digits after point")
	case numExpE, numExpSign:
		return l.errfAt(off, "malformed number: no exponent digits")
	}
	var text []byte
	if !useScratch {
		text = l.buf[start:l.pos]
	} else {
		l.scratch = append(l.scratch, l.buf[start:l.pos]...)
		text = l.scratch
	}
	l.numRaw, l.numOff, l.numFloat = text, off, isFloat
	return nil
}

// pow10 holds the powers of ten that float64 represents exactly, the divisor
// range of the no-alloc decimal fast path.
var pow10 = [23]float64{
	1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// NumValue converts the current TokNumber token. The integer and
// simple-decimal forms that dominate sensor data convert without allocating:
// a mantissa of at most 15 digits and no exponent is exact in float64, and
// dividing it by an exactly-representable power of ten is a single correctly
// rounded operation, so the result is bit-identical to strconv's. Everything
// else falls back to strconv.ParseFloat. Out-of-range values (e.g. 1e999)
// report the same malformed-number error the eager lexer did, now at first
// use instead of at tokenization.
func (l *Lexer) NumValue() (float64, error) {
	text := l.numRaw
	if !l.numFloat && len(text) <= 15 {
		// Fast integer path (fits float64 exactly).
		neg := false
		i := 0
		if text[0] == '-' {
			neg, i = true, 1
		}
		var v int64
		for ; i < len(text); i++ {
			v = v*10 + int64(text[i]-'0')
		}
		// Negate in the float domain: int64 has no signed zero, so "-0"
		// negated as an integer would lose its sign bit (strconv yields -0.0).
		f := float64(v)
		if neg {
			f = -f
		}
		return f, nil
	}
	// Fast decimal path: [-]digits.digits with <= 15 significant digits and
	// a fraction short enough that its power-of-ten divisor is exact.
	if l.numFloat {
		neg := false
		i := 0
		if text[0] == '-' {
			neg, i = true, 1
		}
		var mant int64
		digits, frac := 0, -1
		ok := true
		for ; i < len(text); i++ {
			c := text[i]
			if c == '.' {
				frac = 0
				continue
			}
			if c < '0' || c > '9' {
				ok = false // exponent form: fall back
				break
			}
			mant = mant*10 + int64(c-'0')
			digits++
			if frac >= 0 {
				frac++
			}
		}
		if ok && digits <= 15 && frac >= 1 && frac < len(pow10) {
			f := float64(mant) / pow10[frac]
			if neg {
				f = -f
			}
			return f, nil
		}
	}
	f, err := strconv.ParseFloat(string(text), 64)
	if err != nil || math.IsInf(f, 0) {
		return 0, l.errfAt(l.numOff, "malformed number %q", text)
	}
	return f, nil
}

func (l *Lexer) scanString() ([]byte, error) {
	// l.buf[l.pos] == '"'. Unescaped segments are scanned in place; as soon
	// as the string contains an escape or spans a refill boundary the
	// decoded bytes accumulate in scratch instead, so the value never
	// depends on buffer contents that compaction may discard. The returned
	// slice is a view (into buf or scratch), not a copy: it stays valid only
	// until the lexer next advances.
	l.pos++
	l.scratch = l.scratch[:0]
	direct := true // the value is a single in-buffer segment, no copy yet
	segStart := l.pos
	for {
		p := l.pos
		for p < l.end {
			c := l.buf[p]
			if c == '"' {
				var s []byte
				if direct {
					s = l.buf[segStart:p]
				} else {
					l.scratch = append(l.scratch, l.buf[segStart:p]...)
					s = l.scratch
				}
				l.pos = p + 1
				return s, nil
			}
			if c == '\\' {
				l.scratch = append(l.scratch, l.buf[segStart:p]...)
				direct = false
				l.pos = p
				if err := l.scanEscape(); err != nil {
					return nil, err
				}
				segStart = l.pos
				p = l.pos
				continue
			}
			if c < 0x20 {
				l.pos = p
				return nil, l.errf("control character in string")
			}
			p++
		}
		// End of window without a closing quote: stash the segment scanned
		// so far and refill.
		l.scratch = append(l.scratch, l.buf[segStart:p]...)
		direct = false
		l.pos = p
		got, err := l.refill()
		if err != nil {
			return nil, err
		}
		if !got {
			return nil, l.errf("unterminated string")
		}
		segStart = l.pos
	}
}

// SkipValueRaw advances over the value whose first token is the current
// token without tokenizing its interior: a structural scan over raw bytes
// that tracks brace/bracket depth and string boundaries, never unescapes
// strings, never shape-checks numbers, and never materializes anything. On
// return the current token is the value's closing token, exactly as if the
// token-level reference skip had run — differential tests assert the two
// consume byte-for-byte the same extent on all valid input.
//
// Malformed input inside the skipped region is detected only at structural
// granularity: unbalanced braces/brackets/quotes, raw control characters in
// strings, and truncated input still error; bad escapes, malformed numbers,
// and misplaced colons/commas pass silently (see DESIGN.md, "On-demand scan
// kernel").
// Byte classes of the raw structural scan. Every byte that can change the
// scanner's state is nonzero in rawClass; everything else takes the
// single-lookup fast path. Control bytes are classed too: inside a string
// they are an error (matching the tokenizer), outside they are whitespace or
// junk the token-level reference would also never reject inside a skip.
const (
	clsPlain = iota
	clsQuote
	clsBackslash
	clsOpen
	clsClose
	clsCtl
)

var rawClass = func() (t [256]byte) {
	for c := 0; c < 0x20; c++ {
		t[c] = clsCtl
	}
	t['"'] = clsQuote
	t['\\'] = clsBackslash
	t['{'], t['['] = clsOpen, clsOpen
	t['}'], t[']'] = clsClose, clsClose
	return
}()

func (l *Lexer) SkipValueRaw() error {
	switch l.Kind {
	case TokNull, TokTrue, TokFalse, TokNumber, TokString:
		return nil // scalars are fully consumed by Next
	case TokLBrace, TokLBracket:
	default:
		return fmt.Errorf("json: offset %d: unexpected token %s", l.Offset(), l.Kind)
	}
	open := l.Kind
	depth := 1
	inStr, esc := false, false
	for {
		// Scan the current window with local copies of the hot fields; the
		// compiler keeps them in registers. esc survives the window edge, so
		// a backslash as the last byte before a refill straddles correctly.
		buf, p, end := l.buf, l.pos, l.end
		for p < end {
			c := buf[p]
			if esc {
				esc = false
				p++
				continue
			}
			k := rawClass[c]
			if k == clsPlain {
				p++
				continue
			}
			if inStr {
				switch k {
				case clsQuote:
					inStr = false
				case clsBackslash:
					esc = true
				case clsCtl:
					l.pos = p
					return l.errf("control character in string")
				}
				p++
				continue
			}
			switch k {
			case clsQuote:
				inStr = true
			case clsOpen:
				depth++
			case clsClose:
				// One shared depth counter for both bracket kinds, matching
				// the token-level reference (which also accepts mismatched
				// closers inside skipped regions).
				depth--
				if depth == 0 {
					l.pos = p + 1
					if c == '}' {
						l.Kind = TokRBrace
					} else {
						l.Kind = TokRBracket
					}
					return nil
				}
			}
			p++
		}
		l.pos = p
		got, err := l.refill()
		if err != nil {
			return err
		}
		if !got {
			if inStr {
				return l.errf("unterminated string")
			}
			if open == TokLBrace {
				return fmt.Errorf("json: unexpected end of input in object")
			}
			return fmt.Errorf("json: unexpected end of input in array")
		}
	}
}

// scanEscape decodes one backslash escape (cursor on the backslash),
// appending the decoded bytes to scratch.
func (l *Lexer) scanEscape() error {
	ok, err := l.ensure(2)
	if err != nil {
		return err
	}
	if !ok {
		l.pos = l.end
		return l.errf("unterminated escape")
	}
	c := l.buf[l.pos+1]
	l.pos += 2
	switch c {
	case '"':
		l.scratch = append(l.scratch, '"')
	case '\\':
		l.scratch = append(l.scratch, '\\')
	case '/':
		l.scratch = append(l.scratch, '/')
	case 'b':
		l.scratch = append(l.scratch, '\b')
	case 'f':
		l.scratch = append(l.scratch, '\f')
	case 'n':
		l.scratch = append(l.scratch, '\n')
	case 'r':
		l.scratch = append(l.scratch, '\r')
	case 't':
		l.scratch = append(l.scratch, '\t')
	case 'u':
		ok, err := l.ensure(4)
		if err != nil {
			return err
		}
		if !ok {
			return l.errf("truncated \\u escape")
		}
		r, err := hex4(l.buf[l.pos : l.pos+4])
		if err != nil {
			return l.errf("bad \\u escape: %v", err)
		}
		l.pos += 4
		if utf16IsHighSurrogate(r) {
			// Peek for the low half of a surrogate pair; leave the cursor
			// untouched unless a valid pair follows.
			ok, err := l.ensure(6)
			if err != nil {
				return err
			}
			if ok && l.buf[l.pos] == '\\' && l.buf[l.pos+1] == 'u' {
				if r2, err2 := hex4(l.buf[l.pos+2 : l.pos+6]); err2 == nil && utf16IsLowSurrogate(r2) {
					r = utf16Combine(r, r2)
					l.pos += 6
				}
			}
		}
		var tmp [4]byte
		n := utf8.EncodeRune(tmp[:], r)
		l.scratch = append(l.scratch, tmp[:n]...)
	default:
		l.pos--
		return l.errf("invalid escape \\%c", c)
	}
	return nil
}

func hex4(b []byte) (rune, error) {
	var r rune
	for _, c := range b {
		r <<= 4
		switch {
		case c >= '0' && c <= '9':
			r |= rune(c - '0')
		case c >= 'a' && c <= 'f':
			r |= rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			r |= rune(c-'A') + 10
		default:
			return 0, fmt.Errorf("non-hex digit %q", c)
		}
	}
	return r, nil
}

func utf16IsHighSurrogate(r rune) bool { return r >= 0xD800 && r < 0xDC00 }
func utf16IsLowSurrogate(r rune) bool  { return r >= 0xDC00 && r < 0xE000 }
func utf16Combine(hi, lo rune) rune {
	return 0x10000 + (hi-0xD800)<<10 + (lo - 0xDC00)
}
