// Speculative parallel structural indexing: the Pison-style answer to the
// one bottleneck the two-phase design leaves on a single huge file — phase 1
// itself is a sequential pass, so a cold first scan of one 64 MiB-class file
// is stuck at one core while every morsel worker waits behind it.
//
// The input is split into N contiguous chunks (64-byte aligned, so worker
// blocks line up with the sequential block stream) and each worker runs the
// phase-1 SWAR pass from its chunk start in an unknown scanner state. Two
// bits of state cross a chunk boundary, and they are recovered differently:
//
//   - The escape-pending bit is resolvable *locally*: the byte at a chunk
//     start is escaped iff the maximal backslash run ending just before it
//     has odd length. The first backslash of a maximal run is never itself
//     escaped (the byte before it is not a backslash, and an escape reaches
//     exactly one byte), so the run's parity alone decides — no upstream
//     state needed, just a backward scan over the preceding backslashes.
//
//   - The in-string parity is *speculated both ways at once*. The in-string
//     mask is linear in the entry parity: it is computed per block as
//     prefixXor(unescapedQuotes) XOR carry, and flipping the entry parity
//     flips the carry into every downstream block, i.e. complements the
//     whole mask. One pass under the outside-a-string assumption therefore
//     yields both candidate streams — the parity-true candidate is the
//     bitwise complement — so "speculating both parities" costs one pass,
//     not two.
//
// Stitching is sequential but O(#chunks): each chunk reports whether it
// contains an odd number of unescaped quotes (its parity flip); a prefix XOR
// over those flips gives every chunk's true entry parity, which selects the
// correct speculation and discards the other. The stitched output is
// byte-identical to the sequential builder's, and the heavy per-byte work is
// O(filesize / workers) wall-clock.
package jsonparse

import (
	"fmt"
	"io"
	"math/bits"
	goruntime "runtime"
	"sync"
)

// DefaultParallelGrain is the minimum chunk size of the speculative parallel
// indexer. Below it the per-chunk fixed costs (goroutine handoff, boundary
// resolution, stitch bookkeeping) rival the SWAR pass itself, so inputs
// smaller than two grains are not worth splitting.
const DefaultParallelGrain int64 = 1 << 20

// ParallelIndexer builds phase-1 structural-index products of a whole input
// with speculative chunk workers. The zero value is ready to use: one worker
// per CPU, DefaultParallelGrain chunks. The struct is stateless and safe to
// share; every method is safe for concurrent use.
type ParallelIndexer struct {
	// Workers is the number of chunk workers (GOMAXPROCS when <= 0).
	Workers int
	// Grain is the minimum chunk size in bytes, rounded down to a multiple
	// of 64 (DefaultParallelGrain when <= 0; floor 64).
	Grain int64
}

func (pi ParallelIndexer) workers() int {
	if pi.Workers > 0 {
		return pi.Workers
	}
	return goruntime.GOMAXPROCS(0)
}

func (pi ParallelIndexer) grain() int64 {
	g := pi.Grain
	if g <= 0 {
		g = DefaultParallelGrain
	}
	if g < 64 {
		return 64
	}
	return g &^ 63
}

// chunkStarts cuts n bytes into at most workers() chunks of at least grain()
// bytes each, every boundary a multiple of 64. The returned offsets are the
// chunk starts plus a final n: chunk k is [starts[k], starts[k+1]).
func (pi ParallelIndexer) chunkStarts(n int64) []int64 {
	g := pi.grain()
	chunks := (n + g - 1) / g
	if w := int64(pi.workers()); chunks > w {
		chunks = w
	}
	if chunks < 1 {
		chunks = 1
	}
	per := ((n+chunks-1)/chunks + 63) &^ 63
	starts := make([]int64, 0, chunks+1)
	for off := int64(0); off < n; off += per {
		starts = append(starts, off)
	}
	if len(starts) == 0 {
		starts = append(starts, 0)
	}
	return append(starts, n)
}

// entryEscaped reports whether the byte at off is escaped: whether the
// maximal backslash run ending at off-1 has odd length. This is the local
// resolution of the escape-pending bit (see the package comment): a maximal
// run's first backslash is never itself escaped, so parity decides.
func entryEscaped(buf []byte, off int64) bool {
	n := int64(0)
	for off-n > 0 && buf[off-n-1] == '\\' {
		n++
	}
	return n&1 == 1
}

// entryEscapedRange resolves the same bit against a range-readable file: it
// reads a small window ending at off and scans it backward, doubling the
// window in the (pathological) case that it is backslashes wall to wall.
func entryEscapedRange(open func(off int64) (io.ReadCloser, error), off int64, scratch []byte) (bool, error) {
	if off == 0 {
		return false, nil
	}
	lookback := int64(64)
	for {
		lo := off - lookback
		if lo < 0 {
			lo = 0
		}
		w := scratch
		if int64(len(w)) < off-lo {
			w = make([]byte, off-lo)
		}
		w = w[:off-lo]
		rc, err := open(lo)
		if err != nil {
			return false, err
		}
		_, err = io.ReadFull(rc, w)
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return false, err
		}
		run := int64(0)
		for run < int64(len(w)) && w[len(w)-1-int(run)] == '\\' {
			run++
		}
		if run == int64(len(w)) && lo > 0 {
			lookback *= 2
			continue
		}
		return run&1 == 1, nil
	}
}

// gridAfter returns the smallest grid point strictly beyond a recorded start
// (the BoundaryScanner advancement rule): the next multiple of grain, or
// start+1 when grain is 0 (record everything).
func gridAfter(start, grain int64) int64 {
	if grain == 0 {
		return start + 1
	}
	return (start/grain + 1) * grain
}

// specScanner is the streaming speculative phase-1 scanner of one chunk: fed
// the chunk's bytes in order (any write sizes), it carries the SWAR scanner
// state under the outside-a-string assumption and collects the record-start
// candidates of BOTH parities, pre-filtered to the split grain.
//
// The per-chunk filter runs the BoundaryScanner sampling rule with its grid
// cursor reset to zero at the chunk start. That keeps a superset of what the
// global rule would record here (an earlier cursor only ever records
// earlier starts, and recording a start moves the cursor to the same next
// grid point the global rule would use), and the superset is exactly what
// the stitch needs: re-running the global rule over the concatenated
// surviving candidates reproduces the sequential output, while per-chunk
// memory stays O(chunkSize/grain), not O(newlines).
type specScanner struct {
	st    StructState
	off   int64 // absolute offset of the next block's first byte
	grain int64
	next  [2]int64   // per-parity local grid cursor (0 = keep the first candidate)
	cands [2][]int64 // candidate record starts: [0] outside-string entry, [1] inside
	tail  [64]byte   // partial block carried between writes
	ntail int
}

// newSpecScanner starts a speculative scan of a chunk beginning at absolute
// offset base, with the locally resolved escape-pending bit.
func newSpecScanner(base int64, escaped bool, grain int64) *specScanner {
	s := &specScanner{off: base, grain: grain}
	if escaped {
		s.st.prevEscaped = 1
	}
	return s
}

// Write feeds the next bytes of the chunk. It never fails; the error is for
// io.Writer conformance.
func (s *specScanner) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if s.ntail > 0 || len(p) < 64 {
			c := copy(s.tail[s.ntail:], p)
			s.ntail += c
			p = p[c:]
			if s.ntail == 64 {
				s.block(s.tail[:])
				s.ntail = 0
			}
			continue
		}
		s.block(p[:64])
		p = p[64:]
	}
	return n, nil
}

// Close flushes the partial final block, zero-padded exactly like
// BoundaryScanner.Close (zero bytes are never newlines, so padding adds no
// candidates).
func (s *specScanner) Close() {
	if s.ntail > 0 {
		for i := s.ntail; i < 64; i++ {
			s.tail[i] = 0
		}
		s.block(s.tail[:])
		s.ntail = 0
	}
}

// flip reports whether the chunk contained an odd number of unescaped
// quotes: whether its exit parity differs from its entry parity. Call after
// Close.
func (s *specScanner) flip() bool { return s.st.prevInString != 0 }

func (s *specScanner) block(b []byte) {
	var r rawMasks
	classifyBlock(b, &r)
	escaped := s.st.findEscaped(r.bslash)
	inStr0 := prefixXor(r.quote&^escaped) ^ s.st.prevInString
	s.st.prevInString = uint64(int64(inStr0) >> 63)
	// Newline-outside-string under each speculation: parity 1's in-string
	// mask is the complement of parity 0's, so its newline mask is the
	// other half of the raw newline bits.
	nl := [2]uint64{r.nl &^ inStr0, r.nl & inStr0}
	for p := 0; p < 2; p++ {
		m := nl[p]
		for m != 0 {
			i := bits.TrailingZeros64(m)
			m &= m - 1
			start := s.off + int64(i) + 1
			if start < s.next[p] {
				continue
			}
			s.cands[p] = append(s.cands[p], start)
			s.next[p] = gridAfter(start, s.grain)
		}
	}
	s.off += 64
}

// stitchSplits resolves every chunk's entry parity (a prefix XOR over the
// flips), selects each chunk's surviving candidate stream, and re-runs the
// global sampling rule over the concatenation — the sequential
// BoundaryScanner output, reproduced from speculative pieces.
func stitchSplits(scanners []*specScanner, grain int64) []int64 {
	var out []int64
	parity := false
	next := gridAfter(0, grain) // first unsatisfied grid point: grain, or 1 when grain==0
	for _, sc := range scanners {
		sel := 0
		if parity {
			sel = 1
		}
		for _, start := range sc.cands[sel] {
			if start < next {
				continue
			}
			out = append(out, start)
			next = gridAfter(start, grain)
		}
		parity = parity != sc.flip()
	}
	return out
}

// Splits computes the record-start offsets of an in-memory buffer — exactly
// the output of a sequential BoundaryScanner with the same grain fed the
// whole buffer — using speculative chunk workers. Negative grains are
// treated as 0 (every record start).
func (pi ParallelIndexer) Splits(buf []byte, grain int64) []int64 {
	if len(buf) == 0 {
		return nil
	}
	if grain < 0 {
		grain = 0
	}
	starts := pi.chunkStarts(int64(len(buf)))
	nchunks := len(starts) - 1
	scanners := make([]*specScanner, nchunks)
	var wg sync.WaitGroup
	for k := 0; k < nchunks; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			lo, hi := starts[k], starts[k+1]
			sc := newSpecScanner(lo, entryEscaped(buf, lo), grain)
			sc.Write(buf[lo:hi])
			sc.Close()
			scanners[k] = sc
		}(k)
	}
	wg.Wait()
	return stitchSplits(scanners, grain)
}

// SplitsRange computes Splits against a range-readable file of size bytes
// without ever materializing it: each worker streams its chunk through a
// chunkBuf-sized refill buffer (DefaultChunkSize when <= 0), and resolves
// its entry escape bit with a small tail read of the preceding bytes. open
// must return a reader positioned at the given offset (the
// runtime.RangeOpener shape) and must be safe for concurrent calls.
func (pi ParallelIndexer) SplitsRange(open func(off int64) (io.ReadCloser, error), size, grain int64, chunkBuf int) ([]int64, error) {
	if size <= 0 {
		return nil, nil
	}
	if grain < 0 {
		grain = 0
	}
	if chunkBuf <= 0 {
		chunkBuf = DefaultChunkSize
	}
	starts := pi.chunkStarts(size)
	nchunks := len(starts) - 1
	scanners := make([]*specScanner, nchunks)
	errs := make([]error, nchunks)
	var wg sync.WaitGroup
	for k := 0; k < nchunks; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			lo, hi := starts[k], starts[k+1]
			buf := make([]byte, chunkBuf)
			escaped, err := entryEscapedRange(open, lo, buf)
			if err != nil {
				errs[k] = fmt.Errorf("parallel index: resolving escape state at %d: %w", lo, err)
				return
			}
			sc := newSpecScanner(lo, escaped, grain)
			rc, err := open(lo)
			if err != nil {
				errs[k] = fmt.Errorf("parallel index: chunk [%d:%d): %w", lo, hi, err)
				return
			}
			left := hi - lo
			for left > 0 {
				n := int64(len(buf))
				if n > left {
					n = left
				}
				read, err := io.ReadFull(rc, buf[:n])
				if read > 0 {
					sc.Write(buf[:read])
					left -= int64(read)
				}
				if err != nil {
					errs[k] = fmt.Errorf("parallel index: chunk [%d:%d): %w", lo, hi, err)
					break
				}
			}
			if cerr := rc.Close(); cerr != nil && errs[k] == nil {
				errs[k] = fmt.Errorf("parallel index: chunk [%d:%d): %w", lo, hi, cerr)
			}
			sc.Close()
			scanners[k] = sc
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return stitchSplits(scanners, grain), nil
}

// specBlock is the both-parity candidate index of one 64-byte block: the raw
// character classes plus the resolved escape mask and the parity-false
// in-string mask. The parity-true candidate is its complement (the linearity
// argument in the package comment), so one stored stream carries both
// speculations.
type specBlock struct {
	raw     rawMasks
	escaped uint64
	inStr0  uint64
}

// masks finalizes the block under the stitched entry parity.
func (b specBlock) masks(flip bool) BlockMasks {
	inStr := b.inStr0
	if flip {
		inStr = ^inStr
	}
	return b.raw.derive(b.escaped, inStr)
}

// Scan runs the speculative pass over an in-memory buffer and calls visit
// for every 64-byte block, in file order from the calling goroutine, with
// masks byte-identical to a sequential IndexBlock pass over the same bytes
// (the final partial block zero-padded). If visit returns an error the walk
// stops and Scan returns that error.
//
// The candidate streams of all chunks are materialized before visitation
// (~1.25 bytes per input byte), which is what "keep both speculations until
// the stitch selects one" means for full bitmaps; consumers that only need
// record boundaries use Splits, whose per-chunk state is O(chunk/grain).
func (pi ParallelIndexer) Scan(buf []byte, visit func(off int64, m BlockMasks) error) error {
	if len(buf) == 0 {
		return nil
	}
	starts := pi.chunkStarts(int64(len(buf)))
	nchunks := len(starts) - 1
	chunks := make([][]specBlock, nchunks)
	flips := make([]bool, nchunks)
	var wg sync.WaitGroup
	for k := 0; k < nchunks; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			lo, hi := starts[k], starts[k+1]
			st := StructState{}
			if entryEscaped(buf, lo) {
				st.prevEscaped = 1
			}
			blocks := make([]specBlock, 0, (hi-lo+63)/64)
			for off := lo; off < hi; off += 64 {
				var b []byte
				if hi-off >= 64 {
					b = buf[off : off+64]
				} else {
					var pad [64]byte
					copy(pad[:], buf[off:hi])
					b = pad[:]
				}
				var r rawMasks
				classifyBlock(b, &r)
				escaped := st.findEscaped(r.bslash)
				inStr0 := prefixXor(r.quote&^escaped) ^ st.prevInString
				st.prevInString = uint64(int64(inStr0) >> 63)
				blocks = append(blocks, specBlock{raw: r, escaped: escaped, inStr0: inStr0})
			}
			chunks[k] = blocks
			flips[k] = st.prevInString != 0
		}(k)
	}
	wg.Wait()
	parity := false
	for k := 0; k < nchunks; k++ {
		off := starts[k]
		for _, sb := range chunks[k] {
			if err := visit(off, sb.masks(parity)); err != nil {
				return err
			}
			off += 64
		}
		parity = parity != flips[k]
	}
	return nil
}
