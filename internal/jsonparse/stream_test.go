package jsonparse

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"vxq/internal/item"
)

// chunkedReader delivers at most max bytes per Read, so the streaming lexer
// crosses a refill boundary every max bytes regardless of its buffer size.
type chunkedReader struct {
	data []byte
	max  int
}

func (r *chunkedReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.max
	if n > len(p) {
		n = len(p)
	}
	if n > len(r.data) {
		n = len(r.data)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// streamChunkSizes are the refill granularities the streaming tests exercise:
// smaller than any token, the lexer's lookahead floor, and a typical page.
var streamChunkSizes = []int{7, 64, 4096}

func parseStream(src string, chunk int) (item.Item, error) {
	return ParseReader(&chunkedReader{data: []byte(src), max: chunk}, chunk)
}

func TestParseReaderMatchesParse(t *testing.T) {
	srcs := []string{
		sensorDoc,
		`{"a":[1,2.5,-3e2,true,false,null,"x\ny","é😀"]}`,
		`  [ "padded" , 123456789012345 ]  `,
	}
	for _, src := range srcs {
		want, err := Parse([]byte(src))
		if err != nil {
			t.Fatal(err)
		}
		for _, chunk := range streamChunkSizes {
			got, err := parseStream(src, chunk)
			if err != nil {
				t.Errorf("chunk %d: ParseReader: %v", chunk, err)
				continue
			}
			if !item.Equal(got, want) {
				t.Errorf("chunk %d: got %s, want %s", chunk, item.JSON(got), item.JSON(want))
			}
		}
	}
}

// TestParseReaderLargerThanChunk streams a document several times larger
// than the chunk buffer and checks it parses identically to the in-memory
// path: the whole point of the refillable lexer.
func TestParseReaderLargerThanChunk(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"root":[`)
	for i := 0; i < 500; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"i":%d,"s":"value-%06d with a \"quote\" and a é"}`, i, i)
	}
	sb.WriteString(`]}`)
	src := sb.String() // ~30 KiB
	want, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{64, 256} {
		if len(src) < 10*chunk {
			t.Fatalf("document of %d bytes does not dwarf chunk %d", len(src), chunk)
		}
		got, err := parseStream(src, chunk)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if !item.Equal(got, want) {
			t.Errorf("chunk %d: streamed parse differs from in-memory parse", chunk)
		}
	}
}

// TestStreamStringSpansRefill walks a string token across the refill
// boundary at every alignment: prefixes of varying length push the string's
// escapes, surrogate pairs, and closing quote onto either side of the
// 64-byte window edge.
func TestStreamStringSpansRefill(t *testing.T) {
	const chunk = 64
	long := strings.Repeat("x", 3*chunk)
	for pad := 0; pad < chunk+2; pad++ {
		val := strings.Repeat("a", pad) + "\n" + long + "\té" + "\U0001F600" + `"end`
		src := `["` + strings.Repeat("a", pad) + `\n` + long + `\té` + `😀\"end"]`
		got, err := parseStream(src, chunk)
		if err != nil {
			t.Fatalf("pad %d: %v", pad, err)
		}
		want := item.Array{item.String(val)}
		if !item.Equal(got, want) {
			t.Errorf("pad %d: got %s", pad, item.JSON(got))
		}
	}
}

// TestStreamNumberSpansRefill checks number tokens that straddle a refill
// boundary survive buffer compaction.
func TestStreamNumberSpansRefill(t *testing.T) {
	for pad := 0; pad < 70; pad++ {
		src := "[" + strings.Repeat(" ", pad) + "-123456.789e2]"
		got, err := parseStream(src, 64)
		if err != nil {
			t.Fatalf("pad %d: %v", pad, err)
		}
		want := item.Array{item.Number(-123456.789e2)}
		if !item.Equal(got, want) {
			t.Errorf("pad %d: got %s", pad, item.JSON(got))
		}
	}
}

// TestStreamTruncatedMidToken injects truncation inside every token kind and
// expects a position-bearing error, never a hang or a silent success.
func TestStreamTruncatedMidToken(t *testing.T) {
	bad := []string{
		`{"root": [ "unterminated str`, // mid-string
		`{"root": [ "esc\`,             // mid-escape
		`{"root": [ "u\u12`,            // mid-\u escape
		`{"root": [ 12.`,               // mid-number
		`{"root": [ tru`,               // mid-literal
		`{"root": [ 1, 2`,              // mid-array
		`{"root"`,                      // mid-object
	}
	for _, src := range bad {
		for _, chunk := range streamChunkSizes {
			_, err := parseStream(src, chunk)
			if err == nil {
				t.Errorf("chunk %d: ParseReader(%q) should fail", chunk, src)
				continue
			}
			if !strings.Contains(err.Error(), "offset") {
				t.Errorf("chunk %d: error for %q lacks an offset: %v", chunk, src, err)
			}
		}
	}
}

// TestStreamErrorOffsetIsAbsolute: error positions must be file offsets,
// not indexes into whichever chunk the failure happened to land in.
func TestStreamErrorOffsetIsAbsolute(t *testing.T) {
	src := strings.Repeat(" ", 100) + "tru"
	for _, chunk := range streamChunkSizes {
		_, err := parseStream(src, chunk)
		if err == nil {
			t.Fatalf("chunk %d: truncated literal should fail", chunk)
		}
		if !strings.Contains(err.Error(), "offset 100") {
			t.Errorf("chunk %d: error %q should report offset 100", chunk, err)
		}
	}
}

func TestStreamReadError(t *testing.T) {
	r := io.MultiReader(strings.NewReader(`{"root": [1, 2`), failingReader{})
	if _, err := ParseReader(r, 64); err == nil {
		t.Error("reader failure must surface as a parse error")
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, fmt.Errorf("disk gone") }

// TestQuickProjectReaderMatchesProject is the streaming-ingest property the
// refactor must preserve: projecting over an io.Reader emits exactly the
// item sequence the slice-based projector emits, at every chunk size.
func TestQuickProjectReaderMatchesProject(t *testing.T) {
	f := func(dp docAndPath) bool {
		src := []byte(item.JSON(dp.Doc))
		var want item.Sequence
		if err := Project(src, dp.Path, func(it item.Item) error {
			want = append(want, it)
			return nil
		}); err != nil {
			t.Logf("Project(%s, %s): %v", src, dp.Path, err)
			return false
		}
		for _, chunk := range streamChunkSizes {
			var got item.Sequence
			r := &chunkedReader{data: src, max: chunk}
			if err := ProjectReader(r, chunk, dp.Path, func(it item.Item) error {
				got = append(got, it)
				return nil
			}); err != nil {
				t.Logf("chunk %d: ProjectReader(%s, %s): %v", chunk, src, dp.Path, err)
				return false
			}
			if !item.EqualSeq(got, want) {
				t.Logf("chunk %d: doc=%s path=%s got=%s want=%s", chunk, src, dp.Path,
					item.JSONSeq(got), item.JSONSeq(want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestProjectReaderEmitError: the emit contract (errors abort the scan and
// surface unchanged) must hold on the streaming path too.
func TestProjectReaderEmitError(t *testing.T) {
	count := 0
	err := ProjectReader(strings.NewReader(`[1,2,3]`), 64, Path{MembersStep()},
		func(item.Item) error {
			count++
			if count == 2 {
				return errSentinel
			}
			return nil
		})
	if err != errSentinel {
		t.Errorf("err = %v, want sentinel", err)
	}
	if count != 2 {
		t.Errorf("emit called %d times, want 2", count)
	}
}
