package jsonparse

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"vxq/internal/item"
)

// skipChunkSizes are the refill-window sizes the differential tests sweep:
// the pathological minimum (7 floors to the lexer's 64-byte window, forcing
// a refill every few tokens), sizes bracketing the structural-index block
// size (63, 64, 65 — one event exactly on, just before, and just after a
// block edge), and a size larger than every test document (no refill at
// all). Chunk 0 selects the in-memory slice lexer instead of a stream lexer.
var skipChunkSizes = []int{0, 7, 63, 64, 65, 4096}

// skipModes are the three concrete skip implementations the differential
// compares: the token-level oracle, the byte-class structural scan, and the
// SWAR structural-index kernel.
var skipModes = []SkipMode{SkipTokens, SkipRawBytes, SkipIndexed}

// runSkipMode tokenizes the first token of data and skips the first value in
// the requested mode, returning the absolute end offset of the skipped value.
func runSkipMode(data []byte, chunk int, mode SkipMode) (int, error) {
	var l *Lexer
	if chunk == 0 {
		l = NewLexer(data)
	} else {
		l = NewStreamLexer(bytes.NewReader(data), chunk)
	}
	l.SetSkipMode(mode)
	if err := l.Next(); err != nil {
		return l.Offset(), err
	}
	if l.Kind == TokEOF {
		return l.Offset(), fmt.Errorf("empty input")
	}
	var err error
	if mode == SkipTokens {
		err = skipValue(l)
	} else {
		err = l.SkipValueRaw()
	}
	return l.Offset(), err
}

// jsonOracleExtent decodes the first value of data with encoding/json,
// returning the end offset of the value, or ok=false when encoding/json
// rejects the input.
func jsonOracleExtent(data []byte) (end int, ok bool) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		return 0, false
	}
	start := 0
	for start < len(data) {
		switch data[start] {
		case ' ', '\t', '\n', '\r':
			start++
			continue
		}
		break
	}
	return start + len(raw), true
}

// checkSkipAgreement asserts the differential contract on one input:
//   - the two raw scans (byte-class and structural-index) are exactly
//     equivalent: same ok-ness, same extent, same error text — on every
//     input, valid or not;
//   - token-skip ok  ⇒  raw-skip ok with byte-for-byte the same extent;
//   - encoding/json ok  ⇒  token-skip ok with the same extent (so on every
//     input all oracles agree on valid values);
//   - raw-skip error ⇒ token-skip error (the raw scans are strictly more
//     permissive, never less).
func checkSkipAgreement(t *testing.T, data []byte, chunk int) {
	t.Helper()
	endTok, errTok := runSkipMode(data, chunk, SkipTokens)
	endRaw, errRaw := runSkipMode(data, chunk, SkipRawBytes)
	endIdx, errIdx := runSkipMode(data, chunk, SkipIndexed)
	if (errRaw == nil) != (errIdx == nil) || endRaw != endIdx {
		t.Fatalf("chunk %d: raw modes diverge on %q: bytes(%d,%v) indexed(%d,%v)",
			chunk, data, endRaw, errRaw, endIdx, errIdx)
	}
	if errRaw != nil && errIdx != nil && errRaw.Error() != errIdx.Error() {
		t.Fatalf("chunk %d: raw error text diverges on %q: bytes %q, indexed %q",
			chunk, data, errRaw, errIdx)
	}
	if errTok == nil {
		if errRaw != nil {
			t.Fatalf("chunk %d: token-skip ok (end %d) but raw-skip failed on %q: %v",
				chunk, endTok, data, errRaw)
		}
		if endRaw != endTok {
			t.Fatalf("chunk %d: skip extent diverges on %q: token %d, raw %d",
				chunk, data, endTok, endRaw)
		}
	} else if errRaw == nil && endRaw > len(data) {
		t.Fatalf("chunk %d: raw-skip ran past the input on %q", chunk, data)
	}
	if endJSON, ok := jsonOracleExtent(data); ok {
		if errTok != nil {
			t.Fatalf("chunk %d: encoding/json accepts %q but token-skip rejects it: %v",
				chunk, data, errTok)
		}
		if endTok != endJSON {
			t.Fatalf("chunk %d: extent diverges from encoding/json on %q: json %d, token %d",
				chunk, data, endJSON, endTok)
		}
	}
}

// skipCorpus is the hand-written differential corpus: escapes (including
// surrogate pairs and lone surrogates), deep nesting, numbers in every form,
// chunk-straddling strings, and structurally-broken inputs.
func skipCorpus() [][]byte {
	corpus := []string{
		// Scalars.
		`null`, `true`, `false`, `0`, `-12`, `3.5`, `1e3`, `2E-2`, `-0.5e+1`,
		`123456789012345678901234567890`, `1e999`, `0.00000000000000000001`,
		`""`, `"abc"`, `  42  `,
		// Escapes, surrogate pairs, lone surrogates.
		`"a\nb\t\"\\\/"`, `"A"`, `"😀"`, `"\ud800"`,
		`"é café"`, `"ends with backslash escape \\"`,
		// Containers with everything inside.
		`{}`, `[]`, `{"a":1}`, `[1,2,3]`,
		`{"k":"v","nested":{"deep":[1,{"x":null},"s"]},"n":-2.5e-3}`,
		`{"esc":"a\"b\\c","u":"😀","ctl":""}`,
		`[[[[[[[[[[1]]]]]]]]]]`,
		`[{"a":[{"b":[{"c":1}]}]}]`,
		// Strings long enough to straddle every chunk size.
		`"` + strings.Repeat("x", 200) + `"`,
		`{"pad":"` + strings.Repeat("y", 150) + `","v":1}`,
		`"` + strings.Repeat(`\\`, 100) + `"`,
		// Whitespace-heavy.
		"  {\n\t\"a\" : [ 1 ,\r\n 2 ] }  ",
		// Structurally broken: both skips must reject.
		`{`, `[`, `{"a":`, `{"a":[1,2`, `"unterminated`, `["a\`,
		"\"ctl \x01 char\"", `{"s":"bad ` + "\x02" + `"}`,
		// Broken only at token granularity: raw-skip may accept these,
		// checkSkipAgreement verifies the one-directional contract.
		`{"a":1x}`, `{"e":"\q"}`, `{"n":1.}`, `{"n":01}`, `[truu]`,
		`{"a" 1}`, `[1 2]`, `{"a":1,}`, `[1}`, `{"a":1]`,
	}
	// Deep nesting across a refill boundary.
	depth := 300
	corpus = append(corpus, strings.Repeat("[", depth)+"7"+strings.Repeat("]", depth))
	corpus = append(corpus, strings.Repeat(`{"k":[`, 50)+"1"+strings.Repeat("]}", 50))
	// Block-edge cases for the 64-byte structural-index kernel: every event
	// shifted to land exactly on, just before, and just after word (8B) and
	// block (64B) boundaries — closing quotes, backslashes split from their
	// escaped character, and long \\ runs whose parity decides whether the
	// next quote closes the string.
	for _, at := range []int{6, 7, 8, 9, 62, 63, 64, 65, 127, 128} {
		pad := strings.Repeat("a", at)
		corpus = append(corpus,
			`{"s":"`+pad+`"}`,                       // closing quote near the edge
			`{"s":"`+pad+`\n tail"}`,                // escape straddling the edge
			`{"s":"`+pad+`\\"}`,                     // backslash-backslash then quote
			`{"s":"`+pad+`\\\" still inside"}`,      // escaped quote after \\ run
			`{"s":"`+pad+`","t":[1,2],"u":{"v":9}}`, // structure right after the edge
			`["`+pad+`{not structure}","`+pad+`]"]`, // brackets inside strings at edges
		)
	}
	for _, n := range []int{31, 32, 33, 63, 64, 65} {
		run := strings.Repeat(`\\`, n)
		corpus = append(corpus,
			`{"s":"`+run+`"}`,        // even run, quote closes
			`{"s":"`+run+`\""}`,      // odd backslash before quote: stays open
			`{"s":"x`+run+`","k":1}`, // run shifted off word alignment
		)
	}
	out := make([][]byte, len(corpus))
	for i, s := range corpus {
		out[i] = []byte(s)
	}
	return out
}

// TestRawSkipDifferentialCorpus runs the three-way differential (raw-skip vs
// token-skip vs encoding/json) over the hand-written corpus at every chunk
// size.
func TestRawSkipDifferentialCorpus(t *testing.T) {
	for _, data := range skipCorpus() {
		for _, chunk := range skipChunkSizes {
			checkSkipAgreement(t, data, chunk)
		}
	}
}

// TestRawSkipStructuralErrors pins the malformed inputs the raw scan must
// still detect: truncation, unterminated strings, control characters.
func TestRawSkipStructuralErrors(t *testing.T) {
	bad := []string{
		`{`, `[`, `{"a":1`, `[1,[2,3]`, `{"a":"unterminated`,
		"[\"ctl\x01\"]", `["straddle \`,
	}
	for _, src := range bad {
		for _, chunk := range skipChunkSizes {
			for _, mode := range []SkipMode{SkipRawBytes, SkipIndexed} {
				if _, err := runSkipMode([]byte(src), chunk, mode); err == nil {
					t.Errorf("chunk %d mode %d: raw-skip accepted structurally broken %q", chunk, mode, src)
				}
			}
		}
	}
}

// TestRawSkipSetsClosingToken: after a raw skip the current token must be
// the value's closing brace/bracket, exactly like the reference, so the
// projector's loop structure is mode-independent.
func TestRawSkipSetsClosingToken(t *testing.T) {
	cases := map[string]TokenKind{
		`{"a":[1,2]}`: TokRBrace,
		`[{"a":1}]`:   TokRBracket,
	}
	for src, want := range cases {
		l := NewLexer([]byte(src))
		if err := l.Next(); err != nil {
			t.Fatal(err)
		}
		if err := l.SkipValueRaw(); err != nil {
			t.Fatal(err)
		}
		if l.Kind != want {
			t.Errorf("%s: Kind after raw skip = %s, want %s", src, l.Kind, want)
		}
	}
}

// ndjsonStream renders a stream of top-level values separated the way
// morsel scans see them: newline-delimited.
func ndjsonStream(vals []item.Item) []byte {
	var b bytes.Buffer
	for _, v := range vals {
		b.WriteString(item.JSON(v))
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// TestQuickRawSkipMatchesTokenSkip is the core kernel property: for any
// document, both skip modes consume byte-for-byte the same extent, at every
// chunk size, and over NDJSON streams ScanValues projects identical results
// in both modes.
func TestQuickRawSkipMatchesTokenSkip(t *testing.T) {
	f := func(dp docAndPath) bool {
		src := []byte(item.JSON(dp.Doc))
		for _, chunk := range skipChunkSizes {
			endTok, errTok := runSkipMode(src, chunk, SkipTokens)
			for _, mode := range []SkipMode{SkipRawBytes, SkipIndexed} {
				endRaw, errRaw := runSkipMode(src, chunk, mode)
				if errTok != nil || errRaw != nil || endTok != endRaw {
					t.Logf("doc=%s chunk=%d mode=%d: token(%d,%v) raw(%d,%v)",
						src, chunk, mode, endTok, errTok, endRaw, errRaw)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Error(err)
	}
}

// TestQuickScanValuesModeEquivalence: a projected NDJSON scan (the morsel
// hot path) emits the same sequence whether subtrees are skipped by the raw
// scan or the token-level reference.
func TestQuickScanValuesModeEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 1 + r.Intn(5)
		vals := make([]item.Item, n)
		for i := range vals {
			vals[i] = randomJSONValue(r, 3)
		}
		stream := ndjsonStream(vals)
		path := randomPath(r)
		for _, chunk := range skipChunkSizes[1:] {
			got := make([]item.Sequence, len(skipModes))
			count := make([]int, len(skipModes))
			for mi, mode := range skipModes {
				l := NewStreamLexer(bytes.NewReader(stream), chunk)
				l.SetSkipMode(mode)
				c, err := ScanValues(l, path, -1, func(it item.Item) error {
					got[mi] = append(got[mi], it)
					return nil
				})
				if err != nil {
					t.Fatalf("mode %d chunk %d: ScanValues(%s, %s): %v", mode, chunk, stream, path, err)
				}
				count[mi] = c
			}
			for mi := 1; mi < len(skipModes); mi++ {
				if count[mi] != count[0] || !item.EqualSeq(got[mi], got[0]) {
					t.Fatalf("chunk %d: mode divergence on %s path %s: mode %d (%d)=%s tokens(%d)=%s",
						chunk, stream, path, skipModes[mi], count[mi], item.JSONSeq(got[mi]), count[0], item.JSONSeq(got[0]))
				}
			}
		}
	}
}

// FuzzRawSkipDifferential fuzzes the three-way skip differential (tokens vs
// byte-class vs structural-index, cross-checked against encoding/json) over
// every chunk size. `make fuzz-smoke` runs it briefly in CI; run `go test
// -fuzz=FuzzRawSkipDifferential ./internal/jsonparse` for a real session.
func FuzzRawSkipDifferential(f *testing.F) {
	for _, data := range skipCorpus() {
		f.Add(data, byte(0))
		f.Add(data, byte(1))
	}
	f.Fuzz(func(t *testing.T, data []byte, sel byte) {
		chunk := skipChunkSizes[int(sel)%len(skipChunkSizes)]
		checkSkipAgreement(t, data, chunk)
	})
}
