package jsonparse

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"vxq/internal/item"
)

// skipChunkSizes are the refill-window sizes the differential tests sweep:
// the pathological minimum (7 floors to the lexer's 64-byte window, forcing
// a refill every few tokens), the floor itself, and a size larger than every
// test document (no refill at all). Chunk 0 selects the in-memory slice
// lexer instead of a stream lexer.
var skipChunkSizes = []int{0, 7, 64, 4096}

// runSkip tokenizes the first token of data and skips the first value in the
// requested mode, returning the absolute end offset of the skipped value.
func runSkip(data []byte, chunk int, reference bool) (int, error) {
	var l *Lexer
	if chunk == 0 {
		l = NewLexer(data)
	} else {
		l = NewStreamLexer(bytes.NewReader(data), chunk)
	}
	l.SetReferenceSkip(reference)
	if err := l.Next(); err != nil {
		return l.Offset(), err
	}
	if l.Kind == TokEOF {
		return l.Offset(), fmt.Errorf("empty input")
	}
	var err error
	if reference {
		err = skipValue(l)
	} else {
		err = l.SkipValueRaw()
	}
	return l.Offset(), err
}

// jsonOracleExtent decodes the first value of data with encoding/json,
// returning the end offset of the value, or ok=false when encoding/json
// rejects the input.
func jsonOracleExtent(data []byte) (end int, ok bool) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		return 0, false
	}
	start := 0
	for start < len(data) {
		switch data[start] {
		case ' ', '\t', '\n', '\r':
			start++
			continue
		}
		break
	}
	return start + len(raw), true
}

// checkSkipAgreement asserts the differential contract on one input:
//   - token-skip ok  ⇒  raw-skip ok with byte-for-byte the same extent;
//   - encoding/json ok  ⇒  token-skip ok with the same extent (so on every
//     input all three oracles agree on valid values);
//   - raw-skip error ⇒ token-skip error (the raw scan is strictly more
//     permissive, never less).
func checkSkipAgreement(t *testing.T, data []byte, chunk int) {
	t.Helper()
	endTok, errTok := runSkip(data, chunk, true)
	endRaw, errRaw := runSkip(data, chunk, false)
	if errTok == nil {
		if errRaw != nil {
			t.Fatalf("chunk %d: token-skip ok (end %d) but raw-skip failed on %q: %v",
				chunk, endTok, data, errRaw)
		}
		if endRaw != endTok {
			t.Fatalf("chunk %d: skip extent diverges on %q: token %d, raw %d",
				chunk, data, endTok, endRaw)
		}
	} else if errRaw == nil && endRaw > len(data) {
		t.Fatalf("chunk %d: raw-skip ran past the input on %q", chunk, data)
	}
	if endJSON, ok := jsonOracleExtent(data); ok {
		if errTok != nil {
			t.Fatalf("chunk %d: encoding/json accepts %q but token-skip rejects it: %v",
				chunk, data, errTok)
		}
		if endTok != endJSON {
			t.Fatalf("chunk %d: extent diverges from encoding/json on %q: json %d, token %d",
				chunk, data, endJSON, endTok)
		}
	}
}

// skipCorpus is the hand-written differential corpus: escapes (including
// surrogate pairs and lone surrogates), deep nesting, numbers in every form,
// chunk-straddling strings, and structurally-broken inputs.
func skipCorpus() [][]byte {
	corpus := []string{
		// Scalars.
		`null`, `true`, `false`, `0`, `-12`, `3.5`, `1e3`, `2E-2`, `-0.5e+1`,
		`123456789012345678901234567890`, `1e999`, `0.00000000000000000001`,
		`""`, `"abc"`, `  42  `,
		// Escapes, surrogate pairs, lone surrogates.
		`"a\nb\t\"\\\/"`, `"A"`, `"😀"`, `"\ud800"`,
		`"é café"`, `"ends with backslash escape \\"`,
		// Containers with everything inside.
		`{}`, `[]`, `{"a":1}`, `[1,2,3]`,
		`{"k":"v","nested":{"deep":[1,{"x":null},"s"]},"n":-2.5e-3}`,
		`{"esc":"a\"b\\c","u":"😀","ctl":""}`,
		`[[[[[[[[[[1]]]]]]]]]]`,
		`[{"a":[{"b":[{"c":1}]}]}]`,
		// Strings long enough to straddle every chunk size.
		`"` + strings.Repeat("x", 200) + `"`,
		`{"pad":"` + strings.Repeat("y", 150) + `","v":1}`,
		`"` + strings.Repeat(`\\`, 100) + `"`,
		// Whitespace-heavy.
		"  {\n\t\"a\" : [ 1 ,\r\n 2 ] }  ",
		// Structurally broken: both skips must reject.
		`{`, `[`, `{"a":`, `{"a":[1,2`, `"unterminated`, `["a\`,
		"\"ctl \x01 char\"", `{"s":"bad ` + "\x02" + `"}`,
		// Broken only at token granularity: raw-skip may accept these,
		// checkSkipAgreement verifies the one-directional contract.
		`{"a":1x}`, `{"e":"\q"}`, `{"n":1.}`, `{"n":01}`, `[truu]`,
		`{"a" 1}`, `[1 2]`, `{"a":1,}`, `[1}`, `{"a":1]`,
	}
	// Deep nesting across a refill boundary.
	depth := 300
	corpus = append(corpus, strings.Repeat("[", depth)+"7"+strings.Repeat("]", depth))
	corpus = append(corpus, strings.Repeat(`{"k":[`, 50)+"1"+strings.Repeat("]}", 50))
	out := make([][]byte, len(corpus))
	for i, s := range corpus {
		out[i] = []byte(s)
	}
	return out
}

// TestRawSkipDifferentialCorpus runs the three-way differential (raw-skip vs
// token-skip vs encoding/json) over the hand-written corpus at every chunk
// size.
func TestRawSkipDifferentialCorpus(t *testing.T) {
	for _, data := range skipCorpus() {
		for _, chunk := range skipChunkSizes {
			checkSkipAgreement(t, data, chunk)
		}
	}
}

// TestRawSkipStructuralErrors pins the malformed inputs the raw scan must
// still detect: truncation, unterminated strings, control characters.
func TestRawSkipStructuralErrors(t *testing.T) {
	bad := []string{
		`{`, `[`, `{"a":1`, `[1,[2,3]`, `{"a":"unterminated`,
		"[\"ctl\x01\"]", `["straddle \`,
	}
	for _, src := range bad {
		for _, chunk := range skipChunkSizes {
			if _, err := runSkip([]byte(src), chunk, false); err == nil {
				t.Errorf("chunk %d: raw-skip accepted structurally broken %q", chunk, src)
			}
		}
	}
}

// TestRawSkipSetsClosingToken: after a raw skip the current token must be
// the value's closing brace/bracket, exactly like the reference, so the
// projector's loop structure is mode-independent.
func TestRawSkipSetsClosingToken(t *testing.T) {
	cases := map[string]TokenKind{
		`{"a":[1,2]}`: TokRBrace,
		`[{"a":1}]`:   TokRBracket,
	}
	for src, want := range cases {
		l := NewLexer([]byte(src))
		if err := l.Next(); err != nil {
			t.Fatal(err)
		}
		if err := l.SkipValueRaw(); err != nil {
			t.Fatal(err)
		}
		if l.Kind != want {
			t.Errorf("%s: Kind after raw skip = %s, want %s", src, l.Kind, want)
		}
	}
}

// ndjsonStream renders a stream of top-level values separated the way
// morsel scans see them: newline-delimited.
func ndjsonStream(vals []item.Item) []byte {
	var b bytes.Buffer
	for _, v := range vals {
		b.WriteString(item.JSON(v))
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// TestQuickRawSkipMatchesTokenSkip is the core kernel property: for any
// document, both skip modes consume byte-for-byte the same extent, at every
// chunk size, and over NDJSON streams ScanValues projects identical results
// in both modes.
func TestQuickRawSkipMatchesTokenSkip(t *testing.T) {
	f := func(dp docAndPath) bool {
		src := []byte(item.JSON(dp.Doc))
		for _, chunk := range skipChunkSizes {
			endTok, errTok := runSkip(src, chunk, true)
			endRaw, errRaw := runSkip(src, chunk, false)
			if errTok != nil || errRaw != nil || endTok != endRaw {
				t.Logf("doc=%s chunk=%d: token(%d,%v) raw(%d,%v)",
					src, chunk, endTok, errTok, endRaw, errRaw)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Error(err)
	}
}

// TestQuickScanValuesModeEquivalence: a projected NDJSON scan (the morsel
// hot path) emits the same sequence whether subtrees are skipped by the raw
// scan or the token-level reference.
func TestQuickScanValuesModeEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 1 + r.Intn(5)
		vals := make([]item.Item, n)
		for i := range vals {
			vals[i] = randomJSONValue(r, 3)
		}
		stream := ndjsonStream(vals)
		path := randomPath(r)
		for _, chunk := range skipChunkSizes[1:] {
			var got [2]item.Sequence
			var count [2]int
			for mode := 0; mode < 2; mode++ {
				l := NewStreamLexer(bytes.NewReader(stream), chunk)
				l.SetReferenceSkip(mode == 1)
				c, err := ScanValues(l, path, -1, func(it item.Item) error {
					got[mode] = append(got[mode], it)
					return nil
				})
				if err != nil {
					t.Fatalf("mode %d chunk %d: ScanValues(%s, %s): %v", mode, chunk, stream, path, err)
				}
				count[mode] = c
			}
			if count[0] != count[1] || !item.EqualSeq(got[0], got[1]) {
				t.Fatalf("chunk %d: mode divergence on %s path %s: raw(%d)=%s ref(%d)=%s",
					chunk, stream, path, count[0], item.JSONSeq(got[0]), count[1], item.JSONSeq(got[1]))
			}
		}
	}
}

// FuzzRawSkipDifferential fuzzes the three-way skip differential. `make
// fuzz-smoke` runs it briefly in CI; run `go test -fuzz=FuzzRawSkipDifferential
// ./internal/jsonparse` for a real session.
func FuzzRawSkipDifferential(f *testing.F) {
	for _, data := range skipCorpus() {
		f.Add(data, byte(0))
		f.Add(data, byte(1))
	}
	f.Fuzz(func(t *testing.T, data []byte, sel byte) {
		chunk := skipChunkSizes[int(sel)%len(skipChunkSizes)]
		checkSkipAgreement(t, data, chunk)
	})
}
