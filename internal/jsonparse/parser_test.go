package jsonparse

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"vxq/internal/item"
)

func mustParse(t *testing.T, src string) item.Item {
	t.Helper()
	it, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse(%s): %v", src, err)
	}
	return it
}

func TestParseScalars(t *testing.T) {
	cases := map[string]item.Item{
		"null":            item.Null{},
		"true":            item.Bool(true),
		"false":           item.Bool(false),
		"0":               item.Number(0),
		"-12":             item.Number(-12),
		"3.5":             item.Number(3.5),
		"1e3":             item.Number(1000),
		"2E-2":            item.Number(0.02),
		"-0.5e+1":         item.Number(-5),
		`""`:              item.String(""),
		`"abc"`:           item.String("abc"),
		`  42  `:          item.Number(42),
		"123456789012345": item.Number(123456789012345),
	}
	for src, want := range cases {
		if got := mustParse(t, src); !item.Equal(got, want) {
			t.Errorf("Parse(%s) = %s, want %s", src, item.JSON(got), item.JSON(want))
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	cases := map[string]string{
		`"a\nb"`:     "a\nb",
		`"a\tb"`:     "a\tb",
		`"\""`:       `"`,
		`"\\"`:       `\`,
		`"\/"`:       "/",
		`"\b\f\r"`:   "\b\f\r",
		`"A"`:        "A",
		`"é"`:        "é",
		`"😀"`:        "😀",
		`"smile 😀!"`: "smile 😀!",
	}
	for src, want := range cases {
		got := mustParse(t, src)
		if !item.Equal(got, item.String(want)) {
			t.Errorf("Parse(%s) = %s, want %q", src, item.JSON(got), want)
		}
	}
}

func TestParseNested(t *testing.T) {
	src := `{"bookstore":{"book":[{"-category":"COOKING","title":"Everyday Italian","price":30.00},{"title":"XQuery Kick Start","price":49.99}]}}`
	it := mustParse(t, src)
	o := it.(*item.Object)
	books := o.Value("bookstore").(*item.Object).Value("book").(item.Array)
	if len(books) != 2 {
		t.Fatalf("len(books) = %d", len(books))
	}
	if got := books[1].(*item.Object).Value("title"); !item.Equal(got, item.String("XQuery Kick Start")) {
		t.Errorf("title = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "{", "}", "[", "]", "{]", "[}",
		`{"a"}`, `{"a":}`, `{"a":1,}`, `{1:2}`, `{"a":1 "b":2}`,
		"[1,]", "[1 2]", "tru", "nul", "falsy",
		"01x", "-", "1.", "1e", "1e+", `"abc`, `"a\q"`, `"a\u12"`,
		`"a` + "\x01" + `"`, "1 2", "{} []", "NaN", "+1", "--1",
	}
	for _, src := range bad {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseDuplicateKeysRejected(t *testing.T) {
	if _, err := Parse([]byte(`{"a":1,"a":2}`)); err == nil {
		t.Error("duplicate keys must be rejected (JSONiq objects have unique keys)")
	}
}

func TestParseDeepNesting(t *testing.T) {
	depth := 1000
	src := strings.Repeat("[", depth) + "1" + strings.Repeat("]", depth)
	it := mustParse(t, src)
	for i := 0; i < depth; i++ {
		it = it.(item.Array)[0]
	}
	if !item.Equal(it, item.Number(1)) {
		t.Error("innermost value mismatch")
	}
}

const sensorDoc = `{
  "root": [
    {
      "metadata": {"count": 2},
      "results": [
        {"date": "2013-12-25T00:00", "dataType": "TMIN", "station": "GSW123006", "value": 4},
        {"date": "2013-12-26T00:00", "dataType": "TMAX", "station": "GSW123006", "value": 14}
      ]
    },
    {
      "metadata": {"count": 1},
      "results": [
        {"date": "2014-12-25T00:00", "dataType": "WIND", "station": "GSW957859", "value": 30}
      ]
    }
  ]
}`

func sensorPath() Path {
	return Path{KeyStep("root"), MembersStep(), KeyStep("results"), MembersStep()}
}

func TestProjectSensorMeasurements(t *testing.T) {
	var got []item.Item
	err := Project([]byte(sensorDoc), sensorPath(), func(it item.Item) error {
		got = append(got, it)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("emitted %d measurements, want 3", len(got))
	}
	if v := got[0].(*item.Object).Value("dataType"); !item.Equal(v, item.String("TMIN")) {
		t.Errorf("first measurement dataType = %v", v)
	}
	if v := got[2].(*item.Object).Value("station"); !item.Equal(v, item.String("GSW957859")) {
		t.Errorf("third measurement station = %v", v)
	}
}

func TestProjectDateOnly(t *testing.T) {
	path := sensorPath().Append(KeyStep("date"))
	var got []item.Item
	if err := Project([]byte(sensorDoc), path, func(it item.Item) error {
		got = append(got, it)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := item.Sequence{
		item.String("2013-12-25T00:00"),
		item.String("2013-12-26T00:00"),
		item.String("2014-12-25T00:00"),
	}
	if !item.EqualSeq(item.Sequence(got), want) {
		t.Errorf("dates = %s", item.JSONSeq(item.Sequence(got)))
	}
}

func TestProjectEmptyPathIsParse(t *testing.T) {
	var got []item.Item
	if err := Project([]byte(sensorDoc), nil, func(it item.Item) error {
		got = append(got, it)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := mustParse(t, sensorDoc)
	if len(got) != 1 || !item.Equal(got[0], want) {
		t.Error("Project with empty path must behave like Parse")
	}
}

func TestProjectIndexStep(t *testing.T) {
	src := `{"a":[10,20,30]}`
	for idx, want := range map[int]item.Sequence{
		1: {item.Number(10)},
		3: {item.Number(30)},
		4: nil,
		0: nil,
	} {
		var got item.Sequence
		path := Path{KeyStep("a"), IndexStep(idx)}
		if err := Project([]byte(src), path, func(it item.Item) error {
			got = append(got, it)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !item.EqualSeq(got, want) {
			t.Errorf("index %d: got %s want %s", idx, item.JSONSeq(got), item.JSONSeq(want))
		}
	}
}

func TestProjectKeysOfObject(t *testing.T) {
	src := `{"x":1,"y":{"ignored":true}}`
	var got item.Sequence
	if err := Project([]byte(src), Path{MembersStep()}, func(it item.Item) error {
		got = append(got, it)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := item.Sequence{item.String("x"), item.String("y")}
	if !item.EqualSeq(got, want) {
		t.Errorf("keys = %s", item.JSONSeq(got))
	}
}

func TestProjectMismatches(t *testing.T) {
	// Steps applied to non-matching kinds yield empty results, not errors.
	cases := []struct {
		src  string
		path Path
	}{
		{`[1,2]`, Path{KeyStep("a")}},
		{`{"a":1}`, Path{IndexStep(1)}},
		{`5`, Path{MembersStep()}},
		{`{"a":5}`, Path{KeyStep("a"), MembersStep(), KeyStep("b")}},
		{`{"a":{"b":1}}`, Path{KeyStep("zzz")}},
	}
	for _, c := range cases {
		n := 0
		if err := Project([]byte(c.src), c.path, func(item.Item) error { n++; return nil }); err != nil {
			t.Errorf("Project(%s, %s): %v", c.src, c.path, err)
		}
		if n != 0 {
			t.Errorf("Project(%s, %s) emitted %d items, want 0", c.src, c.path, n)
		}
	}
}

func TestProjectEmitError(t *testing.T) {
	errStop := strings.NewReader // dummy to avoid unused import changes
	_ = errStop
	count := 0
	err := Project([]byte(`[1,2,3]`), Path{MembersStep()}, func(item.Item) error {
		count++
		if count == 2 {
			return errSentinel
		}
		return nil
	})
	if err != errSentinel {
		t.Errorf("err = %v, want sentinel", err)
	}
	if count != 2 {
		t.Errorf("emit called %d times, want 2", count)
	}
}

var errSentinel = &sentinelError{}

type sentinelError struct{}

func (*sentinelError) Error() string { return "sentinel" }

func TestProjectTruncatedInput(t *testing.T) {
	bad := []string{
		`{"root": [ {"a": 1}`,
		`{"root": `,
		`{"root": [1,2`,
		`{"root"`,
	}
	for _, src := range bad {
		err := Project([]byte(src), Path{KeyStep("root"), MembersStep()}, func(item.Item) error { return nil })
		if err == nil {
			t.Errorf("Project(%q) should fail", src)
		}
	}
}

func TestPathString(t *testing.T) {
	p := Path{KeyStep("root"), MembersStep(), KeyStep("results"), MembersStep(), IndexStep(2)}
	want := `("root")()("results")()(2)`
	if got := p.String(); got != want {
		t.Errorf("String = %s, want %s", got, want)
	}
}

func TestPathEqualAppend(t *testing.T) {
	p := Path{KeyStep("a")}
	q := p.Append(MembersStep())
	if p.Equal(q) {
		t.Error("p and q differ")
	}
	if len(p) != 1 {
		t.Error("Append must not modify receiver")
	}
	if !q.Equal(Path{KeyStep("a"), MembersStep()}) {
		t.Error("Append result mismatch")
	}
}

func TestApplyPathReference(t *testing.T) {
	doc := mustParse(t, sensorDoc)
	seq := ApplyPath(doc, sensorPath())
	if len(seq) != 3 {
		t.Fatalf("ApplyPath yielded %d, want 3", len(seq))
	}
}

// randomJSONValue builds random JSON-able items (no DateTime, which has no
// JSON source form).
func randomJSONValue(r *rand.Rand, depth int) item.Item {
	k := r.Intn(6)
	if depth <= 0 && k >= 4 {
		k = r.Intn(4)
	}
	switch k {
	case 0:
		return item.Null{}
	case 1:
		return item.Bool(r.Intn(2) == 0)
	case 2:
		return item.Number(float64(r.Intn(2000) - 1000))
	case 3:
		b := make([]byte, r.Intn(10))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return item.String(b)
	case 4:
		n := r.Intn(4)
		a := make(item.Array, n)
		for i := range a {
			a[i] = randomJSONValue(r, depth-1)
		}
		return a
	default:
		n := r.Intn(4)
		var keys []string
		var vals []item.Item
		seen := map[string]bool{}
		for i := 0; i < n; i++ {
			k := string(rune('a' + r.Intn(6)))
			if seen[k] {
				continue
			}
			seen[k] = true
			keys = append(keys, k)
			vals = append(vals, randomJSONValue(r, depth-1))
		}
		return item.MustObject(keys, vals)
	}
}

func randomPath(r *rand.Rand) Path {
	n := r.Intn(4)
	p := make(Path, 0, n)
	for i := 0; i < n; i++ {
		switch r.Intn(3) {
		case 0:
			p = append(p, KeyStep(string(rune('a'+r.Intn(6)))))
		case 1:
			p = append(p, IndexStep(1+r.Intn(3)))
		default:
			p = append(p, MembersStep())
		}
	}
	return p
}

type docAndPath struct {
	Doc  item.Item
	Path Path
}

func (docAndPath) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(docAndPath{Doc: randomJSONValue(r, 3), Path: randomPath(r)})
}

// TestQuickProjectorMatchesReference is the core projector property: for any
// document and path, streaming projection over the serialized document equals
// parse-then-navigate.
func TestQuickProjectorMatchesReference(t *testing.T) {
	f := func(dp docAndPath) bool {
		src := []byte(item.JSON(dp.Doc))
		want := ApplyPath(dp.Doc, dp.Path)
		var got item.Sequence
		if err := Project(src, dp.Path, func(it item.Item) error {
			got = append(got, it)
			return nil
		}); err != nil {
			t.Logf("Project(%s, %s): %v", src, dp.Path, err)
			return false
		}
		if !item.EqualSeq(got, want) {
			t.Logf("doc=%s path=%s got=%s want=%s", src, dp.Path,
				item.JSONSeq(got), item.JSONSeq(want))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

// TestQuickParsePrintFixpoint: parse(print(x)) == x.
func TestQuickParsePrintFixpoint(t *testing.T) {
	f := func(dp docAndPath) bool {
		src := item.JSON(dp.Doc)
		got, err := Parse([]byte(src))
		if err != nil {
			return false
		}
		return item.Equal(got, dp.Doc) && item.JSON(got) == src
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseUnicodeEscapes(t *testing.T) {
	cases := map[string]string{
		"\"\\u0041\"":        "A",
		"\"\\u00e9\"":        "é",
		"\"\\u00E9\"":        "é",
		"\"\\ud83d\\ude00\"": "\U0001F600", // surrogate pair
		"\"x\\u0041y\"":      "xAy",
	}
	for src, want := range cases {
		got := mustParse(t, src)
		if !item.Equal(got, item.String(want)) {
			t.Errorf("Parse(%s) = %s, want %q", src, item.JSON(got), want)
		}
	}
	// A lone high surrogate must not crash and must consume the input.
	if _, err := Parse([]byte("\"\\ud83d\"")); err != nil {
		t.Errorf("lone surrogate should still parse: %v", err)
	}
	for _, bad := range []string{"\"\\uZZZZ\"", "\"\\u12\""} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("Parse(%s) should fail", bad)
		}
	}
}
