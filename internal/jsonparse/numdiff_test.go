package jsonparse

import (
	"encoding/json"
	"math"
	"strconv"
	"testing"
	"testing/quick"

	"vxq/internal/item"
)

// numDiffCorpus collects the number forms where a lexer fast path could
// plausibly diverge from strconv: signed zero, tiny decimals whose
// power-of-ten divisor stresses the pow10 table, integers past float64's
// exact range (2^53), 16+ digit mantissas that must NOT take the <=15-digit
// fast path, and boundary widths on either side of every guard.
var numDiffCorpus = []string{
	// Signed zero in every spelling.
	"0", "-0", "0.0", "-0.0", "-0.000", "0e0", "-0e0", "-0.0e0", "-0E-7",
	// Small integers and the 15-digit fast-path ceiling.
	"1", "-1", "42", "999999999999999", "-99999999999999", "-999999999999999",
	// 16 digits: one past the integer fast path; still exact or needing rounding.
	"1000000000000000", "9999999999999999", "-9999999999999999",
	// 2^53 neighborhood: 9007199254740993 is the first integer float64 cannot
	// represent; rounding direction must match strconv exactly.
	"9007199254740992", "9007199254740993", "-9007199254740993",
	"9007199254740995", "18014398509481989",
	// Long mantissas (17-19 digits) where naive accumulation drifts.
	"12345678901234567", "123456789012345678", "1234567890123456789",
	"-1234567890123456789", "1.2345678901234567", "0.12345678901234567890",
	// Tiny decimals: every fraction width across the pow10 table and past it.
	"1e-7", "0.0000001", "0.1", "0.2", "0.3", "-0.1",
	"0.000000000000001", "0.0000000000000001", "3.0000000000000004",
	"0.1000000000000000055511151231257827", // decimal midpoint of 0.1
	// Fraction widths at the pow10 boundary (22 exact powers) and beyond.
	"0.0000000000000000000001", "0.00000000000000000000001",
	"1.0000000000000000000001", "4.4501477170144023e-308",
	// Exponent forms, mixed case and signs.
	"1e7", "1E7", "1e+7", "2.5e-3", "-2.5E+3", "1e22", "1e23", "-1e22",
	// Values that round to the same float from different spellings.
	"0.3000000000000000444089209850062616169452667236328125",
	"2.2250738585072011e-308", // the famous PHP/Java hang value
	"2.2250738585072014e-308", // smallest normal
	"5e-324",                  // smallest denormal
	"1.7976931348623157e308",  // largest finite
	// Decimal points with long zero runs on either side.
	"100000000000000.1", "0.00000000000000000000000000001",
	"123456.789", "-123456.789e2", "7.5", "-7.5",
}

// lexNumber tokenizes src (a bare JSON number) through the streaming lexer at
// several chunk sizes and returns the NumValue results.
func lexNumber(t *testing.T, src string) []float64 {
	t.Helper()
	var out []float64
	for _, chunk := range streamChunkSizes {
		it, err := parseStream("["+src+"]", chunk)
		if err != nil {
			t.Fatalf("chunk %d: lex %q: %v", chunk, src, err)
		}
		arr, ok := it.(item.Array)
		if !ok || len(arr) != 1 {
			t.Fatalf("chunk %d: %q parsed to %s", chunk, src, item.JSON(it))
		}
		out = append(out, float64(arr[0].(item.Number)))
	}
	return out
}

// TestNumValueMatchesStrconv is the differential oracle for the number fast
// paths: every corpus value must convert bit-identically to strconv (and so
// to encoding/json) at every refill granularity. Bit comparison, not ==,
// so -0.0 vs 0.0 counts as a divergence.
func TestNumValueMatchesStrconv(t *testing.T) {
	for _, src := range numDiffCorpus {
		want, err := strconv.ParseFloat(src, 64)
		if err != nil {
			t.Fatalf("corpus value %q does not parse: %v", src, err)
		}
		var jsWant float64
		if err := json.Unmarshal([]byte(src), &jsWant); err != nil {
			t.Fatalf("corpus value %q rejected by encoding/json: %v", src, err)
		}
		if math.Float64bits(want) != math.Float64bits(jsWant) {
			t.Fatalf("oracle disagreement on %q: strconv %x, encoding/json %x",
				src, math.Float64bits(want), math.Float64bits(jsWant))
		}
		for i, got := range lexNumber(t, src) {
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("chunk %d: NumValue(%q) = %v (%x), strconv gives %v (%x)",
					streamChunkSizes[i], src, got, math.Float64bits(got),
					want, math.Float64bits(want))
			}
		}
	}
}

// TestNumValueSignedZeroPreserved pins the -0 regression specifically: the
// integer fast path must not negate in the int64 domain, where the zero's
// sign bit does not exist.
func TestNumValueSignedZeroPreserved(t *testing.T) {
	for _, src := range []string{"-0", "-0.0", "-0.000", "-0e0", "-0E-7"} {
		for i, got := range lexNumber(t, src) {
			if !math.Signbit(got) {
				t.Errorf("chunk %d: NumValue(%q) = %v lost the sign bit", streamChunkSizes[i], src, got)
			}
			if got != 0 {
				t.Errorf("chunk %d: NumValue(%q) = %v, want -0.0", streamChunkSizes[i], src, got)
			}
		}
	}
}

// TestNumValueFastPathGuardExact proves the digit-count guard: for every
// value the fast paths accept (<=15-digit mantissa, fraction within the
// exact pow10 range), the computed float must be bit-identical to strconv's
// correctly rounded answer. Driven by quick.Check over random mantissas and
// fraction widths so the property is not limited to the hand-picked corpus.
func TestNumValueFastPathGuardExact(t *testing.T) {
	check := func(mant uint64, fracWidth uint8, neg bool) bool {
		m := mant % 1e15 // at most 15 digits: the fast-path domain
		w := int(fracWidth % 16)
		src := strconv.FormatUint(m, 10)
		if w > 0 {
			for len(src) <= w {
				src = "0" + src
			}
			src = src[:len(src)-w] + "." + src[len(src)-w:]
		}
		if neg {
			src = "-" + src
		}
		want, err := strconv.ParseFloat(src, 64)
		if err != nil {
			return false
		}
		it, err := parseStream("["+src+"]", 64)
		if err != nil {
			return false
		}
		got := float64(it.(item.Array)[0].(item.Number))
		return math.Float64bits(got) == math.Float64bits(want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
