package jsonparse

import (
	"fmt"
	"io"

	"vxq/internal/item"
)

// Parse parses a complete JSON document into an item tree. Trailing
// non-space content is an error.
func Parse(data []byte) (item.Item, error) {
	return parseLexer(NewLexer(data))
}

// ParseReader parses one complete JSON document streamed from r, reading
// through a refillable chunk buffer of chunkSize bytes (DefaultChunkSize
// when chunkSize <= 0). Peak lexer memory is O(chunkSize), independent of
// the document size; the resulting item tree is of course proportional to
// the document.
func ParseReader(r io.Reader, chunkSize int) (item.Item, error) {
	return parseLexer(NewStreamLexer(r, chunkSize))
}

func parseLexer(l *Lexer) (item.Item, error) {
	if err := l.Next(); err != nil {
		return nil, err
	}
	it, err := parseValue(l)
	if err != nil {
		return nil, err
	}
	if err := l.Next(); err != nil {
		return nil, err
	}
	if l.Kind != TokEOF {
		return nil, fmt.Errorf("json: offset %d: trailing content after document", l.Offset())
	}
	return it, nil
}

// parseValue parses the value whose first token is the lexer's current
// token; on return the current token is the value's last token.
func parseValue(l *Lexer) (item.Item, error) {
	switch l.Kind {
	case TokNull:
		return item.Null{}, nil
	case TokTrue:
		return item.Bool(true), nil
	case TokFalse:
		return item.Bool(false), nil
	case TokNumber:
		n, err := l.NumValue()
		if err != nil {
			return nil, err
		}
		return item.Number(n), nil
	case TokString:
		return l.internStringItem(), nil
	case TokLBracket:
		return parseArray(l)
	case TokLBrace:
		return parseObject(l)
	case TokEOF:
		return nil, fmt.Errorf("json: unexpected end of input")
	default:
		return nil, fmt.Errorf("json: offset %d: unexpected token %s", l.Offset(), l.Kind)
	}
}

func parseArray(l *Lexer) (item.Item, error) {
	var arr item.Array
	if err := l.Next(); err != nil {
		return nil, err
	}
	if l.Kind == TokRBracket {
		return item.Array{}, nil
	}
	for {
		it, err := parseValue(l)
		if err != nil {
			return nil, err
		}
		arr = append(arr, it)
		if err := l.Next(); err != nil {
			return nil, err
		}
		switch l.Kind {
		case TokComma:
			if err := l.Next(); err != nil {
				return nil, err
			}
		case TokRBracket:
			return arr, nil
		default:
			return nil, fmt.Errorf("json: offset %d: expected ',' or ']', got %s", l.Offset(), l.Kind)
		}
	}
}

func parseObject(l *Lexer) (item.Item, error) {
	var keys []string
	var vals []item.Item
	if err := l.Next(); err != nil {
		return nil, err
	}
	if l.Kind == TokRBrace {
		return item.MustObject(nil, nil), nil
	}
	for {
		if l.Kind != TokString {
			return nil, fmt.Errorf("json: offset %d: expected object key, got %s", l.Offset(), l.Kind)
		}
		key := l.InternKey()
		if err := l.Next(); err != nil {
			return nil, err
		}
		if l.Kind != TokColon {
			return nil, fmt.Errorf("json: offset %d: expected ':', got %s", l.Offset(), l.Kind)
		}
		if err := l.Next(); err != nil {
			return nil, err
		}
		v, err := parseValue(l)
		if err != nil {
			return nil, err
		}
		keys = append(keys, key)
		vals = append(vals, v)
		if err := l.Next(); err != nil {
			return nil, err
		}
		switch l.Kind {
		case TokComma:
			if err := l.Next(); err != nil {
				return nil, err
			}
		case TokRBrace:
			return item.NewObject(keys, vals)
		default:
			return nil, fmt.Errorf("json: offset %d: expected ',' or '}', got %s", l.Offset(), l.Kind)
		}
	}
}

// internStringItem materializes the current TokString token as a boxed
// item.String through the lexer's string-item cache: a value repeated across
// records (status codes, enum-like fields) costs its string copy and
// interface allocation once, and zero allocations on every later occurrence.
// The cache shares maxInternEntries with the key intern table; past the cap,
// values are materialized per occurrence.
func (l *Lexer) internStringItem() item.Item {
	if it, ok := l.strItems[string(l.str)]; ok { // no-alloc map probe
		return it
	}
	s := item.String(l.str)
	var it item.Item = s
	if l.strItems == nil {
		l.strItems = make(map[string]item.Item, 16)
	}
	if len(l.strItems) < maxInternEntries {
		l.strItems[string(s)] = it
	}
	return it
}

// skipCurrent consumes the value whose first token is the current token
// without materializing anything; on return the current token is the
// value's last token. It normally runs the structural raw scan
// (Lexer.SkipValueRaw); a lexer put in token-reference mode (SkipTokens)
// uses the token-level skipValue instead, which differential tests and the
// before/after benchmarks compare against.
func skipCurrent(l *Lexer) error {
	if l.skipMode == SkipTokens {
		return skipValue(l)
	}
	return l.SkipValueRaw()
}

// skipValue is the token-level reference skip: it drives the lexer through
// every token of the skipped value. It costs full tokenization (escape
// decoding, number shape checks) and exists as the differential-testing
// oracle for SkipValueRaw.
func skipValue(l *Lexer) error {
	switch l.Kind {
	case TokNull, TokTrue, TokFalse, TokNumber, TokString:
		return nil
	case TokLBracket:
		depth := 1
		for depth > 0 {
			if err := l.Next(); err != nil {
				return err
			}
			switch l.Kind {
			case TokLBracket, TokLBrace:
				depth++
			case TokRBracket, TokRBrace:
				depth--
			case TokEOF:
				return fmt.Errorf("json: unexpected end of input in array")
			}
		}
		return nil
	case TokLBrace:
		depth := 1
		for depth > 0 {
			if err := l.Next(); err != nil {
				return err
			}
			switch l.Kind {
			case TokLBracket, TokLBrace:
				depth++
			case TokRBracket, TokRBrace:
				depth--
			case TokEOF:
				return fmt.Errorf("json: unexpected end of input in object")
			}
		}
		return nil
	default:
		return fmt.Errorf("json: offset %d: unexpected token %s", l.Offset(), l.Kind)
	}
}
