package jsonparse

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"vxq/internal/item"
)

// StepKind identifies one navigation step of a projection path.
type StepKind uint8

// Projection step kinds, mirroring the JSONiq navigation expressions of the
// paper (§3.2): Value by key, Value by index, and keys-or-members.
const (
	// StepKey descends into the value stored under Key of an object
	// (JSONiq value expression with a field name).
	StepKey StepKind = iota
	// StepIndex selects the Index-th (1-based) member of an array
	// (JSONiq value expression with an index).
	StepIndex
	// StepMembers enumerates all members of an array, or all keys of an
	// object (JSONiq keys-or-members expression).
	StepMembers
)

// Step is one navigation step.
type Step struct {
	Kind  StepKind
	Key   string // for StepKey
	Index int    // for StepIndex, 1-based
}

// Path is a sequence of navigation steps. It is the type of the DATASCAN
// second argument: DATASCAN applies the path to each document while parsing,
// emitting only the matching sub-items.
type Path []Step

// KeyStep returns a Value-by-key step.
func KeyStep(key string) Step { return Step{Kind: StepKey, Key: key} }

// IndexStep returns a Value-by-index step (1-based).
func IndexStep(i int) Step { return Step{Kind: StepIndex, Index: i} }

// MembersStep returns a keys-or-members step.
func MembersStep() Step { return Step{Kind: StepMembers} }

// String renders the path in JSONiq postfix syntax, e.g. ("root")()("results")().
func (p Path) String() string {
	var b strings.Builder
	for _, s := range p {
		switch s.Kind {
		case StepKey:
			b.WriteString("(")
			b.WriteString(strconv.Quote(s.Key))
			b.WriteString(")")
		case StepIndex:
			fmt.Fprintf(&b, "(%d)", s.Index)
		case StepMembers:
			b.WriteString("()")
		}
	}
	return b.String()
}

// Equal reports whether two paths are identical.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Append returns a new path with extra steps appended (the receiver is not
// modified).
func (p Path) Append(steps ...Step) Path {
	out := make(Path, 0, len(p)+len(steps))
	out = append(out, p...)
	return append(out, steps...)
}

// ParsePath parses the JSONiq postfix rendering of a path, e.g.
// ("root")()("results")()("date") or ("items")(3), the inverse of
// Path.String.
func ParsePath(s string) (Path, error) {
	var p Path
	i := 0
	for i < len(s) {
		// Skip whitespace between steps.
		for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n') {
			i++
		}
		if i == len(s) {
			break
		}
		if s[i] != '(' {
			return nil, fmt.Errorf("jsonparse: path offset %d: expected '(', got %q", i, s[i])
		}
		i++
		if i < len(s) && s[i] == ')' {
			p = append(p, MembersStep())
			i++
			continue
		}
		if i < len(s) && s[i] == '"' {
			j := i + 1
			var key []byte
			for j < len(s) && s[j] != '"' {
				if s[j] == '\\' && j+1 < len(s) {
					j++
				}
				key = append(key, s[j])
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("jsonparse: path offset %d: unterminated key", i)
			}
			i = j + 1
			if i >= len(s) || s[i] != ')' {
				return nil, fmt.Errorf("jsonparse: path offset %d: expected ')'", i)
			}
			i++
			p = append(p, KeyStep(string(key)))
			continue
		}
		// Numeric index.
		j := i
		n := 0
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			n = n*10 + int(s[j]-'0')
			j++
		}
		if j == i || j >= len(s) || s[j] != ')' {
			return nil, fmt.Errorf("jsonparse: path offset %d: expected index or quoted key", i)
		}
		if n < 1 {
			return nil, fmt.Errorf("jsonparse: path offset %d: index must be >= 1", i)
		}
		i = j + 1
		p = append(p, IndexStep(n))
	}
	if len(p) == 0 {
		return nil, fmt.Errorf("jsonparse: empty path")
	}
	return p, nil
}

// ApplyPath applies a projection path to a materialized item, returning the
// resulting sequence. It implements the JSONiq navigation semantics mapped
// over sequences and is the (slow) reference for the streaming projector.
func ApplyPath(it item.Item, path Path) item.Sequence {
	seq := item.Single(it)
	for _, s := range path {
		seq = ApplyStep(seq, s)
	}
	return seq
}

// ApplyStep applies one navigation step to every item of a sequence and
// concatenates the results.
func ApplyStep(seq item.Sequence, s Step) item.Sequence {
	var out item.Sequence
	for _, it := range seq {
		switch s.Kind {
		case StepKey:
			if o, ok := it.(*item.Object); ok {
				if v := o.Value(s.Key); v != nil {
					out = append(out, v)
				}
			}
		case StepIndex:
			if a, ok := it.(item.Array); ok {
				if s.Index >= 1 && s.Index <= len(a) {
					out = append(out, a[s.Index-1])
				}
			}
		case StepMembers:
			switch x := it.(type) {
			case item.Array:
				out = append(out, x...)
			case *item.Object:
				for _, k := range x.Keys() {
					out = append(out, item.String(k))
				}
			}
		}
	}
	return out
}

// Project streams over a raw JSON document, applies path while parsing, and
// calls emit for every item the path yields, in document order. Subtrees not
// on the path are scanned but never materialized. If emit returns an error,
// projection stops and that error is returned.
//
// Project(data, nil, emit) emits the whole document (equivalent to Parse).
func Project(data []byte, path Path, emit func(item.Item) error) error {
	return projectLexer(NewLexer(data), path, emit)
}

// ProjectReader streams over a JSON document read from r through a
// refillable chunk buffer of chunkSize bytes (DefaultChunkSize when
// chunkSize <= 0), applying path while parsing exactly like Project. The
// whole file is never materialized: peak memory is O(chunkSize + largest
// emitted item), not O(file size). Error offsets are absolute file offsets.
func ProjectReader(r io.Reader, chunkSize int, path Path, emit func(item.Item) error) error {
	return projectLexer(NewStreamLexer(r, chunkSize), path, emit)
}

// ScanValues processes a concatenated stream of top-level JSON values (the
// generalization of a single-document file: NDJSON, newline-separated
// records, or one whole document), applying path to each value and emitting
// the projected items. Only values whose line starts at an absolute offset
// < limit are processed (limit < 0 means unbounded); a value is parsed to
// completion even when it extends past the limit. This is exactly the morsel
// ownership rule: a record belongs to the byte range its line start falls
// in, where the line start is the offset just past the last '\n' before the
// record (LineStart). Anchoring ownership at the newline — not at the
// record's first non-whitespace byte — keeps the producer's cut-off
// consistent with the consumer's SkipPastNewline alignment, so a record
// preceded by post-newline whitespace that straddles a boundary is emitted
// exactly once. It returns the number of top-level values processed.
func ScanValues(l *Lexer, path Path, limit int64, emit func(item.Item) error) (int, error) {
	return ScanRecords(l, path, limit, func(_ int64, it item.Item) error { return emit(it) })
}

// ScanRecords is ScanValues with record provenance: emit additionally
// receives the line-start offset of the record each projected item came from
// (the same offset ScanValues bounds with limit). Zone-map builds use it to
// assign per-record stats to byte-range zones that line up exactly with
// morsel ownership.
func ScanRecords(l *Lexer, path Path, limit int64, emit func(lineStart int64, it item.Item) error) (int, error) {
	n := 0
	// One closure for the whole scan (not one per record): start is rebound
	// each iteration, keeping the hot path at zero allocations per record.
	var start int64
	wrapped := func(it item.Item) error { return emit(start, it) }
	for {
		done, err := l.AtEOF()
		if err != nil {
			return n, err
		}
		if done {
			return n, nil
		}
		start = l.LineStart()
		if limit >= 0 && start >= limit {
			return n, nil
		}
		if err := l.Next(); err != nil {
			return n, err
		}
		if l.Kind == TokEOF {
			return n, nil
		}
		if err := projectValue(l, path, wrapped); err != nil {
			return n, err
		}
		n++
	}
}

func projectLexer(l *Lexer, path Path, emit func(item.Item) error) error {
	if err := l.Next(); err != nil {
		return err
	}
	if err := projectValue(l, path, emit); err != nil {
		return err
	}
	if err := l.Next(); err != nil {
		return err
	}
	if l.Kind != TokEOF {
		return fmt.Errorf("json: offset %d: trailing content after document", l.Offset())
	}
	return nil
}

// projectValue processes the value whose first token is current, applying
// path[0:] to it. On return the current token is the value's last token.
func projectValue(l *Lexer, path Path, emit func(item.Item) error) error {
	if len(path) == 0 {
		it, err := parseValue(l)
		if err != nil {
			return err
		}
		return emit(it)
	}
	step := path[0]
	rest := path[1:]
	switch l.Kind {
	case TokLBrace:
		switch step.Kind {
		case StepKey:
			return projectObjectKey(l, step.Key, rest, emit)
		case StepMembers:
			return projectObjectKeys(l, rest, emit)
		default: // StepIndex on an object yields nothing.
			return skipCurrent(l)
		}
	case TokLBracket:
		switch step.Kind {
		case StepMembers:
			return projectArrayMembers(l, rest, emit)
		case StepIndex:
			return projectArrayIndex(l, step.Index, rest, emit)
		default: // StepKey on an array yields nothing.
			return skipCurrent(l)
		}
	default:
		// A scalar with remaining path steps yields nothing.
		return skipCurrent(l)
	}
}

// bytesEqString reports b == s without converting either side (neither
// []byte(s) nor string(b) — the projector compares one candidate key per
// object member, so an allocation here would dominate the skip path).
func bytesEqString(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		if b[i] != s[i] {
			return false
		}
	}
	return true
}

func projectObjectKey(l *Lexer, key string, rest Path, emit func(item.Item) error) error {
	// Current token is '{'. Member boundaries, keys and colons are consumed
	// by the raw member scan, and non-matching values by SkipNextValue, so
	// a member that is not projected never materializes a single token.
	first := true
	for {
		kb, closed, err := l.objectMember(first)
		if err != nil {
			return err
		}
		if closed {
			return nil
		}
		first = false
		if bytesEqString(kb, key) {
			if err := l.Next(); err != nil {
				return err
			}
			if err := projectValue(l, rest, emit); err != nil {
				return err
			}
		} else if err := l.SkipNextValue(); err != nil {
			return err
		}
	}
}

func projectObjectKeys(l *Lexer, rest Path, emit func(item.Item) error) error {
	// keys-or-members on an object: emit each key (a string item) after
	// applying the remaining path to it. A string with remaining steps
	// yields nothing, so only an empty rest emits.
	first := true
	for {
		kb, closed, err := l.objectMember(first)
		if err != nil {
			return err
		}
		if closed {
			return nil
		}
		first = false
		if len(rest) == 0 {
			if err := emit(item.String(l.internBytes(kb))); err != nil {
				return err
			}
		}
		if err := l.SkipNextValue(); err != nil {
			return err
		}
	}
}

func projectArrayMembers(l *Lexer, rest Path, emit func(item.Item) error) error {
	if err := l.Next(); err != nil {
		return err
	}
	if l.Kind == TokRBracket {
		return nil
	}
	for {
		if err := projectValue(l, rest, emit); err != nil {
			return err
		}
		if err := l.Next(); err != nil {
			return err
		}
		switch l.Kind {
		case TokComma:
			if err := l.Next(); err != nil {
				return err
			}
		case TokRBracket:
			return nil
		default:
			return fmt.Errorf("json: offset %d: expected ',' or ']', got %s", l.Offset(), l.Kind)
		}
	}
}

func projectArrayIndex(l *Lexer, index int, rest Path, emit func(item.Item) error) error {
	if err := l.Next(); err != nil {
		return err
	}
	if l.Kind == TokRBracket {
		return nil
	}
	pos := 1
	for {
		if pos == index {
			if err := projectValue(l, rest, emit); err != nil {
				return err
			}
		} else if err := skipCurrent(l); err != nil {
			return err
		}
		if err := l.Next(); err != nil {
			return err
		}
		switch l.Kind {
		case TokComma:
			pos++
			if err := l.Next(); err != nil {
				return err
			}
		case TokRBracket:
			return nil
		default:
			return fmt.Errorf("json: offset %d: expected ',' or ']', got %s", l.Offset(), l.Kind)
		}
	}
}
