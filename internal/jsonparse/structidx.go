// Structural index kernel: the word-at-a-time (SWAR) phase-1 pass of the
// two-phase parse design (simdjson; Keiser & Lemire, "On-Demand JSON").
//
// Phase 1 consumes the input 8 bytes at a time and emits, per 64-byte block,
// bitmaps of the characters that can change the scanner's state: quotes,
// backslashes, the structural characters {}[],:, newlines and control bytes.
// From the quote and backslash bitmaps it derives the two masks that make
// phase 2 trivial: the escape mask (characters following an odd-length
// backslash run, computed branch-free with the carry-save trick simdjson
// uses) and the in-string mask (a prefix XOR over unescaped quotes). Both
// carry state across 64-bit words and across chunk refills, exactly the way
// the byte-at-a-time raw-skip state machine carries depth/string state.
//
// Phase 2 consumers never re-lex: the indexed skip (lexer.go) jumps
// structural-to-structural through the Open/Close bitmaps, the indexed string
// scan jumps to the next quote/backslash event, and the record-boundary
// scanner (BoundaryScanner) turns the newline-outside-string bitmap into
// exact morsel split points.
//
// Everything here is pure SWAR over uint64 words — no assembly, no unsafe —
// so it runs on every GOARCH at a large multiple of the byte-loop's
// throughput (see BENCH_parse.json, bitmap_builder).
package jsonparse

import (
	"encoding/binary"
	"math/bits"
)

// SWAR broadcast constants. A pattern like swarQuote holds the target byte
// replicated into every lane; swarLo/swarHi are the classic low-bit/high-bit
// lane masks of the zero-byte test.
const (
	swarLo    uint64 = 0x0101010101010101
	swarHi    uint64 = 0x8080808080808080
	swar7F    uint64 = 0x7f7f7f7f7f7f7f7f
	swarQuote uint64 = 0x2222222222222222 // '"'
	swarBsl   uint64 = 0x5c5c5c5c5c5c5c5c // '\\'
	swarNL    uint64 = 0x0a0a0a0a0a0a0a0a // '\n'
	swarComma uint64 = 0x2c2c2c2c2c2c2c2c // ','
	swarColon uint64 = 0x3a3a3a3a3a3a3a3a // ':'
	swarCtl   uint64 = 0xe0e0e0e0e0e0e0e0 // top-3-bits mask: (b & 0xE0)==0 <=> b < 0x20
	swarBit5  uint64 = 0x2020202020202020 // ORing bit 5 folds {,[ together and },] together
	swarOpen  uint64 = 0x7b7b7b7b7b7b7b7b // '{' (and '[' after |0x20)
	swarClose uint64 = 0x7d7d7d7d7d7d7d7d // '}' (and ']' after |0x20)
	swarEven  uint64 = 0x5555555555555555 // bits at even positions
	swarOdd   uint64 = 0xaaaaaaaaaaaaaaaa // bits at odd positions
	swar05    uint64 = 0x0505050505050505 // range bias: lane + 5 overflows bit 7 iff lane >= 0x7b
)

// zeroLanes returns a mask with the high bit of every all-zero byte lane set.
// This is the exact (carry-free) variant: each lane is decided independently,
// so the result is usable as a per-position bitmap, not just a "was there a
// zero" flag.
func zeroLanes(v uint64) uint64 {
	return ^(((v & swar7F) + swar7F) | v | swar7F)
}

// looseZeroLanes is the cheap three-op zero test. Borrows from lower lanes
// can set false-positive bits, but only ABOVE the lowest true zero lane: the
// lowest set bit is always a real match, and a zero result exactly means "no
// zero lane". Use it to find the first event in a word or to prove a word
// empty; never as a positional bitmap.
func looseZeroLanes(v uint64) uint64 {
	return (v - swarLo) &^ v
}

// packHighBits collapses the 8 lane-high bits of a zeroLanes-style mask into
// the low 8 bits (bit i = lane i), via the classic multiply gather. The
// magic constant places each lane's bit at a distinct position of the top
// byte with no carry interference.
func packHighBits(m uint64) uint64 {
	return ((m >> 7) * 0x0102040810204080) >> 56
}

// prefixXor computes the running XOR of all lower bits for every bit
// position: bit i of the result is the parity of bits [0..i] of m. Applied
// to an unescaped-quote bitmap it yields the in-string mask (the opening
// quote is marked inside, the closing quote outside), the SWAR stand-in for
// the carry-less multiply simdjson uses.
func prefixXor(m uint64) uint64 {
	m ^= m << 1
	m ^= m << 2
	m ^= m << 4
	m ^= m << 8
	m ^= m << 16
	m ^= m << 32
	return m
}

// StructState carries the two bits of scanner state that cross word, block
// and chunk boundaries: whether the next byte is escaped (a backslash run of
// odd length ended exactly at the boundary) and whether the next byte is
// inside a string. The zero value is the state at any position that is
// outside a string and not preceded by a dangling backslash — e.g. right
// after a structural character, which is where every indexed scan starts.
type StructState struct {
	prevEscaped  uint64 // bit 0 set: the next processed byte is escaped
	prevInString uint64 // all-ones: the next processed byte is inside a string
}

func (st *StructState) inString() bool    { return st.prevInString != 0 }
func (st *StructState) nextEscaped() bool { return st.prevEscaped != 0 }

// findEscaped returns the mask of characters that follow an odd-length run
// of backslashes (i.e. are escaped), given the backslash bitmap of one
// block, and updates the cross-block carry. Branch-free: odd-length runs are
// found by adding the run starts on odd positions into the run bodies and
// watching which sums land on even positions (simdjson's algorithm).
func (st *StructState) findEscaped(bslash uint64) uint64 {
	bslash &^= st.prevEscaped // an escaped backslash does not itself escape
	follows := bslash<<1 | st.prevEscaped
	oddStarts := bslash & swarOdd &^ follows
	seq, carry := bits.Add64(oddStarts, bslash, 0)
	st.prevEscaped = carry
	return (swarEven ^ (seq << 1)) & follows
}

// BlockMasks is the full structural index of one 64-byte block: the raw
// per-character bitmaps plus the derived escape/in-string masks. Bit i
// describes byte i of the block.
type BlockMasks struct {
	Quote      uint64 // '"' bytes (raw, including escaped ones)
	Backslash  uint64 // '\\' bytes
	Escaped    uint64 // bytes following an odd-length backslash run
	InString   uint64 // bytes inside a string (opening quote in, closing out)
	Structural uint64 // {}[],: outside strings
	Open       uint64 // '{' and '[' outside strings
	Close      uint64 // '}' and ']' outside strings
	Newline    uint64 // '\n' outside strings (record separators)
	CtlInStr   uint64 // unescaped control characters inside strings (errors)
}

// rawMasks holds the parity-independent byte-classification bitmaps of one
// 64-byte block: pure character classes, before any escape or string state
// is applied. The speculative parallel indexer (specidx.go) keeps these raw
// layers per block so a chunk's masks can be finalized under either
// in-string parity after stitching.
type rawMasks struct {
	quote, bslash, open, close, comma, colon, nl, ctl uint64
}

// classifyBlock runs the SWAR character classification over one full 64-byte
// block, writing the result through r. b must have at least 64 bytes.
//
// The outparam shape (instead of returning rawMasks by value) is what lets
// IndexBlock and the speculative indexer share this one loop: the eight
// accumulators live in registers for the whole loop and are stored exactly
// once at the end, so a caller whose *rawMasks is a non-escaping stack slot
// pays one 64-byte store instead of the return-slot copy that made the
// by-value version ~14% slower for the fused sequential builder.
func classifyBlock(b []byte, r *rawMasks) {
	var quote, bslash, open, close, comma, colon, nl, ctl uint64
	_ = b[63]
	for w := 0; w < 8; w++ {
		x := binary.LittleEndian.Uint64(b[8*w:])
		m := x | swarBit5
		sh := uint(8 * w)
		quote |= packHighBits(zeroLanes(x^swarQuote)) << sh
		bslash |= packHighBits(zeroLanes(x^swarBsl)) << sh
		open |= packHighBits(zeroLanes(m^swarOpen)) << sh
		close |= packHighBits(zeroLanes(m^swarClose)) << sh
		comma |= packHighBits(zeroLanes(x^swarComma)) << sh
		colon |= packHighBits(zeroLanes(x^swarColon)) << sh
		nl |= packHighBits(zeroLanes(x^swarNL)) << sh
		ctl |= packHighBits(zeroLanes(x&swarCtl)) << sh
	}
	*r = rawMasks{quote, bslash, open, close, comma, colon, nl, ctl}
}

// derive applies resolved escape and in-string masks to the raw character
// classes, producing the block's final structural index.
func (r rawMasks) derive(escaped, inStr uint64) BlockMasks {
	return BlockMasks{
		Quote:      r.quote,
		Backslash:  r.bslash,
		Escaped:    escaped,
		InString:   inStr,
		Structural: (r.open | r.close | r.comma | r.colon) &^ inStr,
		Open:       r.open &^ inStr,
		Close:      r.close &^ inStr,
		Newline:    r.nl &^ inStr,
		CtlInStr:   r.ctl & inStr &^ escaped,
	}
}

// IndexBlock runs phase 1 over one full 64-byte block, emitting every bitmap
// layer. b must have at least 64 bytes. It is the reference entry point the
// differential tests and the bitmap-builder benchmark exercise; the skip and
// string hot loops use slimmer internal variants of the same arithmetic.
//
// The classification loop is shared with the speculative indexer via
// classifyBlock; its outparam shape keeps this path free of the return-slot
// copy that an earlier by-value version paid (the fused-loop bounds in
// parse_bench_test.go pin the throughput either way).
func IndexBlock(b []byte, st *StructState) BlockMasks {
	var r rawMasks
	classifyBlock(b, &r)
	escaped := st.findEscaped(r.bslash)
	inStr := prefixXor(r.quote&^escaped) ^ st.prevInString
	st.prevInString = uint64(int64(inStr) >> 63)
	return r.derive(escaped, inStr)
}

// stringEventMask flags the bytes of one word that the string scanner must
// look at: quotes, backslashes and control characters. Loose semantics
// (false positives possible above the first event only): callers take the
// lowest set bit, which is always a real event, or rely on zero meaning
// "nothing here".
func stringEventMask(x uint64) uint64 {
	return (looseZeroLanes(x^swarQuote) | looseZeroLanes(x^swarBsl) |
		looseZeroLanes(x&swarCtl)) & swarHi
}

// structEventMask flags the bytes of one word that matter outside a string:
// quotes and the four brackets. The brackets cost three ops total: |0x20
// folds them into 0x7b/0x7d, and a biased add overflows bit 7 exactly for
// folded lanes >= 0x7b (the add is per-lane exact — bit 7 is cleared first,
// so no carry crosses lanes). The fold-range also admits a few bytes that
// are never structural (\ ^ _ | ~ DEL and some non-ASCII); those and the
// loose-quote false positives are fine because callers re-check the byte at
// the reported position and skip non-events — exactly what the byte-class
// machine does with such bytes outside a string. Commas, colons and
// whitespace never change the skip scanner's state and are not probed.
func structEventMask(x uint64) uint64 {
	return (looseZeroLanes(x^swarQuote) | (((x | swarBit5) & swar7F) + swar05)) & swarHi
}

// stringSeek returns the position of the next string event (quote, backslash
// or control byte) at or after p, or len(buf) when the window holds none. The
// word probes use loose masks, whose lowest set bit is always a real event,
// so the returned position is exact. The three-deep structure — 64-byte
// unrolled probes, single-word probes, byte tail — keeps every load free of
// bounds checks: the re-sliced window w has constant length, so the
// constant-index loads inside it need no checks at all.
func stringSeek(buf []byte, p int) int {
	for len(buf)-p >= 64 {
		w := buf[p : p+64 : p+64]
		m0 := stringEventMask(binary.LittleEndian.Uint64(w[0:8]))
		m1 := stringEventMask(binary.LittleEndian.Uint64(w[8:16]))
		m2 := stringEventMask(binary.LittleEndian.Uint64(w[16:24]))
		m3 := stringEventMask(binary.LittleEndian.Uint64(w[24:32]))
		if m0|m1|m2|m3 != 0 {
			switch {
			case m0 != 0:
				return p + bits.TrailingZeros64(m0)>>3
			case m1 != 0:
				return p + 8 + bits.TrailingZeros64(m1)>>3
			case m2 != 0:
				return p + 16 + bits.TrailingZeros64(m2)>>3
			default:
				return p + 24 + bits.TrailingZeros64(m3)>>3
			}
		}
		m0 = stringEventMask(binary.LittleEndian.Uint64(w[32:40]))
		m1 = stringEventMask(binary.LittleEndian.Uint64(w[40:48]))
		m2 = stringEventMask(binary.LittleEndian.Uint64(w[48:56]))
		m3 = stringEventMask(binary.LittleEndian.Uint64(w[56:64]))
		if m0|m1|m2|m3 != 0 {
			switch {
			case m0 != 0:
				return p + 32 + bits.TrailingZeros64(m0)>>3
			case m1 != 0:
				return p + 40 + bits.TrailingZeros64(m1)>>3
			case m2 != 0:
				return p + 48 + bits.TrailingZeros64(m2)>>3
			default:
				return p + 56 + bits.TrailingZeros64(m3)>>3
			}
		}
		p += 64
	}
	for len(buf)-p >= 8 {
		w := buf[p : p+8 : p+8]
		m := stringEventMask(binary.LittleEndian.Uint64(w))
		if m == 0 {
			p += 8
			continue
		}
		return p + bits.TrailingZeros64(m)>>3
	}
	for p < len(buf) {
		if c := buf[p]; c == '"' || c == '\\' || c < 0x20 {
			return p
		}
		p++
	}
	return p
}

// structSeek returns the position of the next structural-event candidate
// outside a string (a quote or one of the four brackets) at or after p, or
// len(buf) when the window holds none. Unlike stringSeek the word probes may
// report a position holding a fold-range false positive (see structEventMask)
// — never a miss — so callers re-check the byte and step over non-events.
// Bounds-check story as in stringSeek.
func structSeek(buf []byte, p int) int {
	for len(buf)-p >= 64 {
		w := buf[p : p+64 : p+64]
		m0 := structEventMask(binary.LittleEndian.Uint64(w[0:8]))
		m1 := structEventMask(binary.LittleEndian.Uint64(w[8:16]))
		m2 := structEventMask(binary.LittleEndian.Uint64(w[16:24]))
		m3 := structEventMask(binary.LittleEndian.Uint64(w[24:32]))
		if m0|m1|m2|m3 != 0 {
			switch {
			case m0 != 0:
				return p + bits.TrailingZeros64(m0)>>3
			case m1 != 0:
				return p + 8 + bits.TrailingZeros64(m1)>>3
			case m2 != 0:
				return p + 16 + bits.TrailingZeros64(m2)>>3
			default:
				return p + 24 + bits.TrailingZeros64(m3)>>3
			}
		}
		m0 = structEventMask(binary.LittleEndian.Uint64(w[32:40]))
		m1 = structEventMask(binary.LittleEndian.Uint64(w[40:48]))
		m2 = structEventMask(binary.LittleEndian.Uint64(w[48:56]))
		m3 = structEventMask(binary.LittleEndian.Uint64(w[56:64]))
		if m0|m1|m2|m3 != 0 {
			switch {
			case m0 != 0:
				return p + 32 + bits.TrailingZeros64(m0)>>3
			case m1 != 0:
				return p + 40 + bits.TrailingZeros64(m1)>>3
			case m2 != 0:
				return p + 48 + bits.TrailingZeros64(m2)>>3
			default:
				return p + 56 + bits.TrailingZeros64(m3)>>3
			}
		}
		p += 64
	}
	for len(buf)-p >= 8 {
		w := buf[p : p+8 : p+8]
		m := structEventMask(binary.LittleEndian.Uint64(w))
		if m == 0 {
			p += 8
			continue
		}
		return p + bits.TrailingZeros64(m)>>3
	}
	for p < len(buf) {
		switch buf[p] {
		case '"', '{', '[', '}', ']':
			return p
		}
		p++
	}
	return p
}

// BoundaryScanner is the phase-2 record-boundary iterator: fed the raw bytes
// of a newline-delimited file in order (it is an io.Writer, designed to sit
// on a TeeReader under a streaming scan), it walks the newline-outside-string
// bitmap and records the first record start — the byte after a '\n' that
// lies outside every string — at or after each multiple of grain. The
// resulting split offsets are exact morsel boundaries: every one is the true
// start of a record, with string state tracked from offset 0, so a newline
// escape sequence (or any quote/backslash run) straddling a would-be
// boundary can never produce a bogus split.
//
// The zero grain means "every record start" — unbounded memory on big files,
// meant for tests. Peak state is otherwise O(splits), i.e. O(file/grain).
type BoundaryScanner struct {
	st     StructState
	off    int64 // absolute offset of tail[0] (== bytes consumed - ntail)
	grain  int64
	next   int64 // smallest grid point not yet satisfied
	splits []int64
	tail   [64]byte // partial block carried between Write calls
	ntail  int
}

// NewBoundaryScanner returns a scanner that records the first record start
// at or after every multiple of grain bytes (every record start when grain
// is 0). Offset 0 is always an implicit record start and is not recorded.
func NewBoundaryScanner(grain int64) *BoundaryScanner {
	if grain < 0 {
		grain = 0
	}
	s := &BoundaryScanner{grain: grain}
	s.next = grain
	if grain == 0 {
		s.next = 1
	}
	return s
}

// Write feeds the next bytes of the file. It never fails; the error is for
// io.Writer conformance.
func (s *BoundaryScanner) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if s.ntail > 0 || len(p) < 64 {
			c := copy(s.tail[s.ntail:], p)
			s.ntail += c
			p = p[c:]
			if s.ntail == 64 {
				s.block(s.tail[:])
				s.off += 64
				s.ntail = 0
			}
			continue
		}
		s.block(p[:64])
		s.off += 64
		p = p[64:]
	}
	return n, nil
}

// Close flushes the partial final block. Padding bytes are zero, which can
// never be '\n', so they add no boundaries.
func (s *BoundaryScanner) Close() error {
	if s.ntail > 0 {
		for i := s.ntail; i < 64; i++ {
			s.tail[i] = 0
		}
		s.block(s.tail[:])
		s.off += int64(s.ntail)
		s.ntail = 0
	}
	return nil
}

// Splits returns the recorded record-start offsets, ascending. Call after
// Close.
func (s *BoundaryScanner) Splits() []int64 { return s.splits }

func (s *BoundaryScanner) block(b []byte) {
	m := IndexBlock(b, &s.st)
	nl := m.Newline
	for nl != 0 {
		i := bits.TrailingZeros64(nl)
		nl &= nl - 1
		start := s.off + int64(i) + 1
		if start < s.next {
			continue
		}
		s.splits = append(s.splits, start)
		if s.grain == 0 {
			s.next = start + 1
		} else {
			s.next = (start/s.grain + 1) * s.grain
		}
	}
}
