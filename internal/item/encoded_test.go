package item

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// The encoded-form kernels must agree exactly with the decoded forms: these
// property tests are the consistency guarantee DESIGN.md advertises.

func TestQuickHashEncodedMatchesHashSeq(t *testing.T) {
	f := func(a, b, c anyItem, n uint8) bool {
		s := Sequence{a.It, b.It, c.It}[:int(n)%4]
		buf := EncodeSeq(nil, s)
		h, err := HashEncoded(buf)
		return err == nil && h == HashSeq(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickEqualEncodedMatchesEqualSeq(t *testing.T) {
	f := func(a, b, c, d anyItem, na, nb uint8) bool {
		// Small alphabets in randomItem make accidental equality common
		// enough that both branches of the property are exercised.
		s := Sequence{a.It, b.It}[:1+int(na)%2]
		u := Sequence{c.It, d.It}[:1+int(nb)%2]
		eq, err := EqualEncoded(EncodeSeq(nil, s), EncodeSeq(nil, u))
		return err == nil && eq == EqualSeq(s, u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickEqualEncodedSelf: every sequence (NaN-free, as randomItem only
// emits finite numbers) is EqualEncoded to itself, and re-encoding a
// key-shuffled copy of each object stays both equal and hash-identical even
// though the bytes differ.
func TestQuickEqualEncodedShuffledObjects(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(a anyItem) bool {
		s := Sequence{a.It}
		shuf := Sequence{shuffleKeys(r, a.It)}
		ea, es := EncodeSeq(nil, s), EncodeSeq(nil, shuf)
		eq, err := EqualEncoded(ea, es)
		if err != nil || !eq {
			return false
		}
		ha, err1 := HashEncoded(ea)
		hs, err2 := HashEncoded(es)
		return err1 == nil && err2 == nil && ha == hs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// shuffleKeys deep-copies an item, permuting every object's key order.
func shuffleKeys(r *rand.Rand, it Item) Item {
	switch x := it.(type) {
	case Array:
		out := make(Array, len(x))
		for i, m := range x {
			out[i] = shuffleKeys(r, m)
		}
		return out
	case *Object:
		perm := r.Perm(len(x.keys))
		keys := make([]string, len(x.keys))
		vals := make([]Item, len(x.vals))
		for i, p := range perm {
			keys[i] = x.keys[p]
			vals[i] = shuffleKeys(r, x.vals[p])
		}
		return MustObject(keys, vals)
	default:
		return it
	}
}

func TestEqualEncodedFloatSemantics(t *testing.T) {
	enc := func(f float64) []byte { return EncodeSeq(nil, Single(Number(f))) }
	negZero, posZero := enc(math.Copysign(0, -1)), enc(0)
	if eq, err := EqualEncoded(negZero, posZero); err != nil || !eq {
		t.Errorf("-0.0 vs 0.0: eq=%v err=%v, want true (bytes differ, values equal)", eq, err)
	}
	nan := enc(math.NaN())
	if eq, err := EqualEncoded(nan, nan); err != nil || eq {
		t.Errorf("NaN vs NaN: eq=%v err=%v, want false (matching decoded Equal)", eq, err)
	}
	// NaN still hashes deterministically by its bit pattern, like hashItem.
	h1, err1 := HashEncoded(nan)
	h2, err2 := HashEncoded(nan)
	if err1 != nil || err2 != nil || h1 != h2 || h1 != HashSeq(Single(Number(math.NaN()))) {
		t.Errorf("NaN hash: %d/%v vs %d/%v vs %d", h1, err1, h2, err2, HashSeq(Single(Number(math.NaN()))))
	}
}

func TestEncodedKernelsRejectMalformedInput(t *testing.T) {
	bad := [][]byte{
		{},                        // no sequence count
		{1},                       // count 1 but no item
		{1, 0xff},                 // unknown tag
		{1, tagNumber, 1, 2, 3},   // truncated number
		{1, tagString, 10, 'a'},   // truncated string
		{1, tagArray, 2, tagNull}, // truncated array
		{1, tagObject, 1, 3, 'a'}, // truncated object key
		{1, tagDateTime, 0x90},    // unterminated year uvarint
		{2, tagNull},              // count overruns items
		{1, tagObject, 1, 1, 'a'}, // key with no value
	}
	good := EncodeSeq(nil, Single(String("x")))
	for i, buf := range bad {
		if _, err := HashEncoded(buf); err == nil {
			t.Errorf("HashEncoded(bad[%d]) = nil error", i)
		}
		if _, err := EqualEncoded(buf, good); err == nil {
			// A count mismatch short-circuits before structural errors are
			// reachable, which is fine — only flag cases that claim equality.
			if eq, _ := EqualEncoded(buf, good); eq {
				t.Errorf("EqualEncoded(bad[%d], good) = true", i)
			}
		}
	}
	if _, err := HashEncoded(append(EncodeSeq(nil, nil), 0x00)); err == nil {
		t.Error("HashEncoded with trailing bytes: want error")
	}
}

func TestSeqCountEncoded(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		s := make(Sequence, n)
		for i := range s {
			s[i] = Number(float64(i))
		}
		buf := EncodeSeq(nil, s)
		got, err := SeqCountEncoded(buf)
		if err != nil || got != int64(n) {
			t.Errorf("SeqCountEncoded(%d items) = %d, %v", n, got, err)
		}
		if IsEmptySeqEncoded(buf) != (n == 0) {
			t.Errorf("IsEmptySeqEncoded(%d items) = %v", n, IsEmptySeqEncoded(buf))
		}
	}
	if _, err := SeqCountEncoded(nil); err == nil {
		t.Error("SeqCountEncoded(nil): want error")
	}
	if IsEmptySeqEncoded(nil) {
		t.Error("IsEmptySeqEncoded(nil) = true")
	}
}
