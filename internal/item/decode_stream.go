package item

import (
	"bufio"
	"fmt"
	"io"
	"math"
)

// DecodeReader decodes one binary-encoded item streamed from r through a
// buffered reader of chunkSize bytes, returning the item and the number of
// encoded bytes consumed. It is the streaming counterpart of Decode: the raw
// encoding is never materialized whole, so reading a pre-converted (ADM)
// document costs O(chunk + decoded tree), not O(encoded size + decoded
// tree). The reader is left positioned just past the item's last byte
// modulo the buffered look-ahead, so callers that need a trailing-bytes
// check should read through the returned decoder state instead; TrailingByte
// reports whether any encoded byte follows the document.
func DecodeReader(r io.Reader, chunkSize int) (*StreamDecoder, Item, error) {
	if chunkSize < 16 {
		chunkSize = 16
	}
	d := &StreamDecoder{br: bufio.NewReaderSize(r, chunkSize)}
	it, err := d.value()
	return d, it, err
}

// StreamDecoder is the streaming state of DecodeReader.
type StreamDecoder struct {
	br      *bufio.Reader
	n       int64
	keys    map[string]string // object-key intern table
	scratch []byte            // key bytes before interning
}

// maxKeyInterns caps the intern table so adversarial documents with
// unbounded distinct keys cannot grow it without limit; past the cap the
// decoder falls back to plain allocation per key.
const maxKeyInterns = 1 << 12

// Consumed reports the number of encoded bytes decoded so far.
func (d *StreamDecoder) Consumed() int64 { return d.n }

// TrailingByte reports whether at least one more byte follows the decoded
// item (trailing content in a single-document file is an error for ADM
// scans).
func (d *StreamDecoder) TrailingByte() (bool, error) {
	_, err := d.br.ReadByte()
	if err == io.EOF {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

func (d *StreamDecoder) readByte() (byte, error) {
	b, err := d.br.ReadByte()
	if err == io.EOF {
		return 0, fmt.Errorf("item: truncated document")
	}
	if err == nil {
		d.n++
	}
	return b, err
}

func (d *StreamDecoder) readUvarint() (uint64, error) {
	var v uint64
	for shift := 0; ; shift += 7 {
		if shift >= 64 {
			return 0, fmt.Errorf("item: uvarint overflow")
		}
		b, err := d.readByte()
		if err != nil {
			return 0, err
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
}

func (d *StreamDecoder) readFull(p []byte) error {
	n, err := io.ReadFull(d.br, p)
	d.n += int64(n)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("item: truncated document")
	}
	return err
}

// readString reads a uvarint-prefixed string.
func (d *StreamDecoder) readString() (string, error) {
	n, err := d.readUvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(math.MaxInt32) {
		return "", fmt.Errorf("item: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if err := d.readFull(buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// readKey reads a uvarint-prefixed object key, interned so that documents
// with repeating record schemas (the common ADM shape) share one string per
// distinct key instead of allocating it once per record. The map probe on
// a []byte compiles without an allocation, so hits are alloc-free.
func (d *StreamDecoder) readKey() (string, error) {
	n, err := d.readUvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(math.MaxInt32) {
		return "", fmt.Errorf("item: implausible string length %d", n)
	}
	if uint64(cap(d.scratch)) < n {
		d.scratch = make([]byte, n)
	}
	buf := d.scratch[:n]
	if err := d.readFull(buf); err != nil {
		return "", err
	}
	if s, ok := d.keys[string(buf)]; ok {
		return s, nil
	}
	s := string(buf)
	if len(d.keys) < maxKeyInterns {
		if d.keys == nil {
			d.keys = make(map[string]string)
		}
		d.keys[s] = s
	}
	return s, nil
}

func (d *StreamDecoder) value() (Item, error) {
	tag, err := d.readByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNull:
		return Null{}, nil
	case tagFalse:
		return Bool(false), nil
	case tagTrue:
		return Bool(true), nil
	case tagNumber:
		var b [8]byte
		if err := d.readFull(b[:]); err != nil {
			return nil, err
		}
		bits := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
		return Number(math.Float64frombits(bits)), nil
	case tagString:
		s, err := d.readString()
		if err != nil {
			return nil, err
		}
		return String(s), nil
	case tagArray:
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		arr := make(Array, 0, capHint(n))
		for i := uint64(0); i < n; i++ {
			it, err := d.value()
			if err != nil {
				return nil, err
			}
			arr = append(arr, it)
		}
		return arr, nil
	case tagObject:
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		keys := make([]string, 0, capHint(n))
		vals := make([]Item, 0, capHint(n))
		for i := uint64(0); i < n; i++ {
			k, err := d.readKey()
			if err != nil {
				return nil, err
			}
			v, err := d.value()
			if err != nil {
				return nil, err
			}
			keys = append(keys, k)
			vals = append(vals, v)
		}
		return &Object{keys: keys, vals: vals}, nil
	case tagDateTime:
		y, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		var b [5]byte
		if err := d.readFull(b[:]); err != nil {
			return nil, err
		}
		return DateTime{
			Year: int(y), Month: int(b[0]), Day: int(b[1]),
			Hour: int(b[2]), Minute: int(b[3]), Second: int(b[4]),
		}, nil
	default:
		return nil, fmt.Errorf("item: unknown tag 0x%02x", tag)
	}
}

// capHint bounds a decoded count before it is trusted as an allocation
// size, so corrupt headers cannot force huge allocations up front.
func capHint(n uint64) int {
	if n > 1024 {
		return 1024
	}
	return int(n)
}
