package item

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// Encoded-form kernels: hashing and equality computed directly over the
// binary encoding produced by Encode/EncodeSeq, without materializing Items.
// Hyracks-style operators (group-by tables, hash exchanges, join build/probe)
// use these so that routing and key comparison never pay for decoding.
//
// Consistency guarantee (property-tested in encoded_test.go): for any
// sequences s and t,
//
//	HashEncoded(EncodeSeq(nil, s))  == HashSeq(s)
//	EqualEncoded(EncodeSeq(nil, s), EncodeSeq(nil, t)) == EqualSeq(s, t)
//
// In particular the kernels preserve the decoded forms' semantics exactly:
// numbers compare by float64 value (so -0.0 == 0.0 and NaN != NaN, even
// though NaN hashes by its bit pattern — the same pre-existing asymmetry the
// decoded Equal/Hash64 pair has), and object equality and hashing are
// independent of key order. Because equal values can therefore have
// different encodings (object key order, negative zero), byte equality of
// encodings implies value equality only for non-NaN data; callers that
// byte-compare as a fast path must fall back to EqualEncoded on mismatch.
//
// All kernels expect well-formed encodings (the only producers are
// Encode/EncodeSeq); malformed input yields an error, never a panic.

const fnvOffset64 = 14695981039346656037

// HashEncoded hashes an encoded sequence, returning exactly
// HashSeq(DecodeSeq(buf)).
func HashEncoded(buf []byte) (uint64, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return 0, fmt.Errorf("item: bad sequence count")
	}
	var h uint64 = fnvOffset64
	h = hashUint64(h, n)
	pos := w
	var err error
	for i := uint64(0); i < n; i++ {
		h, pos, err = hashEncodedItem(h, buf, pos)
		if err != nil {
			return 0, err
		}
	}
	if pos != len(buf) {
		return 0, fmt.Errorf("item: %d trailing bytes after sequence", len(buf)-pos)
	}
	return h, nil
}

// EqualEncoded reports equality of two encoded sequences, returning exactly
// EqualSeq(DecodeSeq(a), DecodeSeq(b)). It never decodes items: strings and
// keys compare as raw bytes, numbers by their float64 value, objects by a
// key-order-independent pair scan.
func EqualEncoded(a, b []byte) (bool, error) {
	na, wa := binary.Uvarint(a)
	if wa <= 0 {
		return false, fmt.Errorf("item: bad sequence count")
	}
	nb, wb := binary.Uvarint(b)
	if wb <= 0 {
		return false, fmt.Errorf("item: bad sequence count")
	}
	if na != nb {
		return false, nil
	}
	ap, bp := wa, wb
	for i := uint64(0); i < na; i++ {
		eq, nap, nbp, err := equalEncodedItem(a, ap, b, bp)
		if err != nil || !eq {
			return false, err
		}
		ap, bp = nap, nbp
	}
	return true, nil
}

// SeqCountEncoded returns the number of items in an encoded sequence by
// reading only the leading count — the fast path for count() aggregates.
func SeqCountEncoded(buf []byte) (int64, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return 0, fmt.Errorf("item: bad sequence count")
	}
	return int64(n), nil
}

// IsEmptySeqEncoded reports whether buf encodes the empty sequence.
func IsEmptySeqEncoded(buf []byte) bool {
	n, w := binary.Uvarint(buf)
	return w > 0 && n == 0
}

// hashEncodedItem folds one encoded item at buf[pos:] into h, mirroring
// hashItem over the decoded form, and returns the new hash and the position
// just past the item.
func hashEncodedItem(h uint64, buf []byte, pos int) (uint64, int, error) {
	if pos >= len(buf) {
		return 0, 0, fmt.Errorf("item: decode on empty buffer")
	}
	tag := buf[pos]
	pos++
	switch tag {
	case tagNull:
		return hashByte(h, byte(KindNull)), pos, nil
	case tagFalse:
		return hashByte(hashByte(h, byte(KindBool)), 0), pos, nil
	case tagTrue:
		return hashByte(hashByte(h, byte(KindBool)), 1), pos, nil
	case tagNumber:
		if pos+8 > len(buf) {
			return 0, 0, fmt.Errorf("item: truncated number")
		}
		h = hashByte(h, byte(KindNumber))
		// The encoding stores the float64 bits little-endian, which is the
		// exact byte order hashUint64 consumes — hash the raw bytes.
		for i := 0; i < 8; i++ {
			h = hashByte(h, buf[pos+i])
		}
		return h, pos + 8, nil
	case tagString:
		n, w := binary.Uvarint(buf[pos:])
		if w <= 0 {
			return 0, 0, fmt.Errorf("item: bad string length")
		}
		pos += w
		end := pos + int(n)
		if int(n) < 0 || end > len(buf) {
			return 0, 0, fmt.Errorf("item: truncated string")
		}
		h = hashByte(h, byte(KindString))
		for ; pos < end; pos++ {
			h = hashByte(h, buf[pos])
		}
		return h, end, nil
	case tagArray:
		n, w := binary.Uvarint(buf[pos:])
		if w <= 0 {
			return 0, 0, fmt.Errorf("item: bad array count")
		}
		pos += w
		h = hashByte(h, byte(KindArray))
		h = hashUint64(h, n)
		var err error
		for i := uint64(0); i < n; i++ {
			h, pos, err = hashEncodedItem(h, buf, pos)
			if err != nil {
				return 0, 0, err
			}
		}
		return h, pos, nil
	case tagObject:
		n, w := binary.Uvarint(buf[pos:])
		if w <= 0 {
			return 0, 0, fmt.Errorf("item: bad object count")
		}
		pos += w
		h = hashByte(h, byte(KindObject))
		h = hashUint64(h, n)
		// Key-order independence: combine per-pair hashes with XOR, exactly
		// as hashItem does over the decoded object.
		var acc uint64
		for i := uint64(0); i < n; i++ {
			kl, kw := binary.Uvarint(buf[pos:])
			if kw <= 0 {
				return 0, 0, fmt.Errorf("item: bad object key length")
			}
			pos += kw
			kend := pos + int(kl)
			if int(kl) < 0 || kend > len(buf) {
				return 0, 0, fmt.Errorf("item: truncated object key")
			}
			var ph uint64 = fnvOffset64
			for ; pos < kend; pos++ {
				ph = hashByte(ph, buf[pos])
			}
			var err error
			ph, pos, err = hashEncodedItem(ph, buf, pos)
			if err != nil {
				return 0, 0, err
			}
			acc ^= ph
		}
		return hashUint64(h, acc), pos, nil
	case tagDateTime:
		y, w := binary.Uvarint(buf[pos:])
		if w <= 0 {
			return 0, 0, fmt.Errorf("item: bad dateTime year")
		}
		pos += w
		if pos+5 > len(buf) {
			return 0, 0, fmt.Errorf("item: truncated dateTime")
		}
		h = hashByte(h, byte(KindDateTime))
		packed := y<<40 | uint64(buf[pos])<<32 | uint64(buf[pos+1])<<24 |
			uint64(buf[pos+2])<<16 | uint64(buf[pos+3])<<8 | uint64(buf[pos+4])
		return hashUint64(h, packed), pos + 5, nil
	default:
		return 0, 0, fmt.Errorf("item: unknown tag 0x%02x", tag)
	}
}

// equalEncodedItem compares the encoded items at a[ap:] and b[bp:],
// returning whether they are equal and, when they are, the positions just
// past each. When eq is false the returned positions are meaningless.
func equalEncodedItem(a []byte, ap int, b []byte, bp int) (bool, int, int, error) {
	if ap >= len(a) || bp >= len(b) {
		return false, 0, 0, fmt.Errorf("item: decode on empty buffer")
	}
	ta, tb := a[ap], b[bp]
	switch {
	case ta == tagNull && tb == tagNull:
		return true, ap + 1, bp + 1, nil
	case (ta == tagFalse || ta == tagTrue) && (tb == tagFalse || tb == tagTrue):
		return ta == tb, ap + 1, bp + 1, nil
	case ta == tagNumber && tb == tagNumber:
		if ap+9 > len(a) || bp+9 > len(b) {
			return false, 0, 0, fmt.Errorf("item: truncated number")
		}
		// Compare by float64 value, not by bytes: -0.0 == 0.0 and
		// NaN != NaN, matching the decoded Equal.
		fa := math.Float64frombits(binary.LittleEndian.Uint64(a[ap+1:]))
		fb := math.Float64frombits(binary.LittleEndian.Uint64(b[bp+1:]))
		return fa == fb, ap + 9, bp + 9, nil
	case ta == tagString && tb == tagString:
		sa, nap, err := encodedBytes(a, ap+1, "string")
		if err != nil {
			return false, 0, 0, err
		}
		sb, nbp, err := encodedBytes(b, bp+1, "string")
		if err != nil {
			return false, 0, 0, err
		}
		return bytes.Equal(sa, sb), nap, nbp, nil
	case ta == tagArray && tb == tagArray:
		na, ap2, err := encodedCount(a, ap+1, "array")
		if err != nil {
			return false, 0, 0, err
		}
		nb, bp2, err := encodedCount(b, bp+1, "array")
		if err != nil {
			return false, 0, 0, err
		}
		if na != nb {
			return false, 0, 0, nil
		}
		for i := uint64(0); i < na; i++ {
			eq, nap, nbp, err := equalEncodedItem(a, ap2, b, bp2)
			if err != nil || !eq {
				return false, 0, 0, err
			}
			ap2, bp2 = nap, nbp
		}
		return true, ap2, bp2, nil
	case ta == tagObject && tb == tagObject:
		return equalEncodedObject(a, ap, b, bp)
	case ta == tagDateTime && tb == tagDateTime:
		ya, ap2, err := encodedCount(a, ap+1, "dateTime")
		if err != nil || ap2+5 > len(a) {
			return false, 0, 0, truncated(err, "dateTime")
		}
		yb, bp2, err := encodedCount(b, bp+1, "dateTime")
		if err != nil || bp2+5 > len(b) {
			return false, 0, 0, truncated(err, "dateTime")
		}
		eq := ya == yb && bytes.Equal(a[ap2:ap2+5], b[bp2:bp2+5])
		return eq, ap2 + 5, bp2 + 5, nil
	default:
		// Distinct kinds never compare equal; still reject unknown tags.
		if !validTag(ta) {
			return false, 0, 0, fmt.Errorf("item: unknown tag 0x%02x", ta)
		}
		if !validTag(tb) {
			return false, 0, 0, fmt.Errorf("item: unknown tag 0x%02x", tb)
		}
		return false, 0, 0, nil
	}
}

// equalEncodedObject compares two encoded objects key-order-independently:
// for each pair of a it scans b for the first pair with a byte-equal key
// (object keys are unique, so the first match is the only one) and compares
// the values. ap and bp point at the object tags.
func equalEncodedObject(a []byte, ap int, b []byte, bp int) (bool, int, int, error) {
	na, apos, err := encodedCount(a, ap+1, "object")
	if err != nil {
		return false, 0, 0, err
	}
	nb, bpairs, err := encodedCount(b, bp+1, "object")
	if err != nil {
		return false, 0, 0, err
	}
	if na != nb {
		return false, 0, 0, nil
	}
	// The scan below visits b's pairs out of order, so compute b's end
	// position up front with a single structural skip.
	bEnd, err := skipEncodedItem(b, bp)
	if err != nil {
		return false, 0, 0, err
	}
	for i := uint64(0); i < na; i++ {
		akey, aval, err := encodedKey(a, apos)
		if err != nil {
			return false, 0, 0, err
		}
		found := false
		sp := bpairs
		for j := uint64(0); j < nb; j++ {
			bkey, bval, err := encodedKey(b, sp)
			if err != nil {
				return false, 0, 0, err
			}
			if bytes.Equal(akey, bkey) {
				eq, nap, _, err := equalEncodedItem(a, aval, b, bval)
				if err != nil || !eq {
					return false, 0, 0, err
				}
				apos = nap
				found = true
				break
			}
			if sp, err = skipEncodedItem(b, bval); err != nil {
				return false, 0, 0, err
			}
		}
		if !found {
			return false, 0, 0, nil
		}
	}
	return true, apos, bEnd, nil
}

// skipEncodedItem advances past the encoded item at buf[pos:] without
// interpreting it beyond its structure.
func skipEncodedItem(buf []byte, pos int) (int, error) {
	if pos >= len(buf) {
		return 0, fmt.Errorf("item: decode on empty buffer")
	}
	tag := buf[pos]
	pos++
	switch tag {
	case tagNull, tagFalse, tagTrue:
		return pos, nil
	case tagNumber:
		if pos+8 > len(buf) {
			return 0, fmt.Errorf("item: truncated number")
		}
		return pos + 8, nil
	case tagString:
		_, pos, err := encodedBytes(buf, pos, "string")
		return pos, err
	case tagArray:
		n, pos, err := encodedCount(buf, pos, "array")
		if err != nil {
			return 0, err
		}
		for i := uint64(0); i < n; i++ {
			if pos, err = skipEncodedItem(buf, pos); err != nil {
				return 0, err
			}
		}
		return pos, nil
	case tagObject:
		n, pos, err := encodedCount(buf, pos, "object")
		if err != nil {
			return 0, err
		}
		for i := uint64(0); i < n; i++ {
			_, vpos, err := encodedKey(buf, pos)
			if err != nil {
				return 0, err
			}
			if pos, err = skipEncodedItem(buf, vpos); err != nil {
				return 0, err
			}
		}
		return pos, nil
	case tagDateTime:
		_, pos, err := encodedCount(buf, pos, "dateTime")
		if err != nil {
			return 0, err
		}
		if pos+5 > len(buf) {
			return 0, fmt.Errorf("item: truncated dateTime")
		}
		return pos + 5, nil
	default:
		return 0, fmt.Errorf("item: unknown tag 0x%02x", tag)
	}
}

// encodedCount reads a uvarint at buf[pos:] (an array/object count or a
// dateTime year) and returns it with the following position.
func encodedCount(buf []byte, pos int, what string) (uint64, int, error) {
	n, w := binary.Uvarint(buf[pos:])
	if w <= 0 {
		return 0, 0, fmt.Errorf("item: bad %s count", what)
	}
	return n, pos + w, nil
}

// encodedBytes reads a uvarint-length-prefixed byte run at buf[pos:]
// (a string payload or an object key) and returns it with the following
// position.
func encodedBytes(buf []byte, pos int, what string) ([]byte, int, error) {
	n, w := binary.Uvarint(buf[pos:])
	if w <= 0 {
		return nil, 0, fmt.Errorf("item: bad %s length", what)
	}
	pos += w
	end := pos + int(n)
	if int(n) < 0 || end > len(buf) {
		return nil, 0, fmt.Errorf("item: truncated %s", what)
	}
	return buf[pos:end], end, nil
}

// encodedKey reads the key of an object pair at buf[pos:], returning the key
// bytes and the position of the pair's value.
func encodedKey(buf []byte, pos int) ([]byte, int, error) {
	return encodedBytes(buf, pos, "object key")
}

func validTag(t byte) bool { return t <= tagDateTime }

func truncated(err error, what string) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("item: truncated %s", what)
}
