// Package item implements the JSONiq data model used throughout the engine:
// JSON items (null, boolean, number, string, object, array), the xs:dateTime
// item produced by the dateTime() constructor, and sequences of items.
//
// Items are immutable after construction. The package also provides a compact
// binary encoding (used for tuple fields inside Hyracks frames), structural
// equality, ordering for group-by/join keys, and 64-bit hashing.
package item

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of an Item.
type Kind uint8

// The item kinds of the JSONiq data model plus xs:dateTime.
const (
	KindNull Kind = iota
	KindBool
	KindNumber
	KindString
	KindArray
	KindObject
	KindDateTime
)

// String returns the JSONiq name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindArray:
		return "array"
	case KindObject:
		return "object"
	case KindDateTime:
		return "dateTime"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Item is a single value of the JSONiq data model.
//
// The concrete types are Null, Bool, Number, String, Array, *Object and
// DateTime. Items are treated as immutable: operators share them freely
// across tuples and partitions.
type Item interface {
	// Kind reports the dynamic type of the item.
	Kind() Kind
	// appendJSON appends the canonical JSON (or JSONiq literal) rendering.
	appendJSON(dst []byte) []byte
}

// Null is the JSON null item.
type Null struct{}

// Bool is a JSON boolean item.
type Bool bool

// Number is a JSON number item. Numbers are carried as float64, which is
// sufficient for the sensor workloads of the paper; integral values are
// printed without a fractional part.
type Number float64

// String is a JSON string item.
type String string

// Array is a JSON array item: an ordered list of members.
type Array []Item

// Object is a JSON object item: an ordered set of key/value pairs.
// Key order is preserved from the input; duplicate keys keep the first
// occurrence (as JSONiq requires objects to have unique keys, the parser
// rejects duplicates).
type Object struct {
	keys []string
	vals []Item
}

// DateTime is the xs:dateTime item produced by the dateTime() constructor
// function. Only the components needed by the paper's queries are modeled.
type DateTime struct {
	Year, Month, Day     int
	Hour, Minute, Second int
}

func (Null) Kind() Kind     { return KindNull }
func (Bool) Kind() Kind     { return KindBool }
func (Number) Kind() Kind   { return KindNumber }
func (String) Kind() Kind   { return KindString }
func (Array) Kind() Kind    { return KindArray }
func (*Object) Kind() Kind  { return KindObject }
func (DateTime) Kind() Kind { return KindDateTime }

// NewObject builds an object from parallel key/value slices. It panics if the
// slices have different lengths; duplicate keys are rejected with an error.
func NewObject(keys []string, vals []Item) (*Object, error) {
	if len(keys) != len(vals) {
		panic("item: NewObject key/value length mismatch")
	}
	if len(keys) > 1 {
		seen := make(map[string]struct{}, len(keys))
		for _, k := range keys {
			if _, dup := seen[k]; dup {
				return nil, fmt.Errorf("item: duplicate object key %q", k)
			}
			seen[k] = struct{}{}
		}
	}
	return &Object{keys: keys, vals: vals}, nil
}

// MustObject is NewObject for trusted (test/generator) input.
func MustObject(keys []string, vals []Item) *Object {
	o, err := NewObject(keys, vals)
	if err != nil {
		panic(err)
	}
	return o
}

// ObjectFromPairs builds an object from alternating key, value arguments.
func ObjectFromPairs(pairs ...any) *Object {
	if len(pairs)%2 != 0 {
		panic("item: ObjectFromPairs needs an even number of arguments")
	}
	keys := make([]string, 0, len(pairs)/2)
	vals := make([]Item, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		keys = append(keys, pairs[i].(string))
		vals = append(vals, pairs[i+1].(Item))
	}
	return MustObject(keys, vals)
}

// Len reports the number of pairs in the object.
func (o *Object) Len() int { return len(o.keys) }

// Keys returns the object's keys in insertion order. The returned slice is
// shared and must not be modified.
func (o *Object) Keys() []string { return o.keys }

// Pair returns the i-th key and value.
func (o *Object) Pair(i int) (string, Item) { return o.keys[i], o.vals[i] }

// Value returns the value stored under key, or nil if the key is absent.
func (o *Object) Value(key string) Item {
	for i, k := range o.keys {
		if k == key {
			return o.vals[i]
		}
	}
	return nil
}

// Compare orders two dateTimes chronologically.
func (d DateTime) Compare(e DateTime) int {
	a := [6]int{d.Year, d.Month, d.Day, d.Hour, d.Minute, d.Second}
	b := [6]int{e.Year, e.Month, e.Day, e.Hour, e.Minute, e.Second}
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// ParseDateTime parses an ISO-8601-like dateTime of the forms
// "2006-01-02T15:04", "2006-01-02T15:04:05" or "2006-01-02".
func ParseDateTime(s string) (DateTime, error) {
	var d DateTime
	bad := func() (DateTime, error) {
		return DateTime{}, fmt.Errorf("item: invalid dateTime %q", s)
	}
	date := s
	if i := strings.IndexByte(s, 'T'); i >= 0 {
		date = s[:i]
		clock := s[i+1:]
		parts := strings.Split(clock, ":")
		if len(parts) != 2 && len(parts) != 3 {
			return bad()
		}
		var err error
		if d.Hour, err = atoiStrict(parts[0]); err != nil {
			return bad()
		}
		if d.Minute, err = atoiStrict(parts[1]); err != nil {
			return bad()
		}
		if len(parts) == 3 {
			if d.Second, err = atoiStrict(parts[2]); err != nil {
				return bad()
			}
		}
	}
	dp := strings.Split(date, "-")
	if len(dp) != 3 {
		return bad()
	}
	var err error
	if d.Year, err = atoiStrict(dp[0]); err != nil {
		return bad()
	}
	if d.Month, err = atoiStrict(dp[1]); err != nil {
		return bad()
	}
	if d.Day, err = atoiStrict(dp[2]); err != nil {
		return bad()
	}
	if d.Month < 1 || d.Month > 12 || d.Day < 1 || d.Day > 31 ||
		d.Hour < 0 || d.Hour > 23 || d.Minute < 0 || d.Minute > 59 ||
		d.Second < 0 || d.Second > 60 {
		return bad()
	}
	return d, nil
}

func atoiStrict(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("non-digit %q", c)
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}

// String renders the dateTime in ISO form.
func (d DateTime) String() string {
	return fmt.Sprintf("%04d-%02d-%02dT%02d:%02d:%02d",
		d.Year, d.Month, d.Day, d.Hour, d.Minute, d.Second)
}

// JSON returns the canonical JSON rendering of an item. DateTime renders as
// its ISO string in quotes.
func JSON(it Item) string { return string(AppendJSON(nil, it)) }

// AppendJSON appends the canonical JSON rendering of it to dst.
func AppendJSON(dst []byte, it Item) []byte { return it.appendJSON(dst) }

func (Null) appendJSON(dst []byte) []byte { return append(dst, "null"...) }

func (b Bool) appendJSON(dst []byte) []byte {
	if b {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

func (n Number) appendJSON(dst []byte) []byte {
	f := float64(n)
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.AppendInt(dst, int64(f), 10)
	}
	return strconv.AppendFloat(dst, f, 'g', -1, 64)
}

func (s String) appendJSON(dst []byte) []byte { return appendQuoted(dst, string(s)) }

func (a Array) appendJSON(dst []byte) []byte {
	dst = append(dst, '[')
	for i, m := range a {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = m.appendJSON(dst)
	}
	return append(dst, ']')
}

func (o *Object) appendJSON(dst []byte) []byte {
	dst = append(dst, '{')
	for i, k := range o.keys {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendQuoted(dst, k)
		dst = append(dst, ':')
		dst = o.vals[i].appendJSON(dst)
	}
	return append(dst, '}')
}

func (d DateTime) appendJSON(dst []byte) []byte {
	dst = append(dst, '"')
	dst = append(dst, d.String()...)
	return append(dst, '"')
}

const hexDigits = "0123456789abcdef"

func appendQuoted(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			dst = append(dst, '\\', '"')
		case c == '\\':
			dst = append(dst, '\\', '\\')
		case c >= 0x20:
			dst = append(dst, c)
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\t':
			dst = append(dst, '\\', 't')
		case c == '\r':
			dst = append(dst, '\\', 'r')
		default:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
	}
	return append(dst, '"')
}

// Equal reports deep structural equality of two items. Numbers compare by
// float64 equality; objects compare by key set and per-key values (key order
// does not matter, per the JSONiq data model).
func Equal(a, b Item) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a.Kind() != b.Kind() {
		return false
	}
	switch x := a.(type) {
	case Null:
		return true
	case Bool:
		return x == b.(Bool)
	case Number:
		return x == b.(Number)
	case String:
		return x == b.(String)
	case DateTime:
		return x == b.(DateTime)
	case Array:
		y := b.(Array)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	case *Object:
		y := b.(*Object)
		if len(x.keys) != len(y.keys) {
			return false
		}
		for i, k := range x.keys {
			yv := y.Value(k)
			if yv == nil || !Equal(x.vals[i], yv) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Compare defines a total order over items, used for deterministic result
// ordering and for sort-based operators. The order is: kinds first (by Kind
// value), then within a kind: booleans false<true, numbers numerically,
// strings lexicographically, dateTimes chronologically, arrays element-wise,
// objects by sorted key list then per-key values.
func Compare(a, b Item) int {
	ka, kb := a.Kind(), b.Kind()
	if ka != kb {
		if ka < kb {
			return -1
		}
		return 1
	}
	switch x := a.(type) {
	case Null:
		return 0
	case Bool:
		y := b.(Bool)
		switch {
		case x == y:
			return 0
		case !bool(x):
			return -1
		default:
			return 1
		}
	case Number:
		y := b.(Number)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	case String:
		return strings.Compare(string(x), string(b.(String)))
	case DateTime:
		return x.Compare(b.(DateTime))
	case Array:
		y := b.(Array)
		n := min(len(x), len(y))
		for i := 0; i < n; i++ {
			if c := Compare(x[i], y[i]); c != 0 {
				return c
			}
		}
		return len(x) - len(y)
	case *Object:
		y := b.(*Object)
		xk := append([]string(nil), x.keys...)
		yk := append([]string(nil), y.keys...)
		sort.Strings(xk)
		sort.Strings(yk)
		n := min(len(xk), len(yk))
		for i := 0; i < n; i++ {
			if c := strings.Compare(xk[i], yk[i]); c != 0 {
				return c
			}
			if c := Compare(x.Value(xk[i]), y.Value(yk[i])); c != 0 {
				return c
			}
		}
		return len(xk) - len(yk)
	default:
		return 0
	}
}

// Hash64 returns a 64-bit FNV-1a structural hash, consistent with Equal:
// Equal items hash identically regardless of object key order.
func Hash64(it Item) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	h = hashItem(h, it)
	return h
}

func hashByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * 1099511628211
}

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = hashByte(h, s[i])
	}
	return h
}

func hashUint64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = hashByte(h, byte(v>>(8*i)))
	}
	return h
}

func hashItem(h uint64, it Item) uint64 {
	h = hashByte(h, byte(it.Kind()))
	switch x := it.(type) {
	case Null:
	case Bool:
		if x {
			h = hashByte(h, 1)
		} else {
			h = hashByte(h, 0)
		}
	case Number:
		h = hashUint64(h, math.Float64bits(float64(x)))
	case String:
		h = hashString(h, string(x))
	case DateTime:
		h = hashUint64(h, uint64(x.Year)<<40|uint64(x.Month)<<32|
			uint64(x.Day)<<24|uint64(x.Hour)<<16|uint64(x.Minute)<<8|uint64(x.Second))
	case Array:
		h = hashUint64(h, uint64(len(x)))
		for _, m := range x {
			h = hashItem(h, m)
		}
	case *Object:
		// Key-order independence: combine per-pair hashes with XOR.
		h = hashUint64(h, uint64(len(x.keys)))
		var acc uint64
		for i, k := range x.keys {
			ph := hashString(14695981039346656037, k)
			ph = hashItem(ph, x.vals[i])
			acc ^= ph
		}
		h = hashUint64(h, acc)
	}
	return h
}

// SizeBytes estimates the in-memory footprint of an item in bytes. It is used
// by the memory accountant to track buffered data volumes.
func SizeBytes(it Item) int64 {
	switch x := it.(type) {
	case Null, Bool:
		return 8
	case Number, DateTime:
		return 16
	case String:
		return 16 + int64(len(x))
	case Array:
		var n int64 = 24
		for _, m := range x {
			n += 16 + SizeBytes(m)
		}
		return n
	case *Object:
		var n int64 = 48
		for i, k := range x.keys {
			n += 32 + int64(len(k)) + SizeBytes(x.vals[i])
		}
		return n
	default:
		return 8
	}
}
