package item

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBool: "boolean", KindNumber: "number",
		KindString: "string", KindArray: "array", KindObject: "object",
		KindDateTime: "dateTime", Kind(99): "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestJSONRendering(t *testing.T) {
	obj := ObjectFromPairs(
		"name", String("Everyday Italian"),
		"year", Number(2005),
		"price", Number(30.5),
		"tags", Array{String("a"), Bool(true), Null{}},
	)
	got := JSON(obj)
	want := `{"name":"Everyday Italian","year":2005,"price":30.5,"tags":["a",true,null]}`
	if got != want {
		t.Errorf("JSON = %s, want %s", got, want)
	}
}

func TestJSONEscapes(t *testing.T) {
	s := String("a\"b\\c\nd\te\rf\x01g")
	got := JSON(s)
	want := `"a\"b\\c\nd\te\rf\u0001g"`
	if got != want {
		t.Errorf("JSON = %s, want %s", got, want)
	}
}

func TestNumberRendering(t *testing.T) {
	cases := map[Number]string{
		0: "0", 42: "42", -7: "-7", 30.5: "30.5", 1e20: "1e+20",
		Number(math.Trunc(1e16)): "1e+16",
	}
	for n, want := range cases {
		if got := JSON(n); got != want {
			t.Errorf("JSON(%v) = %q, want %q", float64(n), got, want)
		}
	}
}

func TestObjectAccess(t *testing.T) {
	o := ObjectFromPairs("a", Number(1), "b", String("x"))
	if o.Len() != 2 {
		t.Fatalf("Len = %d", o.Len())
	}
	if v := o.Value("b"); !Equal(v, String("x")) {
		t.Errorf("Value(b) = %v", v)
	}
	if v := o.Value("zzz"); v != nil {
		t.Errorf("Value(zzz) = %v, want nil", v)
	}
	k, v := o.Pair(0)
	if k != "a" || !Equal(v, Number(1)) {
		t.Errorf("Pair(0) = %q,%v", k, v)
	}
}

func TestNewObjectDuplicateKey(t *testing.T) {
	_, err := NewObject([]string{"a", "a"}, []Item{Number(1), Number(2)})
	if err == nil {
		t.Fatal("expected duplicate-key error")
	}
}

func TestEqualObjectKeyOrderIndependent(t *testing.T) {
	a := ObjectFromPairs("x", Number(1), "y", Number(2))
	b := ObjectFromPairs("y", Number(2), "x", Number(1))
	if !Equal(a, b) {
		t.Error("objects with same pairs in different order should be Equal")
	}
	if Hash64(a) != Hash64(b) {
		t.Error("Equal objects must hash identically")
	}
	c := ObjectFromPairs("x", Number(1), "y", Number(3))
	if Equal(a, c) {
		t.Error("different values should not be Equal")
	}
}

func TestEqualMixed(t *testing.T) {
	if Equal(Number(1), String("1")) {
		t.Error("number and string must differ")
	}
	if !Equal(nil, nil) {
		t.Error("nil==nil")
	}
	if Equal(nil, Null{}) {
		t.Error("nil != null item")
	}
	if !Equal(Array{Number(1)}, Array{Number(1)}) {
		t.Error("equal arrays")
	}
	if Equal(Array{Number(1)}, Array{Number(1), Number(2)}) {
		t.Error("different-length arrays")
	}
}

func TestCompareOrder(t *testing.T) {
	// Total order across kinds follows Kind values.
	seq := []Item{
		Null{}, Bool(false), Bool(true), Number(-1), Number(3),
		String("a"), String("b"), Array{Number(1)}, Array{Number(1), Number(0)},
		ObjectFromPairs("a", Number(1)),
		DateTime{Year: 2003, Month: 12, Day: 25},
		DateTime{Year: 2004, Month: 1, Day: 1},
	}
	for i := range seq {
		for j := range seq {
			c := Compare(seq[i], seq[j])
			switch {
			case i < j && c >= 0:
				t.Errorf("Compare(%s,%s) = %d, want <0", JSON(seq[i]), JSON(seq[j]), c)
			case i > j && c <= 0:
				t.Errorf("Compare(%s,%s) = %d, want >0", JSON(seq[i]), JSON(seq[j]), c)
			case i == j && c != 0:
				t.Errorf("Compare(x,x) = %d", c)
			}
		}
	}
}

func TestParseDateTime(t *testing.T) {
	d, err := ParseDateTime("2013-12-25T00:05")
	if err != nil {
		t.Fatal(err)
	}
	want := DateTime{Year: 2013, Month: 12, Day: 25, Minute: 5}
	if d != want {
		t.Errorf("got %+v", d)
	}
	d, err = ParseDateTime("2014-01-02T03:04:05")
	if err != nil {
		t.Fatal(err)
	}
	if d.Second != 5 || d.Hour != 3 {
		t.Errorf("got %+v", d)
	}
	if _, err := ParseDateTime("2014-01-02"); err != nil {
		t.Errorf("date-only should parse: %v", err)
	}
	for _, bad := range []string{"", "xyz", "2014-13-01", "2014-00-01", "2014-01-32", "2014-1", "2014-01-02T99:00", "2014-01-02T1:2:3:4", "20140102"} {
		if _, err := ParseDateTime(bad); err == nil {
			t.Errorf("ParseDateTime(%q) should fail", bad)
		}
	}
}

func TestDateTimeString(t *testing.T) {
	d := DateTime{Year: 2013, Month: 12, Day: 25, Hour: 1, Minute: 2, Second: 3}
	if got := d.String(); got != "2013-12-25T01:02:03" {
		t.Errorf("String = %q", got)
	}
	if got := JSON(d); got != `"2013-12-25T01:02:03"` {
		t.Errorf("JSON = %q", got)
	}
}

func TestSequenceHelpers(t *testing.T) {
	s := Single(Number(1))
	if !s.IsSingleton() {
		t.Error("singleton")
	}
	it, err := s.One()
	if err != nil || !Equal(it, Number(1)) {
		t.Errorf("One = %v, %v", it, err)
	}
	if _, err := Empty.One(); err == nil {
		t.Error("One on empty must fail")
	}
	if _, err := (Sequence{Number(1), Number(2)}).One(); err == nil {
		t.Error("One on pair must fail")
	}
	if JSONSeq(Sequence{Number(1), String("a")}) != `1, "a"` {
		t.Errorf("JSONSeq = %q", JSONSeq(Sequence{Number(1), String("a")}))
	}
}

func TestEffectiveBoolean(t *testing.T) {
	cases := []struct {
		s    Sequence
		want bool
	}{
		{Empty, false},
		{Single(Null{}), false},
		{Single(Bool(false)), false},
		{Single(Bool(true)), true},
		{Single(Number(0)), false},
		{Single(Number(2)), true},
		{Single(String("")), false},
		{Single(String("x")), true},
		{Single(Array{}), true},
		{Single(ObjectFromPairs()), true},
		{Sequence{Number(0), Number(0)}, true},
	}
	for _, c := range cases {
		if got := EffectiveBoolean(c.s); got != c.want {
			t.Errorf("EffectiveBoolean(%s) = %v, want %v", JSONSeq(c.s), got, c.want)
		}
	}
}

func TestEncodeDecodeBasics(t *testing.T) {
	items := []Item{
		Null{}, Bool(true), Bool(false), Number(0), Number(-123.5),
		String(""), String("hello"), String(strings.Repeat("x", 300)),
		Array{}, Array{Number(1), String("a"), Null{}},
		ObjectFromPairs("k", Number(1), "nested", ObjectFromPairs("a", Array{Bool(true)})),
		DateTime{Year: 2013, Month: 12, Day: 25, Hour: 23, Minute: 59, Second: 59},
	}
	for _, it := range items {
		buf := Encode(nil, it)
		got, used, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%s): %v", JSON(it), err)
		}
		if used != len(buf) {
			t.Errorf("Decode(%s) consumed %d of %d bytes", JSON(it), used, len(buf))
		}
		if !Equal(it, got) {
			t.Errorf("round trip %s -> %s", JSON(it), JSON(got))
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{0xff},
		{tagNumber, 1, 2},      // truncated float
		{tagString, 5, 'a'},    // truncated string
		{tagArray, 2, tagNull}, // truncated array
		{tagObject, 1, 3, 'a'}, // truncated key
		{tagObject, 1, 1, 'a'}, // missing value
		{tagDateTime, 0xce, 2}, // truncated dateTime
		{tagString, 0x80},      // unterminated uvarint
	}
	for _, b := range bad {
		if _, _, err := Decode(b); err == nil {
			t.Errorf("Decode(% x) should fail", b)
		}
	}
}

func TestDecodeSeqTrailing(t *testing.T) {
	buf := EncodeSeq(nil, Sequence{Number(1)})
	buf = append(buf, 0x00)
	if _, err := DecodeSeq(buf); err == nil {
		t.Error("trailing bytes should fail")
	}
	empty := EncodeSeq(nil, nil)
	s, err := DecodeSeq(empty)
	if err != nil || len(s) != 0 {
		t.Errorf("empty seq round trip: %v %v", s, err)
	}
}

// randomItem builds a random item of bounded depth for property tests.
func randomItem(r *rand.Rand, depth int) Item {
	k := r.Intn(7)
	if depth <= 0 && k >= 4 {
		k = r.Intn(4)
	}
	switch k {
	case 0:
		return Null{}
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Number(math.Trunc(r.NormFloat64() * 1000))
	case 3:
		b := make([]byte, r.Intn(12))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return String(b)
	case 4:
		n := r.Intn(4)
		a := make(Array, n)
		for i := range a {
			a[i] = randomItem(r, depth-1)
		}
		return a
	case 5:
		n := r.Intn(4)
		keys := make([]string, 0, n)
		vals := make([]Item, 0, n)
		seen := map[string]bool{}
		for i := 0; i < n; i++ {
			k := string(rune('a' + r.Intn(8)))
			if seen[k] {
				continue
			}
			seen[k] = true
			keys = append(keys, k)
			vals = append(vals, randomItem(r, depth-1))
		}
		return MustObject(keys, vals)
	default:
		return DateTime{
			Year: 1990 + r.Intn(40), Month: 1 + r.Intn(12), Day: 1 + r.Intn(28),
			Hour: r.Intn(24), Minute: r.Intn(60), Second: r.Intn(60),
		}
	}
}

type anyItem struct{ It Item }

func (anyItem) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(anyItem{randomItem(r, 3)})
}

func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(a anyItem) bool {
		buf := Encode(nil, a.It)
		got, used, err := Decode(buf)
		return err == nil && used == len(buf) && Equal(a.It, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickHashEqualConsistency(t *testing.T) {
	f := func(a, b anyItem) bool {
		if Equal(a.It, b.It) {
			return Hash64(a.It) == Hash64(b.It)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareConsistency(t *testing.T) {
	f := func(a, b anyItem) bool {
		ab, ba := Compare(a.It, b.It), Compare(b.It, a.It)
		if sign(ab) != -sign(ba) {
			return false
		}
		// Compare==0 must agree with Equal for non-object kinds; objects may
		// compare equal structurally even if key order differs, which Equal
		// also accepts, so equality agreement holds there too.
		if ab == 0 && !Equal(a.It, b.It) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareTransitivity(t *testing.T) {
	f := func(a, b, c anyItem) bool {
		xs := []Item{a.It, b.It, c.It}
		sort.Slice(xs, func(i, j int) bool { return Compare(xs[i], xs[j]) < 0 })
		return Compare(xs[0], xs[1]) <= 0 && Compare(xs[1], xs[2]) <= 0 && Compare(xs[0], xs[2]) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickSeqEncodeRoundTrip(t *testing.T) {
	f := func(a, b, c anyItem, n uint8) bool {
		all := Sequence{a.It, b.It, c.It}
		s := all[:int(n)%4]
		buf := EncodeSeq(nil, s)
		got, err := DecodeSeq(buf)
		return err == nil && EqualSeq(s, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func TestSizeBytesMonotone(t *testing.T) {
	small := ObjectFromPairs("a", Number(1))
	big := ObjectFromPairs("a", Number(1), "b", String(strings.Repeat("x", 100)))
	if SizeBytes(big) <= SizeBytes(small) {
		t.Error("bigger item should report bigger size")
	}
	if SizeBytesSeq(Sequence{small, big}) <= SizeBytes(big) {
		t.Error("sequence size should include all members")
	}
}
