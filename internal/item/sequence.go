package item

import "fmt"

// Sequence is an ordered, possibly empty, sequence of items — the value
// domain of JSONiq expressions. A tuple field always carries a Sequence
// (usually a singleton).
type Sequence []Item

// Empty is the empty sequence.
var Empty = Sequence(nil)

// Single wraps one item into a singleton sequence.
func Single(it Item) Sequence { return Sequence{it} }

// IsSingleton reports whether the sequence contains exactly one item.
func (s Sequence) IsSingleton() bool { return len(s) == 1 }

// One returns the single item of a singleton sequence, or an error otherwise.
func (s Sequence) One() (Item, error) {
	if len(s) != 1 {
		return nil, fmt.Errorf("item: expected singleton sequence, got %d items", len(s))
	}
	return s[0], nil
}

// EqualSeq reports element-wise equality of two sequences.
func EqualSeq(a, b Sequence) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// CompareSeq orders sequences element-wise, shorter-first on ties.
func CompareSeq(a, b Sequence) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}

// HashSeq hashes a sequence consistently with EqualSeq.
func HashSeq(s Sequence) uint64 {
	var h uint64 = 14695981039346656037
	h = hashUint64(h, uint64(len(s)))
	for _, it := range s {
		h = hashItem(h, it)
	}
	return h
}

// JSONSeq renders a sequence as comma-separated JSON values (JSONiq
// serialization of a sequence).
func JSONSeq(s Sequence) string {
	var dst []byte
	for i, it := range s {
		if i > 0 {
			dst = append(dst, ", "...)
		}
		dst = AppendJSON(dst, it)
	}
	return string(dst)
}

// SizeBytesSeq estimates the in-memory footprint of a sequence.
func SizeBytesSeq(s Sequence) int64 {
	var n int64 = 24
	for _, it := range s {
		n += 16 + SizeBytes(it)
	}
	return n
}

// EffectiveBoolean computes the JSONiq effective boolean value of a sequence:
// empty is false; a singleton boolean is itself; a singleton null is false;
// a singleton number is value!=0; a singleton string is len!=0; everything
// else (objects, arrays, longer sequences) is true.
func EffectiveBoolean(s Sequence) bool {
	if len(s) == 0 {
		return false
	}
	if len(s) == 1 {
		switch x := s[0].(type) {
		case Null:
			return false
		case Bool:
			return bool(x)
		case Number:
			return x != 0
		case String:
			return len(x) != 0
		}
	}
	return true
}
