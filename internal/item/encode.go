package item

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding of items and sequences, used as the tuple-field format
// inside Hyracks frames.
//
// Item layout:
//
//	null      0x00
//	false     0x01
//	true      0x02
//	number    0x03 <8-byte little-endian float64 bits>
//	string    0x04 <uvarint len> <bytes>
//	array     0x05 <uvarint count> <items...>
//	object    0x06 <uvarint count> (<uvarint keylen> <key> <item>)...
//	dateTime  0x07 <uvarint year> <5 bytes month..second>
//
// Sequence layout: <uvarint count> <items...>.

const (
	tagNull     = 0x00
	tagFalse    = 0x01
	tagTrue     = 0x02
	tagNumber   = 0x03
	tagString   = 0x04
	tagArray    = 0x05
	tagObject   = 0x06
	tagDateTime = 0x07
)

// Encode appends the binary encoding of it to dst and returns the extended
// slice.
func Encode(dst []byte, it Item) []byte {
	switch x := it.(type) {
	case Null:
		return append(dst, tagNull)
	case Bool:
		if x {
			return append(dst, tagTrue)
		}
		return append(dst, tagFalse)
	case Number:
		dst = append(dst, tagNumber)
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(float64(x)))
		return append(dst, b[:]...)
	case String:
		dst = append(dst, tagString)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		return append(dst, x...)
	case Array:
		dst = append(dst, tagArray)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		for _, m := range x {
			dst = Encode(dst, m)
		}
		return dst
	case *Object:
		dst = append(dst, tagObject)
		dst = binary.AppendUvarint(dst, uint64(len(x.keys)))
		for i, k := range x.keys {
			dst = binary.AppendUvarint(dst, uint64(len(k)))
			dst = append(dst, k...)
			dst = Encode(dst, x.vals[i])
		}
		return dst
	case DateTime:
		dst = append(dst, tagDateTime)
		dst = binary.AppendUvarint(dst, uint64(x.Year))
		return append(dst, byte(x.Month), byte(x.Day), byte(x.Hour), byte(x.Minute), byte(x.Second))
	default:
		panic(fmt.Sprintf("item: cannot encode %T", it))
	}
}

// Decode decodes one item from buf, returning the item and the number of
// bytes consumed.
func Decode(buf []byte) (Item, int, error) {
	if len(buf) == 0 {
		return nil, 0, fmt.Errorf("item: decode on empty buffer")
	}
	tag := buf[0]
	switch tag {
	case tagNull:
		return Null{}, 1, nil
	case tagFalse:
		return Bool(false), 1, nil
	case tagTrue:
		return Bool(true), 1, nil
	case tagNumber:
		if len(buf) < 9 {
			return nil, 0, fmt.Errorf("item: truncated number")
		}
		bits := binary.LittleEndian.Uint64(buf[1:9])
		return Number(math.Float64frombits(bits)), 9, nil
	case tagString:
		n, w := binary.Uvarint(buf[1:])
		if w <= 0 {
			return nil, 0, fmt.Errorf("item: bad string length")
		}
		start := 1 + w
		end := start + int(n)
		if end > len(buf) || int(n) < 0 {
			return nil, 0, fmt.Errorf("item: truncated string")
		}
		return String(buf[start:end]), end, nil
	case tagArray:
		n, w := binary.Uvarint(buf[1:])
		if w <= 0 {
			return nil, 0, fmt.Errorf("item: bad array count")
		}
		pos := 1 + w
		arr := make(Array, 0, n)
		for i := uint64(0); i < n; i++ {
			it, used, err := Decode(buf[pos:])
			if err != nil {
				return nil, 0, err
			}
			arr = append(arr, it)
			pos += used
		}
		return arr, pos, nil
	case tagObject:
		n, w := binary.Uvarint(buf[1:])
		if w <= 0 {
			return nil, 0, fmt.Errorf("item: bad object count")
		}
		pos := 1 + w
		keys := make([]string, 0, n)
		vals := make([]Item, 0, n)
		for i := uint64(0); i < n; i++ {
			kl, kw := binary.Uvarint(buf[pos:])
			if kw <= 0 {
				return nil, 0, fmt.Errorf("item: bad object key length")
			}
			pos += kw
			if pos+int(kl) > len(buf) {
				return nil, 0, fmt.Errorf("item: truncated object key")
			}
			keys = append(keys, string(buf[pos:pos+int(kl)]))
			pos += int(kl)
			it, used, err := Decode(buf[pos:])
			if err != nil {
				return nil, 0, err
			}
			vals = append(vals, it)
			pos += used
		}
		return &Object{keys: keys, vals: vals}, pos, nil
	case tagDateTime:
		y, w := binary.Uvarint(buf[1:])
		if w <= 0 {
			return nil, 0, fmt.Errorf("item: bad dateTime year")
		}
		pos := 1 + w
		if pos+5 > len(buf) {
			return nil, 0, fmt.Errorf("item: truncated dateTime")
		}
		d := DateTime{
			Year:   int(y),
			Month:  int(buf[pos]),
			Day:    int(buf[pos+1]),
			Hour:   int(buf[pos+2]),
			Minute: int(buf[pos+3]),
			Second: int(buf[pos+4]),
		}
		return d, pos + 5, nil
	default:
		return nil, 0, fmt.Errorf("item: unknown tag 0x%02x", tag)
	}
}

// EncodeSeq appends the binary encoding of a sequence to dst.
func EncodeSeq(dst []byte, s Sequence) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	for _, it := range s {
		dst = Encode(dst, it)
	}
	return dst
}

// DecodeSeq decodes a full sequence from buf. The whole buffer must be
// consumed; trailing bytes are an error.
func DecodeSeq(buf []byte) (Sequence, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil, fmt.Errorf("item: bad sequence count")
	}
	pos := w
	if n == 0 {
		if pos != len(buf) {
			return nil, fmt.Errorf("item: %d trailing bytes after sequence", len(buf)-pos)
		}
		return nil, nil
	}
	s := make(Sequence, 0, n)
	for i := uint64(0); i < n; i++ {
		it, used, err := Decode(buf[pos:])
		if err != nil {
			return nil, err
		}
		s = append(s, it)
		pos += used
	}
	if pos != len(buf) {
		return nil, fmt.Errorf("item: %d trailing bytes after sequence", len(buf)-pos)
	}
	return s, nil
}
