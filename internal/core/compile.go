package core

import (
	"fmt"

	"vxq/internal/algebricks"
	"vxq/internal/hyracks"
	"vxq/internal/jsoniq"
)

// RuleConfig selects which of the paper's rewrite-rule categories are
// applied. The generic Algebricks rules (join-condition extraction, dead
// assign removal) always run — they belong to the substrate (§3.1).
type RuleConfig struct {
	// PathRules enables the path expression rules of §4.1.
	PathRules bool
	// PipeliningRules enables the pipelining rules of §4.2 (DATASCAN
	// introduction and path merging).
	PipeliningRules bool
	// GroupByRules enables the group-by rules of §4.3, including the
	// two-step aggregation scheme at the physical level.
	GroupByRules bool
	// NoJoinExtraction withholds the generic Algebricks join-recognition
	// rule, leaving joins as cross products with a residual select
	// (ablation only).
	NoJoinExtraction bool
	// NoProjectionPushdown keeps DATASCAN introduction but disables
	// merging navigation into the DATASCAN second argument, so each file
	// is fully materialized before navigation — the AsterixDB behaviour
	// the paper compares against (§5.3): "the system waits to first gather
	// all the measurements in the array before it moves them to the next
	// stage of processing".
	NoProjectionPushdown bool
}

// AllRules enables every rule category.
func AllRules() RuleConfig {
	return RuleConfig{PathRules: true, PipeliningRules: true, GroupByRules: true}
}

// Rules assembles the Algebricks rule list for a configuration, in the
// paper's order: path expression rules, then pipelining rules, then
// group-by rules, with the generic rules last (cleanup).
func (cfg RuleConfig) Rules() []algebricks.Rule {
	var rules []algebricks.Rule
	if !cfg.NoJoinExtraction {
		rules = append(rules, algebricks.ExtractJoinCondition{})
	}
	if cfg.PathRules {
		rules = append(rules,
			MergeUnnestWithKeysOrMembers{},
			RemovePromoteData{},
		)
	}
	if cfg.PipeliningRules {
		rules = append(rules, IntroduceDataScan{},
			MergePathIntoDataScan{RecordBoundary: cfg.NoProjectionPushdown},
			PushRangeFilterIntoDataScan{})
	}
	if cfg.GroupByRules {
		rules = append(rules,
			RemoveRedundantTreat{},
			ConvertCountToAggregate{},
			PushAggregateIntoGroupBy{},
		)
	}
	rules = append(rules, algebricks.RemoveUnusedAssign{})
	return rules
}

// Optimize applies the configured rule categories to fixpoint.
func Optimize(p *algebricks.Plan, cfg RuleConfig) error {
	return p.Rewrite(cfg.Rules())
}

// Options configures query compilation.
type Options struct {
	Rules      RuleConfig
	Partitions int
	// ScanFormat selects the collection file format (JSON by default).
	ScanFormat hyracks.ScanFormat
	// SingleStepAggregation disables the two-step (local/global)
	// aggregation scheme even when the group-by rules are on (ablation
	// only).
	SingleStepAggregation bool
}

// Compiled is the result of compiling a query: the plans at each stage and
// the runnable Hyracks job.
type Compiled struct {
	AST           jsoniq.Expr
	OriginalPlan  string
	OptimizedPlan string
	Job           *hyracks.Job
	// Ordered reports whether the query contains an order-by clause, i.e.
	// the result tuple order is meaningful and must be preserved.
	Ordered bool
}

// CompileQuery runs the full pipeline of Fig. 1: parse, translate to the
// logical plan, rewrite with the configured rule categories, and lower to a
// Hyracks job.
func CompileQuery(query string, opts Options) (*Compiled, error) {
	ast, err := jsoniq.Parse(query)
	if err != nil {
		return nil, err
	}
	plan, ordered, err := translateQuery(ast)
	if err != nil {
		return nil, err
	}
	original := plan.String()
	if err := Optimize(plan, opts.Rules); err != nil {
		return nil, fmt.Errorf("core: optimize: %w", err)
	}
	job, err := algebricks.Compile(plan, algebricks.CompileOptions{
		Partitions:         opts.Partitions,
		TwoStepAggregation: opts.Rules.GroupByRules && !opts.SingleStepAggregation,
		ScanFormat:         opts.ScanFormat,
	})
	if err != nil {
		return nil, fmt.Errorf("core: compile: %w\nplan:\n%s", err, plan)
	}
	return &Compiled{
		AST:           ast,
		OriginalPlan:  original,
		OptimizedPlan: plan.String(),
		Job:           job,
		Ordered:       ordered,
	}, nil
}
