package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"vxq/internal/hyracks"
	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// End-to-end property test: for random collections of documents and random
// navigation paths, the full engine (parse -> translate -> rewrite ->
// compile -> execute) must return exactly what the reference evaluator
// (parse-then-navigate over every document) returns — under every rule
// configuration and partition count.

// randomDoc builds a random JSON document (object or array root) of bounded
// depth, with keys drawn from a small alphabet so paths sometimes match.
func randomDoc(r *rand.Rand, depth int) item.Item {
	if r.Intn(2) == 0 {
		n := 1 + r.Intn(3)
		keys := make([]string, 0, n)
		vals := make([]item.Item, 0, n)
		seen := map[string]bool{}
		for i := 0; i < n; i++ {
			k := string(rune('a' + r.Intn(4)))
			if seen[k] {
				continue
			}
			seen[k] = true
			keys = append(keys, k)
			vals = append(vals, randomValue(r, depth-1))
		}
		return item.MustObject(keys, vals)
	}
	n := r.Intn(4)
	arr := make(item.Array, n)
	for i := range arr {
		arr[i] = randomValue(r, depth-1)
	}
	return arr
}

func randomValue(r *rand.Rand, depth int) item.Item {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return item.Null{}
		case 1:
			return item.Bool(r.Intn(2) == 0)
		case 2:
			return item.Number(float64(r.Intn(100)))
		default:
			return item.String(string(rune('p' + r.Intn(5))))
		}
	}
	switch r.Intn(6) {
	case 0:
		return item.Number(float64(r.Intn(100)))
	case 1:
		return item.String(string(rune('p' + r.Intn(5))))
	default:
		return randomDoc(r, depth)
	}
}

type pathQueryCase struct {
	Docs map[string][]byte
	Path jsonparse.Path
}

func (pathQueryCase) Generate(r *rand.Rand, size int) reflect.Value {
	nDocs := 1 + r.Intn(4)
	docs := map[string][]byte{}
	for i := 0; i < nDocs; i++ {
		docs[fmt.Sprintf("d%02d.json", i)] = item.AppendJSON(nil, randomDoc(r, 3))
	}
	nSteps := 1 + r.Intn(3)
	var p jsonparse.Path
	for i := 0; i < nSteps; i++ {
		switch r.Intn(4) {
		case 0:
			p = append(p, jsonparse.MembersStep())
		case 1:
			p = append(p, jsonparse.IndexStep(1+r.Intn(3)))
		default:
			p = append(p, jsonparse.KeyStep(string(rune('a'+r.Intn(4)))))
		}
	}
	return reflect.ValueOf(pathQueryCase{Docs: docs, Path: p})
}

// queryForPath renders a collection path query in JSONiq syntax.
func queryForPath(p jsonparse.Path) string {
	return `collection("/c")` + p.String()
}

// referenceResult evaluates the path over every document with the reference
// evaluator, in sorted-canonical order.
func referenceResult(docs map[string][]byte, p jsonparse.Path) (item.Sequence, error) {
	names := make([]string, 0, len(docs))
	for n := range docs {
		names = append(names, n)
	}
	sort.Strings(names)
	var out item.Sequence
	for _, n := range names {
		doc, err := jsonparse.Parse(docs[n])
		if err != nil {
			return nil, err
		}
		out = append(out, jsonparse.ApplyPath(doc, p)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return item.Compare(out[i], out[j]) < 0 })
	return out, nil
}

func TestQuickEngineMatchesReferenceNavigation(t *testing.T) {
	configs := []struct {
		name  string
		rules RuleConfig
		parts int
	}{
		{"all-rules-p1", AllRules(), 1},
		{"all-rules-p3", AllRules(), 3},
		{"no-rules-p1", RuleConfig{}, 1},
		{"path-only-p1", RuleConfig{PathRules: true}, 1},
	}
	check := func(c pathQueryCase) bool {
		want, err := referenceResult(c.Docs, c.Path)
		if err != nil {
			t.Logf("reference failed: %v", err)
			return false
		}
		src := &runtime.MemSource{Collections: map[string]map[string][]byte{"/c": c.Docs}}
		for _, cfg := range configs {
			compiled, err := CompileQuery(queryForPath(c.Path), Options{
				Rules: cfg.rules, Partitions: cfg.parts,
			})
			if err != nil {
				t.Logf("%s: compile %q: %v", cfg.name, queryForPath(c.Path), err)
				return false
			}
			res, err := hyracks.RunStaged(compiled.Job, &hyracks.Env{Source: src})
			if err != nil {
				t.Logf("%s: run %q: %v", cfg.name, queryForPath(c.Path), err)
				return false
			}
			var got item.Sequence
			for _, row := range res.Rows {
				got = append(got, row[0]...)
			}
			sort.SliceStable(got, func(i, j int) bool { return item.Compare(got[i], got[j]) < 0 })
			if !item.EqualSeq(got, want) {
				t.Logf("%s: query %s\n got: %s\nwant: %s", cfg.name, queryForPath(c.Path),
					item.JSONSeq(got), item.JSONSeq(want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickOrderByIsSorted: for random collections, an order-by query's
// output is sorted by the key regardless of partitioning.
func TestQuickOrderBySorted(t *testing.T) {
	check := func(c pathQueryCase, desc bool, seed int64) bool {
		src := &runtime.MemSource{Collections: map[string]map[string][]byte{"/c": c.Docs}}
		dir := ""
		if desc {
			dir = " descending"
		}
		q := fmt.Sprintf(`for $x in collection("/c")()() order by $x%s return $x`, dir)
		compiled, err := CompileQuery(q, Options{Rules: AllRules(), Partitions: 2})
		if err != nil {
			return false
		}
		res, err := hyracks.RunStaged(compiled.Job, &hyracks.Env{Source: src})
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		var prev item.Item
		for _, row := range res.Rows {
			it, err := row[0].One()
			if err != nil {
				return false
			}
			if prev != nil {
				c := item.Compare(prev, it)
				if (!desc && c > 0) || (desc && c < 0) {
					t.Logf("order violated: %s then %s", item.JSON(prev), item.JSON(it))
					return false
				}
			}
			prev = it
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyGeneratorNontrivial guards the quality of the random cases:
// a meaningful share must produce non-empty results, otherwise the
// engine-vs-reference property would be vacuous.
func TestPropertyGeneratorNontrivial(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	nonEmpty := 0
	for i := 0; i < 60; i++ {
		v := pathQueryCase{}.Generate(r, 50).Interface().(pathQueryCase)
		want, err := referenceResult(v.Docs, v.Path)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 10 {
		t.Fatalf("only %d/60 random cases non-empty; generator too weak", nonEmpty)
	}
}
