package core

import (
	"strings"
	"testing"
	"vxq/internal/jsoniq"

	"vxq/internal/hyracks"
	"vxq/internal/item"
)

// Tests for the language extensions beyond the paper's five queries:
// JSONiq object/array constructors and the order-by clause.

func TestOrderByAscending(t *testing.T) {
	q := `
		for $r in collection("/sensors")("root")()("results")()
		where $r("dataType") eq "TMIN"
		order by $r("value")
		return $r("value")`
	c, err := CompileQuery(q, Options{Rules: AllRules(), Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Ordered {
		t.Fatal("query with order-by must be marked Ordered")
	}
	if !strings.Contains(c.OptimizedPlan, "ORDER-BY") {
		t.Fatalf("plan missing ORDER-BY:\n%s", c.OptimizedPlan)
	}
	res, err := hyracks.RunStaged(c.Job, &hyracks.Env{Source: sensorSource()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	var prev float64 = -1e18
	for _, row := range res.Rows {
		v, err := row[0].One()
		if err != nil {
			t.Fatal(err)
		}
		f := float64(v.(item.Number))
		if f < prev {
			t.Fatalf("not ascending: %v after %v", f, prev)
		}
		prev = f
	}
}

func TestOrderByDescendingMultiKey(t *testing.T) {
	q := `
		for $r in collection("/sensors")("root")()("results")()
		order by $r("dataType") descending, $r("value") ascending
		return [$r("dataType"), $r("value")]`
	c, err := CompileQuery(q, Options{Rules: AllRules(), Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := hyracks.RunStaged(c.Job, &hyracks.Env{Source: sensorSource()})
	if err != nil {
		t.Fatal(err)
	}
	var prevType string
	var prevVal float64
	first := true
	for _, row := range res.Rows {
		it, _ := row[0].One()
		pair := it.(item.Array)
		typ := string(pair[0].(item.String))
		val := float64(pair[1].(item.Number))
		if !first {
			if typ > prevType {
				t.Fatalf("dataType not descending: %q after %q", typ, prevType)
			}
			if typ == prevType && val < prevVal {
				t.Fatalf("value not ascending within %q: %v after %v", typ, val, prevVal)
			}
		}
		prevType, prevVal, first = typ, val, false
	}
}

func TestObjectConstructorInReturn(t *testing.T) {
	q := `
		for $r in collection("/sensors")("root")()("results")()
		where $r("dataType") eq "TMIN"
		group by $date := $r("date")
		return {"date": $date, "stations": count($r("station"))}`
	res := runQuery(t, q, AllRules(), 2)
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		it, err := row[0].One()
		if err != nil {
			t.Fatal(err)
		}
		obj, ok := it.(*item.Object)
		if !ok {
			t.Fatalf("expected object, got %s", item.JSON(it))
		}
		if obj.Value("date") == nil || obj.Value("stations") == nil {
			t.Fatalf("missing fields: %s", item.JSON(obj))
		}
		if c := obj.Value("stations").(item.Number); float64(c) != 3 {
			t.Errorf("stations = %v, want 3", c)
		}
	}
}

func TestArrayConstructorFlattens(t *testing.T) {
	q := `[1, 2 + 3, "x"]`
	res := runQuery(t, q, AllRules(), 1)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	it, _ := res.Rows[0][0].One()
	want := item.Array{item.Number(1), item.Number(5), item.String("x")}
	if !item.Equal(it, want) {
		t.Errorf("got %s", item.JSON(it))
	}
}

func TestNestedConstructors(t *testing.T) {
	q := `{"outer": {"inner": [1, 2]}, "empty": [] }`
	res := runQuery(t, q, AllRules(), 1)
	it, _ := res.Rows[0][0].One()
	obj := it.(*item.Object)
	inner := obj.Value("outer").(*item.Object).Value("inner").(item.Array)
	if len(inner) != 2 {
		t.Errorf("inner = %s", item.JSON(obj))
	}
	if e := obj.Value("empty").(item.Array); len(e) != 0 {
		t.Errorf("empty = %s", item.JSON(e))
	}
}

func TestObjectConstructorNullOnEmpty(t *testing.T) {
	// An empty value becomes null.
	q := `
		for $x in collection("/sensors")("root")()("results")()
		order by $x("date")
		return {"missing": $x("no-such-key"), "date": $x("date")}`
	res := runQuery(t, q, AllRules(), 1)
	it, _ := res.Rows[0][0].One()
	obj := it.(*item.Object)
	if _, ok := obj.Value("missing").(item.Null); !ok {
		t.Errorf("missing field should be null: %s", item.JSON(obj))
	}
}

func TestObjectConstructorErrors(t *testing.T) {
	cases := []string{
		`{1: "v"}`, // non-string key
		`for $r in collection("/sensors")("root")() return {"k": $r("results")()}`, // multi-item value
	}
	for _, q := range cases {
		c, err := CompileQuery(q, Options{Rules: AllRules()})
		if err != nil {
			continue // compile-time rejection is fine too
		}
		if _, err := hyracks.RunStaged(c.Job, &hyracks.Env{Source: sensorSource()}); err == nil {
			t.Errorf("query %q should fail at runtime", q)
		}
	}
}

func TestOrderByAfterGroupBy(t *testing.T) {
	q := `
		for $r in collection("/sensors")("root")()("results")()
		where $r("dataType") eq "TMIN"
		group by $date := $r("date")
		order by $date descending
		return $date`
	res := runQuery(t, q, AllRules(), 2)
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
}

func TestOrderPreservedThroughBothExecutors(t *testing.T) {
	q := `
		for $r in collection("/sensors")("root")()("results")()
		order by $r("value") descending
		return $r("value")`
	c, err := CompileQuery(q, Options{Rules: AllRules(), Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	staged, err := hyracks.RunStaged(c.Job, &hyracks.Env{Source: sensorSource()})
	if err != nil {
		t.Fatal(err)
	}
	piped, err := hyracks.RunPipelined(c.Job, &hyracks.Env{Source: sensorSource()})
	if err != nil {
		t.Fatal(err)
	}
	// NOTE: no SortRows here — the engine's order must already agree.
	if rowsString(staged) != rowsString(piped) {
		t.Error("executors disagree on ordered output")
	}
	// And it must be descending.
	var prev = 1e18
	for _, row := range staged.Rows {
		v, _ := row[0].One()
		f := float64(v.(item.Number))
		if f > prev {
			t.Fatalf("not descending: %v after %v", f, prev)
		}
		prev = f
	}
}

func TestRecordBoundaryMergeStopsAtFirstMembers(t *testing.T) {
	// AsterixDB mode: the DATASCAN projects record-granular members
	// ("root")() and the remaining navigation stays above as expressions —
	// stepsToExpr reconstructs value/keys-or-members chains.
	rules := AllRules()
	rules.NoProjectionPushdown = true
	c, err := CompileQuery(queryQ0, Options{Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.OptimizedPlan, `DATASCAN $v`) ||
		!strings.Contains(c.OptimizedPlan, `("root")()`) {
		t.Fatalf("scan should project to the record boundary:\n%s", c.OptimizedPlan)
	}
	if strings.Contains(c.OptimizedPlan, `("root")()("results")()`+"\n") {
		t.Fatalf("scan must not project past the record boundary:\n%s", c.OptimizedPlan)
	}
	if !strings.Contains(c.OptimizedPlan, "keys-or-members(value(") {
		t.Fatalf("remaining navigation should be rebuilt above the scan:\n%s", c.OptimizedPlan)
	}
	// And it still computes the right answer.
	res, err := hyracks.RunStaged(c.Job, &hyracks.Env{Source: sensorSource()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Errorf("rows = %d, want 12", len(res.Rows))
	}
}

func TestTranslateWrapper(t *testing.T) {
	ast, err := jsoniq.Parse(`collection("/sensors")("root")()`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Translate(ast)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "collection(") {
		t.Errorf("plan:\n%s", plan)
	}
	if _, err := Translate(&jsoniq.FLWOR{Clauses: nil, Return: &jsoniq.VarRef{Name: "nope"}}); err == nil {
		t.Error("unbound variable must fail")
	}
}

func TestRuleNames(t *testing.T) {
	for _, r := range AllRules().Rules() {
		if r.Name() == "" {
			t.Errorf("rule %T has empty name", r)
		}
	}
	rb := MergePathIntoDataScan{RecordBoundary: true}
	plain := MergePathIntoDataScan{}
	if rb.Name() == plain.Name() {
		t.Error("record-boundary variant should have a distinct name")
	}
}

func TestRangeFilterFlippedComparison(t *testing.T) {
	// Constant on the left: "2010-01-01" le $d is the same as $d ge ... .
	q := `
		for $d in collection("/sensors")("root")()("results")()("date")
		where "2010-01-01" le $d and "2011-01-01" gt $d
		return $d`
	c, err := CompileQuery(q, Options{Rules: AllRules()})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.OptimizedPlan, `filter{`) ||
		!strings.Contains(c.OptimizedPlan, `["2010-01-01", "2011-01-01")`) {
		t.Errorf("flipped comparisons should produce the same filter:\n%s", c.OptimizedPlan)
	}
}

func TestRangeFilterEquality(t *testing.T) {
	q := `
		for $r in collection("/sensors")("root")()("results")()
		where $r("dataType") eq "TMIN"
		return $r`
	c, err := CompileQuery(q, Options{Rules: AllRules()})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.OptimizedPlan, `filter{("root")()("results")()("dataType") in ["TMIN", "TMIN"]}`) {
		t.Errorf("equality filter missing:\n%s", c.OptimizedPlan)
	}
	res, err := hyracks.RunStaged(c.Job, &hyracks.Env{Source: sensorSource()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("no rows")
	}
}

func TestRangeFilterNotAttachedForNonConstOrNonPath(t *testing.T) {
	cases := []string{
		// Predicate through a function: not a plain path comparison.
		queryQ0,
		// Comparison between two paths of the same tuple.
		`for $r in collection("/sensors")("root")()("results")()
		 where $r("value") ge $r("value")
		 return $r`,
	}
	for _, q := range cases {
		c, err := CompileQuery(q, Options{Rules: AllRules()})
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(c.OptimizedPlan, "filter{") {
			t.Errorf("no filter expected for %q:\n%s", q, c.OptimizedPlan)
		}
	}
}

func TestNestedFLWORWithLetAndWhere(t *testing.T) {
	// translateNestedClauses: let and where inside a subplan FLWOR.
	q := `
		for $r in collection("/sensors")("root")()("results")()
		group by $date := $r("date")
		return count(for $i in $r
		             let $t := $i("dataType")
		             where $t eq "TMIN"
		             return $i("station"))`
	res := runQuery(t, q, RuleConfig{PathRules: true, PipeliningRules: true}, 1)
	if len(res.Rows) == 0 {
		t.Fatal("no groups")
	}
	var total float64
	for _, row := range res.Rows {
		c, err := row[0].One()
		if err != nil {
			t.Fatal(err)
		}
		total += float64(c.(item.Number))
	}
	// 3 files x 4 TMIN measurements each (see sensorSource).
	if total != 12 {
		t.Errorf("total TMIN = %v, want 12", total)
	}
}

func TestMinMaxAggregateQueries(t *testing.T) {
	// min/max over a FLWOR (the Q2 shape) with every partitioning mode.
	q := `
		max(
		  for $r in collection("/sensors")("root")()("results")()
		  where $r("dataType") eq "TMAX"
		  return $r("value")
		)`
	var want string
	for _, parts := range []int{1, 2, 4} {
		res := runQuery(t, q, AllRules(), parts)
		if len(res.Rows) != 1 {
			t.Fatalf("parts=%d rows = %d", parts, len(res.Rows))
		}
		got := item.JSONSeq(res.Rows[0][0])
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("parts=%d max = %s, want %s", parts, got, want)
		}
	}
	// Per the sensorSource data the maximum TMAX is 15+2 = 17.
	if want != "17" {
		t.Errorf("max = %s, want 17", want)
	}

	// min/max pushed into a group-by.
	gq := `
		for $r in collection("/sensors")("root")()("results")()
		where $r("dataType") eq "TMAX"
		group by $st := $r("station")
		return {"station": $st, "hottest": max($r("value"))}`
	res := runQuery(t, gq, AllRules(), 2)
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(res.Rows))
	}
	c, err := CompileQuery(gq, Options{Rules: AllRules(), Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(c.OptimizedPlan, "sequence(") {
		t.Errorf("max should be pushed into the group-by:\n%s", c.OptimizedPlan)
	}
}

func TestStringFunctionsInQueries(t *testing.T) {
	q := `
		for $r in collection("/sensors")("root")()("results")()
		where starts-with($r("station"), "ST00") and contains($r("date"), "-12-25")
		order by $r("date")
		return concat(substring($r("date"), 1, 4), "/", lower-case($r("dataType")))`
	res := runQuery(t, q, AllRules(), 2)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		it, _ := row[0].One()
		s := string(it.(item.String))
		if len(s) != len("2003/tmin") || s[4] != '/' {
			t.Errorf("result = %q", s)
		}
	}
}
