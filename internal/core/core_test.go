package core

import (
	"fmt"
	"strings"
	"testing"

	"vxq/internal/hyracks"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

// Paper queries (§5.2).
const (
	queryQ0 = `
for $r in collection("/sensors")("root")()("results")()
let $datetime := dateTime(data($r("date")))
where year-from-dateTime($datetime) ge 2003
  and month-from-dateTime($datetime) eq 12
  and day-from-dateTime($datetime) eq 25
return $r`

	queryQ0b = `
for $r in collection("/sensors")("root")()("results")()("date")
let $datetime := dateTime(data($r))
where year-from-dateTime($datetime) ge 2003
  and month-from-dateTime($datetime) eq 12
  and day-from-dateTime($datetime) eq 25
return $r`

	queryQ1 = `
for $r in collection("/sensors")("root")()("results")()
where $r("dataType") eq "TMIN"
group by $date := $r("date")
return count($r("station"))`

	queryQ1b = `
for $r in collection("/sensors")("root")()("results")()
where $r("dataType") eq "TMIN"
group by $date := $r("date")
return count(for $i in $r return $i("station"))`

	queryQ2 = `
avg(
  for $r_min in collection("/sensors")("root")()("results")()
  for $r_max in collection("/sensors")("root")()("results")()
  where $r_min("station") eq $r_max("station")
    and $r_min("date") eq $r_max("date")
    and $r_min("dataType") eq "TMIN"
    and $r_max("dataType") eq "TMAX"
  return $r_max("value") - $r_min("value")
) div 10`
)

// sensorSource builds a small deterministic sensor collection:
// 3 files x 2 records x 4 measurements.
func sensorSource() *runtime.MemSource {
	meas := func(date, typ, station string, val int) string {
		return fmt.Sprintf(`{"date":%q,"dataType":%q,"station":%q,"value":%d}`, date, typ, station, val)
	}
	files := map[string][]byte{}
	for f := 0; f < 3; f++ {
		st := fmt.Sprintf("ST%03d", f)
		doc := `{"root":[` +
			`{"metadata":{"count":4},"results":[` +
			meas("2003-12-25T00:00", "TMIN", st, -f) + "," +
			meas("2003-12-25T00:00", "TMAX", st, 10+f) + "," +
			meas("2003-12-26T00:00", "TMIN", st, 1) + "," +
			meas("2002-12-25T00:00", "TMIN", st, 2) + `]},` +
			`{"metadata":{"count":2},"results":[` +
			meas("2004-12-25T00:00", "TMIN", st, 5) + "," +
			meas("2004-12-25T00:00", "TMAX", st, 15+f) + `]}` +
			`]}`
		files[fmt.Sprintf("s%d.json", f)] = []byte(doc)
	}
	return &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": files}}
}

func ruleConfigs() map[string]RuleConfig {
	return map[string]RuleConfig{
		"none":       {},
		"path":       {PathRules: true},
		"path+pipe":  {PathRules: true, PipeliningRules: true},
		"path+group": {PathRules: true, GroupByRules: true},
		"all":        AllRules(),
		"pipe-only":  {PipeliningRules: true},
		"group-only": {GroupByRules: true},
	}
}

func runQuery(t *testing.T, query string, cfg RuleConfig, partitions int) *hyracks.Result {
	t.Helper()
	c, err := CompileQuery(query, Options{Rules: cfg, Partitions: partitions})
	if err != nil {
		t.Fatalf("CompileQuery: %v", err)
	}
	res, err := hyracks.RunStaged(c.Job, &hyracks.Env{Source: sensorSource()})
	if err != nil {
		t.Fatalf("RunStaged: %v\noptimized plan:\n%s\njob:\n%s", err, c.OptimizedPlan, c.Job)
	}
	res.SortRows()
	return res
}

func rowsString(res *hyracks.Result) string {
	var b strings.Builder
	for _, row := range res.Rows {
		for j, f := range row {
			if j > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(item.JSONSeq(f))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestAllQueriesAllRuleConfigs is the central semantics-preservation test:
// every paper query must produce identical results under every rule
// configuration and partition count.
func TestAllQueriesAllRuleConfigs(t *testing.T) {
	queries := map[string]string{
		"Q0": queryQ0, "Q0b": queryQ0b, "Q1": queryQ1, "Q1b": queryQ1b, "Q2": queryQ2,
	}
	for qname, q := range queries {
		var want string
		for cfgName, cfg := range ruleConfigs() {
			parts := []int{1}
			if cfg.PipeliningRules {
				parts = []int{1, 2, 3}
			}
			for _, p := range parts {
				res := runQuery(t, q, cfg, p)
				got := rowsString(res)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Errorf("%s/%s/p=%d results differ:\n--- got ---\n%s--- want ---\n%s",
						qname, cfgName, p, got, want)
				}
			}
		}
	}
}

func TestQ0Results(t *testing.T) {
	res := runQuery(t, queryQ0, AllRules(), 2)
	// Dec-25 measurements from 2003 on: per file 2 (2003) + 2 (2004) = 4;
	// 3 files -> 12. The 2002 row is filtered out.
	if len(res.Rows) != 12 {
		t.Fatalf("Q0 rows = %d, want 12\n%s", len(res.Rows), rowsString(res))
	}
	for _, row := range res.Rows {
		obj, err := row[0].One()
		if err != nil {
			t.Fatal(err)
		}
		date := obj.(*item.Object).Value("date").(item.String)
		if !strings.Contains(string(date), "-12-25") {
			t.Errorf("unexpected date %s", date)
		}
		if strings.HasPrefix(string(date), "2002") {
			t.Errorf("2002 measurement not filtered: %s", date)
		}
	}
}

func TestQ0bReturnsDateStrings(t *testing.T) {
	res := runQuery(t, queryQ0b, AllRules(), 1)
	if len(res.Rows) != 12 {
		t.Fatalf("Q0b rows = %d, want 12", len(res.Rows))
	}
	for _, row := range res.Rows {
		it, _ := row[0].One()
		if it.Kind() != item.KindString {
			t.Fatalf("Q0b must return date strings, got %v", it.Kind())
		}
	}
}

func TestQ1Counts(t *testing.T) {
	res := runQuery(t, queryQ1, AllRules(), 2)
	// TMIN groups by date: 2003-12-25 (3 stations), 2003-12-26 (3),
	// 2002-12-25 (3), 2004-12-25 (3) -> 4 groups of count 3.
	if len(res.Rows) != 4 {
		t.Fatalf("Q1 groups = %d, want 4\n%s", len(res.Rows), rowsString(res))
	}
	for _, row := range res.Rows {
		c, _ := row[0].One()
		if float64(c.(item.Number)) != 3 {
			t.Errorf("group count = %s, want 3", item.JSONSeq(row[0]))
		}
	}
}

func TestQ2Average(t *testing.T) {
	res := runQuery(t, queryQ2, AllRules(), 2)
	if len(res.Rows) != 1 {
		t.Fatalf("Q2 rows = %d\n%s", len(res.Rows), rowsString(res))
	}
	// Matches per station f: 2003-12-25 diff (10+f)-(-f) = 10+2f and
	// 2004-12-25 diff (15+f)-5 = 10+f. f=0,1,2:
	// diffs = 10,12,14,10,11,12 -> avg = 69/6 = 11.5 -> div 10 = 1.15.
	got, _ := res.Rows[0][0].One()
	if f := float64(got.(item.Number)); f < 1.149 || f > 1.151 {
		t.Errorf("Q2 = %v, want 1.15", f)
	}
}

func TestPlanShapesFollowThePaper(t *testing.T) {
	// Fig. 5 shape (no rules): ASSIGN collection + UNNEST iterate, two-step
	// keys-or-members, promote/data present.
	c, err := CompileQuery(queryQ0, Options{Rules: RuleConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	orig := c.OriginalPlan
	for _, want := range []string{"collection(", "promote(data(", "keys-or-members(", "iterate("} {
		if !strings.Contains(orig, want) {
			t.Errorf("original plan missing %q:\n%s", want, orig)
		}
	}
	if strings.Contains(orig, "DATASCAN") {
		t.Errorf("original plan must not contain DATASCAN:\n%s", orig)
	}
	// With no rules the optimized plan keeps the ASSIGN collection.
	if !strings.Contains(c.OptimizedPlan, "collection(") {
		t.Errorf("unoptimized compile lost collection():\n%s", c.OptimizedPlan)
	}

	// Path rules only (Fig. 4 analogue): keys-or-members merged into
	// UNNEST, promote/data gone, still no DATASCAN.
	c, err = CompileQuery(queryQ0, Options{Rules: RuleConfig{PathRules: true}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(c.OptimizedPlan, "promote(") {
		t.Errorf("path rules must remove promote:\n%s", c.OptimizedPlan)
	}
	if !strings.Contains(c.OptimizedPlan, "UNNEST") ||
		!strings.Contains(c.OptimizedPlan, "keys-or-members(") {
		t.Errorf("path rules should merge keys-or-members into UNNEST:\n%s", c.OptimizedPlan)
	}
	if strings.Contains(c.OptimizedPlan, "DATASCAN") {
		t.Errorf("no DATASCAN without pipelining rules:\n%s", c.OptimizedPlan)
	}

	// Pipelining rules (Fig. 8 analogue): a DATASCAN with the full
	// projection path, no leftover navigation ASSIGNs for the path.
	c, err = CompileQuery(queryQ0, Options{Rules: RuleConfig{PathRules: true, PipeliningRules: true}})
	if err != nil {
		t.Fatal(err)
	}
	want := `DATASCAN $v`
	if !strings.Contains(c.OptimizedPlan, want) {
		t.Fatalf("pipelining rules must introduce DATASCAN:\n%s", c.OptimizedPlan)
	}
	if !strings.Contains(c.OptimizedPlan, `("root")()("results")()`) {
		t.Errorf("DATASCAN must carry the full projection path:\n%s", c.OptimizedPlan)
	}
	if strings.Contains(c.OptimizedPlan, "keys-or-members") {
		t.Errorf("all navigation should be merged into DATASCAN:\n%s", c.OptimizedPlan)
	}
}

func TestQ0bPathIncludesDate(t *testing.T) {
	c, err := CompileQuery(queryQ0b, Options{Rules: AllRules()})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.OptimizedPlan, `("root")()("results")()("date")`) {
		t.Errorf("Q0b DATASCAN must project down to the date field:\n%s", c.OptimizedPlan)
	}
}

func TestGroupByRulesTransformQ1(t *testing.T) {
	// Without group-by rules: treat + scalar count over the sequence.
	c, err := CompileQuery(queryQ1, Options{Rules: RuleConfig{PathRules: true, PipeliningRules: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.OptimizedPlan, "treat(") {
		t.Errorf("treat should remain without group-by rules:\n%s", c.OptimizedPlan)
	}
	if !strings.Contains(c.OptimizedPlan, "sequence(") {
		t.Errorf("sequence aggregate should remain without group-by rules:\n%s", c.OptimizedPlan)
	}

	// With group-by rules (Fig. 12): count pushed into the GROUP-BY, no
	// treat, no sequence aggregate, no subplan.
	c, err = CompileQuery(queryQ1, Options{Rules: AllRules()})
	if err != nil {
		t.Fatal(err)
	}
	plan := c.OptimizedPlan
	if strings.Contains(plan, "treat(") {
		t.Errorf("group-by rules must remove treat:\n%s", plan)
	}
	if strings.Contains(plan, "sequence(") {
		t.Errorf("group-by rules must remove the sequence aggregate:\n%s", plan)
	}
	if strings.Contains(plan, "SUBPLAN") {
		t.Errorf("the subplan must be pushed into the group-by:\n%s", plan)
	}
	if !strings.Contains(plan, "count(") {
		t.Errorf("count aggregate missing:\n%s", plan)
	}
}

func TestQ1bAlreadyOptimizedShape(t *testing.T) {
	// Q1b's original plan already contains the SUBPLAN form (Fig. 11); the
	// conversion rule is not needed, only the push-down.
	c, err := CompileQuery(queryQ1b, Options{Rules: RuleConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.OriginalPlan, "SUBPLAN") {
		t.Errorf("Q1b original plan should contain a SUBPLAN:\n%s", c.OriginalPlan)
	}
	c, err = CompileQuery(queryQ1b, Options{Rules: AllRules()})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(c.OptimizedPlan, "SUBPLAN") {
		t.Errorf("push-down must remove the subplan:\n%s", c.OptimizedPlan)
	}
}

func TestQ2BecomesHashJoin(t *testing.T) {
	c, err := CompileQuery(queryQ2, Options{Rules: AllRules()})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.OptimizedPlan, "HASH-JOIN") {
		t.Fatalf("Q2 must become a hash join:\n%s", c.OptimizedPlan)
	}
	// The dataType filters must be pushed into the branches as SELECTs.
	if n := strings.Count(c.OptimizedPlan, "SELECT"); n < 2 {
		t.Errorf("expected at least 2 pushed SELECTs, found %d:\n%s", n, c.OptimizedPlan)
	}
	// Both branches become DATASCANs under pipelining.
	if n := strings.Count(c.OptimizedPlan, "DATASCAN"); n != 2 {
		t.Errorf("expected 2 DATASCANs, found %d:\n%s", n, c.OptimizedPlan)
	}
}

func TestTwoStepAggregationInJob(t *testing.T) {
	c, err := CompileQuery(queryQ1, Options{Rules: AllRules(), Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	js := c.Job.String()
	if !strings.Contains(js, "GROUP-BY local") || !strings.Contains(js, "GROUP-BY global") {
		t.Errorf("expected two-step group-by in job:\n%s", js)
	}
	if !strings.Contains(js, "HASH") {
		t.Errorf("expected hash exchange in job:\n%s", js)
	}
}

func TestPipelinedExecutorAgrees(t *testing.T) {
	for _, q := range []string{queryQ0, queryQ1, queryQ2} {
		c, err := CompileQuery(q, Options{Rules: AllRules(), Partitions: 2})
		if err != nil {
			t.Fatal(err)
		}
		staged, err := hyracks.RunStaged(c.Job, &hyracks.Env{Source: sensorSource()})
		if err != nil {
			t.Fatal(err)
		}
		piped, err := hyracks.RunPipelined(c.Job, &hyracks.Env{Source: sensorSource()})
		if err != nil {
			t.Fatal(err)
		}
		staged.SortRows()
		piped.SortRows()
		if rowsString(staged) != rowsString(piped) {
			t.Errorf("executors disagree for %q", q)
		}
	}
}

func TestBookstoreQueriesEndToEnd(t *testing.T) {
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{
		"/books": {
			"a.json": []byte(`{"bookstore":{"book":[
				{"-category":"COOKING","title":"Everyday Italian","author":"Giada De Laurentiis","year":"2005","price":"30.00"},
				{"-category":"CHILDREN","title":"Harry Potter","author":"J K. Rowling","year":"2005","price":"29.99"}]}}`),
			"b.json": []byte(`{"bookstore":{"book":[
				{"-category":"WEB","title":"XQuery Kick Start","author":"James McGovern","year":"2003","price":"49.99"},
				{"-category":"WEB","title":"Learning XML","author":"James McGovern","year":"2003","price":"39.95"}]}}`),
		},
	}}
	run := func(q string, cfg RuleConfig) *hyracks.Result {
		t.Helper()
		c, err := CompileQuery(q, Options{Rules: cfg, Partitions: 2})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		res, err := hyracks.RunStaged(c.Job, &hyracks.Env{Source: src})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		res.SortRows()
		return res
	}
	// Listing 3: all books.
	for name, cfg := range ruleConfigs() {
		res := run(`collection("/books")("bookstore")("book")()`, cfg)
		if len(res.Rows) != 4 {
			t.Errorf("%s: books = %d, want 4", name, len(res.Rows))
		}
	}
	// Listings 4/5: counts per author.
	for _, q := range []string{
		`for $x in collection("/books")("bookstore")("book")()
		 group by $author := $x("author")
		 return count($x("title"))`,
		`for $x in collection("/books")("bookstore")("book")()
		 group by $author := $x("author")
		 return count(for $j in $x return $j("title"))`,
	} {
		res := run(q, AllRules())
		if len(res.Rows) != 3 {
			t.Fatalf("author groups = %d, want 3\n%s", len(res.Rows), rowsString(res))
		}
		// Sorted counts: 1, 1, 2.
		var counts []float64
		for _, row := range res.Rows {
			c, _ := row[0].One()
			counts = append(counts, float64(c.(item.Number)))
		}
		if counts[0] != 1 || counts[1] != 1 || counts[2] != 2 {
			t.Errorf("counts = %v", counts)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		`for $x in collection("/c")() return $missing`, // unbound var
		`nonsense syntax here(((`,
		`no-such-function(1)`, // unknown function caught at physical compile
	}
	for _, q := range cases {
		if _, err := CompileQuery(q, Options{Rules: AllRules()}); err == nil {
			t.Errorf("CompileQuery(%q) should fail", q)
		}
	}
}

func TestJSONDocQuery(t *testing.T) {
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{
		"/books": {"books.json": []byte(`{"bookstore":{"book":[{"title":"T1"},{"title":"T2"}]}}`)},
	}}
	c, err := CompileQuery(`json-doc("/books/books.json")("bookstore")("book")()`,
		Options{Rules: AllRules()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := hyracks.RunStaged(c.Job, &hyracks.Env{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("books = %d, want 2\nplan:\n%s", len(res.Rows), c.OptimizedPlan)
	}
}
