package core

import (
	"vxq/internal/algebricks"
	"vxq/internal/hyracks"
	"vxq/internal/item"
	"vxq/internal/jsonparse"
)

// This file implements the three categories of JSONiq rewrite rules of §4
// as Algebricks rules:
//
//	Path expression rules (§4.1)
//	  - MergeUnnestWithKeysOrMembers: merge UNNEST iterate with the ASSIGN
//	    keys-or-members below it (Fig. 3 -> Fig. 4).
//	  - RemovePromoteData: remove the promote and data guards around
//	    constant arguments (Fig. 3 -> Fig. 4).
//
//	Pipelining rules (§4.2)
//	  - IntroduceDataScan: replace ASSIGN collection + UNNEST iterate with
//	    the DATASCAN operator (Fig. 5 -> Fig. 6).
//	  - MergePathIntoDataScan: fold value and keys-or-members navigation
//	    into the DATASCAN second argument (Fig. 6 -> Fig. 7 -> Fig. 8).
//
//	Group-by rules (§4.3)
//	  - RemoveRedundantTreat: drop ASSIGN treat when the treat type is item
//	    (Fig. 9 -> Fig. 10).
//	  - ConvertCountToAggregate: convert the scalar count over a grouped
//	    sequence into a SUBPLAN with an incremental AGGREGATE
//	    (Fig. 10 -> Fig. 11).
//	  - PushAggregateIntoGroupBy: push the subplan's AGGREGATE down into
//	    the GROUP-BY, eliminating the sequence materialization
//	    (Fig. 11 -> Fig. 12).
//
// Two-step aggregation (the final §4.3 improvement, from [17]) is a
// physical choice made by algebricks.Compile when CompileOptions.
// TwoStepAggregation is set; RuleConfig wires it to the group-by category.

// --- Path expression rules --------------------------------------------------

// MergeUnnestWithKeysOrMembers merges UNNEST $x := iterate($v) with the
// ASSIGN $v := keys-or-members(E) feeding it, producing
// UNNEST $x := keys-or-members(E). This removes the materialization of the
// whole member sequence: each member flows to the next operator as it is
// found (§4.1).
type MergeUnnestWithKeysOrMembers struct{}

// Name implements algebricks.Rule.
func (MergeUnnestWithKeysOrMembers) Name() string { return "merge-unnest-with-keys-or-members" }

// Apply implements algebricks.Rule.
func (MergeUnnestWithKeysOrMembers) Apply(p *algebricks.Plan, slot *algebricks.Op) (bool, error) {
	un, ok := (*slot).(*algebricks.Unnest)
	if !ok {
		return false, nil
	}
	iter, ok := un.E.(*algebricks.CallExpr)
	if !ok || iter.Fn != "iterate" || len(iter.Args) != 1 {
		return false, nil
	}
	src, ok := iter.Args[0].(*algebricks.VarExpr)
	if !ok {
		return false, nil
	}
	asg, ok := un.In.(*algebricks.Assign)
	if !ok || asg.V != src.V {
		return false, nil
	}
	kom, ok := asg.E.(*algebricks.CallExpr)
	if !ok || kom.Fn != "keys-or-members" {
		return false, nil
	}
	if varUsedOutside(p, asg.V, []algebricks.Op{un, asg}) {
		return false, nil
	}
	un.E = asg.E
	un.In = asg.In
	return true, nil
}

// RemovePromoteData removes promote(...) and data(...) wrappers around
// constant (string) arguments — the guards the translator inserts around
// the json-doc and collection arguments (§4.1).
type RemovePromoteData struct{}

// Name implements algebricks.Rule.
func (RemovePromoteData) Name() string { return "remove-promote-data" }

// Apply implements algebricks.Rule.
func (RemovePromoteData) Apply(p *algebricks.Plan, slot *algebricks.Op) (bool, error) {
	changed := false
	rewriteOpExprs(*slot, func(e algebricks.Expr) algebricks.Expr {
		call, ok := e.(*algebricks.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		switch call.Fn {
		case "promote":
			changed = true
			return call.Args[0]
		case "data":
			if isConstString(call.Args[0]) {
				changed = true
				return call.Args[0]
			}
		}
		return e
	})
	return changed, nil
}

func isConstString(e algebricks.Expr) bool {
	c, ok := e.(*algebricks.ConstExpr)
	if !ok || len(c.Seq) != 1 {
		return false
	}
	_, ok = c.Seq[0].(item.String)
	return ok
}

// --- Pipelining rules --------------------------------------------------------

// IntroduceDataScan replaces the pair ASSIGN $c := collection("dir") +
// UNNEST $f := iterate($c) over EMPTY-TUPLE-SOURCE with
// DATASCAN $f <- collection("dir"), enabling per-file streaming and
// partitioned parallelism (§4.2, Fig. 5 -> Fig. 6).
type IntroduceDataScan struct{}

// Name implements algebricks.Rule.
func (IntroduceDataScan) Name() string { return "introduce-datascan" }

// Apply implements algebricks.Rule.
func (IntroduceDataScan) Apply(p *algebricks.Plan, slot *algebricks.Op) (bool, error) {
	un, ok := (*slot).(*algebricks.Unnest)
	if !ok {
		return false, nil
	}
	iter, ok := un.E.(*algebricks.CallExpr)
	if !ok || iter.Fn != "iterate" || len(iter.Args) != 1 {
		return false, nil
	}
	src, ok := iter.Args[0].(*algebricks.VarExpr)
	if !ok {
		return false, nil
	}
	asg, ok := un.In.(*algebricks.Assign)
	if !ok || asg.V != src.V {
		return false, nil
	}
	coll, ok := asg.E.(*algebricks.CallExpr)
	if !ok || coll.Fn != "collection" || len(coll.Args) != 1 {
		return false, nil
	}
	name, ok := constString(coll.Args[0])
	if !ok {
		return false, nil
	}
	if _, ok := asg.In.(*algebricks.EmptyTupleSource); !ok {
		return false, nil
	}
	if varUsedOutside(p, asg.V, []algebricks.Op{un, asg}) {
		return false, nil
	}
	*slot = &algebricks.DataScan{
		Collection: name,
		V:          un.V,
		In:         asg.In,
	}
	return true, nil
}

func constString(e algebricks.Expr) (string, bool) {
	c, ok := e.(*algebricks.ConstExpr)
	if !ok || len(c.Seq) != 1 {
		return "", false
	}
	s, ok := c.Seq[0].(item.String)
	return string(s), ok
}

// MergePathIntoDataScan folds navigation into the DATASCAN second argument
// (§4.2, Figs. 6-8). It matches
//
//	UNNEST $x := iterate($v) / keys-or-members($v)
//	  over zero or one ASSIGN $v := <path expression over $d>
//	    over DATASCAN $d
//
// and extends the DATASCAN projection path with the navigation steps, so
// only one matching object at a time is materialized while parsing.
//
// With RecordBoundary set the merge stops after the *first* unnesting step:
// the DATASCAN emits whole records (the first-level array members) and the
// remaining navigation stays above the scan, materializing each record's
// arrays before processing. That models AsterixDB's behaviour (§5.3): its
// external datasets iterate record by record, but "the system waits to
// first gather all the measurements in the array before it moves them to
// the next stage of processing".
type MergePathIntoDataScan struct {
	RecordBoundary bool
}

// Name implements algebricks.Rule.
func (r MergePathIntoDataScan) Name() string {
	if r.RecordBoundary {
		return "merge-record-boundary-into-datascan"
	}
	return "merge-path-into-datascan"
}

// Apply implements algebricks.Rule.
func (r MergePathIntoDataScan) Apply(p *algebricks.Plan, slot *algebricks.Op) (bool, error) {
	un, ok := (*slot).(*algebricks.Unnest)
	if !ok {
		return false, nil
	}
	call, ok := un.E.(*algebricks.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false, nil
	}
	var tail jsonparse.Path
	switch call.Fn {
	case "iterate":
		// iterate splits the projected sequence into tuples, which is what
		// the projector already does: no extra step.
	case "keys-or-members":
		tail = jsonparse.Path{jsonparse.MembersStep()}
	default:
		return false, nil
	}
	srcVar, ok := call.Args[0].(*algebricks.VarExpr)
	if !ok {
		return false, nil
	}

	var scan *algebricks.DataScan
	var steps jsonparse.Path
	inside := []algebricks.Op{un}

	if sc, ok := un.In.(*algebricks.DataScan); ok && sc.V == srcVar.V {
		// Case 1: the unnest input is the DATASCAN itself.
		scan = sc
		inside = append(inside, sc)
	} else if asg, ok := un.In.(*algebricks.Assign); ok && asg.V == srcVar.V {
		// Case 2: an ASSIGN with a pure path expression sits between.
		sc, ok := asg.In.(*algebricks.DataScan)
		if !ok {
			return false, nil
		}
		steps, ok = pathSteps(asg.E, sc.V)
		if !ok {
			return false, nil
		}
		if varUsedOutside(p, asg.V, []algebricks.Op{un, asg}) {
			return false, nil
		}
		scan = sc
		inside = append(inside, asg, sc)
	} else {
		return false, nil
	}
	if varUsedOutside(p, scan.V, inside) {
		return false, nil
	}

	full := scan.Project.Append(steps...)
	full = full.Append(tail...)
	if !r.RecordBoundary {
		scan.Project = full
		scan.V = un.V
		*slot = scan
		return true, nil
	}

	// Record-boundary mode: merge only through the first members step.
	boundary := -1
	for i, st := range full {
		if st.Kind == jsonparse.StepMembers {
			boundary = i
			break
		}
	}
	if len(scan.Project) > 0 {
		// Already at (or past) the record boundary: no further merging.
		return false, nil
	}
	if boundary < 0 || boundary == len(full)-1 {
		// The whole path ends at the boundary: full merge is exact.
		scan.Project = full
		scan.V = un.V
		*slot = scan
		return true, nil
	}
	head := full[:boundary+1]
	rest := full[boundary+1:]
	record := p.Vars.New()
	scan.Project = head
	scan.V = record
	// Rebuild the remaining navigation above the scan.
	if rest[len(rest)-1].Kind == jsonparse.StepMembers {
		un.E = algebricks.Call("keys-or-members", stepsToExpr(rest[:len(rest)-1], record))
	} else {
		un.E = algebricks.Call("iterate", stepsToExpr(rest, record))
	}
	un.In = scan
	*slot = un
	return true, nil
}

// stepsToExpr rebuilds a navigation expression from projection steps over a
// root variable.
func stepsToExpr(steps jsonparse.Path, root algebricks.Var) algebricks.Expr {
	var e algebricks.Expr = algebricks.VarRef(root)
	for _, st := range steps {
		switch st.Kind {
		case jsonparse.StepKey:
			e = algebricks.Call("value", e, algebricks.Str(st.Key))
		case jsonparse.StepIndex:
			e = algebricks.Call("value", e, algebricks.Num(float64(st.Index)))
		case jsonparse.StepMembers:
			e = algebricks.Call("keys-or-members", e)
		}
	}
	return e
}

// pathSteps converts a pure navigation expression rooted at root into
// projection steps: value with constant string keys or numeric indexes, and
// keys-or-members.
func pathSteps(e algebricks.Expr, root algebricks.Var) (jsonparse.Path, bool) {
	switch x := e.(type) {
	case *algebricks.VarExpr:
		if x.V == root {
			return nil, true
		}
		return nil, false
	case *algebricks.CallExpr:
		switch x.Fn {
		case "value":
			if len(x.Args) != 2 {
				return nil, false
			}
			inner, ok := pathSteps(x.Args[0], root)
			if !ok {
				return nil, false
			}
			c, ok := x.Args[1].(*algebricks.ConstExpr)
			if !ok || len(c.Seq) != 1 {
				return nil, false
			}
			switch k := c.Seq[0].(type) {
			case item.String:
				return append(inner, jsonparse.KeyStep(string(k))), true
			case item.Number:
				return append(inner, jsonparse.IndexStep(int(k))), true
			default:
				return nil, false
			}
		case "keys-or-members":
			if len(x.Args) != 1 {
				return nil, false
			}
			inner, ok := pathSteps(x.Args[0], root)
			if !ok {
				return nil, false
			}
			return append(inner, jsonparse.MembersStep()), true
		default:
			return nil, false
		}
	default:
		return nil, false
	}
}

// --- Group-by rules ----------------------------------------------------------

// RemoveRedundantTreat removes ASSIGN $t := treat($a) operators (the treat
// type argument is item in this subset, so treat is always redundant) and
// redirects uses of $t to $a (§4.3, Fig. 9 -> Fig. 10).
type RemoveRedundantTreat struct{}

// Name implements algebricks.Rule.
func (RemoveRedundantTreat) Name() string { return "remove-redundant-treat" }

// Apply implements algebricks.Rule.
func (RemoveRedundantTreat) Apply(p *algebricks.Plan, slot *algebricks.Op) (bool, error) {
	asg, ok := (*slot).(*algebricks.Assign)
	if !ok {
		return false, nil
	}
	treat, ok := asg.E.(*algebricks.CallExpr)
	if !ok || treat.Fn != "treat" || len(treat.Args) != 1 {
		return false, nil
	}
	substVarEverywhere(p.Root, asg.V, treat.Args[0])
	*slot = asg.In
	return true, nil
}

// ConvertCountToAggregate converts a scalar aggregate over a grouped
// sequence — ASSIGN $c := count(f($a)) directly above a GROUP-BY whose
// nested plan produced $a with AGGREGATE sequence — into a SUBPLAN whose
// nested plan iterates the sequence and counts incrementally (§4.3,
// Fig. 10 -> Fig. 11). This also resolves the type conflict of applying
// value() to a sequence: the navigation moves inside the subplan where it
// applies to one item at a time.
type ConvertCountToAggregate struct{}

// Name implements algebricks.Rule.
func (ConvertCountToAggregate) Name() string { return "convert-count-to-aggregate" }

// Apply implements algebricks.Rule.
func (ConvertCountToAggregate) Apply(p *algebricks.Plan, slot *algebricks.Op) (bool, error) {
	asg, ok := (*slot).(*algebricks.Assign)
	if !ok {
		return false, nil
	}
	gb := groupByBelow(asg.In)
	if gb == nil {
		return false, nil
	}
	// Find an aggregate call over a grouped sequence anywhere inside the
	// assign's expression (it may be nested in a constructor or arithmetic).
	cnt := findAggOverSequence(asg.E, gb)
	if cnt == nil {
		return false, nil
	}
	seqVar, _ := singleSequenceVar(cnt.Args[0], gb)
	j := p.Vars.New()
	arg := algebricks.Subst(cnt.Args[0], seqVar, algebricks.VarRef(j))
	if cnt == asg.E {
		// The whole expression is the aggregate: the subplan produces the
		// assign's variable directly and the assign disappears.
		nested := &algebricks.Aggregate{
			Aggs: []algebricks.AggExpr{{V: asg.V, Fn: cnt.Fn, Arg: arg}},
			In: &algebricks.Unnest{
				V: j, E: algebricks.Call("iterate", algebricks.VarRef(seqVar)),
				In: &algebricks.NestedTupleSource{},
			},
		}
		*slot = &algebricks.Subplan{Nested: nested, In: asg.In}
		return true, nil
	}
	// The aggregate is a subexpression: extract it into its own variable
	// produced by a subplan below the assign, and substitute the reference.
	cv := p.Vars.New()
	nested := &algebricks.Aggregate{
		Aggs: []algebricks.AggExpr{{V: cv, Fn: cnt.Fn, Arg: arg}},
		In: &algebricks.Unnest{
			V: j, E: algebricks.Call("iterate", algebricks.VarRef(seqVar)),
			In: &algebricks.NestedTupleSource{},
		},
	}
	asg.E = replaceExprNode(asg.E, cnt, algebricks.VarRef(cv))
	asg.In = &algebricks.Subplan{Nested: nested, In: asg.In}
	return true, nil
}

var aggregateRuleFns = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// findAggOverSequence returns the first aggregate call whose single
// argument references exactly one grouped sequence variable of gb, searching
// e depth-first.
func findAggOverSequence(e algebricks.Expr, gb *algebricks.GroupBy) *algebricks.CallExpr {
	call, ok := e.(*algebricks.CallExpr)
	if !ok {
		return nil
	}
	if aggregateRuleFns[call.Fn] && len(call.Args) == 1 {
		if _, ok := singleSequenceVar(call.Args[0], gb); ok {
			return call
		}
	}
	for _, a := range call.Args {
		if found := findAggOverSequence(a, gb); found != nil {
			return found
		}
	}
	return nil
}

// replaceExprNode replaces the node identified by pointer identity with
// replacement, returning the (possibly new) root.
func replaceExprNode(root algebricks.Expr, target, replacement algebricks.Expr) algebricks.Expr {
	if root == target {
		return replacement
	}
	if call, ok := root.(*algebricks.CallExpr); ok {
		for i, a := range call.Args {
			call.Args[i] = replaceExprNode(a, target, replacement)
		}
	}
	return root
}

// groupByBelow returns the GroupBy reachable from op through Assigns (other
// operators block the match), or nil.
func groupByBelow(op algebricks.Op) *algebricks.GroupBy {
	for {
		switch o := op.(type) {
		case *algebricks.GroupBy:
			return o
		case *algebricks.Assign:
			op = o.In
		default:
			return nil
		}
	}
}

// singleSequenceVar checks that e references exactly one variable and that
// this variable is produced by one of gb's sequence aggregates.
func singleSequenceVar(e algebricks.Expr, gb *algebricks.GroupBy) (algebricks.Var, bool) {
	free := e.FreeVars(nil)
	if len(free) != 1 {
		return 0, false
	}
	for _, a := range gb.Aggs {
		if a.V == free[0] && a.Fn == "sequence" {
			return free[0], true
		}
	}
	return 0, false
}

// PushAggregateIntoGroupBy pushes a SUBPLAN's incremental AGGREGATE down
// into the GROUP-BY below it, replacing the sequence aggregate: the count
// is computed while each group is formed, and no sequence is ever
// materialized (§4.3, Fig. 11 -> Fig. 12).
type PushAggregateIntoGroupBy struct{}

// Name implements algebricks.Rule.
func (PushAggregateIntoGroupBy) Name() string { return "push-aggregate-into-group-by" }

// Apply implements algebricks.Rule.
func (PushAggregateIntoGroupBy) Apply(p *algebricks.Plan, slot *algebricks.Op) (bool, error) {
	sp, ok := (*slot).(*algebricks.Subplan)
	if !ok {
		return false, nil
	}
	gb, ok := sp.In.(*algebricks.GroupBy)
	if !ok {
		return false, nil
	}
	agg, ok := sp.Nested.(*algebricks.Aggregate)
	if !ok || len(agg.Aggs) != 1 {
		return false, nil
	}
	// Walk the nested chain below the aggregate: inline assigns, then
	// expect UNNEST iterate($seqVar) over NESTED-TUPLE-SOURCE.
	arg := agg.Aggs[0].Arg
	opBelow := agg.In
	for {
		asg, ok := opBelow.(*algebricks.Assign)
		if !ok {
			break
		}
		arg = algebricks.Subst(arg, asg.V, asg.E)
		opBelow = asg.In
	}
	un, ok := opBelow.(*algebricks.Unnest)
	if !ok {
		return false, nil
	}
	if _, ok := un.In.(*algebricks.NestedTupleSource); !ok {
		return false, nil
	}
	iter, ok := un.E.(*algebricks.CallExpr)
	if !ok || iter.Fn != "iterate" || len(iter.Args) != 1 {
		return false, nil
	}
	seqRef, ok := iter.Args[0].(*algebricks.VarExpr)
	if !ok {
		return false, nil
	}
	// Find the matching sequence aggregate in the group-by.
	idx := -1
	for i, a := range gb.Aggs {
		if a.V == seqRef.V && a.Fn == "sequence" {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false, nil
	}
	// The aggregate argument, with the per-item variable substituted by the
	// group-by input expression, becomes the pushed-down aggregate.
	pushedArg := algebricks.Subst(arg, un.V, gb.Aggs[idx].Arg)
	newAgg := algebricks.AggExpr{V: agg.Aggs[0].V, Fn: agg.Aggs[0].Fn, Arg: pushedArg}
	inside := append(opsInSubtree(sp.Nested), sp, gb)
	if varUsedOutside(p, seqRef.V, inside) {
		// The sequence is still needed elsewhere: add the new aggregate
		// alongside instead of replacing.
		gb.Aggs = append(gb.Aggs, newAgg)
	} else {
		gb.Aggs[idx] = newAgg
	}
	*slot = gb
	return true, nil
}

// --- shared helpers ----------------------------------------------------------

// opsInSubtree lists every operator of a subtree, including nested plans.
func opsInSubtree(root algebricks.Op) []algebricks.Op {
	var out []algebricks.Op
	var visit func(op algebricks.Op)
	visit = func(op algebricks.Op) {
		out = append(out, op)
		if sp, ok := op.(*algebricks.Subplan); ok {
			visit(sp.Nested)
		}
		for _, in := range op.InputSlots() {
			visit(*in)
		}
	}
	visit(root)
	return out
}

// varUsedOutside reports whether v is referenced by any operator of the
// plan other than those listed in inside.
func varUsedOutside(p *algebricks.Plan, v algebricks.Var, inside []algebricks.Op) bool {
	skip := make(map[algebricks.Op]bool, len(inside))
	for _, op := range inside {
		skip[op] = true
	}
	found := false
	var visit func(op algebricks.Op)
	visit = func(op algebricks.Op) {
		if found {
			return
		}
		if !skip[op] {
			for _, e := range opExprsOf(op) {
				if algebricks.UsesVar(e, v) {
					found = true
					return
				}
			}
			if dr, ok := op.(*algebricks.DistributeResult); ok {
				for _, rv := range dr.Vs {
					if rv == v {
						found = true
						return
					}
				}
			}
			if pr, ok := op.(*algebricks.Project); ok {
				for _, pv := range pr.Vs {
					if pv == v {
						found = true
						return
					}
				}
			}
		}
		if sp, ok := op.(*algebricks.Subplan); ok {
			visit(sp.Nested)
		}
		for _, in := range op.InputSlots() {
			visit(*in)
		}
	}
	visit(p.Root)
	return found
}

func opExprsOf(op algebricks.Op) []algebricks.Expr {
	switch o := op.(type) {
	case *algebricks.Assign:
		return []algebricks.Expr{o.E}
	case *algebricks.Select:
		return []algebricks.Expr{o.Cond}
	case *algebricks.Unnest:
		return []algebricks.Expr{o.E}
	case *algebricks.Aggregate:
		es := make([]algebricks.Expr, len(o.Aggs))
		for i, a := range o.Aggs {
			es[i] = a.Arg
		}
		return es
	case *algebricks.GroupBy:
		var es []algebricks.Expr
		for _, k := range o.Keys {
			es = append(es, k.E)
		}
		for _, a := range o.Aggs {
			es = append(es, a.Arg)
		}
		return es
	case *algebricks.Join:
		es := []algebricks.Expr{o.Cond}
		es = append(es, o.LeftKeys...)
		es = append(es, o.RightKeys...)
		return es
	default:
		return nil
	}
}

// substVarEverywhere replaces references to from with to in every
// expression of the plan.
func substVarEverywhere(root algebricks.Op, from algebricks.Var, to algebricks.Expr) {
	var visit func(op algebricks.Op)
	visit = func(op algebricks.Op) {
		rewriteOpExprs(op, func(e algebricks.Expr) algebricks.Expr {
			if v, ok := e.(*algebricks.VarExpr); ok && v.V == from {
				return to.Clone()
			}
			return e
		})
		if sp, ok := op.(*algebricks.Subplan); ok {
			visit(sp.Nested)
		}
		for _, in := range op.InputSlots() {
			visit(*in)
		}
	}
	visit(root)
}

// rewriteOpExprs applies f bottom-up to every (sub)expression of one
// operator, in place.
func rewriteOpExprs(op algebricks.Op, f func(algebricks.Expr) algebricks.Expr) {
	rw := func(e algebricks.Expr) algebricks.Expr { return rewriteExpr(e, f) }
	switch o := op.(type) {
	case *algebricks.Assign:
		o.E = rw(o.E)
	case *algebricks.Select:
		o.Cond = rw(o.Cond)
	case *algebricks.Unnest:
		o.E = rw(o.E)
	case *algebricks.Aggregate:
		for i := range o.Aggs {
			o.Aggs[i].Arg = rw(o.Aggs[i].Arg)
		}
	case *algebricks.GroupBy:
		for i := range o.Keys {
			o.Keys[i].E = rw(o.Keys[i].E)
		}
		for i := range o.Aggs {
			o.Aggs[i].Arg = rw(o.Aggs[i].Arg)
		}
	case *algebricks.Join:
		o.Cond = rw(o.Cond)
		for i := range o.LeftKeys {
			o.LeftKeys[i] = rw(o.LeftKeys[i])
		}
		for i := range o.RightKeys {
			o.RightKeys[i] = rw(o.RightKeys[i])
		}
	}
}

func rewriteExpr(e algebricks.Expr, f func(algebricks.Expr) algebricks.Expr) algebricks.Expr {
	if c, ok := e.(*algebricks.CallExpr); ok {
		for i, a := range c.Args {
			c.Args[i] = rewriteExpr(a, f)
		}
	}
	return f(e)
}

// --- Index rule (the paper's §6 future work) ---------------------------------

// PushRangeFilterIntoDataScan attaches a zone-map range filter to a DATASCAN
// when a SELECT directly above it bounds a scalar path of the scanned items
// with constant comparisons. The SELECT itself is kept — the filter only
// lets the scan skip whole files whose indexed [min,max] range cannot
// satisfy the predicate, implementing the paper's future-work direction:
// "indexing will further improve the system's performance since the
// searched data volume will be significantly reduced" (§6).
type PushRangeFilterIntoDataScan struct{}

// Name implements algebricks.Rule.
func (PushRangeFilterIntoDataScan) Name() string { return "push-range-filter-into-datascan" }

// Apply implements algebricks.Rule.
func (PushRangeFilterIntoDataScan) Apply(p *algebricks.Plan, slot *algebricks.Op) (bool, error) {
	sel, ok := (*slot).(*algebricks.Select)
	if !ok {
		return false, nil
	}
	scan, ok := sel.In.(*algebricks.DataScan)
	if !ok || scan.Filter != nil {
		return false, nil
	}
	// Collect range bounds per relative path; use the first path that has
	// any bound.
	var filter *hyracks.ScanFilter
	for _, conj := range algebricks.Conjuncts(sel.Cond) {
		call, ok := conj.(*algebricks.CallExpr)
		if !ok || len(call.Args) != 2 {
			continue
		}
		pathArg, constArg := call.Args[0], call.Args[1]
		op := call.Fn
		steps, ok := pathSteps(pathArg, scan.V)
		if !ok {
			// Try the flipped orientation: const cmp path.
			steps, ok = pathSteps(constArg, scan.V)
			if !ok {
				continue
			}
			pathArg, constArg = constArg, pathArg
			op = flipComparison(op)
		}
		c, ok := constArg.(*algebricks.ConstExpr)
		if !ok || len(c.Seq) != 1 {
			continue
		}
		switch c.Seq[0].Kind() {
		case item.KindObject, item.KindArray:
			continue
		}
		bound := c.Seq[0]
		full := scan.Project.Append(steps...)
		if filter == nil {
			filter = &hyracks.ScanFilter{Path: full}
		} else if !filter.Path.Equal(full) {
			continue // a different path; one filter per scan
		}
		switch op {
		case "eq":
			tightenLo(filter, bound, false)
			tightenHi(filter, bound, false)
		case "ge":
			tightenLo(filter, bound, false)
		case "gt":
			tightenLo(filter, bound, true)
		case "le":
			tightenHi(filter, bound, false)
		case "lt":
			tightenHi(filter, bound, true)
		default:
			if filter.Lo == nil && filter.Hi == nil {
				filter = nil // the first conjunct didn't contribute a bound
			}
			continue
		}
	}
	if filter == nil || (filter.Lo == nil && filter.Hi == nil) {
		return false, nil
	}
	scan.Filter = filter
	return true, nil
}

func flipComparison(op string) string {
	switch op {
	case "lt":
		return "gt"
	case "le":
		return "ge"
	case "gt":
		return "lt"
	case "ge":
		return "le"
	default:
		return op // eq/ne are symmetric
	}
}

func tightenLo(f *hyracks.ScanFilter, bound item.Item, strict bool) {
	if f.Lo == nil || item.Compare(bound, f.Lo) > 0 {
		f.Lo, f.LoStrict = bound, strict
	} else if item.Compare(bound, f.Lo) == 0 && strict {
		f.LoStrict = true
	}
}

func tightenHi(f *hyracks.ScanFilter, bound item.Item, strict bool) {
	if f.Hi == nil || item.Compare(bound, f.Hi) < 0 {
		f.Hi, f.HiStrict = bound, strict
	} else if item.Compare(bound, f.Hi) == 0 && strict {
		f.HiStrict = true
	}
}
