// Package core implements the paper's contribution: the JSONiq-specific
// compilation pipeline on top of Algebricks. It contains
//
//   - the translator from JSONiq ASTs to the *original* (unoptimized)
//     logical plans of Figs. 3, 5 and 9 of the paper, and
//   - the three categories of JSONiq rewrite rules of §4 — path expression
//     rules, pipelining rules and group-by rules — expressed as Algebricks
//     rules, plus the rule-set sequencing that applies them.
package core

import (
	"fmt"
	"sort"
	"strings"

	"vxq/internal/algebricks"
	"vxq/internal/jsoniq"
)

// Translate converts a parsed query into the unoptimized logical plan, the
// exact shape the paper's rewrite rules start from: collection() evaluated
// by an ASSIGN, keys-or-members evaluated in two steps (ASSIGN +
// UNNEST iterate), promote/data/treat expressions inserted, group-by
// aggregating into sequences.
func Translate(query jsoniq.Expr) (*algebricks.Plan, error) {
	p, _, err := translateQuery(query)
	return p, err
}

// translateQuery is Translate plus the ordered flag (true when the query
// contains an order-by clause, so result order must be preserved).
func translateQuery(query jsoniq.Expr) (*algebricks.Plan, bool, error) {
	tr := &translator{
		vars: &algebricks.VarAllocator{},
		env:  map[string]binding{},
	}
	tr.chain = &algebricks.EmptyTupleSource{}
	v, err := tr.translateSequence(query)
	if err != nil {
		return nil, false, err
	}
	root := &algebricks.DistributeResult{Vs: []algebricks.Var{v}, In: tr.chain}
	return algebricks.NewPlan(root, tr.vars), tr.ordered, nil
}

// binding maps a query variable name to its logical variable; grouped
// records whether the variable was re-bound to a sequence by a group-by
// clause (which is what makes the translator insert treat expressions, as
// in Fig. 9).
type binding struct {
	v       algebricks.Var
	grouped bool
}

type translator struct {
	vars  *algebricks.VarAllocator
	chain algebricks.Op
	env   map[string]binding
	// ordered records whether an order-by clause was translated, so the
	// engine knows to preserve the result order.
	ordered bool
}

// translateSequence translates a top-level (sequence-valued) expression:
// the value is computed per tuple and unnested so the job's result is the
// flattened sequence, one item per tuple, matching the DISTRIBUTE step of
// the paper's plans.
func (tr *translator) translateSequence(e jsoniq.Expr) (algebricks.Var, error) {
	if fl, ok := e.(*jsoniq.FLWOR); ok {
		if err := tr.translateClauses(fl.Clauses); err != nil {
			return 0, err
		}
		return tr.bindUnnested(fl.Return)
	}
	return tr.bindUnnested(e)
}

// bindUnnested evaluates e as a scalar expression and unnests the result so
// each item becomes one output tuple.
func (tr *translator) bindUnnested(e jsoniq.Expr) (algebricks.Var, error) {
	expr, err := tr.scalar(e)
	if err != nil {
		return 0, err
	}
	src := expr
	if _, isVar := expr.(*algebricks.VarExpr); !isVar {
		v := tr.vars.New()
		tr.chain = &algebricks.Assign{V: v, E: expr, In: tr.chain}
		src = algebricks.VarRef(v)
	}
	out := tr.vars.New()
	tr.chain = &algebricks.Unnest{V: out, E: algebricks.Call("iterate", src), In: tr.chain}
	return out, nil
}

func (tr *translator) translateClauses(clauses []jsoniq.Clause) error {
	for _, c := range clauses {
		switch cl := c.(type) {
		case *jsoniq.ForClause:
			if err := tr.translateFor(cl); err != nil {
				return err
			}
		case *jsoniq.LetClause:
			expr, err := tr.scalar(cl.E)
			if err != nil {
				return err
			}
			v := tr.vars.New()
			tr.chain = &algebricks.Assign{V: v, E: expr, In: tr.chain}
			tr.env[cl.Var] = binding{v: v}
		case *jsoniq.WhereClause:
			cond, err := tr.scalar(cl.E)
			if err != nil {
				return err
			}
			tr.chain = &algebricks.Select{Cond: cond, In: tr.chain}
		case *jsoniq.GroupByClause:
			if err := tr.translateGroupBy(cl); err != nil {
				return err
			}
		case *jsoniq.OrderByClause:
			keys := make([]algebricks.SortKey, len(cl.Keys))
			for i, k := range cl.Keys {
				e, err := tr.scalar(k.E)
				if err != nil {
					return err
				}
				keys[i] = algebricks.SortKey{E: e, Desc: k.Descending}
			}
			tr.chain = &algebricks.Sort{Keys: keys, In: tr.chain}
			tr.ordered = true
		default:
			return fmt.Errorf("core: unsupported clause %T", c)
		}
	}
	return nil
}

// translateFor translates one for clause. An independent domain (one that
// references no bound variables) over a non-empty chain becomes a
// cross-product join, which the generic Algebricks join-extraction rule
// later turns into a hash join (the Q2 shape).
func (tr *translator) translateFor(cl *jsoniq.ForClause) error {
	_, chainIsLeaf := tr.chain.(*algebricks.EmptyTupleSource)
	if !chainIsLeaf && tr.isIndependent(cl.In) {
		right := &translator{vars: tr.vars, env: map[string]binding{}}
		right.chain = &algebricks.EmptyTupleSource{}
		if err := right.translateFor(cl); err != nil {
			return err
		}
		tr.chain = &algebricks.Join{
			Cond:  algebricks.True(),
			Left:  tr.chain,
			Right: right.chain,
		}
		for name, b := range right.env {
			tr.env[name] = b
		}
		return nil
	}

	// The translator produces the two-step keys-or-members evaluation of
	// Fig. 3 / Fig. 5: the whole domain path is evaluated by ASSIGNs, then
	// UNNEST iterate splits the sequence into tuples. A collection() at the
	// root of the path gets its own ASSIGN + UNNEST iterate pair (Fig. 5:
	// the collection is materialized, then iterated file by file) — the
	// exact shape the pipelining rules rewrite into DATASCAN.
	domain, err := tr.rewriteCollectionBase(cl.In)
	if err != nil {
		return err
	}
	expr, err := tr.scalar(domain)
	if err != nil {
		return err
	}
	src := expr
	if _, isVar := expr.(*algebricks.VarExpr); !isVar {
		// Mirror the paper's plans: if the outermost step is
		// keys-or-members, keep it in its own ASSIGN (Fig. 3 has one ASSIGN
		// for the value navigation and a second for keys-or-members).
		if call, ok := expr.(*algebricks.CallExpr); ok && call.Fn == "keys-or-members" {
			if _, innerIsVar := call.Args[0].(*algebricks.VarExpr); !innerIsVar {
				inner := tr.vars.New()
				tr.chain = &algebricks.Assign{V: inner, E: call.Args[0], In: tr.chain}
				call.Args[0] = algebricks.VarRef(inner)
			}
		}
		v := tr.vars.New()
		tr.chain = &algebricks.Assign{V: v, E: expr, In: tr.chain}
		src = algebricks.VarRef(v)
	}
	out := tr.vars.New()
	tr.chain = &algebricks.Unnest{V: out, E: algebricks.Call("iterate", src), In: tr.chain}
	tr.env[cl.Var] = binding{v: out}
	return nil
}

// rewriteCollectionBase checks whether the for-domain is a navigation path
// rooted at collection(...); if so it emits the Fig. 5 pair — ASSIGN
// $c := collection(...) materializing the whole collection, UNNEST
// $f := iterate($c) splitting it into files — and returns the domain with
// the collection call replaced by a reference to the per-file variable.
func (tr *translator) rewriteCollectionBase(domain jsoniq.Expr) (jsoniq.Expr, error) {
	base := domain
	for {
		switch x := base.(type) {
		case *jsoniq.Value:
			base = x.Base
			continue
		case *jsoniq.KeysOrMembers:
			base = x.Base
			continue
		}
		break
	}
	call, ok := base.(*jsoniq.Call)
	if !ok || call.Fn != "collection" || len(call.Args) != 1 {
		return domain, nil
	}
	collExpr, err := tr.scalarCall(call)
	if err != nil {
		return nil, err
	}
	vc := tr.vars.New()
	tr.chain = &algebricks.Assign{V: vc, E: collExpr, In: tr.chain}
	vf := tr.vars.New()
	tr.chain = &algebricks.Unnest{V: vf, E: algebricks.Call("iterate", algebricks.VarRef(vc)), In: tr.chain}
	name := fmt.Sprintf("#file%d", int(vf))
	tr.env[name] = binding{v: vf}
	return replaceBase(domain, call, &jsoniq.VarRef{Name: name}), nil
}

// replaceBase rebuilds a postfix chain with its innermost base swapped.
func replaceBase(e jsoniq.Expr, oldBase jsoniq.Expr, newBase jsoniq.Expr) jsoniq.Expr {
	if e == oldBase {
		return newBase
	}
	switch x := e.(type) {
	case *jsoniq.Value:
		return &jsoniq.Value{Base: replaceBase(x.Base, oldBase, newBase), Key: x.Key}
	case *jsoniq.KeysOrMembers:
		return &jsoniq.KeysOrMembers{Base: replaceBase(x.Base, oldBase, newBase)}
	default:
		return e
	}
}

// isIndependent reports whether e references no variables bound in the
// current environment.
func (tr *translator) isIndependent(e jsoniq.Expr) bool {
	free := queryFreeVars(e, nil)
	for _, name := range free {
		if _, bound := tr.env[name]; bound {
			return false
		}
	}
	return true
}

func queryFreeVars(e jsoniq.Expr, acc []string) []string {
	switch x := e.(type) {
	case *jsoniq.VarRef:
		return append(acc, x.Name)
	case *jsoniq.Call:
		for _, a := range x.Args {
			acc = queryFreeVars(a, acc)
		}
		return acc
	case *jsoniq.Binary:
		return queryFreeVars(x.R, queryFreeVars(x.L, acc))
	case *jsoniq.Value:
		return queryFreeVars(x.Key, queryFreeVars(x.Base, acc))
	case *jsoniq.KeysOrMembers:
		return queryFreeVars(x.Base, acc)
	case *jsoniq.ObjectCons:
		for _, pair := range x.Pairs {
			acc = queryFreeVars(pair.Value, queryFreeVars(pair.Key, acc))
		}
		return acc
	case *jsoniq.ArrayCons:
		for _, m := range x.Members {
			acc = queryFreeVars(m, acc)
		}
		return acc
	case *jsoniq.FLWOR:
		// Variables bound by inner clauses shadow outer ones; for the
		// purposes of independence a conservative over-approximation
		// (treat all referenced names as free) is fine.
		for _, c := range x.Clauses {
			switch cl := c.(type) {
			case *jsoniq.ForClause:
				acc = queryFreeVars(cl.In, acc)
			case *jsoniq.LetClause:
				acc = queryFreeVars(cl.E, acc)
			case *jsoniq.WhereClause:
				acc = queryFreeVars(cl.E, acc)
			case *jsoniq.GroupByClause:
				for _, k := range cl.Keys {
					acc = queryFreeVars(k.E, acc)
				}
			case *jsoniq.OrderByClause:
				for _, k := range cl.Keys {
					acc = queryFreeVars(k.E, acc)
				}
			}
		}
		return queryFreeVars(x.Return, acc)
	default:
		return acc
	}
}

// translateGroupBy emits the Fig. 9 shape: GROUP-BY with the key
// expressions, whose inner focus AGGREGATEs every previously bound variable
// into a sequence; those variables are re-bound to the sequences and marked
// grouped so later references go through treat.
func (tr *translator) translateGroupBy(cl *jsoniq.GroupByClause) error {
	keys := make([]algebricks.KeyExpr, len(cl.Keys))
	for i, k := range cl.Keys {
		e, err := tr.scalar(k.E)
		if err != nil {
			return err
		}
		keys[i] = algebricks.KeyExpr{V: tr.vars.New(), E: e}
	}
	var names []string
	for name := range tr.env {
		// Internal bindings (the per-file variable of a collection scan)
		// are never referenced after grouping and are not re-aggregated.
		if !strings.HasPrefix(name, "#") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var aggs []algebricks.AggExpr
	newEnv := map[string]binding{}
	for _, name := range names {
		av := tr.vars.New()
		aggs = append(aggs, algebricks.AggExpr{V: av, Fn: "sequence", Arg: algebricks.VarRef(tr.env[name].v)})
		newEnv[name] = binding{v: av, grouped: true}
	}
	tr.chain = &algebricks.GroupBy{Keys: keys, Aggs: aggs, In: tr.chain}
	tr.env = newEnv
	// The key names become visible after grouping.
	for i, k := range cl.Keys {
		tr.env[k.Var] = binding{v: keys[i].V}
	}
	return nil
}

// aggregateFns maps JSONiq aggregate function names to logical aggregate
// operators.
var aggregateFns = map[string]string{
	"count": "count", "sum": "sum", "avg": "avg", "min": "min", "max": "max",
}

// scalar translates an expression used in scalar position into a logical
// expression, possibly emitting operators (ASSIGNs, SUBPLANs, AGGREGATEs)
// into the chain.
func (tr *translator) scalar(e jsoniq.Expr) (algebricks.Expr, error) {
	switch x := e.(type) {
	case *jsoniq.NumberLit:
		return algebricks.Num(x.Value), nil
	case *jsoniq.StringLit:
		return algebricks.Str(x.Value), nil
	case *jsoniq.VarRef:
		b, ok := tr.env[x.Name]
		if !ok {
			return nil, fmt.Errorf("core: unbound variable $%s", x.Name)
		}
		if b.grouped {
			// A grouped (sequence) variable is referenced through a treat
			// expression, as the static typing of the original VXQuery
			// translator would insert (Fig. 9).
			tv := tr.vars.New()
			tr.chain = &algebricks.Assign{
				V: tv, E: algebricks.Call("treat", algebricks.VarRef(b.v)), In: tr.chain,
			}
			tr.env[x.Name] = binding{v: tv, grouped: false}
			return algebricks.VarRef(tv), nil
		}
		return algebricks.VarRef(b.v), nil
	case *jsoniq.Value:
		base, err := tr.scalar(x.Base)
		if err != nil {
			return nil, err
		}
		key, err := tr.scalar(x.Key)
		if err != nil {
			return nil, err
		}
		return algebricks.Call("value", base, key), nil
	case *jsoniq.KeysOrMembers:
		base, err := tr.scalar(x.Base)
		if err != nil {
			return nil, err
		}
		return algebricks.Call("keys-or-members", base), nil
	case *jsoniq.Binary:
		return tr.scalarBinary(x)
	case *jsoniq.Call:
		return tr.scalarCall(x)
	case *jsoniq.ObjectCons:
		args := make([]algebricks.Expr, 0, 2*len(x.Pairs))
		for _, pair := range x.Pairs {
			k, err := tr.scalar(pair.Key)
			if err != nil {
				return nil, err
			}
			v, err := tr.scalar(pair.Value)
			if err != nil {
				return nil, err
			}
			args = append(args, k, v)
		}
		return algebricks.Call("object", args...), nil
	case *jsoniq.ArrayCons:
		args := make([]algebricks.Expr, len(x.Members))
		for i, m := range x.Members {
			a, err := tr.scalar(m)
			if err != nil {
				return nil, err
			}
			args[i] = a
		}
		return algebricks.Call("array", args...), nil
	case *jsoniq.FLWOR:
		return nil, fmt.Errorf("core: FLWOR expression only supported at top level or as aggregate argument")
	default:
		return nil, fmt.Errorf("core: unsupported expression %T", e)
	}
}

var binaryFns = map[string]string{
	"+": "add", "-": "sub", "*": "mul", "div": "div", "mod": "mod",
	"eq": "eq", "ne": "ne", "lt": "lt", "le": "le", "gt": "gt", "ge": "ge",
	"and": "and", "or": "or",
}

func (tr *translator) scalarBinary(x *jsoniq.Binary) (algebricks.Expr, error) {
	fn, ok := binaryFns[x.Op]
	if !ok {
		return nil, fmt.Errorf("core: unsupported operator %q", x.Op)
	}
	l, err := tr.scalar(x.L)
	if err != nil {
		return nil, err
	}
	r, err := tr.scalar(x.R)
	if err != nil {
		return nil, err
	}
	return algebricks.Call(fn, l, r), nil
}

func (tr *translator) scalarCall(x *jsoniq.Call) (algebricks.Expr, error) {
	// Aggregate functions over FLWOR arguments become dataflow (the Q1b /
	// Q2 shapes); over plain arguments they stay scalar (the Q1 shape the
	// group-by conversion rule rewrites).
	if aggFn, isAgg := aggregateFns[x.Fn]; isAgg && len(x.Args) == 1 {
		if fl, ok := x.Args[0].(*jsoniq.FLWOR); ok {
			return tr.translateAggregatedFLWOR(aggFn, fl)
		}
	}
	switch x.Fn {
	case "collection", "json-doc":
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("core: %s expects one argument", x.Fn)
		}
		arg, err := tr.scalar(x.Args[0])
		if err != nil {
			return nil, err
		}
		// The original VXQuery translator guards the argument with promote
		// and data to ensure it is a string (§4.1); the path expression
		// rules remove them.
		return algebricks.Call(x.Fn,
			algebricks.Call("promote", algebricks.Call("data", arg))), nil
	default:
		args := make([]algebricks.Expr, len(x.Args))
		for i, a := range x.Args {
			arg, err := tr.scalar(a)
			if err != nil {
				return nil, err
			}
			args[i] = arg
		}
		return algebricks.Call(x.Fn, args...), nil
	}
}

// translateAggregatedFLWOR translates count/sum/avg over a FLWOR argument.
// With an empty chain (top level, the Q2 shape) the FLWOR is inlined into
// the main dataflow and folded by an AGGREGATE operator. Otherwise (the Q1b
// shape: the FLWOR iterates over an in-scope variable) it becomes a SUBPLAN
// whose nested plan unnests the variable and aggregates incrementally —
// exactly Fig. 11.
func (tr *translator) translateAggregatedFLWOR(fn string, fl *jsoniq.FLWOR) (algebricks.Expr, error) {
	if _, leaf := tr.chain.(*algebricks.EmptyTupleSource); leaf {
		if err := tr.translateClauses(fl.Clauses); err != nil {
			return nil, err
		}
		ret, err := tr.scalar(fl.Return)
		if err != nil {
			return nil, err
		}
		av := tr.vars.New()
		tr.chain = &algebricks.Aggregate{
			Aggs: []algebricks.AggExpr{{V: av, Fn: fn, Arg: ret}},
			In:   tr.chain,
		}
		return algebricks.VarRef(av), nil
	}
	// Nested: build the subplan over the current tuple.
	nested := &translator{vars: tr.vars, env: map[string]binding{}}
	for name, b := range tr.env {
		nested.env[name] = binding{v: b.v} // grouped flag cleared: nested for iterates the sequence
	}
	nested.chain = &algebricks.NestedTupleSource{}
	if err := nested.translateNestedClauses(fl.Clauses); err != nil {
		return nil, err
	}
	ret, err := nested.scalar(fl.Return)
	if err != nil {
		return nil, err
	}
	av := tr.vars.New()
	nestedRoot := &algebricks.Aggregate{
		Aggs: []algebricks.AggExpr{{V: av, Fn: fn, Arg: ret}},
		In:   nested.chain,
	}
	tr.chain = &algebricks.Subplan{Nested: nestedRoot, In: tr.chain}
	return algebricks.VarRef(av), nil
}

// translateNestedClauses translates the clauses of a nested FLWOR (inside a
// subplan). Only for-over-variable, let and where are supported, which
// covers the paper's query forms.
func (tr *translator) translateNestedClauses(clauses []jsoniq.Clause) error {
	for _, c := range clauses {
		switch cl := c.(type) {
		case *jsoniq.ForClause:
			expr, err := tr.scalar(cl.In)
			if err != nil {
				return err
			}
			out := tr.vars.New()
			tr.chain = &algebricks.Unnest{V: out, E: algebricks.Call("iterate", expr), In: tr.chain}
			tr.env[cl.Var] = binding{v: out}
		case *jsoniq.LetClause:
			expr, err := tr.scalar(cl.E)
			if err != nil {
				return err
			}
			v := tr.vars.New()
			tr.chain = &algebricks.Assign{V: v, E: expr, In: tr.chain}
			tr.env[cl.Var] = binding{v: v}
		case *jsoniq.WhereClause:
			cond, err := tr.scalar(cl.E)
			if err != nil {
				return err
			}
			tr.chain = &algebricks.Select{Cond: cond, In: tr.chain}
		default:
			return fmt.Errorf("core: clause %T not supported in nested FLWOR", c)
		}
	}
	return nil
}
