package runtime

import (
	"fmt"
	"math"
	"strings"

	"vxq/internal/item"
)

// String and numeric function library (XQuery F&O subset). All functions
// follow XQuery value semantics: an empty argument yields the empty
// sequence for the value-typed functions; string functions treat an empty
// argument as the empty string.

// stringValue renders a scalar item as its string value.
func stringValue(it item.Item) (string, error) {
	switch x := it.(type) {
	case item.String:
		return string(x), nil
	case item.Number:
		return item.JSON(x), nil
	case item.Bool:
		if x {
			return "true", nil
		}
		return "false", nil
	case item.Null:
		return "null", nil
	case item.DateTime:
		return x.String(), nil
	default:
		return "", fmt.Errorf("no string value for a %s", it.Kind())
	}
}

// optString extracts the string value of an optional singleton argument;
// an empty sequence is the empty string (XQuery's fn:string-join-like
// laxity for string arguments).
func optString(s item.Sequence) (string, error) {
	if len(s) == 0 {
		return "", nil
	}
	it, err := s.One()
	if err != nil {
		return "", err
	}
	return stringValue(it)
}

// FnString is fn:string: the string value of the argument ("" for empty).
var FnString = register(&Function{
	Name:  "string",
	Arity: 1,
	Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
		s, err := optString(args[0])
		if err != nil {
			return nil, err
		}
		return item.Single(item.String(s)), nil
	},
})

// FnConcat is fn:concat over any number of arguments.
var FnConcat = register(&Function{
	Name:  "concat",
	Arity: -1,
	Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
		var b strings.Builder
		for _, a := range args {
			s, err := optString(a)
			if err != nil {
				return nil, err
			}
			b.WriteString(s)
		}
		return item.Single(item.String(b.String())), nil
	},
})

// FnStringLength is fn:string-length (in runes).
var FnStringLength = register(&Function{
	Name:  "string-length",
	Arity: 1,
	Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
		s, err := optString(args[0])
		if err != nil {
			return nil, err
		}
		return item.Single(item.Number(len([]rune(s)))), nil
	},
})

// FnSubstring is fn:substring(s, start[, length]) with XQuery's 1-based
// rounding semantics.
var FnSubstring = register(&Function{
	Name:  "substring",
	Arity: -1,
	Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("substring expects 2 or 3 arguments, got %d", len(args))
		}
		s, err := optString(args[0])
		if err != nil {
			return nil, err
		}
		start, err := numberArg(args[1])
		if err != nil {
			return nil, err
		}
		runes := []rune(s)
		length := math.Inf(1)
		if len(args) == 3 {
			if length, err = numberArg(args[2]); err != nil {
				return nil, err
			}
		}
		// XQuery: characters at positions p with
		// round(start) <= p < round(start) + round(length).
		from := int(math.Round(start))
		var to int
		if math.IsInf(length, 1) {
			to = len(runes) + 1
		} else {
			to = from + int(math.Round(length))
		}
		if from < 1 {
			from = 1
		}
		if to > len(runes)+1 {
			to = len(runes) + 1
		}
		if from >= to {
			return item.Single(item.String("")), nil
		}
		return item.Single(item.String(string(runes[from-1 : to-1]))), nil
	},
})

func numberArg(s item.Sequence) (float64, error) {
	it, err := s.One()
	if err != nil {
		return 0, err
	}
	n, ok := it.(item.Number)
	if !ok {
		return 0, fmt.Errorf("expected number, got %s", it.Kind())
	}
	return float64(n), nil
}

func stringPredicate(name string, pred func(s, sub string) bool) *Function {
	return register(&Function{
		Name:  name,
		Arity: 2,
		Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
			s, err := optString(args[0])
			if err != nil {
				return nil, err
			}
			sub, err := optString(args[1])
			if err != nil {
				return nil, err
			}
			return item.Single(item.Bool(pred(s, sub))), nil
		},
	})
}

// String predicates.
var (
	FnContains   = stringPredicate("contains", strings.Contains)
	FnStartsWith = stringPredicate("starts-with", strings.HasPrefix)
	FnEndsWith   = stringPredicate("ends-with", strings.HasSuffix)
)

func stringMapper(name string, f func(string) string) *Function {
	return register(&Function{
		Name:  name,
		Arity: 1,
		Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
			s, err := optString(args[0])
			if err != nil {
				return nil, err
			}
			return item.Single(item.String(f(s))), nil
		},
	})
}

// String transformations.
var (
	FnUpperCase = stringMapper("upper-case", strings.ToUpper)
	FnLowerCase = stringMapper("lower-case", strings.ToLower)
)

func numericMapper(name string, f func(float64) float64) *Function {
	return register(&Function{
		Name:  name,
		Arity: 1,
		Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
			if len(args[0]) == 0 {
				return nil, nil
			}
			n, err := numberArg(args[0])
			if err != nil {
				return nil, err
			}
			return item.Single(item.Number(f(n))), nil
		},
	})
}

// Numeric functions.
var (
	FnAbs     = numericMapper("abs", math.Abs)
	FnFloor   = numericMapper("floor", math.Floor)
	FnCeiling = numericMapper("ceiling", math.Ceil)
	FnRound   = numericMapper("round", math.Round)
)

// Sequence predicates and folds.
var (
	// FnExists is fn:exists.
	FnExists = register(&Function{
		Name:  "exists",
		Arity: 1,
		Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
			return item.Single(item.Bool(len(args[0]) > 0)), nil
		},
	})
	// FnEmpty is fn:empty.
	FnEmpty = register(&Function{
		Name:  "empty",
		Arity: 1,
		Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
			return item.Single(item.Bool(len(args[0]) == 0)), nil
		},
	})
)

func extremumFold(name string, keepLeft func(c int) bool) *Function {
	return register(&Function{
		Name:  name,
		Arity: 1,
		Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
			if len(args[0]) == 0 {
				return nil, nil
			}
			best := args[0][0]
			for _, it := range args[0][1:] {
				if it.Kind() != best.Kind() {
					return nil, fmt.Errorf("mixed kinds %s and %s", best.Kind(), it.Kind())
				}
				if !keepLeft(item.Compare(best, it)) {
					best = it
				}
			}
			return item.Single(best), nil
		},
	})
}

// Scalar min/max folds over materialized sequences.
var (
	FnMin = extremumFold("min", func(c int) bool { return c <= 0 })
	FnMax = extremumFold("max", func(c int) bool { return c >= 0 })
)
