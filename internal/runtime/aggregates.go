package runtime

import (
	"fmt"

	"vxq/internal/item"
)

// AggFunc is an incremental aggregate function. AGGREGATE and GROUP-BY
// operators feed one evaluated argument sequence per input tuple into a
// fresh state and finish it when the group (or the whole input) ends.
type AggFunc struct {
	Name string
	// New returns a fresh aggregation state.
	New func() AggState
}

// AggState is the running state of one aggregate computation.
type AggState interface {
	// Step folds one input value into the state.
	Step(v item.Sequence) error
	// Finish produces the aggregate result.
	Finish() (item.Sequence, error)
	// Size estimates the state's memory footprint in bytes.
	Size() int64
}

// SpillableState is the optional AggState extension the out-of-core group-by
// needs. When its memory budget is hit, the operator snapshots every live
// group's states as "partial" tuples on disk and later merges them back into
// fresh states. Snapshot encodes the running state as an item sequence (using
// only what item.EncodeSeq can carry); Merge folds such a sequence into the
// state. For any input split into a prefix P and suffix S, stepping P,
// snapshotting, merging the snapshot into a fresh state and stepping S must
// give the same result as stepping P then S into one state — including
// float accumulation order, so sums stay bit-identical to the in-memory path.
// Counts survive the float64 round-trip exactly below 2^53.
//
// A group-by whose aggregates do not all implement SpillableState stays on
// the in-memory path regardless of budget.
type SpillableState interface {
	Snapshot() (item.Sequence, error)
	Merge(v item.Sequence) error
}

// CountStepper is an optional AggState fast path for states that only need
// the number of items in each input, not the items themselves. Operators
// that hold tuples in encoded form read the sequence count straight from the
// encoding (item.SeqCountEncoded) and call StepCount instead of evaluating
// and decoding the argument. StepCount(len(v)) must be equivalent to
// Step(v) for every input v.
type CountStepper interface {
	StepCount(n int64) error
}

var aggFuncs = map[string]*AggFunc{}

func registerAgg(f *AggFunc) *AggFunc {
	if _, dup := aggFuncs[f.Name]; dup {
		panic("runtime: duplicate aggregate " + f.Name)
	}
	aggFuncs[f.Name] = f
	return f
}

// LookupAgg returns the named aggregate function.
func LookupAgg(name string) (*AggFunc, error) {
	f, ok := aggFuncs[name]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown aggregate %q", name)
	}
	return f, nil
}

// MustAgg is LookupAgg for trusted callers.
func MustAgg(name string) *AggFunc {
	f, err := LookupAgg(name)
	if err != nil {
		panic(err)
	}
	return f
}

// AggSequence materializes all input items into one sequence — the
// unoptimized GROUP-BY nested aggregate of Fig. 9 ("put all the objects
// whose grouping field has the same value in the same sequence"). It is what
// the group-by rules eliminate.
var AggSequence = registerAgg(&AggFunc{
	Name: "agg-sequence",
	New:  func() AggState { return &seqState{} },
})

type seqState struct {
	seq  item.Sequence
	size int64
}

func (s *seqState) Step(v item.Sequence) error {
	s.seq = append(s.seq, v...)
	s.size += item.SizeBytesSeq(v)
	return nil
}
func (s *seqState) Finish() (item.Sequence, error) { return s.seq, nil }
func (s *seqState) Size() int64                    { return 24 + s.size }

// Snapshot implements SpillableState: the state is the sequence itself.
func (s *seqState) Snapshot() (item.Sequence, error) { return s.seq, nil }

// Merge implements SpillableState: appending a snapshot is exactly Step.
func (s *seqState) Merge(v item.Sequence) error { return s.Step(v) }

// AggCount counts input items incrementally (after the group-by rules
// convert the scalar count). It doubles as the local half of two-step
// counting.
var AggCount = registerAgg(&AggFunc{
	Name: "agg-count",
	New:  func() AggState { return &countState{} },
})

type countState struct{ n int64 }

func (s *countState) Step(v item.Sequence) error {
	s.n += int64(len(v))
	return nil
}

// StepCount implements the CountStepper fast path: counting never needs the
// decoded items.
func (s *countState) StepCount(n int64) error {
	s.n += n
	return nil
}
func (s *countState) Finish() (item.Sequence, error) {
	return item.Single(item.Number(s.n)), nil
}
func (s *countState) Size() int64 { return 8 }

// Snapshot implements SpillableState.
func (s *countState) Snapshot() (item.Sequence, error) {
	return item.Single(item.Number(s.n)), nil
}

// Merge implements SpillableState: a snapshot carries the running count, not
// items to count, so it is added rather than stepped.
func (s *countState) Merge(v item.Sequence) error {
	for _, it := range v {
		n, ok := it.(item.Number)
		if !ok {
			return fmt.Errorf("agg-count: bad snapshot %s", item.JSON(it))
		}
		s.n += int64(n)
	}
	return nil
}

// AggSum sums numeric inputs incrementally. It is also the global half of
// two-step counting (global count = sum of local counts).
var AggSum = registerAgg(&AggFunc{
	Name: "agg-sum",
	New:  func() AggState { return &sumState{} },
})

type sumState struct{ sum float64 }

func (s *sumState) Step(v item.Sequence) error {
	for _, it := range v {
		n, ok := it.(item.Number)
		if !ok {
			return fmt.Errorf("agg-sum: expected number, got %s", it.Kind())
		}
		s.sum += float64(n)
	}
	return nil
}
func (s *sumState) Finish() (item.Sequence, error) {
	return item.Single(item.Number(s.sum)), nil
}
func (s *sumState) Size() int64 { return 8 }

// Snapshot implements SpillableState.
func (s *sumState) Snapshot() (item.Sequence, error) {
	return item.Single(item.Number(s.sum)), nil
}

// Merge implements SpillableState: adding a snapshot's running sum is Step.
func (s *sumState) Merge(v item.Sequence) error { return s.Step(v) }

// AggAvg averages numeric inputs incrementally (single-step).
var AggAvg = registerAgg(&AggFunc{
	Name: "agg-avg",
	New:  func() AggState { return &avgState{} },
})

type avgState struct {
	sum float64
	n   int64
}

func (s *avgState) Step(v item.Sequence) error {
	for _, it := range v {
		num, ok := it.(item.Number)
		if !ok {
			return fmt.Errorf("agg-avg: expected number, got %s", it.Kind())
		}
		s.sum += float64(num)
		s.n++
	}
	return nil
}
func (s *avgState) Finish() (item.Sequence, error) {
	if s.n == 0 {
		return nil, nil
	}
	return item.Single(item.Number(s.sum / float64(s.n))), nil
}
func (s *avgState) Size() int64 { return 16 }

// Snapshot implements SpillableState (shared by agg-avg-local via embedding:
// both keep the same (sum, count) state).
func (s *avgState) Snapshot() (item.Sequence, error) {
	return item.Single(item.Array{item.Number(s.sum), item.Number(s.n)}), nil
}

// Merge implements SpillableState.
func (s *avgState) Merge(v item.Sequence) error {
	for _, it := range v {
		pair, ok := it.(item.Array)
		if !ok || len(pair) != 2 {
			return fmt.Errorf("agg-avg: bad snapshot %s", item.JSON(it))
		}
		sum, ok1 := pair[0].(item.Number)
		n, ok2 := pair[1].(item.Number)
		if !ok1 || !ok2 {
			return fmt.Errorf("agg-avg: non-numeric snapshot %s", item.JSON(it))
		}
		s.sum += float64(sum)
		s.n += int64(n)
	}
	return nil
}

// AggAvgLocal is the local half of two-step averaging: it emits a
// [sum, count] array that AggAvgGlobal combines.
var AggAvgLocal = registerAgg(&AggFunc{
	Name: "agg-avg-local",
	New:  func() AggState { return &avgLocalState{} },
})

type avgLocalState struct{ avgState }

func (s *avgLocalState) Finish() (item.Sequence, error) {
	return item.Single(item.Array{item.Number(s.sum), item.Number(s.n)}), nil
}

// AggAvgGlobal combines [sum, count] pairs produced by AggAvgLocal.
var AggAvgGlobal = registerAgg(&AggFunc{
	Name: "agg-avg-global",
	New:  func() AggState { return &avgGlobalState{} },
})

type avgGlobalState struct {
	sum float64
	n   float64
}

func (s *avgGlobalState) Step(v item.Sequence) error {
	for _, it := range v {
		pair, ok := it.(item.Array)
		if !ok || len(pair) != 2 {
			return fmt.Errorf("agg-avg-global: expected [sum,count] pair, got %s", item.JSON(it))
		}
		sum, ok1 := pair[0].(item.Number)
		n, ok2 := pair[1].(item.Number)
		if !ok1 || !ok2 {
			return fmt.Errorf("agg-avg-global: non-numeric pair %s", item.JSON(it))
		}
		s.sum += float64(sum)
		s.n += float64(n)
	}
	return nil
}
func (s *avgGlobalState) Finish() (item.Sequence, error) {
	if s.n == 0 {
		return nil, nil
	}
	return item.Single(item.Number(s.sum / s.n)), nil
}
func (s *avgGlobalState) Size() int64 { return 16 }

// Snapshot implements SpillableState.
func (s *avgGlobalState) Snapshot() (item.Sequence, error) {
	return item.Single(item.Array{item.Number(s.sum), item.Number(s.n)}), nil
}

// Merge implements SpillableState: Step already folds [sum, count] pairs.
func (s *avgGlobalState) Merge(v item.Sequence) error { return s.Step(v) }

func extremumAgg(name string, keepLeft func(c int) bool) *AggFunc {
	return registerAgg(&AggFunc{
		Name: name,
		New:  func() AggState { return &extremumState{keepLeft: keepLeft} },
	})
}

type extremumState struct {
	keepLeft func(c int) bool
	best     item.Item
}

func (s *extremumState) Step(v item.Sequence) error {
	for _, it := range v {
		if s.best == nil {
			s.best = it
			continue
		}
		if it.Kind() != s.best.Kind() {
			return fmt.Errorf("extremum over mixed kinds %s and %s", s.best.Kind(), it.Kind())
		}
		if !s.keepLeft(item.Compare(s.best, it)) {
			s.best = it
		}
	}
	return nil
}

func (s *extremumState) Finish() (item.Sequence, error) {
	if s.best == nil {
		return nil, nil
	}
	return item.Single(s.best), nil
}

func (s *extremumState) Size() int64 {
	if s.best == nil {
		return 16
	}
	return 16 + item.SizeBytes(s.best)
}

// Snapshot implements SpillableState: the running extremum, or an empty
// sequence before any input.
func (s *extremumState) Snapshot() (item.Sequence, error) {
	if s.best == nil {
		return nil, nil
	}
	return item.Single(s.best), nil
}

// Merge implements SpillableState: the extremum of extrema is Step.
func (s *extremumState) Merge(v item.Sequence) error { return s.Step(v) }

// AggMin and AggMax are incremental extrema. They are their own local and
// global halves for two-step aggregation (min of mins is the min).
var (
	AggMin = extremumAgg("agg-min", func(c int) bool { return c <= 0 })
	AggMax = extremumAgg("agg-max", func(c int) bool { return c >= 0 })
)
