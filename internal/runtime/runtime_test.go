package runtime

import (
	"os"
	"strings"
	"testing"

	"vxq/internal/item"
)

func evalFn(t *testing.T, name string, args ...item.Sequence) item.Sequence {
	t.Helper()
	f := MustFunction(name)
	out, err := f.Apply(NewCtx(nil), args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return out
}

func evalFnErr(t *testing.T, name string, args ...item.Sequence) error {
	t.Helper()
	f := MustFunction(name)
	_, err := f.Apply(NewCtx(nil), args)
	return err
}

func one(it item.Item) item.Sequence { return item.Single(it) }

func TestValueOnObject(t *testing.T) {
	obj := item.ObjectFromPairs("a", item.Number(1), "b", item.String("x"))
	got := evalFn(t, "value", one(obj), one(item.String("b")))
	if !item.EqualSeq(got, one(item.String("x"))) {
		t.Errorf("got %s", item.JSONSeq(got))
	}
	// Missing key yields empty.
	got = evalFn(t, "value", one(obj), one(item.String("zzz")))
	if len(got) != 0 {
		t.Errorf("missing key: got %s", item.JSONSeq(got))
	}
}

func TestValueOnArrayByIndex(t *testing.T) {
	arr := item.Array{item.Number(10), item.Number(20)}
	got := evalFn(t, "value", one(arr), one(item.Number(2)))
	if !item.EqualSeq(got, one(item.Number(20))) {
		t.Errorf("got %s", item.JSONSeq(got))
	}
	if got := evalFn(t, "value", one(arr), one(item.Number(3))); len(got) != 0 {
		t.Errorf("out of range index: got %s", item.JSONSeq(got))
	}
	// String key on array yields empty (kind mismatch).
	if got := evalFn(t, "value", one(arr), one(item.String("a"))); len(got) != 0 {
		t.Errorf("string key on array: got %s", item.JSONSeq(got))
	}
}

func TestValueMapsOverSequence(t *testing.T) {
	seq := item.Sequence{
		item.ObjectFromPairs("k", item.Number(1)),
		item.ObjectFromPairs("other", item.Number(9)),
		item.ObjectFromPairs("k", item.Number(2)),
		item.Number(7), // scalar contributes nothing
	}
	got := evalFn(t, "value", seq, one(item.String("k")))
	want := item.Sequence{item.Number(1), item.Number(2)}
	if !item.EqualSeq(got, want) {
		t.Errorf("got %s", item.JSONSeq(got))
	}
}

func TestKeysOrMembers(t *testing.T) {
	arr := item.Array{item.Number(1), item.Number(2)}
	got := evalFn(t, "keys-or-members", one(arr))
	if !item.EqualSeq(got, item.Sequence{item.Number(1), item.Number(2)}) {
		t.Errorf("array members: %s", item.JSONSeq(got))
	}
	obj := item.ObjectFromPairs("x", item.Number(1), "y", item.Number(2))
	got = evalFn(t, "keys-or-members", one(obj))
	if !item.EqualSeq(got, item.Sequence{item.String("x"), item.String("y")}) {
		t.Errorf("object keys: %s", item.JSONSeq(got))
	}
	if got := evalFn(t, "keys-or-members", one(item.Number(5))); len(got) != 0 {
		t.Errorf("scalar: %s", item.JSONSeq(got))
	}
}

func TestIterateIdentity(t *testing.T) {
	s := item.Sequence{item.Number(1), item.String("a")}
	got := evalFn(t, "iterate", s)
	if !item.EqualSeq(got, s) {
		t.Errorf("got %s", item.JSONSeq(got))
	}
}

func TestDataAtomization(t *testing.T) {
	got := evalFn(t, "data", item.Sequence{item.String("x"), item.Number(2)})
	if !item.EqualSeq(got, item.Sequence{item.String("x"), item.Number(2)}) {
		t.Errorf("got %s", item.JSONSeq(got))
	}
	if err := evalFnErr(t, "data", one(item.Array{})); err == nil {
		t.Error("data on array must fail")
	}
	if err := evalFnErr(t, "data", one(item.ObjectFromPairs())); err == nil {
		t.Error("data on object must fail")
	}
}

func TestPromoteTreatIdentity(t *testing.T) {
	s := one(item.Number(3))
	if !item.EqualSeq(evalFn(t, "promote", s), s) {
		t.Error("promote must be identity")
	}
	if !item.EqualSeq(evalFn(t, "treat", s), s) {
		t.Error("treat must be identity")
	}
}

func TestDateTimeFunctions(t *testing.T) {
	dt := evalFn(t, "dateTime", one(item.String("2013-12-25T10:30")))
	d, err := dt.One()
	if err != nil {
		t.Fatal(err)
	}
	if d.(item.DateTime).Day != 25 {
		t.Errorf("day = %d", d.(item.DateTime).Day)
	}
	if got := evalFn(t, "year-from-dateTime", dt); !item.EqualSeq(got, one(item.Number(2013))) {
		t.Errorf("year = %s", item.JSONSeq(got))
	}
	if got := evalFn(t, "month-from-dateTime", dt); !item.EqualSeq(got, one(item.Number(12))) {
		t.Errorf("month = %s", item.JSONSeq(got))
	}
	if got := evalFn(t, "day-from-dateTime", dt); !item.EqualSeq(got, one(item.Number(25))) {
		t.Errorf("day = %s", item.JSONSeq(got))
	}
	if err := evalFnErr(t, "dateTime", one(item.String("garbage"))); err == nil {
		t.Error("bad dateTime must fail")
	}
	if err := evalFnErr(t, "dateTime", one(item.Number(1))); err == nil {
		t.Error("dateTime on number must fail")
	}
	if err := evalFnErr(t, "year-from-dateTime", one(item.Number(1))); err == nil {
		t.Error("year-from-dateTime on number must fail")
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		fn   string
		a, b item.Item
		want bool
	}{
		{"eq", item.Number(1), item.Number(1), true},
		{"eq", item.Number(1), item.Number(2), false},
		{"ne", item.String("a"), item.String("b"), true},
		{"lt", item.Number(1), item.Number(2), true},
		{"le", item.Number(2), item.Number(2), true},
		{"gt", item.Number(3), item.Number(2), true},
		{"ge", item.Number(2003), item.Number(2003), true},
		{"ge", item.Number(1999), item.Number(2003), false},
		{"eq", item.String("TMIN"), item.String("TMIN"), true},
		{"lt", item.DateTime{Year: 2003, Month: 1, Day: 1}, item.DateTime{Year: 2004, Month: 1, Day: 1}, true},
	}
	for _, c := range cases {
		got := evalFn(t, c.fn, one(c.a), one(c.b))
		if !item.EqualSeq(got, one(item.Bool(c.want))) {
			t.Errorf("%s(%s,%s) = %s, want %v", c.fn, item.JSON(c.a), item.JSON(c.b), item.JSONSeq(got), c.want)
		}
	}
}

func TestComparisonEmptyAndErrors(t *testing.T) {
	if got := evalFn(t, "eq", nil, one(item.Number(1))); len(got) != 0 {
		t.Error("empty operand must yield empty")
	}
	if err := evalFnErr(t, "eq", one(item.Number(1)), one(item.String("x"))); err == nil {
		t.Error("cross-kind comparison must fail")
	}
	if err := evalFnErr(t, "eq", one(item.Array{}), one(item.Array{})); err == nil {
		t.Error("array comparison must fail")
	}
	two := item.Sequence{item.Number(1), item.Number(2)}
	if err := evalFnErr(t, "eq", two, one(item.Number(1))); err == nil {
		t.Error("non-singleton operand must fail")
	}
}

func TestBooleans(t *testing.T) {
	tr, fa := one(item.Bool(true)), one(item.Bool(false))
	if !item.EqualSeq(evalFn(t, "and", tr, tr, tr), tr) {
		t.Error("and(t,t,t)")
	}
	if !item.EqualSeq(evalFn(t, "and", tr, fa), fa) {
		t.Error("and(t,f)")
	}
	if !item.EqualSeq(evalFn(t, "or", fa, tr), tr) {
		t.Error("or(f,t)")
	}
	if !item.EqualSeq(evalFn(t, "or", fa, fa), fa) {
		t.Error("or(f,f)")
	}
	if !item.EqualSeq(evalFn(t, "not", fa), tr) {
		t.Error("not(f)")
	}
	// Empty sequence is false.
	if !item.EqualSeq(evalFn(t, "and", tr, item.Empty), fa) {
		t.Error("and(t,()) should be false")
	}
	if !item.EqualSeq(evalFn(t, "boolean", one(item.String("x"))), tr) {
		t.Error("boolean(non-empty string)")
	}
}

func TestArithmetic(t *testing.T) {
	n := func(v float64) item.Sequence { return one(item.Number(v)) }
	if !item.EqualSeq(evalFn(t, "add", n(2), n(3)), n(5)) {
		t.Error("add")
	}
	if !item.EqualSeq(evalFn(t, "sub", n(14), n(4)), n(10)) {
		t.Error("sub")
	}
	if !item.EqualSeq(evalFn(t, "mul", n(6), n(7)), n(42)) {
		t.Error("mul")
	}
	if !item.EqualSeq(evalFn(t, "div", n(30), n(10)), n(3)) {
		t.Error("div")
	}
	if !item.EqualSeq(evalFn(t, "mod", n(7), n(4)), n(3)) {
		t.Error("mod")
	}
	if err := evalFnErr(t, "div", n(1), n(0)); err == nil {
		t.Error("division by zero must fail")
	}
	if err := evalFnErr(t, "add", one(item.String("x")), n(1)); err == nil {
		t.Error("string arithmetic must fail")
	}
	if got := evalFn(t, "add", item.Empty, n(1)); len(got) != 0 {
		t.Error("empty operand yields empty")
	}
}

func TestScalarFolds(t *testing.T) {
	s := item.Sequence{item.Number(1), item.Number(2), item.Number(3)}
	if !item.EqualSeq(evalFn(t, "count", s), one(item.Number(3))) {
		t.Error("count")
	}
	if !item.EqualSeq(evalFn(t, "count", item.Empty), one(item.Number(0))) {
		t.Error("count empty")
	}
	if !item.EqualSeq(evalFn(t, "sum", s), one(item.Number(6))) {
		t.Error("sum")
	}
	if !item.EqualSeq(evalFn(t, "avg", s), one(item.Number(2))) {
		t.Error("avg")
	}
	if got := evalFn(t, "avg", item.Empty); len(got) != 0 {
		t.Error("avg of empty is empty")
	}
	if err := evalFnErr(t, "sum", one(item.String("x"))); err == nil {
		t.Error("sum of strings must fail")
	}
}

func TestCollectionAndJSONDoc(t *testing.T) {
	src := &MemSource{Collections: map[string]map[string][]byte{
		"/books": {
			"b.json": []byte(`{"title":"B"}`),
			"a.json": []byte(`{"title":"A"}`),
		},
	}}
	ctx := NewCtx(src)
	f := MustFunction("collection")
	out, err := f.Apply(ctx, []item.Sequence{one(item.String("/books"))})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("collection returned %d docs", len(out))
	}
	// Sorted by name: a.json then b.json.
	if v := out[0].(*item.Object).Value("title"); !item.Equal(v, item.String("A")) {
		t.Errorf("first doc title = %v", v)
	}
	if ctx.Stats.FilesRead != 2 || ctx.Stats.BytesRead == 0 {
		t.Errorf("stats = %+v", ctx.Stats)
	}

	jd := MustFunction("json-doc")
	out, err = jd.Apply(ctx, []item.Sequence{one(item.String("/books/b.json"))})
	if err != nil {
		t.Fatal(err)
	}
	if v := out[0].(*item.Object).Value("title"); !item.Equal(v, item.String("B")) {
		t.Errorf("json-doc title = %v", v)
	}

	if _, err := f.Apply(ctx, []item.Sequence{one(item.String("/missing"))}); err == nil {
		t.Error("unknown collection must fail")
	}
	if _, err := f.Apply(NewCtx(nil), []item.Sequence{one(item.String("/books"))}); err == nil {
		t.Error("missing source must fail")
	}
}

func TestDirSource(t *testing.T) {
	dir := t.TempDir()
	if err := writeFile(dir+"/x.json", `{"a":1}`); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(dir+"/y.json", `{"a":2}`); err != nil {
		t.Fatal(err)
	}
	src := &DirSource{Mounts: map[string]string{"/c": dir}}
	files, err := src.Files("/c")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || !strings.HasSuffix(files[0], "x.json") {
		t.Errorf("files = %v", files)
	}
	b, err := src.ReadFile(files[0])
	if err != nil || string(b) != `{"a":1}` {
		t.Errorf("ReadFile = %q, %v", b, err)
	}
	if _, err := src.Files("/nope"); err == nil {
		t.Error("unknown mount must fail")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestEvaluators(t *testing.T) {
	ctx := NewCtx(nil)
	fields := SeqTuple{
		one(item.Number(10)),
		one(item.ObjectFromPairs("k", item.String("v"))),
	}
	col := ColumnEval{Col: 0}
	got, err := col.Eval(ctx, fields)
	if err != nil || !item.EqualSeq(got, one(item.Number(10))) {
		t.Errorf("ColumnEval = %s, %v", item.JSONSeq(got), err)
	}
	if _, err := (ColumnEval{Col: 9}).Eval(ctx, fields); err == nil {
		t.Error("out-of-range column must fail")
	}
	c := ConstEval{Seq: one(item.String("k"))}
	call := CallEval{Fn: MustFunction("value"), Args: []Evaluator{ColumnEval{Col: 1}, c}}
	got, err = call.Eval(ctx, fields)
	if err != nil || !item.EqualSeq(got, one(item.String("v"))) {
		t.Errorf("CallEval = %s, %v", item.JSONSeq(got), err)
	}
	// Nested call error propagation.
	badCall := CallEval{Fn: MustFunction("data"), Args: []Evaluator{
		CallEval{Fn: MustFunction("value"), Args: []Evaluator{ColumnEval{Col: 99}, c}},
	}}
	if _, err := badCall.Eval(ctx, fields); err == nil {
		t.Error("nested error must propagate")
	}
}

func TestLookupFunctions(t *testing.T) {
	if _, err := LookupFunction("no-such-fn"); err == nil {
		t.Error("unknown function must fail")
	}
	if _, err := LookupAgg("no-such-agg"); err == nil {
		t.Error("unknown aggregate must fail")
	}
	if f := MustFunction("value"); f.Name != "value" {
		t.Error("MustFunction")
	}
}

func TestAggCount(t *testing.T) {
	st := MustAgg("agg-count").New()
	for i := 0; i < 5; i++ {
		if err := st.Step(one(item.Number(float64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	st.Step(item.Empty) // empty input contributes 0
	got, err := st.Finish()
	if err != nil || !item.EqualSeq(got, one(item.Number(5))) {
		t.Errorf("count = %s, %v", item.JSONSeq(got), err)
	}
}

func TestAggSequence(t *testing.T) {
	st := MustAgg("agg-sequence").New()
	st.Step(one(item.Number(1)))
	st.Step(one(item.Number(2)))
	got, _ := st.Finish()
	if !item.EqualSeq(got, item.Sequence{item.Number(1), item.Number(2)}) {
		t.Errorf("sequence = %s", item.JSONSeq(got))
	}
	if st.Size() <= 24 {
		t.Error("sequence state should report its size")
	}
}

func TestAggSumAvg(t *testing.T) {
	sum := MustAgg("agg-sum").New()
	avg := MustAgg("agg-avg").New()
	for _, v := range []float64{1, 2, 3, 4} {
		sum.Step(one(item.Number(v)))
		avg.Step(one(item.Number(v)))
	}
	if got, _ := sum.Finish(); !item.EqualSeq(got, one(item.Number(10))) {
		t.Errorf("sum = %s", item.JSONSeq(got))
	}
	if got, _ := avg.Finish(); !item.EqualSeq(got, one(item.Number(2.5))) {
		t.Errorf("avg = %s", item.JSONSeq(got))
	}
	if err := MustAgg("agg-sum").New().Step(one(item.String("x"))); err == nil {
		t.Error("agg-sum on string must fail")
	}
	empty := MustAgg("agg-avg").New()
	if got, _ := empty.Finish(); len(got) != 0 {
		t.Error("avg of nothing is empty")
	}
}

func TestAggAvgTwoStep(t *testing.T) {
	// Two partitions compute local states; global combines. The result must
	// equal single-step avg over the union.
	local1 := MustAgg("agg-avg-local").New()
	local2 := MustAgg("agg-avg-local").New()
	for _, v := range []float64{1, 2, 3} {
		local1.Step(one(item.Number(v)))
	}
	for _, v := range []float64{10, 20} {
		local2.Step(one(item.Number(v)))
	}
	p1, _ := local1.Finish()
	p2, _ := local2.Finish()
	global := MustAgg("agg-avg-global").New()
	global.Step(p1)
	global.Step(p2)
	got, err := global.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want := one(item.Number((1 + 2 + 3 + 10 + 20) / 5.0))
	if !item.EqualSeq(got, want) {
		t.Errorf("two-step avg = %s, want %s", item.JSONSeq(got), item.JSONSeq(want))
	}
	if err := MustAgg("agg-avg-global").New().Step(one(item.Number(1))); err == nil {
		t.Error("global avg needs [sum,count] pairs")
	}
	if g, _ := MustAgg("agg-avg-global").New().Finish(); len(g) != 0 {
		t.Error("global avg of nothing is empty")
	}
}

func TestTwoStepCountEquivalence(t *testing.T) {
	// Global count = sum of local counts.
	l1 := MustAgg("agg-count").New()
	l2 := MustAgg("agg-count").New()
	for i := 0; i < 7; i++ {
		l1.Step(one(item.Number(0)))
	}
	for i := 0; i < 5; i++ {
		l2.Step(one(item.Number(0)))
	}
	c1, _ := l1.Finish()
	c2, _ := l2.Finish()
	g := MustAgg("agg-sum").New()
	g.Step(c1)
	g.Step(c2)
	got, _ := g.Finish()
	if !item.EqualSeq(got, one(item.Number(12))) {
		t.Errorf("two-step count = %s", item.JSONSeq(got))
	}
}

func TestStatsAdd(t *testing.T) {
	a := &Stats{BytesRead: 1, FilesRead: 2, TuplesProduced: 3, TuplesShuffled: 4, BytesShuffled: 5}
	b := &Stats{BytesRead: 10, FilesRead: 20, TuplesProduced: 30, TuplesShuffled: 40, BytesShuffled: 50}
	a.Add(b)
	if a.BytesRead != 11 || a.FilesRead != 22 || a.TuplesProduced != 33 ||
		a.TuplesShuffled != 44 || a.BytesShuffled != 55 {
		t.Errorf("Add = %+v", a)
	}
}
