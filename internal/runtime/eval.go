package runtime

import (
	"fmt"

	"vxq/internal/item"
)

// Evaluator computes an item sequence from the decoded fields of one tuple.
type Evaluator interface {
	// Eval evaluates against the tuple's field sequences.
	Eval(ctx *Ctx, fields []item.Sequence) (item.Sequence, error)
}

// ColumnEval reads tuple field Col.
type ColumnEval struct{ Col int }

// Eval returns the field's sequence.
func (e ColumnEval) Eval(_ *Ctx, fields []item.Sequence) (item.Sequence, error) {
	if e.Col < 0 || e.Col >= len(fields) {
		return nil, fmt.Errorf("runtime: column %d out of range [0,%d)", e.Col, len(fields))
	}
	return fields[e.Col], nil
}

// ConstEval yields a constant sequence.
type ConstEval struct{ Seq item.Sequence }

// Eval returns the constant.
func (e ConstEval) Eval(*Ctx, []item.Sequence) (item.Sequence, error) { return e.Seq, nil }

// CallEval applies a scalar function to evaluated arguments.
type CallEval struct {
	Fn   *Function
	Args []Evaluator
}

// Eval evaluates the arguments then applies the function.
func (e CallEval) Eval(ctx *Ctx, fields []item.Sequence) (item.Sequence, error) {
	args := make([]item.Sequence, len(e.Args))
	for i, a := range e.Args {
		v, err := a.Eval(ctx, fields)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	out, err := e.Fn.Apply(ctx, args)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.Fn.Name, err)
	}
	return out, nil
}

// Function is a scalar (sequence-to-sequence) function.
type Function struct {
	Name  string
	Arity int // -1 = variadic
	Apply func(ctx *Ctx, args []item.Sequence) (item.Sequence, error)
}

// functions is the scalar function registry, keyed by name.
var functions = map[string]*Function{}

func register(f *Function) *Function {
	if _, dup := functions[f.Name]; dup {
		panic("runtime: duplicate function " + f.Name)
	}
	functions[f.Name] = f
	return f
}

// LookupFunction returns the named scalar function.
func LookupFunction(name string) (*Function, error) {
	f, ok := functions[name]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown function %q", name)
	}
	return f, nil
}

// MustFunction is LookupFunction for trusted callers.
func MustFunction(name string) *Function {
	f, err := LookupFunction(name)
	if err != nil {
		panic(err)
	}
	return f
}
