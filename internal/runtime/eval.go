package runtime

import (
	"fmt"

	"vxq/internal/item"
)

// Tuple is the evaluator's view of one tuple. Implementations may decode
// fields lazily (frame.LazyTuple decodes a field the first time it is asked
// for and memoizes the result), so evaluators that touch few fields never
// pay for the rest of the tuple.
type Tuple interface {
	// FieldCount reports the number of fields.
	FieldCount() int
	// Field returns the item sequence of field i. The returned sequence
	// must remain valid indefinitely (it never aliases reusable buffers),
	// so evaluators and aggregate states may retain it.
	Field(i int) (item.Sequence, error)
}

// SeqTuple adapts a plain slice of decoded field sequences to the Tuple
// view, for callers that already hold decoded fields.
type SeqTuple []item.Sequence

// FieldCount implements Tuple.
func (s SeqTuple) FieldCount() int { return len(s) }

// Field implements Tuple.
func (s SeqTuple) Field(i int) (item.Sequence, error) {
	if i < 0 || i >= len(s) {
		return nil, fmt.Errorf("runtime: column %d out of range [0,%d)", i, len(s))
	}
	return s[i], nil
}

// Evaluator computes an item sequence from one tuple.
//
// Contract (what lets operators reuse scratch across tuples):
//   - Eval must not retain the Tuple itself past the call — the view is
//     rebound to the next tuple by the operator.
//   - The returned sequence must be valid indefinitely: either freshly
//     built, a constant, or obtained from Tuple.Field (whose results are
//     stable by the Tuple contract). It must never alias a buffer the
//     evaluator overwrites on the next call.
//
// Operators rely on both halves: group-by and aggregate states retain
// returned sequences across an entire Push stream, while the evaluation
// context recycles argument scratch between tuples.
type Evaluator interface {
	// Eval evaluates against one tuple.
	Eval(ctx *Ctx, tup Tuple) (item.Sequence, error)
}

// ColumnEval reads tuple field Col.
type ColumnEval struct{ Col int }

// Eval returns the field's sequence.
func (e ColumnEval) Eval(_ *Ctx, tup Tuple) (item.Sequence, error) {
	if e.Col < 0 || e.Col >= tup.FieldCount() {
		return nil, fmt.Errorf("runtime: column %d out of range [0,%d)", e.Col, tup.FieldCount())
	}
	return tup.Field(e.Col)
}

// ConstEval yields a constant sequence.
type ConstEval struct{ Seq item.Sequence }

// Eval returns the constant.
func (e ConstEval) Eval(*Ctx, Tuple) (item.Sequence, error) { return e.Seq, nil }

// CallEval applies a scalar function to evaluated arguments.
type CallEval struct {
	Fn   *Function
	Args []Evaluator
}

// Eval evaluates the arguments then applies the function. The argument
// slice is borrowed from the context's scratch stack and returned after the
// call, so steady-state evaluation allocates nothing for argument passing;
// Function.Apply must not retain the slice (retaining the sequences inside
// it is fine — they are stable by the Evaluator contract).
func (e CallEval) Eval(ctx *Ctx, tup Tuple) (item.Sequence, error) {
	args := ctx.borrowArgs(len(e.Args))
	for i, a := range e.Args {
		v, err := a.Eval(ctx, tup)
		if err != nil {
			ctx.returnArgs(args)
			return nil, err
		}
		args[i] = v
	}
	out, err := e.Fn.Apply(ctx, args)
	ctx.returnArgs(args)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.Fn.Name, err)
	}
	return out, nil
}

// Function is a scalar (sequence-to-sequence) function.
//
// Apply receives a borrowed argument slice that is recycled after the call:
// implementations must not retain args (the slice), though they may retain
// or return the item sequences it holds.
type Function struct {
	Name  string
	Arity int // -1 = variadic
	Apply func(ctx *Ctx, args []item.Sequence) (item.Sequence, error)
}

// functions is the scalar function registry, keyed by name.
var functions = map[string]*Function{}

func register(f *Function) *Function {
	if _, dup := functions[f.Name]; dup {
		panic("runtime: duplicate function " + f.Name)
	}
	functions[f.Name] = f
	return f
}

// LookupFunction returns the named scalar function.
func LookupFunction(name string) (*Function, error) {
	f, ok := functions[name]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown function %q", name)
	}
	return f, nil
}

// MustFunction is LookupFunction for trusted callers.
func MustFunction(name string) *Function {
	f, err := LookupFunction(name)
	if err != nil {
		panic(err)
	}
	return f
}
