// Package runtime implements the expression runtime of the query engine:
// scalar function implementations (the JSONiq value / keys-or-members
// navigation, date-time functions, comparisons, arithmetic), aggregate
// functions (sequence, count, sum, avg, with local/global variants for
// two-step aggregation), and the evaluator tree that physical operators
// execute against tuples.
package runtime

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vxq/internal/frame"
	"vxq/internal/item"
	"vxq/internal/jsonparse"
)

// Source resolves collection names to data files. It abstracts the
// per-node "directory of JSON files" layout of the paper (§4.2): each node
// stores a set of JSON files under the directory named by the collection
// expression.
type Source interface {
	// Files returns the file paths belonging to a collection, in a stable
	// order.
	Files(collection string) ([]string, error)
	// Open returns a reader over one file's bytes. It is the primary read
	// path: scans stream documents through it chunk by chunk, so peak
	// memory stays O(chunk), not O(file).
	Open(path string) (io.ReadCloser, error)
	// ReadFile returns the raw bytes of one file. It is a compatibility
	// shim over Open for the few consumers that genuinely need the whole
	// file at once (e.g. decoding pre-converted binary ADM documents).
	ReadFile(path string) ([]byte, error)
}

// RangeOpener is an optional Source capability: opening a file at a byte
// offset, so a morsel-driven scan can start mid-file without re-reading the
// prefix. Sources that cannot seek simply omit it and their files degrade to
// single whole-file morsels.
type RangeOpener interface {
	// OpenRange returns a reader positioned at offset bytes into the file.
	OpenRange(path string, offset int64) (io.ReadCloser, error)
}

// Sizer is an optional Source capability: reporting a file's size in bytes
// without reading it, used to split files into morsels up front.
type Sizer interface {
	Size(path string) (int64, error)
}

// SidecarSuffix is the file-name suffix of persistent structural-index
// sidecars (vxq/internal/index). It lives here so DirSource can exclude
// sidecars from collection listings without importing the index package:
// a sidecar sits next to its data file but is never itself a record file.
const SidecarSuffix = ".vxqx"

// FileIdent is the durable identity of a file: the (size, mtime) pair that
// persistent caches validate against. Two observations with equal idents are
// treated as the same bytes; any change to the file bumps at least one field.
type FileIdent struct {
	Size         int64
	ModTimeNanos int64
}

// Identifier is an optional Source capability: reporting a file's durable
// identity. ok=false means the file has no identity stable across processes
// (e.g. in-memory documents) and persistent caches must not cover it.
type Identifier interface {
	Ident(path string) (FileIdent, bool)
}

// ReadAll reads a whole file through src.Open. It is the canonical
// implementation behind every Source's ReadFile compatibility shim.
func ReadAll(src interface {
	Open(path string) (io.ReadCloser, error)
}, path string) ([]byte, error) {
	rc, err := src.Open(path)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return io.ReadAll(rc)
}

// CountingReader wraps an io.Reader and counts the bytes delivered, so
// streaming consumers can report Stats.BytesRead without buffering.
type CountingReader struct {
	R io.Reader
	N int64
}

// Read implements io.Reader.
func (c *CountingReader) Read(p []byte) (int, error) {
	n, err := c.R.Read(p)
	c.N += int64(n)
	return n, err
}

// DirSource is a Source that maps collection names to directories on the
// local filesystem.
type DirSource struct {
	// Mounts maps collection names (e.g. "/sensors") to directories.
	Mounts map[string]string
}

// Files lists the regular files of the mounted directory in sorted order.
func (s *DirSource) Files(collection string) ([]string, error) {
	dir, ok := s.Mounts[collection]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown collection %q", collection)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("runtime: collection %q: %w", collection, err)
	}
	var files []string
	for _, e := range entries {
		if e.Type().IsRegular() && !strings.HasSuffix(e.Name(), SidecarSuffix) {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	return files, nil
}

// Open opens one file on disk for streaming reads.
func (s *DirSource) Open(path string) (io.ReadCloser, error) { return os.Open(path) }

// OpenRange opens one file on disk positioned at a byte offset.
func (s *DirSource) OpenRange(path string, offset int64) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// Size reports one file's size in bytes.
func (s *DirSource) Size(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// ReadFile reads one whole file from disk (compatibility shim over Open).
func (s *DirSource) ReadFile(path string) ([]byte, error) { return ReadAll(s, path) }

// Ident reports a file's durable (size, mtime) identity from the filesystem.
func (s *DirSource) Ident(path string) (FileIdent, bool) {
	fi, err := os.Stat(path)
	if err != nil {
		return FileIdent{}, false
	}
	return FileIdent{Size: fi.Size(), ModTimeNanos: fi.ModTime().UnixNano()}, true
}

// MemSource is an in-memory Source, used by tests.
type MemSource struct {
	// Collections maps collection names to named documents.
	Collections map[string]map[string][]byte
}

// Files lists the document names of a collection in sorted order.
func (s *MemSource) Files(collection string) ([]string, error) {
	docs, ok := s.Collections[collection]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown collection %q", collection)
	}
	names := make([]string, 0, len(docs))
	for n := range docs {
		names = append(names, collection+"/"+n)
	}
	sort.Strings(names)
	return names, nil
}

// Open returns a reader over a stored document.
func (s *MemSource) Open(path string) (io.ReadCloser, error) {
	return s.OpenRange(path, 0)
}

// OpenRange returns a reader over a stored document starting at a byte
// offset.
func (s *MemSource) OpenRange(path string, offset int64) (io.ReadCloser, error) {
	b, ok := s.lookup(path)
	if !ok {
		return nil, fmt.Errorf("runtime: no such document %q", path)
	}
	if offset > int64(len(b)) {
		offset = int64(len(b))
	}
	return io.NopCloser(bytes.NewReader(b[offset:])), nil
}

// Size reports a stored document's length.
func (s *MemSource) Size(path string) (int64, error) {
	b, ok := s.lookup(path)
	if !ok {
		return 0, fmt.Errorf("runtime: no such document %q", path)
	}
	return int64(len(b)), nil
}

func (s *MemSource) lookup(path string) ([]byte, bool) {
	for coll, docs := range s.Collections {
		prefix := coll + "/"
		if len(path) > len(prefix) && path[:len(prefix)] == prefix {
			if b, ok := docs[path[len(prefix):]]; ok {
				return b, true
			}
		}
	}
	return nil, false
}

// ReadFile returns a stored document (compatibility shim over Open).
func (s *MemSource) ReadFile(path string) ([]byte, error) { return ReadAll(s, path) }

// Ident reports ok=false: in-memory documents have no identity that survives
// the process, so persistent caches must not cover them.
func (s *MemSource) Ident(path string) (FileIdent, bool) { return FileIdent{}, false }

// Stats accumulates per-partition execution statistics.
//
// Concurrency contract: a Stats instance has exactly one writer. Each task
// (fragment-partition) increments its own instance while it runs, and the
// executor folds the per-task instances into the job total with Add exactly
// once, after every task has finished. Counters are plain int64s on purpose —
// no atomics, no locks — so sharing an instance between running tasks is a
// data race (caught by the -race executor tests).
type Stats struct {
	BytesRead       int64
	FilesRead       int64
	FilesSkipped    int64 // files pruned by a zone-map index
	MorselsSkipped  int64 // morsels pruned by per-zone min/max stats
	ColdIndexBuilds int64 // cold-scan structural-index passes run at queue build
	TuplesProduced  int64
	TuplesShuffled  int64
	BytesShuffled   int64
	SpilledBytes    int64 // encoded tuple bytes written to spill files
	SpillPartitions int64 // spill partition/run files created
	SpillWaves      int64 // table flushes (group-by, join) and sorted runs (sort)
}

// Add merges other into s.
func (s *Stats) Add(other *Stats) {
	s.BytesRead += other.BytesRead
	s.FilesRead += other.FilesRead
	s.FilesSkipped += other.FilesSkipped
	s.MorselsSkipped += other.MorselsSkipped
	s.ColdIndexBuilds += other.ColdIndexBuilds
	s.TuplesProduced += other.TuplesProduced
	s.TuplesShuffled += other.TuplesShuffled
	s.BytesShuffled += other.BytesShuffled
	s.SpilledBytes += other.SpilledBytes
	s.SpillPartitions += other.SpillPartitions
	s.SpillWaves += other.SpillWaves
}

// FileRange is the indexed value range of one file, as reported by a
// zone-map index (vxq/internal/index).
type FileRange struct {
	Min, Max item.Item // nil when the file has no values at the path
	Count    int64
}

// IndexLookup resolves per-file zone-map ranges. A nil lookup (or a miss)
// simply disables file pruning; correctness never depends on it.
type IndexLookup interface {
	FileRange(collection string, path jsonparse.Path, file string) (FileRange, bool)
}

// SplitLookup is an optional IndexLookup capability: reporting exact
// record-start offsets of a newline-delimited file, precomputed by the
// structural-index pass of a zone-map build (every offset is the byte just
// past a newline that lies outside every string, with string state tracked
// from offset 0). Morsel splitting uses them to cut files exactly on record
// boundaries instead of probing for a line start at scan time; a miss simply
// falls back to the probe. Offsets must be ascending.
type SplitLookup interface {
	FileSplits(collection, file string) ([]int64, bool)
}

// Zone is one byte-range zone of a file's zone-map index: Range summarizes
// the indexed-path values of exactly the records whose line start lies in
// [Start, End). Line starts are the same anchor morsel ownership uses, so a
// morsel [ms, me) can be skipped when every zone overlapping it excludes the
// predicate — any record the morsel owns has its line start, and therefore
// its zone, inside [ms, me).
type Zone struct {
	Start, End int64
	Range      FileRange
}

// ZoneLookup is an optional IndexLookup capability: reporting the per-zone
// min/max stats of one file at an indexed path. Zones must be ascending,
// non-overlapping, and cover [0, fileSize) — a record with no value at the
// path still lands in a zone, whose Count simply doesn't include it. A miss
// (or a nil lookup) disables morsel pruning; correctness never depends on it.
type ZoneLookup interface {
	FileZones(collection string, path jsonparse.Path, file string) ([]Zone, bool)
}

// SplitRecorder is an optional IndexLookup capability: accepting a
// record-boundary index computed outside a zone-map build. Cold scans of
// large files run a speculative parallel phase 1 at scan setup to get exact
// morsel splits; recording the result makes every later scan of the same
// file start aligned for free. Implementations must be safe for concurrent
// use. Offsets must be ascending record starts with string state tracked
// from offset 0 (the SplitLookup contract).
type SplitRecorder interface {
	RecordFileSplits(collection, file string, splits []int64)
}

// Ctx is the per-task evaluation context shared by the operators of one
// partition pipeline.
type Ctx struct {
	Source     Source
	Accountant *frame.Accountant
	Stats      *Stats
	FrameSize  int
	// ChunkSize is the refill-buffer size of streaming scans
	// (jsonparse.DefaultChunkSize when <= 0). It is the unit charged to
	// the accountant while a file is being scanned.
	ChunkSize int
	// Indexes provides zone-map lookups for DATASCAN file pruning (may be
	// nil).
	Indexes IndexLookup

	// argScratch is a stack of recycled argument slices for CallEval, so
	// nested calls evaluated tuple after tuple never re-allocate their
	// argument arrays. A Ctx is confined to one partition pipeline, so the
	// stack needs no locking.
	argScratch [][]item.Sequence
}

// borrowArgs pops (or allocates) an argument slice of length n. Safe on a
// nil context, which simply allocates.
func (c *Ctx) borrowArgs(n int) []item.Sequence {
	if c == nil || len(c.argScratch) == 0 {
		return make([]item.Sequence, n)
	}
	s := c.argScratch[len(c.argScratch)-1]
	c.argScratch = c.argScratch[:len(c.argScratch)-1]
	if cap(s) < n {
		return make([]item.Sequence, n)
	}
	return s[:n]
}

// returnArgs clears a borrowed slice and pushes it back for reuse.
func (c *Ctx) returnArgs(s []item.Sequence) {
	if c == nil || s == nil {
		return
	}
	for i := range s {
		s[i] = nil
	}
	c.argScratch = append(c.argScratch, s)
}

// ScanChunkSize resolves the effective streaming chunk size.
func (c *Ctx) ScanChunkSize() int {
	if c != nil && c.ChunkSize > 0 {
		return c.ChunkSize
	}
	return jsonparse.DefaultChunkSize
}

// NewCtx builds a context with sane defaults.
func NewCtx(src Source) *Ctx {
	return &Ctx{
		Source:     src,
		Accountant: frame.NewAccountant(0),
		Stats:      &Stats{},
		FrameSize:  frame.DefaultFrameSize,
	}
}
