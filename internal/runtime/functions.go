package runtime

import (
	"fmt"
	"math"

	"vxq/internal/item"
	"vxq/internal/jsonparse"
)

// Scalar function library. All navigation functions follow the JSONiq
// extension to XQuery semantics, mapped implicitly over sequences: applying
// a navigation step to a sequence applies it to every item and concatenates
// the results; items of non-matching kinds contribute the empty sequence.

// FnValue is the JSONiq value expression: obj("key") / arr(i).
var FnValue = register(&Function{
	Name:  "value",
	Arity: 2,
	Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
		var out item.Sequence
		for _, it := range args[0] {
			switch x := it.(type) {
			case *item.Object:
				for _, key := range args[1] {
					if ks, ok := key.(item.String); ok {
						if v := x.Value(string(ks)); v != nil {
							out = append(out, v)
						}
					}
				}
			case item.Array:
				for _, key := range args[1] {
					if n, ok := key.(item.Number); ok {
						i := int(n)
						if i >= 1 && i <= len(x) {
							out = append(out, x[i-1])
						}
					}
				}
			}
		}
		return out, nil
	},
})

// FnKeysOrMembers is the JSONiq keys-or-members expression: x().
var FnKeysOrMembers = register(&Function{
	Name:  "keys-or-members",
	Arity: 1,
	Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
		return jsonparse.ApplyStep(args[0], jsonparse.MembersStep()), nil
	},
})

// FnIterate is the UNNEST iterate expression: the identity on sequences.
// The UNNEST operator splits the resulting sequence into one tuple per item.
var FnIterate = register(&Function{
	Name:  "iterate",
	Arity: 1,
	Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
		return args[0], nil
	},
})

// FnData is fn:data — atomization. Scalars atomize to themselves; objects
// and arrays have no typed value.
var FnData = register(&Function{
	Name:  "data",
	Arity: 1,
	Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
		out := make(item.Sequence, 0, len(args[0]))
		for _, it := range args[0] {
			switch it.Kind() {
			case item.KindObject, item.KindArray:
				return nil, fmt.Errorf("cannot atomize a %s", it.Kind())
			}
			out = append(out, it)
		}
		return out, nil
	},
})

// FnPromote is the type-promotion expression inserted by the translator;
// it is a checked identity (removed by the path expression rules).
var FnPromote = register(&Function{
	Name:  "promote",
	Arity: 1,
	Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
		return args[0], nil
	},
})

// FnTreat is the treat-as-type expression inserted by the translator; with
// type item it is an identity (removed by the group-by rules).
var FnTreat = register(&Function{
	Name:  "treat",
	Arity: 1,
	Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
		return args[0], nil
	},
})

// FnDateTime constructs an xs:dateTime from its string representation.
var FnDateTime = register(&Function{
	Name:  "dateTime",
	Arity: 1,
	Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
		var out item.Sequence
		for _, it := range args[0] {
			s, ok := it.(item.String)
			if !ok {
				return nil, fmt.Errorf("expected string, got %s", it.Kind())
			}
			d, err := item.ParseDateTime(string(s))
			if err != nil {
				return nil, err
			}
			out = append(out, d)
		}
		return out, nil
	},
})

func dateComponent(name string, get func(item.DateTime) int) *Function {
	return register(&Function{
		Name:  name,
		Arity: 1,
		Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
			var out item.Sequence
			for _, it := range args[0] {
				d, ok := it.(item.DateTime)
				if !ok {
					return nil, fmt.Errorf("expected dateTime, got %s", it.Kind())
				}
				out = append(out, item.Number(get(d)))
			}
			return out, nil
		},
	})
}

// Date component extractors.
var (
	FnYearFromDateTime  = dateComponent("year-from-dateTime", func(d item.DateTime) int { return d.Year })
	FnMonthFromDateTime = dateComponent("month-from-dateTime", func(d item.DateTime) int { return d.Month })
	FnDayFromDateTime   = dateComponent("day-from-dateTime", func(d item.DateTime) int { return d.Day })
)

func comparison(name string, ok func(c int) bool) *Function {
	return register(&Function{
		Name:  name,
		Arity: 2,
		Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
			// Value comparison: empty operand yields the empty sequence.
			if len(args[0]) == 0 || len(args[1]) == 0 {
				return nil, nil
			}
			a, err := args[0].One()
			if err != nil {
				return nil, err
			}
			b, err := args[1].One()
			if err != nil {
				return nil, err
			}
			if a.Kind() != b.Kind() {
				return nil, fmt.Errorf("cannot compare %s with %s", a.Kind(), b.Kind())
			}
			switch a.Kind() {
			case item.KindNumber, item.KindString, item.KindBool, item.KindDateTime:
				return item.Single(item.Bool(ok(item.Compare(a, b)))), nil
			default:
				return nil, fmt.Errorf("cannot compare %s values", a.Kind())
			}
		},
	})
}

// Value comparisons.
var (
	FnEq = comparison("eq", func(c int) bool { return c == 0 })
	FnNe = comparison("ne", func(c int) bool { return c != 0 })
	FnLt = comparison("lt", func(c int) bool { return c < 0 })
	FnLe = comparison("le", func(c int) bool { return c <= 0 })
	FnGt = comparison("gt", func(c int) bool { return c > 0 })
	FnGe = comparison("ge", func(c int) bool { return c >= 0 })
)

// Boolean connectives over effective boolean values.
var (
	FnAnd = register(&Function{
		Name:  "and",
		Arity: -1,
		Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
			for _, a := range args {
				if !item.EffectiveBoolean(a) {
					return item.Single(item.Bool(false)), nil
				}
			}
			return item.Single(item.Bool(true)), nil
		},
	})
	FnOr = register(&Function{
		Name:  "or",
		Arity: -1,
		Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
			for _, a := range args {
				if item.EffectiveBoolean(a) {
					return item.Single(item.Bool(true)), nil
				}
			}
			return item.Single(item.Bool(false)), nil
		},
	})
	FnNot = register(&Function{
		Name:  "not",
		Arity: 1,
		Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
			return item.Single(item.Bool(!item.EffectiveBoolean(args[0]))), nil
		},
	})
	// FnBoolean computes the effective boolean value explicitly.
	FnBoolean = register(&Function{
		Name:  "boolean",
		Arity: 1,
		Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
			return item.Single(item.Bool(item.EffectiveBoolean(args[0]))), nil
		},
	})
)

func arithmetic(name string, op func(a, b float64) (float64, error)) *Function {
	return register(&Function{
		Name:  name,
		Arity: 2,
		Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
			if len(args[0]) == 0 || len(args[1]) == 0 {
				return nil, nil
			}
			a, err := args[0].One()
			if err != nil {
				return nil, err
			}
			b, err := args[1].One()
			if err != nil {
				return nil, err
			}
			an, aok := a.(item.Number)
			bn, bok := b.(item.Number)
			if !aok || !bok {
				return nil, fmt.Errorf("arithmetic on %s and %s", a.Kind(), b.Kind())
			}
			r, err := op(float64(an), float64(bn))
			if err != nil {
				return nil, err
			}
			return item.Single(item.Number(r)), nil
		},
	})
}

// Arithmetic operators.
var (
	FnAdd = arithmetic("add", func(a, b float64) (float64, error) { return a + b, nil })
	FnSub = arithmetic("sub", func(a, b float64) (float64, error) { return a - b, nil })
	FnMul = arithmetic("mul", func(a, b float64) (float64, error) { return a * b, nil })
	FnDiv = arithmetic("div", func(a, b float64) (float64, error) {
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return a / b, nil
	})
	FnMod = arithmetic("mod", func(a, b float64) (float64, error) {
		if b == 0 {
			return 0, fmt.Errorf("modulo by zero")
		}
		return math.Mod(a, b), nil
	})
)

// FnCount is the scalar fn:count over a materialized sequence (the
// unoptimized form that the group-by rules replace with an incremental
// aggregate).
var FnCount = register(&Function{
	Name:  "count",
	Arity: 1,
	Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
		return item.Single(item.Number(len(args[0]))), nil
	},
})

func numericFold(name string, finish func(sum float64, n int) (item.Sequence, error)) *Function {
	return register(&Function{
		Name:  name,
		Arity: 1,
		Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
			var sum float64
			for _, it := range args[0] {
				n, ok := it.(item.Number)
				if !ok {
					return nil, fmt.Errorf("expected number, got %s", it.Kind())
				}
				sum += float64(n)
			}
			return finish(sum, len(args[0]))
		},
	})
}

// Scalar folds over materialized sequences.
var (
	FnSum = numericFold("sum", func(sum float64, n int) (item.Sequence, error) {
		return item.Single(item.Number(sum)), nil
	})
	FnAvg = numericFold("avg", func(sum float64, n int) (item.Sequence, error) {
		if n == 0 {
			return nil, nil // avg of empty sequence is empty
		}
		return item.Single(item.Number(sum / float64(n))), nil
	})
)

// FnCollection reads and parses every file of a collection, returning the
// sequence of documents. This is the unoptimized evaluation of the
// collection expression (§4.2, Fig. 5): the whole collection materializes
// into a single tuple field. The pipelining rules replace it with DATASCAN.
var FnCollection = register(&Function{
	Name:  "collection",
	Arity: 1,
	Apply: func(ctx *Ctx, args []item.Sequence) (item.Sequence, error) {
		name, err := singletonString(args[0])
		if err != nil {
			return nil, err
		}
		if ctx == nil || ctx.Source == nil {
			return nil, fmt.Errorf("no data source configured")
		}
		files, err := ctx.Source.Files(name)
		if err != nil {
			return nil, err
		}
		var out item.Sequence
		for _, f := range files {
			doc, err := readDoc(ctx, f)
			if err != nil {
				return nil, err
			}
			out = append(out, doc)
		}
		if ctx.Accountant != nil {
			ctx.Accountant.Allocate(item.SizeBytesSeq(out))
			defer ctx.Accountant.Release(item.SizeBytesSeq(out))
		}
		return out, nil
	},
})

// FnJSONDoc reads and parses a single JSON document.
var FnJSONDoc = register(&Function{
	Name:  "json-doc",
	Arity: 1,
	Apply: func(ctx *Ctx, args []item.Sequence) (item.Sequence, error) {
		path, err := singletonString(args[0])
		if err != nil {
			return nil, err
		}
		if ctx == nil || ctx.Source == nil {
			return nil, fmt.Errorf("no data source configured")
		}
		doc, err := readDoc(ctx, path)
		if err != nil {
			return nil, err
		}
		return item.Single(doc), nil
	},
})

func readDoc(ctx *Ctx, path string) (item.Item, error) {
	rc, err := ctx.Source.Open(path)
	if err != nil {
		// Both Source implementations name the file in their open errors.
		return nil, err
	}
	cr := &CountingReader{R: rc}
	doc, err := jsonparse.ParseReader(cr, ctx.ScanChunkSize())
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	if ctx.Stats != nil {
		ctx.Stats.BytesRead += cr.N
		ctx.Stats.FilesRead++
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

func singletonString(s item.Sequence) (string, error) {
	it, err := s.One()
	if err != nil {
		return "", err
	}
	str, ok := it.(item.String)
	if !ok {
		return "", fmt.Errorf("expected string, got %s", it.Kind())
	}
	return string(str), nil
}

// FnObject is the JSONiq object constructor: object(k1, v1, k2, v2, ...).
// Keys must be singleton strings; an empty value becomes null (JSONiq's
// null-on-empty constructor behaviour).
var FnObject = register(&Function{
	Name:  "object",
	Arity: -1,
	Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
		if len(args)%2 != 0 {
			return nil, fmt.Errorf("object constructor needs key/value pairs")
		}
		keys := make([]string, 0, len(args)/2)
		vals := make([]item.Item, 0, len(args)/2)
		for i := 0; i < len(args); i += 2 {
			k, err := args[i].One()
			if err != nil {
				return nil, fmt.Errorf("object key: %w", err)
			}
			ks, ok := k.(item.String)
			if !ok {
				return nil, fmt.Errorf("object key must be a string, got %s", k.Kind())
			}
			var v item.Item = item.Null{}
			switch len(args[i+1]) {
			case 0:
			case 1:
				v = args[i+1][0]
			default:
				return nil, fmt.Errorf("object value for %q is a sequence of %d items", ks, len(args[i+1]))
			}
			keys = append(keys, string(ks))
			vals = append(vals, v)
		}
		obj, err := item.NewObject(keys, vals)
		if err != nil {
			return nil, err
		}
		return item.Single(obj), nil
	},
})

// FnArray is the JSONiq array constructor: array(e1, e2, ...) concatenates
// every argument's items into one array.
var FnArray = register(&Function{
	Name:  "array",
	Arity: -1,
	Apply: func(_ *Ctx, args []item.Sequence) (item.Sequence, error) {
		var arr item.Array
		for _, a := range args {
			arr = append(arr, a...)
		}
		if arr == nil {
			arr = item.Array{}
		}
		return item.Single(arr), nil
	},
})
