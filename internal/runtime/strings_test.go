package runtime

import (
	"testing"

	"vxq/internal/item"
)

func TestStringFunctions(t *testing.T) {
	s := func(v string) item.Sequence { return one(item.String(v)) }
	n := func(v float64) item.Sequence { return one(item.Number(v)) }

	if !item.EqualSeq(evalFn(t, "string", n(42)), s("42")) {
		t.Error("string(42)")
	}
	if !item.EqualSeq(evalFn(t, "string", item.Empty), s("")) {
		t.Error("string(())")
	}
	if !item.EqualSeq(evalFn(t, "string", one(item.Bool(true))), s("true")) {
		t.Error("string(true)")
	}
	if !item.EqualSeq(evalFn(t, "string", one(item.DateTime{Year: 2013, Month: 12, Day: 25})),
		s("2013-12-25T00:00:00")) {
		t.Error("string(dateTime)")
	}
	if err := evalFnErr(t, "string", one(item.Array{})); err == nil {
		t.Error("string of array must fail")
	}

	if !item.EqualSeq(evalFn(t, "concat", s("a"), s("b"), n(1)), s("ab1")) {
		t.Error("concat")
	}
	if !item.EqualSeq(evalFn(t, "string-length", s("héllo")), n(5)) {
		t.Error("string-length must count runes")
	}
	if !item.EqualSeq(evalFn(t, "upper-case", s("TmIn")), s("TMIN")) {
		t.Error("upper-case")
	}
	if !item.EqualSeq(evalFn(t, "lower-case", s("TmIn")), s("tmin")) {
		t.Error("lower-case")
	}
	if !item.EqualSeq(evalFn(t, "contains", s("2013-12-25"), s("-12-")), one(item.Bool(true))) {
		t.Error("contains")
	}
	if !item.EqualSeq(evalFn(t, "starts-with", s("GSW123"), s("GSW")), one(item.Bool(true))) {
		t.Error("starts-with")
	}
	if !item.EqualSeq(evalFn(t, "ends-with", s("GSW123"), s("GSW")), one(item.Bool(false))) {
		t.Error("ends-with")
	}
}

func TestSubstring(t *testing.T) {
	s := func(v string) item.Sequence { return one(item.String(v)) }
	n := func(v float64) item.Sequence { return one(item.Number(v)) }
	cases := []struct {
		args []item.Sequence
		want string
	}{
		{[]item.Sequence{s("motor car"), n(6)}, " car"},
		{[]item.Sequence{s("metadata"), n(4), n(3)}, "ada"},
		{[]item.Sequence{s("12345"), n(0), n(3)}, "12"},  // start clamps per rounding
		{[]item.Sequence{s("12345"), n(-2), n(5)}, "12"}, // negative start
		{[]item.Sequence{s("12345"), n(10)}, ""},         // past end
		{[]item.Sequence{s("héllo"), n(2), n(2)}, "él"},  // rune-based
	}
	for i, c := range cases {
		got := evalFn(t, "substring", c.args...)
		if !item.EqualSeq(got, s(c.want)) {
			t.Errorf("case %d: substring = %s, want %q", i, item.JSONSeq(got), c.want)
		}
	}
	if err := evalFnErr(t, "substring", s("x")); err == nil {
		t.Error("substring with 1 arg must fail")
	}
	if err := evalFnErr(t, "substring", s("x"), s("y")); err == nil {
		t.Error("non-numeric start must fail")
	}
}

func TestNumericFunctions(t *testing.T) {
	n := func(v float64) item.Sequence { return one(item.Number(v)) }
	if !item.EqualSeq(evalFn(t, "abs", n(-3)), n(3)) {
		t.Error("abs")
	}
	if !item.EqualSeq(evalFn(t, "floor", n(2.7)), n(2)) {
		t.Error("floor")
	}
	if !item.EqualSeq(evalFn(t, "ceiling", n(2.1)), n(3)) {
		t.Error("ceiling")
	}
	if !item.EqualSeq(evalFn(t, "round", n(2.5)), n(3)) {
		t.Error("round")
	}
	if got := evalFn(t, "abs", item.Empty); len(got) != 0 {
		t.Error("abs of empty is empty")
	}
	if err := evalFnErr(t, "abs", one(item.String("x"))); err == nil {
		t.Error("abs of string must fail")
	}
}

func TestExistsEmpty(t *testing.T) {
	tr, fa := one(item.Bool(true)), one(item.Bool(false))
	if !item.EqualSeq(evalFn(t, "exists", one(item.Number(1))), tr) {
		t.Error("exists(1)")
	}
	if !item.EqualSeq(evalFn(t, "exists", item.Empty), fa) {
		t.Error("exists(())")
	}
	if !item.EqualSeq(evalFn(t, "empty", item.Empty), tr) {
		t.Error("empty(())")
	}
}

func TestMinMaxScalar(t *testing.T) {
	seq := item.Sequence{item.Number(3), item.Number(-1), item.Number(7)}
	if !item.EqualSeq(evalFn(t, "min", seq), one(item.Number(-1))) {
		t.Error("min")
	}
	if !item.EqualSeq(evalFn(t, "max", seq), one(item.Number(7))) {
		t.Error("max")
	}
	strSeq := item.Sequence{item.String("b"), item.String("a")}
	if !item.EqualSeq(evalFn(t, "min", strSeq), one(item.String("a"))) {
		t.Error("min of strings")
	}
	if got := evalFn(t, "min", item.Empty); len(got) != 0 {
		t.Error("min of empty is empty")
	}
	mixed := item.Sequence{item.Number(1), item.String("a")}
	if err := evalFnErr(t, "min", mixed); err == nil {
		t.Error("mixed kinds must fail")
	}
}

func TestAggMinMax(t *testing.T) {
	mn := MustAgg("agg-min").New()
	mx := MustAgg("agg-max").New()
	for _, v := range []float64{5, -2, 9, 0} {
		if err := mn.Step(one(item.Number(v))); err != nil {
			t.Fatal(err)
		}
		if err := mx.Step(one(item.Number(v))); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := mn.Finish(); !item.EqualSeq(got, one(item.Number(-2))) {
		t.Errorf("agg-min = %s", item.JSONSeq(got))
	}
	if got, _ := mx.Finish(); !item.EqualSeq(got, one(item.Number(9))) {
		t.Errorf("agg-max = %s", item.JSONSeq(got))
	}
	// Empty input yields empty.
	if got, _ := MustAgg("agg-min").New().Finish(); len(got) != 0 {
		t.Error("agg-min of nothing is empty")
	}
	// Two-step: min of local minima equals the global minimum.
	l1, l2 := MustAgg("agg-min").New(), MustAgg("agg-min").New()
	l1.Step(one(item.Number(4)))
	l2.Step(one(item.Number(2)))
	p1, _ := l1.Finish()
	p2, _ := l2.Finish()
	g := MustAgg("agg-min").New()
	g.Step(p1)
	g.Step(p2)
	if got, _ := g.Finish(); !item.EqualSeq(got, one(item.Number(2))) {
		t.Errorf("two-step agg-min = %s", item.JSONSeq(got))
	}
	// Mixed kinds error.
	bad := MustAgg("agg-max").New()
	bad.Step(one(item.Number(1)))
	if err := bad.Step(one(item.String("x"))); err == nil {
		t.Error("mixed kinds must fail")
	}
	if bad.Size() <= 0 {
		t.Error("state size")
	}
}
