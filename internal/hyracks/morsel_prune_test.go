package hyracks

import (
	"strings"
	"testing"

	"vxq/internal/index"
	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// clusteredValueFile builds a newline-delimited file whose "value" field is
// the record index — monotonically increasing, so per-zone min/max stats are
// tight and a narrow value predicate maps to a narrow byte range.
func clusteredValueFile(records, padBytes int) []byte {
	var sb strings.Builder
	pad := strings.Repeat("x", padBytes)
	for i := 0; i < records; i++ {
		sb.WriteString(`{"root":[{"results":[{"date":"2013-12-01T00:00","value":`)
		sb.WriteString(itoa(i))
		sb.WriteString(`,"pad":"`)
		sb.WriteString(pad)
		sb.WriteString(`"}]}]}` + "\n")
	}
	return []byte(sb.String())
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// zoneFilter builds a [lo, hi] range filter on the value path.
func zoneFilter(lo, hi int) *ScanFilter {
	return &ScanFilter{
		Path: measurementsPath().Append(jsonparse.KeyStep("value")),
		Lo:   item.Number(lo),
		Hi:   item.Number(hi),
	}
}

// pruneFixture builds a clustered-value collection, its zone-map registry
// (fine zones, fine splits), and the list of files.
func pruneFixture(t *testing.T) (*runtime.MemSource, *index.Registry) {
	t.Helper()
	docs := map[string][]byte{"clustered.json": clusteredValueFile(400, 120)} // ~73 KiB
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}
	zms, err := index.BuildWith(src, "/sensors",
		[]jsonparse.Path{measurementsPath().Append(jsonparse.KeyStep("value"))},
		index.BuildOptions{SplitGrain: 512, ZoneGrain: 2048})
	if err != nil {
		t.Fatal(err)
	}
	reg := index.NewRegistry()
	reg.Add(zms[0])
	return src, reg
}

// TestMorselZonePruning: with per-zone stats on record, a narrow range
// predicate must prune most of a clustered file's morsels — and the surviving
// morsels must still own every matching record (pruning is sound: the scan's
// filtered output equals the reference's).
func TestMorselZonePruning(t *testing.T) {
	src, reg := pruneFixture(t)
	scan := ScanSource{
		Collection: "/sensors",
		Project:    measurementsPath(),
		Format:     FormatJSON,
		Filter:     zoneFilter(100, 110),
	}

	q, qs, err := buildMorselQueue(src, scan, reg, 1, morselOptions{morselSize: 4 << 10}, true)
	if err != nil {
		t.Fatal(err)
	}
	if qs.morselsSkipped == 0 {
		t.Fatalf("no morsels pruned for an 11/400-record predicate on a clustered file (stats %+v, %d morsels)",
			qs, len(q.morsels))
	}
	if qs.filesSkipped != 0 {
		t.Fatalf("file-level prune fired (%+v): the file's range does overlap the predicate", qs)
	}
	if q.skipped != qs.morselsSkipped {
		t.Fatalf("queue.skipped = %d, stats say %d", q.skipped, qs.morselsSkipped)
	}
	if len(q.morsels) == 0 {
		t.Fatal("every morsel pruned: the matching records' morsel must survive")
	}
	// Exactly one surviving morsel per file carries the FilesRead duty.
	counting := 0
	for _, m := range q.morsels {
		if m.countsFile {
			counting++
		}
	}
	if counting != 1 {
		t.Fatalf("%d morsels count the file, want exactly 1", counting)
	}

	// Soundness, end to end on both executors: every record the predicate
	// matches must come out of the pruned scan.
	job := &Job{Fragments: []*Fragment{{
		ID:           0,
		Source:       scan,
		Partitions:   2,
		SinkExchange: -1,
	}}}
	envf := func() *Env {
		return &Env{Source: src, Indexes: reg, MorselSize: 4 << 10}
	}
	for _, staged := range []bool{false, true} {
		var res *Result
		var err error
		if staged {
			res, err = RunStaged(job, envf())
		} else {
			res, err = RunPipelined(job, envf())
		}
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.MorselsSkipped == 0 {
			t.Errorf("staged=%v: Stats.MorselsSkipped = 0, queue build said %d", staged, qs.morselsSkipped)
		}
		if res.Stats.FilesRead != 1 {
			t.Errorf("staged=%v: FilesRead = %d, want 1 (counting morsel must survive pruning)",
				staged, res.Stats.FilesRead)
		}
		matches := map[int]bool{}
		for _, row := range res.Rows {
			rec := row[0][0]
			for _, v := range jsonparse.ApplyPath(rec, jsonparse.Path{jsonparse.KeyStep("value")}) {
				n := int(v.(item.Number))
				if n >= 100 && n <= 110 {
					matches[n] = true
				}
			}
		}
		for v := 100; v <= 110; v++ {
			if !matches[v] {
				t.Errorf("staged=%v: matching record value=%d lost to pruning", staged, v)
			}
		}
	}
}

// TestMorselPruningFirstMorselDropped: a predicate matching only the tail of
// the file prunes the first morsel; FilesRead accounting must follow the
// earliest survivor.
func TestMorselPruningFirstMorselDropped(t *testing.T) {
	src, reg := pruneFixture(t)
	scan := ScanSource{
		Collection: "/sensors",
		Project:    measurementsPath(),
		Format:     FormatJSON,
		Filter:     zoneFilter(390, 399), // the last few records only
	}
	q, qs, err := buildMorselQueue(src, scan, reg, 1, morselOptions{morselSize: 4 << 10}, true)
	if err != nil {
		t.Fatal(err)
	}
	if qs.morselsSkipped == 0 || len(q.morsels) == 0 {
		t.Fatalf("stats %+v, %d morsels", qs, len(q.morsels))
	}
	for _, m := range q.morsels {
		if m.first {
			t.Fatalf("first morsel [%d:%d) survived a tail-only predicate", m.start, m.end)
		}
	}
	if !q.morsels[0].countsFile {
		t.Fatal("FilesRead duty did not transfer to the earliest survivor")
	}
}

// TestMorselPruningUnknownIsKept: morsels outside zone coverage — or with no
// zones at all — are never pruned.
func TestMorselPruningUnknownIsKept(t *testing.T) {
	f := zoneFilter(1000, 2000) // matches nothing below
	zones := []runtime.Zone{
		{Start: 0, End: 1024, Range: runtime.FileRange{Min: item.Number(0), Max: item.Number(10), Count: 5}},
		// gap [1024, 2048): unknown
		{Start: 2048, End: 4096, Range: runtime.FileRange{Min: item.Number(20), Max: item.Number(30), Count: 5}},
	}
	if morselAdmitted(morsel{start: 0, end: 1024}, zones, f) {
		t.Error("fully covered, fully excluded morsel must be pruned")
	}
	if !morselAdmitted(morsel{start: 512, end: 1536}, zones, f) {
		t.Error("morsel reaching into a coverage gap must be kept")
	}
	if !morselAdmitted(morsel{start: 0, end: -1}, zones, f) {
		t.Error("whole-file morsel spanning a gap must be kept")
	}
	if !morselAdmitted(morsel{start: 0, end: 1024}, nil, f) {
		t.Error("no zones at all: must be kept")
	}
	// Dense coverage, everything excluded: the whole-file morsel goes.
	dense := []runtime.Zone{
		{Start: 0, End: 2048, Range: runtime.FileRange{Min: item.Number(0), Max: item.Number(10), Count: 5}},
		{Start: 2048, End: 4096, Range: runtime.FileRange{Min: item.Number(20), Max: item.Number(30), Count: 5}},
	}
	if morselAdmitted(morsel{start: 0, end: -1}, dense, f) {
		t.Error("densely covered, fully excluded whole-file morsel must be pruned")
	}
	// An empty zone (Count 0) excludes by definition: a filter-less record
	// cannot satisfy the SELECT that put the filter on the scan.
	empty := []runtime.Zone{{Start: 0, End: 4096, Range: runtime.FileRange{}}}
	if morselAdmitted(morsel{start: 0, end: -1}, empty, f) {
		t.Error("empty zone must exclude")
	}
}
