package hyracks

import (
	"io"
	"sync"
	"testing"

	"vxq/internal/index"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// rangeCountSource wraps a MemSource and counts OpenRange calls, so tests can
// tell whether a queue build ran the cold-scan boundary pass (which reads the
// file through range opens) or found the splits already recorded.
type rangeCountSource struct {
	*runtime.MemSource
	mu         sync.Mutex
	rangeOpens int
}

func (s *rangeCountSource) OpenRange(path string, off int64) (io.ReadCloser, error) {
	s.mu.Lock()
	s.rangeOpens++
	s.mu.Unlock()
	return s.MemSource.OpenRange(path, off)
}

func (s *rangeCountSource) opens() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rangeOpens
}

// TestColdIndexAlignedMorsels: a large NDJSON file with no recorded boundary
// index must still come out of buildMorselQueue cut on exact record starts —
// the cold-scan parallel pass computes the splits at queue-build time — and
// the splits must be recorded back into the registry so the second build
// reuses them without touching the file.
func TestColdIndexAlignedMorsels(t *testing.T) {
	data := ndSensorFile(300, 100) // ~68 KiB
	src := &rangeCountSource{MemSource: &runtime.MemSource{
		Collections: map[string]map[string][]byte{"/sensors": {"big.json": data}},
	}}
	file := "/sensors/big.json"
	reg := index.NewRegistry()
	scan := ScanSource{Collection: "/sensors", Format: FormatJSON, Project: measurementsPath()}
	opts := morselOptions{morselSize: 8 << 10, coldIndexMin: 1}

	q, _, err := buildMorselQueue(src, scan, reg, 1, opts, true)
	if err != nil {
		t.Fatal(err)
	}
	coldOpens := src.opens()
	if coldOpens == 0 {
		t.Fatal("cold-index pass did not read the file")
	}
	var interior int
	for {
		m, _, ok := q.take(0)
		if !ok {
			break
		}
		if m.first {
			continue
		}
		interior++
		if !m.aligned {
			t.Fatalf("interior morsel [%d:%d) not aligned despite cold-index pass", m.start, m.end)
		}
		if data[m.start-1] != '\n' {
			t.Fatalf("morsel start %d is not just past a newline", m.start)
		}
	}
	if interior == 0 {
		t.Fatal("file was not split into aligned morsels")
	}

	// The pass recorded its result: the registry now serves the splits, and
	// they match a sequential boundary scan at the cold-index grain.
	sp, ok := reg.FileSplits("/sensors", file)
	if !ok || len(sp) == 0 {
		t.Fatal("cold-index splits were not recorded back into the registry")
	}
	bs := jsonparse.NewBoundaryScanner(coldIndexSplitGrain)
	bs.Write(data)
	bs.Close()
	want := bs.Splits()
	if len(sp) != len(want) {
		t.Fatalf("recorded %d splits, sequential scan says %d", len(sp), len(want))
	}
	for i := range sp {
		if sp[i] != want[i] {
			t.Fatalf("split[%d] = %d, want %d", i, sp[i], want[i])
		}
	}

	// Second build: splits come from the registry, no range opens.
	if _, _, err := buildMorselQueue(src, scan, reg, 1, opts, true); err != nil {
		t.Fatal(err)
	}
	if src.opens() != coldOpens {
		t.Fatalf("second build re-read the file (%d extra range opens); recorded splits not reused",
			src.opens()-coldOpens)
	}
}

// TestColdIndexDisabledAndGated: a negative threshold disables the pass, a
// threshold above the file size skips it, and with no recorder in the lookup
// chain the pass still aligns morsels without recording anything.
func TestColdIndexDisabledAndGated(t *testing.T) {
	data := ndSensorFile(300, 100)
	newSrc := func() *rangeCountSource {
		return &rangeCountSource{MemSource: &runtime.MemSource{
			Collections: map[string]map[string][]byte{"/sensors": {"big.json": data}},
		}}
	}
	scan := ScanSource{Collection: "/sensors", Format: FormatJSON, Project: measurementsPath()}

	countAligned := func(q *morselQueue) (interior, aligned int) {
		for {
			m, _, ok := q.take(0)
			if !ok {
				return
			}
			if m.first {
				continue
			}
			interior++
			if m.aligned {
				aligned++
			}
		}
	}

	for _, tc := range []struct {
		name string
		min  int64
	}{
		{"disabled", -1},
		{"below-threshold", int64(len(data)) + 1},
	} {
		src := newSrc()
		reg := index.NewRegistry()
		q, _, err := buildMorselQueue(src, scan, reg, 1,
			morselOptions{morselSize: 8 << 10, coldIndexMin: tc.min}, true)
		if err != nil {
			t.Fatal(err)
		}
		interior, aligned := countAligned(q)
		if interior == 0 {
			t.Fatalf("%s: file not split at all", tc.name)
		}
		if aligned != 0 {
			t.Errorf("%s: %d aligned morsels; cold pass should not have run", tc.name, aligned)
		}
		if src.opens() != 0 {
			t.Errorf("%s: %d range opens at queue build; cold pass should not have run", tc.name, src.opens())
		}
		if _, ok := reg.FileSplits("/sensors", "/sensors/big.json"); ok {
			t.Errorf("%s: splits recorded despite gated pass", tc.name)
		}
	}

	// nil IndexLookup: pass runs (alignment is still worth it), nothing to
	// record into.
	src := newSrc()
	q, _, err := buildMorselQueue(src, scan, nil, 1,
		morselOptions{morselSize: 8 << 10, coldIndexMin: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	interior, aligned := countAligned(q)
	if interior == 0 || aligned != interior {
		t.Fatalf("nil lookup: %d/%d interior morsels aligned, want all", aligned, interior)
	}
	if src.opens() == 0 {
		t.Fatal("nil lookup: cold pass did not run")
	}
}

// TestColdIndexScanEquivalence runs a full scan job with the cold-index pass
// forced on: the result must match the whole-file reference exactly (the
// aligned morsels preserve exactly-once record ownership), on both executors,
// and the staged/pipelined runs after the first reuse the recorded splits.
func TestColdIndexScanEquivalence(t *testing.T) {
	docs := map[string][]byte{
		"many.json":   ndSensorFile(200, 100),
		"bigrec.json": ndSensorFile(12, 3000),
		"tiny.json":   ndSensorFile(2, 0),
	}
	src := &rangeCountSource{MemSource: &runtime.MemSource{
		Collections: map[string]map[string][]byte{"/sensors": docs},
	}}
	want := referenceItems(t, docs, measurementsPath())
	reg := index.NewRegistry()
	env := func() *Env {
		return &Env{Source: src, MorselSize: 4 << 10, Indexes: reg, ColdIndexMinBytes: 1, ColdIndexWorkers: 4}
	}
	for _, parts := range []int{1, 3} {
		got := resultItems(runBoth(t, scanJob(parts, measurementsPath()), env))
		if len(got) != len(want) {
			t.Fatalf("parts=%d: %d items, want %d", parts, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("parts=%d: item %d = %s, want %s", parts, i, got[i], want[i])
			}
		}
	}
	for _, f := range []string{"/sensors/many.json", "/sensors/bigrec.json"} {
		if _, ok := reg.FileSplits("/sensors", f); !ok {
			t.Errorf("%s: cold-index splits not recorded", f)
		}
	}
}
