package hyracks

import (
	"fmt"
	"strings"

	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// SourceSpec describes where a fragment's input tuples come from.
type SourceSpec interface{ sourceName() string }

// ETSSource emits a single empty tuple per partition (the
// EMPTY-TUPLE-SOURCE leaf operator of §3.2).
type ETSSource struct{}

func (ETSSource) sourceName() string { return "EMPTY-TUPLE-SOURCE" }

// ScanFormat selects how DATASCAN decodes the files of a collection.
type ScanFormat uint8

// Scan formats.
const (
	// FormatJSON parses raw JSON text; a projection path streams while
	// parsing (the VXQuery behaviour).
	FormatJSON ScanFormat = iota
	// FormatADM decodes binary pre-converted documents (the
	// AsterixDB-load behaviour): the whole document is materialized and
	// any projection path is applied afterwards, so there is no streaming
	// benefit.
	FormatADM
)

func (f ScanFormat) String() string {
	switch f {
	case FormatJSON:
		return "json"
	case FormatADM:
		return "adm"
	default:
		return fmt.Sprintf("format(%d)", uint8(f))
	}
}

// ScanFilter is a range predicate on a scalar path, attached to a DATASCAN
// by the index rule: files whose zone-map range cannot overlap
// [Lo, Hi] are skipped entirely. Nil bounds are unbounded; strict bounds
// exclude the endpoint. The filter only ever *prunes* whole files — the
// plan's SELECT still checks every surviving tuple, so execution is correct
// with or without an index.
type ScanFilter struct {
	Path               jsonparse.Path
	Lo, Hi             item.Item
	LoStrict, HiStrict bool
}

// Admits reports whether a file with the given value range may contain a
// value satisfying the filter.
func (f *ScanFilter) Admits(r runtime.FileRange) bool {
	if r.Count == 0 || r.Min == nil || r.Max == nil {
		return false
	}
	if f.Lo != nil {
		c := item.Compare(r.Max, f.Lo)
		if c < 0 || (c == 0 && f.LoStrict) {
			return false
		}
	}
	if f.Hi != nil {
		c := item.Compare(r.Min, f.Hi)
		if c > 0 || (c == 0 && f.HiStrict) {
			return false
		}
	}
	return true
}

// String renders the filter for plan printing.
func (f *ScanFilter) String() string {
	lo, hi := "-inf", "+inf"
	if f.Lo != nil {
		lo = item.JSON(f.Lo)
	}
	if f.Hi != nil {
		hi = item.JSON(f.Hi)
	}
	lb, rb := "[", "]"
	if f.LoStrict {
		lb = "("
	}
	if f.HiStrict {
		rb = ")"
	}
	return fmt.Sprintf("%s in %s%s, %s%s", f.Path, lb, lo, hi, rb)
}

// ScanSource is the DATASCAN operator (§3.2, §4.2): it reads the files of a
// collection — each partition takes its share of the files — and emits one
// single-field tuple per projected item. With a nil Project path the whole
// document is one item per file; with a path (and FormatJSON), the
// streaming projector emits each matching sub-item as its own tuple, which
// is the pipelining rules' "second argument" to DATASCAN.
type ScanSource struct {
	Collection string
	Project    jsonparse.Path
	Format     ScanFormat
	// Filter enables zone-map file pruning (may be nil).
	Filter *ScanFilter
}

func (s ScanSource) sourceName() string {
	fmtSuffix := ""
	if s.Format != FormatJSON {
		fmtSuffix = " [" + s.Format.String() + "]"
	}
	if s.Filter != nil {
		fmtSuffix += " filter{" + s.Filter.String() + "}"
	}
	if len(s.Project) == 0 {
		return fmt.Sprintf("DATASCAN collection(%q)%s", s.Collection, fmtSuffix)
	}
	return fmt.Sprintf("DATASCAN collection(%q) %s%s", s.Collection, s.Project, fmtSuffix)
}

// ExchangeSource consumes the frames routed to this partition by the given
// exchange.
type ExchangeSource struct{ Exchange int }

func (s ExchangeSource) sourceName() string { return fmt.Sprintf("RECEIVE exch#%d", s.Exchange) }

// JoinSource consumes two exchanges: Build is drained into a hash table
// first, then Probe streams against it (hybrid hash join, one partition of
// the key space per fragment partition).
type JoinSource struct {
	Build, Probe int
	Spec         *JoinSpec
}

func (s JoinSource) sourceName() string {
	return fmt.Sprintf("HASH-JOIN build=exch#%d probe=exch#%d %s", s.Build, s.Probe, s.Spec.Desc)
}

// ExchangeKind selects the routing policy of an exchange connector.
type ExchangeKind uint8

// Exchange kinds.
const (
	// ExchangeHash routes each tuple to hash(keys) mod consumer partitions
	// (Hyracks' M:N hash-partitioning connector).
	ExchangeHash ExchangeKind = iota
	// ExchangeMerge routes every tuple to consumer partition 0 (M:1).
	ExchangeMerge
	// ExchangeOneToOne routes partition i to partition i.
	ExchangeOneToOne
)

func (k ExchangeKind) String() string {
	switch k {
	case ExchangeHash:
		return "HASH"
	case ExchangeMerge:
		return "MERGE"
	case ExchangeOneToOne:
		return "1:1"
	default:
		return fmt.Sprintf("exchange(%d)", uint8(k))
	}
}

// Exchange describes a connector between a producer fragment and a consumer
// fragment.
type Exchange struct {
	ID                 int
	Kind               ExchangeKind
	Keys               []runtime.Evaluator // for ExchangeHash
	ConsumerPartitions int
}

// Fragment is a linear chain of operators over a source, ending either in
// an exchange or in the job's result collector.
type Fragment struct {
	ID         int
	Source     SourceSpec
	Ops        []OpSpec
	Partitions int
	// SinkExchange is the exchange this fragment feeds, or -1 for the
	// result collector.
	SinkExchange int
}

// Job is a compiled physical plan: fragments in topological order
// (producers before their consumers) plus the exchanges connecting them.
type Job struct {
	Fragments []*Fragment
	Exchanges []*Exchange
}

// Validate checks the job's structural invariants.
func (j *Job) Validate() error {
	exch := make(map[int]*Exchange, len(j.Exchanges))
	for _, e := range j.Exchanges {
		if _, dup := exch[e.ID]; dup {
			return fmt.Errorf("hyracks: duplicate exchange id %d", e.ID)
		}
		if e.ConsumerPartitions <= 0 {
			return fmt.Errorf("hyracks: exchange %d has %d consumer partitions", e.ID, e.ConsumerPartitions)
		}
		exch[e.ID] = e
	}
	produced := make(map[int]bool)
	collectors := 0
	for _, f := range j.Fragments {
		if f.Partitions <= 0 {
			return fmt.Errorf("hyracks: fragment %d has %d partitions", f.ID, f.Partitions)
		}
		switch s := f.Source.(type) {
		case ExchangeSource:
			if !produced[s.Exchange] {
				return fmt.Errorf("hyracks: fragment %d consumes exchange %d before it is produced", f.ID, s.Exchange)
			}
			if exch[s.Exchange].ConsumerPartitions != f.Partitions {
				return fmt.Errorf("hyracks: fragment %d partitions (%d) != exchange %d consumers (%d)",
					f.ID, f.Partitions, s.Exchange, exch[s.Exchange].ConsumerPartitions)
			}
		case JoinSource:
			for _, id := range []int{s.Build, s.Probe} {
				if !produced[id] {
					return fmt.Errorf("hyracks: fragment %d consumes exchange %d before it is produced", f.ID, id)
				}
				if exch[id].ConsumerPartitions != f.Partitions {
					return fmt.Errorf("hyracks: fragment %d partitions (%d) != exchange %d consumers (%d)",
						f.ID, f.Partitions, id, exch[id].ConsumerPartitions)
				}
			}
		case ETSSource, ScanSource:
		default:
			return fmt.Errorf("hyracks: fragment %d has unknown source %T", f.ID, f.Source)
		}
		if f.SinkExchange >= 0 {
			if _, ok := exch[f.SinkExchange]; !ok {
				return fmt.Errorf("hyracks: fragment %d sinks to unknown exchange %d", f.ID, f.SinkExchange)
			}
			produced[f.SinkExchange] = true
		} else {
			collectors++
		}
	}
	if collectors != 1 {
		return fmt.Errorf("hyracks: job must have exactly one collector fragment, has %d", collectors)
	}
	return nil
}

// String renders the job for explain output.
func (j *Job) String() string {
	var b strings.Builder
	for _, f := range j.Fragments {
		fmt.Fprintf(&b, "fragment %d (x%d partitions)", f.ID, f.Partitions)
		if f.SinkExchange >= 0 {
			e := j.exchange(f.SinkExchange)
			fmt.Fprintf(&b, " -> exch#%d[%s]", f.SinkExchange, e.Kind)
		} else {
			b.WriteString(" -> RESULT")
		}
		b.WriteString("\n")
		for i := len(f.Ops) - 1; i >= 0; i-- {
			fmt.Fprintf(&b, "  %s\n", f.Ops[i].Name())
		}
		fmt.Fprintf(&b, "  %s\n", f.Source.sourceName())
	}
	return b.String()
}

// ScanCollections lists the collections the job's DATASCANs read, in
// fragment order, deduplicated. Result caching uses it to know which files
// a query's answer depends on.
func (j *Job) ScanCollections() []string {
	var (
		seen map[string]bool
		out  []string
	)
	for _, f := range j.Fragments {
		s, ok := f.Source.(ScanSource)
		if !ok || seen[s.Collection] {
			continue
		}
		if seen == nil {
			seen = map[string]bool{}
		}
		seen[s.Collection] = true
		out = append(out, s.Collection)
	}
	return out
}

func (j *Job) exchange(id int) *Exchange {
	for _, e := range j.Exchanges {
		if e.ID == id {
			return e
		}
	}
	return nil
}
