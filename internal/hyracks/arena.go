package hyracks

// byteArena bump-allocates stable copies of small byte slices (group-by and
// join keys) out of large chunks, so a table with thousands of groups costs
// a handful of allocations instead of one per key. Arena memory is never
// freed piecemeal: the owning operator releases the whole reservation at
// Close, matching the hold-until-Close accounting discipline.
type byteArena struct {
	chunks   [][]byte
	reserved int64 // total capacity reserved across all chunks
}

// arenaChunkSize is the default chunk the arena grows by.
const arenaChunkSize = 64 * 1024

// copy stores a stable copy of b in the arena and returns it along with the
// number of newly reserved bytes (non-zero only when a chunk was added) for
// the caller to charge to the accountant.
func (a *byteArena) copy(b []byte) ([]byte, int64) {
	if len(b) == 0 {
		return nil, 0
	}
	var grew int64
	cur := len(a.chunks) - 1
	if cur < 0 || cap(a.chunks[cur])-len(a.chunks[cur]) < len(b) {
		size := arenaChunkSize
		if len(b) > size {
			// Oversized keys get a chunk of their own.
			size = len(b)
		}
		a.chunks = append(a.chunks, make([]byte, 0, size))
		a.reserved += int64(size)
		grew = int64(size)
		cur = len(a.chunks) - 1
	}
	chunk := a.chunks[cur]
	start := len(chunk)
	chunk = append(chunk, b...)
	a.chunks[cur] = chunk
	return chunk[start:len(chunk):len(chunk)], grew
}

// release drops every chunk and returns the total reservation to subtract
// from the accountant.
func (a *byteArena) release() int64 {
	n := a.reserved
	a.chunks = nil
	a.reserved = 0
	return n
}
