package hyracks

import (
	"strings"
	"testing"

	"vxq/internal/frame"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

// TestSortAccountsKeyMemory: the sort operator retains both the copied raw
// tuples and the evaluated key sequences until Close, so Push must charge
// the keys too, and the Close release must return the balance to exactly
// zero.
func TestSortAccountsKeyMemory(t *testing.T) {
	acct := frame.NewAccountant(0)
	ctx := &TaskCtx{RT: &runtime.Ctx{Accountant: acct}}
	sink := &CollectSink{}
	op := (&SortSpec{Keys: []SortDef{{Key: runtime.ColumnEval{Col: 0}}}, Desc: "test"}).
		Build(ctx, sink)
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}

	// One tuple whose sort key is a fat string: if Push only charged raw
	// tuple bytes (+48 fixed), the charge could never reach the key's
	// footprint on top of the tuple copy.
	key := item.String(strings.Repeat("k", 4096))
	enc := item.EncodeSeq(nil, item.Single(key))
	fr := frame.New(0)
	if !fr.AppendTuple([][]byte{enc}) {
		t.Fatal("tuple does not fit a default frame")
	}
	if err := op.Push(fr); err != nil {
		t.Fatal(err)
	}

	rawSz := int64(len(enc)) + 48
	keySz := item.SizeBytesSeq(item.Single(key))
	if cur := acct.Current(); cur < rawSz+keySz {
		t.Errorf("held charge = %d, want >= %d (raw %d + keys %d): key memory untracked",
			cur, rawSz+keySz, rawSz, keySz)
	}

	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	if cur := acct.Current(); cur != 0 {
		t.Errorf("balance after Close = %d, want 0", cur)
	}
	if len(sink.Rows) != 1 {
		t.Errorf("sorted rows = %d, want 1", len(sink.Rows))
	}
}
