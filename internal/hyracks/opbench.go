package hyracks

import (
	"fmt"
	"time"

	"vxq/internal/frame"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

// This file exports thin harnesses that drive individual operators over
// prebuilt frames, so the query-kernel benchmarks (internal/bench, `benchscan
// -query`) can measure the encoded-key paths against the eager reference
// without a scan or an executor in the loop.
//
// The harness contexts carry no frame pool: recycle is a no-op, so the
// caller's input frames survive a pass and can be pushed again on the next
// one.

// BenchFrames packs the rows into frames of the given size (the default
// when <= 0). Each row becomes one tuple of canonically encoded fields.
func BenchFrames(rows [][]item.Sequence, frameSize int) []*frame.Frame {
	if frameSize <= 0 {
		frameSize = frame.DefaultFrameSize
	}
	var frames []*frame.Frame
	fr := frame.New(frameSize)
	for _, row := range rows {
		fields := frame.EncodeFields(row)
		if fr.AppendTuple(fields) {
			continue
		}
		frames = append(frames, fr)
		fr = frame.New(frameSize)
		if !fr.AppendTuple(fields) {
			panic("hyracks: bench tuple larger than frame")
		}
	}
	if fr.TupleCount() > 0 {
		frames = append(frames, fr)
	}
	return frames
}

func benchCtx(eager bool) *TaskCtx {
	return &TaskCtx{RT: &runtime.Ctx{Stats: &runtime.Stats{}}, EagerDecode: eager}
}

// benchProf arms a harness context with a synthetic three-stage task profile
// (source | op | sink), so a profiled pass carries exactly the per-boundary
// wrappers the executors install. Used to measure profiling overhead.
func benchProf(ctx *TaskCtx, name, kind string) {
	ctx.prof = &taskProf{epoch: time.Now(), stages: []stageProf{
		{name: "BENCH-SOURCE", kind: "source"},
		{name: name, kind: kind},
		{name: "RESULT", kind: "sink"},
	}}
}

// benchWrap wraps the op writer (stage 1) and its sink (stage 2) with the
// profiling boundary when the context is profiled; otherwise it builds the
// bare chain.
func benchWrap(ctx *TaskCtx, build func(out Writer) Writer, sink Writer) Writer {
	if ctx.prof == nil {
		return build(sink)
	}
	return &profWriter{
		inner: build(&profWriter{inner: sink, t: ctx.prof, idx: 2}),
		t:     ctx.prof, idx: 1,
	}
}

// countSink counts tuples without decoding them.
type countSink struct{ n int64 }

func (s *countSink) Open() error { return nil }
func (s *countSink) Push(fr *frame.Frame) error {
	s.n += int64(fr.TupleCount())
	return nil
}
func (s *countSink) Close() error { return nil }

// BenchGroupBy pushes the frames through one GROUP-BY operator into a
// counting sink and returns the number of result groups. eager selects the
// decoded reference implementation; profiled adds the profiling boundary
// wrappers (for overhead measurement).
func BenchGroupBy(spec *GroupBySpec, frames []*frame.Frame, eager, profiled bool) (int64, error) {
	ctx := benchCtx(eager)
	if profiled {
		benchProf(ctx, spec.Name(), "group-by")
	}
	sink := &countSink{}
	w := benchWrap(ctx, func(out Writer) Writer { return spec.Build(ctx, out) }, sink)
	if err := w.Open(); err != nil {
		return 0, err
	}
	for _, fr := range frames {
		if err := w.Push(fr); err != nil {
			return 0, err
		}
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	return sink.n, nil
}

// countDest is a frameDest that counts and drops routed frames.
type countDest struct{ n int64 }

func (d *countDest) send(fr *frame.Frame) error {
	d.n += int64(fr.TupleCount())
	return nil
}

// BenchHashShuffle routes the frames through a hash exchange onto parts
// destinations and returns the number of tuples shipped. eager selects the
// decoded routing path; profiled adds the profiling boundary wrapper.
func BenchHashShuffle(keys []runtime.Evaluator, parts int, frames []*frame.Frame, eager, profiled bool) (int64, error) {
	ctx := benchCtx(eager)
	dests := make([]frameDest, parts)
	counts := make([]*countDest, parts)
	for i := range dests {
		d := &countDest{}
		dests[i] = d
		counts[i] = d
	}
	var w Writer = newExchangeWriter(ctx, &Exchange{Kind: ExchangeHash, Keys: keys, ConsumerPartitions: parts}, dests)
	if profiled {
		benchProf(ctx, "EXCHANGE bench[HASH]", "exchange")
		w = &profWriter{inner: w, t: ctx.prof, idx: 1}
	}
	if err := w.Open(); err != nil {
		return 0, err
	}
	for _, fr := range frames {
		if err := w.Push(fr); err != nil {
			return 0, err
		}
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	var total int64
	for _, d := range counts {
		total += d.n
	}
	if st := ctx.RT.Stats; st.TuplesShuffled != total {
		return 0, fmt.Errorf("hyracks: shuffle stats %d != routed tuples %d", st.TuplesShuffled, total)
	}
	return total, nil
}

// BenchHashJoin builds a hash join from the build frames, probes it with the
// probe frames, and returns the number of joined tuples. eager selects the
// decoded reference implementation; profiled wraps the join's output path
// (the boundary the executors instrument on a join fragment).
func BenchHashJoin(spec *JoinSpec, build, probe []*frame.Frame, eager, profiled bool) (int64, error) {
	ctx := benchCtx(eager)
	j := newJoiner(ctx, spec)
	defer j.release()
	for _, fr := range build {
		if err := j.build(fr); err != nil {
			return 0, err
		}
	}
	sink := &countSink{}
	var out Writer = sink
	if profiled {
		benchProf(ctx, "HASH-JOIN bench", "join")
		out = &profWriter{inner: out, t: ctx.prof, idx: 2}
	}
	b := newFrameBuilder(ctx, out)
	for _, fr := range probe {
		if err := j.probe(fr, b); err != nil {
			return 0, err
		}
	}
	if err := b.flush(); err != nil {
		return 0, err
	}
	return sink.n, nil
}
