package hyracks

import (
	"fmt"
	"io"
	"sort"
	"time"

	"vxq/internal/frame"
	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// Env configures a job execution.
type Env struct {
	Source     runtime.Source
	FrameSize  int
	Accountant *frame.Accountant
	// ChunkSize is the refill-buffer size of streaming scans
	// (jsonparse.DefaultChunkSize when <= 0).
	ChunkSize int
	// Indexes provides zone-map lookups for DATASCAN file pruning (may be
	// nil).
	Indexes runtime.IndexLookup
	// ChannelDepth is the per-channel frame buffer of the pipelined
	// executor (default 4).
	ChannelDepth int
	// MorselSize is the byte-range granularity of morsel-driven scans
	// (DefaultMorselSize when <= 0): raw-JSON files larger than this are
	// split into independently schedulable byte ranges.
	MorselSize int64
	// ColdIndexMinBytes gates the cold-scan boundary pass: a raw-JSON file
	// at least this large with no recorded record-boundary index gets one
	// from the speculative parallel indexer at queue-build time, so even the
	// first scan of a huge file cuts morsels exactly on record starts
	// (DefaultColdIndexMinBytes when 0; negative disables the pass).
	ColdIndexMinBytes int64
	// ColdIndexWorkers is the worker count of that pass (GOMAXPROCS when
	// <= 0).
	ColdIndexWorkers int
	// Pool recycles tuple frames across operators and tasks; one is created
	// on demand when nil.
	Pool *frame.Pool
	// EagerReference runs the job with TaskCtx.EagerDecode set: operators use
	// their decoded-sequence reference implementations instead of the lazy
	// encoded-domain paths. Differential tests compare both modes; benchmarks
	// use it as the baseline.
	EagerReference bool
	// Profile collects per-operator metrics (Result.Profile): every stage
	// boundary is wrapped with timing and flow counters, gathered per task
	// and merged once at job end. Off by default — an unprofiled run builds
	// exactly the unwrapped chain and pays nothing.
	Profile bool
	// OpMemoryBudget bounds the bytes any one blocking operator instance
	// (group-by, join build, sort) may hold before it goes out of core:
	// group-by and join grace-hash-partition to disk, sort switches to
	// external merge. 0 (the default) never spills. Eager reference mode
	// never spills either — it stays the pure in-memory baseline.
	OpMemoryBudget int64
	// SpillDir is where spill files are created (the OS temp dir when empty).
	// All spill files are removed when the operator finishes — success,
	// error, or cancellation.
	SpillDir string
	// SpillPartitions is the grace-hash fan-out per spill wave (default 8).
	SpillPartitions int
}

func (e *Env) accountant() *frame.Accountant {
	if e.Accountant == nil {
		e.Accountant = frame.NewAccountant(0)
	}
	return e.Accountant
}

func (e *Env) pool() *frame.Pool {
	if e.Pool == nil {
		fs := e.FrameSize
		if fs <= 0 {
			fs = frame.DefaultFrameSize
		}
		e.Pool = frame.NewPool(fs, e.accountant())
	}
	return e.Pool
}

func (e *Env) morselOpts() morselOptions {
	return morselOptions{
		morselSize:       e.MorselSize,
		coldIndexMin:     e.ColdIndexMinBytes,
		coldIndexWorkers: e.ColdIndexWorkers,
	}
}

// buildScanQueues prepares one morsel queue per scan fragment (pruning
// zone-map-excluded files and morsels as a side effect) so every task of a
// fragment drains the same queue. It returns the queues and the merged
// pruning/cold-index counters.
func buildScanQueues(job *Job, env *Env, shared bool) (map[int]*morselQueue, queueStats, error) {
	var (
		queues map[int]*morselQueue
		qs     queueStats
	)
	for _, f := range job.Fragments {
		s, ok := f.Source.(ScanSource)
		if !ok {
			continue
		}
		q, sk, err := buildMorselQueue(env.Source, s, env.Indexes, f.Partitions, env.morselOpts(), shared)
		if err != nil {
			return nil, queueStats{}, err
		}
		if queues == nil {
			queues = make(map[int]*morselQueue)
		}
		queues[f.ID] = q
		qs.add(sk)
	}
	return queues, qs, nil
}

// TaskTime records the measured wall-clock work of one fragment-partition
// task. The staged executor produces clean single-threaded measurements that
// the virtual-time scheduler consumes.
type TaskTime struct {
	Fragment  int
	Partition int
	Elapsed   time.Duration
	// Morsels is the number of scan morsels this task processed (0 for
	// non-scan fragments). Under the shared queue it shows how work-stealing
	// balanced a skewed file set; under the static deal it shows the
	// deterministic per-partition split.
	Morsels int
	// Steals is how many of those morsels were taken off another partition's
	// static share (always 0 under the staged executor's round-robin deal).
	Steals int
}

// Result is the outcome of a job execution.
type Result struct {
	// Rows are the collector's tuples, one []item.Sequence per tuple.
	Rows [][]item.Sequence
	// Tasks are the per-fragment-partition work measurements.
	Tasks []TaskTime
	// Stats are the merged execution statistics.
	Stats runtime.Stats
	// PeakMemory is the accountant's high-water mark in bytes.
	PeakMemory int64
	// Profile is the per-operator profile tree and span list (nil unless
	// Env.Profile was set).
	Profile *Profile
}

// SortRows orders the result canonically (for deterministic comparison
// across executors and partition counts).
func (r *Result) SortRows() {
	sortRows(r.Rows)
}

func sortRows(rows [][]item.Sequence) {
	// Stable, like sortOp: rows that compare equal on every position keep
	// their relative order, so repeated canonicalizations agree bytewise.
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		n := min(len(a), len(b))
		for k := 0; k < n; k++ {
			if c := item.CompareSeq(a[k], b[k]); c != 0 {
				return c < 0
			}
		}
		return len(a) < len(b)
	})
}

// --- task plumbing shared by both executors --------------------------------

// frameDest receives the frames routed to one consumer partition.
type frameDest interface {
	send(fr *frame.Frame) error
}

// destWriter adapts a frameDest to the Writer interface. When it belongs to
// an exchange it counts the re-framed ("rebuilt") output flowing through it.
type destWriter struct {
	d  frameDest
	ew *exchangeWriter
}

func (w destWriter) Open() error { return nil }
func (w destWriter) Push(fr *frame.Frame) error {
	if w.ew != nil {
		w.ew.rebuilt++
		w.ew.tuplesOut += int64(fr.TupleCount())
		w.ew.bytesOut += int64(fr.Size())
	}
	return w.d.send(fr)
}
func (w destWriter) Close() error { return nil }

// exchangeWriter is the sink side of an exchange: it routes tuples to
// consumer partitions according to the exchange kind. Hash exchanges route
// per tuple, hashing the encoded key bytes directly (no field decode) unless
// EagerDecode asks for the decoded reference path. Merge and 1:1 exchanges
// route the entire input frame to a single destination, so they forward the
// frame itself — ownership passes to the receiver and no tuple is re-framed.
type exchangeWriter struct {
	ctx      *TaskCtx
	exch     *Exchange
	dests    []frameDest
	builders []*frameBuilder
	keys     *keyEncoder

	// Profile counters (a handful of adds per frame; see profExtras).
	forwarded int64 // whole frames handed to a destination untouched
	rebuilt   int64 // frames re-framed tuple by tuple through the builders
	tuplesOut int64
	bytesOut  int64
}

func newExchangeWriter(ctx *TaskCtx, exch *Exchange, dests []frameDest) *exchangeWriter {
	return &exchangeWriter{ctx: ctx, exch: exch, dests: dests}
}

func (w *exchangeWriter) Open() error {
	if w.exch.Kind == ExchangeHash {
		// Only hash exchanges re-frame tuples; merge and 1:1 forward whole
		// frames and need no builders.
		w.builders = make([]*frameBuilder, len(w.dests))
		for i, d := range w.dests {
			w.builders[i] = newFrameBuilder(w.ctx, destWriter{d: d, ew: w})
		}
		if !w.ctx.EagerDecode {
			w.keys = newKeyEncoder(w.exch.Keys)
		}
	}
	return nil
}

func (w *exchangeWriter) Push(fr *frame.Frame) error {
	if w.exch.Kind != ExchangeHash {
		// Whole-frame forwarding: account the shuffle stats for the frame's
		// tuples, then hand the frame itself to the one destination.
		if fr.TupleCount() == 0 {
			w.ctx.recycle(fr)
			return nil
		}
		p, err := w.route(nil)
		if err != nil {
			w.ctx.recycle(fr)
			return err
		}
		if st := w.ctx.RT.Stats; st != nil {
			st.TuplesShuffled += int64(fr.TupleCount())
			sz, err := fr.FieldsSize()
			if err != nil {
				w.ctx.recycle(fr)
				return err
			}
			st.BytesShuffled += sz
		}
		w.forwarded++
		w.tuplesOut += int64(fr.TupleCount())
		w.bytesOut += int64(fr.Size())
		return w.dests[p].send(fr)
	}
	defer w.ctx.recycle(fr)
	if w.ctx.EagerDecode {
		return forEachTuple(fr, func(fields []item.Sequence, raw [][]byte) error {
			p, err := w.route(fields)
			if err != nil {
				return err
			}
			return w.ship(p, raw)
		})
	}
	n := uint64(len(w.dests))
	return forEachTupleView(fr, false, func(lt *frame.LazyTuple) error {
		_, h, err := w.keys.resolve(w.ctx, lt)
		if err != nil {
			return err
		}
		return w.ship(int(h%n), lt.Raw())
	})
}

func (w *exchangeWriter) ship(p int, raw [][]byte) error {
	if st := w.ctx.RT.Stats; st != nil {
		st.TuplesShuffled++
		st.BytesShuffled += int64(tupleBytes(raw))
	}
	return w.builders[p].emit(raw)
}

func (w *exchangeWriter) route(fields []item.Sequence) (int, error) {
	n := len(w.dests)
	switch w.exch.Kind {
	case ExchangeMerge:
		return 0, nil
	case ExchangeOneToOne:
		if w.ctx.Partition >= n {
			return 0, fmt.Errorf("hyracks: 1:1 exchange with mismatched partition counts")
		}
		return w.ctx.Partition, nil
	case ExchangeHash:
		var h uint64 = 1469598103934665603
		for _, k := range w.exch.Keys {
			v, err := k.Eval(w.ctx.RT, runtime.SeqTuple(fields))
			if err != nil {
				return 0, err
			}
			h = h*1099511628211 ^ item.HashSeq(v)
		}
		return int(h % uint64(n)), nil
	default:
		return 0, fmt.Errorf("hyracks: unknown exchange kind %v", w.exch.Kind)
	}
}

func (w *exchangeWriter) Close() error {
	// Flush every builder even after a failure (first error wins): the
	// remaining frames must reach their destinations or be recycled there,
	// not sit forgotten in the builders.
	var err error
	for _, b := range w.builders {
		if ferr := b.flush(); err == nil {
			err = ferr
		}
	}
	return err
}

// profExtras implements opStatser: the exchange's forwarded-vs-rebuilt frame
// split and its outbound flow.
func (w *exchangeWriter) profExtras(x *opExtras) {
	x.framesForwarded = w.forwarded
	x.framesRebuilt = w.rebuilt
	x.framesOut = w.forwarded + w.rebuilt
	x.tuplesOut = w.tuplesOut
	x.bytesOut = w.bytesOut
}

// runSource drives a fragment's source, pushing its tuples through w
// (already the head of the operator chain).
func runSource(ctx *TaskCtx, f *Fragment, w Writer, in sourceInput) error {
	if err := w.Open(); err != nil {
		// Operators downstream of the failure point may have opened and
		// charged memory; Close releases it (builders are nil-safe).
		_ = w.Close()
		return err
	}
	if err := feedSource(ctx, f, w, in); err != nil {
		// Best-effort close after failure; report the original error.
		_ = w.Close()
		return err
	}
	return w.Close()
}

// sourceInput carries the upstream frames for exchange-fed fragments.
type sourceInput struct {
	// recv yields the frames for this partition of the given exchange and
	// blocks until they are available (pipelined) or returns the buffered
	// ones (staged). It returns frames via the callback to allow streaming.
	recv func(exchID int, each func(*frame.Frame) error) error
}

func feedSource(ctx *TaskCtx, f *Fragment, w Writer, in sourceInput) error {
	switch s := f.Source.(type) {
	case ETSSource:
		fr := ctx.newFrame()
		fr.AppendTuple(nil)
		return w.Push(fr)
	case ScanSource:
		return runScan(ctx, s, f.Partitions, w)
	case ExchangeSource:
		return in.recv(s.Exchange, w.Push)
	case JoinSource:
		j := newJoiner(ctx, s.Spec)
		defer j.release()
		if err := in.recv(s.Build, j.build); err != nil {
			return err
		}
		if err := j.finishBuild(); err != nil {
			return err
		}
		b := newFrameBuilder(ctx, w)
		if err := in.recv(s.Probe, func(fr *frame.Frame) error {
			return j.probe(fr, b)
		}); err != nil {
			b.discard()
			return err
		}
		if err := j.finishProbe(b); err != nil {
			b.discard()
			return err
		}
		if err := b.flush(); err != nil {
			return err
		}
		if ctx.prof != nil {
			// The joiner is part of the source stage (it feeds the chain, it
			// is not a Writer in it); attach its counters to the source span
			// before release drops the arena.
			j.profExtras(&ctx.prof.stages[0].x)
		}
		return nil
	default:
		return fmt.Errorf("hyracks: unknown source %T", f.Source)
	}
}

// runScan drains the fragment's morsel queue and emits one single-field
// tuple per projected item. Raw JSON morsels stream through a fixed chunk
// buffer (charged to the accountant), so scan memory is O(chunk + emitted
// item), independent of the file size. When no executor-built queue is
// present (a fragment run outside RunStaged/RunPipelined), an equivalent
// statically dealt queue is built on the fly.
func runScan(ctx *TaskCtx, s ScanSource, partitions int, w Writer) error {
	if ctx.RT == nil || ctx.RT.Source == nil {
		return fmt.Errorf("hyracks: scan without a data source")
	}
	q := ctx.morsels
	if q == nil {
		var (
			qs  queueStats
			err error
		)
		q, qs, err = buildMorselQueue(ctx.RT.Source, s, ctx.RT.Indexes, partitions, morselOptions{}, false)
		if err != nil {
			return err
		}
		if st := ctx.RT.Stats; st != nil {
			st.FilesSkipped += qs.filesSkipped
			st.MorselsSkipped += qs.morselsSkipped
			st.ColdIndexBuilds += qs.coldIndexBuilds
		}
	}
	sc := &scanState{ctx: ctx, b: newFrameBuilder(ctx, w), field: make([][]byte, 1), seq1: make(item.Sequence, 1)}
	for {
		m, stolen, ok := q.take(ctx.Partition)
		if !ok {
			break
		}
		ctx.MorselsScanned++
		if stolen {
			ctx.MorselsStolen++
		}
		if err := scanMorsel(ctx, sc, s, m); err != nil {
			sc.b.discard()
			return m.wrap(err)
		}
	}
	return sc.b.flush()
}

// scanState is the per-task scratch of a scan: the lexer (with its chunk and
// token buffers), the encode buffer, and the one-field tuple slice are all
// reused across every morsel and every emitted item, so the steady-state
// emit path allocates nothing beyond what the frame builder copies in.
type scanState struct {
	ctx   *TaskCtx
	b     *frameBuilder
	lx    *jsonparse.Lexer
	enc   []byte
	field [][]byte      // len 1, points at enc
	seq1  item.Sequence // len 1, the item being emitted
}

// emit encodes one projected item into the reusable buffer and appends it to
// the current frame (which copies the bytes, so the buffer is free again).
func (sc *scanState) emit(it item.Item) error {
	if st := sc.ctx.RT.Stats; st != nil {
		st.TuplesProduced++
	}
	release := sc.ctx.account(item.SizeBytes(it))
	sc.seq1[0] = it
	sc.enc = item.EncodeSeq(sc.enc[:0], sc.seq1)
	sc.field[0] = sc.enc
	err := sc.b.emit(sc.field)
	sc.seq1[0] = nil
	release()
	return err
}

// scanMorsel streams one morsel's records into the frame builder. Errors are
// wrapped with the morsel's location by the caller.
func scanMorsel(ctx *TaskCtx, sc *scanState, s ScanSource, m morsel) error {
	if s.Format == FormatADM {
		return scanADM(ctx, sc, s, m)
	}
	src := ctx.RT.Source
	st := ctx.RT.Stats
	var (
		rc   io.ReadCloser
		base int64
		err  error
	)
	if m.start > 0 {
		ro, ok := src.(runtime.RangeOpener)
		if !ok {
			return fmt.Errorf("source cannot open byte ranges")
		}
		if m.aligned {
			// The split index guarantees start is a record start: open there
			// directly, nothing to re-align.
			base = m.start
		} else {
			// Open one byte early: if the byte at start-1 is the separating
			// newline, the first record of this morsel starts exactly at start.
			base = m.start - 1
		}
		rc, err = ro.OpenRange(m.file, base)
	} else {
		rc, err = src.Open(m.file)
	}
	if err != nil {
		return err
	}
	if st != nil && m.countsFile {
		st.FilesRead++
	}
	chunk := ctx.RT.ScanChunkSize()
	cr := &runtime.CountingReader{R: rc}
	if sc.lx == nil {
		sc.lx = jsonparse.NewStreamLexerAt(cr, chunk, base)
	} else {
		sc.lx.ResetStream(cr, base)
	}
	release := ctx.account(int64(chunk))
	err = scanMorselRecords(sc, s, m)
	release()
	if st != nil {
		st.BytesRead += cr.N
	}
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	return err
}

func scanMorselRecords(sc *scanState, s ScanSource, m morsel) error {
	if !m.first && !m.aligned {
		// Align to the first record boundary at or after m.start: skip past
		// the next newline. No newline left means no record starts here.
		// (Aligned morsels were opened exactly at a known record start.)
		ok, err := sc.lx.SkipPastNewline()
		if err != nil || !ok {
			return err
		}
	}
	limit := m.end
	if m.wholeFile() {
		limit = -1
	}
	_, err := jsonparse.ScanValues(sc.lx, s.Project, limit, sc.emit)
	return err
}

// scanADM streams one binary pre-converted document through a chunked
// decoder: the raw encoding is never materialized whole, only the decoded
// item tree is (whole-document materialization is inherent to the format —
// the AsterixDB behaviour the paper attributes the performance gap to — but
// the former whole-file read buffer is gone). ADM files are never split, so
// the morsel always covers the whole file.
func scanADM(ctx *TaskCtx, sc *scanState, s ScanSource, m morsel) error {
	rc, err := ctx.RT.Source.Open(m.file)
	if err != nil {
		return err
	}
	defer rc.Close()
	if st := ctx.RT.Stats; st != nil {
		st.FilesRead++
	}
	chunk := ctx.RT.ScanChunkSize()
	// Small pre-converted documents are common (record-granular ADM); cap the
	// decode buffer at the file size plus the trailing-bytes probe so a tiny
	// file does not pay (or account) a full chunk.
	if szr, ok := ctx.RT.Source.(runtime.Sizer); ok {
		if sz, serr := szr.Size(m.file); serr == nil && sz+1 < int64(chunk) {
			chunk = int(sz) + 1
		}
	}
	cr := &runtime.CountingReader{R: rc}
	release := ctx.account(int64(chunk))
	dec, doc, err := item.DecodeReader(cr, chunk)
	if err == nil {
		var trailing bool
		if trailing, err = dec.TrailingByte(); err == nil && trailing {
			err = fmt.Errorf("trailing bytes after ADM document (offset %d)", dec.Consumed())
		}
	}
	release()
	if st := ctx.RT.Stats; st != nil {
		st.BytesRead += cr.N
	}
	if err != nil {
		return err
	}
	releaseDoc := ctx.account(item.SizeBytes(doc))
	defer releaseDoc()
	for _, it := range jsonparse.ApplyPath(doc, s.Project) {
		if err := sc.emit(it); err != nil {
			return err
		}
	}
	return nil
}
