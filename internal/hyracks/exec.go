package hyracks

import (
	"fmt"
	"io"
	"sort"
	"time"

	"vxq/internal/frame"
	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// Env configures a job execution.
type Env struct {
	Source     runtime.Source
	FrameSize  int
	Accountant *frame.Accountant
	// ChunkSize is the refill-buffer size of streaming scans
	// (jsonparse.DefaultChunkSize when <= 0).
	ChunkSize int
	// Indexes provides zone-map lookups for DATASCAN file pruning (may be
	// nil).
	Indexes runtime.IndexLookup
	// ChannelDepth is the per-channel frame buffer of the pipelined
	// executor (default 4).
	ChannelDepth int
}

func (e *Env) accountant() *frame.Accountant {
	if e.Accountant == nil {
		e.Accountant = frame.NewAccountant(0)
	}
	return e.Accountant
}

// TaskTime records the measured wall-clock work of one fragment-partition
// task. The staged executor produces clean single-threaded measurements that
// the virtual-time scheduler consumes.
type TaskTime struct {
	Fragment  int
	Partition int
	Elapsed   time.Duration
}

// Result is the outcome of a job execution.
type Result struct {
	// Rows are the collector's tuples, one []item.Sequence per tuple.
	Rows [][]item.Sequence
	// Tasks are the per-fragment-partition work measurements.
	Tasks []TaskTime
	// Stats are the merged execution statistics.
	Stats runtime.Stats
	// PeakMemory is the accountant's high-water mark in bytes.
	PeakMemory int64
}

// SortRows orders the result canonically (for deterministic comparison
// across executors and partition counts).
func (r *Result) SortRows() {
	sortRows(r.Rows)
}

func sortRows(rows [][]item.Sequence) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		n := min(len(a), len(b))
		for k := 0; k < n; k++ {
			if c := item.CompareSeq(a[k], b[k]); c != 0 {
				return c < 0
			}
		}
		return len(a) < len(b)
	})
}

// --- task plumbing shared by both executors --------------------------------

// frameDest receives the frames routed to one consumer partition.
type frameDest interface {
	send(fr *frame.Frame) error
}

type destWriter struct{ d frameDest }

func (w destWriter) Open() error                { return nil }
func (w destWriter) Push(fr *frame.Frame) error { return w.d.send(fr) }
func (w destWriter) Close() error               { return nil }

// exchangeWriter is the sink side of an exchange: it routes each tuple to a
// consumer partition according to the exchange kind.
type exchangeWriter struct {
	ctx      *TaskCtx
	exch     *Exchange
	dests    []frameDest
	builders []*frameBuilder
}

func newExchangeWriter(ctx *TaskCtx, exch *Exchange, dests []frameDest) *exchangeWriter {
	return &exchangeWriter{ctx: ctx, exch: exch, dests: dests}
}

func (w *exchangeWriter) Open() error {
	w.builders = make([]*frameBuilder, len(w.dests))
	for i, d := range w.dests {
		w.builders[i] = newFrameBuilder(w.ctx, destWriter{d})
	}
	return nil
}

func (w *exchangeWriter) Push(fr *frame.Frame) error {
	return forEachTuple(fr, func(fields []item.Sequence, raw [][]byte) error {
		p, err := w.route(fields)
		if err != nil {
			return err
		}
		if st := w.ctx.RT.Stats; st != nil {
			st.TuplesShuffled++
			st.BytesShuffled += int64(tupleBytes(raw))
		}
		return w.builders[p].emit(raw)
	})
}

func (w *exchangeWriter) route(fields []item.Sequence) (int, error) {
	n := len(w.dests)
	switch w.exch.Kind {
	case ExchangeMerge:
		return 0, nil
	case ExchangeOneToOne:
		if w.ctx.Partition >= n {
			return 0, fmt.Errorf("hyracks: 1:1 exchange with mismatched partition counts")
		}
		return w.ctx.Partition, nil
	case ExchangeHash:
		var h uint64 = 1469598103934665603
		for _, k := range w.exch.Keys {
			v, err := k.Eval(w.ctx.RT, fields)
			if err != nil {
				return 0, err
			}
			h = h*1099511628211 ^ item.HashSeq(v)
		}
		return int(h % uint64(n)), nil
	default:
		return 0, fmt.Errorf("hyracks: unknown exchange kind %v", w.exch.Kind)
	}
}

func (w *exchangeWriter) Close() error {
	for _, b := range w.builders {
		if err := b.flush(); err != nil {
			return err
		}
	}
	return nil
}

// runSource drives a fragment's source, pushing its tuples through w
// (already the head of the operator chain).
func runSource(ctx *TaskCtx, f *Fragment, w Writer, in sourceInput) error {
	if err := w.Open(); err != nil {
		return err
	}
	if err := feedSource(ctx, f, w, in); err != nil {
		// Best-effort close after failure; report the original error.
		_ = w.Close()
		return err
	}
	return w.Close()
}

// sourceInput carries the upstream frames for exchange-fed fragments.
type sourceInput struct {
	// recv yields the frames for this partition of the given exchange and
	// blocks until they are available (pipelined) or returns the buffered
	// ones (staged). It returns frames via the callback to allow streaming.
	recv func(exchID int, each func(*frame.Frame) error) error
}

func feedSource(ctx *TaskCtx, f *Fragment, w Writer, in sourceInput) error {
	switch s := f.Source.(type) {
	case ETSSource:
		fr := frame.New(ctx.frameSize())
		fr.AppendTuple(nil)
		return w.Push(fr)
	case ScanSource:
		return runScan(ctx, s, f.Partitions, w)
	case ExchangeSource:
		return in.recv(s.Exchange, w.Push)
	case JoinSource:
		j := newJoiner(ctx, s.Spec)
		defer j.release()
		if err := in.recv(s.Build, j.build); err != nil {
			return err
		}
		b := newFrameBuilder(ctx, w)
		if err := in.recv(s.Probe, func(fr *frame.Frame) error {
			return j.probe(fr, b)
		}); err != nil {
			return err
		}
		return b.flush()
	default:
		return fmt.Errorf("hyracks: unknown source %T", f.Source)
	}
}

// runScan reads this partition's share of the collection's files and emits
// one single-field tuple per projected item. Raw JSON files stream through
// a fixed chunk buffer (charged to the accountant), so scan memory is
// O(chunk + emitted item), independent of the file size.
func runScan(ctx *TaskCtx, s ScanSource, partitions int, w Writer) error {
	if ctx.RT == nil || ctx.RT.Source == nil {
		return fmt.Errorf("hyracks: scan without a data source")
	}
	files, err := ctx.RT.Source.Files(s.Collection)
	if err != nil {
		return err
	}
	b := newFrameBuilder(ctx, w)
	for i := ctx.Partition; i < len(files); i += partitions {
		if s.Filter != nil && ctx.RT.Indexes != nil {
			if r, ok := ctx.RT.Indexes.FileRange(s.Collection, s.Filter.Path, files[i]); ok {
				if !s.Filter.Admits(r) {
					if st := ctx.RT.Stats; st != nil {
						st.FilesSkipped++
					}
					continue
				}
			}
		}
		if err := scanFile(ctx, s, files[i], b); err != nil {
			return fmt.Errorf("%s: %w", files[i], err)
		}
	}
	return b.flush()
}

// scanFile streams one file's projected items into the frame builder. Every
// error it returns is wrapped with the file path by the caller.
func scanFile(ctx *TaskCtx, s ScanSource, file string, b *frameBuilder) error {
	emit := func(it item.Item) error {
		if st := ctx.RT.Stats; st != nil {
			st.TuplesProduced++
		}
		release := ctx.account(item.SizeBytes(it))
		err := b.emit([][]byte{item.EncodeSeq(nil, item.Single(it))})
		release()
		return err
	}
	switch s.Format {
	case FormatADM:
		// Binary pre-converted document: materialize fully, then apply the
		// path (no streaming benefit — the AsterixDB behaviour the paper
		// attributes the performance gap to). This is the one deliberate
		// whole-file read left on a scan path.
		rc, err := ctx.RT.Source.Open(file)
		if err != nil {
			return err
		}
		raw, err := io.ReadAll(rc)
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if st := ctx.RT.Stats; st != nil {
			st.BytesRead += int64(len(raw))
			st.FilesRead++
		}
		doc, used, err := item.Decode(raw)
		if err != nil {
			return err
		}
		if used != len(raw) {
			return fmt.Errorf("%d trailing bytes in ADM document", len(raw)-used)
		}
		release := ctx.account(item.SizeBytes(doc))
		defer release()
		for _, it := range jsonparse.ApplyPath(doc, s.Project) {
			if err := emit(it); err != nil {
				return err
			}
		}
		return nil
	default:
		rc, err := ctx.RT.Source.Open(file)
		if err != nil {
			return err
		}
		if st := ctx.RT.Stats; st != nil {
			st.FilesRead++
		}
		chunk := ctx.RT.ScanChunkSize()
		cr := &runtime.CountingReader{R: rc}
		release := ctx.account(int64(chunk))
		err = jsonparse.ProjectReader(cr, chunk, s.Project, emit)
		release()
		if st := ctx.RT.Stats; st != nil {
			st.BytesRead += cr.N
		}
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
		return err
	}
}
