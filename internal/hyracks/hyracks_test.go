package hyracks

import (
	"fmt"
	"strings"
	"testing"

	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// testSource builds an in-memory collection of sensor-like documents.
func testSource() *runtime.MemSource {
	mk := func(entries ...string) []byte {
		return []byte(`{"root":[` + strings.Join(entries, ",") + `]}`)
	}
	rec := func(date, typ, station string, val int) string {
		return fmt.Sprintf(`{"metadata":{"count":1},"results":[{"date":%q,"dataType":%q,"station":%q,"value":%d}]}`,
			date, typ, station, val)
	}
	return &runtime.MemSource{Collections: map[string]map[string][]byte{
		"/sensors": {
			"f1.json": mk(
				rec("2013-12-25T00:00", "TMIN", "S1", 4),
				rec("2013-12-25T00:00", "TMAX", "S1", 14),
			),
			"f2.json": mk(
				rec("2013-12-25T00:00", "TMIN", "S2", -2),
				rec("2013-12-26T00:00", "TMIN", "S3", 1),
			),
			"f3.json": mk(
				rec("2013-12-26T00:00", "TMIN", "S1", 0),
				rec("2013-12-26T00:00", "TMAX", "S1", 9),
			),
		},
	}}
}

func measurementsPath() jsonparse.Path {
	return jsonparse.Path{
		jsonparse.KeyStep("root"), jsonparse.MembersStep(),
		jsonparse.KeyStep("results"), jsonparse.MembersStep(),
	}
}

func col(i int) runtime.Evaluator { return runtime.ColumnEval{Col: i} }

func constStr(s string) runtime.Evaluator {
	return runtime.ConstEval{Seq: item.Single(item.String(s))}
}

func call(fn string, args ...runtime.Evaluator) runtime.Evaluator {
	return runtime.CallEval{Fn: runtime.MustFunction(fn), Args: args}
}

// runBoth executes the job with both executors and checks they agree; it
// returns the (sorted) staged result.
func runBoth(t *testing.T, job *Job, env func() *Env) *Result {
	t.Helper()
	staged, err := RunStaged(job, env())
	if err != nil {
		t.Fatalf("RunStaged: %v", err)
	}
	piped, err := RunPipelined(job, env())
	if err != nil {
		t.Fatalf("RunPipelined: %v", err)
	}
	staged.SortRows()
	piped.SortRows()
	if len(staged.Rows) != len(piped.Rows) {
		t.Fatalf("staged %d rows, pipelined %d rows", len(staged.Rows), len(piped.Rows))
	}
	for i := range staged.Rows {
		if len(staged.Rows[i]) != len(piped.Rows[i]) {
			t.Fatalf("row %d arity mismatch", i)
		}
		for j := range staged.Rows[i] {
			if !item.EqualSeq(staged.Rows[i][j], piped.Rows[i][j]) {
				t.Fatalf("row %d field %d: staged %s, pipelined %s", i, j,
					item.JSONSeq(staged.Rows[i][j]), item.JSONSeq(piped.Rows[i][j]))
			}
		}
	}
	return staged
}

func envFactory(src runtime.Source) func() *Env {
	return func() *Env { return &Env{Source: src} }
}

// scanJob builds a single-fragment scan -> ops -> collector job.
func scanJob(partitions int, path jsonparse.Path, ops ...OpSpec) *Job {
	return &Job{Fragments: []*Fragment{{
		ID:           0,
		Source:       ScanSource{Collection: "/sensors", Project: path},
		Ops:          ops,
		Partitions:   partitions,
		SinkExchange: -1,
	}}}
}

func TestScanProjectsMeasurements(t *testing.T) {
	res := runBoth(t, scanJob(1, measurementsPath()), envFactory(testSource()))
	if len(res.Rows) != 6 {
		t.Fatalf("got %d measurements, want 6", len(res.Rows))
	}
	if res.Stats.FilesRead != 3 || res.Stats.BytesRead == 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestScanPartitionsSplitFiles(t *testing.T) {
	for _, p := range []int{1, 2, 3} {
		res := runBoth(t, scanJob(p, measurementsPath()), envFactory(testSource()))
		if len(res.Rows) != 6 {
			t.Errorf("partitions=%d: got %d rows, want 6", p, len(res.Rows))
		}
	}
}

func TestScanWholeDocuments(t *testing.T) {
	res := runBoth(t, scanJob(1, nil), envFactory(testSource()))
	if len(res.Rows) != 3 {
		t.Fatalf("got %d documents, want 3", len(res.Rows))
	}
	doc, err := res.Rows[0][0].One()
	if err != nil {
		t.Fatal(err)
	}
	if doc.Kind() != item.KindObject {
		t.Errorf("document kind = %v", doc.Kind())
	}
}

func TestSelectFilter(t *testing.T) {
	// Keep only TMIN measurements.
	cond := call("eq", call("value", col(0), constStr("dataType")), constStr("TMIN"))
	res := runBoth(t, scanJob(2, measurementsPath(), &SelectSpec{Cond: cond}), envFactory(testSource()))
	if len(res.Rows) != 4 {
		t.Fatalf("got %d TMIN rows, want 4", len(res.Rows))
	}
}

func TestAssignAddsField(t *testing.T) {
	spec := &AssignSpec{Evals: []runtime.Evaluator{call("value", col(0), constStr("station"))}}
	res := runBoth(t, scanJob(1, measurementsPath(), spec), envFactory(testSource()))
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row) != 2 {
			t.Fatalf("arity = %d, want 2", len(row))
		}
		st, err := row[1].One()
		if err != nil {
			t.Fatal(err)
		}
		if st.Kind() != item.KindString {
			t.Errorf("station kind = %v", st.Kind())
		}
	}
}

func TestUnnestSplitsSequence(t *testing.T) {
	// Scan whole docs, then unnest root array, then unnest results.
	ops := []OpSpec{
		&UnnestSpec{Expr: call("keys-or-members", call("value", col(0), constStr("root")))},
		&UnnestSpec{Expr: call("keys-or-members", call("value", col(1), constStr("results")))},
		&ProjectSpec{Cols: []int{2}},
	}
	res := runBoth(t, scanJob(1, nil, ops...), envFactory(testSource()))
	if len(res.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(res.Rows))
	}
}

func TestProjectOutOfRange(t *testing.T) {
	_, err := RunStaged(scanJob(1, measurementsPath(), &ProjectSpec{Cols: []int{7}}), &Env{Source: testSource()})
	if err == nil {
		t.Fatal("expected project error")
	}
}

func TestAggregateCount(t *testing.T) {
	ops := []OpSpec{
		&AggregateSpec{Aggs: []AggDef{{Fn: runtime.MustAgg("agg-count"), Arg: col(0)}}},
	}
	res := runBoth(t, scanJob(1, measurementsPath(), ops...), envFactory(testSource()))
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !item.EqualSeq(res.Rows[0][0], item.Single(item.Number(6))) {
		t.Errorf("count = %s", item.JSONSeq(res.Rows[0][0]))
	}
}

func TestGroupByDateCounts(t *testing.T) {
	gb := &GroupBySpec{
		Keys: []runtime.Evaluator{call("value", col(0), constStr("date"))},
		Aggs: []AggDef{{Fn: runtime.MustAgg("agg-count"), Arg: call("value", col(0), constStr("station"))}},
	}
	res := runBoth(t, scanJob(1, measurementsPath(), gb), envFactory(testSource()))
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d, want 2", len(res.Rows))
	}
	counts := map[string]float64{}
	for _, row := range res.Rows {
		d, _ := row[0].One()
		c, _ := row[1].One()
		counts[string(d.(item.String))] = float64(c.(item.Number))
	}
	if counts["2013-12-25T00:00"] != 3 || counts["2013-12-26T00:00"] != 3 {
		t.Errorf("counts = %v", counts)
	}
}

// twoStepGroupByJob builds: scan -> local groupby -> hash exchange -> global
// groupby -> collector, the two-step aggregation scheme of §4.3.
func twoStepGroupByJob(scanParts, aggParts int) *Job {
	local := &GroupBySpec{
		Keys: []runtime.Evaluator{call("value", col(0), constStr("date"))},
		Aggs: []AggDef{{Fn: runtime.MustAgg("agg-count"), Arg: call("value", col(0), constStr("station"))}},
		Desc: "local",
	}
	global := &GroupBySpec{
		Keys: []runtime.Evaluator{col(0)},
		Aggs: []AggDef{{Fn: runtime.MustAgg("agg-sum"), Arg: col(1)}},
		Desc: "global",
	}
	return &Job{
		Fragments: []*Fragment{
			{ID: 0, Source: ScanSource{Collection: "/sensors", Project: measurementsPath()},
				Ops: []OpSpec{local}, Partitions: scanParts, SinkExchange: 0},
			{ID: 1, Source: ExchangeSource{Exchange: 0},
				Ops: []OpSpec{global}, Partitions: aggParts, SinkExchange: -1},
		},
		Exchanges: []*Exchange{
			{ID: 0, Kind: ExchangeHash, Keys: []runtime.Evaluator{col(0)}, ConsumerPartitions: aggParts},
		},
	}
}

func TestTwoStepGroupByAcrossPartitions(t *testing.T) {
	for _, cfg := range [][2]int{{1, 1}, {2, 2}, {3, 2}, {2, 3}} {
		res := runBoth(t, twoStepGroupByJob(cfg[0], cfg[1]), envFactory(testSource()))
		if len(res.Rows) != 2 {
			t.Fatalf("cfg %v: groups = %d, want 2", cfg, len(res.Rows))
		}
		for _, row := range res.Rows {
			c, _ := row[1].One()
			if float64(c.(item.Number)) != 3 {
				t.Errorf("cfg %v: group %s count = %s", cfg,
					item.JSONSeq(row[0]), item.JSONSeq(row[1]))
			}
		}
		if res.Stats.TuplesShuffled == 0 {
			t.Errorf("cfg %v: expected shuffled tuples", cfg)
		}
	}
}

// joinJob builds the Q2 shape: two scans feed hash exchanges on
// (station,date); a join fragment matches TMIN with TMAX rows and computes
// value differences.
func joinJob(parts int) *Job {
	filter := func(typ string) OpSpec {
		return &SelectSpec{Cond: call("eq", call("value", col(0), constStr("dataType")), constStr(typ))}
	}
	keys := func() []runtime.Evaluator {
		return []runtime.Evaluator{
			call("value", col(0), constStr("station")),
			call("value", col(0), constStr("date")),
		}
	}
	diff := &AssignSpec{Evals: []runtime.Evaluator{call("sub",
		call("value", col(1), constStr("value")),
		call("value", col(0), constStr("value")),
	)}}
	avg := &AggregateSpec{Aggs: []AggDef{{Fn: runtime.MustAgg("agg-avg"), Arg: col(2)}}}
	return &Job{
		Fragments: []*Fragment{
			{ID: 0, Source: ScanSource{Collection: "/sensors", Project: measurementsPath()},
				Ops: []OpSpec{filter("TMIN")}, Partitions: parts, SinkExchange: 0},
			{ID: 1, Source: ScanSource{Collection: "/sensors", Project: measurementsPath()},
				Ops: []OpSpec{filter("TMAX")}, Partitions: parts, SinkExchange: 1},
			{ID: 2, Source: JoinSource{Build: 0, Probe: 1,
				Spec: &JoinSpec{BuildKeys: keys(), ProbeKeys: keys()}},
				Ops: []OpSpec{diff}, Partitions: parts, SinkExchange: 2},
			{ID: 3, Source: ExchangeSource{Exchange: 2},
				Ops: []OpSpec{avg}, Partitions: 1, SinkExchange: -1},
		},
		Exchanges: []*Exchange{
			{ID: 0, Kind: ExchangeHash, Keys: keys(), ConsumerPartitions: parts},
			{ID: 1, Kind: ExchangeHash, Keys: keys(), ConsumerPartitions: parts},
			{ID: 2, Kind: ExchangeMerge, ConsumerPartitions: 1},
		},
	}
}

func TestHashJoinTemperatureDiff(t *testing.T) {
	// Matches: S1@12-25 (14-4=10), S1@12-26 (9-0=9). Average = 9.5.
	for _, parts := range []int{1, 2, 3} {
		res := runBoth(t, joinJob(parts), envFactory(testSource()))
		if len(res.Rows) != 1 {
			t.Fatalf("parts=%d: rows = %d", parts, len(res.Rows))
		}
		if !item.EqualSeq(res.Rows[0][0], item.Single(item.Number(9.5))) {
			t.Errorf("parts=%d: avg = %s, want 9.5", parts, item.JSONSeq(res.Rows[0][0]))
		}
	}
}

func TestSubplanCountPerTuple(t *testing.T) {
	// Scan whole docs; for each doc, a subplan counts the members of its
	// root array: unnest root members, aggregate count.
	nested := []OpSpec{
		&UnnestSpec{Expr: call("keys-or-members", call("value", col(0), constStr("root")))},
		&AggregateSpec{Aggs: []AggDef{{Fn: runtime.MustAgg("agg-count"), Arg: col(1)}}},
	}
	sp := &SubplanSpec{Nested: nested}
	res := runBoth(t, scanJob(1, nil, sp, &ProjectSpec{Cols: []int{1}}), envFactory(testSource()))
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		c, _ := row[0].One()
		if float64(c.(item.Number)) != 2 {
			t.Errorf("per-doc count = %s, want 2", item.JSONSeq(row[0]))
		}
	}
}

func TestEmptyTupleSourceAssign(t *testing.T) {
	// The unoptimized leaf: ETS -> ASSIGN collection(...) -> UNNEST iterate.
	job := &Job{Fragments: []*Fragment{{
		ID:     0,
		Source: ETSSource{},
		Ops: []OpSpec{
			&AssignSpec{Evals: []runtime.Evaluator{call("collection", constStr("/sensors"))}},
			&UnnestSpec{Expr: call("iterate", col(0))},
			&ProjectSpec{Cols: []int{1}},
		},
		Partitions:   1,
		SinkExchange: -1,
	}}}
	res := runBoth(t, job, envFactory(testSource()))
	if len(res.Rows) != 3 {
		t.Fatalf("docs = %d, want 3", len(res.Rows))
	}
}

func TestOversizedTupleFlowsThrough(t *testing.T) {
	// A tiny frame size forces every document tuple to be oversized; the
	// engine must still produce correct results.
	env := func() *Env { return &Env{Source: testSource(), FrameSize: 64} }
	res := runBoth(t, scanJob(1, nil), env)
	if len(res.Rows) != 3 {
		t.Fatalf("docs = %d, want 3", len(res.Rows))
	}
}

func TestMemoryAccounting(t *testing.T) {
	envSmallTuples := &Env{Source: testSource()}
	if _, err := RunStaged(scanJob(1, measurementsPath()), envSmallTuples); err != nil {
		t.Fatal(err)
	}
	envWholeDocs := &Env{Source: testSource()}
	if _, err := RunStaged(scanJob(1, nil), envWholeDocs); err != nil {
		t.Fatal(err)
	}
	small := envSmallTuples.Accountant.Peak()
	whole := envWholeDocs.Accountant.Peak()
	if small <= 0 || whole <= 0 {
		t.Fatalf("peaks: small=%d whole=%d", small, whole)
	}
	if whole <= small {
		t.Errorf("whole-document tuples should peak higher: small=%d whole=%d", small, whole)
	}
}

func TestScanErrorPropagation(t *testing.T) {
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{
		"/sensors": {"bad.json": []byte(`{"root": [ {"x": `)},
	}}
	if _, err := RunStaged(scanJob(1, measurementsPath()), &Env{Source: src}); err == nil {
		t.Fatal("staged: expected parse error")
	}
	if _, err := RunPipelined(scanJob(1, measurementsPath()), &Env{Source: src}); err == nil {
		t.Fatal("pipelined: expected parse error")
	}
}

func TestErrorInDownstreamFragmentPipelined(t *testing.T) {
	// The consumer fragment fails (bad column); the producer must unblock
	// and the job must return the error rather than deadlock.
	job := twoStepGroupByJob(2, 2)
	job.Fragments[1].Ops = []OpSpec{&ProjectSpec{Cols: []int{42}}}
	if _, err := RunPipelined(job, &Env{Source: testSource()}); err == nil {
		t.Fatal("expected error")
	}
}

func TestUnknownCollection(t *testing.T) {
	job := &Job{Fragments: []*Fragment{{
		ID: 0, Source: ScanSource{Collection: "/nope"}, Partitions: 1, SinkExchange: -1,
	}}}
	if _, err := RunStaged(job, &Env{Source: testSource()}); err == nil {
		t.Fatal("expected unknown-collection error")
	}
}

func TestValidateRejectsBadJobs(t *testing.T) {
	cases := map[string]*Job{
		"no collector": {Fragments: []*Fragment{{ID: 0, Source: ETSSource{}, Partitions: 1, SinkExchange: 0}},
			Exchanges: []*Exchange{{ID: 0, Kind: ExchangeMerge, ConsumerPartitions: 1}}},
		"two collectors": {Fragments: []*Fragment{
			{ID: 0, Source: ETSSource{}, Partitions: 1, SinkExchange: -1},
			{ID: 1, Source: ETSSource{}, Partitions: 1, SinkExchange: -1},
		}},
		"zero partitions": {Fragments: []*Fragment{{ID: 0, Source: ETSSource{}, Partitions: 0, SinkExchange: -1}}},
		"consume before produce": {Fragments: []*Fragment{
			{ID: 0, Source: ExchangeSource{Exchange: 0}, Partitions: 1, SinkExchange: -1},
		}, Exchanges: []*Exchange{{ID: 0, Kind: ExchangeMerge, ConsumerPartitions: 1}}},
		"unknown sink": {Fragments: []*Fragment{{ID: 0, Source: ETSSource{}, Partitions: 1, SinkExchange: 9}}},
		"partition mismatch": {Fragments: []*Fragment{
			{ID: 0, Source: ETSSource{}, Partitions: 1, SinkExchange: 0},
			{ID: 1, Source: ExchangeSource{Exchange: 0}, Partitions: 3, SinkExchange: -1},
		}, Exchanges: []*Exchange{{ID: 0, Kind: ExchangeMerge, ConsumerPartitions: 1}}},
		"duplicate exchange": {Fragments: []*Fragment{
			{ID: 0, Source: ETSSource{}, Partitions: 1, SinkExchange: 0},
			{ID: 1, Source: ExchangeSource{Exchange: 0}, Partitions: 1, SinkExchange: -1},
		}, Exchanges: []*Exchange{
			{ID: 0, Kind: ExchangeMerge, ConsumerPartitions: 1},
			{ID: 0, Kind: ExchangeMerge, ConsumerPartitions: 1},
		}},
	}
	for name, job := range cases {
		if err := job.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", name)
		}
	}
}

func TestJobString(t *testing.T) {
	s := twoStepGroupByJob(2, 2).String()
	for _, want := range []string{"fragment 0", "GROUP-BY local", "DATASCAN", "RESULT", "HASH"} {
		if !strings.Contains(s, want) {
			t.Errorf("job string missing %q:\n%s", want, s)
		}
	}
}

func TestTaskTimesRecorded(t *testing.T) {
	res, err := RunStaged(twoStepGroupByJob(2, 2), &Env{Source: testSource()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 4 {
		t.Errorf("tasks = %d, want 4 (2+2 partitions)", len(res.Tasks))
	}
}

func TestSortOperator(t *testing.T) {
	// Sort measurements by value descending, then station ascending.
	ops := []OpSpec{
		&AssignSpec{Evals: []runtime.Evaluator{call("value", col(0), constStr("value"))}},
		&AssignSpec{Evals: []runtime.Evaluator{call("value", col(0), constStr("station"))}},
		&SortSpec{Keys: []SortDef{
			{Key: col(1), Desc: true},
			{Key: col(2)},
		}},
		&ProjectSpec{Cols: []int{1, 2}},
	}
	res, err := RunStaged(scanJob(1, measurementsPath(), ops...), &Env{Source: testSource()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	prevVal := 1e18
	for _, row := range res.Rows {
		v, _ := row[0].One()
		f := float64(v.(item.Number))
		if f > prevVal {
			t.Fatalf("not descending: %v after %v", f, prevVal)
		}
		prevVal = f
	}
	if (&SortSpec{Desc: "x"}).Name() == "" {
		t.Error("sort name")
	}
}

func TestScanFilterAdmits(t *testing.T) {
	rng := func(lo, hi float64) runtime.FileRange {
		return runtime.FileRange{Min: item.Number(lo), Max: item.Number(hi), Count: 1}
	}
	f := &ScanFilter{Lo: item.Number(10), Hi: item.Number(20)}
	cases := []struct {
		r    runtime.FileRange
		want bool
	}{
		{rng(0, 5), false},   // entirely below
		{rng(25, 30), false}, // entirely above
		{rng(5, 15), true},   // overlaps low
		{rng(15, 25), true},  // overlaps high
		{rng(12, 13), true},  // inside
		{rng(0, 100), true},  // covers
		{rng(0, 10), true},   // touches inclusive low
		{rng(20, 30), true},  // touches inclusive high
		{runtime.FileRange{}, false},
	}
	for i, c := range cases {
		if got := f.Admits(c.r); got != c.want {
			t.Errorf("case %d: Admits = %v, want %v", i, got, c.want)
		}
	}
	strict := &ScanFilter{Lo: item.Number(10), LoStrict: true, Hi: item.Number(20), HiStrict: true}
	if strict.Admits(rng(0, 10)) {
		t.Error("strict low bound must exclude touching range")
	}
	if strict.Admits(rng(20, 30)) {
		t.Error("strict high bound must exclude touching range")
	}
	if !strings.Contains(strict.String(), "(") || !strings.Contains(strict.String(), ")") {
		t.Errorf("strict filter rendering = %s", strict.String())
	}
	open := &ScanFilter{Lo: item.Number(1)}
	if !open.Admits(rng(0, 100)) {
		t.Error("half-open filter")
	}
}

func TestSourceAndOpNames(t *testing.T) {
	names := []string{
		ETSSource{}.sourceName(),
		ScanSource{Collection: "/c"}.sourceName(),
		ScanSource{Collection: "/c", Format: FormatADM, Filter: &ScanFilter{Lo: item.Number(1)}}.sourceName(),
		ExchangeSource{Exchange: 3}.sourceName(),
		JoinSource{Build: 0, Probe: 1, Spec: &JoinSpec{}}.sourceName(),
		(&AssignSpec{}).Name(),
		(&SelectSpec{}).Name(),
		(&UnnestSpec{}).Name(),
		(&AggregateSpec{}).Name(),
		(&GroupBySpec{}).Name(),
		(&SubplanSpec{}).Name(),
		ExchangeOneToOne.String(),
		FormatADM.String(),
		ExchangeKind(99).String(),
		ScanFormat(99).String(),
	}
	for i, n := range names {
		if n == "" {
			t.Errorf("name %d empty", i)
		}
	}
}

func TestFusedOutColsOutOfRange(t *testing.T) {
	job := scanJob(1, measurementsPath(), &AssignSpec{
		Evals:   []runtime.Evaluator{col(0)},
		OutCols: []int{99},
	})
	if _, err := RunStaged(job, &Env{Source: testSource()}); err == nil {
		t.Fatal("fused project out of range must fail")
	}
}

func TestOneToOneExchange(t *testing.T) {
	// A 1:1 exchange between two fragments with matching partition counts.
	job := &Job{
		Fragments: []*Fragment{
			{ID: 0, Source: ScanSource{Collection: "/sensors", Project: measurementsPath()},
				Partitions: 2, SinkExchange: 0},
			{ID: 1, Source: ExchangeSource{Exchange: 0},
				Ops:        []OpSpec{&SelectSpec{Cond: call("eq", call("value", col(0), constStr("dataType")), constStr("TMIN"))}},
				Partitions: 2, SinkExchange: -1},
		},
		Exchanges: []*Exchange{{ID: 0, Kind: ExchangeOneToOne, ConsumerPartitions: 2}},
	}
	res := runBoth(t, job, envFactory(testSource()))
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
}

func TestADMScanAtEngineLevel(t *testing.T) {
	// Encode documents as binary ADM and scan them with FormatADM.
	raw := testSource()
	admDocs := map[string][]byte{}
	for _, name := range []string{"f1.json", "f2.json", "f3.json"} {
		b, err := raw.ReadFile("/sensors/" + name)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := jsonparse.Parse(b)
		if err != nil {
			t.Fatal(err)
		}
		admDocs[name+".adm"] = item.Encode(nil, doc)
	}
	admSrc := &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": admDocs}}
	job := &Job{Fragments: []*Fragment{{
		ID: 0, Source: ScanSource{Collection: "/sensors", Project: measurementsPath(), Format: FormatADM},
		Partitions: 2, SinkExchange: -1,
	}}}
	res, err := RunStaged(job, &Env{Source: admSrc})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("ADM scan rows = %d, want 6", len(res.Rows))
	}
	// Corrupt ADM must fail.
	bad := &runtime.MemSource{Collections: map[string]map[string][]byte{
		"/sensors": {"x.adm": {0xff, 0x01, 0x02}},
	}}
	if _, err := RunStaged(job, &Env{Source: bad}); err == nil {
		t.Fatal("corrupt ADM must fail")
	}
	// Trailing garbage after a valid document must fail.
	valid := item.Encode(nil, item.Number(1))
	trailing := &runtime.MemSource{Collections: map[string]map[string][]byte{
		"/sensors": {"x.adm": append(valid, 0x00)},
	}}
	if _, err := RunStaged(job, &Env{Source: trailing}); err == nil {
		t.Fatal("trailing ADM bytes must fail")
	}
}

func TestJoinBuildSideErrorPropagates(t *testing.T) {
	// The build side fails (bad expression); both executors must surface
	// the error without deadlocking.
	keys := []runtime.Evaluator{col(7)} // out of range at eval time
	job := &Job{
		Fragments: []*Fragment{
			{ID: 0, Source: ScanSource{Collection: "/sensors", Project: measurementsPath()},
				Partitions: 1, SinkExchange: 0},
			{ID: 1, Source: ScanSource{Collection: "/sensors", Project: measurementsPath()},
				Partitions: 1, SinkExchange: 1},
			{ID: 2, Source: JoinSource{Build: 0, Probe: 1,
				Spec: &JoinSpec{BuildKeys: keys, ProbeKeys: []runtime.Evaluator{col(0)}}},
				Partitions: 1, SinkExchange: -1},
		},
		Exchanges: []*Exchange{
			{ID: 0, Kind: ExchangeMerge, ConsumerPartitions: 1},
			{ID: 1, Kind: ExchangeMerge, ConsumerPartitions: 1},
		},
	}
	if _, err := RunStaged(job, &Env{Source: testSource()}); err == nil {
		t.Fatal("staged: expected build-side error")
	}
	if _, err := RunPipelined(job, &Env{Source: testSource()}); err == nil {
		t.Fatal("pipelined: expected build-side error")
	}
}

func TestManyPartitionsStress(t *testing.T) {
	// More partitions than files: some partitions are empty; pipelined mode
	// runs 16 goroutine tasks.
	res := runBoth(t, twoStepGroupByJob(16, 16), envFactory(testSource()))
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d, want 2", len(res.Rows))
	}
}

func TestGroupByOnEmptyInput(t *testing.T) {
	cond := call("eq", call("value", col(0), constStr("dataType")), constStr("NO-SUCH-TYPE"))
	gb := &GroupBySpec{
		Keys: []runtime.Evaluator{call("value", col(0), constStr("date"))},
		Aggs: []AggDef{{Fn: runtime.MustAgg("agg-count"), Arg: col(0)}},
	}
	res := runBoth(t, scanJob(1, measurementsPath(), &SelectSpec{Cond: cond}, gb), envFactory(testSource()))
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(res.Rows))
	}
}

func TestAggregateOnEmptyInputEmitsOneTuple(t *testing.T) {
	cond := call("eq", call("value", col(0), constStr("dataType")), constStr("NO-SUCH-TYPE"))
	agg := &AggregateSpec{Aggs: []AggDef{{Fn: runtime.MustAgg("agg-count"), Arg: col(0)}}}
	res := runBoth(t, scanJob(1, measurementsPath(), &SelectSpec{Cond: cond}, agg), envFactory(testSource()))
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (count of empty input)", len(res.Rows))
	}
	if !item.EqualSeq(res.Rows[0][0], item.Single(item.Number(0))) {
		t.Errorf("count = %s, want 0", item.JSONSeq(res.Rows[0][0]))
	}
}
