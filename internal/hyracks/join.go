package hyracks

import (
	"vxq/internal/frame"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

// JoinSpec describes an equi hash join. The build side is fully consumed
// into a hash table, then the probe side streams through it. The output
// tuple is the build tuple's fields followed by the probe tuple's fields.
// Non-equi residual predicates are applied by a SELECT placed after the
// join by the compiler.
type JoinSpec struct {
	BuildKeys []runtime.Evaluator
	ProbeKeys []runtime.Evaluator
	Desc      string
}

// joiner is the runtime state of a hash join within one partition.
//
// By default both sides work in the encoded domain: keys are resolved to raw
// encoded bytes (keyEncoder), hashed with item.HashEncoded, matched byte-wise
// with the structural EqualEncoded fallback, and build keys are interned in an
// arena. TaskCtx.EagerDecode selects the decoded reference implementation.
type joiner struct {
	ctx    *TaskCtx
	spec   *JoinSpec
	memory int64

	// Profile counters (see profExtras).
	memPeak    int64
	collisions int64

	// Encoded mode.
	buildKeys *keyEncoder
	probeKeys *keyEncoder
	etable    map[uint64]*ejoinBucket
	arena     byteArena

	// Eager reference mode.
	eager bool
	table map[uint64]*joinBucket
}

type ejoinBucket struct {
	key  [][]byte // arena-interned encoded key fields
	rows []joinRow
	next *ejoinBucket
}

type joinBucket struct {
	rows []joinRow
	next *joinBucket
	key  []item.Sequence
}

type joinRow struct {
	raw [][]byte
}

func newJoiner(ctx *TaskCtx, spec *JoinSpec) *joiner {
	j := &joiner{ctx: ctx, spec: spec, eager: ctx.EagerDecode}
	if j.eager {
		j.table = make(map[uint64]*joinBucket)
	} else {
		j.etable = make(map[uint64]*ejoinBucket)
		j.buildKeys = newKeyEncoder(spec.BuildKeys)
		j.probeKeys = newKeyEncoder(spec.ProbeKeys)
	}
	return j
}

// hold charges sz bytes of retained build-table state (released once by
// release), tracking the high-water for the profiler.
func (j *joiner) hold(sz int64) {
	j.memory += sz
	if j.memory > j.memPeak {
		j.memPeak = j.memory
	}
	j.ctx.accountHold(sz)
}

// profExtras reports the join's counters into the fragment source span. It
// must run before release drops the arena (feedSource calls it right after
// the probe completes).
func (j *joiner) profExtras(x *opExtras) {
	x.memPeak = j.memPeak
	x.hashCollisions = j.collisions
	x.arenaBytes = j.arena.reserved
}

// build inserts one build-side frame into the hash table. The frame arrives
// from an exchange and is consumed here (raw bytes are copied into the
// table), so it is recycled on return.
func (j *joiner) build(fr *frame.Frame) error {
	defer j.ctx.recycle(fr)
	if j.eager {
		return j.buildEager(fr)
	}
	return forEachTupleView(fr, false, func(lt *frame.LazyTuple) error {
		kf, h, err := j.buildKeys.resolve(j.ctx, lt)
		if err != nil {
			return err
		}
		b, err := j.elookup(h, kf)
		if err != nil {
			return err
		}
		if b == nil {
			stored := make([][]byte, len(kf))
			for i, f := range kf {
				cp, grew := j.arena.copy(f)
				stored[i] = cp
				if grew > 0 {
					j.hold(grew)
				}
			}
			b = &ejoinBucket{key: stored, next: j.etable[h]}
			j.etable[h] = b
		}
		raw := lt.Raw()
		stored := make([][]byte, len(raw))
		var sz int64 = 48
		for i, f := range raw {
			stored[i] = append([]byte(nil), f...)
			sz += int64(len(f))
		}
		b.rows = append(b.rows, joinRow{raw: stored})
		j.hold(sz)
		return nil
	})
}

func (j *joiner) buildEager(fr *frame.Frame) error {
	return forEachTuple(fr, func(fields []item.Sequence, raw [][]byte) error {
		keys, h, err := j.evalKeys(j.spec.BuildKeys, fields)
		if err != nil {
			return err
		}
		b := j.lookup(h, keys)
		if b == nil {
			b = &joinBucket{key: keys, next: j.table[h]}
			j.table[h] = b
		}
		stored := make([][]byte, len(raw))
		var sz int64 = 48
		for i, f := range raw {
			stored[i] = append([]byte(nil), f...)
			sz += int64(len(f))
		}
		b.rows = append(b.rows, joinRow{raw: stored})
		j.hold(sz)
		return nil
	})
}

func (j *joiner) evalKeys(keys []runtime.Evaluator, fields []item.Sequence) ([]item.Sequence, uint64, error) {
	out := make([]item.Sequence, len(keys))
	var h uint64 = 1469598103934665603
	for i, k := range keys {
		v, err := k.Eval(j.ctx.RT, runtime.SeqTuple(fields))
		if err != nil {
			return nil, 0, err
		}
		out[i] = v
		h = h*1099511628211 ^ item.HashSeq(v)
	}
	return out, h, nil
}

func (j *joiner) elookup(h uint64, kf [][]byte) (*ejoinBucket, error) {
	for b := j.etable[h]; b != nil; b = b.next {
		ok, err := matchEncodedKey(b.key, kf)
		if err != nil {
			return nil, err
		}
		if ok {
			return b, nil
		}
		j.collisions++ // a chain entry with this hash but a different key
	}
	return nil, nil
}

func (j *joiner) lookup(h uint64, keys []item.Sequence) *joinBucket {
	for b := j.table[h]; b != nil; b = b.next {
		match := true
		for i := range keys {
			if !item.EqualSeq(b.key[i], keys[i]) {
				match = false
				break
			}
		}
		if match {
			return b
		}
		j.collisions++
	}
	return nil
}

// probe streams one probe-side frame against the table, emitting joined
// tuples through b. The frame is recycled on return; emit copies the bytes
// it frames, so one scratch slice carries every joined tuple.
func (j *joiner) probe(fr *frame.Frame, b *frameBuilder) error {
	defer j.ctx.recycle(fr)
	if j.eager {
		return j.probeEager(fr, b)
	}
	var out [][]byte
	return forEachTupleView(fr, false, func(lt *frame.LazyTuple) error {
		kf, h, err := j.probeKeys.resolve(j.ctx, lt)
		if err != nil {
			return err
		}
		bucket, err := j.elookup(h, kf)
		if err != nil || bucket == nil {
			return err
		}
		// An empty join key (empty sequence) never matches anything, per
		// comparison semantics: eq with an empty operand is empty/false.
		for _, f := range kf {
			if item.IsEmptySeqEncoded(f) {
				return nil
			}
		}
		raw := lt.Raw()
		for _, row := range bucket.rows {
			out = append(out[:0], row.raw...)
			out = append(out, raw...)
			if err := b.emit(out); err != nil {
				return err
			}
		}
		return nil
	})
}

func (j *joiner) probeEager(fr *frame.Frame, b *frameBuilder) error {
	var out [][]byte
	return forEachTuple(fr, func(fields []item.Sequence, raw [][]byte) error {
		keys, h, err := j.evalKeys(j.spec.ProbeKeys, fields)
		if err != nil {
			return err
		}
		bucket := j.lookup(h, keys)
		if bucket == nil {
			return nil
		}
		// An empty join key (empty sequence) never matches anything, per
		// comparison semantics: eq with an empty operand is empty/false.
		for _, k := range keys {
			if len(k) == 0 {
				return nil
			}
		}
		for _, row := range bucket.rows {
			out = append(out[:0], row.raw...)
			out = append(out, raw...)
			if err := b.emit(out); err != nil {
				return err
			}
		}
		return nil
	})
}

// release frees the accounted build-table memory (arena reservations were
// charged into memory as they grew, so one release covers both).
func (j *joiner) release() {
	if j.ctx.RT != nil && j.ctx.RT.Accountant != nil {
		j.ctx.RT.Accountant.Release(j.memory)
	}
	j.memory = 0
	j.arena.release()
}
