package hyracks

import (
	"io"

	"vxq/internal/frame"
	"vxq/internal/item"
	"vxq/internal/runtime"
	"vxq/internal/spill"
)

// JoinSpec describes an equi hash join. The build side is fully consumed
// into a hash table, then the probe side streams through it. The output
// tuple is the build tuple's fields followed by the probe tuple's fields.
// Non-equi residual predicates are applied by a SELECT placed after the
// join by the compiler.
type JoinSpec struct {
	BuildKeys []runtime.Evaluator
	ProbeKeys []runtime.Evaluator
	Desc      string
}

// joiner is the runtime state of a hash join within one partition.
//
// By default both sides work in the encoded domain: keys are resolved to raw
// encoded bytes (keyEncoder), hashed with item.HashEncoded, matched byte-wise
// with the structural EqualEncoded fallback, and build keys are interned in an
// arena. TaskCtx.EagerDecode selects the decoded reference implementation.
type joiner struct {
	ctx    *TaskCtx
	spec   *JoinSpec
	memory int64

	// Profile counters (see profExtras).
	memPeak    int64
	collisions int64

	// Encoded mode.
	buildKeys *keyEncoder
	probeKeys *keyEncoder
	etable    map[uint64]*ejoinBucket
	arena     byteArena

	// Out-of-core state (encoded mode only; see spillops.go). When the build
	// table exceeds budget it flushes to wave-0 partitions and the rest of the
	// build streams to disk; the probe side then partitions the same way and
	// each partition pair joins recursively (classic grace hash).
	budget      int64
	bspill      *spillParts  // build-side partition writers (non-nil once spilled)
	pspill      *spillParts  // probe-side partition writers
	bruns       []*spill.Run // sealed build runs, indexed by partition
	arenaBytes  int64        // cumulative arena reservations across table resets
	spilled     int64
	spillParted int64
	spillWaves  int64

	// Eager reference mode.
	eager bool
	table map[uint64]*joinBucket
}

type ejoinBucket struct {
	key  [][]byte // arena-interned encoded key fields
	rows []joinRow
	next *ejoinBucket
}

type joinBucket struct {
	rows []joinRow
	next *joinBucket
	key  []item.Sequence
}

type joinRow struct {
	raw [][]byte
}

func newJoiner(ctx *TaskCtx, spec *JoinSpec) *joiner {
	j := &joiner{ctx: ctx, spec: spec, eager: ctx.EagerDecode}
	if j.eager {
		j.table = make(map[uint64]*joinBucket)
	} else {
		j.etable = make(map[uint64]*ejoinBucket)
		j.buildKeys = newKeyEncoder(spec.BuildKeys)
		j.probeKeys = newKeyEncoder(spec.ProbeKeys)
		j.budget = ctx.SpillBudget
	}
	return j
}

// hold charges sz bytes of retained build-table state (released once by
// release), tracking the high-water for the profiler.
func (j *joiner) hold(sz int64) {
	j.memory += sz
	if j.memory > j.memPeak {
		j.memPeak = j.memory
	}
	j.ctx.accountHold(sz)
}

// profExtras reports the join's counters into the fragment source span. It
// must run before release drops the arena (feedSource calls it right after
// the probe completes).
func (j *joiner) profExtras(x *opExtras) {
	x.memPeak = j.memPeak
	x.hashCollisions = j.collisions
	x.arenaBytes = j.arenaBytes + j.arena.reserved
	x.spilledBytes = j.spilled
	x.spillPartitions = j.spillParted
	x.spillWaves = j.spillWaves
}

// build inserts one build-side frame into the hash table. The frame arrives
// from an exchange and is consumed here (raw bytes are copied into the
// table), so it is recycled on return.
func (j *joiner) build(fr *frame.Frame) error {
	defer j.ctx.recycle(fr)
	if j.eager {
		return j.buildEager(fr)
	}
	return forEachTupleView(fr, false, func(lt *frame.LazyTuple) error {
		kf, h, err := j.buildKeys.resolve(j.ctx, lt)
		if err != nil {
			return err
		}
		if j.bspill != nil {
			// Out of core: the table stays flushed, every further build tuple
			// routes to its partition raw.
			n, werr := j.bspill.write(h, spillTagRaw, lt.Raw())
			j.spilled += int64(n)
			return werr
		}
		if err := j.insertRow(h, kf, lt.Raw()); err != nil {
			return err
		}
		return j.maybeSpill()
	})
}

// insertRow adds one build row (arena-interning its key on first sight) to
// the table. kf and raw may alias transient buffers — everything retained is
// copied.
func (j *joiner) insertRow(h uint64, kf, raw [][]byte) error {
	b, err := j.elookup(h, kf)
	if err != nil {
		return err
	}
	if b == nil {
		stored := make([][]byte, len(kf))
		for i, f := range kf {
			cp, grew := j.arena.copy(f)
			stored[i] = cp
			if grew > 0 {
				j.hold(grew)
			}
		}
		b = &ejoinBucket{key: stored, next: j.etable[h]}
		j.etable[h] = b
	}
	stored := make([][]byte, len(raw))
	var sz int64 = 48
	for i, f := range raw {
		stored[i] = append([]byte(nil), f...)
		sz += int64(len(f))
	}
	b.rows = append(b.rows, joinRow{raw: stored})
	j.hold(sz)
	return nil
}

// maybeSpill takes the build side out of core once the table exceeds budget.
// A table holding a single key can never be split by partitioning, so it
// stays in memory.
func (j *joiner) maybeSpill() error {
	if j.budget <= 0 || j.bspill != nil || j.memory <= j.budget || len(j.etable) < 2 {
		return nil
	}
	j.bspill = newSpillParts(j.ctx, 0)
	j.spillWaves++
	return j.flushTable(j.bspill)
}

// flushTable writes every build row back out as a raw record routed by its
// bucket's key hash, then drops the table. A bucket's rows are written
// contiguously in arrival order, so rebuilding a partition preserves per-key
// row order — the only order the join output depends on.
func (j *joiner) flushTable(ps *spillParts) error {
	for _, b := range j.etable {
		for ; b != nil; b = b.next {
			h, err := chainKeyHash(b.key)
			if err != nil {
				return err
			}
			for _, row := range b.rows {
				n, werr := ps.write(h, spillTagRaw, row.raw)
				j.spilled += int64(n)
				if werr != nil {
					return werr
				}
			}
		}
	}
	j.resetTable()
	return nil
}

// resetTable drops the build table and returns its held bytes (arena growth
// included — it was charged through hold) to the accountant.
func (j *joiner) resetTable() {
	j.arenaBytes += j.arena.release()
	j.etable = make(map[uint64]*ejoinBucket)
	j.ctx.releaseHold(j.memory)
	j.memory = 0
}

// finishBuild runs once the build side is fully consumed. An in-memory build
// is already the probe-ready table; a spilled build seals its partitions and
// opens the probe-side writers that mirror their routing.
func (j *joiner) finishBuild() error {
	if j.bspill == nil {
		return nil
	}
	runs, err := j.bspill.finish()
	j.spillParted += countRuns(runs)
	j.bspill = nil
	if err != nil {
		return err
	}
	j.bruns = runs
	j.pspill = newSpillParts(j.ctx, 0)
	return nil
}

func (j *joiner) buildEager(fr *frame.Frame) error {
	return forEachTuple(fr, func(fields []item.Sequence, raw [][]byte) error {
		keys, h, err := j.evalKeys(j.spec.BuildKeys, fields)
		if err != nil {
			return err
		}
		b := j.lookup(h, keys)
		if b == nil {
			b = &joinBucket{key: keys, next: j.table[h]}
			j.table[h] = b
		}
		stored := make([][]byte, len(raw))
		var sz int64 = 48
		for i, f := range raw {
			stored[i] = append([]byte(nil), f...)
			sz += int64(len(f))
		}
		b.rows = append(b.rows, joinRow{raw: stored})
		j.hold(sz)
		return nil
	})
}

func (j *joiner) evalKeys(keys []runtime.Evaluator, fields []item.Sequence) ([]item.Sequence, uint64, error) {
	out := make([]item.Sequence, len(keys))
	var h uint64 = 1469598103934665603
	for i, k := range keys {
		v, err := k.Eval(j.ctx.RT, runtime.SeqTuple(fields))
		if err != nil {
			return nil, 0, err
		}
		out[i] = v
		h = h*1099511628211 ^ item.HashSeq(v)
	}
	return out, h, nil
}

func (j *joiner) elookup(h uint64, kf [][]byte) (*ejoinBucket, error) {
	for b := j.etable[h]; b != nil; b = b.next {
		ok, err := matchEncodedKey(b.key, kf)
		if err != nil {
			return nil, err
		}
		if ok {
			return b, nil
		}
		j.collisions++ // a chain entry with this hash but a different key
	}
	return nil, nil
}

func (j *joiner) lookup(h uint64, keys []item.Sequence) *joinBucket {
	for b := j.table[h]; b != nil; b = b.next {
		match := true
		for i := range keys {
			if !item.EqualSeq(b.key[i], keys[i]) {
				match = false
				break
			}
		}
		if match {
			return b
		}
		j.collisions++
	}
	return nil
}

// probe streams one probe-side frame against the table, emitting joined
// tuples through b. The frame is recycled on return; emit copies the bytes
// it frames, so one scratch slice carries every joined tuple.
func (j *joiner) probe(fr *frame.Frame, b *frameBuilder) error {
	defer j.ctx.recycle(fr)
	if j.eager {
		return j.probeEager(fr, b)
	}
	var out [][]byte
	return forEachTupleView(fr, false, func(lt *frame.LazyTuple) error {
		kf, h, err := j.probeKeys.resolve(j.ctx, lt)
		if err != nil {
			return err
		}
		if j.pspill != nil {
			// Spilled build: route the probe tuple to the partition its key's
			// build rows went to. Partitions with no build data can never
			// produce output, so their probe tuples are dropped here.
			p := spillRoute(h, 0, len(j.bruns))
			if j.bruns[p] == nil {
				return nil
			}
			n, werr := j.pspill.writeTo(p, spillTagRaw, lt.Raw())
			j.spilled += int64(n)
			return werr
		}
		return j.probeRow(h, kf, lt.Raw(), &out, b)
	})
}

// probeRow joins one probe tuple against the in-memory table.
func (j *joiner) probeRow(h uint64, kf, raw [][]byte, out *[][]byte, b *frameBuilder) error {
	bucket, err := j.elookup(h, kf)
	if err != nil || bucket == nil {
		return err
	}
	// An empty join key (empty sequence) never matches anything, per
	// comparison semantics: eq with an empty operand is empty/false.
	for _, f := range kf {
		if item.IsEmptySeqEncoded(f) {
			return nil
		}
	}
	for _, row := range bucket.rows {
		*out = append((*out)[:0], row.raw...)
		*out = append(*out, raw...)
		if err := b.emit(*out); err != nil {
			return err
		}
	}
	return nil
}

// finishProbe runs once the probe side is fully consumed: for an in-memory
// join the output already streamed through probe and there is nothing to do;
// a spilled join seals the probe partitions and joins each partition pair.
// Runs are removed as they are consumed, the deferred sweeps remove the rest
// when an error cuts the drain short.
func (j *joiner) finishProbe(b *frameBuilder) error {
	if j.pspill == nil {
		return nil
	}
	pruns, err := j.pspill.finish()
	j.spillParted += countRuns(pruns)
	j.pspill = nil
	if err != nil {
		return err
	}
	bruns := j.bruns
	j.bruns = nil
	defer spill.RemoveRuns(bruns)
	defer spill.RemoveRuns(pruns)
	for p := range bruns {
		br, pr := bruns[p], pruns[p]
		if br != nil && pr != nil {
			if err := j.joinPartition(br, pr, 1, b); err != nil {
				return err
			}
		}
		if br != nil {
			br.Remove()
			bruns[p] = nil
		}
		if pr != nil {
			pr.Remove()
			pruns[p] = nil
		}
	}
	return nil
}

// joinPartition rebuilds the hash table from one build run and streams the
// matching probe run through it. If the table overflows again and can still
// be split, both runs re-partition on a depth-rotated hash and recursion
// continues; at max depth (or with a single unsplittable key) the partition
// finishes in memory — correctness never depends on the budget holding.
func (j *joiner) joinPartition(brun, prun *spill.Run, depth int, b *frameBuilder) error {
	rd, err := brun.Open()
	if err != nil {
		return err
	}
	release := j.ctx.account(int64(j.ctx.spillBlockSize()))
	var child *spillParts
	fail := func(err error) error {
		rd.Close()
		release()
		if child != nil {
			child.abort()
		}
		return err
	}
	var lt frame.LazyTuple
	for {
		_, fields, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fail(err)
		}
		lt.Reset(fields)
		kf, h, err := j.buildKeys.resolve(j.ctx, &lt)
		if err != nil {
			return fail(err)
		}
		if child != nil {
			n, werr := child.write(h, spillTagRaw, fields)
			j.spilled += int64(n)
			if werr != nil {
				return fail(werr)
			}
			continue
		}
		if err := j.insertRow(h, kf, fields); err != nil {
			return fail(err)
		}
		if j.budget > 0 && j.memory > j.budget && depth < maxSpillDepth && len(j.etable) > 1 {
			child = newSpillParts(j.ctx, depth)
			j.spillWaves++
			if err := j.flushTable(child); err != nil {
				return fail(err)
			}
		}
	}
	rd.Close()
	release()
	if child == nil {
		err := j.probeRun(prun, b)
		j.resetTable()
		return err
	}
	bruns, err := child.finish()
	j.spillParted += countRuns(bruns)
	child = nil
	if err != nil {
		return err
	}
	defer spill.RemoveRuns(bruns)
	pruns, err := j.partitionProbeRun(prun, depth, bruns)
	j.spillParted += countRuns(pruns)
	if err != nil {
		return err
	}
	defer spill.RemoveRuns(pruns)
	for p := range bruns {
		br, pr := bruns[p], pruns[p]
		if br != nil && pr != nil {
			if err := j.joinPartition(br, pr, depth+1, b); err != nil {
				return err
			}
		}
		if br != nil {
			br.Remove()
			bruns[p] = nil
		}
		if pr != nil {
			pr.Remove()
			pruns[p] = nil
		}
	}
	return nil
}

// probeRun streams one probe run through the in-memory table.
func (j *joiner) probeRun(prun *spill.Run, b *frameBuilder) error {
	rd, err := prun.Open()
	if err != nil {
		return err
	}
	release := j.ctx.account(int64(j.ctx.spillBlockSize()))
	defer release()
	defer rd.Close()
	var (
		lt  frame.LazyTuple
		out [][]byte
	)
	for {
		_, fields, err := rd.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		lt.Reset(fields)
		kf, h, err := j.probeKeys.resolve(j.ctx, &lt)
		if err != nil {
			return err
		}
		if err := j.probeRow(h, kf, fields, &out, b); err != nil {
			return err
		}
	}
}

// partitionProbeRun re-routes one probe run on the depth-rotated hash,
// mirroring the build side's re-partitioning and dropping tuples whose
// partition holds no build data.
func (j *joiner) partitionProbeRun(prun *spill.Run, depth int, bruns []*spill.Run) ([]*spill.Run, error) {
	rd, err := prun.Open()
	if err != nil {
		return nil, err
	}
	release := j.ctx.account(int64(j.ctx.spillBlockSize()))
	ps := newSpillParts(j.ctx, depth)
	fail := func(err error) ([]*spill.Run, error) {
		rd.Close()
		release()
		ps.abort()
		return nil, err
	}
	var lt frame.LazyTuple
	for {
		_, fields, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fail(err)
		}
		lt.Reset(fields)
		_, h, err := j.probeKeys.resolve(j.ctx, &lt)
		if err != nil {
			return fail(err)
		}
		p := spillRoute(h, depth, len(bruns))
		if bruns[p] == nil {
			continue
		}
		n, werr := ps.writeTo(p, spillTagRaw, fields)
		j.spilled += int64(n)
		if werr != nil {
			return fail(werr)
		}
	}
	rd.Close()
	release()
	return ps.finish()
}

func (j *joiner) probeEager(fr *frame.Frame, b *frameBuilder) error {
	var out [][]byte
	return forEachTuple(fr, func(fields []item.Sequence, raw [][]byte) error {
		keys, h, err := j.evalKeys(j.spec.ProbeKeys, fields)
		if err != nil {
			return err
		}
		bucket := j.lookup(h, keys)
		if bucket == nil {
			return nil
		}
		// An empty join key (empty sequence) never matches anything, per
		// comparison semantics: eq with an empty operand is empty/false.
		for _, k := range keys {
			if len(k) == 0 {
				return nil
			}
		}
		for _, row := range bucket.rows {
			out = append(out[:0], row.raw...)
			out = append(out, raw...)
			if err := b.emit(out); err != nil {
				return err
			}
		}
		return nil
	})
}

// release frees the accounted build-table memory (arena reservations were
// charged into memory as they grew, so one release covers both) and cleans up
// any spill state a failed task left behind. feedSource defers it, so the
// balance returns to zero and no files linger on either the clean or the
// error path.
func (j *joiner) release() {
	if j.ctx.RT != nil && j.ctx.RT.Accountant != nil {
		j.ctx.RT.Accountant.Release(j.memory)
	}
	j.memory = 0
	j.arena.release()
	if j.bspill != nil {
		j.bspill.abort()
		j.bspill = nil
	}
	if j.pspill != nil {
		j.pspill.abort()
		j.pspill = nil
	}
	spill.RemoveRuns(j.bruns)
	j.bruns = nil
	j.ctx.addSpillStats(j.spilled, j.spillParted, j.spillWaves)
}
