package hyracks

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"vxq/internal/frame"
	"vxq/internal/runtime"
)

// RunPipelined executes a job with one goroutine per fragment-partition
// task; exchanges are buffered channels, so producers and consumers overlap
// like Hyracks' pipelined connectors. Task timings include blocking time
// and are therefore not used for virtual-time scheduling (use RunStaged's).
func RunPipelined(job *Job, env *Env) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	acct := env.accountant()
	pool := env.pool()
	// Shared morsel queues: every task of a scan fragment drains the same
	// atomic cursor, so partitions steal work from each other and a skewed
	// file set no longer leaves stragglers.
	queues, qstats, err := buildScanQueues(job, env, true)
	if err != nil {
		return nil, err
	}
	depth := env.ChannelDepth
	if depth <= 0 {
		depth = 4
	}

	type exchChans struct {
		chans     []chan *frame.Frame
		producers sync.WaitGroup
	}
	chans := make(map[int]*exchChans, len(job.Exchanges))
	for _, e := range job.Exchanges {
		ec := &exchChans{chans: make([]chan *frame.Frame, e.ConsumerPartitions)}
		for i := range ec.chans {
			ec.chans[i] = make(chan *frame.Frame, depth)
		}
		chans[e.ID] = ec
	}
	// Register producers before any task starts.
	for _, f := range job.Fragments {
		if f.SinkExchange >= 0 {
			chans[f.SinkExchange].producers.Add(f.Partitions)
		}
	}
	// Close an exchange's channels once all its producers finished.
	for _, e := range job.Exchanges {
		ec := chans[e.ID]
		go func() {
			ec.producers.Wait()
			for _, c := range ec.chans {
				close(c)
			}
		}()
	}

	var (
		mu        sync.Mutex
		firstErr  error
		stop      = make(chan struct{})
		stopOnce  sync.Once
		collector = &CollectSink{}
		colMu     sync.Mutex
		wg        sync.WaitGroup
		res       = &Result{}
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stopOnce.Do(func() { close(stop) })
	}

	totalTasks := 0
	for _, f := range job.Fragments {
		totalTasks += f.Partitions
	}
	// Per-task accumulation, merged once after every worker has finished:
	// each task writes only its own pre-assigned slot (and its own
	// runtime.Stats instance), so no counter is ever shared between workers.
	taskStats := make([]*runtime.Stats, totalTasks)
	taskTimes := make([]TaskTime, totalTasks)
	var jp *jobProf
	if env.Profile {
		jp = &jobProf{epoch: time.Now()}
	}

	taskIdx := 0
	for _, f := range job.Fragments {
		for p := 0; p < f.Partitions; p++ {
			f, p, idx := f, p, taskIdx
			taskIdx++
			wg.Add(1)
			go func() {
				defer wg.Done()
				rt := &runtime.Ctx{
					Source:     env.Source,
					Accountant: acct,
					Stats:      &runtime.Stats{},
					FrameSize:  env.FrameSize,
					ChunkSize:  env.ChunkSize,
					Indexes:    env.Indexes,
				}
				ctx := &TaskCtx{RT: rt, Partition: p, FrameSize: env.FrameSize, EagerDecode: env.EagerReference, Pool: pool, morsels: queues[f.ID],
					SpillDir: env.SpillDir, SpillBudget: env.OpMemoryBudget, SpillFanout: env.SpillPartitions}
				if jp != nil {
					ctx.prof = newTaskProf(job, f, p, jp.epoch)
				}
				var terminal Writer
				if f.SinkExchange >= 0 {
					e := job.exchange(f.SinkExchange)
					ec := chans[e.ID]
					dests := make([]frameDest, e.ConsumerPartitions)
					for i := range dests {
						dests[i] = &chanDest{c: ec.chans[i], stop: stop, pool: pool}
					}
					terminal = &producerCloser{
						Writer: newExchangeWriter(ctx, e, dests),
						done:   func() { ec.producers.Done() },
					}
				} else {
					terminal = recycleSink{ctx: ctx, w: &lockedSink{sink: collector, mu: &colMu}}
				}
				chain := buildTaskChain(ctx, f, terminal)
				in := sourceInput{recv: func(exchID int, each func(*frame.Frame) error) error {
					ec, ok := chans[exchID]
					if !ok {
						return fmt.Errorf("hyracks: unknown exchange %d", exchID)
					}
					for {
						select {
						case fr, open := <-ec.chans[p]:
							if !open {
								return nil
							}
							if err := each(fr); err != nil {
								return err
							}
						case <-stop:
							return errStopped
						}
					}
				}}
				start := time.Now()
				err := runSource(ctx, f, chain, in)
				elapsed := time.Since(start)
				taskTimes[idx] = TaskTime{
					Fragment: f.ID, Partition: p, Elapsed: elapsed,
					Morsels: ctx.MorselsScanned, Steals: ctx.MorselsStolen,
				}
				taskStats[idx] = rt.Stats
				if ctx.prof != nil {
					ctx.prof.finish(ctx, start.Sub(jp.epoch).Nanoseconds(), elapsed.Nanoseconds())
					jp.add(ctx.prof)
				}
				// A task torn down after another task's failure may surface
				// errStopped wrapped with scan context (e.g. a file path);
				// only genuine first failures are reported.
				if err != nil && !errors.Is(err, errStopped) {
					fail(err)
				}
			}()
		}
	}
	wg.Wait()
	if firstErr != nil {
		// Frames abandoned in exchange channels by torn-down tasks go back to
		// the pool so its outstanding-frame accounting balances to zero.
		for _, ec := range chans {
			for _, c := range ec.chans {
				for fr := range c {
					pool.Put(fr)
				}
			}
		}
		return nil, firstErr
	}
	res.Stats.FilesSkipped = qstats.filesSkipped
	res.Stats.MorselsSkipped = qstats.morselsSkipped
	res.Stats.ColdIndexBuilds = qstats.coldIndexBuilds
	for _, st := range taskStats {
		if st != nil {
			res.Stats.Add(st)
		}
	}
	res.Tasks = taskTimes
	if jp != nil {
		res.Profile = jp.buildProfile(job, time.Since(jp.epoch).Nanoseconds())
	}
	res.Rows = collector.Rows
	res.PeakMemory = acct.Peak()
	return res, nil
}

var errStopped = fmt.Errorf("hyracks: execution aborted")

type chanDest struct {
	c    chan *frame.Frame
	stop chan struct{}
	pool *frame.Pool
}

func (d *chanDest) send(fr *frame.Frame) error {
	select {
	case d.c <- fr:
		return nil
	case <-d.stop:
		// The frame's ownership arrived with this call; with no receiver left
		// it goes back to the pool instead of leaking.
		if d.pool != nil {
			d.pool.Put(fr)
		}
		return errStopped
	}
}

// producerCloser signals producer completion on an exchange exactly once,
// whether the task closes normally or is torn down after a failure.
type producerCloser struct {
	Writer
	done func()
	once sync.Once
}

func (p *producerCloser) Close() error {
	err := p.Writer.Close()
	p.once.Do(p.done)
	return err
}

// profExtras forwards the profiler's counter query to the wrapped exchange
// writer, which the embedded interface would otherwise hide.
func (p *producerCloser) profExtras(x *opExtras) {
	if os, ok := p.Writer.(opStatser); ok {
		os.profExtras(x)
	}
}

// lockedSink serializes concurrent pushes from multiple collector-partition
// tasks.
type lockedSink struct {
	sink *CollectSink
	mu   *sync.Mutex
}

func (s *lockedSink) Open() error { return nil }
func (s *lockedSink) Push(fr *frame.Frame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sink.Push(fr)
}
func (s *lockedSink) Close() error { return nil }
