package hyracks

import (
	"fmt"
	"strings"
	"testing"

	"vxq/internal/index"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// splitIndexStub implements runtime.IndexLookup + runtime.SplitLookup over a
// map of in-memory documents: no range pruning, splits computed on demand by
// the structural boundary scanner at a configurable grain. It stands in for
// a zone-map registry so morsel tests can force split-aligned cutting at
// grains far finer than index.DefaultSplitGrain.
type splitIndexStub struct {
	docs  map[string][]byte // keyed by full file path, e.g. "/sensors/a.json"
	grain int64
}

func (s *splitIndexStub) FileRange(string, jsonparse.Path, string) (runtime.FileRange, bool) {
	return runtime.FileRange{}, false
}

func (s *splitIndexStub) FileSplits(_ string, file string) ([]int64, bool) {
	b, ok := s.docs[file]
	if !ok {
		return nil, false
	}
	bs := jsonparse.NewBoundaryScanner(s.grain)
	bs.Write(b)
	bs.Close()
	sp := bs.Splits()
	return sp, len(sp) > 0
}

func stubFor(docs map[string][]byte, grain int64) *splitIndexStub {
	full := make(map[string][]byte, len(docs))
	for name, b := range docs {
		full["/sensors/"+name] = b
	}
	return &splitIndexStub{docs: full, grain: grain}
}

// TestAppendAlignedMorsels pins the cutter: boundaries snap forward to the
// first split at or after each nominal cut, degenerate cuts merge, the last
// morsel always ends at the file size, and every non-first morsel is aligned.
func TestAppendAlignedMorsels(t *testing.T) {
	cases := []struct {
		name       string
		size, ms   int64
		splits     []int64
		wantStarts []int64
	}{
		{"snap-forward", 100, 30, []int64{35, 70, 90}, []int64{0, 35, 70, 90}},
		// A split before the nominal cut is skipped (b <= prev guard after
		// the previous snap overshot past the next nominal cut).
		{"overshoot-merges", 100, 10, []int64{45, 95}, []int64{0, 45, 95}},
		// No split at or after the cut: tail merges into the last morsel.
		{"tail-merge", 100, 40, []int64{45}, []int64{0, 45}},
		// Split exactly at the file size is not a cut (empty morsel).
		{"split-at-size", 100, 50, []int64{50, 100}, []int64{0, 50}},
		{"all-before-first-cut", 100, 60, []int64{5, 10}, []int64{0}},
	}
	for _, tc := range cases {
		got := appendAlignedMorsels(nil, "f", tc.size, tc.ms, tc.splits)
		if len(got) != len(tc.wantStarts) {
			t.Errorf("%s: %d morsels, want %d (%+v)", tc.name, len(got), len(tc.wantStarts), got)
			continue
		}
		for i, m := range got {
			if m.start != tc.wantStarts[i] {
				t.Errorf("%s: morsel %d start = %d, want %d", tc.name, i, m.start, tc.wantStarts[i])
			}
			wantEnd := tc.size
			if i+1 < len(got) {
				wantEnd = got[i+1].start
			}
			if m.end != wantEnd {
				t.Errorf("%s: morsel %d end = %d, want %d (must tile the file)", tc.name, i, m.end, wantEnd)
			}
			if m.first != (i == 0) || m.aligned != (i != 0) {
				t.Errorf("%s: morsel %d first=%v aligned=%v", tc.name, i, m.first, m.aligned)
			}
		}
	}
}

// TestMorselAlignedEquivalence re-runs the morsel equivalence property with a
// split index present, so every interior boundary is a known record start and
// the consumer opens morsels without the probe-byte re-alignment. The result
// set must match the whole-file reference exactly (exactly-once ownership) at
// grains both finer and coarser than the morsel size.
func TestMorselAlignedEquivalence(t *testing.T) {
	docs := map[string][]byte{
		"many.json":    ndSensorFile(200, 100),
		"bigrec.json":  ndSensorFile(12, 3000),
		"oneline.json": bigSensorFile(8 << 10), // no newlines: split index has no entries
		"tiny.json":    ndSensorFile(2, 0),
	}
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}
	want := referenceItems(t, docs, measurementsPath())
	for _, grain := range []int64{0, 256, 4 << 10} {
		idx := stubFor(docs, grain)
		for _, ms := range []int64{1 << 10, 4 << 10} {
			for _, parts := range []int{1, 3} {
				env := func() *Env { return &Env{Source: src, MorselSize: ms, Indexes: idx} }
				got := resultItems(runBoth(t, scanJob(parts, measurementsPath()), env))
				if len(got) != len(want) {
					t.Fatalf("grain=%d morsel=%d parts=%d: %d items, want %d",
						grain, ms, parts, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("grain=%d morsel=%d parts=%d: item %d = %s, want %s",
							grain, ms, parts, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// escapedNewlineFile builds newline-delimited records whose note strings are
// dense with two-character escape sequences — \n, \", \\ — so that morsel
// boundaries and 64-byte block boundaries land inside escapes and between a
// backslash and its escaped character. A raw 0x0A never occurs inside a JSON
// string (it must be escaped), so the only newline bytes are the record
// separators; the scanner must not mistake the 'n' of a \n escape — or a
// quote preceded by an even run of backslashes — for structure.
func escapedNewlineFile(records int) []byte {
	var sb strings.Builder
	esc := strings.Repeat(`line\n`, 20) + strings.Repeat(`\\`, 31) + `\"quoted\"` + strings.Repeat(`\\n`, 13)
	for i := 0; i < records; i++ {
		fmt.Fprintf(&sb,
			`{"root":[{"metadata":{"count":1},"results":[{"date":"2013-12-%02dT00:00","dataType":"TMIN","station":"E%06d","value":%d,"note":"%s"}]}]}`+"\n",
			1+i%28, i, i%40, esc[i%7:]) // vary phase so escapes shift against block boundaries
	}
	return []byte(sb.String())
}

// TestMorselEscapedNewlineSpansBoundary is the string-spanning case: records
// full of escaped newlines (backslash + 'n' — the only legal way to put a
// newline in a JSON string) cut by morsel boundaries mid-string and
// mid-escape. Both the probing path (no index) and the aligned path (split
// index) must deliver every record exactly once.
func TestMorselEscapedNewlineSpansBoundary(t *testing.T) {
	docs := map[string][]byte{"escaped.json": escapedNewlineFile(60)}
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}
	want := referenceItems(t, docs, measurementsPath())
	if len(want) != 60 {
		t.Fatalf("reference = %d items, want 60", len(want))
	}
	for _, idx := range []runtime.IndexLookup{nil, stubFor(docs, 0), stubFor(docs, 128)} {
		for _, ms := range []int64{128, 256, 512, 1 << 10} {
			for _, parts := range []int{1, 3} {
				env := func() *Env { return &Env{Source: src, MorselSize: ms, Indexes: idx} }
				got := resultItems(runBoth(t, scanJob(parts, measurementsPath()), env))
				if len(got) != len(want) {
					t.Fatalf("idx=%v morsel=%d parts=%d: %d items, want %d (record dropped or duplicated)",
						idx != nil, ms, parts, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("idx=%v morsel=%d parts=%d: item %d differs", idx != nil, ms, parts, i)
					}
				}
			}
		}
	}
}

// TestMorselAlignedViaZoneMapRegistry exercises the production wiring: a zone
// map built over the collection carries split offsets as a byproduct, the
// registry serves them through runtime.SplitLookup, and buildMorselQueue cuts
// on them — every interior boundary of a split file is one of the recorded
// record starts, and the scan result still matches the reference.
func TestMorselAlignedViaZoneMapRegistry(t *testing.T) {
	docs := map[string][]byte{"big.json": ndSensorFile(300, 100)} // ~68 KiB
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}
	valuePath := measurementsPath().Append(jsonparse.KeyStep("value"))
	zm, err := index.Build(src, "/sensors", valuePath)
	if err != nil {
		t.Fatal(err)
	}
	file := "/sensors/big.json"
	splits := zm.Splits[file]
	if len(splits) == 0 {
		t.Fatal("zone-map build recorded no splits for a newline-delimited file")
	}
	reg := index.NewRegistry()
	reg.Add(zm)
	if got, ok := reg.FileSplits("/sensors", file); !ok || len(got) != len(splits) {
		t.Fatalf("registry FileSplits = %d offsets, ok=%v; want %d", len(got), ok, len(splits))
	}

	const ms = 8 << 10
	q, _, err := buildMorselQueue(src, ScanSource{Collection: "/sensors", Format: FormatJSON, Project: measurementsPath()},
		reg, 1, morselOptions{morselSize: ms}, true)
	if err != nil {
		t.Fatal(err)
	}
	onSplit := map[int64]bool{}
	for _, s := range splits {
		onSplit[s] = true
	}
	var aligned int
	for {
		m, _, ok := q.take(0)
		if !ok {
			break
		}
		if m.first {
			continue
		}
		if !m.aligned {
			t.Fatalf("interior morsel [%d:%d) not aligned despite split index", m.start, m.end)
		}
		if !onSplit[m.start] {
			t.Fatalf("aligned morsel start %d is not a recorded record start", m.start)
		}
		aligned++
	}
	if aligned == 0 {
		t.Fatal("file was not split into aligned morsels")
	}

	want := referenceItems(t, docs, measurementsPath())
	env := func() *Env { return &Env{Source: src, MorselSize: ms, Indexes: reg} }
	got := resultItems(runBoth(t, scanJob(3, measurementsPath()), env))
	if len(got) != len(want) {
		t.Fatalf("%d items, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("item %d = %s, want %s", i, got[i], want[i])
		}
	}
}
