package hyracks

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"vxq/internal/frame"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

// spillBudget is the per-operator budget the out-of-core tests run under —
// small enough that bigSource exceeds it at least 4x in every blocking
// operator, which is the acceptance bar for the grace-hash/merge-sort paths.
const spillBudget = 4 << 10

// bigSource generates 2n sensor records (a TMIN/TMAX pair per index, unique
// (station, date) per pair, integer values so every aggregate is exact in
// float64 regardless of summation order). At n=400 the collection is ~100 KiB
// of raw JSON — far beyond the 4 KiB test budget.
func bigSource(n int) *runtime.MemSource {
	files := map[string][]byte{}
	var entries []string
	file := 0
	flush := func() {
		if len(entries) == 0 {
			return
		}
		doc := []byte(`{"root":[` + joinStrings(entries) + `]}`)
		files[fmt.Sprintf("f%03d.json", file)] = doc
		file++
		entries = entries[:0]
	}
	rec := func(date, typ, station string, val int) string {
		return fmt.Sprintf(`{"metadata":{"count":1},"results":[{"date":%q,"dataType":%q,"station":%q,"value":%d}]}`,
			date, typ, station, val)
	}
	for i := 0; i < n; i++ {
		station := fmt.Sprintf("S%02d", i%23)
		date := fmt.Sprintf("2014-01-%03d", i)
		entries = append(entries,
			rec(date, "TMIN", station, i%50-10),
			rec(date, "TMAX", station, i%60+5))
		if len(entries) >= 40 {
			flush()
		}
	}
	flush()
	return &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": files}}
}

func joinStrings(ss []string) string {
	var b bytes.Buffer
	for i, s := range ss {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s)
	}
	return b.String()
}

// bigGroupBy groups on (date, station) — one group per generated pair, so the
// hash table grows far past the test budget — counting rows and summing the
// integer values.
func bigGroupBy() *GroupBySpec {
	return &GroupBySpec{
		Keys: []runtime.Evaluator{
			call("value", col(0), constStr("date")),
			call("value", col(0), constStr("station")),
		},
		Aggs: []AggDef{
			{Fn: runtime.MustAgg("agg-count"), Arg: col(0)},
			{Fn: runtime.MustAgg("agg-sum"), Arg: call("value", col(0), constStr("value"))},
		},
	}
}

// bigSortOps assigns (station, value) and sorts by them; the buffered rows
// blow the budget and force external runs.
func bigSortOps() []OpSpec {
	return []OpSpec{
		&AssignSpec{Evals: []runtime.Evaluator{
			call("value", col(0), constStr("station")),
			call("value", col(0), constStr("value")),
		}},
		&SortSpec{Keys: []SortDef{{Key: col(1)}, {Key: col(2), Desc: true}}},
		&ProjectSpec{Cols: []int{1, 2}},
	}
}

// bigJoinJob is joinJob without the trailing average: TMIN rows join TMAX
// rows on (station, date) and the per-match differences are collected
// directly, so the spilled and in-memory row sets can be compared
// byte-for-byte after canonical sorting.
func bigJoinJob(parts int) *Job {
	filter := func(typ string) OpSpec {
		return &SelectSpec{Cond: call("eq", call("value", col(0), constStr("dataType")), constStr(typ))}
	}
	keys := func() []runtime.Evaluator {
		return []runtime.Evaluator{
			call("value", col(0), constStr("station")),
			call("value", col(0), constStr("date")),
		}
	}
	diff := &AssignSpec{Evals: []runtime.Evaluator{call("sub",
		call("value", col(1), constStr("value")),
		call("value", col(0), constStr("value")),
	)}}
	return &Job{
		Fragments: []*Fragment{
			{ID: 0, Source: ScanSource{Collection: "/sensors", Project: measurementsPath()},
				Ops: []OpSpec{filter("TMIN")}, Partitions: parts, SinkExchange: 0},
			{ID: 1, Source: ScanSource{Collection: "/sensors", Project: measurementsPath()},
				Ops: []OpSpec{filter("TMAX")}, Partitions: parts, SinkExchange: 1},
			{ID: 2, Source: JoinSource{Build: 0, Probe: 1,
				Spec: &JoinSpec{BuildKeys: keys(), ProbeKeys: keys()}},
				Ops: []OpSpec{diff, &ProjectSpec{Cols: []int{2}}}, Partitions: parts, SinkExchange: 2},
			{ID: 3, Source: ExchangeSource{Exchange: 2}, Partitions: 1, SinkExchange: -1},
		},
		Exchanges: []*Exchange{
			{ID: 0, Kind: ExchangeHash, Keys: keys(), ConsumerPartitions: parts},
			{ID: 1, Kind: ExchangeHash, Keys: keys(), ConsumerPartitions: parts},
			{ID: 2, Kind: ExchangeMerge, ConsumerPartitions: 1},
		},
	}
}

// checkNoSpillFiles fails if the dedicated spill directory still holds any
// file — on every exit path the operators must remove their runs and temp
// files.
func checkNoSpillFiles(t *testing.T, name, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for _, e := range ents {
		t.Errorf("%s: spill file left behind: %s", name, e.Name())
	}
}

// sameRowsBytes requires two (already canonically sorted) results to be
// byte-identical under the canonical item encoding.
func sameRowsBytes(t *testing.T, name string, want, got *Result) {
	t.Helper()
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: %d rows, want %d", name, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if len(want.Rows[i]) != len(got.Rows[i]) {
			t.Fatalf("%s: row %d arity %d, want %d", name, i, len(got.Rows[i]), len(want.Rows[i]))
		}
		for j := range want.Rows[i] {
			wb := item.EncodeSeq(nil, want.Rows[i][j])
			gb := item.EncodeSeq(nil, got.Rows[i][j])
			if !bytes.Equal(wb, gb) {
				t.Fatalf("%s: row %d field %d not byte-identical: want %s, got %s",
					name, i, j, item.JSONSeq(want.Rows[i][j]), item.JSONSeq(got.Rows[i][j]))
			}
		}
	}
}

// runSpillDiff is the acceptance harness: the job runs unbudgeted in memory,
// then under a tiny budget with both executors. The budgeted runs must spill
// (Stats.SpilledBytes > 0 on an input >= 4x the budget), produce
// byte-identical rows, return the accountant to zero, and leave the spill
// directory empty.
func runSpillDiff(t *testing.T, name string, job *Job, src *runtime.MemSource) {
	t.Helper()
	runSpillDiffOpt(t, name, job, src, true)
}

func runSpillDiffOpt(t *testing.T, name string, job *Job, src *runtime.MemSource, wantSpill bool) {
	t.Helper()
	plain, err := RunStaged(job, &Env{Source: src})
	if err != nil {
		t.Fatalf("%s: in-memory run: %v", name, err)
	}
	plain.SortRows()
	if plain.Stats.BytesRead < 4*spillBudget {
		t.Fatalf("%s: input %d bytes is under 4x the %d budget — test data too small",
			name, plain.Stats.BytesRead, spillBudget)
	}
	for _, mode := range []struct {
		name string
		run  func(*Job, *Env) (*Result, error)
	}{{"staged", RunStaged}, {"pipelined", RunPipelined}} {
		dir := t.TempDir()
		acct := frame.NewAccountant(0)
		env := &Env{Source: src, Accountant: acct,
			OpMemoryBudget: spillBudget, SpillDir: dir, SpillPartitions: 4}
		res, err := mode.run(job, env)
		if err != nil {
			t.Fatalf("%s/%s: %v", name, mode.name, err)
		}
		res.SortRows()
		sameRowsBytes(t, name+"/"+mode.name, plain, res)
		if wantSpill {
			if res.Stats.SpilledBytes <= 0 {
				t.Errorf("%s/%s: SpilledBytes = %d, want > 0 (budget never hit?)",
					name, mode.name, res.Stats.SpilledBytes)
			}
			if res.Stats.SpillPartitions <= 0 || res.Stats.SpillWaves <= 0 {
				t.Errorf("%s/%s: spill stats partitions=%d waves=%d, want > 0",
					name, mode.name, res.Stats.SpillPartitions, res.Stats.SpillWaves)
			}
		}
		if cur := acct.Current(); cur != 0 {
			t.Errorf("%s/%s: accountant balance = %d after clean end, want 0", name, mode.name, cur)
		}
		checkNoSpillFiles(t, name+"/"+mode.name, dir)
	}
}

func TestSpillGroupByDifferential(t *testing.T) {
	src := bigSource(400)
	runSpillDiff(t, "group-by-1p", scanJob(1, measurementsPath(), bigGroupBy()), src)
	runSpillDiff(t, "group-by-2p", scanJob(2, measurementsPath(), bigGroupBy()), src)
}

func TestSpillTwoStepGroupByDifferential(t *testing.T) {
	// The standard two-step shape groups by date; bigSource gives every pair a
	// distinct date, so both the local and the global tables exceed budget.
	src := bigSource(400)
	runSpillDiff(t, "two-step-gby", twoStepGroupByJob(2, 2), src)
}

func TestSpillSortDifferential(t *testing.T) {
	src := bigSource(400)
	runSpillDiff(t, "sort-1p", scanJob(1, measurementsPath(), bigSortOps()...), src)
	runSpillDiff(t, "sort-2p", scanJob(2, measurementsPath(), bigSortOps()...), src)
}

func TestSpillJoinDifferential(t *testing.T) {
	src := bigSource(400)
	runSpillDiff(t, "join-1p", bigJoinJob(1), src)
	runSpillDiff(t, "join-2p", bigJoinJob(2), src)
}

// TestSpillSortStability: external merge sort must be byte-identical to the
// in-memory stable sort, including the ORDER of duplicate-key rows. The sort
// key (station) has 23 distinct values over 800 rows, so runs are full of
// ties; each row's payload (its unique date) exposes any reordering. A single
// partition end to end makes row order deterministic, so the results compare
// positionally without canonical sorting.
func TestSpillSortStability(t *testing.T) {
	src := bigSource(400)
	job := func() *Job {
		return scanJob(1, measurementsPath(),
			&AssignSpec{Evals: []runtime.Evaluator{
				call("value", col(0), constStr("station")),
				call("value", col(0), constStr("date")),
			}},
			&SortSpec{Keys: []SortDef{{Key: col(1)}}},
			&ProjectSpec{Cols: []int{1, 2}})
	}
	plain, err := RunStaged(job(), &Env{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	spilled, err := RunStaged(job(), &Env{Source: src,
		OpMemoryBudget: spillBudget, SpillDir: dir, SpillPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if spilled.Stats.SpilledBytes <= 0 {
		t.Fatalf("SpilledBytes = %d, want > 0", spilled.Stats.SpilledBytes)
	}
	// No SortRows here: positional comparison checks stability itself.
	sameRowsBytes(t, "sort-stability", plain, spilled)
	checkNoSpillFiles(t, "sort-stability", dir)
}

// TestSpillEagerModeNeverSpills: the eager reference mode keeps decoded
// items, which cannot round-trip through raw-byte spill files; budgets must
// be ignored there rather than corrupt results.
func TestSpillEagerModeNeverSpills(t *testing.T) {
	src := bigSource(100)
	res, err := RunStaged(scanJob(1, measurementsPath(), bigGroupBy()),
		&Env{Source: src, EagerReference: true,
			OpMemoryBudget: spillBudget, SpillDir: t.TempDir(), SpillPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpilledBytes != 0 {
		t.Errorf("eager mode spilled %d bytes, want 0", res.Stats.SpilledBytes)
	}
	if len(res.Rows) != 100 {
		t.Errorf("groups = %d, want 100", len(res.Rows))
	}
}

// TestSpillHygieneAndBalanceOnError injects failures downstream of each
// spilling operator (an out-of-range project fails the first emitted tuple,
// after runs already exist on disk) and mid-scan (a corrupt file aborts the
// input stream). Both executors must surface the error, remove every spill
// file, and return the accountant to zero — in pipelined mode the failure
// also cancels sibling tasks mid-flight, which is the executors'
// cancellation path.
func TestSpillHygieneAndBalanceOnError(t *testing.T) {
	src := bigSource(400)
	boom := &ProjectSpec{Cols: []int{42}}
	joinFail := bigJoinJob(2)
	joinFail.Fragments[2].Ops = []OpSpec{boom}
	corrupt := bigSource(400)
	corrupt.Collections["/sensors"]["zzz-corrupt.json"] = []byte(`{"root": [ {"x": `)
	cases := map[string]struct {
		job *Job
		src *runtime.MemSource
	}{
		"group-by-downstream": {scanJob(2, measurementsPath(), bigGroupBy(), boom), src},
		"sort-downstream": {scanJob(2, measurementsPath(),
			&AssignSpec{Evals: []runtime.Evaluator{call("value", col(0), constStr("station"))}},
			&SortSpec{Keys: []SortDef{{Key: col(1)}}},
			boom), src},
		"join-downstream":     {joinFail, src},
		"group-by-scan-error": {scanJob(2, measurementsPath(), bigGroupBy()), corrupt},
	}
	for name, c := range cases {
		for _, mode := range []struct {
			name string
			run  func(*Job, *Env) (*Result, error)
		}{{"staged", RunStaged}, {"pipelined", RunPipelined}} {
			dir := t.TempDir()
			acct := frame.NewAccountant(0)
			env := &Env{Source: c.src, Accountant: acct,
				OpMemoryBudget: spillBudget, SpillDir: dir, SpillPartitions: 4}
			if _, err := mode.run(c.job, env); err == nil {
				t.Fatalf("%s/%s: expected error", name, mode.name)
			}
			if cur := acct.Current(); cur != 0 {
				t.Errorf("%s/%s: accountant balance = %d after failed run, want 0", name, mode.name, cur)
			}
			checkNoSpillFiles(t, name+"/"+mode.name, dir)
		}
	}
}

// TestSpillUnderForcedHashCollisions forces every key hash to one value:
// grace-hash partitioning cannot split anything by hash, so recursion must
// hit its depth bound and fall back to in-memory processing instead of
// looping forever — and still produce correct results.
func TestSpillUnderForcedHashCollisions(t *testing.T) {
	testHashEncodedField = func([]byte) (uint64, error) { return 42, nil }
	defer func() { testHashEncodedField = nil }()
	src := bigSource(120)
	runSpillDiff(t, "collisions-group-by", scanJob(1, measurementsPath(), bigGroupBy()), src)
	// The join's single-hash guard (maybeSpill: a one-bucket table cannot be
	// split) keeps it in memory under total collision — correctness and
	// hygiene still hold, spilling is just declined.
	runSpillDiffOpt(t, "collisions-join", bigJoinJob(1), src, false)
}

// TestSpillAccountantBalancesWithProfile: the profiling wrappers snapshot
// spill counters at Close; they must not perturb the charge/release pairing
// of the out-of-core paths.
func TestSpillAccountantBalancesWithProfile(t *testing.T) {
	src := bigSource(200)
	jobs := map[string]*Job{
		"group-by": scanJob(2, measurementsPath(), bigGroupBy()),
		"sort":     scanJob(2, measurementsPath(), bigSortOps()...),
		"join":     bigJoinJob(2),
	}
	for name, job := range jobs {
		acct := frame.NewAccountant(0)
		res, err := RunStaged(job, &Env{Source: src, Accountant: acct, Profile: true,
			OpMemoryBudget: spillBudget, SpillDir: t.TempDir(), SpillPartitions: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cur := acct.Current(); cur != 0 {
			t.Errorf("%s: accountant balance = %d, want 0", name, cur)
		}
		var spilled int64
		for _, sp := range res.Profile.Spans {
			spilled += sp.SpilledBytes
		}
		if spilled <= 0 {
			t.Errorf("%s: no profile span reports spilled bytes", name)
		}
		if spilled != res.Stats.SpilledBytes {
			t.Errorf("%s: span spill sum %d != stats %d", name, spilled, res.Stats.SpilledBytes)
		}
	}
}
