package hyracks

import (
	"math/bits"

	"vxq/internal/spill"
)

// This file holds the plumbing the out-of-core operators share: the spill
// configuration carried on TaskCtx, the depth-rotated partition routing, and
// spillParts — a lazily created set of partition writers at one recursion
// depth. The operators themselves (grace-hash group-by and join, external
// merge sort) live in ops.go and join.go.

const (
	// defaultSpillFanout is the partition fan-out of one grace-hash spill
	// wave when Env.SpillPartitions is unset.
	defaultSpillFanout = 8
	// maxSpillDepth bounds grace-hash recursion. A partition still over
	// budget at this depth (pathological key skew or a hash that no rotation
	// can split) is finished in memory — correctness never depends on the
	// budget holding.
	maxSpillDepth = 6
)

// Spill record tags: raw is an unmodified input tuple; partial is a flushed
// group — key fields first, then one item.EncodeSeq'd aggregate snapshot per
// aggregate. Within any one partition file every partial precedes every raw
// record for its key, so replaying a file merges state in original arrival
// order and float accumulation stays bit-identical to the in-memory path.
const (
	spillTagRaw     byte = 0
	spillTagPartial byte = 1
)

func (c *TaskCtx) spillFanout() int {
	if c.SpillFanout > 0 {
		return c.SpillFanout
	}
	return defaultSpillFanout
}

// spillBlockSize sizes one spill stream's buffer so that a full fan-out of
// writers stays well inside the operator budget.
func (c *TaskCtx) spillBlockSize() int {
	bs := spill.DefaultBlockSize
	if c.SpillBudget > 0 {
		if per := int(c.SpillBudget) / (2 * c.spillFanout()); per < bs {
			bs = per
		}
	}
	if bs < spill.MinBlockSize {
		bs = spill.MinBlockSize
	}
	return bs
}

// releaseHold returns previously hold-charged bytes to the accountant before
// Close: the out-of-core operators free their tables (and run buffers)
// mid-run when they spill, which is the whole point of spilling.
func (c *TaskCtx) releaseHold(n int64) {
	if c.RT != nil && c.RT.Accountant != nil && n != 0 {
		c.RT.Accountant.Release(n)
	}
}

// addSpillStats folds an operator's spill counters into the task stats (the
// operators call it from deferred Close blocks so failed jobs count too).
func (c *TaskCtx) addSpillStats(bytes, parts, waves int64) {
	if c.RT == nil || c.RT.Stats == nil {
		return
	}
	st := c.RT.Stats
	st.SpilledBytes += bytes
	st.SpillPartitions += parts
	st.SpillWaves += waves
}

// spillRoute maps a key hash to a partition at the given recursion depth.
// Each depth looks at a rotated window of the same 64-bit hash, so a
// partition that overflows re-splits on fresh bits instead of collapsing
// into one child again.
func spillRoute(h uint64, depth, fanout int) int {
	if r := uint(depth*21) % 64; r != 0 {
		h = bits.RotateLeft64(h, -int(r))
	}
	return int(h % uint64(fanout))
}

// spillParts is one wave of grace-hash partition writers. Writers are created
// on first use (empty partitions cost nothing), their block buffers are
// charged to the accountant while open, and finish/abort is idempotent so an
// operator can always clean up from a deferred block.
type spillParts struct {
	ctx     *TaskCtx
	depth   int
	bsize   int
	ws      []*spill.Writer
	charged int64
	done    bool
}

func newSpillParts(ctx *TaskCtx, depth int) *spillParts {
	return &spillParts{ctx: ctx, depth: depth, bsize: ctx.spillBlockSize(),
		ws: make([]*spill.Writer, ctx.spillFanout())}
}

// write routes one record by its key hash and reports the bytes appended.
func (s *spillParts) write(h uint64, tag byte, fields [][]byte) (int, error) {
	return s.writeTo(spillRoute(h, s.depth, len(s.ws)), tag, fields)
}

// writeTo appends one record to an explicit partition — the join probe side
// uses it to mirror the build side's routing and to skip partitions with no
// build data.
func (s *spillParts) writeTo(p int, tag byte, fields [][]byte) (int, error) {
	w := s.ws[p]
	if w == nil {
		var err error
		w, err = spill.NewWriter(s.ctx.SpillDir, s.bsize)
		if err != nil {
			return 0, err
		}
		s.ws[p] = w
		s.ctx.accountHold(int64(s.bsize))
		s.charged += int64(s.bsize)
	}
	return w.Write(tag, fields)
}

// finish seals every active writer, releasing the buffer charges. The
// returned slice is indexed by partition; empty partitions are nil. On error
// all files (sealed or not) are removed.
func (s *spillParts) finish() ([]*spill.Run, error) {
	if s.done {
		return nil, nil
	}
	s.done = true
	defer s.releaseCharge()
	runs := make([]*spill.Run, len(s.ws))
	var firstErr error
	for i, w := range s.ws {
		if w == nil {
			continue
		}
		if firstErr != nil {
			w.Abort()
			continue
		}
		r, err := w.Finish()
		if err != nil {
			firstErr = err
			spill.RemoveRuns(runs)
			continue
		}
		runs[i] = r
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return runs, nil
}

// abort discards every active writer and its file.
func (s *spillParts) abort() {
	if s.done {
		return
	}
	s.done = true
	for _, w := range s.ws {
		if w != nil {
			w.Abort()
		}
	}
	s.releaseCharge()
}

func (s *spillParts) releaseCharge() {
	s.ctx.releaseHold(s.charged)
	s.charged = 0
}

// countRuns reports how many partitions actually received data.
func countRuns(runs []*spill.Run) int64 {
	var n int64
	for _, r := range runs {
		if r != nil {
			n++
		}
	}
	return n
}

// chainKeyHash combines already-encoded key fields exactly like
// keyEncoder.resolve does, so a partial record (whose original raw tuple is
// gone) routes and buckets identically to the raw tuples of its key.
func chainKeyHash(fields [][]byte) (uint64, error) {
	var h uint64 = 1469598103934665603
	for _, f := range fields {
		hf, err := hashEncodedField(f)
		if err != nil {
			return 0, err
		}
		h = h*1099511628211 ^ hf
	}
	return h, nil
}
