package hyracks

import (
	"sort"

	"fmt"

	"vxq/internal/frame"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

// OpSpec describes one physical operator of a fragment chain. Build
// instantiates the operator's per-partition runtime as a Writer that pushes
// its output to out.
type OpSpec interface {
	Name() string
	Build(ctx *TaskCtx, out Writer) Writer
}

// --- ASSIGN ---------------------------------------------------------------

// AssignSpec evaluates scalar expressions over each input tuple and appends
// the results as new fields (the Hyracks ASSIGN operator of §3.2).
// A non-nil OutCols projects the output tuple (a fused PROJECT), so dead
// fields are dropped before they are copied downstream.
type AssignSpec struct {
	Evals   []runtime.Evaluator
	OutCols []int
	Desc    string
}

// Name implements OpSpec.
func (s *AssignSpec) Name() string { return "ASSIGN " + s.Desc }

// Build implements OpSpec.
func (s *AssignSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &assignOp{ctx: ctx, spec: s, out: out}
}

type assignOp struct {
	ctx  *TaskCtx
	spec *AssignSpec
	out  Writer
	b    *frameBuilder
}

func (o *assignOp) Open() error {
	o.b = newFrameBuilder(o.ctx, o.out)
	return o.out.Open()
}

func (o *assignOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	var out [][]byte // per-frame scratch; emit copies the bytes it frames
	return forEachTuple(fr, func(fields []item.Sequence, raw [][]byte) error {
		out = append(out[:0], raw...)
		for _, ev := range o.spec.Evals {
			v, err := ev.Eval(o.ctx.RT, fields)
			if err != nil {
				return err
			}
			fields = append(fields, v)
			out = append(out, item.EncodeSeq(nil, v))
		}
		outFields, err := applyOutCols(out, o.spec.OutCols)
		if err != nil {
			return err
		}
		return o.b.emit(outFields)
	})
}

func (o *assignOp) Close() error {
	if err := o.b.flush(); err != nil {
		return err
	}
	return o.out.Close()
}

// --- SELECT ---------------------------------------------------------------

// SelectSpec filters tuples by the effective boolean value of a condition.
// A non-nil OutCols projects the surviving tuples (a fused PROJECT).
type SelectSpec struct {
	Cond    runtime.Evaluator
	OutCols []int
	Desc    string
}

// Name implements OpSpec.
func (s *SelectSpec) Name() string { return "SELECT " + s.Desc }

// Build implements OpSpec.
func (s *SelectSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &selectOp{ctx: ctx, spec: s, out: out}
}

type selectOp struct {
	ctx  *TaskCtx
	spec *SelectSpec
	out  Writer
	b    *frameBuilder
}

func (o *selectOp) Open() error {
	o.b = newFrameBuilder(o.ctx, o.out)
	return o.out.Open()
}

func (o *selectOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	return forEachTuple(fr, func(fields []item.Sequence, raw [][]byte) error {
		v, err := o.spec.Cond.Eval(o.ctx.RT, fields)
		if err != nil {
			return err
		}
		if !item.EffectiveBoolean(v) {
			return nil
		}
		out, err := applyOutCols(raw, o.spec.OutCols)
		if err != nil {
			return err
		}
		return o.b.emit(out)
	})
}

func (o *selectOp) Close() error {
	if err := o.b.flush(); err != nil {
		return err
	}
	return o.out.Close()
}

// --- UNNEST ---------------------------------------------------------------

// UnnestSpec evaluates an unnesting expression per input tuple and emits one
// output tuple per item of the result, appending the item as a new field.
// A non-nil OutCols projects each output tuple (a fused PROJECT): crucial
// for not copying a large unnested field into every emitted tuple.
type UnnestSpec struct {
	Expr    runtime.Evaluator
	OutCols []int
	Desc    string
}

// Name implements OpSpec.
func (s *UnnestSpec) Name() string { return "UNNEST " + s.Desc }

// Build implements OpSpec.
func (s *UnnestSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &unnestOp{ctx: ctx, spec: s, out: out}
}

type unnestOp struct {
	ctx  *TaskCtx
	spec *UnnestSpec
	out  Writer
	b    *frameBuilder
}

func (o *unnestOp) Open() error {
	o.b = newFrameBuilder(o.ctx, o.out)
	return o.out.Open()
}

func (o *unnestOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	var (
		out [][]byte // per-frame scratch; emit copies the bytes it frames
		enc []byte
	)
	return forEachTuple(fr, func(fields []item.Sequence, raw [][]byte) error {
		v, err := o.spec.Expr.Eval(o.ctx.RT, fields)
		if err != nil {
			return err
		}
		for _, it := range v {
			enc = item.EncodeSeq(enc[:0], item.Single(it))
			out = append(out[:0], raw...)
			out = append(out, enc)
			outFields, err := applyOutCols(out, o.spec.OutCols)
			if err != nil {
				return err
			}
			if err := o.b.emit(outFields); err != nil {
				return err
			}
		}
		return nil
	})
}

func (o *unnestOp) Close() error {
	if err := o.b.flush(); err != nil {
		return err
	}
	return o.out.Close()
}

// applyOutCols projects raw fields to the given columns; a nil cols is the
// identity.
func applyOutCols(raw [][]byte, cols []int) ([][]byte, error) {
	if cols == nil {
		return raw, nil
	}
	out := make([][]byte, len(cols))
	for i, c := range cols {
		if c < 0 || c >= len(raw) {
			return nil, fmt.Errorf("hyracks: fused project column %d out of range [0,%d)", c, len(raw))
		}
		out[i] = raw[c]
	}
	return out, nil
}

// --- PROJECT --------------------------------------------------------------

// ProjectSpec keeps only the listed columns, in order.
type ProjectSpec struct {
	Cols []int
}

// Name implements OpSpec.
func (s *ProjectSpec) Name() string { return fmt.Sprintf("PROJECT %v", s.Cols) }

// Build implements OpSpec.
func (s *ProjectSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &projectOp{ctx: ctx, spec: s, out: out}
}

type projectOp struct {
	ctx  *TaskCtx
	spec *ProjectSpec
	out  Writer
	b    *frameBuilder
}

func (o *projectOp) Open() error {
	o.b = newFrameBuilder(o.ctx, o.out)
	return o.out.Open()
}

func (o *projectOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	// Projection never looks at field values: route raw bytes only, through
	// one scratch slice reused for every tuple of the frame.
	outFields := make([][]byte, len(o.spec.Cols))
	return forEachTupleRaw(fr, func(raw [][]byte) error {
		for i, c := range o.spec.Cols {
			if c < 0 || c >= len(raw) {
				return fmt.Errorf("hyracks: project column %d out of range [0,%d)", c, len(raw))
			}
			outFields[i] = raw[c]
		}
		return o.b.emit(outFields)
	})
}

func (o *projectOp) Close() error {
	if err := o.b.flush(); err != nil {
		return err
	}
	return o.out.Close()
}

// --- AGGREGATE ------------------------------------------------------------

// AggDef is one aggregate computation: an aggregate function applied to an
// argument expression.
type AggDef struct {
	Fn  *runtime.AggFunc
	Arg runtime.Evaluator
}

// AggregateSpec folds the whole input into a single output tuple holding one
// field per aggregate (the Hyracks AGGREGATE operator of §3.2).
type AggregateSpec struct {
	Aggs []AggDef
	Desc string
}

// Name implements OpSpec.
func (s *AggregateSpec) Name() string { return "AGGREGATE " + s.Desc }

// Build implements OpSpec.
func (s *AggregateSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &aggregateOp{ctx: ctx, spec: s, out: out}
}

type aggregateOp struct {
	ctx    *TaskCtx
	spec   *AggregateSpec
	out    Writer
	states []runtime.AggState
}

func (o *aggregateOp) Open() error {
	o.states = make([]runtime.AggState, len(o.spec.Aggs))
	for i, a := range o.spec.Aggs {
		o.states[i] = a.Fn.New()
	}
	return o.out.Open()
}

func (o *aggregateOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	return forEachTuple(fr, func(fields []item.Sequence, _ [][]byte) error {
		for i, a := range o.spec.Aggs {
			v, err := a.Arg.Eval(o.ctx.RT, fields)
			if err != nil {
				return err
			}
			if err := o.states[i].Step(v); err != nil {
				return err
			}
		}
		return nil
	})
}

func (o *aggregateOp) Close() error {
	b := newFrameBuilder(o.ctx, o.out)
	outFields := make([][]byte, len(o.states))
	for i, st := range o.states {
		v, err := st.Finish()
		if err != nil {
			return err
		}
		outFields[i] = item.EncodeSeq(nil, v)
	}
	if err := b.emit(outFields); err != nil {
		return err
	}
	if err := b.flush(); err != nil {
		return err
	}
	return o.out.Close()
}

// --- GROUP-BY -------------------------------------------------------------

// GroupBySpec is the hash-based GROUP-BY operator: tuples are grouped by the
// key expressions; each group runs the aggregate definitions; at close one
// tuple per group is emitted carrying the key fields then the aggregate
// fields.
type GroupBySpec struct {
	Keys []runtime.Evaluator
	Aggs []AggDef
	Desc string
}

// Name implements OpSpec.
func (s *GroupBySpec) Name() string { return "GROUP-BY " + s.Desc }

// Build implements OpSpec.
func (s *GroupBySpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &groupByOp{ctx: ctx, spec: s, out: out}
}

type group struct {
	keyFields [][]byte
	keySeqs   []item.Sequence
	states    []runtime.AggState
	next      *group // hash-chain for collision handling
}

type groupByOp struct {
	ctx    *TaskCtx
	spec   *GroupBySpec
	out    Writer
	table  map[uint64]*group
	order  []*group // insertion order for deterministic output
	memory int64
}

func (o *groupByOp) Open() error {
	o.table = make(map[uint64]*group)
	return o.out.Open()
}

func (o *groupByOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	// Keys are evaluated into one scratch slice per frame; it is copied only
	// when a new group is created (the evaluated sequences themselves are
	// fresh per tuple and never alias the frame, so retaining them is safe).
	keyScratch := make([]item.Sequence, len(o.spec.Keys))
	return forEachTuple(fr, func(fields []item.Sequence, _ [][]byte) error {
		var h uint64 = 1469598103934665603
		for i, k := range o.spec.Keys {
			v, err := k.Eval(o.ctx.RT, fields)
			if err != nil {
				return err
			}
			keyScratch[i] = v
			h = h*1099511628211 ^ item.HashSeq(v)
		}
		g := o.lookup(h, keyScratch)
		if g == nil {
			keySeqs := append([]item.Sequence(nil), keyScratch...)
			g = &group{keySeqs: keySeqs, states: make([]runtime.AggState, len(o.spec.Aggs))}
			g.keyFields = frame.EncodeFields(keySeqs)
			for i, a := range o.spec.Aggs {
				g.states[i] = a.Fn.New()
			}
			g.next = o.table[h]
			o.table[h] = g
			o.order = append(o.order, g)
			var sz int64 = 64
			for _, kf := range g.keyFields {
				sz += int64(len(kf))
			}
			o.memory += sz
			o.ctx.accountHold(sz) // charged until close; released in Close
		}
		for i, a := range o.spec.Aggs {
			v, err := a.Arg.Eval(o.ctx.RT, fields)
			if err != nil {
				return err
			}
			before := g.states[i].Size()
			if err := g.states[i].Step(v); err != nil {
				return err
			}
			if grew := g.states[i].Size() - before; grew > 0 {
				o.memory += grew
				o.ctx.accountHold(grew)
			}
		}
		return nil
	})
}

func (o *groupByOp) lookup(h uint64, keySeqs []item.Sequence) *group {
	for g := o.table[h]; g != nil; g = g.next {
		match := true
		for i := range keySeqs {
			if !item.EqualSeq(g.keySeqs[i], keySeqs[i]) {
				match = false
				break
			}
		}
		if match {
			return g
		}
	}
	return nil
}

func (o *groupByOp) Close() error {
	defer func() {
		if o.ctx.RT != nil && o.ctx.RT.Accountant != nil {
			o.ctx.RT.Accountant.Release(o.memory)
		}
		o.memory = 0
	}()
	b := newFrameBuilder(o.ctx, o.out)
	for _, g := range o.order {
		outFields := append([][]byte(nil), g.keyFields...)
		for _, st := range g.states {
			v, err := st.Finish()
			if err != nil {
				return err
			}
			outFields = append(outFields, item.EncodeSeq(nil, v))
		}
		if err := b.emit(outFields); err != nil {
			return err
		}
	}
	if err := b.flush(); err != nil {
		return err
	}
	return o.out.Close()
}

// accountHold charges bytes to the accountant without pairing the release:
// it is the charge half of the hold-until-Close discipline that blocking
// operators (group-by, sort) follow for retained state. The operator tracks
// everything it charged in a running total and releases that total exactly
// once, in a deferred block at Close, so the balance returns to zero on both
// the clean and the error path.
func (c *TaskCtx) accountHold(n int64) {
	if c.RT != nil && c.RT.Accountant != nil && n != 0 {
		c.RT.Accountant.Allocate(n)
	}
}

// --- SUBPLAN --------------------------------------------------------------

// SubplanSpec runs a nested operator chain once per input tuple (the Hyracks
// SUBPLAN of §3.2: an AGGREGATE over an UNNEST). The nested chain sees the
// single input tuple as its whole input and must end in exactly one output
// tuple (the nested AGGREGATE result); that tuple's fields are appended to
// the input tuple.
type SubplanSpec struct {
	Nested []OpSpec
	Desc   string
}

// Name implements OpSpec.
func (s *SubplanSpec) Name() string { return "SUBPLAN " + s.Desc }

// Build implements OpSpec.
func (s *SubplanSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &subplanOp{ctx: ctx, spec: s, out: out}
}

type subplanOp struct {
	ctx  *TaskCtx
	spec *SubplanSpec
	out  Writer
	b    *frameBuilder
}

func (o *subplanOp) Open() error {
	o.b = newFrameBuilder(o.ctx, o.out)
	return o.out.Open()
}

func (o *subplanOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	return forEachTuple(fr, func(_ []item.Sequence, raw [][]byte) error {
		sink := &CollectSink{}
		w := BuildChain(o.ctx, o.spec.Nested, recycleSink{ctx: o.ctx, w: sink})
		if err := w.Open(); err != nil {
			return err
		}
		inner := o.ctx.newFrame()
		inner.AppendTuple(raw)
		if err := w.Push(inner); err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		if len(sink.Rows) != 1 {
			return fmt.Errorf("hyracks: subplan produced %d tuples, want 1", len(sink.Rows))
		}
		outFields := append([][]byte(nil), raw...)
		outFields = append(outFields, frame.EncodeFields(sink.Rows[0])...)
		return o.b.emit(outFields)
	})
}

func (o *subplanOp) Close() error {
	if err := o.b.flush(); err != nil {
		return err
	}
	return o.out.Close()
}

// BuildChain composes a chain of operator specs into a single Writer whose
// final output goes to terminal. specs[0] is the first operator the input
// flows through.
func BuildChain(ctx *TaskCtx, specs []OpSpec, terminal Writer) Writer {
	w := terminal
	for i := len(specs) - 1; i >= 0; i-- {
		w = specs[i].Build(ctx, w)
	}
	return w
}

// --- SORT -------------------------------------------------------------------

// SortDef is one sort key: an evaluator plus direction.
type SortDef struct {
	Key  runtime.Evaluator
	Desc bool
}

// SortSpec materializes its whole input, orders it by the sort keys (stable,
// so ties keep arrival order), and emits the sorted tuples at close. It
// implements the XQuery order-by clause.
type SortSpec struct {
	Keys []SortDef
	Desc string
}

// Name implements OpSpec.
func (s *SortSpec) Name() string { return "ORDER-BY " + s.Desc }

// Build implements OpSpec.
func (s *SortSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &sortOp{ctx: ctx, spec: s, out: out}
}

type sortRow struct {
	keys []item.Sequence
	raw  [][]byte
}

type sortOp struct {
	ctx    *TaskCtx
	spec   *SortSpec
	out    Writer
	rows   []sortRow
	memory int64
}

func (o *sortOp) Open() error { return o.out.Open() }

func (o *sortOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	return forEachTuple(fr, func(fields []item.Sequence, raw [][]byte) error {
		keys := make([]item.Sequence, len(o.spec.Keys))
		for i, k := range o.spec.Keys {
			v, err := k.Key.Eval(o.ctx.RT, fields)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		stored := make([][]byte, len(raw))
		var sz int64 = 48
		for i, f := range raw {
			stored[i] = append([]byte(nil), f...)
			sz += int64(len(f))
		}
		// The evaluated key sequences are retained until Close too — charge
		// them, not just the raw tuple bytes.
		for _, k := range keys {
			sz += item.SizeBytesSeq(k)
		}
		o.rows = append(o.rows, sortRow{keys: keys, raw: stored})
		o.memory += sz
		o.ctx.accountHold(sz)
		return nil
	})
}

func (o *sortOp) Close() error {
	defer func() {
		if o.ctx.RT != nil && o.ctx.RT.Accountant != nil {
			o.ctx.RT.Accountant.Release(o.memory)
		}
		o.memory = 0
	}()
	sort.SliceStable(o.rows, func(i, j int) bool {
		for k := range o.spec.Keys {
			c := item.CompareSeq(o.rows[i].keys[k], o.rows[j].keys[k])
			if o.spec.Keys[k].Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	b := newFrameBuilder(o.ctx, o.out)
	for _, r := range o.rows {
		if err := b.emit(r.raw); err != nil {
			return err
		}
	}
	o.rows = nil
	if err := b.flush(); err != nil {
		return err
	}
	return o.out.Close()
}
