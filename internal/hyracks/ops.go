package hyracks

import (
	"container/heap"
	"io"
	"sort"

	"fmt"

	"vxq/internal/frame"
	"vxq/internal/item"
	"vxq/internal/runtime"
	"vxq/internal/spill"
)

// OpSpec describes one physical operator of a fragment chain. Build
// instantiates the operator's per-partition runtime as a Writer that pushes
// its output to out.
type OpSpec interface {
	Name() string
	Build(ctx *TaskCtx, out Writer) Writer
}

// --- ASSIGN ---------------------------------------------------------------

// AssignSpec evaluates scalar expressions over each input tuple and appends
// the results as new fields (the Hyracks ASSIGN operator of §3.2).
// A non-nil OutCols projects the output tuple (a fused PROJECT), so dead
// fields are dropped before they are copied downstream.
type AssignSpec struct {
	Evals   []runtime.Evaluator
	OutCols []int
	Desc    string
}

// Name implements OpSpec.
func (s *AssignSpec) Name() string { return "ASSIGN " + s.Desc }

// Build implements OpSpec.
func (s *AssignSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &assignOp{ctx: ctx, spec: s, out: out}
}

type assignOp struct {
	ctx  *TaskCtx
	spec *AssignSpec
	out  Writer
	b    *frameBuilder
}

func (o *assignOp) Open() error {
	o.b = newFrameBuilder(o.ctx, o.out)
	return o.out.Open()
}

func (o *assignOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	// Per-frame scratch: existing fields pass through as raw bytes; computed
	// fields are encoded into one reusable buffer (emit copies what it
	// frames, so both are free again after each tuple).
	var (
		out  [][]byte
		proj [][]byte
		enc  []byte
	)
	return forEachTupleView(fr, o.ctx.EagerDecode, func(lt *frame.LazyTuple) error {
		out = append(out[:0], lt.Raw()...)
		enc = enc[:0]
		for _, ev := range o.spec.Evals {
			v, err := ev.Eval(o.ctx.RT, lt)
			if err != nil {
				return err
			}
			lt.Append(v) // later evaluators see the appended field
			start := len(enc)
			enc = item.EncodeSeq(enc, v)
			out = append(out, enc[start:])
		}
		// enc may have been reallocated while growing; earlier slices still
		// point at live (former) backing arrays, so they stay valid until
		// the next tuple resets the buffer.
		outFields, err := applyOutColsInto(proj, out, o.spec.OutCols)
		if err != nil {
			return err
		}
		proj = outFields[:0]
		return o.b.emit(outFields)
	})
}

func (o *assignOp) Close() error {
	// Close must cascade even when the flush fails: a downstream blocking
	// operator releases its held memory in its own Close, so skipping it on
	// the error path would leave the accountant imbalanced.
	err := o.b.flush()
	if cerr := o.out.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- SELECT ---------------------------------------------------------------

// SelectSpec filters tuples by the effective boolean value of a condition.
// A non-nil OutCols projects the surviving tuples (a fused PROJECT).
type SelectSpec struct {
	Cond    runtime.Evaluator
	OutCols []int
	Desc    string
}

// Name implements OpSpec.
func (s *SelectSpec) Name() string { return "SELECT " + s.Desc }

// Build implements OpSpec.
func (s *SelectSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &selectOp{ctx: ctx, spec: s, out: out}
}

type selectOp struct {
	ctx  *TaskCtx
	spec *SelectSpec
	out  Writer
	b    *frameBuilder
}

func (o *selectOp) Open() error {
	o.b = newFrameBuilder(o.ctx, o.out)
	return o.out.Open()
}

func (o *selectOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	var proj [][]byte
	return forEachTupleView(fr, o.ctx.EagerDecode, func(lt *frame.LazyTuple) error {
		v, err := o.spec.Cond.Eval(o.ctx.RT, lt)
		if err != nil {
			return err
		}
		if !item.EffectiveBoolean(v) {
			return nil
		}
		out, err := applyOutColsInto(proj, lt.Raw(), o.spec.OutCols)
		if err != nil {
			return err
		}
		proj = out[:0]
		return o.b.emit(out)
	})
}

func (o *selectOp) Close() error {
	// Cascade on error: see assignOp.Close.
	err := o.b.flush()
	if cerr := o.out.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- UNNEST ---------------------------------------------------------------

// UnnestSpec evaluates an unnesting expression per input tuple and emits one
// output tuple per item of the result, appending the item as a new field.
// A non-nil OutCols projects each output tuple (a fused PROJECT): crucial
// for not copying a large unnested field into every emitted tuple.
type UnnestSpec struct {
	Expr    runtime.Evaluator
	OutCols []int
	Desc    string
}

// Name implements OpSpec.
func (s *UnnestSpec) Name() string { return "UNNEST " + s.Desc }

// Build implements OpSpec.
func (s *UnnestSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &unnestOp{ctx: ctx, spec: s, out: out}
}

type unnestOp struct {
	ctx  *TaskCtx
	spec *UnnestSpec
	out  Writer
	b    *frameBuilder
}

func (o *unnestOp) Open() error {
	o.b = newFrameBuilder(o.ctx, o.out)
	return o.out.Open()
}

func (o *unnestOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	var (
		out  [][]byte // per-frame scratch; emit copies the bytes it frames
		proj [][]byte
		enc  []byte
	)
	return forEachTupleView(fr, o.ctx.EagerDecode, func(lt *frame.LazyTuple) error {
		v, err := o.spec.Expr.Eval(o.ctx.RT, lt)
		if err != nil {
			return err
		}
		for _, it := range v {
			enc = item.EncodeSeq(enc[:0], item.Single(it))
			out = append(out[:0], lt.Raw()...)
			out = append(out, enc)
			outFields, err := applyOutColsInto(proj, out, o.spec.OutCols)
			if err != nil {
				return err
			}
			proj = outFields[:0]
			if err := o.b.emit(outFields); err != nil {
				return err
			}
		}
		return nil
	})
}

func (o *unnestOp) Close() error {
	// Cascade on error: see assignOp.Close.
	err := o.b.flush()
	if cerr := o.out.Close(); err == nil {
		err = cerr
	}
	return err
}

// applyOutColsInto projects raw fields to the given columns, reusing dst's
// capacity; a nil cols is the identity (raw is returned, dst untouched).
func applyOutColsInto(dst [][]byte, raw [][]byte, cols []int) ([][]byte, error) {
	if cols == nil {
		return raw, nil
	}
	dst = dst[:0]
	for _, c := range cols {
		if c < 0 || c >= len(raw) {
			return nil, fmt.Errorf("hyracks: fused project column %d out of range [0,%d)", c, len(raw))
		}
		dst = append(dst, raw[c])
	}
	return dst, nil
}

// --- PROJECT --------------------------------------------------------------

// ProjectSpec keeps only the listed columns, in order.
type ProjectSpec struct {
	Cols []int
}

// Name implements OpSpec.
func (s *ProjectSpec) Name() string { return fmt.Sprintf("PROJECT %v", s.Cols) }

// Build implements OpSpec.
func (s *ProjectSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &projectOp{ctx: ctx, spec: s, out: out}
}

type projectOp struct {
	ctx  *TaskCtx
	spec *ProjectSpec
	out  Writer
	b    *frameBuilder
}

func (o *projectOp) Open() error {
	o.b = newFrameBuilder(o.ctx, o.out)
	return o.out.Open()
}

func (o *projectOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	// Projection never looks at field values: route raw bytes only, through
	// one scratch slice reused for every tuple of the frame.
	outFields := make([][]byte, len(o.spec.Cols))
	return forEachTupleRaw(fr, func(raw [][]byte) error {
		for i, c := range o.spec.Cols {
			if c < 0 || c >= len(raw) {
				return fmt.Errorf("hyracks: project column %d out of range [0,%d)", c, len(raw))
			}
			outFields[i] = raw[c]
		}
		return o.b.emit(outFields)
	})
}

func (o *projectOp) Close() error {
	// Cascade on error: see assignOp.Close.
	err := o.b.flush()
	if cerr := o.out.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- AGGREGATE ------------------------------------------------------------

// AggDef is one aggregate computation: an aggregate function applied to an
// argument expression.
type AggDef struct {
	Fn  *runtime.AggFunc
	Arg runtime.Evaluator
}

// countFastCols maps each aggregate to the raw column its argument reads,
// when the fast path applies: the argument is a plain column reference and
// the aggregate state only counts items (runtime.CountStepper). Such
// aggregates step on item.SeqCountEncoded of the raw field — one uvarint
// read instead of a field decode. -1 disables the fast path.
func countFastCols(aggs []AggDef) []int {
	cols := make([]int, len(aggs))
	for i, a := range aggs {
		cols[i] = -1
		ce, ok := a.Arg.(runtime.ColumnEval)
		if !ok {
			continue
		}
		if _, ok := a.Fn.New().(runtime.CountStepper); ok {
			cols[i] = ce.Col
		}
	}
	return cols
}

// stepStates folds one tuple into a row of aggregate states. fastCols
// enables the encoded count fast path (nil or -1 entries evaluate the
// argument normally). hold, when non-nil, is charged with any state growth.
func stepStates(ctx *TaskCtx, aggs []AggDef, fastCols []int, states []runtime.AggState, lt *frame.LazyTuple, hold func(int64)) error {
	for i := range aggs {
		st := states[i]
		var before int64
		if hold != nil {
			before = st.Size()
		}
		if c := colOf(fastCols, i); c >= 0 && c < lt.RawFieldCount() {
			n, err := item.SeqCountEncoded(lt.RawField(c))
			if err != nil {
				return err
			}
			if err := st.(runtime.CountStepper).StepCount(n); err != nil {
				return err
			}
		} else {
			v, err := aggs[i].Arg.Eval(ctx.RT, lt)
			if err != nil {
				return err
			}
			if err := st.Step(v); err != nil {
				return err
			}
		}
		if hold != nil {
			if grew := st.Size() - before; grew > 0 {
				hold(grew)
			}
		}
	}
	return nil
}

func colOf(cols []int, i int) int {
	if cols == nil {
		return -1
	}
	return cols[i]
}

// AggregateSpec folds the whole input into a single output tuple holding one
// field per aggregate (the Hyracks AGGREGATE operator of §3.2).
type AggregateSpec struct {
	Aggs []AggDef
	Desc string
}

// Name implements OpSpec.
func (s *AggregateSpec) Name() string { return "AGGREGATE " + s.Desc }

// Build implements OpSpec.
func (s *AggregateSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &aggregateOp{ctx: ctx, spec: s, out: out}
}

type aggregateOp struct {
	ctx      *TaskCtx
	spec     *AggregateSpec
	out      Writer
	states   []runtime.AggState
	fastCols []int
}

func (o *aggregateOp) Open() error {
	o.states = make([]runtime.AggState, len(o.spec.Aggs))
	for i, a := range o.spec.Aggs {
		o.states[i] = a.Fn.New()
	}
	if !o.ctx.EagerDecode {
		o.fastCols = countFastCols(o.spec.Aggs)
	}
	return o.out.Open()
}

func (o *aggregateOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	return forEachTupleView(fr, o.ctx.EagerDecode, func(lt *frame.LazyTuple) error {
		return stepStates(o.ctx, o.spec.Aggs, o.fastCols, o.states, lt, nil)
	})
}

func (o *aggregateOp) Close() error {
	b := newFrameBuilder(o.ctx, o.out)
	err := func() error {
		outFields := make([][]byte, len(o.states))
		for i, st := range o.states {
			v, err := st.Finish()
			if err != nil {
				return err
			}
			outFields[i] = item.EncodeSeq(nil, v)
		}
		if err := b.emit(outFields); err != nil {
			return err
		}
		return b.flush()
	}()
	if err != nil {
		b.discard()
	}
	// Cascade on error: see assignOp.Close.
	if cerr := o.out.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- GROUP-BY -------------------------------------------------------------

// GroupBySpec is the hash-based GROUP-BY operator: tuples are grouped by the
// key expressions; each group runs the aggregate definitions; at close one
// tuple per group is emitted carrying the key fields then the aggregate
// fields.
//
// The default implementation works entirely in the encoded domain: key
// fields are resolved to raw encoded bytes (sliced from the tuple for
// column keys), hashed with item.HashEncoded, matched byte-wise against the
// bucket chain (item.EqualEncoded on byte mismatch), and interned into a
// per-operator arena when a group is created. Tuples whose keys hit an
// existing group touch no decoded items at all. TaskCtx.EagerDecode selects
// the decoded-sequence reference implementation instead.
type GroupBySpec struct {
	Keys []runtime.Evaluator
	Aggs []AggDef
	Desc string
}

// Name implements OpSpec.
func (s *GroupBySpec) Name() string { return "GROUP-BY " + s.Desc }

// Build implements OpSpec.
func (s *GroupBySpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &groupByOp{ctx: ctx, spec: s, out: out}
}

// egroup is one group of the encoded-mode table.
type egroup struct {
	keyFields [][]byte // arena-interned encoded key fields
	states    []runtime.AggState
	next      *egroup // hash-chain for collision handling
}

// group is one group of the eager reference table.
type group struct {
	keyFields [][]byte
	keySeqs   []item.Sequence
	states    []runtime.AggState
	next      *group // hash-chain for collision handling
}

type groupByOp struct {
	ctx  *TaskCtx
	spec *GroupBySpec
	out  Writer

	// Encoded mode.
	keys     *keyEncoder
	fastCols []int
	etable   map[uint64]*egroup
	eorder   []*egroup // insertion order for deterministic output
	arena    byteArena

	// Eager reference mode.
	eager      bool
	table      map[uint64]*group
	order      []*group // insertion order for deterministic output
	keyScratch []item.Sequence

	memory   int64
	tableMem int64 // the part of memory held by the table + arena (freed on spill)

	// Out-of-core state (encoded mode only; see spillops.go). Once the held
	// table exceeds budget, live groups flush to wave-0 partitions as partial
	// records and the rest of the input streams to disk raw (grace hash).
	budget      int64       // per-operator byte budget; 0 = never spill
	spill       *spillParts // non-nil once the operator went out of core
	spilled     int64
	spillParted int64
	spillWaves  int64

	// Profile counters (see profExtras).
	memPeak    int64
	collisions int64
	arenaBytes int64
}

// hold charges sz bytes of retained state (released once at Close) and
// tracks the held-memory high-water the profiler reports.
func (o *groupByOp) hold(sz int64) {
	o.memory += sz
	o.tableMem += sz
	if o.memory > o.memPeak {
		o.memPeak = o.memory
	}
	o.ctx.accountHold(sz)
}

// profExtras implements opStatser.
func (o *groupByOp) profExtras(x *opExtras) {
	x.memPeak = o.memPeak
	x.hashCollisions = o.collisions
	x.arenaBytes = o.arenaBytes
	x.spilledBytes = o.spilled
	x.spillPartitions = o.spillParted
	x.spillWaves = o.spillWaves
}

func (o *groupByOp) Open() error {
	o.eager = o.ctx.EagerDecode
	if o.eager {
		o.table = make(map[uint64]*group)
	} else {
		o.etable = make(map[uint64]*egroup)
		o.keys = newKeyEncoder(o.spec.Keys)
		o.fastCols = countFastCols(o.spec.Aggs)
		o.keyScratch = nil
		o.budget = o.ctx.SpillBudget
		// Spilling snapshots and re-merges every aggregate state; an
		// aggregate that cannot pins the operator to the in-memory path.
		for _, a := range o.spec.Aggs {
			if _, ok := a.Fn.New().(runtime.SpillableState); !ok {
				o.budget = 0
				break
			}
		}
	}
	return o.out.Open()
}

func (o *groupByOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	if o.eager {
		return o.pushEager(fr)
	}
	return forEachTupleView(fr, false, func(lt *frame.LazyTuple) error {
		kf, h, err := o.keys.resolve(o.ctx, lt)
		if err != nil {
			return err
		}
		if o.spill != nil {
			// Out of core: the table stays flushed, every further tuple
			// routes to its partition raw (classic grace hash — one wave).
			n, werr := o.spill.write(h, spillTagRaw, lt.Raw())
			o.spilled += int64(n)
			return werr
		}
		g, err := o.elookup(h, kf)
		if err != nil {
			return err
		}
		if g == nil {
			g = o.newGroup(h, kf)
		}
		if err := stepStates(o.ctx, o.spec.Aggs, o.fastCols, g.states, lt, o.hold); err != nil {
			return err
		}
		return o.maybeSpill()
	})
}

// newGroup interns the key bytes in the arena, charges the hold (the arena
// reports whole-chunk reservations as they happen, so interned keys are
// charged like the other holds), and chains the fresh group into the table.
func (o *groupByOp) newGroup(h uint64, kf [][]byte) *egroup {
	stored := make([][]byte, len(kf))
	var sz int64 = 64
	for i, f := range kf {
		cp, grew := o.arena.copy(f)
		stored[i] = cp
		sz += grew
	}
	g := &egroup{keyFields: stored, states: make([]runtime.AggState, len(o.spec.Aggs)), next: o.etable[h]}
	for i, a := range o.spec.Aggs {
		g.states[i] = a.Fn.New()
	}
	o.etable[h] = g
	o.eorder = append(o.eorder, g)
	o.hold(sz) // charged until close (or until the table spills)
	return g
}

// maybeSpill takes the operator out of core once the held table exceeds its
// budget. A single group can never be split by partitioning (and its state
// is at least output-sized anyway), so it stays in memory.
func (o *groupByOp) maybeSpill() error {
	if o.budget <= 0 || o.spill != nil || o.memory <= o.budget || len(o.eorder) < 2 {
		return nil
	}
	o.spill = newSpillParts(o.ctx, 0)
	o.spillWaves++
	return o.flushGroups(o.spill)
}

// flushGroups writes every live group as a partial record — key fields, then
// one item.EncodeSeq'd aggregate snapshot per aggregate — routed by the same
// chained key hash raw tuples use, then drops the table. A key has exactly
// one partial per wave and it lands in its partition file before any of the
// key's raw records, so replaying the file merges aggregate state in original
// arrival order (float sums stay bit-identical to the in-memory path).
func (o *groupByOp) flushGroups(ps *spillParts) error {
	var fields [][]byte
	for _, g := range o.eorder {
		fields = append(fields[:0], g.keyFields...)
		for _, st := range g.states {
			snap, err := st.(runtime.SpillableState).Snapshot()
			if err != nil {
				return err
			}
			fields = append(fields, item.EncodeSeq(nil, snap))
		}
		h, err := chainKeyHash(g.keyFields)
		if err != nil {
			return err
		}
		n, werr := ps.write(h, spillTagPartial, fields)
		o.spilled += int64(n)
		if werr != nil {
			return werr
		}
	}
	o.resetTable()
	return nil
}

// resetTable drops every group and returns the table's held bytes (arena
// growth included — it was charged through hold) to the accountant.
func (o *groupByOp) resetTable() {
	o.arenaBytes += o.arena.release()
	o.etable = make(map[uint64]*egroup)
	o.eorder = o.eorder[:0]
	o.memory -= o.tableMem
	o.ctx.releaseHold(o.tableMem)
	o.tableMem = 0
}

func (o *groupByOp) elookup(h uint64, kf [][]byte) (*egroup, error) {
	for g := o.etable[h]; g != nil; g = g.next {
		ok, err := matchEncodedKey(g.keyFields, kf)
		if err != nil {
			return nil, err
		}
		if ok {
			return g, nil
		}
		o.collisions++ // a chain entry with this hash but a different key
	}
	return nil, nil
}

// pushEager is the decoded-sequence reference implementation: every field is
// decoded, keys are evaluated into sequences, hashed with item.HashSeq and
// chain-matched with item.EqualSeq — the pre-lazy pipeline, kept for
// differential testing and as the benchmark baseline.
func (o *groupByOp) pushEager(fr *frame.Frame) error {
	if cap(o.keyScratch) < len(o.spec.Keys) {
		o.keyScratch = make([]item.Sequence, len(o.spec.Keys))
	}
	keyScratch := o.keyScratch[:len(o.spec.Keys)]
	return forEachTuple(fr, func(fields []item.Sequence, _ [][]byte) error {
		tup := runtime.SeqTuple(fields)
		var h uint64 = 1469598103934665603
		for i, k := range o.spec.Keys {
			v, err := k.Eval(o.ctx.RT, tup)
			if err != nil {
				return err
			}
			keyScratch[i] = v
			h = h*1099511628211 ^ item.HashSeq(v)
		}
		g := o.lookup(h, keyScratch)
		if g == nil {
			keySeqs := append([]item.Sequence(nil), keyScratch...)
			g = &group{keySeqs: keySeqs, states: make([]runtime.AggState, len(o.spec.Aggs))}
			g.keyFields = frame.EncodeFields(keySeqs)
			for i, a := range o.spec.Aggs {
				g.states[i] = a.Fn.New()
			}
			g.next = o.table[h]
			o.table[h] = g
			o.order = append(o.order, g)
			var sz int64 = 64
			for _, kf := range g.keyFields {
				sz += int64(len(kf))
			}
			o.hold(sz) // charged until close; released in Close
		}
		for i, a := range o.spec.Aggs {
			v, err := a.Arg.Eval(o.ctx.RT, tup)
			if err != nil {
				return err
			}
			before := g.states[i].Size()
			if err := g.states[i].Step(v); err != nil {
				return err
			}
			if grew := g.states[i].Size() - before; grew > 0 {
				o.hold(grew)
			}
		}
		return nil
	})
}

func (o *groupByOp) lookup(h uint64, keySeqs []item.Sequence) *group {
	for g := o.table[h]; g != nil; g = g.next {
		match := true
		for i := range keySeqs {
			if !item.EqualSeq(g.keySeqs[i], keySeqs[i]) {
				match = false
				break
			}
		}
		if match {
			return g
		}
		o.collisions++
	}
	return nil
}

func (o *groupByOp) Close() error {
	o.arenaBytes += o.arena.reserved // live reservation; spilled waves added theirs at reset
	defer func() {
		if o.ctx.RT != nil && o.ctx.RT.Accountant != nil {
			o.ctx.RT.Accountant.Release(o.memory)
		}
		o.memory = 0
		o.tableMem = 0
		o.arena.release()
		if o.spill != nil {
			// A drain cut short by an error leaves the wave-0 writers open;
			// abort removes their files (no-op after a clean finish).
			o.spill.abort()
			o.spill = nil
		}
		o.ctx.addSpillStats(o.spilled, o.spillParted, o.spillWaves)
	}()
	b := newFrameBuilder(o.ctx, o.out)
	var err error
	if o.spill != nil {
		err = o.drainSpill(b)
	} else {
		err = o.emitGroups(b)
	}
	if err == nil {
		err = b.flush()
	} else {
		b.discard()
	}
	// Cascade on error: see assignOp.Close.
	if cerr := o.out.Close(); err == nil {
		err = cerr
	}
	return err
}

// drainSpill seals the wave-0 partitions and reduces each in turn, emitting
// its groups as it finishes. Runs are removed as they are consumed; the
// deferred sweep removes the rest when a downstream error cuts the drain
// short.
func (o *groupByOp) drainSpill(b *frameBuilder) error {
	runs, err := o.spill.finish()
	o.spillParted += countRuns(runs)
	o.spill = nil
	if err != nil {
		return err
	}
	defer spill.RemoveRuns(runs)
	for i, r := range runs {
		if r == nil {
			continue
		}
		if err := o.processRun(r, 1, b); err != nil {
			return err
		}
		r.Remove()
		runs[i] = nil
	}
	return nil
}

// processRun rebuilds a hash table from one partition file. If the table
// overflows again and can still be split, the live groups flush to child
// writers on a depth-rotated hash, the rest of the run streams straight
// through, and recursion continues per child; otherwise (max depth reached,
// or a single unsplittable group) the partition finishes in memory —
// correctness never depends on the budget holding.
func (o *groupByOp) processRun(run *spill.Run, depth int, b *frameBuilder) error {
	rd, err := run.Open()
	if err != nil {
		return err
	}
	release := o.ctx.account(int64(o.ctx.spillBlockSize()))
	var child *spillParts
	fail := func(err error) error {
		rd.Close()
		release()
		if child != nil {
			child.abort()
		}
		return err
	}
	var lt frame.LazyTuple
	for {
		tag, fields, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fail(err)
		}
		if child != nil {
			// Already re-partitioning: route the rest of the run straight
			// through on the rotated hash.
			h, err := o.spillRecordHash(tag, fields, &lt)
			if err != nil {
				return fail(err)
			}
			n, werr := child.write(h, tag, fields)
			o.spilled += int64(n)
			if werr != nil {
				return fail(werr)
			}
			continue
		}
		if err := o.absorb(tag, fields, &lt); err != nil {
			return fail(err)
		}
		if o.budget > 0 && o.memory > o.budget && depth < maxSpillDepth && len(o.eorder) > 1 {
			child = newSpillParts(o.ctx, depth)
			o.spillWaves++
			if err := o.flushGroups(child); err != nil {
				return fail(err)
			}
		}
	}
	rd.Close()
	release()
	if child == nil {
		if err := o.emitGroups(b); err != nil {
			return err
		}
		o.resetTable()
		return nil
	}
	crs, err := child.finish()
	o.spillParted += countRuns(crs)
	child = nil
	if err != nil {
		return err
	}
	defer spill.RemoveRuns(crs)
	for i, r := range crs {
		if r == nil {
			continue
		}
		if err := o.processRun(r, depth+1, b); err != nil {
			return err
		}
		r.Remove()
		crs[i] = nil
	}
	return nil
}

// spillRecordHash recovers a spilled record's routing hash: raw tuples
// re-resolve the key expressions exactly like Push, partial records hash
// their leading key fields (identical bytes, therefore identical hash).
func (o *groupByOp) spillRecordHash(tag byte, fields [][]byte, lt *frame.LazyTuple) (uint64, error) {
	if tag == spillTagPartial {
		if len(fields) < len(o.spec.Keys) {
			return 0, fmt.Errorf("hyracks: malformed spilled partial: %d fields, want >= %d", len(fields), len(o.spec.Keys))
		}
		return chainKeyHash(fields[:len(o.spec.Keys)])
	}
	lt.Reset(fields)
	_, h, err := o.keys.resolve(o.ctx, lt)
	return h, err
}

// absorb folds one spilled record into the live table: raw records step like
// Push; partials merge their aggregate snapshots into the key's states.
// The fields alias the reader's block buffer — everything retained (keys,
// stepped state) is copied by the arena or decoded, never aliased.
func (o *groupByOp) absorb(tag byte, fields [][]byte, lt *frame.LazyTuple) error {
	if tag == spillTagRaw {
		lt.Reset(fields)
		kf, h, err := o.keys.resolve(o.ctx, lt)
		if err != nil {
			return err
		}
		g, err := o.elookup(h, kf)
		if err != nil {
			return err
		}
		if g == nil {
			g = o.newGroup(h, kf)
		}
		return stepStates(o.ctx, o.spec.Aggs, o.fastCols, g.states, lt, o.hold)
	}
	nk := len(o.spec.Keys)
	if len(fields) != nk+len(o.spec.Aggs) {
		return fmt.Errorf("hyracks: malformed spilled partial: %d fields, want %d", len(fields), nk+len(o.spec.Aggs))
	}
	kf := fields[:nk]
	h, err := chainKeyHash(kf)
	if err != nil {
		return err
	}
	g, err := o.elookup(h, kf)
	if err != nil {
		return err
	}
	if g == nil {
		g = o.newGroup(h, kf)
	}
	for i, st := range g.states {
		snap, err := item.DecodeSeq(fields[nk+i])
		if err != nil {
			return err
		}
		before := st.Size()
		if err := st.(runtime.SpillableState).Merge(snap); err != nil {
			return err
		}
		if grew := st.Size() - before; grew > 0 {
			o.hold(grew)
		}
	}
	return nil
}

// emitGroups writes one tuple per group — key fields then finished
// aggregates — in insertion order, which is identical between the encoded
// and eager modes (it does not depend on the hash function). The emitted key
// bytes are identical too: column keys pass through the canonical encoding
// unchanged, and computed keys are encoded exactly as the eager
// frame.EncodeFields would.
func (o *groupByOp) emitGroups(b *frameBuilder) error {
	var out [][]byte
	emit := func(keyFields [][]byte, states []runtime.AggState) error {
		out = append(out[:0], keyFields...)
		for _, st := range states {
			v, err := st.Finish()
			if err != nil {
				return err
			}
			out = append(out, item.EncodeSeq(nil, v))
		}
		return b.emit(out)
	}
	if o.eager {
		for _, g := range o.order {
			if err := emit(g.keyFields, g.states); err != nil {
				return err
			}
		}
		return nil
	}
	for _, g := range o.eorder {
		if err := emit(g.keyFields, g.states); err != nil {
			return err
		}
	}
	return nil
}

// accountHold charges bytes to the accountant without pairing the release:
// it is the charge half of the hold-until-Close discipline that blocking
// operators (group-by, sort) follow for retained state. The operator tracks
// everything it charged in a running total and releases that total exactly
// once, in a deferred block at Close, so the balance returns to zero on both
// the clean and the error path.
func (c *TaskCtx) accountHold(n int64) {
	if c.RT != nil && c.RT.Accountant != nil && n != 0 {
		c.RT.Accountant.Allocate(n)
	}
}

// --- SUBPLAN --------------------------------------------------------------

// SubplanSpec runs a nested operator chain once per input tuple (the Hyracks
// SUBPLAN of §3.2: an AGGREGATE over an UNNEST). The nested chain sees the
// single input tuple as its whole input and must end in exactly one output
// tuple (the nested AGGREGATE result); that tuple's fields are appended to
// the input tuple.
type SubplanSpec struct {
	Nested []OpSpec
	Desc   string
}

// Name implements OpSpec.
func (s *SubplanSpec) Name() string { return "SUBPLAN " + s.Desc }

// Build implements OpSpec.
func (s *SubplanSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &subplanOp{ctx: ctx, spec: s, out: out}
}

type subplanOp struct {
	ctx  *TaskCtx
	spec *SubplanSpec
	out  Writer
	b    *frameBuilder
}

func (o *subplanOp) Open() error {
	o.b = newFrameBuilder(o.ctx, o.out)
	return o.out.Open()
}

func (o *subplanOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	// The outer tuple is only copied, never inspected: raw iteration.
	return forEachTupleRaw(fr, func(raw [][]byte) error {
		sink := &CollectSink{}
		w := BuildChain(o.ctx, o.spec.Nested, recycleSink{ctx: o.ctx, w: sink})
		if err := w.Open(); err != nil {
			return err
		}
		inner := o.ctx.newFrame()
		inner.AppendTuple(raw)
		if err := w.Push(inner); err != nil {
			// Best-effort close of the nested chain so its operators release
			// whatever they hold; report the push error.
			_ = w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		if len(sink.Rows) != 1 {
			return fmt.Errorf("hyracks: subplan produced %d tuples, want 1", len(sink.Rows))
		}
		outFields := append([][]byte(nil), raw...)
		outFields = append(outFields, frame.EncodeFields(sink.Rows[0])...)
		return o.b.emit(outFields)
	})
}

func (o *subplanOp) Close() error {
	// Cascade on error: see assignOp.Close.
	err := o.b.flush()
	if cerr := o.out.Close(); err == nil {
		err = cerr
	}
	return err
}

// BuildChain composes a chain of operator specs into a single Writer whose
// final output goes to terminal. specs[0] is the first operator the input
// flows through.
func BuildChain(ctx *TaskCtx, specs []OpSpec, terminal Writer) Writer {
	w := terminal
	for i := len(specs) - 1; i >= 0; i-- {
		w = specs[i].Build(ctx, w)
	}
	return w
}

// --- SORT -------------------------------------------------------------------

// SortDef is one sort key: an evaluator plus direction.
type SortDef struct {
	Key  runtime.Evaluator
	Desc bool
}

// SortSpec materializes its whole input, orders it by the sort keys (stable,
// so ties keep arrival order), and emits the sorted tuples at close. It
// implements the XQuery order-by clause.
type SortSpec struct {
	Keys []SortDef
	Desc string
}

// Name implements OpSpec.
func (s *SortSpec) Name() string { return "ORDER-BY " + s.Desc }

// Build implements OpSpec.
func (s *SortSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &sortOp{ctx: ctx, spec: s, out: out}
}

type sortRow struct {
	keys []item.Sequence
	raw  [][]byte
}

type sortOp struct {
	ctx     *TaskCtx
	spec    *SortSpec
	out     Writer
	rows    []sortRow
	memory  int64
	memPeak int64

	// Out-of-core state (see spillops.go): when the held rows exceed budget
	// they are sorted and written out as one run; Close k-way merges the runs.
	budget     int64
	runs       []*spill.Run
	runCount   int64
	spilled    int64
	spillWaves int64
}

func (o *sortOp) Open() error {
	if !o.ctx.EagerDecode {
		o.budget = o.ctx.SpillBudget
	}
	return o.out.Open()
}

// hold charges sz bytes of retained rows (released once at Close), tracking
// the high-water for the profiler.
func (o *sortOp) hold(sz int64) {
	o.memory += sz
	if o.memory > o.memPeak {
		o.memPeak = o.memory
	}
	o.ctx.accountHold(sz)
}

// profExtras implements opStatser.
func (o *sortOp) profExtras(x *opExtras) {
	x.memPeak = o.memPeak
	x.spilledBytes = o.spilled
	x.spillPartitions = o.runCount
	x.spillWaves = o.spillWaves
}

// compareKeys orders two rows' evaluated key sequences under the sort spec.
func (o *sortOp) compareKeys(a, b []item.Sequence) int {
	for k := range o.spec.Keys {
		c := item.CompareSeq(a[k], b[k])
		if o.spec.Keys[k].Desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// sortRows stably orders the buffered rows (ties keep arrival order — the
// order-by contract, and what makes run merging equivalent to one big sort).
func (o *sortOp) sortRows() {
	sort.SliceStable(o.rows, func(i, j int) bool {
		return o.compareKeys(o.rows[i].keys, o.rows[j].keys) < 0
	})
}

// spillSortedRun sorts the buffered rows and writes them out as one run —
// each record is the item.EncodeSeq'd key sequences followed by the raw tuple
// fields, so the merge re-decodes keys without re-evaluating expressions —
// then drops the buffer and returns its held bytes to the accountant.
func (o *sortOp) spillSortedRun() error {
	o.sortRows()
	w, err := spill.NewWriter(o.ctx.SpillDir, o.ctx.spillBlockSize())
	if err != nil {
		return err
	}
	release := o.ctx.account(int64(o.ctx.spillBlockSize()))
	var fields [][]byte
	for _, r := range o.rows {
		fields = fields[:0]
		for _, k := range r.keys {
			fields = append(fields, item.EncodeSeq(nil, k))
		}
		fields = append(fields, r.raw...)
		n, werr := w.Write(spillTagRaw, fields)
		o.spilled += int64(n)
		if werr != nil {
			w.Abort()
			release()
			return werr
		}
	}
	run, err := w.Finish()
	release()
	if err != nil {
		return err
	}
	if run != nil {
		o.runs = append(o.runs, run)
		o.runCount++
		o.spillWaves++
	}
	o.rows = o.rows[:0]
	o.ctx.releaseHold(o.memory)
	o.memory = 0
	return nil
}

func (o *sortOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	err := forEachTupleView(fr, o.ctx.EagerDecode, func(lt *frame.LazyTuple) error {
		keys := make([]item.Sequence, len(o.spec.Keys))
		for i, k := range o.spec.Keys {
			v, err := k.Key.Eval(o.ctx.RT, lt)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		raw := lt.Raw()
		stored := make([][]byte, len(raw))
		var sz int64 = 48
		for i, f := range raw {
			stored[i] = append([]byte(nil), f...)
			sz += int64(len(f))
		}
		// The evaluated key sequences are retained until Close too — charge
		// them, not just the raw tuple bytes.
		for _, k := range keys {
			sz += item.SizeBytesSeq(k)
		}
		o.rows = append(o.rows, sortRow{keys: keys, raw: stored})
		o.hold(sz)
		return nil
	})
	if err != nil {
		return err
	}
	if o.budget > 0 && o.memory > o.budget {
		return o.spillSortedRun()
	}
	return nil
}

func (o *sortOp) Close() error {
	defer func() {
		if o.ctx.RT != nil && o.ctx.RT.Accountant != nil {
			o.ctx.RT.Accountant.Release(o.memory)
		}
		o.memory = 0
		// A merge cut short by an error leaves unconsumed run files behind;
		// the sweep removes them (consumed runs were already removed).
		spill.RemoveRuns(o.runs)
		o.runs = nil
		o.ctx.addSpillStats(o.spilled, o.runCount, o.spillWaves)
	}()
	b := newFrameBuilder(o.ctx, o.out)
	var err error
	if len(o.runs) == 0 {
		o.sortRows()
		for _, r := range o.rows {
			if err = b.emit(r.raw); err != nil {
				break
			}
		}
		o.rows = nil
	} else {
		err = o.mergeRuns(b)
	}
	if err == nil {
		err = b.flush()
	} else {
		b.discard()
	}
	// Cascade on error: see assignOp.Close.
	if cerr := o.out.Close(); err == nil {
		err = cerr
	}
	return err
}

// sortCursor is one run's read head during the k-way merge: the decoded key
// sequences and the raw tuple fields of the current record. raw aliases the
// reader's block buffer — valid until the next advance, and the frame builder
// copies on emit before that happens.
type sortCursor struct {
	rd   *spill.Reader
	idx  int // run index: ties break toward earlier runs = arrival order
	keys []item.Sequence
	raw  [][]byte
}

// sortMerge is the merge heap over the open cursors (container/heap).
type sortMerge struct {
	op  *sortOp
	cur []*sortCursor
}

func (m *sortMerge) Len() int { return len(m.cur) }
func (m *sortMerge) Less(i, j int) bool {
	a, b := m.cur[i], m.cur[j]
	if c := m.op.compareKeys(a.keys, b.keys); c != 0 {
		return c < 0
	}
	return a.idx < b.idx
}
func (m *sortMerge) Swap(i, j int) { m.cur[i], m.cur[j] = m.cur[j], m.cur[i] }
func (m *sortMerge) Push(x any)    { m.cur = append(m.cur, x.(*sortCursor)) }
func (m *sortMerge) Pop() any {
	c := m.cur[len(m.cur)-1]
	m.cur = m.cur[:len(m.cur)-1]
	return c
}

// advance loads the cursor's next record, reporting false at end of run.
func (o *sortOp) advance(c *sortCursor) (bool, error) {
	_, fields, err := c.rd.Next()
	if err == io.EOF {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	nk := len(o.spec.Keys)
	if len(fields) < nk {
		return false, fmt.Errorf("hyracks: malformed spilled sort row: %d fields, want >= %d", len(fields), nk)
	}
	for i := 0; i < nk; i++ {
		s, err := item.DecodeSeq(fields[i])
		if err != nil {
			return false, err
		}
		c.keys[i] = s
	}
	c.raw = fields[nk:]
	return true, nil
}

// mergeRuns spills any still-buffered rows as a final run, then streams the
// k-way merge of all runs downstream. Run-index tie-breaking makes the merge
// byte-identical to stably sorting the whole input in memory: within a run
// arrival order is preserved by the stable sort, and earlier runs hold
// earlier arrivals.
func (o *sortOp) mergeRuns(b *frameBuilder) error {
	if len(o.rows) > 0 {
		if err := o.spillSortedRun(); err != nil {
			return err
		}
	}
	m := &sortMerge{op: o}
	defer func() {
		for _, c := range m.cur {
			c.rd.Close()
		}
	}()
	release := o.ctx.account(int64(o.ctx.spillBlockSize()) * int64(len(o.runs)))
	defer release()
	nk := len(o.spec.Keys)
	for i, r := range o.runs {
		rd, err := r.Open()
		if err != nil {
			return err
		}
		c := &sortCursor{rd: rd, idx: i, keys: make([]item.Sequence, nk)}
		m.cur = append(m.cur, c)
		ok, err := o.advance(c)
		if err != nil {
			return err
		}
		if !ok {
			c.rd.Close()
			m.cur = m.cur[:len(m.cur)-1]
		}
	}
	heap.Init(m)
	for m.Len() > 0 {
		c := m.cur[0]
		if err := b.emit(c.raw); err != nil {
			return err
		}
		ok, err := o.advance(c)
		if err != nil {
			return err
		}
		if ok {
			heap.Fix(m, 0)
		} else {
			c.rd.Close()
			heap.Pop(m)
		}
	}
	for i, r := range o.runs {
		r.Remove()
		o.runs[i] = nil
	}
	o.runs = o.runs[:0]
	return nil
}
