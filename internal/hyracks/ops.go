package hyracks

import (
	"sort"

	"fmt"

	"vxq/internal/frame"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

// OpSpec describes one physical operator of a fragment chain. Build
// instantiates the operator's per-partition runtime as a Writer that pushes
// its output to out.
type OpSpec interface {
	Name() string
	Build(ctx *TaskCtx, out Writer) Writer
}

// --- ASSIGN ---------------------------------------------------------------

// AssignSpec evaluates scalar expressions over each input tuple and appends
// the results as new fields (the Hyracks ASSIGN operator of §3.2).
// A non-nil OutCols projects the output tuple (a fused PROJECT), so dead
// fields are dropped before they are copied downstream.
type AssignSpec struct {
	Evals   []runtime.Evaluator
	OutCols []int
	Desc    string
}

// Name implements OpSpec.
func (s *AssignSpec) Name() string { return "ASSIGN " + s.Desc }

// Build implements OpSpec.
func (s *AssignSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &assignOp{ctx: ctx, spec: s, out: out}
}

type assignOp struct {
	ctx  *TaskCtx
	spec *AssignSpec
	out  Writer
	b    *frameBuilder
}

func (o *assignOp) Open() error {
	o.b = newFrameBuilder(o.ctx, o.out)
	return o.out.Open()
}

func (o *assignOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	// Per-frame scratch: existing fields pass through as raw bytes; computed
	// fields are encoded into one reusable buffer (emit copies what it
	// frames, so both are free again after each tuple).
	var (
		out  [][]byte
		proj [][]byte
		enc  []byte
	)
	return forEachTupleView(fr, o.ctx.EagerDecode, func(lt *frame.LazyTuple) error {
		out = append(out[:0], lt.Raw()...)
		enc = enc[:0]
		for _, ev := range o.spec.Evals {
			v, err := ev.Eval(o.ctx.RT, lt)
			if err != nil {
				return err
			}
			lt.Append(v) // later evaluators see the appended field
			start := len(enc)
			enc = item.EncodeSeq(enc, v)
			out = append(out, enc[start:])
		}
		// enc may have been reallocated while growing; earlier slices still
		// point at live (former) backing arrays, so they stay valid until
		// the next tuple resets the buffer.
		outFields, err := applyOutColsInto(proj, out, o.spec.OutCols)
		if err != nil {
			return err
		}
		proj = outFields[:0]
		return o.b.emit(outFields)
	})
}

func (o *assignOp) Close() error {
	if err := o.b.flush(); err != nil {
		return err
	}
	return o.out.Close()
}

// --- SELECT ---------------------------------------------------------------

// SelectSpec filters tuples by the effective boolean value of a condition.
// A non-nil OutCols projects the surviving tuples (a fused PROJECT).
type SelectSpec struct {
	Cond    runtime.Evaluator
	OutCols []int
	Desc    string
}

// Name implements OpSpec.
func (s *SelectSpec) Name() string { return "SELECT " + s.Desc }

// Build implements OpSpec.
func (s *SelectSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &selectOp{ctx: ctx, spec: s, out: out}
}

type selectOp struct {
	ctx  *TaskCtx
	spec *SelectSpec
	out  Writer
	b    *frameBuilder
}

func (o *selectOp) Open() error {
	o.b = newFrameBuilder(o.ctx, o.out)
	return o.out.Open()
}

func (o *selectOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	var proj [][]byte
	return forEachTupleView(fr, o.ctx.EagerDecode, func(lt *frame.LazyTuple) error {
		v, err := o.spec.Cond.Eval(o.ctx.RT, lt)
		if err != nil {
			return err
		}
		if !item.EffectiveBoolean(v) {
			return nil
		}
		out, err := applyOutColsInto(proj, lt.Raw(), o.spec.OutCols)
		if err != nil {
			return err
		}
		proj = out[:0]
		return o.b.emit(out)
	})
}

func (o *selectOp) Close() error {
	if err := o.b.flush(); err != nil {
		return err
	}
	return o.out.Close()
}

// --- UNNEST ---------------------------------------------------------------

// UnnestSpec evaluates an unnesting expression per input tuple and emits one
// output tuple per item of the result, appending the item as a new field.
// A non-nil OutCols projects each output tuple (a fused PROJECT): crucial
// for not copying a large unnested field into every emitted tuple.
type UnnestSpec struct {
	Expr    runtime.Evaluator
	OutCols []int
	Desc    string
}

// Name implements OpSpec.
func (s *UnnestSpec) Name() string { return "UNNEST " + s.Desc }

// Build implements OpSpec.
func (s *UnnestSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &unnestOp{ctx: ctx, spec: s, out: out}
}

type unnestOp struct {
	ctx  *TaskCtx
	spec *UnnestSpec
	out  Writer
	b    *frameBuilder
}

func (o *unnestOp) Open() error {
	o.b = newFrameBuilder(o.ctx, o.out)
	return o.out.Open()
}

func (o *unnestOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	var (
		out  [][]byte // per-frame scratch; emit copies the bytes it frames
		proj [][]byte
		enc  []byte
	)
	return forEachTupleView(fr, o.ctx.EagerDecode, func(lt *frame.LazyTuple) error {
		v, err := o.spec.Expr.Eval(o.ctx.RT, lt)
		if err != nil {
			return err
		}
		for _, it := range v {
			enc = item.EncodeSeq(enc[:0], item.Single(it))
			out = append(out[:0], lt.Raw()...)
			out = append(out, enc)
			outFields, err := applyOutColsInto(proj, out, o.spec.OutCols)
			if err != nil {
				return err
			}
			proj = outFields[:0]
			if err := o.b.emit(outFields); err != nil {
				return err
			}
		}
		return nil
	})
}

func (o *unnestOp) Close() error {
	if err := o.b.flush(); err != nil {
		return err
	}
	return o.out.Close()
}

// applyOutColsInto projects raw fields to the given columns, reusing dst's
// capacity; a nil cols is the identity (raw is returned, dst untouched).
func applyOutColsInto(dst [][]byte, raw [][]byte, cols []int) ([][]byte, error) {
	if cols == nil {
		return raw, nil
	}
	dst = dst[:0]
	for _, c := range cols {
		if c < 0 || c >= len(raw) {
			return nil, fmt.Errorf("hyracks: fused project column %d out of range [0,%d)", c, len(raw))
		}
		dst = append(dst, raw[c])
	}
	return dst, nil
}

// --- PROJECT --------------------------------------------------------------

// ProjectSpec keeps only the listed columns, in order.
type ProjectSpec struct {
	Cols []int
}

// Name implements OpSpec.
func (s *ProjectSpec) Name() string { return fmt.Sprintf("PROJECT %v", s.Cols) }

// Build implements OpSpec.
func (s *ProjectSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &projectOp{ctx: ctx, spec: s, out: out}
}

type projectOp struct {
	ctx  *TaskCtx
	spec *ProjectSpec
	out  Writer
	b    *frameBuilder
}

func (o *projectOp) Open() error {
	o.b = newFrameBuilder(o.ctx, o.out)
	return o.out.Open()
}

func (o *projectOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	// Projection never looks at field values: route raw bytes only, through
	// one scratch slice reused for every tuple of the frame.
	outFields := make([][]byte, len(o.spec.Cols))
	return forEachTupleRaw(fr, func(raw [][]byte) error {
		for i, c := range o.spec.Cols {
			if c < 0 || c >= len(raw) {
				return fmt.Errorf("hyracks: project column %d out of range [0,%d)", c, len(raw))
			}
			outFields[i] = raw[c]
		}
		return o.b.emit(outFields)
	})
}

func (o *projectOp) Close() error {
	if err := o.b.flush(); err != nil {
		return err
	}
	return o.out.Close()
}

// --- AGGREGATE ------------------------------------------------------------

// AggDef is one aggregate computation: an aggregate function applied to an
// argument expression.
type AggDef struct {
	Fn  *runtime.AggFunc
	Arg runtime.Evaluator
}

// countFastCols maps each aggregate to the raw column its argument reads,
// when the fast path applies: the argument is a plain column reference and
// the aggregate state only counts items (runtime.CountStepper). Such
// aggregates step on item.SeqCountEncoded of the raw field — one uvarint
// read instead of a field decode. -1 disables the fast path.
func countFastCols(aggs []AggDef) []int {
	cols := make([]int, len(aggs))
	for i, a := range aggs {
		cols[i] = -1
		ce, ok := a.Arg.(runtime.ColumnEval)
		if !ok {
			continue
		}
		if _, ok := a.Fn.New().(runtime.CountStepper); ok {
			cols[i] = ce.Col
		}
	}
	return cols
}

// stepStates folds one tuple into a row of aggregate states. fastCols
// enables the encoded count fast path (nil or -1 entries evaluate the
// argument normally). hold, when non-nil, is charged with any state growth.
func stepStates(ctx *TaskCtx, aggs []AggDef, fastCols []int, states []runtime.AggState, lt *frame.LazyTuple, hold func(int64)) error {
	for i := range aggs {
		st := states[i]
		var before int64
		if hold != nil {
			before = st.Size()
		}
		if c := colOf(fastCols, i); c >= 0 && c < lt.RawFieldCount() {
			n, err := item.SeqCountEncoded(lt.RawField(c))
			if err != nil {
				return err
			}
			if err := st.(runtime.CountStepper).StepCount(n); err != nil {
				return err
			}
		} else {
			v, err := aggs[i].Arg.Eval(ctx.RT, lt)
			if err != nil {
				return err
			}
			if err := st.Step(v); err != nil {
				return err
			}
		}
		if hold != nil {
			if grew := st.Size() - before; grew > 0 {
				hold(grew)
			}
		}
	}
	return nil
}

func colOf(cols []int, i int) int {
	if cols == nil {
		return -1
	}
	return cols[i]
}

// AggregateSpec folds the whole input into a single output tuple holding one
// field per aggregate (the Hyracks AGGREGATE operator of §3.2).
type AggregateSpec struct {
	Aggs []AggDef
	Desc string
}

// Name implements OpSpec.
func (s *AggregateSpec) Name() string { return "AGGREGATE " + s.Desc }

// Build implements OpSpec.
func (s *AggregateSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &aggregateOp{ctx: ctx, spec: s, out: out}
}

type aggregateOp struct {
	ctx      *TaskCtx
	spec     *AggregateSpec
	out      Writer
	states   []runtime.AggState
	fastCols []int
}

func (o *aggregateOp) Open() error {
	o.states = make([]runtime.AggState, len(o.spec.Aggs))
	for i, a := range o.spec.Aggs {
		o.states[i] = a.Fn.New()
	}
	if !o.ctx.EagerDecode {
		o.fastCols = countFastCols(o.spec.Aggs)
	}
	return o.out.Open()
}

func (o *aggregateOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	return forEachTupleView(fr, o.ctx.EagerDecode, func(lt *frame.LazyTuple) error {
		return stepStates(o.ctx, o.spec.Aggs, o.fastCols, o.states, lt, nil)
	})
}

func (o *aggregateOp) Close() error {
	b := newFrameBuilder(o.ctx, o.out)
	outFields := make([][]byte, len(o.states))
	for i, st := range o.states {
		v, err := st.Finish()
		if err != nil {
			return err
		}
		outFields[i] = item.EncodeSeq(nil, v)
	}
	if err := b.emit(outFields); err != nil {
		return err
	}
	if err := b.flush(); err != nil {
		return err
	}
	return o.out.Close()
}

// --- GROUP-BY -------------------------------------------------------------

// GroupBySpec is the hash-based GROUP-BY operator: tuples are grouped by the
// key expressions; each group runs the aggregate definitions; at close one
// tuple per group is emitted carrying the key fields then the aggregate
// fields.
//
// The default implementation works entirely in the encoded domain: key
// fields are resolved to raw encoded bytes (sliced from the tuple for
// column keys), hashed with item.HashEncoded, matched byte-wise against the
// bucket chain (item.EqualEncoded on byte mismatch), and interned into a
// per-operator arena when a group is created. Tuples whose keys hit an
// existing group touch no decoded items at all. TaskCtx.EagerDecode selects
// the decoded-sequence reference implementation instead.
type GroupBySpec struct {
	Keys []runtime.Evaluator
	Aggs []AggDef
	Desc string
}

// Name implements OpSpec.
func (s *GroupBySpec) Name() string { return "GROUP-BY " + s.Desc }

// Build implements OpSpec.
func (s *GroupBySpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &groupByOp{ctx: ctx, spec: s, out: out}
}

// egroup is one group of the encoded-mode table.
type egroup struct {
	keyFields [][]byte // arena-interned encoded key fields
	states    []runtime.AggState
	next      *egroup // hash-chain for collision handling
}

// group is one group of the eager reference table.
type group struct {
	keyFields [][]byte
	keySeqs   []item.Sequence
	states    []runtime.AggState
	next      *group // hash-chain for collision handling
}

type groupByOp struct {
	ctx  *TaskCtx
	spec *GroupBySpec
	out  Writer

	// Encoded mode.
	keys     *keyEncoder
	fastCols []int
	etable   map[uint64]*egroup
	eorder   []*egroup // insertion order for deterministic output
	arena    byteArena

	// Eager reference mode.
	eager      bool
	table      map[uint64]*group
	order      []*group // insertion order for deterministic output
	keyScratch []item.Sequence

	memory int64

	// Profile counters (see profExtras).
	memPeak    int64
	collisions int64
	arenaBytes int64
}

// hold charges sz bytes of retained state (released once at Close) and
// tracks the held-memory high-water the profiler reports.
func (o *groupByOp) hold(sz int64) {
	o.memory += sz
	if o.memory > o.memPeak {
		o.memPeak = o.memory
	}
	o.ctx.accountHold(sz)
}

// profExtras implements opStatser.
func (o *groupByOp) profExtras(x *opExtras) {
	x.memPeak = o.memPeak
	x.hashCollisions = o.collisions
	x.arenaBytes = o.arenaBytes
}

func (o *groupByOp) Open() error {
	o.eager = o.ctx.EagerDecode
	if o.eager {
		o.table = make(map[uint64]*group)
	} else {
		o.etable = make(map[uint64]*egroup)
		o.keys = newKeyEncoder(o.spec.Keys)
		o.fastCols = countFastCols(o.spec.Aggs)
		o.keyScratch = nil
	}
	return o.out.Open()
}

func (o *groupByOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	if o.eager {
		return o.pushEager(fr)
	}
	return forEachTupleView(fr, false, func(lt *frame.LazyTuple) error {
		kf, h, err := o.keys.resolve(o.ctx, lt)
		if err != nil {
			return err
		}
		g, err := o.elookup(h, kf)
		if err != nil {
			return err
		}
		if g == nil {
			// New group: intern the key bytes in the arena and charge the
			// hold (the arena reports whole-chunk reservations as they
			// happen, so interned keys are charged like the other holds).
			stored := make([][]byte, len(kf))
			var sz int64 = 64
			for i, f := range kf {
				cp, grew := o.arena.copy(f)
				stored[i] = cp
				sz += grew
			}
			g = &egroup{keyFields: stored, states: make([]runtime.AggState, len(o.spec.Aggs)), next: o.etable[h]}
			for i, a := range o.spec.Aggs {
				g.states[i] = a.Fn.New()
			}
			o.etable[h] = g
			o.eorder = append(o.eorder, g)
			o.hold(sz) // charged until close; released in Close
		}
		return stepStates(o.ctx, o.spec.Aggs, o.fastCols, g.states, lt, o.hold)
	})
}

func (o *groupByOp) elookup(h uint64, kf [][]byte) (*egroup, error) {
	for g := o.etable[h]; g != nil; g = g.next {
		ok, err := matchEncodedKey(g.keyFields, kf)
		if err != nil {
			return nil, err
		}
		if ok {
			return g, nil
		}
		o.collisions++ // a chain entry with this hash but a different key
	}
	return nil, nil
}

// pushEager is the decoded-sequence reference implementation: every field is
// decoded, keys are evaluated into sequences, hashed with item.HashSeq and
// chain-matched with item.EqualSeq — the pre-lazy pipeline, kept for
// differential testing and as the benchmark baseline.
func (o *groupByOp) pushEager(fr *frame.Frame) error {
	if cap(o.keyScratch) < len(o.spec.Keys) {
		o.keyScratch = make([]item.Sequence, len(o.spec.Keys))
	}
	keyScratch := o.keyScratch[:len(o.spec.Keys)]
	return forEachTuple(fr, func(fields []item.Sequence, _ [][]byte) error {
		tup := runtime.SeqTuple(fields)
		var h uint64 = 1469598103934665603
		for i, k := range o.spec.Keys {
			v, err := k.Eval(o.ctx.RT, tup)
			if err != nil {
				return err
			}
			keyScratch[i] = v
			h = h*1099511628211 ^ item.HashSeq(v)
		}
		g := o.lookup(h, keyScratch)
		if g == nil {
			keySeqs := append([]item.Sequence(nil), keyScratch...)
			g = &group{keySeqs: keySeqs, states: make([]runtime.AggState, len(o.spec.Aggs))}
			g.keyFields = frame.EncodeFields(keySeqs)
			for i, a := range o.spec.Aggs {
				g.states[i] = a.Fn.New()
			}
			g.next = o.table[h]
			o.table[h] = g
			o.order = append(o.order, g)
			var sz int64 = 64
			for _, kf := range g.keyFields {
				sz += int64(len(kf))
			}
			o.hold(sz) // charged until close; released in Close
		}
		for i, a := range o.spec.Aggs {
			v, err := a.Arg.Eval(o.ctx.RT, tup)
			if err != nil {
				return err
			}
			before := g.states[i].Size()
			if err := g.states[i].Step(v); err != nil {
				return err
			}
			if grew := g.states[i].Size() - before; grew > 0 {
				o.hold(grew)
			}
		}
		return nil
	})
}

func (o *groupByOp) lookup(h uint64, keySeqs []item.Sequence) *group {
	for g := o.table[h]; g != nil; g = g.next {
		match := true
		for i := range keySeqs {
			if !item.EqualSeq(g.keySeqs[i], keySeqs[i]) {
				match = false
				break
			}
		}
		if match {
			return g
		}
		o.collisions++
	}
	return nil
}

func (o *groupByOp) Close() error {
	o.arenaBytes = o.arena.reserved // snapshot before the deferred release
	defer func() {
		if o.ctx.RT != nil && o.ctx.RT.Accountant != nil {
			o.ctx.RT.Accountant.Release(o.memory)
		}
		o.memory = 0
		o.arena.release()
	}()
	b := newFrameBuilder(o.ctx, o.out)
	if err := o.emitGroups(b); err != nil {
		return err
	}
	if err := b.flush(); err != nil {
		return err
	}
	return o.out.Close()
}

// emitGroups writes one tuple per group — key fields then finished
// aggregates — in insertion order, which is identical between the encoded
// and eager modes (it does not depend on the hash function). The emitted key
// bytes are identical too: column keys pass through the canonical encoding
// unchanged, and computed keys are encoded exactly as the eager
// frame.EncodeFields would.
func (o *groupByOp) emitGroups(b *frameBuilder) error {
	var out [][]byte
	emit := func(keyFields [][]byte, states []runtime.AggState) error {
		out = append(out[:0], keyFields...)
		for _, st := range states {
			v, err := st.Finish()
			if err != nil {
				return err
			}
			out = append(out, item.EncodeSeq(nil, v))
		}
		return b.emit(out)
	}
	if o.eager {
		for _, g := range o.order {
			if err := emit(g.keyFields, g.states); err != nil {
				return err
			}
		}
		return nil
	}
	for _, g := range o.eorder {
		if err := emit(g.keyFields, g.states); err != nil {
			return err
		}
	}
	return nil
}

// accountHold charges bytes to the accountant without pairing the release:
// it is the charge half of the hold-until-Close discipline that blocking
// operators (group-by, sort) follow for retained state. The operator tracks
// everything it charged in a running total and releases that total exactly
// once, in a deferred block at Close, so the balance returns to zero on both
// the clean and the error path.
func (c *TaskCtx) accountHold(n int64) {
	if c.RT != nil && c.RT.Accountant != nil && n != 0 {
		c.RT.Accountant.Allocate(n)
	}
}

// --- SUBPLAN --------------------------------------------------------------

// SubplanSpec runs a nested operator chain once per input tuple (the Hyracks
// SUBPLAN of §3.2: an AGGREGATE over an UNNEST). The nested chain sees the
// single input tuple as its whole input and must end in exactly one output
// tuple (the nested AGGREGATE result); that tuple's fields are appended to
// the input tuple.
type SubplanSpec struct {
	Nested []OpSpec
	Desc   string
}

// Name implements OpSpec.
func (s *SubplanSpec) Name() string { return "SUBPLAN " + s.Desc }

// Build implements OpSpec.
func (s *SubplanSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &subplanOp{ctx: ctx, spec: s, out: out}
}

type subplanOp struct {
	ctx  *TaskCtx
	spec *SubplanSpec
	out  Writer
	b    *frameBuilder
}

func (o *subplanOp) Open() error {
	o.b = newFrameBuilder(o.ctx, o.out)
	return o.out.Open()
}

func (o *subplanOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	// The outer tuple is only copied, never inspected: raw iteration.
	return forEachTupleRaw(fr, func(raw [][]byte) error {
		sink := &CollectSink{}
		w := BuildChain(o.ctx, o.spec.Nested, recycleSink{ctx: o.ctx, w: sink})
		if err := w.Open(); err != nil {
			return err
		}
		inner := o.ctx.newFrame()
		inner.AppendTuple(raw)
		if err := w.Push(inner); err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		if len(sink.Rows) != 1 {
			return fmt.Errorf("hyracks: subplan produced %d tuples, want 1", len(sink.Rows))
		}
		outFields := append([][]byte(nil), raw...)
		outFields = append(outFields, frame.EncodeFields(sink.Rows[0])...)
		return o.b.emit(outFields)
	})
}

func (o *subplanOp) Close() error {
	if err := o.b.flush(); err != nil {
		return err
	}
	return o.out.Close()
}

// BuildChain composes a chain of operator specs into a single Writer whose
// final output goes to terminal. specs[0] is the first operator the input
// flows through.
func BuildChain(ctx *TaskCtx, specs []OpSpec, terminal Writer) Writer {
	w := terminal
	for i := len(specs) - 1; i >= 0; i-- {
		w = specs[i].Build(ctx, w)
	}
	return w
}

// --- SORT -------------------------------------------------------------------

// SortDef is one sort key: an evaluator plus direction.
type SortDef struct {
	Key  runtime.Evaluator
	Desc bool
}

// SortSpec materializes its whole input, orders it by the sort keys (stable,
// so ties keep arrival order), and emits the sorted tuples at close. It
// implements the XQuery order-by clause.
type SortSpec struct {
	Keys []SortDef
	Desc string
}

// Name implements OpSpec.
func (s *SortSpec) Name() string { return "ORDER-BY " + s.Desc }

// Build implements OpSpec.
func (s *SortSpec) Build(ctx *TaskCtx, out Writer) Writer {
	return &sortOp{ctx: ctx, spec: s, out: out}
}

type sortRow struct {
	keys []item.Sequence
	raw  [][]byte
}

type sortOp struct {
	ctx     *TaskCtx
	spec    *SortSpec
	out     Writer
	rows    []sortRow
	memory  int64
	memPeak int64
}

func (o *sortOp) Open() error { return o.out.Open() }

// hold charges sz bytes of retained rows (released once at Close), tracking
// the high-water for the profiler.
func (o *sortOp) hold(sz int64) {
	o.memory += sz
	if o.memory > o.memPeak {
		o.memPeak = o.memory
	}
	o.ctx.accountHold(sz)
}

// profExtras implements opStatser.
func (o *sortOp) profExtras(x *opExtras) { x.memPeak = o.memPeak }

func (o *sortOp) Push(fr *frame.Frame) error {
	defer o.ctx.recycle(fr)
	return forEachTupleView(fr, o.ctx.EagerDecode, func(lt *frame.LazyTuple) error {
		keys := make([]item.Sequence, len(o.spec.Keys))
		for i, k := range o.spec.Keys {
			v, err := k.Key.Eval(o.ctx.RT, lt)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		raw := lt.Raw()
		stored := make([][]byte, len(raw))
		var sz int64 = 48
		for i, f := range raw {
			stored[i] = append([]byte(nil), f...)
			sz += int64(len(f))
		}
		// The evaluated key sequences are retained until Close too — charge
		// them, not just the raw tuple bytes.
		for _, k := range keys {
			sz += item.SizeBytesSeq(k)
		}
		o.rows = append(o.rows, sortRow{keys: keys, raw: stored})
		o.hold(sz)
		return nil
	})
}

func (o *sortOp) Close() error {
	defer func() {
		if o.ctx.RT != nil && o.ctx.RT.Accountant != nil {
			o.ctx.RT.Accountant.Release(o.memory)
		}
		o.memory = 0
	}()
	sort.SliceStable(o.rows, func(i, j int) bool {
		for k := range o.spec.Keys {
			c := item.CompareSeq(o.rows[i].keys[k], o.rows[j].keys[k])
			if o.spec.Keys[k].Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	b := newFrameBuilder(o.ctx, o.out)
	for _, r := range o.rows {
		if err := b.emit(r.raw); err != nil {
			return err
		}
	}
	o.rows = nil
	if err := b.flush(); err != nil {
		return err
	}
	return o.out.Close()
}
