package hyracks

import (
	"time"

	"vxq/internal/frame"
	"vxq/internal/runtime"
)

// RunStaged executes a job sequentially, one fragment-partition task at a
// time, materializing every exchange. Results are identical to the
// pipelined executor; in addition each task's single-threaded wall-clock
// work is measured cleanly (no scheduler interference), which is what the
// virtual-time cluster scheduler consumes.
func RunStaged(job *Job, env *Env) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	acct := env.accountant()
	pool := env.pool()
	// Statically dealt morsel queues: tasks run one after another here, so a
	// shared cursor would hand every morsel to whichever task runs first.
	// Round-robin dealing keeps per-task work — and the measured times the
	// virtual-time scheduler consumes — deterministic.
	queues, qstats, err := buildScanQueues(job, env, false)
	if err != nil {
		return nil, err
	}
	// exchange buffers: exchange id -> consumer partition -> frames.
	buffers := make(map[int][][]*frame.Frame)
	for _, e := range job.Exchanges {
		buffers[e.ID] = make([][]*frame.Frame, e.ConsumerPartitions)
	}
	res := &Result{}
	res.Stats.FilesSkipped = qstats.filesSkipped
	res.Stats.MorselsSkipped = qstats.morselsSkipped
	res.Stats.ColdIndexBuilds = qstats.coldIndexBuilds
	collector := &CollectSink{}
	var jp *jobProf
	if env.Profile {
		jp = &jobProf{epoch: time.Now()}
	}
	for _, f := range job.Fragments {
		for p := 0; p < f.Partitions; p++ {
			rt := &runtime.Ctx{
				Source:     env.Source,
				Accountant: acct,
				Stats:      &runtime.Stats{},
				FrameSize:  env.FrameSize,
				ChunkSize:  env.ChunkSize,
				Indexes:    env.Indexes,
			}
			ctx := &TaskCtx{RT: rt, Partition: p, FrameSize: env.FrameSize, EagerDecode: env.EagerReference, Pool: pool, morsels: queues[f.ID],
				SpillDir: env.SpillDir, SpillBudget: env.OpMemoryBudget, SpillFanout: env.SpillPartitions}
			if jp != nil {
				ctx.prof = newTaskProf(job, f, p, jp.epoch)
			}
			var terminal Writer
			if f.SinkExchange >= 0 {
				e := job.exchange(f.SinkExchange)
				dests := make([]frameDest, e.ConsumerPartitions)
				for i := range dests {
					dests[i] = &bufferDest{buf: buffers, exch: e.ID, part: i}
				}
				terminal = newExchangeWriter(ctx, e, dests)
			} else {
				terminal = recycleSink{ctx: ctx, w: collector}
			}
			chain := buildTaskChain(ctx, f, terminal)
			in := sourceInput{recv: func(exchID int, each func(*frame.Frame) error) error {
				// Frames are dropped from the buffer as they are delivered —
				// the callback takes ownership (and recycles them), so the
				// error-path sweep below must not see them again.
				q := buffers[exchID][p]
				for i, fr := range q {
					q[i] = nil
					if err := each(fr); err != nil {
						buffers[exchID][p] = q[i+1:]
						return err
					}
				}
				buffers[exchID][p] = nil
				return nil
			}}
			start := time.Now()
			err := runSource(ctx, f, chain, in)
			elapsed := time.Since(start)
			res.Tasks = append(res.Tasks, TaskTime{
				Fragment: f.ID, Partition: p, Elapsed: elapsed,
				Morsels: ctx.MorselsScanned, Steals: ctx.MorselsStolen,
			})
			res.Stats.Add(rt.Stats)
			if ctx.prof != nil {
				ctx.prof.finish(ctx, start.Sub(jp.epoch).Nanoseconds(), elapsed.Nanoseconds())
				jp.add(ctx.prof)
			}
			if err != nil {
				// Frames still buffered for later tasks were never consumed;
				// return them so the pool's accounting balances to zero.
				for _, parts := range buffers {
					for _, frames := range parts {
						for _, fr := range frames {
							if fr != nil {
								pool.Put(fr)
							}
						}
					}
				}
				return nil, err
			}
		}
		// Inputs of this fragment are no longer needed; drop them so large
		// staged runs do not accumulate every intermediate.
		switch s := f.Source.(type) {
		case ExchangeSource:
			delete(buffers, s.Exchange)
		case JoinSource:
			delete(buffers, s.Build)
			delete(buffers, s.Probe)
		}
	}
	if jp != nil {
		res.Profile = jp.buildProfile(job, time.Since(jp.epoch).Nanoseconds())
	}
	res.Rows = collector.Rows
	res.PeakMemory = acct.Peak()
	return res, nil
}

type bufferDest struct {
	buf  map[int][][]*frame.Frame
	exch int
	part int
}

func (d *bufferDest) send(fr *frame.Frame) error {
	d.buf[d.exch][d.part] = append(d.buf[d.exch][d.part], fr)
	return nil
}
