package hyracks

import (
	"bytes"
	"fmt"

	"vxq/internal/frame"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

// keyEncoder resolves a tuple's key expressions into encoded key fields and
// their combined hash without decoding or re-allocating anything in the
// steady state. Column-reference keys (the overwhelmingly common case after
// the rewrite rules) are sliced straight out of the tuple's raw fields;
// computed keys are evaluated and encoded into a reusable buffer.
//
// The returned field slices are scratch: they alias either the frame or the
// encoder's buffer and are only valid until the next resolve call. Callers
// that retain keys (group tables, join builds) must copy them (byteArena).
type keyEncoder struct {
	evals  []runtime.Evaluator
	cols   []int    // column per key when every eval is a ColumnEval, else nil
	fields [][]byte // scratch: resolved encoded key fields
	buf    []byte   // scratch: encodings of computed keys
	offs   []int    // scratch: field boundaries inside buf
}

// testHashEncodedField, when non-nil, replaces item.HashEncoded so tests can
// force hash collisions onto the bucket-chain/byte-compare path.
var testHashEncodedField func([]byte) (uint64, error)

func hashEncodedField(b []byte) (uint64, error) {
	if testHashEncodedField != nil {
		return testHashEncodedField(b)
	}
	return item.HashEncoded(b)
}

func newKeyEncoder(evals []runtime.Evaluator) *keyEncoder {
	ke := &keyEncoder{evals: evals, fields: make([][]byte, len(evals))}
	cols := make([]int, len(evals))
	for i, ev := range evals {
		ce, ok := ev.(runtime.ColumnEval)
		if !ok {
			cols = nil
			break
		}
		cols[i] = ce.Col
	}
	ke.cols = cols
	return ke
}

// resolve computes the encoded key fields and combined hash of one tuple.
// The hash combine matches the decoded path exactly: h starts at
// 1469598103934665603 and folds each key's sequence hash with h*prime ^ hk,
// where HashEncoded == HashSeq by the item package's consistency guarantee.
func (ke *keyEncoder) resolve(ctx *TaskCtx, lt *frame.LazyTuple) ([][]byte, uint64, error) {
	if ke.cols != nil {
		nraw := lt.RawFieldCount()
		for i, c := range ke.cols {
			if c < 0 || c >= nraw {
				// Match ColumnEval's bounds error (appended fields never
				// reach key resolution: exchanges and blocking operators see
				// only framed tuples).
				return nil, 0, fmt.Errorf("runtime: column %d out of range [0,%d)", c, lt.FieldCount())
			}
			ke.fields[i] = lt.RawField(c)
		}
	} else {
		// Computed keys: evaluate, then encode into one buffer. Offsets are
		// recorded during the loop and sliced afterwards, because append may
		// move the buffer while later keys are encoded.
		ke.buf = ke.buf[:0]
		ke.offs = ke.offs[:0]
		for _, ev := range ke.evals {
			v, err := ev.Eval(ctx.RT, lt)
			if err != nil {
				return nil, 0, err
			}
			ke.offs = append(ke.offs, len(ke.buf))
			ke.buf = item.EncodeSeq(ke.buf, v)
		}
		ke.offs = append(ke.offs, len(ke.buf))
		for i := range ke.evals {
			ke.fields[i] = ke.buf[ke.offs[i]:ke.offs[i+1]]
		}
	}
	var h uint64 = 1469598103934665603
	for _, f := range ke.fields {
		hf, err := hashEncodedField(f)
		if err != nil {
			return nil, 0, err
		}
		h = h*1099511628211 ^ hf
	}
	return ke.fields, h, nil
}

// matchEncodedKey compares two resolved key-field lists. Byte equality is
// the fast path; on mismatch it falls back to the structural EqualEncoded,
// because equal values may encode differently (object key order, -0.0).
// Byte-equal encodings are treated as equal without the structural walk,
// which coincides with EqualSeq for everything JSON can express (only NaN,
// unrepresentable in JSON, is bitwise-equal yet unequal).
func matchEncodedKey(a, b [][]byte) (bool, error) {
	for i := range a {
		if bytes.Equal(a[i], b[i]) {
			continue
		}
		eq, err := item.EqualEncoded(a[i], b[i])
		if err != nil || !eq {
			return false, err
		}
	}
	return true, nil
}
