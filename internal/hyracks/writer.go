// Package hyracks implements the dataflow execution engine underneath the
// query processor, modeled on the Hyracks platform (Borkar et al., ICDE
// 2011) that Apache VXQuery runs on: push-based physical operators exchange
// fixed-size frames of serialized tuples; jobs are DAGs of operator chains
// ("fragments") connected by exchange connectors; each fragment runs in a
// number of partitions.
//
// Two executors are provided. The pipelined executor runs every
// fragment-partition as a goroutine connected by channels, like Hyracks'
// pipelined connectors. The staged executor runs partitions sequentially
// with materialized exchanges and records per-partition wall-clock work;
// the cluster experiments feed those measurements into the virtual-time
// scheduler (internal/simsched) to model multi-core/multi-node schedules on
// machines that do not physically have them.
package hyracks

import (
	"fmt"

	"vxq/internal/frame"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

// Writer is the push-based operator interface (Hyracks' IFrameWriter):
// Open once, Push any number of frames, Close once. Any error aborts the
// task.
type Writer interface {
	Open() error
	Push(fr *frame.Frame) error
	Close() error
}

// TaskCtx is the per-partition execution context.
type TaskCtx struct {
	RT        *runtime.Ctx
	Partition int
	FrameSize int
}

func (c *TaskCtx) frameSize() int {
	if c.FrameSize > 0 {
		return c.FrameSize
	}
	if c.RT != nil && c.RT.FrameSize > 0 {
		return c.RT.FrameSize
	}
	return frame.DefaultFrameSize
}

// account charges n bytes to the accountant while f runs.
func (c *TaskCtx) account(n int64) func() {
	if c.RT == nil || c.RT.Accountant == nil || n == 0 {
		return func() {}
	}
	c.RT.Accountant.Allocate(n)
	return func() { c.RT.Accountant.Release(n) }
}

// frameBuilder accumulates output tuples into frames and pushes full frames
// downstream. It is the standard tail of every operator implementation.
type frameBuilder struct {
	ctx *TaskCtx
	out Writer
	fr  *frame.Frame
}

func newFrameBuilder(ctx *TaskCtx, out Writer) *frameBuilder {
	return &frameBuilder{ctx: ctx, out: out, fr: frame.New(ctx.frameSize())}
}

func (b *frameBuilder) emit(fields [][]byte) error {
	if b.fr.AppendTuple(fields) {
		if b.fr.Oversize() {
			// An oversized tuple occupies its own frame; ship it at once.
			return b.flush()
		}
		return nil
	}
	if err := b.flush(); err != nil {
		return err
	}
	if !b.fr.AppendTuple(fields) {
		return fmt.Errorf("hyracks: tuple of %d bytes could not be framed", tupleBytes(fields))
	}
	if b.fr.Oversize() {
		return b.flush()
	}
	return nil
}

func tupleBytes(fields [][]byte) int {
	n := 0
	for _, f := range fields {
		n += len(f)
	}
	return n
}

func (b *frameBuilder) emitSeqs(seqs []item.Sequence) error {
	return b.emit(frame.EncodeFields(seqs))
}

func (b *frameBuilder) flush() error {
	if b.fr.TupleCount() == 0 {
		return nil
	}
	release := b.ctx.account(int64(b.fr.Size()))
	err := b.out.Push(b.fr)
	release()
	b.fr = frame.New(b.ctx.frameSize())
	return err
}

// forEachTuple decodes every tuple of a frame and calls f with its fields.
func forEachTuple(fr *frame.Frame, f func(fields []item.Sequence, raw [][]byte) error) error {
	for i := 0; i < fr.TupleCount(); i++ {
		tu, err := fr.Tuple(i)
		if err != nil {
			return err
		}
		seqs, err := frame.DecodeFields(tu.Fields())
		if err != nil {
			return err
		}
		if err := f(seqs, tu.Fields()); err != nil {
			return err
		}
	}
	return nil
}

// CollectSink is a terminal Writer that materializes every received tuple
// as decoded field sequences. It is used as the job's result collector and
// inside nested-plan (subplan) execution.
type CollectSink struct {
	Rows [][]item.Sequence
}

// Open implements Writer.
func (s *CollectSink) Open() error { return nil }

// Push decodes and stores all tuples of the frame.
func (s *CollectSink) Push(fr *frame.Frame) error {
	return forEachTuple(fr, func(fields []item.Sequence, _ [][]byte) error {
		s.Rows = append(s.Rows, fields)
		return nil
	})
}

// Close implements Writer.
func (s *CollectSink) Close() error { return nil }
