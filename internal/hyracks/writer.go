// Package hyracks implements the dataflow execution engine underneath the
// query processor, modeled on the Hyracks platform (Borkar et al., ICDE
// 2011) that Apache VXQuery runs on: push-based physical operators exchange
// fixed-size frames of serialized tuples; jobs are DAGs of operator chains
// ("fragments") connected by exchange connectors; each fragment runs in a
// number of partitions.
//
// Two executors are provided. The pipelined executor runs every
// fragment-partition as a goroutine connected by channels, like Hyracks'
// pipelined connectors. The staged executor runs partitions sequentially
// with materialized exchanges and records per-partition wall-clock work;
// the cluster experiments feed those measurements into the virtual-time
// scheduler (internal/simsched) to model multi-core/multi-node schedules on
// machines that do not physically have them.
package hyracks

import (
	"fmt"

	"vxq/internal/frame"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

// Writer is the push-based operator interface (Hyracks' IFrameWriter):
// Open once, Push any number of frames, Close once. Any error aborts the
// task.
type Writer interface {
	Open() error
	Push(fr *frame.Frame) error
	Close() error
}

// TaskCtx is the per-partition execution context.
type TaskCtx struct {
	RT        *runtime.Ctx
	Partition int
	FrameSize int
	// EagerDecode switches the operators to their eager reference
	// implementations: every field of every tuple is decoded before the
	// operator runs, and group-by/exchange/join hash and compare decoded
	// sequences. It reproduces the pre-lazy pipeline for differential tests
	// and benchmarks, mirroring jsonparse's SetReferenceSkip.
	EagerDecode bool
	// Pool recycles output frames across operators and tasks (may be nil,
	// in which case frames are plainly allocated and never returned).
	Pool *frame.Pool
	// SpillDir, SpillBudget and SpillFanout configure the out-of-core layer
	// (copied from Env.SpillDir / Env.OpMemoryBudget / Env.SpillPartitions).
	// With SpillBudget 0 the blocking operators never spill. Eager reference
	// mode never spills either — it stays the pure in-memory baseline the
	// differential tests compare against.
	SpillDir    string
	SpillBudget int64
	SpillFanout int
	// morsels is the scan work queue shared by the fragment's tasks (nil for
	// non-scan fragments and for fragments run outside an executor).
	morsels *morselQueue
	// MorselsScanned counts the morsels this task processed.
	MorselsScanned int
	// MorselsStolen counts how many of those morsels were steals: taken off
	// another partition's static round-robin share by the shared cursor.
	MorselsStolen int
	// prof is this task's profile accumulator (nil unless Env.Profile).
	// It is owned by the task's goroutine alone — per-worker collection with
	// no shared-mutable state; the executor merges finished tasks at job end.
	prof *taskProf
}

func (c *TaskCtx) frameSize() int {
	if c.FrameSize > 0 {
		return c.FrameSize
	}
	if c.RT != nil && c.RT.FrameSize > 0 {
		return c.RT.FrameSize
	}
	return frame.DefaultFrameSize
}

// newFrame obtains an empty output frame, recycled when a pool is present.
// Ownership rule (see DESIGN.md): ownership transfers with Push, and the
// receiver — the operator or sink that consumed the frame's tuples — returns
// it with recycle.
func (c *TaskCtx) newFrame() *frame.Frame {
	if c.Pool != nil {
		return c.Pool.Get()
	}
	return frame.New(c.frameSize())
}

// recycle returns a consumed frame to the pool (a no-op without one).
func (c *TaskCtx) recycle(f *frame.Frame) {
	if c.Pool != nil {
		c.Pool.Put(f)
	}
}

// account charges n bytes to the accountant while f runs.
func (c *TaskCtx) account(n int64) func() {
	if c.RT == nil || c.RT.Accountant == nil || n == 0 {
		return func() {}
	}
	c.RT.Accountant.Allocate(n)
	return func() { c.RT.Accountant.Release(n) }
}

// frameBuilder accumulates output tuples into frames and pushes full frames
// downstream. It is the standard tail of every operator implementation. The
// current frame is obtained lazily from the pool on the first emit (so the
// idle builders of a wide hash exchange hold nothing) and ownership passes
// downstream with each Push.
type frameBuilder struct {
	ctx *TaskCtx
	out Writer
	fr  *frame.Frame
}

func newFrameBuilder(ctx *TaskCtx, out Writer) *frameBuilder {
	return &frameBuilder{ctx: ctx, out: out}
}

func (b *frameBuilder) emit(fields [][]byte) error {
	if b.fr == nil {
		b.fr = b.ctx.newFrame()
	}
	if b.fr.AppendTuple(fields) {
		if b.fr.Oversize() {
			// An oversized tuple occupies its own frame; ship it at once.
			return b.flush()
		}
		return nil
	}
	if err := b.flush(); err != nil {
		return err
	}
	b.fr = b.ctx.newFrame()
	if !b.fr.AppendTuple(fields) {
		return fmt.Errorf("hyracks: tuple of %d bytes could not be framed", tupleBytes(fields))
	}
	if b.fr.Oversize() {
		return b.flush()
	}
	return nil
}

func tupleBytes(fields [][]byte) int {
	n := 0
	for _, f := range fields {
		n += len(f)
	}
	return n
}

func (b *frameBuilder) flush() error {
	// nil receiver: an operator closed before its Open ran (a chain torn down
	// after a mid-Open failure) has no builder yet and nothing to flush.
	if b == nil || b.fr == nil {
		return nil
	}
	if b.fr.TupleCount() == 0 {
		b.ctx.recycle(b.fr)
		b.fr = nil
		return nil
	}
	fr := b.fr
	b.fr = nil // ownership moves to the receiver, which recycles it
	return b.out.Push(fr)
}

// discard recycles the builder's pending frame without pushing it. Error
// paths that abandon a builder mid-emit must call it — the pending frame was
// charged at Get and nothing downstream will ever recycle it.
func (b *frameBuilder) discard() {
	if b == nil || b.fr == nil {
		return
	}
	b.ctx.recycle(b.fr)
	b.fr = nil
}

// forEachTuple decodes every tuple of a frame and calls f with its decoded
// field sequences and raw field encodings. Both slices are scratch reused
// from tuple to tuple — a callback that retains them across calls must copy
// the slice (the sequences and bytes inside are only valid as long as the
// frame is). The scratch lives on this call's stack, so nested iteration
// (a subplan pushing an inner frame mid-callback) is safe.
func forEachTuple(fr *frame.Frame, f func(fields []item.Sequence, raw [][]byte) error) error {
	var (
		raw  [][]byte
		seqs []item.Sequence
		err  error
	)
	for i := 0; i < fr.TupleCount(); i++ {
		raw, err = fr.TupleFields(i, raw)
		if err != nil {
			return err
		}
		seqs, err = frame.DecodeFieldsInto(seqs, raw)
		if err != nil {
			return err
		}
		if err := f(seqs, raw); err != nil {
			return err
		}
	}
	return nil
}

// forEachTupleView iterates a frame through a lazy tuple view: fields are
// decoded only when the callback asks for them (and memoized per tuple).
// With eager set, every field is decoded up front — the reference mode that
// reproduces the pre-lazy forEachTuple behaviour. The view is rebound from
// tuple to tuple; a callback must not retain it across calls (sequences
// obtained from Field are stable and may be retained). The view lives on
// this call's stack, so nested iteration (a subplan pushing an inner frame
// mid-callback) is safe.
func forEachTupleView(fr *frame.Frame, eager bool, f func(lt *frame.LazyTuple) error) error {
	var (
		raw [][]byte
		lt  frame.LazyTuple
		err error
	)
	for i := 0; i < fr.TupleCount(); i++ {
		raw, err = fr.TupleFields(i, raw)
		if err != nil {
			return err
		}
		lt.Reset(raw)
		if eager {
			if err := lt.DecodeAll(); err != nil {
				return err
			}
		}
		if err := f(&lt); err != nil {
			return err
		}
	}
	return nil
}

// forEachTupleRaw is forEachTuple without the field decode, for consumers
// that only route or copy raw bytes. The raw slice is scratch, as above.
func forEachTupleRaw(fr *frame.Frame, f func(raw [][]byte) error) error {
	var (
		raw [][]byte
		err error
	)
	for i := 0; i < fr.TupleCount(); i++ {
		raw, err = fr.TupleFields(i, raw)
		if err != nil {
			return err
		}
		if err := f(raw); err != nil {
			return err
		}
	}
	return nil
}

// CollectSink is a terminal Writer that materializes every received tuple
// as decoded field sequences. It is used as the job's result collector and
// inside nested-plan (subplan) execution.
type CollectSink struct {
	Rows [][]item.Sequence
}

// Open implements Writer.
func (s *CollectSink) Open() error { return nil }

// Push decodes and stores all tuples of the frame. The fields slice handed
// to the callback is per-frame scratch, so each stored row is a copy; the
// decoded sequences themselves never alias the frame and are safe to keep.
func (s *CollectSink) Push(fr *frame.Frame) error {
	return forEachTuple(fr, func(fields []item.Sequence, _ [][]byte) error {
		s.Rows = append(s.Rows, append([]item.Sequence(nil), fields...))
		return nil
	})
}

// Close implements Writer.
func (s *CollectSink) Close() error { return nil }

// recycleSink wraps a terminal writer that copies everything it needs out of
// each frame during Push (CollectSink and friends), returning the frame to
// the pool afterwards so terminal fragments participate in recycling too.
type recycleSink struct {
	ctx *TaskCtx
	w   Writer
}

func (s recycleSink) Open() error { return s.w.Open() }

func (s recycleSink) Push(fr *frame.Frame) error {
	err := s.w.Push(fr)
	s.ctx.recycle(fr)
	return err
}

func (s recycleSink) Close() error { return s.w.Close() }
