package hyracks

import (
	"fmt"
	"strings"
	"testing"

	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// bigSensorFile builds one well-formed sensor file of at least minBytes.
func bigSensorFile(minBytes int) []byte {
	var sb strings.Builder
	sb.WriteString(`{"root":[`)
	for i := 0; sb.Len() < minBytes; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb,
			`{"metadata":{"count":1},"results":[{"date":"2013-12-25T00:00","dataType":"TMIN","station":"S%06d","value":%d}]}`,
			i, i%40)
	}
	sb.WriteString(`]}`)
	return []byte(sb.String())
}

// TestScanPeakMemoryBoundedByChunk is the acceptance criterion of the
// streaming-ingest refactor: scanning one file at least 4x the chunk buffer
// must peak at O(chunk + frames), not O(file). Before the refactor the scan
// charged the whole file to the accountant and this fails.
func TestScanPeakMemoryBoundedByChunk(t *testing.T) {
	chunk := jsonparse.DefaultChunkSize // 64 KiB
	data := bigSensorFile(4 * chunk)
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{
		"/sensors": {"big.json": data},
	}}
	res, err := RunStaged(scanJob(1, measurementsPath()), &Env{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BytesRead != int64(len(data)) {
		t.Errorf("BytesRead = %d, want %d", res.Stats.BytesRead, len(data))
	}
	if res.PeakMemory < int64(chunk) {
		t.Errorf("PeakMemory = %d, want >= chunk buffer %d", res.PeakMemory, chunk)
	}
	if lim := int64(len(data)) / 2; res.PeakMemory >= lim {
		t.Errorf("PeakMemory = %d for a %d byte file; streaming scan must stay under %d",
			res.PeakMemory, len(data), lim)
	}
}

// TestScanErrorNamesFileAndOffset: a failed scan must say which file broke
// and where, for both executors.
func TestScanErrorNamesFileAndOffset(t *testing.T) {
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{
		"/sensors": {"truncated.json": []byte(`{"root": [ {"date": "2013-`)},
	}}
	for name, run := range map[string]func(*Job, *Env) (*Result, error){
		"staged":    RunStaged,
		"pipelined": RunPipelined,
	} {
		_, err := run(scanJob(1, measurementsPath()), &Env{Source: src})
		if err == nil {
			t.Fatalf("%s: scan of a truncated file must fail", name)
		}
		if !strings.Contains(err.Error(), "truncated.json") {
			t.Errorf("%s: error %q does not name the file", name, err)
		}
		if !strings.Contains(err.Error(), "offset") {
			t.Errorf("%s: error %q does not carry a position", name, err)
		}
	}
}

// TestScanHonoursEnvChunkSize: the chunk size plumbed through Env must reach
// the accountant charge (a larger configured chunk raises the floor).
func TestScanHonoursEnvChunkSize(t *testing.T) {
	big := 256 << 10
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{
		"/sensors": {"f.json": bigSensorFile(1 << 10)},
	}}
	res, err := RunStaged(scanJob(1, measurementsPath()), &Env{Source: src, ChunkSize: big})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakMemory < int64(big) {
		t.Errorf("PeakMemory = %d, want >= configured chunk %d", res.PeakMemory, big)
	}
}
