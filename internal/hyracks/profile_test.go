package hyracks

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vxq/internal/runtime"
)

func TestProfileNilWhenOff(t *testing.T) {
	for mode, run := range map[string]func(*Job, *Env) (*Result, error){
		"staged":    RunStaged,
		"pipelined": RunPipelined,
	} {
		res, err := run(twoStepGroupByJob(2, 2), &Env{Source: testSource()})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.Profile != nil {
			t.Errorf("%s: Profile != nil without Env.Profile", mode)
		}
	}
}

// findNode walks the profile tree for the first node whose name contains sub.
func findNode(n *ProfileNode, sub string) *ProfileNode {
	if n == nil {
		return nil
	}
	if strings.Contains(n.Name, sub) {
		return n
	}
	for _, c := range n.Children {
		if got := findNode(c, sub); got != nil {
			return got
		}
	}
	return nil
}

// TestProfileTreeMirrorsPlan: the two-step group-by compiles to
// collector <- global GROUPBY <- RECEIVE <- EXCHANGE[hash] <- local GROUPBY
// <- DATASCAN, and the profile tree must render exactly that chain with the
// right kinds and partition counts.
func TestProfileTreeMirrorsPlan(t *testing.T) {
	for mode, run := range map[string]func(*Job, *Env) (*Result, error){
		"staged":    RunStaged,
		"pipelined": RunPipelined,
	} {
		res, err := run(twoStepGroupByJob(3, 2), &Env{Source: testSource(), Profile: true})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		p := res.Profile
		if p == nil {
			t.Fatalf("%s: no profile", mode)
		}
		root := p.Root
		if root == nil || root.Name != "RESULT" || root.Kind != "sink" {
			t.Fatalf("%s: root = %+v, want RESULT sink", mode, root)
		}
		if root.Partitions != 2 {
			t.Errorf("%s: root partitions = %d, want 2", mode, root.Partitions)
		}
		// Chain below the collector: global group-by, then the receive source.
		global := findNode(root, "GROUP-BY")
		if global == nil || global.Kind != "group-by" || global.Fragment != 1 {
			t.Fatalf("%s: global group-by node = %+v", mode, global)
		}
		recv := findNode(global, "RECEIVE")
		if recv == nil || recv.Kind != "receive" {
			t.Fatalf("%s: receive node missing under global group-by", mode)
		}
		// The producing fragment hangs under the receive: its top is the
		// exchange sink, its leaf the scan.
		exch := findNode(recv, "EXCHANGE exch#0")
		if exch == nil || exch.Kind != "exchange" {
			t.Fatalf("%s: producer exchange node missing under receive", mode)
		}
		if exch.Fragment != 0 || exch.Partitions != 3 {
			t.Errorf("%s: exchange node fragment/partitions = %d/%d, want 0/3",
				mode, exch.Fragment, exch.Partitions)
		}
		scan := findNode(exch, "DATASCAN")
		if scan == nil || scan.Kind != "scan" {
			t.Fatalf("%s: scan leaf missing", mode)
		}
		if scan.Metrics.Morsels == 0 {
			t.Errorf("%s: scan morsels = 0", mode)
		}
		// Span inventory: (2 ops-stages + source + sink would be 3 stages per
		// fragment here: source, one group-by, sink) x partitions.
		wantSpans := 3*3 + 3*2
		if len(p.Spans) != wantSpans {
			t.Errorf("%s: %d spans, want %d", mode, len(p.Spans), wantSpans)
		}
		for _, sp := range p.Spans {
			if sp.SelfNS < 0 {
				t.Errorf("%s: span %s has negative self time", mode, sp.Name)
			}
		}
	}
}

// TestProfileSelfTimesSumToWall: under the staged executor tasks run one at a
// time, so the exclusive per-operator times must account for the job wall
// within the documented 10% bound (executor setup between tasks is all that
// is missing).
func TestProfileSelfTimesSumToWall(t *testing.T) {
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{
		"/sensors": {
			"a.json": ndSensorFile(1500, 120),
			"b.json": ndSensorFile(1500, 120),
		},
	}}
	res, err := RunStaged(twoStepGroupByJob(4, 2), &Env{Source: src, Profile: true, MorselSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	sum, wall := p.SelfSumNS(), p.WallNS
	if wall <= 0 {
		t.Fatalf("wall = %d", wall)
	}
	ratio := float64(sum) / float64(wall)
	if ratio < 0.9 || ratio > 1.001 {
		t.Errorf("self-time sum %d / wall %d = %.3f, want within [0.9, 1.0]", sum, wall, ratio)
	}
}

// TestProfileFlowCounts checks the in/out bookkeeping on a single-partition
// scan: every tuple the scan emits enters the sink, out of stage k equals in
// of stage k+1, and the result sink sees all 6 measurements.
func TestProfileFlowCounts(t *testing.T) {
	cond := call("eq", call("value", col(0), constStr("dataType")), constStr("TMIN"))
	res, err := RunStaged(scanJob(1, measurementsPath(), &SelectSpec{Cond: cond}),
		&Env{Source: testSource(), Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	// Spans are sorted stage-descending: sink, select, source.
	if len(p.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(p.Spans))
	}
	sink, sel, src := p.Spans[0], p.Spans[1], p.Spans[2]
	if src.Kind != "scan" || sel.Kind != "select" || sink.Kind != "sink" {
		t.Fatalf("span order wrong: %s/%s/%s", src.Kind, sel.Kind, sink.Kind)
	}
	if src.TuplesOut != 6 {
		t.Errorf("scan tuples out = %d, want 6", src.TuplesOut)
	}
	if sel.TuplesIn != 6 || sel.TuplesOut != 4 {
		t.Errorf("select in/out = %d/%d, want 6/4", sel.TuplesIn, sel.TuplesOut)
	}
	if sink.TuplesIn != 4 || sink.TuplesOut != 4 {
		t.Errorf("sink in/out = %d/%d, want 4/4", sink.TuplesIn, sink.TuplesOut)
	}
	if src.TuplesOut != sel.TuplesIn || sel.TuplesOut != sink.TuplesIn {
		t.Error("stage out != next stage in")
	}
	if sel.BytesIn == 0 || sel.FramesIn == 0 {
		t.Errorf("select frames/bytes in = %d/%d, want > 0", sel.FramesIn, sel.BytesIn)
	}
}

// TestProfileExchangeForwardVsRebuilt: a hash exchange re-frames tuple by
// tuple (rebuilt), merge and 1:1 exchanges hand frames through (forwarded).
// The join job has both kinds.
func TestProfileExchangeForwardVsRebuilt(t *testing.T) {
	res, err := RunStaged(joinJob(2), &Env{Source: testSource(), Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	var hash, merge *Span
	for i := range res.Profile.Spans {
		sp := &res.Profile.Spans[i]
		if sp.Kind != "exchange" {
			continue
		}
		switch {
		case strings.Contains(sp.Name, "[HASH]") && hash == nil:
			hash = sp
		case strings.Contains(sp.Name, "[MERGE]") && merge == nil:
			merge = sp
		}
	}
	if hash == nil || merge == nil {
		t.Fatalf("missing exchange spans (hash=%v merge=%v)", hash != nil, merge != nil)
	}
	if hash.FramesRebuilt == 0 || hash.FramesForwarded != 0 {
		t.Errorf("hash exchange fwd/rebuilt = %d/%d, want 0/>0",
			hash.FramesForwarded, hash.FramesRebuilt)
	}
	if merge.FramesForwarded == 0 || merge.FramesRebuilt != 0 {
		t.Errorf("merge exchange fwd/rebuilt = %d/%d, want >0/0",
			merge.FramesForwarded, merge.FramesRebuilt)
	}
	// The join source span carries the build table's counters; table memory
	// must have been charged and the arena must have interned the keys.
	var joinSrc *Span
	for i := range res.Profile.Spans {
		sp := &res.Profile.Spans[i]
		if sp.Kind == "join" && sp.Stage == 0 {
			joinSrc = sp
			break
		}
	}
	if joinSrc == nil {
		t.Fatal("no join source span")
	}
	if joinSrc.MemPeak == 0 || joinSrc.ArenaBytes == 0 {
		t.Errorf("join mem/arena = %d/%d, want > 0", joinSrc.MemPeak, joinSrc.ArenaBytes)
	}
}

// TestProfileGroupByCounters: the group-by span surfaces held-memory
// high-water and arena bytes.
func TestProfileGroupByCounters(t *testing.T) {
	res, err := RunStaged(twoStepGroupByJob(2, 2), &Env{Source: testSource(), Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range res.Profile.Spans {
		if sp.Kind == "group-by" && sp.MemPeak > 0 && sp.ArenaBytes > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no group-by span with mem peak and arena bytes")
	}
}

// TestProfileTraceRoundTrip: WriteTrace emits JSON that decodes back to the
// same spans, and every span carries the documented schema fields.
func TestProfileTraceRoundTrip(t *testing.T) {
	res, err := RunStaged(twoStepGroupByJob(2, 2), &Env{Source: testSource(), Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Profile.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("trace does not decode: %v", err)
	}
	if len(back.Spans) != len(res.Profile.Spans) || back.WallNS != res.Profile.WallNS {
		t.Errorf("round trip lost data: %d/%d spans", len(back.Spans), len(res.Profile.Spans))
	}
	if back.Root == nil || back.Root.Name != res.Profile.Root.Name {
		t.Error("round trip lost the tree root")
	}
	// Schema check on the raw JSON: every span object must carry the
	// documented keys.
	var raw struct {
		Spans []map[string]any `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	required := []string{
		"fragment", "partition", "stage", "name", "kind", "start_ns", "end_ns",
		"push_ns", "open_close_ns", "self_ns",
		"frames_in", "tuples_in", "bytes_in",
		"frames_out", "tuples_out", "bytes_out",
		"frames_forwarded", "frames_rebuilt",
		"mem_peak", "hash_collisions", "arena_bytes",
		"morsels", "morsel_steals", "morsels_skipped",
	}
	for _, sp := range raw.Spans {
		for _, k := range required {
			if _, ok := sp[k]; !ok {
				t.Fatalf("span missing %q: %v", k, sp)
			}
		}
	}
}

// TestProfileString renders the annotated plan and spot-checks the pieces the
// CLI relies on.
func TestProfileString(t *testing.T) {
	res, err := RunStaged(twoStepGroupByJob(2, 2), &Env{Source: testSource(), Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Profile.String()
	for _, want := range []string{"profile: wall", "RESULT", "GROUP-BY", "DATASCAN", "EXCHANGE exch#0", "self ", "morsels "} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering lacks %q:\n%s", want, s)
		}
	}
}

// TestProfileResultsUnchanged: profiling must not alter results — same rows
// with and without it, on both executors.
func TestProfileResultsUnchanged(t *testing.T) {
	base := runBoth(t, joinJob(2), envFactory(testSource()))
	prof := runBoth(t, joinJob(2), func() *Env { return &Env{Source: testSource(), Profile: true} })
	if len(base.Rows) != len(prof.Rows) {
		t.Fatalf("row count changed under profiling: %d vs %d", len(base.Rows), len(prof.Rows))
	}
}

// TestMorselStealCounting: with a shared cursor, a morsel taken off another
// partition's round-robin share counts as a steal.
func TestMorselStealCounting(t *testing.T) {
	morsels := []morsel{
		{file: "a", start: 0, end: 10, first: true},
		{file: "a", start: 10, end: 20},
		{file: "a", start: 20, end: 30},
		{file: "a", start: 30, end: 40},
	}
	q := newMorselQueue(morsels, 2, true)
	// Partition 0 drains the whole queue: indexes 0 and 2 are its own share,
	// 1 and 3 are steals from partition 1.
	var steals, own int
	for {
		_, stolen, ok := q.take(0)
		if !ok {
			break
		}
		if stolen {
			steals++
		} else {
			own++
		}
	}
	if own != 2 || steals != 2 {
		t.Errorf("own/steals = %d/%d, want 2/2", own, steals)
	}
}
