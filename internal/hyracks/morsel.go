package hyracks

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// DefaultMorselSize is the default byte-range granularity of morsel-driven
// scans: files larger than this are split into independently schedulable
// byte ranges, so one oversized file no longer serializes onto a single
// partition (the skew problem of static file striding).
const DefaultMorselSize int64 = 4 << 20

// DefaultColdIndexMinBytes is the file size at which a cold scan — a
// raw-JSON file with no recorded record-boundary index — runs the
// speculative parallel indexer at queue-build time to compute exact splits
// before cutting morsels. Below it the probe-and-realign fallback is cheap
// enough that the extra phase-1 pass isn't worth scheduling.
const DefaultColdIndexMinBytes int64 = 32 << 20

// coldIndexSplitGrain is the record-start sampling granularity of the
// cold-scan boundary pass. It matches the zone-map build's default
// (index.DefaultSplitGrain) so recorded cold-scan indexes are
// indistinguishable from build-time ones.
const coldIndexSplitGrain int64 = 4 << 10

// morselOptions bundles the tuning knobs of a morsel-queue build.
type morselOptions struct {
	// morselSize is the byte-range granularity (DefaultMorselSize when <= 0).
	morselSize int64
	// coldIndexMin gates the cold-scan boundary pass
	// (DefaultColdIndexMinBytes when 0, disabled when negative).
	coldIndexMin int64
	// coldIndexWorkers is the parallel indexer's worker count (GOMAXPROCS
	// when <= 0).
	coldIndexWorkers int
}

// morsel is one unit of scan work: a byte range of one file. A record whose
// line start (the offset just past the '\n' preceding it, or offset 0)
// lies inside [start, end) belongs to this morsel, even when its tail
// extends past end — the record-alignment rule borrowed from Hadoop's line
// reader, valid because a raw '\n' never occurs inside a JSON string
// (control characters must be escaped), so newline-delimited values can be
// re-aligned from any offset. Anchoring ownership at the line start (not
// the record's first non-whitespace byte) keeps producer and consumer
// consistent when whitespace follows the separating newline, and means a
// final record without a trailing newline is owned by exactly the morsel
// its line begins in, no matter how many morsel boundaries it straddles.
type morsel struct {
	file  string
	start int64
	end   int64 // exclusive ownership limit; -1 = the whole rest of the file
	first bool  // first morsel of its file (no alignment skip)
	// aligned marks a morsel whose start is a known record start (from a
	// zone-map split index), so the consumer opens at start directly and
	// skips the probe-byte + SkipPastNewline re-alignment. Ownership is
	// unchanged: an aligned start is its own line start, so [start, end)
	// still bounds exactly the records whose line starts fall inside it.
	aligned bool
	// countsFile marks the one morsel of its file that increments
	// Stats.FilesRead. It starts out on the first morsel but moves to the
	// earliest survivor when zone pruning drops the first — first itself
	// cannot move, because it also encodes "no alignment skip at start 0".
	countsFile bool
}

// wholeFile reports whether the morsel covers its file entirely.
func (m morsel) wholeFile() bool { return m.start == 0 && m.end < 0 }

// wrap attaches the failing location to a scan error: the file path for a
// whole-file morsel, the file path plus the byte range for a split one.
func (m morsel) wrap(err error) error {
	if m.wholeFile() {
		return fmt.Errorf("%s: %w", m.file, err)
	}
	return fmt.Errorf("%s[%d:%d): %w", m.file, m.start, m.end, err)
}

// morselQueue is the per-scan-fragment work queue. In shared mode (the
// pipelined executor) every task drains one atomic cursor, which is
// work-stealing in effect: a task that finishes its morsel takes the next
// available one, so fast partitions absorb the tail of a skewed file set.
// In static mode (the staged executor, which runs tasks sequentially to
// measure clean per-task times) morsels are dealt round-robin by index, so
// each task's workload — and therefore its measured time — is deterministic.
type morselQueue struct {
	morsels []morsel
	shared  bool
	parts   int
	cursor  atomic.Int64
	local   []int // static mode: per-partition count of morsels already taken
	// skipped is the number of morsels the queue build pruned via per-zone
	// stats — set once at build time, surfaced by the profiler.
	skipped int64
}

func newMorselQueue(morsels []morsel, partitions int, shared bool) *morselQueue {
	if partitions <= 0 {
		partitions = 1
	}
	return &morselQueue{
		morsels: morsels,
		shared:  shared,
		parts:   partitions,
		local:   make([]int, partitions),
	}
}

// take returns the next morsel for the given partition, or ok=false when the
// partition's work is exhausted. Safe for concurrent use in shared mode.
// stolen reports whether the morsel would have been dealt to a different
// partition under the static round-robin deal — the work-stealing signal the
// profiler surfaces per scan task.
func (q *morselQueue) take(partition int) (m morsel, stolen, ok bool) {
	if q.shared {
		i := q.cursor.Add(1) - 1
		if i >= int64(len(q.morsels)) {
			return morsel{}, false, false
		}
		return q.morsels[i], int(i%int64(q.parts)) != partition, true
	}
	if partition < 0 || partition >= q.parts {
		return morsel{}, false, false
	}
	i := q.local[partition]*q.parts + partition
	if i >= len(q.morsels) {
		return morsel{}, false, false
	}
	q.local[partition]++
	return q.morsels[i], false, true
}

// queueStats counts the pruning and cold-index work of a morsel-queue build.
type queueStats struct {
	filesSkipped    int64 // files pruned by a file-level zone-map range
	morselsSkipped  int64 // morsels pruned by per-zone min/max stats
	coldIndexBuilds int64 // cold-scan structural-index passes run
}

func (q *queueStats) add(other queueStats) {
	q.filesSkipped += other.filesSkipped
	q.morselsSkipped += other.morselsSkipped
	q.coldIndexBuilds += other.coldIndexBuilds
}

// buildMorselQueue lists a scan's files, prunes those a zone-map index rules
// out, and splits the survivors into morsels. Raw-JSON files are split when
// the source can report their size and reopen them at an offset; everything
// else (binary ADM documents, sources without range support) degrades to one
// whole-file morsel, which is exactly the pre-morsel behaviour. Large files
// with no recorded boundary index get one from the speculative parallel
// indexer at build time (see coldIndexSplits). When the index carries
// per-zone stats for the filter's path, morsels whose every overlapping zone
// excludes the predicate are pruned before they are ever scheduled. It
// returns the queue and the pruning/cold-index counters.
func buildMorselQueue(src runtime.Source, s ScanSource, idx runtime.IndexLookup,
	partitions int, opts morselOptions, shared bool) (*morselQueue, queueStats, error) {
	var qs queueStats
	if src == nil {
		return nil, qs, fmt.Errorf("hyracks: scan without a data source")
	}
	files, err := src.Files(s.Collection)
	if err != nil {
		return nil, qs, err
	}
	morselSize := opts.morselSize
	if morselSize <= 0 {
		morselSize = DefaultMorselSize
	}
	_, canRange := src.(runtime.RangeOpener)
	sz, canSize := src.(runtime.Sizer)
	var zl runtime.ZoneLookup
	if s.Filter != nil {
		zl, _ = idx.(runtime.ZoneLookup)
	}
	var morsels []morsel
	for _, file := range files {
		if s.Filter != nil && idx != nil {
			if r, ok := idx.FileRange(s.Collection, s.Filter.Path, file); ok && !s.Filter.Admits(r) {
				qs.filesSkipped++
				continue
			}
		}
		base := len(morsels)
		split := false
		if s.Format == FormatJSON && canRange && canSize {
			size, err := sz.Size(file)
			if err == nil && size > morselSize {
				var splits []int64
				if sl, ok := idx.(runtime.SplitLookup); ok {
					splits, _ = sl.FileSplits(s.Collection, file)
				}
				if len(splits) == 0 {
					if splits = coldIndexSplits(src, s.Collection, file, size, idx, opts); splits != nil {
						qs.coldIndexBuilds++
					}
				}
				if len(splits) > 0 {
					morsels = appendAlignedMorsels(morsels, file, size, morselSize, splits)
				} else {
					for off := int64(0); off < size; off += morselSize {
						end := off + morselSize
						if end > size {
							end = size
						}
						morsels = append(morsels, morsel{file: file, start: off, end: end,
							first: off == 0, countsFile: off == 0})
					}
				}
				split = true
			}
		}
		if !split {
			morsels = append(morsels, morsel{file: file, start: 0, end: -1, first: true, countsFile: true})
		}
		if zl != nil {
			if zones, ok := zl.FileZones(s.Collection, s.Filter.Path, file); ok {
				kept := pruneMorsels(morsels[base:], zones, s.Filter)
				qs.morselsSkipped += int64(len(morsels) - base - kept)
				morsels = morsels[:base+kept]
			}
		}
	}
	q := newMorselQueue(morsels, partitions, shared)
	q.skipped = qs.morselsSkipped
	return q, qs, nil
}

// pruneMorsels filters one file's morsels in place against the file's
// per-zone stats, keeping a morsel when any overlapping zone admits the
// filter — or when part of its range is not covered by any zone (unknown is
// never pruned). It returns the number of morsels kept. Pruning is sound
// because zones and morsel ownership share the line-start anchor: every
// record a morsel [ms, me) owns has its line start, and therefore its zone,
// inside [ms, me), so if all zones overlapping the range exclude the
// predicate, no owned record can match. If the file's first morsel is
// pruned, its FilesRead-counting duty moves to the earliest survivor.
func pruneMorsels(ms []morsel, zones []runtime.Zone, f *ScanFilter) int {
	kept := 0
	droppedCounter := false
	for _, m := range ms {
		if morselAdmitted(m, zones, f) {
			if droppedCounter {
				m.countsFile = true
				droppedCounter = false
			}
			ms[kept] = m
			kept++
		} else if m.countsFile {
			droppedCounter = true
		}
	}
	return kept
}

// morselAdmitted reports whether a morsel's byte range can hold a matching
// record according to the per-zone stats. Zones are ascending and
// non-overlapping and by the ZoneLookup contract cover [0, fileSize), so
// the last zone's End is the file size; any byte of the morsel's effective
// range the zones do not cover counts as unknown and admits the morsel.
func morselAdmitted(m morsel, zones []runtime.Zone, f *ScanFilter) bool {
	if len(zones) == 0 {
		return true
	}
	start, end := m.start, m.end
	size := zones[len(zones)-1].End
	if end < 0 || end > size {
		end = size // -1 means "the whole rest of the file"
	}
	if start >= end {
		return true // degenerate range: nothing to reason about, keep it
	}
	covered := start
	i := sort.Search(len(zones), func(i int) bool { return zones[i].End > start })
	for ; i < len(zones) && zones[i].Start < end; i++ {
		z := zones[i]
		if z.Start > covered {
			return true // gap in coverage: unknown, keep the morsel
		}
		if f.Admits(z.Range) {
			return true
		}
		if z.End > covered {
			covered = z.End
		}
	}
	return covered < end
}

// appendAlignedMorsels cuts one file on known record starts: each nominal cut
// (the multiples of morselSize) snaps forward to the first recorded split at
// or after it. Snapping never moves a cut backward, so morsels can run over
// morselSize by up to one record plus the split-sampling grain, and a nominal
// cut with no split before the file end simply merges the tail into the last
// morsel. Every non-first morsel starts exactly on a record start and is
// marked aligned: the consumer opens it at start directly, with no probe byte
// and no newline re-alignment. Ownership is identical to the probing path —
// the split offsets are precisely the line starts the probe would find — so
// exactly-once delivery is preserved record for record.
func appendAlignedMorsels(morsels []morsel, file string, size, morselSize int64, splits []int64) []morsel {
	prev := int64(0)
	for target := morselSize; target < size; target += morselSize {
		i := sort.Search(len(splits), func(i int) bool { return splits[i] >= target })
		if i == len(splits) {
			break
		}
		b := splits[i]
		if b <= prev {
			continue
		}
		if b >= size {
			break
		}
		morsels = append(morsels, morsel{file: file, start: prev, end: b,
			first: prev == 0, countsFile: prev == 0, aligned: prev != 0})
		prev = b
	}
	return append(morsels, morsel{file: file, start: prev, end: size,
		first: prev == 0, countsFile: prev == 0, aligned: prev != 0})
}

// coldIndexSplits computes the record-boundary index of one cold file — a
// raw-JSON file big enough to morsel-split but with no splits on record —
// by running the speculative parallel indexer's phase 1 over the file's byte
// ranges. The result is recorded back through the index registry when it
// implements runtime.SplitRecorder, so only the first scan of a file pays;
// every later queue build finds the splits via the ordinary SplitLookup.
// Any failure (or a source without range reads) degrades to nil and the
// caller falls back to nominal cuts with probe-based re-alignment —
// alignment is an optimization, never a correctness dependency.
func coldIndexSplits(src runtime.Source, collection, file string, size int64,
	idx runtime.IndexLookup, opts morselOptions) []int64 {
	min := opts.coldIndexMin
	if min < 0 {
		return nil
	}
	if min == 0 {
		min = DefaultColdIndexMinBytes
	}
	if size < min {
		return nil
	}
	ro, ok := src.(runtime.RangeOpener)
	if !ok {
		return nil
	}
	pi := jsonparse.ParallelIndexer{Workers: opts.coldIndexWorkers}
	splits, err := pi.SplitsRange(func(off int64) (io.ReadCloser, error) {
		return ro.OpenRange(file, off)
	}, size, coldIndexSplitGrain, 0)
	if err != nil || len(splits) == 0 {
		return nil
	}
	if rec, ok := idx.(runtime.SplitRecorder); ok {
		rec.RecordFileSplits(collection, file, splits)
	}
	return splits
}
