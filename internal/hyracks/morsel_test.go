package hyracks

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"vxq/internal/frame"
	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// ndSensorFile builds a newline-delimited file of records standalone
// {"root":[...]} documents, one per line, each padded to roughly padBytes so
// records straddle morsel boundaries at small morsel sizes.
func ndSensorFile(records, padBytes int) []byte {
	var sb strings.Builder
	pad := strings.Repeat("x", padBytes)
	for i := 0; i < records; i++ {
		fmt.Fprintf(&sb,
			`{"root":[{"metadata":{"count":1},"results":[{"date":"2013-12-%02dT00:00","dataType":"TMIN","station":"S%06d","value":%d,"pad":%q}]}]}`+"\n",
			1+i%28, i, i%40, pad)
	}
	return []byte(sb.String())
}

// referenceItems parses every file whole (no morsels) and returns the sorted
// JSON renderings of the projected items — the ground truth a morsel-split
// scan must reproduce exactly.
func referenceItems(t *testing.T, docs map[string][]byte, path jsonparse.Path) []string {
	t.Helper()
	var out []string
	for _, data := range docs {
		l := jsonparse.NewStreamLexerAt(bytes.NewReader(data), 0, 0)
		_, err := jsonparse.ScanValues(l, path, -1, func(it item.Item) error {
			out = append(out, item.JSON(it))
			return nil
		})
		if err != nil {
			t.Fatalf("reference parse: %v", err)
		}
	}
	sort.Strings(out)
	return out
}

func resultItems(res *Result) []string {
	var out []string
	for _, row := range res.Rows {
		out = append(out, item.JSONSeq(row[0]))
	}
	sort.Strings(out)
	return out
}

// TestMorselScanEquivalence is the correctness property of the morsel
// scheduler: concatenating the records parsed from every morsel must equal
// the whole-file parse, at morsel sizes that split mid-record, for files
// with and without newline separators, at several partition counts, on both
// executors.
func TestMorselScanEquivalence(t *testing.T) {
	docs := map[string][]byte{
		// ~45 KiB of ~230-byte records: dozens of boundary-spanning records
		// at 1 KiB and 4 KiB morsels.
		"many.json": ndSensorFile(200, 100),
		// Records of ~3 KiB, each larger than a whole 1 KiB morsel.
		"bigrec.json": ndSensorFile(12, 3000),
		// No newlines at all: splitting must degrade to one effective owner
		// (morsel 0 owns the single record that starts at offset 0).
		"oneline.json": bigSensorFile(8 << 10),
		// Smaller than every morsel size: never split.
		"tiny.json": ndSensorFile(2, 0),
	}
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}
	want := referenceItems(t, docs, measurementsPath())
	if len(want) == 0 {
		t.Fatal("reference produced no items")
	}
	for _, ms := range []int64{1 << 10, 4 << 10, 1 << 20} {
		for _, parts := range []int{1, 3} {
			env := func() *Env { return &Env{Source: src, MorselSize: ms} }
			res := runBoth(t, scanJob(parts, measurementsPath()), env)
			got := resultItems(res)
			if len(got) != len(want) {
				t.Fatalf("morsel=%d parts=%d: %d items, want %d", ms, parts, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("morsel=%d parts=%d: item %d = %s, want %s", ms, parts, i, got[i], want[i])
				}
			}
		}
	}
}

// TestMorselQueueSplitsAndCounts checks the scheduler bookkeeping: a skewed
// file set is split into the expected number of morsels, every morsel is
// scanned exactly once (TaskTime.Morsels sums to the total), and the staged
// executor's round-robin deal is deterministic per partition.
func TestMorselQueueSplitsAndCounts(t *testing.T) {
	const ms = 4 << 10
	docs := map[string][]byte{
		"big.json": ndSensorFile(300, 100), // ~68 KiB -> many morsels
	}
	for i := 0; i < 5; i++ {
		docs[fmt.Sprintf("small%d.json", i)] = ndSensorFile(4, 100) // < 4 KiB each
	}
	var wantMorsels int
	for _, d := range docs {
		n := (int64(len(d)) + ms - 1) / ms
		if int64(len(d)) <= ms {
			n = 1
		}
		wantMorsels += int(n)
	}
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}
	const parts = 4
	env := func() *Env { return &Env{Source: src, MorselSize: ms} }

	sumMorsels := func(res *Result) (total int, perPart map[int]int) {
		perPart = map[int]int{}
		for _, tt := range res.Tasks {
			total += tt.Morsels
			perPart[tt.Partition] += tt.Morsels
		}
		return total, perPart
	}

	piped, err := RunPipelined(scanJob(parts, measurementsPath()), env())
	if err != nil {
		t.Fatal(err)
	}
	if total, _ := sumMorsels(piped); total != wantMorsels {
		t.Errorf("pipelined: morsels scanned = %d, want %d", total, wantMorsels)
	}

	staged1, err := RunStaged(scanJob(parts, measurementsPath()), env())
	if err != nil {
		t.Fatal(err)
	}
	staged2, err := RunStaged(scanJob(parts, measurementsPath()), env())
	if err != nil {
		t.Fatal(err)
	}
	total1, per1 := sumMorsels(staged1)
	total2, per2 := sumMorsels(staged2)
	if total1 != wantMorsels || total2 != wantMorsels {
		t.Errorf("staged: morsels scanned = %d / %d, want %d", total1, total2, wantMorsels)
	}
	for p := 0; p < parts; p++ {
		if per1[p] != per2[p] {
			t.Errorf("staged deal not deterministic: partition %d got %d then %d morsels",
				p, per1[p], per2[p])
		}
		// Round-robin deal: partition p takes morsels p, p+parts, ...
		want := wantMorsels/parts + boolInt(p < wantMorsels%parts)
		if per1[p] != want {
			t.Errorf("staged partition %d scanned %d morsels, want %d", p, per1[p], want)
		}
	}
}

// TestMorselFinalRecordNoTrailingNewline: a file whose last record has no
// trailing newline, with MorselSize smaller than that final record, must
// produce the record exactly once — the tail morsels that slice through it
// find no line start past their base and own nothing.
func TestMorselFinalRecordNoTrailingNewline(t *testing.T) {
	head := ndSensorFile(6, 50)
	tail := bytes.TrimRight(ndSensorFile(1, 3000), "\n") // ~3 KiB final record, no newline
	data := append(append([]byte(nil), head...), tail...)
	docs := map[string][]byte{"tailrec.json": data}
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}
	want := referenceItems(t, docs, measurementsPath())
	if len(want) != 7 {
		t.Fatalf("reference = %d items, want 7", len(want))
	}
	for _, ms := range []int64{512, 1 << 10} {
		for _, parts := range []int{1, 2, 4} {
			env := func() *Env { return &Env{Source: src, MorselSize: ms} }
			got := resultItems(runBoth(t, scanJob(parts, measurementsPath()), env))
			if len(got) != len(want) {
				t.Fatalf("morsel=%d parts=%d: %d items, want %d (final record dropped or duplicated)",
					ms, parts, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("morsel=%d parts=%d: item %d differs", ms, parts, i)
				}
			}
		}
	}
}

// TestMorselWhitespaceAfterNewlineBoundary: records separated by a newline
// followed by indentation spaces. Ownership is decided by line start, not by
// the record's first non-space byte, so a morsel boundary landing inside the
// indentation must not drop the record.
func TestMorselWhitespaceAfterNewlineBoundary(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, `{"root":[{"metadata":{"count":1},"results":[{"date":"2013-12-01T00:00","dataType":"TMIN","station":"W%04d","value":%d,"pad":%q}]}]}`,
			i, i, strings.Repeat("y", 80))
		sb.WriteString("\n      ") // indentation that can straddle a boundary
	}
	docs := map[string][]byte{"indent.json": []byte(sb.String())}
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}
	want := referenceItems(t, docs, measurementsPath())
	if len(want) != 40 {
		t.Fatalf("reference = %d items, want 40", len(want))
	}
	for _, ms := range []int64{256, 512, 1 << 10} {
		for _, parts := range []int{1, 3} {
			env := func() *Env { return &Env{Source: src, MorselSize: ms} }
			got := resultItems(runBoth(t, scanJob(parts, measurementsPath()), env))
			if len(got) != len(want) {
				t.Fatalf("morsel=%d parts=%d: %d items, want %d", ms, parts, len(got), len(want))
			}
		}
	}
}

// TestStatsPerTaskMergeUnderRace pins the stats-merge discipline: every task
// accumulates into its own runtime.Stats and the executor folds them together
// exactly once after all workers have finished. Run with -race, a shared
// counter mutated from 8 scan workers (plus exchange consumers) would be
// reported; the totals check catches lost updates even without -race.
func TestStatsPerTaskMergeUnderRace(t *testing.T) {
	docs := map[string][]byte{}
	for i := 0; i < 4; i++ {
		docs[fmt.Sprintf("f%d.json", i)] = ndSensorFile(120, 60)
	}
	var wantBytes int64
	for _, d := range docs {
		wantBytes += int64(len(d))
	}
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}
	const workers = 8
	for i := 0; i < 3; i++ {
		res, err := RunPipelined(twoStepGroupByJob(workers, workers/2),
			&Env{Source: src, MorselSize: 2 << 10})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.TuplesProduced != 480 {
			t.Errorf("run %d: tuples produced = %d, want 480 (lost update?)",
				i, res.Stats.TuplesProduced)
		}
		if res.Stats.BytesRead < wantBytes {
			t.Errorf("run %d: bytes read = %d, want >= %d", i, res.Stats.BytesRead, wantBytes)
		}
		if res.Stats.FilesRead != int64(len(docs)) {
			t.Errorf("run %d: files read = %d, want %d", i, res.Stats.FilesRead, len(docs))
		}
		if res.Stats.TuplesShuffled == 0 {
			t.Errorf("run %d: no shuffled tuples through the hash exchange", i)
		}
		if len(res.Tasks) != workers+workers/2 {
			t.Errorf("run %d: %d task times, want %d", i, len(res.Tasks), workers+workers/2)
		}
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestMorselScanErrorNamesByteRange: a parse error inside a split morsel must
// report the file and the failing byte range.
func TestMorselScanErrorNamesByteRange(t *testing.T) {
	// Valid newline-delimited records, then garbage past the first morsel.
	data := append(ndSensorFile(40, 100), []byte("{\"root\": [ {\"broken\": \n")...)
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{
		"/sensors": {"corrupt.json": data},
	}}
	_, err := RunStaged(scanJob(2, measurementsPath()), &Env{Source: src, MorselSize: 1 << 10})
	if err == nil {
		t.Fatal("expected parse error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "corrupt.json[") || !strings.Contains(msg, "):") {
		t.Errorf("error %q does not name the failing byte range", msg)
	}
	if !strings.Contains(msg, "offset") {
		t.Errorf("error %q does not carry a position", msg)
	}
}

// TestAccountantBalancesToZero: after a clean run every charge must be
// paired with a release — pooled frames, chunk buffers, item transients, and
// the held operator state all return to the accountant.
func TestAccountantBalancesToZero(t *testing.T) {
	jobs := map[string]*Job{
		"scan":         scanJob(2, measurementsPath()),
		"two-step-gby": twoStepGroupByJob(2, 2),
		"hash-join":    joinJob(2),
	}
	for name, job := range jobs {
		for mode, run := range map[string]func(*Job, *Env) (*Result, error){
			"staged":    RunStaged,
			"pipelined": RunPipelined,
		} {
			acct := frame.NewAccountant(0)
			if _, err := run(job, &Env{Source: testSource(), Accountant: acct}); err != nil {
				t.Fatalf("%s/%s: %v", name, mode, err)
			}
			if cur := acct.Current(); cur != 0 {
				t.Errorf("%s/%s: accountant balance = %d after clean end, want 0", name, mode, cur)
			}
			if acct.Peak() <= 0 {
				t.Errorf("%s/%s: peak = %d, want > 0", name, mode, acct.Peak())
			}
		}
	}
	// Same invariant on a morsel-split scan.
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{
		"/sensors": {"big.json": ndSensorFile(300, 100)},
	}}
	acct := frame.NewAccountant(0)
	if _, err := RunPipelined(scanJob(4, measurementsPath()), &Env{Source: src, Accountant: acct, MorselSize: 4 << 10}); err != nil {
		t.Fatal(err)
	}
	if cur := acct.Current(); cur != 0 {
		t.Errorf("morsel scan: accountant balance = %d after clean end, want 0", cur)
	}
}

// TestMorselQueueStaticDealBounds exercises the queue directly.
func TestMorselQueueStaticDealBounds(t *testing.T) {
	morsels := []morsel{
		{file: "a", start: 0, end: 10, first: true},
		{file: "a", start: 10, end: 20},
		{file: "a", start: 20, end: 30},
	}
	q := newMorselQueue(morsels, 2, false)
	if _, _, ok := q.take(-1); ok {
		t.Error("negative partition must get nothing")
	}
	if _, _, ok := q.take(7); ok {
		t.Error("out-of-range partition must get nothing")
	}
	got := map[int][]int64{}
	for p := 0; p < 2; p++ {
		for {
			m, stolen, ok := q.take(p)
			if !ok {
				break
			}
			if stolen {
				t.Errorf("static deal reported a steal for partition %d at %d", p, m.start)
			}
			got[p] = append(got[p], m.start)
		}
	}
	if len(got[0]) != 2 || got[0][0] != 0 || got[0][1] != 20 {
		t.Errorf("partition 0 morsels = %v", got[0])
	}
	if len(got[1]) != 1 || got[1][0] != 10 {
		t.Errorf("partition 1 morsels = %v", got[1])
	}
}
