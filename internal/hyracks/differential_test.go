package hyracks

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"vxq/internal/frame"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

// runModes runs the job once in eager reference mode and once in the default
// lazy encoded mode (both staged, same partitioning) and requires the sorted
// results to be byte-identical under the canonical encoding.
func runModes(t *testing.T, name string, job *Job) {
	t.Helper()
	eager, err := RunStaged(job, &Env{Source: testSource(), EagerReference: true})
	if err != nil {
		t.Fatalf("%s: eager: %v", name, err)
	}
	lazy, err := RunStaged(job, &Env{Source: testSource()})
	if err != nil {
		t.Fatalf("%s: lazy: %v", name, err)
	}
	eager.SortRows()
	lazy.SortRows()
	if len(eager.Rows) != len(lazy.Rows) {
		t.Fatalf("%s: eager %d rows, lazy %d rows", name, len(eager.Rows), len(lazy.Rows))
	}
	for i := range eager.Rows {
		if len(eager.Rows[i]) != len(lazy.Rows[i]) {
			t.Fatalf("%s: row %d arity: eager %d, lazy %d", name, i, len(eager.Rows[i]), len(lazy.Rows[i]))
		}
		for j := range eager.Rows[i] {
			eb := item.EncodeSeq(nil, eager.Rows[i][j])
			lb := item.EncodeSeq(nil, lazy.Rows[i][j])
			if !bytes.Equal(eb, lb) {
				t.Fatalf("%s: row %d field %d not byte-identical: eager %s, lazy %s",
					name, i, j, item.JSONSeq(eager.Rows[i][j]), item.JSONSeq(lazy.Rows[i][j]))
			}
		}
	}
	// The shuffle statistics must agree too: both modes move the same tuples.
	if eager.Stats.TuplesShuffled != lazy.Stats.TuplesShuffled ||
		eager.Stats.BytesShuffled != lazy.Stats.BytesShuffled {
		t.Errorf("%s: shuffle stats diverge: eager %d tuples/%d bytes, lazy %d tuples/%d bytes",
			name, eager.Stats.TuplesShuffled, eager.Stats.BytesShuffled,
			lazy.Stats.TuplesShuffled, lazy.Stats.BytesShuffled)
	}
}

// TestDifferentialLazyVsEagerFixedPlans covers the named plan shapes: every
// operator kind, exchanges of all three kinds, and the join.
func TestDifferentialLazyVsEagerFixedPlans(t *testing.T) {
	sortSpec := &SortSpec{Keys: []SortDef{{Key: col(0)}, {Key: col(1), Desc: true}}}
	fixed := map[string]*Job{
		"scan":        scanJob(2, measurementsPath()),
		"whole-docs":  scanJob(1, nil),
		"select-tmin": scanJob(2, measurementsPath(), &SelectSpec{Cond: call("eq", call("value", col(0), constStr("dataType")), constStr("TMIN"))}),
		"assign": scanJob(1, measurementsPath(), &AssignSpec{Evals: []runtime.Evaluator{
			call("value", col(0), constStr("station")),
			call("value", col(0), constStr("value")),
		}}),
		"unnest": scanJob(1, nil,
			&UnnestSpec{Expr: call("keys-or-members", call("value", col(0), constStr("root")))},
			&UnnestSpec{Expr: call("keys-or-members", call("value", col(1), constStr("results")))},
			&ProjectSpec{Cols: []int{2}}),
		"aggregate": scanJob(2, measurementsPath(),
			&AggregateSpec{Aggs: []AggDef{
				{Fn: runtime.MustAgg("agg-count"), Arg: col(0)},
				{Fn: runtime.MustAgg("agg-avg"), Arg: call("value", col(0), constStr("value"))},
			}}),
		"group-by": scanJob(1, measurementsPath(), &GroupBySpec{
			Keys: []runtime.Evaluator{call("value", col(0), constStr("date"))},
			Aggs: []AggDef{
				{Fn: runtime.MustAgg("agg-count"), Arg: call("value", col(0), constStr("station"))},
				{Fn: runtime.MustAgg("agg-min"), Arg: call("value", col(0), constStr("value"))},
			},
		}),
		"two-step-gby-1x1": twoStepGroupByJob(1, 1),
		"two-step-gby-3x2": twoStepGroupByJob(3, 2),
		"hash-join-1":      joinJob(1),
		"hash-join-3":      joinJob(3),
		"sort": scanJob(2, measurementsPath(), &AssignSpec{Evals: []runtime.Evaluator{
			call("value", col(0), constStr("station")),
			call("value", col(0), constStr("value")),
		}}, &ProjectSpec{Cols: []int{1, 2}}, sortSpec),
		"subplan": scanJob(1, nil, &SubplanSpec{Nested: []OpSpec{
			&UnnestSpec{Expr: call("keys-or-members", call("value", col(0), constStr("root")))},
			&AggregateSpec{Aggs: []AggDef{{Fn: runtime.MustAgg("agg-count"), Arg: col(1)}}},
		}}, &ProjectSpec{Cols: []int{1}}),
	}
	for name, job := range fixed {
		runModes(t, name, job)
	}
}

// TestDifferentialLazyVsEagerRandomPlans runs a deterministic corpus of
// randomly composed plans through both modes. Plans draw selects, assigns,
// group-bys, sorts and aggregates over the sensor fields with random
// partition counts, so lazy/eager equivalence is checked well beyond the
// hand-written shapes.
func TestDifferentialLazyVsEagerRandomPlans(t *testing.T) {
	r := rand.New(rand.NewSource(20180326)) // EDBT 2018 paper day, for luck
	for i := 0; i < 24; i++ {
		job := randomJob(r)
		runModes(t, fmt.Sprintf("random-%d", i), job)
	}
}

func randomJob(r *rand.Rand) *Job {
	fields := []string{"date", "dataType", "station"}
	vals := map[string][]string{
		"date":     {"2013-12-25T00:00", "2013-12-26T00:00", "2014-01-01T00:00"},
		"dataType": {"TMIN", "TMAX", "AWND"},
		"station":  {"S1", "S2", "S3", "S9"},
	}
	var ops []OpSpec
	if r.Intn(2) == 0 {
		f := fields[r.Intn(len(fields))]
		v := vals[f][r.Intn(len(vals[f]))]
		ops = append(ops, &SelectSpec{Cond: call("eq", call("value", col(0), constStr(f)), constStr(v))})
	}
	keyField := fields[r.Intn(len(fields))]
	ops = append(ops, &AssignSpec{Evals: []runtime.Evaluator{
		call("value", col(0), constStr(keyField)),
		call("value", col(0), constStr("value")),
	}})
	// Columns now: 0 = document, 1 = key field, 2 = value.
	switch r.Intn(4) {
	case 0:
		aggs := []AggDef{{Fn: runtime.MustAgg("agg-count"), Arg: col(2)}}
		if r.Intn(2) == 0 {
			aggs = append(aggs, AggDef{Fn: runtime.MustAgg("agg-sum"), Arg: col(2)})
		}
		ops = append(ops, &GroupBySpec{Keys: []runtime.Evaluator{col(1)}, Aggs: aggs})
	case 1:
		ops = append(ops,
			&ProjectSpec{Cols: []int{1, 2}},
			&SortSpec{Keys: []SortDef{{Key: col(0), Desc: r.Intn(2) == 0}, {Key: col(1)}}})
	case 2:
		ops = append(ops, &AggregateSpec{Aggs: []AggDef{
			{Fn: runtime.MustAgg("agg-count"), Arg: col(1)},
			{Fn: runtime.MustAgg("agg-max"), Arg: col(2)},
		}})
	case 3:
		ops = append(ops, &ProjectSpec{Cols: []int{1, 2}})
	}
	return scanJob(1+r.Intn(3), measurementsPath(), ops...)
}

// TestEncodedPathsUnderForcedHashCollisions forces every encoded key hash to
// a single value, so group-by tables, join tables and hash routing live
// entirely on their bucket chains and byte/structural key comparison. The
// results must not change.
func TestEncodedPathsUnderForcedHashCollisions(t *testing.T) {
	testHashEncodedField = func([]byte) (uint64, error) { return 42, nil }
	defer func() { testHashEncodedField = nil }()
	jobs := map[string]*Job{
		"group-by": scanJob(1, measurementsPath(), &GroupBySpec{
			Keys: []runtime.Evaluator{call("value", col(0), constStr("date"))},
			Aggs: []AggDef{{Fn: runtime.MustAgg("agg-count"), Arg: col(0)}},
		}),
		"two-step-gby": twoStepGroupByJob(2, 2),
		"hash-join":    joinJob(2),
	}
	for name, job := range jobs {
		res, err := RunStaged(job, &Env{Source: testSource()})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res.SortRows()
		switch name {
		case "group-by", "two-step-gby":
			if len(res.Rows) != 2 {
				t.Fatalf("%s: groups = %d, want 2 (collision chain broken?)", name, len(res.Rows))
			}
			for _, row := range res.Rows {
				c, _ := row[1].One()
				if float64(c.(item.Number)) != 3 {
					t.Errorf("%s: group %s count = %s, want 3", name,
						item.JSONSeq(row[0]), item.JSONSeq(row[1]))
				}
			}
		case "hash-join":
			if len(res.Rows) != 1 || !item.EqualSeq(res.Rows[0][0], item.Single(item.Number(9.5))) {
				t.Fatalf("%s: rows = %v", name, res.Rows)
			}
		}
	}
}

// TestExchangeForwardsWholeFrames checks the merge/1:1 fast path: frames
// cross those exchanges intact (no per-tuple re-emit) while the shuffle
// statistics still count the tuples and bytes that moved.
func TestExchangeForwardsWholeFrames(t *testing.T) {
	// fragment 0 (2 partitions) --1:1--> fragment 1 --merge--> fragment 2
	passthrough := func() []OpSpec { return nil }
	job := &Job{
		Fragments: []*Fragment{
			{ID: 0, Source: ScanSource{Collection: "/sensors", Project: measurementsPath()},
				Ops: passthrough(), Partitions: 2, SinkExchange: 0},
			{ID: 1, Source: ExchangeSource{Exchange: 0},
				Ops: passthrough(), Partitions: 2, SinkExchange: 1},
			{ID: 2, Source: ExchangeSource{Exchange: 1},
				Ops: passthrough(), Partitions: 1, SinkExchange: -1},
		},
		Exchanges: []*Exchange{
			{ID: 0, Kind: ExchangeOneToOne, ConsumerPartitions: 2},
			{ID: 1, Kind: ExchangeMerge, ConsumerPartitions: 1},
		},
	}
	for _, mode := range []struct {
		name string
		run  func(*Job, *Env) (*Result, error)
	}{{"staged", RunStaged}, {"pipelined", RunPipelined}} {
		acct := frame.NewAccountant(0)
		res, err := mode.run(job, &Env{Source: testSource(), Accountant: acct})
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if len(res.Rows) != 6 {
			t.Fatalf("%s: rows = %d, want 6", mode.name, len(res.Rows))
		}
		// 6 tuples through the 1:1 exchange + 6 through the merge.
		if res.Stats.TuplesShuffled != 12 {
			t.Errorf("%s: TuplesShuffled = %d, want 12", mode.name, res.Stats.TuplesShuffled)
		}
		if res.Stats.BytesShuffled <= 0 {
			t.Errorf("%s: BytesShuffled = %d, want > 0", mode.name, res.Stats.BytesShuffled)
		}
		if cur := acct.Current(); cur != 0 {
			t.Errorf("%s: accountant balance = %d after forwarding, want 0", mode.name, cur)
		}
	}
}

// TestAccountantBalancesToZeroBothModes extends the accountant invariant to
// both decode modes over the blocking operators (group-by holds an arena and
// interned keys in lazy mode, decoded key sequences in eager mode), with and
// without profile collection — the profiling wrappers and counter snapshots
// must not perturb a single charge/release pair.
func TestAccountantBalancesToZeroBothModes(t *testing.T) {
	sortSpec := &SortSpec{Keys: []SortDef{{Key: col(1)}}}
	jobs := map[string]*Job{
		"two-step-gby": twoStepGroupByJob(2, 2),
		"hash-join":    joinJob(2),
		"sort": scanJob(2, measurementsPath(), &AssignSpec{Evals: []runtime.Evaluator{
			call("value", col(0), constStr("station")),
		}}, sortSpec),
	}
	for name, job := range jobs {
		for _, eager := range []bool{false, true} {
			for _, profile := range []bool{false, true} {
				acct := frame.NewAccountant(0)
				env := &Env{Source: testSource(), Accountant: acct, EagerReference: eager, Profile: profile}
				res, err := RunStaged(job, env)
				if err != nil {
					t.Fatalf("%s (eager=%v profile=%v): %v", name, eager, profile, err)
				}
				if cur := acct.Current(); cur != 0 {
					t.Errorf("%s (eager=%v profile=%v): accountant balance = %d after clean end, want 0",
						name, eager, profile, cur)
				}
				if acct.Peak() <= 0 {
					t.Errorf("%s (eager=%v profile=%v): peak = %d, want > 0", name, eager, profile, acct.Peak())
				}
				if profile {
					// The profile's held-memory high-water must be visible in
					// at least one keyed operator's span.
					var peak int64
					for _, sp := range res.Profile.Spans {
						if sp.MemPeak > peak {
							peak = sp.MemPeak
						}
					}
					if peak <= 0 {
						t.Errorf("%s (eager=%v): no span reports a memory high-water", name, eager)
					}
				}
			}
		}
	}
}
