package hyracks

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"vxq/internal/frame"
)

// This file implements the query profiler: EXPLAIN ANALYZE-style per-operator
// metrics collected through both executors.
//
// Collection works by boundary wrapping. When Env.Profile is set, each task
// builds its operator chain through buildTaskChain, which inserts a profWriter
// between every pair of adjacent stages (source | op 1 | ... | op n | sink).
// The wrapper at stage k times the *inclusive* cost of stage k and everything
// downstream of it — Push(k) returns only after the frame has flowed through
// the rest of the chain — and counts the frames, tuples, and bytes entering
// the stage. Exclusive ("self") time falls out at merge by telescoping:
//
//	self(k)      = inclusive(k) - inclusive(k+1)        for k >= 1
//	self(source) = task elapsed - inclusive(first stage)
//
// so the per-task self times sum to the task's elapsed time exactly (modulo
// clamping of sub-microsecond timer jitter to zero). Under the staged
// executor, where tasks run one at a time, the self times over all spans
// therefore sum to the measured job wall time minus only the executor's own
// setup; under the pipelined executor a source's self time additionally
// includes the time the task spent blocked on its input channels, which is
// exactly what a flame graph of a pipelined run should show.
//
// Each task accumulates into its own taskProf — per-worker state, no sharing —
// and the executor merges all tasks into one Profile after every task has
// finished. Operators that keep interesting internal counters (hash-table
// collision chains, arena reservations, held-memory high-water, forwarded vs
// rebuilt exchange frames) expose them through the optional opStatser
// interface, read once at Close.

// OpMetrics is the structured per-operator-instance measurement of one span
// (one operator on one partition), and, summed, of one profile-tree node.
// Byte counts are framed bytes (frame.Frame.Size), not decoded field bytes.
type OpMetrics struct {
	// PushNS is the inclusive time spent in Push: this stage and everything
	// downstream of it. OpenCloseNS is the inclusive time of Open plus Close
	// (a blocking operator like sort or group-by does its real work in
	// Close). SelfNS is the exclusive time attributed to this stage alone.
	PushNS      int64 `json:"push_ns"`
	OpenCloseNS int64 `json:"open_close_ns"`
	SelfNS      int64 `json:"self_ns"`

	FramesIn int64 `json:"frames_in"`
	TuplesIn int64 `json:"tuples_in"`
	BytesIn  int64 `json:"bytes_in"`

	FramesOut int64 `json:"frames_out"`
	TuplesOut int64 `json:"tuples_out"`
	BytesOut  int64 `json:"bytes_out"`

	// Exchange sinks: frames handed to a destination untouched vs re-framed
	// tuple by tuple (hash routing).
	FramesForwarded int64 `json:"frames_forwarded"`
	FramesRebuilt   int64 `json:"frames_rebuilt"`

	// Keyed operators (group-by, join, sort): held-memory high-water as
	// charged to the accountant, hash-chain collision count (a chain entry
	// compared and not matched), and bytes reserved by the key arena.
	MemPeak        int64 `json:"mem_peak"`
	HashCollisions int64 `json:"hash_collisions"`
	ArenaBytes     int64 `json:"arena_bytes"`

	// Out-of-core operators (group-by, join, sort): bytes written to spill
	// files, partition files (or sort runs) produced, and grace-hash waves
	// (or sort-run flushes) taken.
	SpilledBytes    int64 `json:"spilled_bytes"`
	SpillPartitions int64 `json:"spill_partitions"`
	SpillWaves      int64 `json:"spill_waves"`

	// Scan sources: morsels processed, how many of those were steals
	// (taken off the static round-robin deal by a faster partition), and how
	// many the queue build pruned via per-zone zone-map stats before they
	// were ever scheduled.
	Morsels        int64 `json:"morsels"`
	MorselSteals   int64 `json:"morsel_steals"`
	MorselsSkipped int64 `json:"morsels_skipped"`
}

func (m *OpMetrics) add(o *OpMetrics) {
	m.PushNS += o.PushNS
	m.OpenCloseNS += o.OpenCloseNS
	m.SelfNS += o.SelfNS
	m.FramesIn += o.FramesIn
	m.TuplesIn += o.TuplesIn
	m.BytesIn += o.BytesIn
	m.FramesOut += o.FramesOut
	m.TuplesOut += o.TuplesOut
	m.BytesOut += o.BytesOut
	m.FramesForwarded += o.FramesForwarded
	m.FramesRebuilt += o.FramesRebuilt
	m.MemPeak += o.MemPeak
	m.HashCollisions += o.HashCollisions
	m.ArenaBytes += o.ArenaBytes
	m.SpilledBytes += o.SpilledBytes
	m.SpillPartitions += o.SpillPartitions
	m.SpillWaves += o.SpillWaves
	m.Morsels += o.Morsels
	m.MorselSteals += o.MorselSteals
	m.MorselsSkipped += o.MorselsSkipped
}

// Span is one operator-partition measurement, the flame-graph-friendly unit
// of the machine-readable trace: stage 0 is the fragment's source, rising
// stage numbers flow downstream, and the last stage is the fragment's sink
// (exchange or result collector). StartNS/EndNS are relative to job start.
type Span struct {
	Fragment  int    `json:"fragment"`
	Partition int    `json:"partition"`
	Stage     int    `json:"stage"`
	Name      string `json:"name"`
	Kind      string `json:"kind"`
	StartNS   int64  `json:"start_ns"`
	EndNS     int64  `json:"end_ns"`
	OpMetrics
}

// ProfileNode is one operator of the profile tree, which mirrors the
// compiled plan: within a fragment the chain runs sink → operators → source,
// and a source fed by exchanges has the producing fragments' trees as
// additional children (build side before probe side for joins). Metrics are
// summed over the fragment's partitions.
type ProfileNode struct {
	Fragment   int       `json:"fragment"`
	Stage      int       `json:"stage"`
	Name       string    `json:"name"`
	Kind       string    `json:"kind"`
	Partitions int       `json:"partitions"`
	Metrics    OpMetrics `json:"metrics"`

	Children []*ProfileNode `json:"children,omitempty"`
}

// Profile is the merged result of a profiled job execution.
type Profile struct {
	// WallNS is the measured wall-clock time of the whole job.
	WallNS int64 `json:"wall_ns"`
	// Root is the profile tree, rooted at the collector fragment's sink.
	Root *ProfileNode `json:"root"`
	// Spans are the raw per-operator-partition measurements.
	Spans []Span `json:"spans"`
}

// SelfSumNS reports the total exclusive time over all spans. Under the
// staged executor it accounts for the job wall time minus executor setup
// (the acceptance bound: within 10% of WallNS on non-trivial jobs).
func (p *Profile) SelfSumNS() int64 {
	var n int64
	for i := range p.Spans {
		n += p.Spans[i].SelfNS
	}
	return n
}

// WriteTrace writes the machine-readable JSON trace: the whole profile,
// span per operator-partition, in the schema documented in DESIGN.md.
func (p *Profile) WriteTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// --- collection ------------------------------------------------------------

// opExtras are the optional per-operator counters read once at Close.
type opExtras struct {
	memPeak        int64
	hashCollisions int64
	arenaBytes     int64

	spilledBytes    int64
	spillPartitions int64
	spillWaves      int64

	framesForwarded int64
	framesRebuilt   int64
	framesOut       int64
	tuplesOut       int64
	bytesOut        int64

	morsels        int64
	morselSteals   int64
	morselsSkipped int64
}

// opStatser is implemented by operators that keep internal counters worth
// surfacing in their span (group-by, sort, join, exchange). The profiling
// wrapper queries it after Close.
type opStatser interface{ profExtras(x *opExtras) }

// stageProf accumulates one stage of one task. It is written by exactly one
// goroutine (the task's own) and read only after the task finished.
type stageProf struct {
	name, kind string
	started    bool
	startNS    int64
	endNS      int64

	pushNS      int64
	openCloseNS int64
	framesIn    int64
	tuplesIn    int64
	bytesIn     int64

	x opExtras
}

// taskProf is the per-task profile accumulator: stage 0 is the source,
// stages 1..n the operators, stage n+1 the sink.
type taskProf struct {
	fragment  int
	partition int
	epoch     time.Time // job start; span times are relative to it
	startNS   int64
	taskNS    int64
	stages    []stageProf
}

// newTaskProf lays out the stage accumulators for one fragment-partition
// task, mirroring the chain buildTaskChain will build.
func newTaskProf(job *Job, f *Fragment, partition int, epoch time.Time) *taskProf {
	t := &taskProf{fragment: f.ID, partition: partition, epoch: epoch,
		stages: make([]stageProf, len(f.Ops)+2)}
	t.stages[0] = stageProf{name: f.Source.sourceName(), kind: sourceKind(f.Source)}
	for i, op := range f.Ops {
		t.stages[i+1] = stageProf{name: op.Name(), kind: opKind(op)}
	}
	sink := &t.stages[len(f.Ops)+1]
	if f.SinkExchange >= 0 {
		e := job.exchange(f.SinkExchange)
		sink.name = fmt.Sprintf("EXCHANGE exch#%d[%s]", e.ID, e.Kind)
		sink.kind = "exchange"
	} else {
		sink.name = "RESULT"
		sink.kind = "sink"
	}
	return t
}

// finish stamps the task's elapsed time and attributes the source-side
// counters that are collected on the TaskCtx rather than through a Writer.
func (t *taskProf) finish(ctx *TaskCtx, startNS, taskNS int64) {
	t.startNS = startNS
	t.taskNS = taskNS
	src := &t.stages[0]
	src.started = true
	src.startNS = startNS
	src.endNS = startNS + taskNS
	src.x.morsels = int64(ctx.MorselsScanned)
	src.x.morselSteals = int64(ctx.MorselsStolen)
	// The skipped count is a property of the fragment's shared queue, not of
	// any one task; attribute it to partition 0 so the merged profile counts
	// it exactly once.
	if ctx.morsels != nil && ctx.Partition == 0 {
		src.x.morselsSkipped = ctx.morsels.skipped
	}
}

func sourceKind(s SourceSpec) string {
	switch s.(type) {
	case ETSSource:
		return "ets"
	case ScanSource:
		return "scan"
	case ExchangeSource:
		return "receive"
	case JoinSource:
		return "join"
	default:
		return "source"
	}
}

func opKind(s OpSpec) string {
	switch s.(type) {
	case *AssignSpec:
		return "assign"
	case *SelectSpec:
		return "select"
	case *UnnestSpec:
		return "unnest"
	case *ProjectSpec:
		return "project"
	case *AggregateSpec:
		return "aggregate"
	case *GroupBySpec:
		return "group-by"
	case *SubplanSpec:
		return "subplan"
	case *SortSpec:
		return "sort"
	default:
		return "op"
	}
}

// profWriter wraps one stage boundary: it times the inclusive cost of its
// inner writer (the stage and everything downstream) and counts the input
// flow. It holds no shared state — one instance per stage per task.
type profWriter struct {
	inner Writer
	t     *taskProf
	idx   int
}

func (w *profWriter) Open() error {
	st := &w.t.stages[w.idx]
	t0 := time.Now()
	if !st.started {
		st.started = true
		st.startNS = t0.Sub(w.t.epoch).Nanoseconds()
	}
	err := w.inner.Open()
	st.openCloseNS += time.Since(t0).Nanoseconds()
	return err
}

func (w *profWriter) Push(fr *frame.Frame) error {
	st := &w.t.stages[w.idx]
	st.framesIn++
	st.tuplesIn += int64(fr.TupleCount())
	st.bytesIn += int64(fr.Size())
	t0 := time.Now()
	err := w.inner.Push(fr)
	st.pushNS += time.Since(t0).Nanoseconds()
	return err
}

func (w *profWriter) Close() error {
	t0 := time.Now()
	err := w.inner.Close()
	d := time.Since(t0).Nanoseconds()
	st := &w.t.stages[w.idx]
	st.openCloseNS += d
	st.endNS = t0.Sub(w.t.epoch).Nanoseconds() + d
	if os, ok := w.inner.(opStatser); ok {
		os.profExtras(&st.x)
	}
	return err
}

// buildTaskChain composes a fragment's operator chain over the terminal
// writer, inserting a profWriter at every stage boundary when the task is
// profiled. With profiling off it is exactly BuildChain — the wrappers do
// not exist and cost nothing.
func buildTaskChain(ctx *TaskCtx, f *Fragment, terminal Writer) Writer {
	if ctx.prof == nil {
		return BuildChain(ctx, f.Ops, terminal)
	}
	t := ctx.prof
	var w Writer = &profWriter{inner: terminal, t: t, idx: len(f.Ops) + 1}
	for i := len(f.Ops) - 1; i >= 0; i-- {
		w = &profWriter{inner: f.Ops[i].Build(ctx, w), t: t, idx: i + 1}
	}
	return w
}

// jobProf gathers the per-task accumulators. Tasks only append their own
// finished taskProf (under the mutex in the pipelined executor); nothing is
// shared while a task runs.
type jobProf struct {
	epoch time.Time
	mu    sync.Mutex
	tasks []*taskProf
}

func (jp *jobProf) add(t *taskProf) {
	jp.mu.Lock()
	jp.tasks = append(jp.tasks, t)
	jp.mu.Unlock()
}

// --- merge -----------------------------------------------------------------

// buildProfile merges the finished task accumulators into spans and the
// plan-shaped tree.
func (jp *jobProf) buildProfile(job *Job, wallNS int64) *Profile {
	p := &Profile{WallNS: wallNS}
	// Per (fragment, stage) aggregation for the tree.
	type nodeKey struct{ fragment, stage int }
	nodes := make(map[nodeKey]*ProfileNode)
	for _, t := range jp.tasks {
		n := len(t.stages)
		// inclusive(k) per stage; inclusive(n) = 0 (past the sink).
		incl := func(k int) int64 {
			if k >= n {
				return 0
			}
			return t.stages[k].pushNS + t.stages[k].openCloseNS
		}
		for k := 0; k < n; k++ {
			st := &t.stages[k]
			var self int64
			if k == 0 {
				self = t.taskNS - incl(1)
			} else {
				self = incl(k) - incl(k+1)
			}
			if self < 0 {
				self = 0 // timer jitter; keeps every span non-negative
			}
			sp := Span{
				Fragment:  t.fragment,
				Partition: t.partition,
				Stage:     k,
				Name:      st.name,
				Kind:      st.kind,
				StartNS:   st.startNS,
				EndNS:     st.endNS,
			}
			sp.PushNS = st.pushNS
			sp.OpenCloseNS = st.openCloseNS
			if k == 0 {
				// The source stage is driven directly (no Writer boundary
				// above it): its cost is the whole task minus the chain.
				sp.PushNS = t.taskNS - incl(1)
				if sp.PushNS < 0 {
					sp.PushNS = 0
				}
			}
			sp.SelfNS = self
			sp.FramesIn = st.framesIn
			sp.TuplesIn = st.tuplesIn
			sp.BytesIn = st.bytesIn
			if k+1 < n {
				// A stage's output is the next stage's input.
				nx := &t.stages[k+1]
				sp.FramesOut = nx.framesIn
				sp.TuplesOut = nx.tuplesIn
				sp.BytesOut = nx.bytesIn
			} else if st.x.framesOut+st.x.tuplesOut+st.x.bytesOut > 0 {
				sp.FramesOut = st.x.framesOut
				sp.TuplesOut = st.x.tuplesOut
				sp.BytesOut = st.x.bytesOut
			} else {
				// Result sink: everything that came in was materialized.
				sp.FramesOut = st.framesIn
				sp.TuplesOut = st.tuplesIn
				sp.BytesOut = st.bytesIn
			}
			sp.FramesForwarded = st.x.framesForwarded
			sp.FramesRebuilt = st.x.framesRebuilt
			sp.MemPeak = st.x.memPeak
			sp.HashCollisions = st.x.hashCollisions
			sp.ArenaBytes = st.x.arenaBytes
			sp.SpilledBytes = st.x.spilledBytes
			sp.SpillPartitions = st.x.spillPartitions
			sp.SpillWaves = st.x.spillWaves
			sp.Morsels = st.x.morsels
			sp.MorselSteals = st.x.morselSteals
			sp.MorselsSkipped = st.x.morselsSkipped
			p.Spans = append(p.Spans, sp)

			key := nodeKey{t.fragment, k}
			node := nodes[key]
			if node == nil {
				node = &ProfileNode{Fragment: t.fragment, Stage: k, Name: st.name, Kind: st.kind}
				nodes[key] = node
			}
			node.Partitions++
			node.Metrics.add(&sp.OpMetrics)
		}
	}
	sort.Slice(p.Spans, func(i, j int) bool {
		a, b := p.Spans[i], p.Spans[j]
		if a.Fragment != b.Fragment {
			return a.Fragment < b.Fragment
		}
		if a.Partition != b.Partition {
			return a.Partition < b.Partition
		}
		return a.Stage > b.Stage // sink first, source last: downstream-up like the plan rendering
	})

	// Link each fragment's chain sink → ... → source, then attach producer
	// fragments under the sources they feed.
	tops := make(map[int]*ProfileNode) // fragment id -> sink node
	srcs := make(map[int]*ProfileNode) // fragment id -> source node
	byExchange := make(map[int][]*ProfileNode)
	for _, f := range job.Fragments {
		var top, prev *ProfileNode
		for k := len(f.Ops) + 1; k >= 0; k-- {
			node := nodes[nodeKey{f.ID, k}]
			if node == nil {
				continue
			}
			if prev == nil {
				top = node
			} else {
				prev.Children = append(prev.Children, node)
			}
			prev = node
		}
		if top == nil {
			continue
		}
		tops[f.ID] = top
		srcs[f.ID] = prev
		if f.SinkExchange >= 0 {
			byExchange[f.SinkExchange] = append(byExchange[f.SinkExchange], top)
		} else {
			p.Root = top
		}
	}
	for _, f := range job.Fragments {
		src := srcs[f.ID]
		if src == nil {
			continue
		}
		switch s := f.Source.(type) {
		case ExchangeSource:
			src.Children = append(src.Children, byExchange[s.Exchange]...)
		case JoinSource:
			src.Children = append(src.Children, byExchange[s.Build]...)
			src.Children = append(src.Children, byExchange[s.Probe]...)
		}
	}
	return p
}

// --- rendering -------------------------------------------------------------

func fmtNS(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// String pretty-prints the profile as the annotated plan: the tree mirrors
// the compiled job (Job.String's shape), each operator carrying its summed
// metrics. It is what `cmd/vxq -profile` shows.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile: wall %s, operator self-time %s (%.1f%% of wall)\n",
		fmtNS(p.WallNS), fmtNS(p.SelfSumNS()), 100*float64(p.SelfSumNS())/float64(max64(p.WallNS, 1)))
	if p.Root != nil {
		writeNode(&b, p.Root, 0)
	}
	return b.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func writeNode(b *strings.Builder, n *ProfileNode, depth int) {
	m := &n.Metrics
	fmt.Fprintf(b, "%s%s (x%d)  self %s push %s open+close %s",
		strings.Repeat("  ", depth), n.Name, n.Partitions,
		fmtNS(m.SelfNS), fmtNS(m.PushNS), fmtNS(m.OpenCloseNS))
	if m.FramesIn > 0 {
		fmt.Fprintf(b, "  in %dt/%df/%s", m.TuplesIn, m.FramesIn, fmtBytes(m.BytesIn))
	}
	if m.FramesOut > 0 {
		fmt.Fprintf(b, "  out %dt/%df/%s", m.TuplesOut, m.FramesOut, fmtBytes(m.BytesOut))
	}
	if m.FramesForwarded > 0 || m.FramesRebuilt > 0 {
		fmt.Fprintf(b, "  fwd %d rebuilt %d", m.FramesForwarded, m.FramesRebuilt)
	}
	if m.MemPeak > 0 {
		fmt.Fprintf(b, "  mem %s", fmtBytes(m.MemPeak))
	}
	if m.ArenaBytes > 0 {
		fmt.Fprintf(b, "  arena %s", fmtBytes(m.ArenaBytes))
	}
	if m.HashCollisions > 0 {
		fmt.Fprintf(b, "  collisions %d", m.HashCollisions)
	}
	if m.SpilledBytes > 0 {
		fmt.Fprintf(b, "  spilled %s (%d parts, %d waves)", fmtBytes(m.SpilledBytes), m.SpillPartitions, m.SpillWaves)
	}
	if m.Morsels > 0 || m.MorselsSkipped > 0 {
		fmt.Fprintf(b, "  morsels %d (%d stolen, %d skipped)", m.Morsels, m.MorselSteals, m.MorselsSkipped)
	}
	b.WriteString("\n")
	for _, c := range n.Children {
		writeNode(b, c, depth+1)
	}
}
