package jsoniq

import (
	"fmt"
	"strconv"
)

// tokKind identifies a lexical token.
type tokKind uint8

const (
	tEOF tokKind = iota
	tName
	tVar    // $name
	tString // "..." or '...'
	tNumber
	tLParen
	tRParen
	tComma
	tAssign // :=
	tPlus
	tMinus
	tStar
	tLBrace
	tRBrace
	tLBracket
	tRBracket
	tColon
)

func (k tokKind) String() string {
	switch k {
	case tEOF:
		return "end of query"
	case tName:
		return "name"
	case tVar:
		return "variable"
	case tString:
		return "string"
	case tNumber:
		return "number"
	case tLParen:
		return "'('"
	case tRParen:
		return "')'"
	case tComma:
		return "','"
	case tAssign:
		return "':='"
	case tPlus:
		return "'+'"
	case tMinus:
		return "'-'"
	case tStar:
		return "'*'"
	case tLBrace:
		return "'{'"
	case tRBrace:
		return "'}'"
	case tLBracket:
		return "'['"
	case tRBracket:
		return "']'"
	case tColon:
		return "':'"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// token is one lexical token.
type token struct {
	kind tokKind
	text string  // for tName, tVar, tString
	num  float64 // for tNumber
	pos  int     // byte offset in the query
}

func (t token) String() string {
	switch t.kind {
	case tName:
		return t.text
	case tVar:
		return "$" + t.text
	case tString:
		return strconv.Quote(t.text)
	case tNumber:
		return strconv.FormatFloat(t.num, 'g', -1, 64)
	default:
		return t.kind.String()
	}
}

// lex tokenizes the query source.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			// XQuery comment: (: ... :)
			if i+1 < len(src) && src[i+1] == ':' {
				end, err := skipComment(src, i)
				if err != nil {
					return nil, err
				}
				i = end
				continue
			}
			toks = append(toks, token{kind: tLParen, pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tRParen, pos: i})
			i++
		case c == ',':
			toks = append(toks, token{kind: tComma, pos: i})
			i++
		case c == '+':
			toks = append(toks, token{kind: tPlus, pos: i})
			i++
		case c == '-':
			toks = append(toks, token{kind: tMinus, pos: i})
			i++
		case c == '*':
			toks = append(toks, token{kind: tStar, pos: i})
			i++
		case c == ':':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{kind: tAssign, pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tColon, pos: i})
				i++
			}
		case c == '{':
			toks = append(toks, token{kind: tLBrace, pos: i})
			i++
		case c == '}':
			toks = append(toks, token{kind: tRBrace, pos: i})
			i++
		case c == '[':
			toks = append(toks, token{kind: tLBracket, pos: i})
			i++
		case c == ']':
			toks = append(toks, token{kind: tRBracket, pos: i})
			i++
		case c == '$':
			start := i + 1
			j := start
			for j < len(src) && isNameChar(src[j], j > start) {
				j++
			}
			if j == start {
				return nil, fmt.Errorf("jsoniq: offset %d: '$' without variable name", i)
			}
			toks = append(toks, token{kind: tVar, text: src[start:j], pos: i})
			i = j
		case c == '"' || c == '\'':
			s, end, err := lexString(src, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tString, text: s, pos: i})
			i = end
		case c >= '0' && c <= '9':
			n, end, err := lexNumber(src, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tNumber, num: n, pos: i})
			i = end
		case isNameChar(c, false):
			j := i
			for j < len(src) && isNameChar(src[j], j > i) {
				j++
			}
			toks = append(toks, token{kind: tName, text: src[i:j], pos: i})
			i = j
		default:
			return nil, fmt.Errorf("jsoniq: offset %d: unexpected character %q", i, c)
		}
	}
	toks = append(toks, token{kind: tEOF, pos: len(src)})
	return toks, nil
}

// isNameChar reports whether c may appear in an NCName. Hyphens and digits
// are allowed only after the first character (year-from-dateTime, json-doc).
func isNameChar(c byte, interior bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' {
		return true
	}
	if interior && (c == '-' || c >= '0' && c <= '9') {
		return true
	}
	return false
}

func skipComment(src string, start int) (int, error) {
	depth := 0
	i := start
	for i+1 < len(src) {
		switch {
		case src[i] == '(' && src[i+1] == ':':
			depth++
			i += 2
		case src[i] == ':' && src[i+1] == ')':
			depth--
			i += 2
			if depth == 0 {
				return i, nil
			}
		default:
			i++
		}
	}
	return 0, fmt.Errorf("jsoniq: offset %d: unterminated comment", start)
}

func lexString(src string, start int) (string, int, error) {
	quote := src[start]
	var b []byte
	i := start + 1
	for i < len(src) {
		c := src[i]
		if c == quote {
			// Doubled quote is an escaped quote in XQuery.
			if i+1 < len(src) && src[i+1] == quote {
				b = append(b, quote)
				i += 2
				continue
			}
			return string(b), i + 1, nil
		}
		b = append(b, c)
		i++
	}
	return "", 0, fmt.Errorf("jsoniq: offset %d: unterminated string literal", start)
}

func lexNumber(src string, start int) (float64, int, error) {
	i := start
	for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
		i++
	}
	if i < len(src) && (src[i] == 'e' || src[i] == 'E') {
		i++
		if i < len(src) && (src[i] == '+' || src[i] == '-') {
			i++
		}
		for i < len(src) && src[i] >= '0' && src[i] <= '9' {
			i++
		}
	}
	n, err := strconv.ParseFloat(src[start:i], 64)
	if err != nil {
		return 0, 0, fmt.Errorf("jsoniq: offset %d: bad number %q", start, src[start:i])
	}
	return n, i, nil
}
