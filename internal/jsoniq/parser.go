package jsoniq

import "fmt"

// Parse parses a query string into its AST.
func Parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tEOF {
		return nil, p.errf("unexpected %s after expression", p.cur())
	}
	return e, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("jsoniq: offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

// isName reports whether the current token is the given bare name.
func (p *parser) isName(name string) bool {
	t := p.cur()
	return t.kind == tName && t.text == name
}

func (p *parser) expectName(name string) error {
	if !p.isName(name) {
		return p.errf("expected %q, got %s", name, p.cur())
	}
	p.next()
	return nil
}

func (p *parser) expect(kind tokKind) (token, error) {
	if p.cur().kind != kind {
		return token{}, p.errf("expected %s, got %s", kind, p.cur())
	}
	return p.next(), nil
}

// parseExprSingle: FLWOR or an operator expression.
func (p *parser) parseExprSingle() (Expr, error) {
	if p.isName("for") || p.isName("let") {
		return p.parseFLWOR()
	}
	return p.parseOr()
}

func (p *parser) parseFLWOR() (Expr, error) {
	var clauses []Clause
	for {
		switch {
		case p.isName("for"):
			p.next()
			for {
				v, err := p.expect(tVar)
				if err != nil {
					return nil, err
				}
				if err := p.expectName("in"); err != nil {
					return nil, err
				}
				in, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				clauses = append(clauses, &ForClause{Var: v.text, In: in})
				if p.cur().kind != tComma {
					break
				}
				p.next()
			}
		case p.isName("let"):
			p.next()
			for {
				v, err := p.expect(tVar)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tAssign); err != nil {
					return nil, err
				}
				e, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				clauses = append(clauses, &LetClause{Var: v.text, E: e})
				if p.cur().kind != tComma {
					break
				}
				p.next()
			}
		case p.isName("where"):
			p.next()
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			clauses = append(clauses, &WhereClause{E: e})
		case p.isName("group"):
			p.next()
			if err := p.expectName("by"); err != nil {
				return nil, err
			}
			var keys []GroupKey
			for {
				v, err := p.expect(tVar)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tAssign); err != nil {
					return nil, err
				}
				e, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				keys = append(keys, GroupKey{Var: v.text, E: e})
				if p.cur().kind != tComma {
					break
				}
				p.next()
			}
			clauses = append(clauses, &GroupByClause{Keys: keys})
		case p.isName("order"):
			p.next()
			if err := p.expectName("by"); err != nil {
				return nil, err
			}
			var keys []OrderKey
			for {
				e, err := p.parseOr()
				if err != nil {
					return nil, err
				}
				key := OrderKey{E: e}
				if p.isName("ascending") {
					p.next()
				} else if p.isName("descending") {
					p.next()
					key.Descending = true
				}
				keys = append(keys, key)
				if p.cur().kind != tComma {
					break
				}
				p.next()
			}
			clauses = append(clauses, &OrderByClause{Keys: keys})
		case p.isName("return"):
			p.next()
			ret, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			return &FLWOR{Clauses: clauses, Return: ret}, nil
		default:
			return nil, p.errf("expected FLWOR clause or 'return', got %s", p.cur())
		}
	}
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isName("or") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.isName("and") {
		p.next()
		r, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "and", L: l, R: r}
	}
	return l, nil
}

var comparisonOps = map[string]bool{
	"eq": true, "ne": true, "lt": true, "le": true, "gt": true, "ge": true,
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if t := p.cur(); t.kind == tName && comparisonOps[t.text] {
		op := p.next().text
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().kind {
		case tPlus:
			p.next()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "+", L: l, R: r}
		case tMinus:
			p.next()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.cur().kind == tStar:
			p.next()
			r, err := p.parsePostfix()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "*", L: l, R: r}
		case p.isName("div"):
			p.next()
			r, err := p.parsePostfix()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "div", L: l, R: r}
		case p.isName("mod"):
			p.next()
			r, err := p.parsePostfix()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "mod", L: l, R: r}
		default:
			return l, nil
		}
	}
}

// parsePostfix parses a primary expression followed by any number of JSONiq
// navigation postfixes: (expr) for value, () for keys-or-members.
func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tLParen {
		p.next()
		if p.cur().kind == tRParen {
			p.next()
			e = &KeysOrMembers{Base: e}
			continue
		}
		key, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		e = &Value{Base: e, Key: key}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tNumber:
		p.next()
		return &NumberLit{Value: t.num}, nil
	case tString:
		p.next()
		return &StringLit{Value: t.text}, nil
	case tVar:
		p.next()
		return &VarRef{Name: t.text}, nil
	case tName:
		// A name followed by '(' is a function call; a bare name is an
		// error in this subset (no path steps on names).
		name := t.text
		if p.toks[p.pos+1].kind == tLParen {
			p.next() // name
			p.next() // (
			var args []Expr
			if p.cur().kind != tRParen {
				for {
					a, err := p.parseExprSingle()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.cur().kind != tComma {
						break
					}
					p.next()
				}
			}
			if _, err := p.expect(tRParen); err != nil {
				return nil, err
			}
			return &Call{Fn: name, Args: args}, nil
		}
		return nil, p.errf("unexpected name %q", name)
	case tLParen:
		p.next()
		if p.cur().kind == tRParen {
			return nil, p.errf("empty parenthesized expression")
		}
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tMinus:
		p.next()
		e, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: "-", L: &NumberLit{Value: 0}, R: e}, nil
	case tLBrace:
		return p.parseObjectCons()
	case tLBracket:
		return p.parseArrayCons()
	default:
		return nil, p.errf("unexpected %s", t)
	}
}

// parseObjectCons parses a JSONiq object constructor {"k": e, ...}. Keys
// are arbitrary expressions that must evaluate to strings.
func (p *parser) parseObjectCons() (Expr, error) {
	p.next() // {
	obj := &ObjectCons{}
	if p.cur().kind == tRBrace {
		p.next()
		return obj, nil
	}
	for {
		key, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tColon); err != nil {
			return nil, err
		}
		value, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		obj.Pairs = append(obj.Pairs, ObjectPair{Key: key, Value: value})
		switch p.cur().kind {
		case tComma:
			p.next()
		case tRBrace:
			p.next()
			return obj, nil
		default:
			return nil, p.errf("expected ',' or '}', got %s", p.cur())
		}
	}
}

// parseArrayCons parses a JSONiq array constructor [e1, e2, ...].
func (p *parser) parseArrayCons() (Expr, error) {
	p.next() // [
	arr := &ArrayCons{}
	if p.cur().kind == tRBracket {
		p.next()
		return arr, nil
	}
	for {
		m, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		arr.Members = append(arr.Members, m)
		switch p.cur().kind {
		case tComma:
			p.next()
		case tRBracket:
			p.next()
			return arr, nil
		default:
			return nil, p.errf("expected ',' or ']', got %s", p.cur())
		}
	}
}
