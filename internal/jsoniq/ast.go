// Package jsoniq implements the front end of the query processor: a lexer
// and recursive-descent parser for the subset of the JSONiq extension to
// XQuery used in the paper — FLWOR expressions (for / let / where /
// group by / return), the JSONiq navigation postfixes (value and
// keys-or-members), function calls, comparisons, boolean connectives and
// arithmetic.
package jsoniq

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a parsed expression.
type Expr interface {
	// String renders the expression in (normalized) JSONiq syntax.
	String() string
}

// NumberLit is a numeric literal.
type NumberLit struct{ Value float64 }

// StringLit is a string literal.
type StringLit struct{ Value string }

// VarRef references a bound variable, e.g. $x.
type VarRef struct{ Name string }

// Call is a function call, e.g. count(...), dateTime(...).
type Call struct {
	Fn   string
	Args []Expr
}

// Binary is a binary operation: comparison (eq ne lt le gt ge), boolean
// (and or), or arithmetic (+ - * div mod).
type Binary struct {
	Op   string
	L, R Expr
}

// Value is the JSONiq value navigation postfix: Base(Key), where Key is an
// object field name or array index expression.
type Value struct {
	Base Expr
	Key  Expr
}

// KeysOrMembers is the JSONiq keys-or-members postfix: Base().
type KeysOrMembers struct{ Base Expr }

// ObjectPair is one key/value pair of an object constructor.
type ObjectPair struct {
	Key   Expr
	Value Expr
}

// ObjectCons is a JSONiq object constructor: {"k": e, ...}.
type ObjectCons struct {
	Pairs []ObjectPair
}

// ArrayCons is a JSONiq array constructor: [e1, e2, ...]; each member
// expression contributes all of its items.
type ArrayCons struct {
	Members []Expr
}

// FLWOR is a for/let/where/group-by/order-by/return expression.
type FLWOR struct {
	Clauses []Clause
	Return  Expr
}

// Clause is one FLWOR clause.
type Clause interface {
	clauseString() string
}

// ForClause binds Var to each item of In.
type ForClause struct {
	Var string
	In  Expr
}

// LetClause binds Var to the value of E.
type LetClause struct {
	Var string
	E   Expr
}

// WhereClause filters by E.
type WhereClause struct{ E Expr }

// GroupKey is one group-by key definition: $Var := E.
type GroupKey struct {
	Var string
	E   Expr
}

// GroupByClause groups by its keys. Non-key variables become sequences of
// the grouped items (XQuery 3.0 semantics).
type GroupByClause struct{ Keys []GroupKey }

// OrderKey is one ordering key: an expression plus direction.
type OrderKey struct {
	E          Expr
	Descending bool
}

// OrderByClause orders the tuple stream by its keys.
type OrderByClause struct{ Keys []OrderKey }

func (e *NumberLit) String() string {
	return strconv.FormatFloat(e.Value, 'g', -1, 64)
}
func (e *StringLit) String() string { return strconv.Quote(e.Value) }
func (e *VarRef) String() string    { return "$" + e.Name }

func (e *Call) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Fn + "(" + strings.Join(args, ", ") + ")"
}

func (e *Binary) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

func (e *Value) String() string         { return e.Base.String() + "(" + e.Key.String() + ")" }
func (e *KeysOrMembers) String() string { return e.Base.String() + "()" }

func (e *ObjectCons) String() string {
	parts := make([]string, len(e.Pairs))
	for i, p := range e.Pairs {
		parts[i] = p.Key.String() + " : " + p.Value.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func (e *ArrayCons) String() string {
	parts := make([]string, len(e.Members))
	for i, m := range e.Members {
		parts[i] = m.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func (e *FLWOR) String() string {
	var b strings.Builder
	for _, c := range e.Clauses {
		b.WriteString(c.clauseString())
		b.WriteString(" ")
	}
	b.WriteString("return ")
	b.WriteString(e.Return.String())
	return b.String()
}

func (c *ForClause) clauseString() string { return fmt.Sprintf("for $%s in %s", c.Var, c.In) }
func (c *LetClause) clauseString() string { return fmt.Sprintf("let $%s := %s", c.Var, c.E) }
func (c *WhereClause) clauseString() string {
	return fmt.Sprintf("where %s", c.E)
}
func (c *GroupByClause) clauseString() string {
	keys := make([]string, len(c.Keys))
	for i, k := range c.Keys {
		keys[i] = fmt.Sprintf("$%s := %s", k.Var, k.E)
	}
	return "group by " + strings.Join(keys, ", ")
}

func (c *OrderByClause) clauseString() string {
	keys := make([]string, len(c.Keys))
	for i, k := range c.Keys {
		keys[i] = k.E.String()
		if k.Descending {
			keys[i] += " descending"
		}
	}
	return "order by " + strings.Join(keys, ", ")
}
