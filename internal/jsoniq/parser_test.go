package jsoniq

import (
	"strings"
	"testing"
)

// The five evaluation queries of the paper (§5.2), verbatim modulo
// whitespace.
const (
	queryQ0 = `
for $r in collection("/sensors")("root")()("results")()
let $datetime := dateTime(data($r("date")))
where year-from-dateTime($datetime) ge 2003
  and month-from-dateTime($datetime) eq 12
  and day-from-dateTime($datetime) eq 25
return $r`

	queryQ0b = `
for $r in collection("/sensors")("root")()("results")()("date")
let $datetime := dateTime(data($r))
where year-from-dateTime($datetime) ge 2003
  and month-from-dateTime($datetime) eq 12
  and day-from-dateTime($datetime) eq 25
return $r`

	queryQ1 = `
for $r in collection("/sensors")("root")()("results")()
where $r("dataType") eq "TMIN"
group by $date := $r("date")
return count($r("station"))`

	queryQ1b = `
for $r in collection("/sensors")("root")()("results")()
where $r("dataType") eq "TMIN"
group by $date := $r("date")
return count(for $i in $r return $i("station"))`

	queryQ2 = `
avg(
  for $r_min in collection("/sensors")("root")()("results")()
  for $r_max in collection("/sensors")("root")()("results")()
  where $r_min("station") eq $r_max("station")
    and $r_min("date") eq $r_max("date")
    and $r_min("dataType") eq "TMIN"
    and $r_max("dataType") eq "TMAX"
  return $r_max("value") - $r_min("value")
) div 10`
)

func mustParseQ(t *testing.T, src string) Expr {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%s): %v", src, err)
	}
	return e
}

func TestParseQ0(t *testing.T) {
	e := mustParseQ(t, queryQ0)
	fl, ok := e.(*FLWOR)
	if !ok {
		t.Fatalf("Q0 is %T, want FLWOR", e)
	}
	if len(fl.Clauses) != 3 {
		t.Fatalf("Q0 clauses = %d, want 3 (for, let, where)", len(fl.Clauses))
	}
	fc, ok := fl.Clauses[0].(*ForClause)
	if !ok || fc.Var != "r" {
		t.Fatalf("first clause = %#v", fl.Clauses[0])
	}
	// The for-domain is a chain of postfixes over collection(...).
	if _, ok := fc.In.(*KeysOrMembers); !ok {
		t.Errorf("for-domain should end in keys-or-members, got %T", fc.In)
	}
	lc, ok := fl.Clauses[1].(*LetClause)
	if !ok || lc.Var != "datetime" {
		t.Fatalf("second clause = %#v", fl.Clauses[1])
	}
	wc, ok := fl.Clauses[2].(*WhereClause)
	if !ok {
		t.Fatalf("third clause = %#v", fl.Clauses[2])
	}
	// where is and(and(ge, eq), eq) with left associativity.
	and1, ok := wc.E.(*Binary)
	if !ok || and1.Op != "and" {
		t.Fatalf("where = %s", wc.E)
	}
	if ret, ok := fl.Return.(*VarRef); !ok || ret.Name != "r" {
		t.Errorf("return = %s", fl.Return)
	}
}

func TestParseQ0bPathExtended(t *testing.T) {
	e := mustParseQ(t, queryQ0b)
	fc := e.(*FLWOR).Clauses[0].(*ForClause)
	// ...("results")()("date"): outermost postfix is the value("date").
	v, ok := fc.In.(*Value)
	if !ok {
		t.Fatalf("for-domain = %T, want Value", fc.In)
	}
	if key, ok := v.Key.(*StringLit); !ok || key.Value != "date" {
		t.Errorf("outermost key = %s", v.Key)
	}
	if _, ok := v.Base.(*KeysOrMembers); !ok {
		t.Errorf("base should be keys-or-members, got %T", v.Base)
	}
}

func TestParseQ1GroupBy(t *testing.T) {
	e := mustParseQ(t, queryQ1)
	fl := e.(*FLWOR)
	if len(fl.Clauses) != 3 {
		t.Fatalf("clauses = %d", len(fl.Clauses))
	}
	gb, ok := fl.Clauses[2].(*GroupByClause)
	if !ok {
		t.Fatalf("third clause = %#v", fl.Clauses[2])
	}
	if len(gb.Keys) != 1 || gb.Keys[0].Var != "date" {
		t.Fatalf("group keys = %#v", gb.Keys)
	}
	call, ok := fl.Return.(*Call)
	if !ok || call.Fn != "count" {
		t.Fatalf("return = %s", fl.Return)
	}
}

func TestParseQ1bNestedFLWOR(t *testing.T) {
	e := mustParseQ(t, queryQ1b)
	fl := e.(*FLWOR)
	call := fl.Return.(*Call)
	if call.Fn != "count" || len(call.Args) != 1 {
		t.Fatalf("return = %s", fl.Return)
	}
	inner, ok := call.Args[0].(*FLWOR)
	if !ok {
		t.Fatalf("count argument = %T, want nested FLWOR", call.Args[0])
	}
	if inner.Clauses[0].(*ForClause).Var != "i" {
		t.Errorf("inner for var = %s", inner.Clauses[0].(*ForClause).Var)
	}
}

func TestParseQ2SelfJoin(t *testing.T) {
	e := mustParseQ(t, queryQ2)
	div, ok := e.(*Binary)
	if !ok || div.Op != "div" {
		t.Fatalf("Q2 top = %s", e)
	}
	if n, ok := div.R.(*NumberLit); !ok || n.Value != 10 {
		t.Errorf("divisor = %s", div.R)
	}
	avg, ok := div.L.(*Call)
	if !ok || avg.Fn != "avg" {
		t.Fatalf("left = %s", div.L)
	}
	fl, ok := avg.Args[0].(*FLWOR)
	if !ok {
		t.Fatalf("avg arg = %T", avg.Args[0])
	}
	fors := 0
	for _, c := range fl.Clauses {
		if _, ok := c.(*ForClause); ok {
			fors++
		}
	}
	if fors != 2 {
		t.Errorf("for clauses = %d, want 2", fors)
	}
	// return $r_max("value") - $r_min("value")
	sub, ok := fl.Return.(*Binary)
	if !ok || sub.Op != "-" {
		t.Errorf("return = %s", fl.Return)
	}
}

func TestParseBookstoreQueries(t *testing.T) {
	// Listings 2-5 of the paper.
	queries := []string{
		`json-doc("books.json")("bookstore")("book")()`,
		`collection("/books")("bookstore")("book")()`,
		`for $x in collection("/books")("bookstore")("book")()
		 group by $author := $x("author")
		 return count($x("title"))`,
		`for $x in collection("/books")("bookstore")("book")()
		 group by $author := $x("author")
		 return count(for $j in $x return $j("title"))`,
	}
	for _, q := range queries {
		mustParseQ(t, q)
	}
}

func TestParseOperatorsAndPrecedence(t *testing.T) {
	e := mustParseQ(t, `1 + 2 * 3 eq 7 and 2 lt 3 or 1 ge 2`)
	// ((1+(2*3)) eq 7 and (2 lt 3)) or (1 ge 2)
	or, ok := e.(*Binary)
	if !ok || or.Op != "or" {
		t.Fatalf("top = %s", e)
	}
	and, ok := or.L.(*Binary)
	if !ok || and.Op != "and" {
		t.Fatalf("or.L = %s", or.L)
	}
	eq, ok := and.L.(*Binary)
	if !ok || eq.Op != "eq" {
		t.Fatalf("and.L = %s", and.L)
	}
	add, ok := eq.L.(*Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("eq.L = %s", eq.L)
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != "*" {
		t.Fatalf("add.R = %s", add.R)
	}
}

func TestParseUnaryMinus(t *testing.T) {
	e := mustParseQ(t, `-5 + 3`)
	add := e.(*Binary)
	if add.Op != "+" {
		t.Fatalf("top = %s", e)
	}
	neg := add.L.(*Binary)
	if neg.Op != "-" {
		t.Fatalf("unary = %s", add.L)
	}
}

func TestParseIndexedValue(t *testing.T) {
	e := mustParseQ(t, `$a(1)`)
	v := e.(*Value)
	if n, ok := v.Key.(*NumberLit); !ok || n.Value != 1 {
		t.Fatalf("key = %s", v.Key)
	}
}

func TestParseComments(t *testing.T) {
	e := mustParseQ(t, `(: outer (: nested :) comment :) 1 + 1`)
	if b, ok := e.(*Binary); !ok || b.Op != "+" {
		t.Fatalf("got %s", e)
	}
}

func TestParseStringEscapes(t *testing.T) {
	e := mustParseQ(t, `"say ""hi"""`)
	if s, ok := e.(*StringLit); !ok || s.Value != `say "hi"` {
		t.Fatalf("got %s", e)
	}
	e = mustParseQ(t, `'single'`)
	if s, ok := e.(*StringLit); !ok || s.Value != "single" {
		t.Fatalf("got %s", e)
	}
}

func TestParseMultiVarFor(t *testing.T) {
	e := mustParseQ(t, `for $a in collection("/x")(), $b in $a() return $b`)
	fl := e.(*FLWOR)
	if len(fl.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(fl.Clauses))
	}
	if fl.Clauses[1].(*ForClause).Var != "b" {
		t.Errorf("second for var = %v", fl.Clauses[1])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "for", "for $x", "for $x in", "for $x in $y", // missing return
		"for $x in $y return", "let $x return $x",
		"$", "1 +", "count(", "count(1", "(1", "()",
		"group by $k = $x return $k", // '=' instead of ':='
		"1 2", "$x(1", `"unterminated`, "(: unterminated", "@",
		"for x in $y return x", // missing $
		"1 :", "bareword",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestASTStringRoundTrip(t *testing.T) {
	// String() output must re-parse to an equivalent string form.
	for _, q := range []string{queryQ0, queryQ0b, queryQ1, queryQ1b, queryQ2} {
		e := mustParseQ(t, q)
		s1 := e.String()
		e2, err := Parse(s1)
		if err != nil {
			t.Fatalf("reparse of %q: %v", s1, err)
		}
		if s2 := e2.String(); s1 != s2 {
			t.Errorf("not a fixpoint:\n%s\n%s", s1, s2)
		}
	}
}

func TestClauseStrings(t *testing.T) {
	e := mustParseQ(t, queryQ1)
	s := e.String()
	for _, want := range []string{"for $r in", "where", "group by $date :=", "return count("} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestParseObjectConstructor(t *testing.T) {
	e := mustParseQ(t, `{"a": 1, "b": {"c": [1, 2]}}`)
	obj, ok := e.(*ObjectCons)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if len(obj.Pairs) != 2 {
		t.Fatalf("pairs = %d", len(obj.Pairs))
	}
	if k, ok := obj.Pairs[0].Key.(*StringLit); !ok || k.Value != "a" {
		t.Errorf("first key = %s", obj.Pairs[0].Key)
	}
	inner, ok := obj.Pairs[1].Value.(*ObjectCons)
	if !ok {
		t.Fatalf("nested value = %T", obj.Pairs[1].Value)
	}
	if _, ok := inner.Pairs[0].Value.(*ArrayCons); !ok {
		t.Errorf("inner array = %T", inner.Pairs[0].Value)
	}
	// Empty constructors.
	if o := mustParseQ(t, `{}`).(*ObjectCons); len(o.Pairs) != 0 {
		t.Error("empty object")
	}
	if a := mustParseQ(t, `[]`).(*ArrayCons); len(a.Members) != 0 {
		t.Error("empty array")
	}
}

func TestParseConstructorPostfix(t *testing.T) {
	// Navigation applies to constructors like any other expression.
	e := mustParseQ(t, `{"a": [10, 20]}("a")(2)`)
	v, ok := e.(*Value)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if n, ok := v.Key.(*NumberLit); !ok || n.Value != 2 {
		t.Errorf("index = %s", v.Key)
	}
}

func TestParseOrderBy(t *testing.T) {
	e := mustParseQ(t, `
		for $x in $c()
		order by $x("a") descending, $x("b") ascending, $x("c")
		return $x`)
	fl := e.(*FLWOR)
	ob, ok := fl.Clauses[1].(*OrderByClause)
	if !ok {
		t.Fatalf("clause = %#v", fl.Clauses[1])
	}
	if len(ob.Keys) != 3 {
		t.Fatalf("keys = %d", len(ob.Keys))
	}
	if !ob.Keys[0].Descending || ob.Keys[1].Descending || ob.Keys[2].Descending {
		t.Errorf("directions = %+v", ob.Keys)
	}
	if !strings.Contains(e.String(), "order by") {
		t.Errorf("String() = %s", e)
	}
}

func TestParseConstructorErrors(t *testing.T) {
	bad := []string{
		`{`, `{"a"}`, `{"a": }`, `{"a": 1,}`, `{"a" 1}`,
		`[`, `[1,]`, `[1 2]`,
		`for $x in $y order by return $x`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}
