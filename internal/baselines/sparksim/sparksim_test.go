package sparksim

import (
	"errors"
	"sort"
	"testing"

	"vxq/internal/gen"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

func testSource(t *testing.T, files int) runtime.Source {
	t.Helper()
	cfg := gen.Default()
	cfg.Files = files
	cfg.RecordsPerFile = 5
	cfg.MeasurementsPerArray = 10
	docs, _, err := cfg.InMemory()
	if err != nil {
		t.Fatal(err)
	}
	return &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}
}

func TestLoadFlattensMeasurements(t *testing.T) {
	table, err := Load(testSource(t, 4), "/sensors", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4*5*10 {
		t.Errorf("rows = %d, want 200", len(table.Rows))
	}
	if table.MemoryBytes <= table.RawBytes/4 {
		t.Errorf("memory model too small: mem=%d raw=%d", table.MemoryBytes, table.RawBytes)
	}
	sort.Strings(table.Schema)
	want := []string{"dataType", "date", "station", "value"}
	if len(table.Schema) != 4 {
		t.Fatalf("schema = %v", table.Schema)
	}
	for i, k := range want {
		if table.Schema[i] != k {
			t.Fatalf("schema = %v, want %v", table.Schema, want)
		}
	}
}

func TestMemoryLimitFailsLoad(t *testing.T) {
	_, err := Load(testSource(t, 4), "/sensors", Config{MemoryLimitBytes: 1000})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
}

func TestMemoryGrowsWithData(t *testing.T) {
	small, err := Load(testSource(t, 2), "/sensors", Config{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Load(testSource(t, 8), "/sensors", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if big.MemoryBytes <= small.MemoryBytes {
		t.Errorf("memory should grow with data: small=%d big=%d", small.MemoryBytes, big.MemoryBytes)
	}
}

func TestCountStationsByDate(t *testing.T) {
	table, err := Load(testSource(t, 4), "/sensors", Config{})
	if err != nil {
		t.Fatal(err)
	}
	counts := table.CountStationsByDate("TMIN")
	total := 0
	for _, c := range counts {
		total += c
	}
	// 20 records x 10 measurements with 5 cycling types -> 2 TMIN each.
	if total != 20*2 {
		t.Errorf("total TMIN rows = %d, want 40", total)
	}
}

func TestSelectDates(t *testing.T) {
	table, err := Load(testSource(t, 4), "/sensors", Config{})
	if err != nil {
		t.Fatal(err)
	}
	dates := table.SelectDates(func(d item.DateTime) bool {
		return d.Month == 12 && d.Day == 25 && d.Year >= 2003
	})
	if len(dates) == 0 {
		t.Error("no matching dates")
	}
}

func TestLoadErrors(t *testing.T) {
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{
		"/bad": {"x.json": []byte(`{"root": [`)},
	}}
	if _, err := Load(src, "/bad", Config{}); err == nil {
		t.Error("bad JSON must fail")
	}
	if _, err := Load(src, "/missing", Config{}); err == nil {
		t.Error("missing collection must fail")
	}
}
