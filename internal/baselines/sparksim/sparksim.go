// Package sparksim is a SparkSQL-like comparison system (§5.3, Fig. 19,
// Tables 2-3): raw JSON is *loaded* into an in-memory relational
// representation (schema inference over the flattened measurements, row
// objects with per-row overhead, like a JVM DataFrame), and queries then
// run over the in-memory table. The paper's Spark observations this
// reproduces: the load phase grows with the dataset and dominates for
// medium files; memory consumption is a large multiple of the raw data
// (Table 3); datasets beyond the memory budget fail to load at all.
package sparksim

import (
	"errors"
	"fmt"

	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// ErrOutOfMemory reports that loading exceeded the configured memory
// budget, like SparkSQL failing to load datasets beyond the node's RAM.
var ErrOutOfMemory = errors.New("sparksim: dataset exceeds the executor memory budget")

// RowOverheadBytes models the JVM object/boxing overhead per row that makes
// a loaded DataFrame several times larger than the raw JSON (Table 3 shows
// ~7-14x on the paper's hardware).
const RowOverheadBytes = 112

// Row is one flattened measurement.
type Row struct {
	Date     string
	DataType string
	Station  string
	Value    float64
}

// Table is a loaded in-memory dataset.
type Table struct {
	Rows []Row
	// Schema is the inferred field set.
	Schema []string
	// MemoryBytes is the modeled in-memory footprint.
	MemoryBytes int64
	// RawBytes is the raw JSON volume that was parsed.
	RawBytes int64
}

// Config bounds the loader.
type Config struct {
	// MemoryLimitBytes fails the load when the in-memory table exceeds it
	// (0 = unlimited).
	MemoryLimitBytes int64
}

// Load materializes the flattened measurement table the way Spark's JSON
// reader does when no schema is supplied: a first full pass over the data
// infers the schema, then a second full pass parses again and builds the
// row objects (boxed field values, modeling DataFrame Row allocation).
func Load(src runtime.Source, collection string, cfg Config) (*Table, error) {
	files, err := src.Files(collection)
	if err != nil {
		return nil, err
	}
	t := &Table{}
	path := jsonparse.Path{
		jsonparse.KeyStep("root"), jsonparse.MembersStep(),
		jsonparse.KeyStep("results"), jsonparse.MembersStep(),
	}

	// Pass 1: schema inference, streaming over the whole input.
	fields := map[string]bool{}
	for _, f := range files {
		rc, err := src.Open(f)
		if err != nil {
			return nil, fmt.Errorf("sparksim: %s: %w", f, err)
		}
		cr := &runtime.CountingReader{R: rc}
		err = jsonparse.ProjectReader(cr, jsonparse.DefaultChunkSize, path,
			func(m item.Item) error {
				if mo, ok := m.(*item.Object); ok {
					for _, k := range mo.Keys() {
						fields[k] = true
					}
				}
				return nil
			})
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("sparksim: %s: %w", f, err)
		}
		t.RawBytes += cr.N
	}
	for k := range fields {
		t.Schema = append(t.Schema, k)
	}

	// Pass 2: stream again and materialize the rows.
	for _, f := range files {
		rc, err := src.Open(f)
		if err != nil {
			return nil, fmt.Errorf("sparksim: %s: %w", f, err)
		}
		err = jsonparse.ProjectReader(rc, jsonparse.DefaultChunkSize, path,
			func(m item.Item) error {
				mo, ok := m.(*item.Object)
				if !ok {
					return nil
				}
				// Box the row like a generic DataFrame Row (per-field
				// objects), then keep the flat struct for query execution.
				boxed := make(item.Sequence, 0, len(t.Schema))
				for _, k := range t.Schema {
					if v := mo.Value(k); v != nil {
						boxed = append(boxed, v)
					} else {
						boxed = append(boxed, item.Null{})
					}
				}
				row := Row{}
				if s, ok := mo.Value("date").(item.String); ok {
					row.Date = string(s)
				}
				if s, ok := mo.Value("dataType").(item.String); ok {
					row.DataType = string(s)
				}
				if s, ok := mo.Value("station").(item.String); ok {
					row.Station = string(s)
				}
				if n, ok := mo.Value("value").(item.Number); ok {
					row.Value = float64(n)
				}
				t.Rows = append(t.Rows, row)
				t.MemoryBytes += item.SizeBytesSeq(boxed) + RowOverheadBytes
				if cfg.MemoryLimitBytes > 0 && t.MemoryBytes > cfg.MemoryLimitBytes {
					return fmt.Errorf("%w: %d bytes > %d limit", ErrOutOfMemory,
						t.MemoryBytes, cfg.MemoryLimitBytes)
				}
				return nil
			})
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			if errors.Is(err, ErrOutOfMemory) {
				return nil, err
			}
			return nil, fmt.Errorf("sparksim: %s: %w", f, err)
		}
	}
	return t, nil
}

// CountStationsByDate runs the Q1-equivalent SQL over the loaded table:
// SELECT date, count(station) FROM t WHERE dataType = ? GROUP BY date.
func (t *Table) CountStationsByDate(dataType string) map[string]int {
	counts := map[string]int{}
	for _, r := range t.Rows {
		if r.DataType == dataType {
			counts[r.Date]++
		}
	}
	return counts
}

// SelectDates runs the Q0b-equivalent SQL selection over the loaded table.
func (t *Table) SelectDates(pred func(item.DateTime) bool) []string {
	var out []string
	for _, r := range t.Rows {
		d, err := item.ParseDateTime(r.Date)
		if err != nil {
			continue
		}
		if pred(d) {
			out = append(out, r.Date)
		}
	}
	return out
}
