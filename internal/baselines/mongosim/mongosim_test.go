package mongosim

import (
	"errors"
	"testing"

	"vxq/internal/gen"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

func testSource(t *testing.T, measPerArray int) runtime.Source {
	t.Helper()
	cfg := gen.Default()
	cfg.Files = 4
	cfg.RecordsPerFile = 6
	cfg.MeasurementsPerArray = measPerArray
	docs, _, err := cfg.InMemory()
	if err != nil {
		t.Fatal(err)
	}
	return &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}
}

func TestLoadUnwrapsRootMembers(t *testing.T) {
	st, err := Load(testSource(t, 10), "/sensors")
	if err != nil {
		t.Fatal(err)
	}
	if st.DocumentsLoaded != 4*6 {
		t.Errorf("documents = %d, want 24", st.DocumentsLoaded)
	}
	if st.StoredBytes <= 0 || st.RawBytes <= 0 {
		t.Errorf("stored=%d raw=%d", st.StoredBytes, st.RawBytes)
	}
	if st.StoredBytes >= st.RawBytes {
		t.Errorf("compression should shrink: stored=%d raw=%d", st.StoredBytes, st.RawBytes)
	}
}

func TestCompressionBetterForLargerDocuments(t *testing.T) {
	// The Fig. 18b shape: smaller documents compress worse, so the stored
	// ratio (stored/raw) grows as measurements/array shrinks.
	big, err := Load(testSource(t, 30), "/sensors")
	if err != nil {
		t.Fatal(err)
	}
	small, err := Load(testSource(t, 1), "/sensors")
	if err != nil {
		t.Fatal(err)
	}
	bigRatio := float64(big.StoredBytes) / float64(big.RawBytes)
	smallRatio := float64(small.StoredBytes) / float64(small.RawBytes)
	if smallRatio <= bigRatio {
		t.Errorf("small docs should compress worse: big=%.3f small=%.3f", bigRatio, smallRatio)
	}
}

func TestSelectDates(t *testing.T) {
	st, err := Load(testSource(t, 10), "/sensors")
	if err != nil {
		t.Fatal(err)
	}
	dates, err := st.SelectDates(func(d item.DateTime) bool {
		return d.Year >= 2003 && d.Month == 12 && d.Day == 25
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dates) == 0 {
		t.Fatal("no Dec-25 dates found")
	}
	for _, d := range dates {
		dt, err := item.ParseDateTime(d)
		if err != nil || dt.Month != 12 || dt.Day != 25 || dt.Year < 2003 {
			t.Errorf("bad selected date %s", d)
		}
	}
}

func TestCountStationsByDate(t *testing.T) {
	st, err := Load(testSource(t, 10), "/sensors")
	if err != nil {
		t.Fatal(err)
	}
	counts, err := st.CountStationsByDate("TMIN")
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) == 0 {
		t.Fatal("no TMIN groups")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	// 24 documents x 10 measurements, types cycle over 5 -> 2 TMIN each.
	if total != 24*2 {
		t.Errorf("total TMIN = %d, want 48", total)
	}
}

func TestGroupedSelfJoinHitsDocumentLimit(t *testing.T) {
	st, err := Load(testSource(t, 10), "/sensors")
	if err != nil {
		t.Fatal(err)
	}
	st.DocLimit = 64 // laptop-scale stand-in for 16 MB
	_, err = st.GroupedSelfJoin()
	var tooLarge ErrDocumentTooLarge
	if !errors.As(err, &tooLarge) {
		t.Fatalf("expected ErrDocumentTooLarge, got %v", err)
	}
}

func TestUnwindProjectJoinMatchesGrouped(t *testing.T) {
	st, err := Load(testSource(t, 10), "/sensors")
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := st.GroupedSelfJoin() // default 16 MB limit: fine at this scale
	if err != nil {
		t.Fatal(err)
	}
	unwound, err := st.UnwindProjectJoin()
	if err != nil {
		t.Fatal(err)
	}
	if grouped != unwound {
		t.Errorf("strategies disagree: grouped=%v unwound=%v", grouped, unwound)
	}
	if unwound == 0 {
		t.Error("join produced no matches")
	}
}

func TestLoadErrors(t *testing.T) {
	src := &runtime.MemSource{Collections: map[string]map[string][]byte{
		"/bad-json":  {"x.json": []byte(`{"root": [`)},
		"/no-root":   {"x.json": []byte(`{"other": 1}`)},
		"/root-type": {"x.json": []byte(`{"root": 5}`)},
	}}
	for _, coll := range []string{"/bad-json", "/no-root", "/root-type", "/missing"} {
		if _, err := Load(src, coll); err == nil {
			t.Errorf("Load(%s) should fail", coll)
		}
	}
}

func TestInsertRespectsLimitAtLoad(t *testing.T) {
	st := &Store{DocLimit: 8}
	err := st.insert(item.ObjectFromPairs("k", item.String("a long enough value")))
	var tooLarge ErrDocumentTooLarge
	if !errors.As(err, &tooLarge) {
		t.Fatalf("expected ErrDocumentTooLarge, got %v", err)
	}
}
