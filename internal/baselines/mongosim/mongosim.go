// Package mongosim is a MongoDB-like document store used as the comparison
// system of §5.3/§5.4: it has a mandatory *load* phase that converts raw
// JSON files into per-document compressed storage, a 16 MB document size
// limit, faster selection queries on compressed storage, and a self-join
// path that fails on the document limit unless the caller first unwinds
// the "results" arrays (the workaround the paper describes for Q2).
//
// The paper's MongoDB observations this simulator reproduces mechanically:
//   - loading is slower for smaller documents (less compression, more
//     per-document overhead) — Table 1;
//   - storage grows as documents shrink — Fig. 18b;
//   - query time benefits from larger (better-compressed) documents —
//     Fig. 18a;
//   - the grouped self-join exceeds 16 MB and needs unwind+project —
//     §5.4 Q2 discussion.
package mongosim

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// MaxDocumentBytes is MongoDB's 16 MB document size limit.
const MaxDocumentBytes = 16 << 20

// ErrDocumentTooLarge reports a document exceeding the 16 MB limit.
type ErrDocumentTooLarge struct{ Size int }

func (e ErrDocumentTooLarge) Error() string {
	return fmt.Sprintf("mongosim: document of %d bytes exceeds the %d byte limit", e.Size, MaxDocumentBytes)
}

// Store is a loaded document collection: per-document compressed blobs.
type Store struct {
	docs [][]byte // flate-compressed canonical JSON
	// DocLimit is the document size limit in bytes; 0 means the real
	// MongoDB limit (MaxDocumentBytes). Benchmarks lower it to exercise
	// the Q2 failure path at laptop scale.
	DocLimit int
	// RawBytes is the pre-compression JSON volume.
	RawBytes int64
	// StoredBytes is the on-"disk" compressed volume (Fig. 18b).
	StoredBytes int64
	// DocumentsLoaded counts stored documents.
	DocumentsLoaded int
}

// Load ingests every file of a collection: each member of a file's "root"
// array becomes one document (the "unwrapped" layout of §5.3; the number of
// measurements per document is a property of the generated data). Each
// document is serialized and flate-compressed individually, like MongoDB's
// per-document block compression. Files stream through a fixed chunk
// buffer; only one root member is materialized at a time.
func Load(src runtime.Source, collection string) (*Store, error) {
	files, err := src.Files(collection)
	if err != nil {
		return nil, err
	}
	rootMembers := jsonparse.Path{jsonparse.KeyStep("root"), jsonparse.MembersStep()}
	st := &Store{}
	for _, f := range files {
		rc, err := src.Open(f)
		if err != nil {
			return nil, fmt.Errorf("mongosim: %s: %w", f, err)
		}
		members := 0
		err = jsonparse.ProjectReader(rc, jsonparse.DefaultChunkSize, rootMembers,
			func(m item.Item) error {
				members++
				return st.insert(m)
			})
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("mongosim: %s: %w", f, err)
		}
		if members == 0 {
			return nil, fmt.Errorf("mongosim: %s: missing root array", f)
		}
	}
	return st, nil
}

func (st *Store) limit() int {
	if st.DocLimit > 0 {
		return st.DocLimit
	}
	return MaxDocumentBytes
}

func (st *Store) insert(doc item.Item) error {
	js := item.AppendJSON(nil, doc)
	if len(js) > st.limit() {
		return ErrDocumentTooLarge{Size: len(js)}
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return err
	}
	if _, err := w.Write(js); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	st.docs = append(st.docs, buf.Bytes())
	st.RawBytes += int64(len(js))
	st.StoredBytes += int64(buf.Len())
	st.DocumentsLoaded++
	return nil
}

// scan decompresses and parses every document, invoking visit per document.
func (st *Store) scan(visit func(doc item.Item) error) error {
	for i, blob := range st.docs {
		r := flate.NewReader(bytes.NewReader(blob))
		js, err := io.ReadAll(r)
		if err != nil {
			return fmt.Errorf("mongosim: doc %d: %w", i, err)
		}
		if err := r.Close(); err != nil {
			return err
		}
		doc, err := jsonparse.Parse(js)
		if err != nil {
			return fmt.Errorf("mongosim: doc %d: %w", i, err)
		}
		if err := visit(doc); err != nil {
			return err
		}
	}
	return nil
}

// Measurement is a flattened sensor reading.
type Measurement struct {
	Date     string
	DataType string
	Station  string
	Value    float64
}

func measurementsOf(doc item.Item) []Measurement {
	var out []Measurement
	o, ok := doc.(*item.Object)
	if !ok {
		return nil
	}
	results, ok := o.Value("results").(item.Array)
	if !ok {
		return nil
	}
	for _, m := range results {
		mo, ok := m.(*item.Object)
		if !ok {
			continue
		}
		meas := Measurement{}
		if s, ok := mo.Value("date").(item.String); ok {
			meas.Date = string(s)
		}
		if s, ok := mo.Value("dataType").(item.String); ok {
			meas.DataType = string(s)
		}
		if s, ok := mo.Value("station").(item.String); ok {
			meas.Station = string(s)
		}
		if n, ok := mo.Value("value").(item.Number); ok {
			meas.Value = float64(n)
		}
		out = append(out, meas)
	}
	return out
}

// SelectDates runs the Q0b-equivalent selection: return the dates of all
// measurements matching the predicate (Dec 25, year >= 2003 in the paper).
func (st *Store) SelectDates(pred func(d item.DateTime) bool) ([]string, error) {
	var out []string
	err := st.scan(func(doc item.Item) error {
		for _, m := range measurementsOf(doc) {
			d, err := item.ParseDateTime(m.Date)
			if err != nil {
				continue
			}
			if pred(d) {
				out = append(out, m.Date)
			}
		}
		return nil
	})
	return out, err
}

// CountStationsByDate runs the Q1-equivalent aggregation pipeline:
// match dataType, group by date, count stations.
func (st *Store) CountStationsByDate(dataType string) (map[string]int, error) {
	counts := map[string]int{}
	err := st.scan(func(doc item.Item) error {
		for _, m := range measurementsOf(doc) {
			if m.DataType == dataType {
				counts[m.Date]++
			}
		}
		return nil
	})
	return counts, err
}

// GroupedSelfJoin attempts the naive Q2 strategy the paper describes:
// $group all measurements sharing (station, date) into a single document.
// When any grouped document would exceed the 16 MB limit it fails with
// ErrDocumentTooLarge, exactly like MongoDB.
func (st *Store) GroupedSelfJoin() (float64, error) {
	groups := map[string][]Measurement{}
	groupBytes := map[string]int{}
	err := st.scan(func(doc item.Item) error {
		for _, m := range measurementsOf(doc) {
			key := m.Station + "\x00" + m.Date
			groups[key] = append(groups[key], m)
			// Approximate BSON size of the accumulated group document.
			groupBytes[key] += len(m.Date) + len(m.DataType) + len(m.Station) + 32
			if groupBytes[key] > st.limit() {
				return ErrDocumentTooLarge{Size: groupBytes[key]}
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return avgDiffOfGroups(groups), nil
}

// UnwindProjectJoin is the paper's workaround for Q2: "we perform an
// additional step before the actual join: we unwind the results array and
// we project only the necessary fields. After that, we perform the actual
// join." The unwind stage materializes an intermediate collection — one
// (compressed) document per measurement, like a $unwind + $project + $out
// pipeline — and the join stage then reads it back.
func (st *Store) UnwindProjectJoin() (float64, error) {
	// Stage 1: unwind + project into an intermediate collection.
	unwound := &Store{DocLimit: st.DocLimit}
	if err := st.scan(func(doc item.Item) error {
		for _, m := range measurementsOf(doc) {
			if m.DataType != "TMIN" && m.DataType != "TMAX" {
				continue
			}
			row := item.ObjectFromPairs(
				"date", item.String(m.Date),
				"dataType", item.String(m.DataType),
				"station", item.String(m.Station),
				"value", item.Number(m.Value),
			)
			if err := unwound.insert(row); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return 0, err
	}
	// Stage 2: hash join TMIN x TMAX on (station, date) over the
	// intermediate collection.
	groups := map[string][]Measurement{}
	if err := unwound.scan(func(doc item.Item) error {
		o, ok := doc.(*item.Object)
		if !ok {
			return nil
		}
		m := Measurement{}
		if s, ok := o.Value("date").(item.String); ok {
			m.Date = string(s)
		}
		if s, ok := o.Value("dataType").(item.String); ok {
			m.DataType = string(s)
		}
		if s, ok := o.Value("station").(item.String); ok {
			m.Station = string(s)
		}
		if n, ok := o.Value("value").(item.Number); ok {
			m.Value = float64(n)
		}
		key := m.Station + "\x00" + m.Date
		groups[key] = append(groups[key], m)
		return nil
	}); err != nil {
		return 0, err
	}
	return avgDiffOfGroups(groups), nil
}

func avgDiffOfGroups(groups map[string][]Measurement) float64 {
	var sum float64
	var n int
	for _, ms := range groups {
		for _, lo := range ms {
			if lo.DataType != "TMIN" {
				continue
			}
			for _, hi := range ms {
				if hi.DataType != "TMAX" {
					continue
				}
				sum += hi.Value - lo.Value
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n) / 10
}
