// Package asterixsim is an AsterixDB-like comparison system (§5.3/§5.4).
// AsterixDB shares the Hyracks/Algebricks infrastructure with VXQuery, so
// this simulator runs on exactly the same engine (vxq/internal/hyracks,
// vxq/internal/algebricks) with two deliberate differences that the paper
// identifies as the source of the performance gap:
//
//  1. no JSONiq pipelining projection: each document is fully materialized
//     (converted to the internal ADM model) before navigation — "the
//     system waits to first gather all the measurements in the array
//     before it moves them to the next stage of processing";
//  2. optionally a *load* phase (AsterixDB(load)) that pre-converts the
//     raw JSON into binary ADM storage; queries then decode binary
//     documents instead of parsing JSON.
package asterixsim

import (
	"fmt"

	"vxq/internal/core"
	"vxq/internal/hyracks"
	"vxq/internal/item"
	"vxq/internal/jsonparse"
	"vxq/internal/runtime"
)

// Mode selects between the paper's two AsterixDB configurations.
type Mode uint8

// Modes.
const (
	// External accesses the raw JSON files as an external dataset (the
	// "AsterixDB" bars in the figures): no load phase, but every document
	// is parsed and converted whole.
	External Mode = iota
	// LoadFirst pre-loads the data into binary ADM storage (the
	// "AsterixDB(load)" bars): a costly load phase, cheaper queries.
	LoadFirst
)

func (m Mode) String() string {
	if m == LoadFirst {
		return "AsterixDB(load)"
	}
	return "AsterixDB"
}

// System is a configured AsterixDB-like instance.
type System struct {
	Mode Mode
	src  runtime.Source
	// admStore holds the pre-converted binary documents in LoadFirst mode.
	admStore *runtime.MemSource
	// StorageBytes is the binary ADM volume after load (Fig. 18b).
	StorageBytes int64
	// DocumentsLoaded counts converted documents.
	DocumentsLoaded int
}

// New creates a system over a raw JSON source. In LoadFirst mode the caller
// must run Load before querying.
func New(mode Mode, src runtime.Source) *System {
	return &System{Mode: mode, src: src}
}

// Load performs the ADM conversion load phase (LoadFirst mode only): every
// file is parsed, each root-array member becomes one binary ADM document.
func (s *System) Load(collection string) error {
	if s.Mode != LoadFirst {
		return fmt.Errorf("asterixsim: Load is only valid in LoadFirst mode")
	}
	files, err := s.src.Files(collection)
	if err != nil {
		return err
	}
	store := map[string][]byte{}
	rootMembers := jsonparse.Path{jsonparse.KeyStep("root"), jsonparse.MembersStep()}
	for _, f := range files {
		rc, err := s.src.Open(f)
		if err != nil {
			return fmt.Errorf("asterixsim: %s: %w", f, err)
		}
		// Stream the conversion: one root member is materialized, wrapped
		// back into the root shape (so the paper's queries run unchanged
		// against the loaded dataset), binary-encoded, and released before
		// the next one is parsed.
		i := 0
		err = jsonparse.ProjectReader(rc, jsonparse.DefaultChunkSize, rootMembers,
			func(m item.Item) error {
				wrapped := item.ObjectFromPairs("root", item.Array{m})
				blob := item.Encode(nil, wrapped)
				store[fmt.Sprintf("%s#%06d", f, i)] = blob
				s.StorageBytes += int64(len(blob))
				s.DocumentsLoaded++
				i++
				return nil
			})
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("asterixsim: %s: %w", f, err)
		}
	}
	s.admStore = &runtime.MemSource{Collections: map[string]map[string][]byte{collection: store}}
	return nil
}

// Compile compiles a query the AsterixDB way: DATASCAN without projection
// pushdown, plus the binary format in LoadFirst mode.
func (s *System) Compile(query string, partitions int) (*core.Compiled, error) {
	rules := core.AllRules()
	rules.NoProjectionPushdown = true
	format := hyracks.FormatJSON
	if s.Mode == LoadFirst {
		if s.admStore == nil {
			return nil, fmt.Errorf("asterixsim: LoadFirst mode requires Load first")
		}
		format = hyracks.FormatADM
	}
	return core.CompileQuery(query, core.Options{
		Rules:      rules,
		Partitions: partitions,
		ScanFormat: format,
	})
}

// Run compiles and executes a query.
func (s *System) Run(query string, partitions int) (*hyracks.Result, error) {
	c, err := s.Compile(query, partitions)
	if err != nil {
		return nil, err
	}
	src := s.src
	if s.Mode == LoadFirst {
		src = s.admStore
	}
	return hyracks.RunStaged(c.Job, &hyracks.Env{Source: src})
}
