package asterixsim

import (
	"strings"
	"testing"

	"vxq/internal/core"
	"vxq/internal/gen"
	"vxq/internal/hyracks"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

const q0b = `
for $r in collection("/sensors")("root")()("results")()("date")
let $datetime := dateTime(data($r))
where year-from-dateTime($datetime) ge 2003
  and month-from-dateTime($datetime) eq 12
  and day-from-dateTime($datetime) eq 25
return $r`

func testSource(t *testing.T) runtime.Source {
	t.Helper()
	cfg := gen.Default()
	cfg.Files = 4
	cfg.RecordsPerFile = 6
	cfg.MeasurementsPerArray = 10
	docs, _, err := cfg.InMemory()
	if err != nil {
		t.Fatal(err)
	}
	return &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}
}

func vxqueryReference(t *testing.T, src runtime.Source) [][]item.Sequence {
	t.Helper()
	c, err := core.CompileQuery(q0b, core.Options{Rules: core.AllRules(), Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := hyracks.RunStaged(c.Job, &hyracks.Env{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	res.SortRows()
	return res.Rows
}

func TestExternalModeMatchesVXQuery(t *testing.T) {
	src := testSource(t)
	want := vxqueryReference(t, src)
	sys := New(External, src)
	res, err := sys.Run(q0b, 2)
	if err != nil {
		t.Fatal(err)
	}
	res.SortRows()
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(want))
	}
	for i := range want {
		if !item.EqualSeq(res.Rows[i][0], want[i][0]) {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestLoadFirstModeMatchesVXQuery(t *testing.T) {
	src := testSource(t)
	want := vxqueryReference(t, src)
	sys := New(LoadFirst, src)
	if err := sys.Load("/sensors"); err != nil {
		t.Fatal(err)
	}
	if sys.DocumentsLoaded != 4*6 {
		t.Errorf("documents loaded = %d, want 24", sys.DocumentsLoaded)
	}
	if sys.StorageBytes <= 0 {
		t.Error("no storage accounted")
	}
	res, err := sys.Run(q0b, 2)
	if err != nil {
		t.Fatal(err)
	}
	res.SortRows()
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(want))
	}
	for i := range want {
		if !item.EqualSeq(res.Rows[i][0], want[i][0]) {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestNoProjectionPushdownInPlan(t *testing.T) {
	sys := New(External, testSource(t))
	c, err := sys.Compile(q0b, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The DATASCAN must NOT carry the projection path: documents are
	// materialized whole.
	if strings.Contains(c.OptimizedPlan, `DATASCAN $v`) &&
		strings.Contains(c.OptimizedPlan, `("root")()("results")()("date")`) &&
		strings.Contains(c.OptimizedPlan, "DATASCAN $v1 <- collection(\"/sensors\")(") {
		t.Errorf("projection was pushed into DATASCAN:\n%s", c.OptimizedPlan)
	}
	if !strings.Contains(c.OptimizedPlan, "DATASCAN") {
		t.Errorf("expected a DATASCAN:\n%s", c.OptimizedPlan)
	}
	if !strings.Contains(c.OptimizedPlan, "UNNEST") {
		t.Errorf("navigation should remain above the scan:\n%s", c.OptimizedPlan)
	}
}

func TestAsterixMaterializesMoreMemory(t *testing.T) {
	src := testSource(t)
	run := func(rules core.RuleConfig) int64 {
		t.Helper()
		c, err := core.CompileQuery(q0b, core.Options{Rules: rules, Partitions: 1})
		if err != nil {
			t.Fatal(err)
		}
		env := &hyracks.Env{Source: src}
		if _, err := hyracks.RunStaged(c.Job, env); err != nil {
			t.Fatal(err)
		}
		return env.Accountant.Peak()
	}
	vxq := run(core.AllRules())
	asterix := core.AllRules()
	asterix.NoProjectionPushdown = true
	ast := run(asterix)
	if ast <= vxq {
		t.Errorf("whole-document materialization should peak higher: vxq=%d asterix=%d", vxq, ast)
	}
}

func TestLoadRequiresLoadFirstMode(t *testing.T) {
	sys := New(External, testSource(t))
	if err := sys.Load("/sensors"); err == nil {
		t.Error("Load in External mode must fail")
	}
	lf := New(LoadFirst, testSource(t))
	if _, err := lf.Run(q0b, 1); err == nil {
		t.Error("Run before Load must fail in LoadFirst mode")
	}
}

func TestModeString(t *testing.T) {
	if External.String() != "AsterixDB" || LoadFirst.String() != "AsterixDB(load)" {
		t.Error("mode names")
	}
}
