package frame

import (
	"testing"

	"vxq/internal/item"
)

func TestLazyTupleDecodeOnDemand(t *testing.T) {
	seqs := []item.Sequence{
		item.Single(item.String("alpha")),
		item.Single(item.Number(42)),
		{item.Null{}, item.Bool(true)},
	}
	raw := EncodeFields(seqs)
	var lt LazyTuple
	lt.Reset(raw)
	if lt.FieldCount() != 3 || lt.RawFieldCount() != 3 {
		t.Fatalf("counts: %d/%d", lt.FieldCount(), lt.RawFieldCount())
	}
	s1, err := lt.Field(1)
	if err != nil || !item.EqualSeq(s1, seqs[1]) {
		t.Fatalf("Field(1) = %v, %v", s1, err)
	}
	// Memoized: second access returns the identical slice.
	s1b, _ := lt.Field(1)
	if len(s1) > 0 && &s1[0] != &s1b[0] {
		t.Error("Field(1) not memoized")
	}
	lt.Append(item.Single(item.String("extra")))
	if lt.FieldCount() != 4 {
		t.Fatalf("FieldCount after Append = %d", lt.FieldCount())
	}
	s3, err := lt.Field(3)
	if err != nil || len(s3) != 1 || !item.Equal(s3[0], item.String("extra")) {
		t.Fatalf("Field(3) = %v, %v", s3, err)
	}
	if _, err := lt.Field(4); err == nil {
		t.Error("Field(4): want out-of-range error")
	}
	if err := lt.DecodeAll(); err != nil {
		t.Fatal(err)
	}
	for i, want := range seqs {
		got, _ := lt.Field(i)
		if !item.EqualSeq(got, want) {
			t.Errorf("field %d after DecodeAll = %v", i, got)
		}
	}
	// Reset drops memo and extras.
	lt.Reset(raw[:1])
	if lt.FieldCount() != 1 {
		t.Fatalf("FieldCount after Reset = %d", lt.FieldCount())
	}
}

func TestLazyTupleResetClearsMemo(t *testing.T) {
	rawA := EncodeFields([]item.Sequence{item.Single(item.String("a"))})
	rawB := EncodeFields([]item.Sequence{item.Single(item.String("b"))})
	var lt LazyTuple
	lt.Reset(rawA)
	if _, err := lt.Field(0); err != nil {
		t.Fatal(err)
	}
	lt.Reset(rawB)
	got, err := lt.Field(0)
	if err != nil || len(got) != 1 || !item.Equal(got[0], item.String("b")) {
		t.Fatalf("stale memo after Reset: %v, %v", got, err)
	}
}

func TestFrameFieldsSize(t *testing.T) {
	f := New(DefaultFrameSize)
	var want int64
	for i := 0; i < 5; i++ {
		fields := EncodeFields([]item.Sequence{
			item.Single(item.String("key")),
			item.Single(item.Number(float64(i))),
		})
		for _, fl := range fields {
			want += int64(len(fl))
		}
		if !f.AppendTuple(fields) {
			t.Fatal("AppendTuple failed")
		}
	}
	got, err := f.FieldsSize()
	if err != nil || got != want {
		t.Fatalf("FieldsSize = %d, %v; want %d", got, err, want)
	}
	if got, err := New(64).FieldsSize(); err != nil || got != 0 {
		t.Fatalf("empty FieldsSize = %d, %v", got, err)
	}
}
