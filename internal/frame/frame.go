// Package frame implements the Hyracks tuple-frame abstraction: fixed-size
// byte buffers that carry batches of serialized tuples between physical
// operators. A tuple is a list of fields; each field is the binary encoding
// of an item sequence (see vxq/internal/item).
//
// The frame discipline is central to the paper's story: the unoptimized
// plans carry whole JSON documents (or whole arrays) inside a single tuple,
// which forces oversized frames and large buffers; the rewrite rules shrink
// tuples to one object (or one scalar) each, so they batch tightly into
// normal-size frames and pipeline well. The memory accountant in this
// package is how that difference is observed.
package frame

import (
	"encoding/binary"
	"fmt"

	"vxq/internal/item"
)

// DefaultFrameSize is the default frame capacity in bytes (Hyracks' default
// is 32 KiB).
const DefaultFrameSize = 32 * 1024

// Frame is a batch of serialized tuples.
//
// Layout: tuples are appended to data back to back; offs[i] is the start of
// tuple i and ends[i] its end. Each tuple is encoded as
// <uvarint fieldCount> (<uvarint fieldLen>)* (<field bytes>)*.
type Frame struct {
	data     []byte
	offs     []int32
	ends     []int32
	capacity int
	oversize bool
}

// New returns an empty frame with the given capacity in bytes. The backing
// buffer grows lazily up to the capacity, so idle frames (e.g. the
// per-consumer builders of a wide hash exchange) cost almost nothing.
func New(capacity int) *Frame {
	if capacity <= 0 {
		capacity = DefaultFrameSize
	}
	return &Frame{capacity: capacity}
}

// Reset clears the frame for reuse without releasing its buffer.
func (f *Frame) Reset() {
	f.data = f.data[:0]
	f.offs = f.offs[:0]
	f.ends = f.ends[:0]
	f.oversize = false
}

// TupleCount reports the number of tuples in the frame.
func (f *Frame) TupleCount() int { return len(f.offs) }

// Size reports the number of payload bytes currently in the frame.
func (f *Frame) Size() int { return len(f.data) }

// Capacity reports the frame's nominal capacity.
func (f *Frame) Capacity() int { return f.capacity }

// FieldsSize reports the total number of field payload bytes across all
// tuples, excluding the per-tuple length headers — the quantity the shuffle
// statistics count when a frame is forwarded whole through an exchange.
func (f *Frame) FieldsSize() (int64, error) {
	var total int64
	for i := range f.offs {
		buf := f.data[f.offs[i]:f.ends[i]]
		nf, w := binary.Uvarint(buf)
		if w <= 0 {
			return 0, fmt.Errorf("frame: bad tuple field count")
		}
		hdr := w
		for k := uint64(0); k < nf; k++ {
			_, lw := binary.Uvarint(buf[hdr:])
			if lw <= 0 {
				return 0, fmt.Errorf("frame: bad field length")
			}
			hdr += lw
		}
		total += int64(len(buf) - hdr)
	}
	return total, nil
}

// Oversize reports whether the frame holds a single tuple larger than the
// nominal capacity (Hyracks' "big object" frames).
func (f *Frame) Oversize() bool { return f.oversize }

// AppendTuple appends a tuple given its raw field encodings. It returns
// false if the tuple does not fit and the frame already holds data (the
// caller should flush and retry). A tuple larger than the whole capacity is
// admitted alone into the frame, which is then marked oversize.
func (f *Frame) AppendTuple(fields [][]byte) bool {
	need := tupleEncodedSize(fields)
	if len(f.data)+need > f.capacity {
		if len(f.offs) > 0 {
			return false
		}
		f.oversize = true
	}
	start := int32(len(f.data))
	f.data = binary.AppendUvarint(f.data, uint64(len(fields)))
	for _, fl := range fields {
		f.data = binary.AppendUvarint(f.data, uint64(len(fl)))
	}
	for _, fl := range fields {
		f.data = append(f.data, fl...)
	}
	f.offs = append(f.offs, start)
	f.ends = append(f.ends, int32(len(f.data)))
	return true
}

func tupleEncodedSize(fields [][]byte) int {
	n := uvarintLen(uint64(len(fields)))
	for _, fl := range fields {
		n += uvarintLen(uint64(len(fl))) + len(fl)
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Tuple returns an accessor for the i-th tuple.
func (f *Frame) Tuple(i int) (Tuple, error) {
	if i < 0 || i >= len(f.offs) {
		return Tuple{}, fmt.Errorf("frame: tuple index %d out of range [0,%d)", i, len(f.offs))
	}
	return decodeTuple(f.data[f.offs[i]:f.ends[i]])
}

// TupleFields decodes the raw field slices of tuple i into dst (reusing its
// capacity), so a caller iterating a frame performs no per-tuple allocation
// once the scratch slice has warmed up. The returned slices alias the frame
// buffer and must not be retained past the frame's lifetime.
func (f *Frame) TupleFields(i int, dst [][]byte) ([][]byte, error) {
	if i < 0 || i >= len(f.offs) {
		return dst, fmt.Errorf("frame: tuple index %d out of range [0,%d)", i, len(f.offs))
	}
	buf := f.data[f.offs[i]:f.ends[i]]
	nf, w := binary.Uvarint(buf)
	if w <= 0 {
		return dst, fmt.Errorf("frame: bad tuple field count")
	}
	// First pass: walk the length header to find where field bytes begin.
	hdr := w
	for k := uint64(0); k < nf; k++ {
		_, lw := binary.Uvarint(buf[hdr:])
		if lw <= 0 {
			return dst, fmt.Errorf("frame: bad field length")
		}
		hdr += lw
	}
	// Second pass: re-decode each length while slicing out the field bytes.
	dst = dst[:0]
	lp, pos := w, hdr
	for k := uint64(0); k < nf; k++ {
		l, lw := binary.Uvarint(buf[lp:])
		lp += lw
		if pos+int(l) > len(buf) {
			return dst, fmt.Errorf("frame: truncated field %d", k)
		}
		dst = append(dst, buf[pos:pos+int(l)])
		pos += int(l)
	}
	if pos != len(buf) {
		return dst, fmt.Errorf("frame: %d trailing bytes in tuple", len(buf)-pos)
	}
	return dst, nil
}

// Tuple is a decoded view of one tuple inside a frame. Field bytes alias the
// frame buffer and must not be retained past the frame's lifetime.
type Tuple struct {
	fields [][]byte
}

func decodeTuple(buf []byte) (Tuple, error) {
	nf, w := binary.Uvarint(buf)
	if w <= 0 {
		return Tuple{}, fmt.Errorf("frame: bad tuple field count")
	}
	pos := w
	lens := make([]int, nf)
	for i := range lens {
		l, lw := binary.Uvarint(buf[pos:])
		if lw <= 0 {
			return Tuple{}, fmt.Errorf("frame: bad field length")
		}
		lens[i] = int(l)
		pos += lw
	}
	fields := make([][]byte, nf)
	for i, l := range lens {
		if pos+l > len(buf) {
			return Tuple{}, fmt.Errorf("frame: truncated field %d", i)
		}
		fields[i] = buf[pos : pos+l]
		pos += l
	}
	if pos != len(buf) {
		return Tuple{}, fmt.Errorf("frame: %d trailing bytes in tuple", len(buf)-pos)
	}
	return Tuple{fields: fields}, nil
}

// FieldCount reports the tuple's number of fields.
func (t Tuple) FieldCount() int { return len(t.fields) }

// FieldBytes returns the raw encoding of field i.
func (t Tuple) FieldBytes(i int) []byte { return t.fields[i] }

// Fields returns all raw field encodings.
func (t Tuple) Fields() [][]byte { return t.fields }

// FieldSeq decodes field i into an item sequence.
func (t Tuple) FieldSeq(i int) (item.Sequence, error) {
	if i < 0 || i >= len(t.fields) {
		return nil, fmt.Errorf("frame: field index %d out of range [0,%d)", i, len(t.fields))
	}
	return item.DecodeSeq(t.fields[i])
}

// EncodeFields serializes item sequences into raw field encodings, ready for
// AppendTuple.
func EncodeFields(seqs []item.Sequence) [][]byte {
	out := make([][]byte, len(seqs))
	for i, s := range seqs {
		out[i] = item.EncodeSeq(nil, s)
	}
	return out
}

// DecodeFields decodes raw field encodings into item sequences.
func DecodeFields(fields [][]byte) ([]item.Sequence, error) {
	return DecodeFieldsInto(nil, fields)
}

// DecodeFieldsInto decodes raw field encodings into dst, reusing its
// capacity. The decoded sequences themselves are freshly allocated (they
// never alias the raw bytes), but the returned slice is scratch: callers
// that retain it across calls must copy it first.
func DecodeFieldsInto(dst []item.Sequence, fields [][]byte) ([]item.Sequence, error) {
	dst = dst[:0]
	for i, f := range fields {
		s, err := item.DecodeSeq(f)
		if err != nil {
			return nil, fmt.Errorf("field %d: %w", i, err)
		}
		dst = append(dst, s)
	}
	return dst, nil
}
