package frame

import "sync/atomic"

// Accountant tracks logical memory consumption of an execution: bytes of
// frames and materialized state currently held, and the high-water mark.
// It is safe for concurrent use.
type Accountant struct {
	current atomic.Int64
	peak    atomic.Int64
	limit   int64 // 0 = unlimited
}

// NewAccountant returns an accountant with an optional byte limit
// (0 = unlimited).
func NewAccountant(limit int64) *Accountant {
	return &Accountant{limit: limit}
}

// Allocate records n bytes of new consumption. It returns false when a limit
// is configured and the allocation would exceed it (the bytes are still
// recorded so the caller can report usage; callers treat false as
// out-of-memory).
func (a *Accountant) Allocate(n int64) bool {
	cur := a.current.Add(n)
	for {
		p := a.peak.Load()
		if cur <= p || a.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	return a.limit == 0 || cur <= a.limit
}

// Release records n bytes of freed consumption.
func (a *Accountant) Release(n int64) { a.current.Add(-n) }

// Current reports the bytes currently held.
func (a *Accountant) Current() int64 { return a.current.Load() }

// Peak reports the high-water mark.
func (a *Accountant) Peak() int64 { return a.peak.Load() }

// Limit reports the configured limit (0 = unlimited).
func (a *Accountant) Limit() int64 { return a.limit }

// ResetPeak sets the peak back to the current consumption.
func (a *Accountant) ResetPeak() { a.peak.Store(a.current.Load()) }
