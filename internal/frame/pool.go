package frame

import "sync"

// Pool recycles frames of one nominal capacity across operators, tasks, and
// goroutines, so the steady-state hot path allocates no frames at all: a
// frame is obtained with Get, filled, pushed downstream, and returned with
// Put by whichever writer finally consumed it (see the ownership rules in
// DESIGN.md — ownership transfers with Push; the receiver recycles).
//
// The pool is integrated with the memory accountant: every checked-out frame
// is charged its nominal capacity from Get until Put, so the accountant's
// balance reflects the frames currently alive in the dataflow (including
// frames parked in a materialized exchange) and returns to zero when a job
// finishes cleanly. Frames resting inside the pool are not charged — they
// are reusable capacity, not live state.
type Pool struct {
	capacity int
	acct     *Accountant
	p        sync.Pool
}

// NewPool returns a pool of frames with the given nominal capacity
// (DefaultFrameSize when <= 0), charging checked-out frames to acct (which
// may be nil).
func NewPool(capacity int, acct *Accountant) *Pool {
	if capacity <= 0 {
		capacity = DefaultFrameSize
	}
	pl := &Pool{capacity: capacity, acct: acct}
	pl.p.New = func() any { return New(pl.capacity) }
	return pl
}

// Capacity reports the nominal capacity of the pool's frames.
func (p *Pool) Capacity() int { return p.capacity }

// Get returns an empty frame, recycled if one is available. A nil pool
// degrades to a plain allocation.
func (p *Pool) Get() *Frame {
	if p == nil {
		return New(0)
	}
	if p.acct != nil {
		p.acct.Allocate(int64(p.capacity))
	}
	f := p.p.Get().(*Frame)
	f.Reset()
	return f
}

// Put returns a frame obtained from Get to the pool. Frames of a foreign
// capacity are dropped (their charge is still released, pairing the Get),
// and buffers grown far past the nominal capacity by an oversize tuple are
// shed so the pool never caches big-object frames.
func (p *Pool) Put(f *Frame) {
	if p == nil || f == nil {
		return
	}
	if p.acct != nil {
		p.acct.Release(int64(p.capacity))
	}
	if f.capacity != p.capacity {
		return
	}
	if cap(f.data) > 2*p.capacity {
		f.data = nil
	}
	f.Reset()
	p.p.Put(f)
}
