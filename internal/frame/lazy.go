package frame

import (
	"fmt"

	"vxq/internal/item"
)

// LazyTuple is an on-demand view of one tuple: the raw encoded field slices
// plus a per-field decode-on-first-access memo. Operators that only route,
// filter on one field, or copy bytes never pay for decoding the fields they
// don't touch — the binary-tuple discipline Hyracks operators follow.
//
// A LazyTuple also carries appended (computed) fields, so assign-style
// operators can extend a tuple without re-encoding its existing fields.
// Raw slices alias the frame buffer and must not be retained past the
// frame's lifetime; decoded sequences are freshly allocated by DecodeSeq and
// are safe to retain indefinitely.
//
// The zero value is an empty tuple; Reset rebinds the view to a new tuple
// while reusing the memo storage, so iterating a frame with one LazyTuple
// performs no per-tuple allocation beyond the decodes actually requested.
type LazyTuple struct {
	raw   [][]byte        // encoded base fields, aliasing the frame
	seqs  []item.Sequence // memoized decodes, parallel to raw
	dec   []bool          // which entries of seqs are populated
	extra []item.Sequence // computed fields appended past the base fields
}

// Reset rebinds the view to the given raw fields, dropping memoized decodes
// and appended fields but keeping their storage for reuse.
func (t *LazyTuple) Reset(raw [][]byte) {
	t.raw = raw
	if cap(t.seqs) < len(raw) {
		t.seqs = make([]item.Sequence, len(raw))
		t.dec = make([]bool, len(raw))
	} else {
		t.seqs = t.seqs[:len(raw)]
		t.dec = t.dec[:len(raw)]
		for i := range t.dec {
			t.dec[i] = false
			t.seqs[i] = nil
		}
	}
	t.extra = t.extra[:0]
}

// FieldCount reports the total number of fields: raw plus appended.
func (t *LazyTuple) FieldCount() int { return len(t.raw) + len(t.extra) }

// RawFieldCount reports the number of raw (encoded) base fields.
func (t *LazyTuple) RawFieldCount() int { return len(t.raw) }

// RawField returns the encoded bytes of base field i. Appended fields have
// no raw encoding; callers encode them when emitting.
func (t *LazyTuple) RawField(i int) []byte { return t.raw[i] }

// Raw returns the raw base field slices. The slice and its contents alias
// the frame buffer.
func (t *LazyTuple) Raw() [][]byte { return t.raw }

// Field decodes field i on first access and memoizes the result. Appended
// fields are returned as stored. The returned sequence is freshly allocated
// (never aliases frame bytes) and may be retained by the caller.
func (t *LazyTuple) Field(i int) (item.Sequence, error) {
	if i < 0 || i >= t.FieldCount() {
		return nil, fmt.Errorf("frame: field index %d out of range [0,%d)", i, t.FieldCount())
	}
	if i >= len(t.raw) {
		return t.extra[i-len(t.raw)], nil
	}
	if !t.dec[i] {
		s, err := item.DecodeSeq(t.raw[i])
		if err != nil {
			return nil, err
		}
		t.seqs[i] = s
		t.dec[i] = true
	}
	return t.seqs[i], nil
}

// Append adds a computed field after the base fields.
func (t *LazyTuple) Append(s item.Sequence) { t.extra = append(t.extra, s) }

// DecodeAll eagerly decodes every base field — the reference mode that
// reproduces the pre-lazy pipeline's decode-everything behaviour.
func (t *LazyTuple) DecodeAll() error {
	for i := range t.raw {
		if _, err := t.Field(i); err != nil {
			return err
		}
	}
	return nil
}
