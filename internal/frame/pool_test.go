package frame

import (
	"sync"
	"testing"
)

func TestPoolGetPutAccounting(t *testing.T) {
	acct := NewAccountant(0)
	p := NewPool(1024, acct)
	if p.Capacity() != 1024 {
		t.Fatalf("Capacity = %d", p.Capacity())
	}
	f := p.Get()
	if got := acct.Current(); got != 1024 {
		t.Errorf("after Get: Current = %d, want 1024", got)
	}
	f.AppendTuple([][]byte{[]byte("abc")})
	p.Put(f)
	if got := acct.Current(); got != 0 {
		t.Errorf("after Put: Current = %d, want 0", got)
	}
	// A recycled frame comes back empty.
	g := p.Get()
	if g.TupleCount() != 0 || g.Size() != 0 || g.Oversize() {
		t.Errorf("recycled frame not reset: tuples=%d size=%d oversize=%v",
			g.TupleCount(), g.Size(), g.Oversize())
	}
	p.Put(g)
}

func TestPoolDefaultsAndNil(t *testing.T) {
	p := NewPool(0, nil)
	if p.Capacity() != DefaultFrameSize {
		t.Errorf("default capacity = %d", p.Capacity())
	}
	var nilPool *Pool
	f := nilPool.Get()
	if f == nil || f.Capacity() != DefaultFrameSize {
		t.Error("nil pool Get must degrade to a plain allocation")
	}
	nilPool.Put(f) // must not panic
	p.Put(nil)     // must not panic
}

func TestPoolDropsForeignCapacityFrames(t *testing.T) {
	p := NewPool(1024, nil)
	p.Put(New(77))
	// The foreign frame must never be handed back out; every Get yields the
	// pool's nominal capacity.
	for i := 0; i < 8; i++ {
		f := p.Get()
		if f.Capacity() != 1024 {
			t.Fatalf("Get %d: capacity = %d, want 1024", i, f.Capacity())
		}
		p.Put(f)
	}
}

func TestPoolShedsOversizedBuffers(t *testing.T) {
	p := NewPool(64, nil)
	f := p.Get()
	// One big tuple grows the buffer far past the nominal capacity.
	big := make([]byte, 1024)
	if !f.AppendTuple([][]byte{big}) {
		t.Fatal("oversize tuple must be admitted into an empty frame")
	}
	if !f.Oversize() {
		t.Fatal("frame should be oversize")
	}
	p.Put(f)
	if f.data != nil {
		t.Errorf("oversized buffer (cap %d) not shed on Put", cap(f.data))
	}
	// A frame that stayed within bounds keeps its buffer.
	g := p.Get()
	g.AppendTuple([][]byte{[]byte("small")})
	p.Put(g)
	if g.data == nil {
		t.Error("normal buffer should be kept for reuse")
	}
}

// TestPoolConcurrentAccounting drives the pool from many goroutines (run
// under -race) and checks the accountant invariants: the balance reflects
// exactly the frames checked out, never goes negative, and returns to zero
// when everything is put back.
func TestPoolConcurrentAccounting(t *testing.T) {
	acct := NewAccountant(0)
	p := NewPool(512, acct)
	const (
		workers = 8
		rounds  = 2000
		held    = 4
	)
	stop := make(chan struct{})
	sampled := make(chan int64, 1)
	go func() {
		var minSeen int64
		for {
			select {
			case <-stop:
				sampled <- minSeen
				return
			default:
				if c := acct.Current(); c < minSeen {
					minSeen = c
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]*Frame, 0, held)
			for i := 0; i < rounds; i++ {
				f := p.Get()
				f.AppendTuple([][]byte{{byte(w), byte(i)}})
				local = append(local, f)
				if len(local) == held {
					for _, lf := range local {
						p.Put(lf)
					}
					local = local[:0]
				}
			}
			for _, lf := range local {
				p.Put(lf)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if minSeen := <-sampled; minSeen < 0 {
		t.Errorf("accountant balance went negative: %d", minSeen)
	}
	if got := acct.Current(); got != 0 {
		t.Errorf("after all Puts: Current = %d, want 0", got)
	}
	// The peak is bounded by the frames that can be live at once.
	if peak := acct.Peak(); peak < 512 || peak > workers*held*512 {
		t.Errorf("Peak = %d, want within [512, %d]", peak, workers*held*512)
	}
}
