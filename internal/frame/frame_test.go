package frame

import (
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"vxq/internal/item"
)

func seqField(items ...item.Item) []byte {
	return item.EncodeSeq(nil, item.Sequence(items))
}

func TestAppendAndRead(t *testing.T) {
	f := New(1024)
	ok := f.AppendTuple([][]byte{seqField(item.Number(1)), seqField(item.String("a"))})
	if !ok {
		t.Fatal("append failed")
	}
	ok = f.AppendTuple([][]byte{seqField(item.Number(2)), seqField()})
	if !ok {
		t.Fatal("append failed")
	}
	if f.TupleCount() != 2 {
		t.Fatalf("TupleCount = %d", f.TupleCount())
	}
	tu, err := f.Tuple(0)
	if err != nil {
		t.Fatal(err)
	}
	if tu.FieldCount() != 2 {
		t.Fatalf("FieldCount = %d", tu.FieldCount())
	}
	s, err := tu.FieldSeq(1)
	if err != nil {
		t.Fatal(err)
	}
	if !item.EqualSeq(s, item.Single(item.String("a"))) {
		t.Errorf("field = %s", item.JSONSeq(s))
	}
	tu2, _ := f.Tuple(1)
	s2, err := tu2.FieldSeq(1)
	if err != nil || len(s2) != 0 {
		t.Errorf("empty field: %v %v", s2, err)
	}
	if _, err := tu2.FieldSeq(5); err == nil {
		t.Error("out-of-range field must error")
	}
}

func TestFrameFullAndFlush(t *testing.T) {
	f := New(64)
	field := seqField(item.String(strings.Repeat("x", 20)))
	n := 0
	for f.AppendTuple([][]byte{field}) {
		n++
		if n > 100 {
			t.Fatal("frame never filled")
		}
	}
	if n == 0 {
		t.Fatal("no tuple fit in the frame")
	}
	if f.Oversize() {
		t.Error("normal tuples should not mark frame oversize")
	}
	f.Reset()
	if f.TupleCount() != 0 || f.Size() != 0 {
		t.Error("Reset did not clear the frame")
	}
	if !f.AppendTuple([][]byte{field}) {
		t.Error("append after reset should succeed")
	}
}

func TestOversizeTuple(t *testing.T) {
	f := New(64)
	big := seqField(item.String(strings.Repeat("y", 500)))
	if !f.AppendTuple([][]byte{big}) {
		t.Fatal("oversized tuple must be admitted into an empty frame")
	}
	if !f.Oversize() {
		t.Error("frame should be oversize")
	}
	// A second tuple must not fit.
	if f.AppendTuple([][]byte{seqField(item.Number(1))}) {
		t.Error("second tuple should not fit after oversize")
	}
	tu, err := f.Tuple(0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := tu.FieldSeq(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := s[0].(item.String); len(got) != 500 {
		t.Errorf("payload length = %d", len(got))
	}
}

func TestTupleIndexOutOfRange(t *testing.T) {
	f := New(128)
	if _, err := f.Tuple(0); err == nil {
		t.Error("Tuple(0) on empty frame must fail")
	}
	f.AppendTuple([][]byte{seqField(item.Number(1))})
	if _, err := f.Tuple(-1); err == nil {
		t.Error("negative index must fail")
	}
	if _, err := f.Tuple(1); err == nil {
		t.Error("past-end index must fail")
	}
}

func TestEncodeDecodeFields(t *testing.T) {
	seqs := []item.Sequence{
		item.Single(item.Number(1)),
		{},
		{item.String("a"), item.Bool(true)},
	}
	enc := EncodeFields(seqs)
	dec, err := DecodeFields(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqs {
		if !item.EqualSeq(seqs[i], dec[i]) {
			t.Errorf("field %d mismatch", i)
		}
	}
	if _, err := DecodeFields([][]byte{{0xff, 0x01}}); err == nil {
		t.Error("corrupt field must fail to decode")
	}
}

type tuplesGen struct {
	Tuples [][]item.Sequence
}

func (tuplesGen) Generate(r *rand.Rand, size int) reflect.Value {
	nt := r.Intn(20)
	ts := make([][]item.Sequence, nt)
	nf := 1 + r.Intn(4)
	for i := range ts {
		fs := make([]item.Sequence, nf)
		for j := range fs {
			n := r.Intn(3)
			var s item.Sequence
			for k := 0; k < n; k++ {
				switch r.Intn(3) {
				case 0:
					s = append(s, item.Number(float64(r.Intn(100))))
				case 1:
					b := make([]byte, r.Intn(8))
					for x := range b {
						b[x] = byte('a' + r.Intn(26))
					}
					s = append(s, item.String(b))
				default:
					s = append(s, item.Bool(r.Intn(2) == 0))
				}
			}
			fs[j] = s
		}
		ts[i] = fs
	}
	return reflect.ValueOf(tuplesGen{Tuples: ts})
}

// TestQuickFrameRoundTrip: any batch of tuples written through frames (with
// flushes) reads back identically.
func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(g tuplesGen) bool {
		fr := New(256)
		var got [][]item.Sequence
		drain := func() bool {
			for i := 0; i < fr.TupleCount(); i++ {
				tu, err := fr.Tuple(i)
				if err != nil {
					return false
				}
				seqs, err := DecodeFields(tu.Fields())
				if err != nil {
					return false
				}
				got = append(got, seqs)
			}
			fr.Reset()
			return true
		}
		for _, tup := range g.Tuples {
			enc := EncodeFields(tup)
			if !fr.AppendTuple(enc) {
				if !drain() {
					return false
				}
				if !fr.AppendTuple(enc) {
					return false
				}
			}
		}
		if !drain() {
			return false
		}
		if len(got) != len(g.Tuples) {
			return false
		}
		for i := range got {
			if len(got[i]) != len(g.Tuples[i]) {
				return false
			}
			for j := range got[i] {
				if !item.EqualSeq(got[i][j], g.Tuples[i][j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAccountant(t *testing.T) {
	a := NewAccountant(0)
	if !a.Allocate(100) {
		t.Error("unlimited accountant must always allow")
	}
	a.Allocate(50)
	if a.Current() != 150 || a.Peak() != 150 {
		t.Errorf("current=%d peak=%d", a.Current(), a.Peak())
	}
	a.Release(120)
	if a.Current() != 30 {
		t.Errorf("current=%d", a.Current())
	}
	if a.Peak() != 150 {
		t.Errorf("peak=%d", a.Peak())
	}
	a.ResetPeak()
	if a.Peak() != 30 {
		t.Errorf("peak after reset = %d", a.Peak())
	}
}

func TestAccountantLimit(t *testing.T) {
	a := NewAccountant(100)
	if !a.Allocate(60) {
		t.Error("60 <= 100 should be allowed")
	}
	if a.Allocate(60) {
		t.Error("120 > 100 should be denied")
	}
	if a.Limit() != 100 {
		t.Errorf("limit = %d", a.Limit())
	}
}

func TestAccountantConcurrent(t *testing.T) {
	a := NewAccountant(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				a.Allocate(7)
				a.Release(7)
			}
		}()
	}
	wg.Wait()
	if a.Current() != 0 {
		t.Errorf("current = %d, want 0", a.Current())
	}
	if a.Peak() < 7 {
		t.Errorf("peak = %d, want >= 7", a.Peak())
	}
}

func TestNewDefaultCapacity(t *testing.T) {
	f := New(0)
	if f.Capacity() != DefaultFrameSize {
		t.Errorf("capacity = %d", f.Capacity())
	}
}
