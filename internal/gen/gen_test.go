package gen

import (
	"os"
	"testing"

	"vxq/internal/item"
	"vxq/internal/jsonparse"
)

func TestFileStructureMatchesListing6(t *testing.T) {
	cfg := Default()
	cfg.Files = 2
	data := cfg.File(0)
	doc, err := jsonparse.Parse(data)
	if err != nil {
		t.Fatalf("generated file does not parse: %v", err)
	}
	root := doc.(*item.Object).Value("root")
	if root == nil {
		t.Fatal("missing root array")
	}
	records := root.(item.Array)
	if len(records) != cfg.RecordsPerFile {
		t.Fatalf("records = %d, want %d", len(records), cfg.RecordsPerFile)
	}
	for _, rec := range records {
		o := rec.(*item.Object)
		md := o.Value("metadata").(*item.Object)
		count := md.Value("count").(item.Number)
		results := o.Value("results").(item.Array)
		if int(count) != cfg.MeasurementsPerArray || len(results) != cfg.MeasurementsPerArray {
			t.Fatalf("count=%v results=%d want %d", count, len(results), cfg.MeasurementsPerArray)
		}
		for _, m := range results {
			mo := m.(*item.Object)
			for _, k := range []string{"date", "dataType", "station", "value"} {
				if mo.Value(k) == nil {
					t.Fatalf("measurement missing %q: %s", k, item.JSON(mo))
				}
			}
			if _, err := item.ParseDateTime(string(mo.Value("date").(item.String))); err != nil {
				t.Fatalf("bad date: %v", err)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Default()
	a := cfg.File(3)
	b := cfg.File(3)
	if string(a) != string(b) {
		t.Error("same seed and index must generate identical bytes")
	}
	cfg2 := cfg
	cfg2.Seed = 99
	if string(a) == string(cfg2.File(3)) {
		t.Error("different seeds should differ")
	}
}

func TestTMINTMAXPairsExist(t *testing.T) {
	// Q2 needs TMIN and TMAX for the same (station, date).
	cfg := Default()
	doc, err := jsonparse.Parse(cfg.File(0))
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ station, date string }
	seen := map[key]map[string]bool{}
	path := jsonparse.Path{
		jsonparse.KeyStep("root"), jsonparse.MembersStep(),
		jsonparse.KeyStep("results"), jsonparse.MembersStep(),
	}
	for _, m := range jsonparse.ApplyPath(doc, path) {
		o := m.(*item.Object)
		k := key{
			string(o.Value("station").(item.String)),
			string(o.Value("date").(item.String)),
		}
		if seen[k] == nil {
			seen[k] = map[string]bool{}
		}
		seen[k][string(o.Value("dataType").(item.String))] = true
	}
	pairs := 0
	for _, types := range seen {
		if types["TMIN"] && types["TMAX"] {
			pairs++
		}
	}
	if pairs == 0 {
		t.Error("no TMIN/TMAX pairs generated; Q2 would be empty")
	}
}

func TestDec25MeasurementsExist(t *testing.T) {
	cfg := Default()
	found := false
	for i := 0; i < cfg.Files && !found; i++ {
		doc, err := jsonparse.Parse(cfg.File(i))
		if err != nil {
			t.Fatal(err)
		}
		path := jsonparse.Path{
			jsonparse.KeyStep("root"), jsonparse.MembersStep(),
			jsonparse.KeyStep("results"), jsonparse.MembersStep(),
			jsonparse.KeyStep("date"),
		}
		for _, d := range jsonparse.ApplyPath(doc, path) {
			dt, err := item.ParseDateTime(string(d.(item.String)))
			if err != nil {
				t.Fatal(err)
			}
			if dt.Month == 12 && dt.Day == 25 {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("no Dec-25 measurements; Q0 would be empty")
	}
}

func TestWriteDir(t *testing.T) {
	dir := t.TempDir()
	cfg := Default()
	cfg.Files = 3
	total, err := cfg.WriteDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("files on disk = %d", len(entries))
	}
	var sum int64
	for _, e := range entries {
		info, _ := e.Info()
		sum += info.Size()
	}
	if sum != total {
		t.Errorf("reported %d bytes, on disk %d", total, sum)
	}
}

func TestInMemory(t *testing.T) {
	cfg := Default()
	cfg.Files = 4
	docs, total, err := cfg.InMemory()
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 4 || total <= 0 {
		t.Fatalf("docs=%d total=%d", len(docs), total)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{},
		{Files: 1},
		{Files: 1, RecordsPerFile: 1},
		{Files: 1, RecordsPerFile: 1, MeasurementsPerArray: 1},
		{Files: 1, RecordsPerFile: 1, MeasurementsPerArray: 1, Stations: 1, YearMin: 2010, YearMax: 2000},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	if err := Default().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestScaleToBytes(t *testing.T) {
	cfg := Default()
	scaled := cfg.ScaleToBytes(10 * int64(len(cfg.File(0))))
	if scaled.Files != 10 {
		t.Errorf("Files = %d, want 10", scaled.Files)
	}
	tiny := cfg.ScaleToBytes(1)
	if tiny.Files != 1 {
		t.Errorf("minimum must be 1 file, got %d", tiny.Files)
	}
}

func TestMeasurementsCount(t *testing.T) {
	cfg := Config{Files: 2, RecordsPerFile: 3, MeasurementsPerArray: 5, Stations: 1, YearMin: 2000, YearMax: 2001}
	if got := cfg.Measurements(); got != 30 {
		t.Errorf("Measurements = %d, want 30", got)
	}
}
