// Package gen generates synthetic NOAA GHCN-Daily-like JSON sensor data
// with the exact structure of the paper's dataset (§5.1, Listing 6): each
// file holds one "root" array whose members are records containing a
// "metadata" object (with a "count") and a "results" array of measurement
// objects {date, dataType, station, value}.
//
// The generator is deterministic (seeded PRNG) and parameterized by file
// size, measurements per "results" array, and the date/dataType/station
// distributions, so the paper's workloads (Dec-25 selections, TMIN
// aggregation, TMIN/TMAX self-join) hit configurable selectivities.
package gen

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
)

// DataTypes are the measurement types generated, mirroring the paper's
// examples (TMIN, TMAX, WIND, ...). TMIN and TMAX always both exist for a
// (station, date) pair so the Q2 self-join finds matches.
var DataTypes = []string{"TMIN", "TMAX", "WIND", "PRCP", "SNOW"}

// Config parameterizes dataset generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Files is the number of JSON files in the collection.
	Files int
	// RecordsPerFile is the number of members of each file's root array.
	RecordsPerFile int
	// MeasurementsPerArray is the number of measurement objects in each
	// "results" array (the x-axis of Fig. 18 / Table 1).
	MeasurementsPerArray int
	// Stations is the number of distinct station ids.
	Stations int
	// YearMin/YearMax bound the measurement dates.
	YearMin, YearMax int
	// PartitionByYear assigns each file a single year (file i covers
	// YearMin + i mod the year range). Year-partitioned collections let a
	// zone-map index on the date path skip whole files for year-bounded
	// selections.
	PartitionByYear bool
	// SplitRecords emits each root-array member as its own
	// newline-terminated {"root":[...]} document instead of one whole-file
	// root object. The resulting file is a concatenation of top-level JSON
	// values with raw newlines between records — the shape morsel-driven
	// scans can split into byte ranges on record boundaries. Workload
	// results are identical because every query unnests the root array.
	SplitRecords bool
	// ClusterDates orders each file's records by date: record r's base
	// month/day advance monotonically with r instead of drawing from the
	// PRNG (and the Dec-25 pinning is off). Byte position within a file
	// then correlates with the date path, so per-zone min/max stats of a
	// date index are selective and a narrow date predicate prunes most of
	// a file's morsels — the shape the morsel-skip benchmarks need.
	ClusterDates bool
}

// Default returns a small but representative configuration.
func Default() Config {
	return Config{
		Seed:                 1,
		Files:                8,
		RecordsPerFile:       16,
		MeasurementsPerArray: 30,
		Stations:             50,
		YearMin:              2000,
		YearMax:              2014,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Files <= 0:
		return fmt.Errorf("gen: Files must be positive, got %d", c.Files)
	case c.RecordsPerFile <= 0:
		return fmt.Errorf("gen: RecordsPerFile must be positive, got %d", c.RecordsPerFile)
	case c.MeasurementsPerArray <= 0:
		return fmt.Errorf("gen: MeasurementsPerArray must be positive, got %d", c.MeasurementsPerArray)
	case c.Stations <= 0:
		return fmt.Errorf("gen: Stations must be positive, got %d", c.Stations)
	case c.YearMin > c.YearMax:
		return fmt.Errorf("gen: YearMin %d > YearMax %d", c.YearMin, c.YearMax)
	}
	return nil
}

// Measurements reports the total number of measurement objects a
// configuration generates.
func (c Config) Measurements() int {
	return c.Files * c.RecordsPerFile * c.MeasurementsPerArray
}

// File generates the JSON bytes of the idx-th file of the collection.
func (c Config) File(idx int) []byte {
	rng := rand.New(rand.NewSource(c.Seed + int64(idx)*7919))
	var b []byte
	if c.SplitRecords {
		for r := 0; r < c.RecordsPerFile; r++ {
			b = append(b, `{"root":[`...)
			b = c.appendRecord(b, rng, idx, r)
			b = append(b, "]}\n"...)
		}
		return b
	}
	b = append(b, `{"root":[`...)
	for r := 0; r < c.RecordsPerFile; r++ {
		if r > 0 {
			b = append(b, ',')
		}
		b = c.appendRecord(b, rng, idx, r)
	}
	b = append(b, `]}`...)
	return b
}

// appendRecord writes one {"metadata":...,"results":[...]} record. Each
// record covers a run of consecutive days for one station; TMIN/TMAX pairs
// are emitted for the same (station, date) so the self-join matches.
func (c Config) appendRecord(b []byte, rng *rand.Rand, fileIdx, recIdx int) []byte {
	station := fmt.Sprintf("GSW%06d", rng.Intn(c.Stations))
	year := c.YearMin + rng.Intn(c.YearMax-c.YearMin+1)
	if c.PartitionByYear {
		year = c.YearMin + fileIdx%(c.YearMax-c.YearMin+1)
	}
	month := 1 + rng.Intn(12)
	day := 1 + rng.Intn(28)
	// Roughly 1/12 of records get December dates and some land on the
	// 25th, giving the Q0 selection its selectivity; additionally every
	// 8th record is pinned to Dec 25 so small datasets are never empty.
	if rng.Intn(8) == 0 {
		month, day = 12, 25
	}
	if c.ClusterDates {
		// Sweep the 12*28-day grid monotonically across the file's records.
		dayIdx := recIdx * (12 * 28) / c.RecordsPerFile
		month, day = 1+dayIdx/28, 1+dayIdx%28
	}
	b = append(b, `{"metadata":{"count":`...)
	b = strconv.AppendInt(b, int64(c.MeasurementsPerArray), 10)
	b = append(b, `},"results":[`...)
	for m := 0; m < c.MeasurementsPerArray; m++ {
		if m > 0 {
			b = append(b, ',')
		}
		// Measurements alternate TMIN/TMAX on the same date, then advance
		// the day; remaining slots draw random types.
		typ := DataTypes[m%len(DataTypes)]
		value := rng.Intn(400) - 100
		if typ == "TMAX" {
			value = rng.Intn(300) + 50
		}
		d := day + m/len(DataTypes)
		mo := month
		for d > 28 {
			d -= 28
			mo++
			if mo > 12 {
				mo = 1
			}
		}
		b = append(b, `{"date":"`...)
		b = appendDate(b, year, mo, d)
		b = append(b, `","dataType":"`...)
		b = append(b, typ...)
		b = append(b, `","station":"`...)
		b = append(b, station...)
		b = append(b, `","value":`...)
		b = strconv.AppendInt(b, int64(value), 10)
		b = append(b, '}')
	}
	return append(b, `]}`...)
}

func appendDate(b []byte, y, m, d int) []byte {
	b = append(b, fmt.Sprintf("%04d-%02d-%02dT00:00", y, m, d)...)
	return b
}

// WriteDir generates the collection into a directory, one file per
// Config.Files, and returns the total bytes written.
func (c Config) WriteDir(dir string) (int64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	var total int64
	for i := 0; i < c.Files; i++ {
		data := c.File(i)
		name := filepath.Join(dir, fmt.Sprintf("sensor_%05d.json", i))
		if err := os.WriteFile(name, data, 0o644); err != nil {
			return total, err
		}
		total += int64(len(data))
	}
	return total, nil
}

// InMemory generates the collection as an in-memory document map, keyed by
// file name, for tests and in-process baselines.
func (c Config) InMemory() (map[string][]byte, int64, error) {
	if err := c.Validate(); err != nil {
		return nil, 0, err
	}
	docs := make(map[string][]byte, c.Files)
	var total int64
	for i := 0; i < c.Files; i++ {
		data := c.File(i)
		docs[fmt.Sprintf("sensor_%05d.json", i)] = data
		total += int64(len(data))
	}
	return docs, total, nil
}

// ScaleToBytes adjusts Files so the generated collection is approximately
// targetBytes, by measuring one file.
func (c Config) ScaleToBytes(targetBytes int64) Config {
	sample := int64(len(c.File(0)))
	if sample == 0 {
		return c
	}
	files := int(targetBytes / sample)
	if files < 1 {
		files = 1
	}
	out := c
	out.Files = files
	return out
}
