// Package cluster ties query execution to the virtual-time cluster model:
// it compiles a query for nodes x partitions-per-node total partitions,
// runs it for real with the staged executor (measuring each partition
// task's single-core work), and asks the simsched model for the wall-clock
// time the same work would take on the modeled cluster.
package cluster

import (
	"fmt"
	"time"

	"vxq/internal/core"
	"vxq/internal/hyracks"
	"vxq/internal/runtime"
	"vxq/internal/simsched"
)

// Config describes the modeled cluster an execution is scheduled onto.
type Config struct {
	// Nodes is the cluster size (the paper scales 1..9).
	Nodes int
	// PartitionsPerNode is the per-node partition count (the paper uses 4,
	// matching the cores).
	PartitionsPerNode int
	// Model is the virtual-time cost model.
	Model simsched.Model
}

// DefaultConfig mirrors the paper's per-node setup.
func DefaultConfig(nodes int) Config {
	return Config{Nodes: nodes, PartitionsPerNode: 4, Model: simsched.DefaultModel()}
}

// TotalPartitions is the job-wide partition count.
func (c Config) TotalPartitions() int {
	p := c.PartitionsPerNode
	if p <= 0 {
		p = 1
	}
	n := c.Nodes
	if n <= 0 {
		n = 1
	}
	return n * p
}

// Execution is the outcome of a cluster run: the real results plus the
// modeled wall-clock time.
type Execution struct {
	Result *hyracks.Result
	// SimulatedWall is the modeled wall-clock time on the configured
	// cluster.
	SimulatedWall time.Duration
	// MeasuredWork is the total single-core work across all tasks.
	MeasuredWork time.Duration
	// Compiled carries the plans for inspection.
	Compiled *core.Compiled
	// Profile is the per-operator execution profile of the real (staged)
	// run whose task times the scheduler model consumed.
	Profile *hyracks.Profile
}

// Run compiles and executes a query on the modeled cluster.
func Run(query string, rules core.RuleConfig, cfg Config, src runtime.Source) (*Execution, error) {
	compiled, err := core.CompileQuery(query, core.Options{
		Rules:      rules,
		Partitions: cfg.TotalPartitions(),
	})
	if err != nil {
		return nil, err
	}
	res, err := hyracks.RunStaged(compiled.Job, &hyracks.Env{Source: src, Profile: true})
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	nodes := cfg.Nodes
	if nodes <= 0 {
		nodes = 1
	}
	wall, err := cfg.Model.JobWall(compiled.Job, res, nodes)
	if err != nil {
		return nil, err
	}
	var work time.Duration
	for _, t := range res.Tasks {
		work += t.Elapsed
	}
	return &Execution{
		Result:        res,
		SimulatedWall: wall,
		MeasuredWork:  work,
		Compiled:      compiled,
		Profile:       res.Profile,
	}, nil
}
