package cluster

import (
	"testing"

	"vxq/internal/core"
	"vxq/internal/gen"
	"vxq/internal/item"
	"vxq/internal/runtime"
)

const q1 = `
for $r in collection("/sensors")("root")()("results")()
where $r("dataType") eq "TMIN"
group by $date := $r("date")
return count($r("station"))`

func source(t *testing.T, files int) runtime.Source {
	t.Helper()
	cfg := gen.Default()
	cfg.Files = files
	cfg.RecordsPerFile = 4
	cfg.MeasurementsPerArray = 10
	docs, _, err := cfg.InMemory()
	if err != nil {
		t.Fatal(err)
	}
	return &runtime.MemSource{Collections: map[string]map[string][]byte{"/sensors": docs}}
}

func TestRunProducesResultsAndTiming(t *testing.T) {
	src := source(t, 8)
	ex, err := Run(q1, core.AllRules(), DefaultConfig(2), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Result.Rows) == 0 {
		t.Error("no result rows")
	}
	if ex.SimulatedWall <= 0 || ex.MeasuredWork <= 0 {
		t.Errorf("wall=%v work=%v", ex.SimulatedWall, ex.MeasuredWork)
	}
	if ex.Compiled == nil || ex.Compiled.Job == nil {
		t.Error("compiled job missing")
	}
}

func TestResultsIndependentOfClusterSize(t *testing.T) {
	src := source(t, 9)
	var want string
	for _, nodes := range []int{1, 2, 3} {
		ex, err := Run(q1, core.AllRules(), DefaultConfig(nodes), src)
		if err != nil {
			t.Fatal(err)
		}
		ex.Result.SortRows()
		got := ""
		for _, row := range ex.Result.Rows {
			for _, f := range row {
				got += item.JSONSeq(f) + "|"
			}
			got += "\n"
		}
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("nodes=%d results differ", nodes)
		}
	}
}

func TestTotalPartitions(t *testing.T) {
	if got := (Config{Nodes: 3, PartitionsPerNode: 4}).TotalPartitions(); got != 12 {
		t.Errorf("partitions = %d, want 12", got)
	}
	if got := (Config{}).TotalPartitions(); got != 1 {
		t.Errorf("zero config partitions = %d, want 1", got)
	}
}

func TestCompileErrorPropagates(t *testing.T) {
	if _, err := Run("not a query ((", core.AllRules(), DefaultConfig(1), source(t, 1)); err == nil {
		t.Error("expected parse error")
	}
}
