package bench

import (
	goruntime "runtime"
	"testing"

	"vxq/internal/jsonparse"
)

// The parse-kernel microbenchmarks: tokens flowing through the projector on
// the project-1-of-N-fields and skip-whole-record shapes, kernel (raw-skip)
// vs reference (token-skip). Run with -benchmem: the bytes/s column is the
// headline, and the per-record allocation count is reported as a custom
// metric.

func benchParseShape(b *testing.B, shape string, reference bool) {
	b.Helper()
	data, records := ParseBenchStream(4 << 20)
	path, err := ParseBenchPath(shape)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	var m0, m1 goruntime.MemStats
	goruntime.ReadMemStats(&m0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScanParseBench(data, path, reference); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	goruntime.ReadMemStats(&m1)
	b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/float64(int64(b.N)*int64(records)), "allocs/record")
}

// BenchmarkProjectOneField: project 1 small field from ~1 KiB records with
// the on-demand kernel — the acceptance-criteria shape.
func BenchmarkProjectOneField(b *testing.B) { benchParseShape(b, "project1", false) }

// BenchmarkProjectOneFieldReference is the same shape through the
// token-level reference skip (the pre-kernel behaviour).
func BenchmarkProjectOneFieldReference(b *testing.B) { benchParseShape(b, "project1", true) }

// BenchmarkSkipWholeRecord: a projection that matches nothing, so every
// record is skipped whole — the pure raw-skip throughput ceiling.
func BenchmarkSkipWholeRecord(b *testing.B) { benchParseShape(b, "skiprecord", false) }

// BenchmarkSkipWholeRecordReference is the token-level counterpart.
func BenchmarkSkipWholeRecordReference(b *testing.B) { benchParseShape(b, "skiprecord", true) }

// BenchmarkLexerTokens streams every token of the workload through Next —
// the tokenizer floor without any skip at all (full parse minus tree
// building).
func BenchmarkLexerTokens(b *testing.B) {
	data, _ := ParseBenchStream(4 << 20)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := jsonparse.NewLexer(data)
		for {
			if err := l.Next(); err != nil {
				b.Fatal(err)
			}
			if l.Kind == jsonparse.TokEOF {
				break
			}
		}
	}
}
